"""Ablation benches for the design choices DESIGN.md calls out."""


from repro.apps import lsms
from repro.gpu import Device, KernelSpec, UnifiedMemory, fuse
from repro.gpu.perfmodel import time_kernel, time_kernel_sequence
from repro.hardware.gpu import MI250X_GCD
from repro.amr.ghost import (
    GhostExchangeSpec,
    asynchronous_step_time,
    synchronous_step_time,
)
from repro.mpisim.costmodel import LinkParameters


def test_bench_ablation_lsms_solvers(benchmark):
    """zblock_lu vs rocSOLVER LU on MI250X (§3.2)."""
    gain = benchmark(lsms.solver_choice_gain_on_frontier)
    print(f"\nLSMS: direct LU is {gain:.2f}x faster than block inversion on "
          "MI250X (paper: direct wins despite more FLOPs)")
    assert gain > 1.0


def _fusion_ablation() -> tuple[float, float]:
    cells = 1 << 18
    small = [
        KernelSpec(name=f"k{i}", flops=20.0 * cells, bytes_read=16.0 * cells,
                   bytes_written=8.0 * cells, threads=cells,
                   registers_per_thread=48)
        for i in range(16)
    ]
    t_separate = time_kernel_sequence(small, MI250X_GCD, same_stream_async=False)
    fused = [fuse(small[i:i + 4]) for i in range(0, 16, 4)]
    t_fused = time_kernel_sequence(fused, MI250X_GCD, same_stream_async=False)
    return t_separate, t_fused


def test_bench_ablation_fusion(benchmark):
    """Kernel fusion for launch-latency-bound ensembles (§3.5, §3.8)."""
    t_sep, t_fused = benchmark(_fusion_ablation)
    print(f"\nfusion: 16 launches {t_sep*1e6:.1f} us -> 4 launches "
          f"{t_fused*1e6:.1f} us ({t_sep/t_fused:.2f}x)")
    assert t_fused < t_sep


def _uvm_ablation() -> tuple[float, float]:
    d = Device(MI250X_GCD)
    kernel = KernelSpec(name="work", flops=5e9, bytes_read=1e8)
    working_set = 512 << 20

    uvm = UnifiedMemory(link_bandwidth=MI250X_GCD.host_link_bandwidth)
    uvm.register("state", working_set, location="host")
    t_uvm = 0.0
    for _ in range(10):
        t_uvm += uvm.touch("state", "device")
        t_uvm += time_kernel(kernel, MI250X_GCD).total_time
        t_uvm += uvm.touch("state", "host")  # host post-processing touches

    t_explicit = d.memcpy_h2d(working_set)
    for _ in range(10):
        t_explicit += time_kernel(kernel, MI250X_GCD).total_time
    t_explicit += d.memcpy_d2h(working_set)
    return t_uvm, t_explicit


def test_bench_ablation_uvm(benchmark):
    """UVM vs explicit device memory (§3.8: removal 'ultimately necessary')."""
    t_uvm, t_explicit = benchmark(_uvm_ablation)
    print(f"\nUVM ping-pong {t_uvm*1e3:.1f} ms vs explicit {t_explicit*1e3:.1f} ms"
          f" ({t_uvm/t_explicit:.1f}x)")
    assert t_explicit < t_uvm


def _ghost_ablation() -> tuple[float, float]:
    link = LinkParameters(alpha=1.7e-6, beta=1.0 / 12.5e9)
    spec = GhostExchangeSpec(neighbors=6, bytes_per_neighbor=8 << 20)
    compute = 3 * (spec.total_bytes / 12.5e9)
    return (
        synchronous_step_time(compute, spec, link),
        asynchronous_step_time(compute, spec, link),
    )


def test_bench_ablation_ghost_exchange(benchmark):
    """Synchronous vs asynchronous ghost exchange (§3.8 AMReX)."""
    t_sync, t_async = benchmark(_ghost_ablation)
    print(f"\nghost exchange: sync {t_sync*1e3:.2f} ms, async {t_async*1e3:.2f} ms"
          f" ({t_sync/t_async:.2f}x)")
    assert t_async < t_sync


def test_bench_ablation_r2c_fft(benchmark):
    """Real-to-complex vs complex transforms: the PSDNS production choice."""
    import numpy as np

    from repro.hardware.interconnect import SLINGSHOT_11
    from repro.spectral import SlabFFT3D, SlabRFFT3D

    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 32, 32))

    def both():
        c = SlabFFT3D(32, 8, fabric=SLINGSHOT_11)
        r = SlabRFFT3D(32, 8, fabric=SLINGSHOT_11)
        c.forward(c.scatter(x.astype(complex)))
        r.forward(r.scatter(x))
        return c.stats.bytes_per_rank, r.stats.bytes_per_rank

    c_bytes, r_bytes = benchmark(both)
    print(f"\nR2C transpose traffic saving: {c_bytes / r_bytes:.2f}x "
          "(half-spectrum payloads)")
    assert c_bytes / r_bytes > 1.8


def test_bench_ablation_comet_precision(benchmark):
    """FP32 vs FP16 vs Int8 throughput for exact CCC counts (§3.6)."""
    from repro.apps import comet

    tf = benchmark(comet.precision_ablation)
    print("\nCoMet per-GCD useful TF by datatype: "
          + ", ".join(f"{k}={v:.1f}" for k, v in tf.items()))
    assert tf["FP16"] > 4 * tf["FP32"]


def test_bench_ablation_batched_chemistry(benchmark):
    """Per-cell scalar loop vs batched BDF chemistry (§3.8 Pele).

    A *measured* ablation on the reproduction's own integrators: the same
    drm19-scale hot field advanced once by the scalar per-cell loop and
    once by the batched BDF (generated vectorized kernels + batched LU +
    Jacobian reuse).  Solutions must agree to solver tolerances.
    """
    from repro.apps.pele import measured_chemistry_speedup

    out = benchmark.pedantic(
        measured_chemistry_speedup,
        kwargs=dict(ncells=32, dt=1e-9, seed=0),
        rounds=1, iterations=1,
    )
    print(f"\nbatched chemistry: scalar {out['t_scalar']:.2f} s, "
          f"batched {out['t_batched']:.2f} s ({out['speedup']:.1f}x), "
          f"max rel deviation {out['max_rel_deviation']:.2e}")
    assert out["max_rel_deviation"] < 1e-6  # tight agreement
    assert out["speedup"] > 1.5
