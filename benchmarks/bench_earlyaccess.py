"""Section 4 bench: the early-access ladder and the Spock scaling study."""

from repro.experiments.earlyaccess import (
    prediction_improves_with_generation,
    run_ladder,
    spock_scaling_study,
)


def test_bench_early_access_ladder(benchmark):
    reports = benchmark(run_ladder)
    print("\nEarly-access ladder (kernel-bundle time, Frontier prediction error):")
    for r in reports:
        print(f"  {r.machine:9s} gen{r.generation}  conv={r.convergence:.1f}  "
              f"{r.bundle_time*1e3:7.2f} ms  err={r.frontier_prediction_error:.1%}")
    assert prediction_improves_with_generation()


def test_bench_spock_scaling(benchmark):
    points = benchmark(spock_scaling_study)
    print("\nSpock modest scaling study (weak):")
    for p in points:
        print(f"  {p.nodes:3d} nodes: efficiency {p.efficiency:.4f}")
    assert all(p.efficiency > 0.9 for p in points)
