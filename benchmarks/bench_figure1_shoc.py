"""Figure 1 bench: regenerate the SHOC HIP-vs-CUDA comparison.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
rendered figure.
"""

import pytest

from repro.experiments.figure1 import run_figure1


def test_bench_figure1(benchmark):
    result = benchmark(run_figure1)
    print("\n" + result.render())
    assert result.mean_with_transfers == pytest.approx(0.998, abs=0.004)
    assert result.mean_kernel_only == pytest.approx(0.999, abs=0.004)
    assert len(result.rows) == 13


def test_bench_hipify_translation(benchmark):
    """The translation step alone: 13 programs through hipify."""
    from repro.benchsuite.shoc import SHOC_SUITE
    from repro.progmodel.hipify import hipify

    def translate_all():
        return [hipify(b.cuda_source) for b in SHOC_SUITE]

    results = benchmark(translate_all)
    assert all(r.clean for r in results)
    assert all(r.substitutions > 5 for r in results)
