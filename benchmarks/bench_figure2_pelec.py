"""Figure 2 bench: regenerate the PeleC performance history."""

from repro.experiments.figure2 import run_figure2, run_figure2_measured


def test_bench_figure2(benchmark):
    result = benchmark(run_figure2)
    print("\n" + result.render())
    assert all(result.checks().values())
    assert 50 < result.total_improvement < 110


def test_bench_figure2_chemistry_stage(benchmark):
    """The cvode-batched lever, actually executed (not modeled).

    Runs the drm19-scale chemistry field through both the scalar per-cell
    loop and the batched BDF path and reports the wall-clock speedup —
    the measured counterpart of the 2020 'cvode-batched' jump.
    """
    result = benchmark.pedantic(
        run_figure2_measured,
        kwargs=dict(ncells=48, dt=1e-9, seed=0),
        rounds=1, iterations=1,
    )
    print("\n" + result.render())
    assert all(result.checks().values())
    assert result.chemistry_stage["speedup"] >= 3.0
