"""Figure 2 bench: regenerate the PeleC performance history."""

from repro.experiments.figure2 import run_figure2


def test_bench_figure2(benchmark):
    result = benchmark(run_figure2)
    print("\n" + result.render())
    assert all(result.checks().values())
    assert 50 < result.total_improvement < 110
