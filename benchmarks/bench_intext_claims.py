"""In-text claim benches: one timed regeneration per application claim."""

import pytest

from repro.apps import coast, comet, exasky, gamess, gests, lammps, lsms, pele
from repro.hardware.catalog import FRONTIER


def test_bench_gests_fom(benchmark):
    """§3.3: FOM > 5x on 4096 Frontier nodes; slabs vs pencils."""
    fom = benchmark(gests.fom_improvement)
    print(f"\nGESTS FOM improvement: {fom:.2f}x (paper: >5x)")
    assert fom > 4.0
    r = gests.slabs_vs_pencils()
    assert r["slabs"].total < r["pencils"].total


def test_bench_exasky_fom(benchmark):
    """§3.4: 4.2x vs Summit; ~230x vs Theta."""
    factor = benchmark(exasky.speedup)
    print(f"\nExaSky FOM factor: {factor:.2f} (paper: 4.2); "
          f"vs Theta: {exasky.fom_vs_theta_baseline():.0f}x (paper: ~230x)")
    assert 2.7 < factor < 5.7


def test_bench_comet_exaflops(benchmark):
    """§3.6: 6.71 EF on 9074 nodes."""
    ef = benchmark(comet.system_exaflops)
    print(f"\nCoMet: {ef:.2f} EF mixed precision (paper: 6.71 EF)")
    assert 5.0 < ef < 8.5


def test_bench_coast_kernel(benchmark):
    """§3.9: 5.6 -> 30.6 TF per GPU via autotuning; 136 PF -> 1.004 EF."""
    tf = benchmark(coast.per_gpu_tflops)
    pf = coast.system_petaflops()
    print(f"\nCOAST kernel: V100 {tf['V100']:.1f} TF (5.6), "
          f"MI250X {tf['MI250X']:.1f} TF (30.6); "
          f"system {pf['Summit']:.0f} PF / {pf['Frontier']/1000:.3f} EF")
    assert tf["V100"] == pytest.approx(5.6, rel=0.25)
    assert tf["MI250X"] == pytest.approx(30.6, rel=0.25)


def test_bench_lammps_reaxff(benchmark):
    """§3.10: >50 % ReaxFF speedup."""
    s = benchmark(lammps.optimization_speedup)
    levers = lammps.lever_breakdown()
    print(f"\nLAMMPS ReaxFF speedup: {s:.2f}x (paper: >1.5x); levers: "
          + ", ".join(f"{k}={v:.2f}x" for k, v in levers.items()))
    assert s > 1.5


def test_bench_lsms_per_gpu(benchmark):
    """§3.2: ~7.5x per GPU on FePt."""
    s = benchmark(lsms.speedup)
    print(f"\nLSMS per-GPU speedup: {s:.2f} (paper: 7.5)")
    assert 4.9 < s < 10.2


def test_bench_gamess_fragment(benchmark):
    """§3.1: 5x RI-MP2 fragment kernel; near-ideal scaling to 2048 nodes."""
    s = benchmark(gamess.speedup)
    eff = gamess.mbe_scaling(935, [2048])[2048]
    print(f"\nGAMESS RI-MP2 speedup: {s:.2f} (paper: 5); "
          f"MBE efficiency @2048 nodes: {eff:.3f}")
    assert 3.2 < s < 6.8
    assert eff > 0.95


def test_bench_pele_weak_scaling(benchmark):
    """§3.8: >80 % weak scaling at 4096 Frontier nodes."""
    eff = benchmark(pele.weak_scaling_efficiency, FRONTIER, "frontier-tuned", 4096)
    print(f"\nPele weak-scaling efficiency @4096: {eff:.3f} (paper: >0.8)")
    assert eff > 0.8


# -- full-machine claims through the representative-rank engine ----------------


def test_bench_comet_full_machine(benchmark):
    """§3.6 swept on ScaledComm: 6.71 EF over 72,592 simulated ranks."""
    from repro.experiments.scaling import comet_full_machine_exaflops

    ef = benchmark(comet_full_machine_exaflops)
    print(f"\nCoMet via ScaledComm @9074 nodes: {ef:.2f} EF (paper: 6.71)")
    assert ef == pytest.approx(6.71, rel=0.25)


def test_bench_pele_full_machine(benchmark):
    """§3.8 swept on ScaledComm: halo exchange + overlap at 4,096 nodes."""
    from repro.experiments.scaling import pele_full_machine_weak_scaling

    eff = benchmark(pele_full_machine_weak_scaling)
    print(f"\nPele via ScaledComm @4096 nodes: {eff:.4f} (paper: >0.8)")
    assert eff >= 0.8


def test_bench_gamess_full_machine(benchmark):
    """§3.1 swept on ScaledComm: MBE farm efficiency at 2,048 nodes."""
    from repro.experiments.scaling import gamess_full_machine_efficiency

    eff = benchmark(gamess_full_machine_efficiency)
    print(f"\nGAMESS via ScaledComm @2048 nodes: {eff:.4f} (paper: near-ideal)")
    assert eff >= 0.95
