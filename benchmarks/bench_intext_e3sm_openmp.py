"""E3SM latency levers and the §2.2 OpenMP data-movement guidance."""

from repro.apps import e3sm
from repro.gpu import KernelSpec
from repro.hardware.catalog import FRONTIER
from repro.hardware.gpu import MI250X_GCD
from repro.progmodel import MapKind, OpenMPDevice


def test_bench_e3sm_levers(benchmark):
    """§3.5: fusion/fission + async streams + pool allocator."""
    gain = benchmark(e3sm.optimization_gain)
    levers = e3sm.lever_breakdown()
    r = e3sm.run(FRONTIER.node.gpu)
    print(f"\nE3SM optimization gain: {gain:.2f}x; levers: "
          + ", ".join(f"{k}={v:.2f}x" for k, v in levers.items())
          + f"; realtime throughput {r.throughput:.0f}x (target 1000-2000x)")
    assert gain > 3.0
    assert r.meets_target


def _openmp_comparison() -> tuple[float, float]:
    MB = 1 << 20
    kernel = KernelSpec(name="loop", flops=5e9, bytes_read=1e8)
    arrays = {"u": 256 * MB, "rhs": 256 * MB}
    steps = 25

    naive = OpenMPDevice(MI250X_GCD)
    for _ in range(steps):
        naive.naive_offload_loop(kernel, arrays)

    tuned = OpenMPDevice(MI250X_GCD)
    with tuned.target_data(u=(256 * MB, MapKind.TOFROM), rhs=(256 * MB, MapKind.TO)):
        for _ in range(steps):
            tuned.target_parallel_loop(kernel, uses=("u", "rhs"))
    return naive.elapsed, tuned.elapsed


def test_bench_openmp_target_data(benchmark):
    """§2.2: persistent TARGET DATA regions vs per-loop implicit mapping."""
    naive, tuned = benchmark(_openmp_comparison)
    print(f"\nOpenMP: naive per-loop mapping {naive*1e3:.1f} ms, "
          f"persistent TARGET DATA {tuned*1e3:.1f} ms -> {naive/tuned:.1f}x")
    assert tuned < naive / 3
