"""Wall-clock span benchmark feeding the observability regression gate.

PR 5's tentpole added :mod:`repro.observability`; this bench closes the
loop on its :class:`BenchRegressionGate`.  It re-measures three recorded
stages — the bit-packed GEMM tallies, the vectorized PM pairwise forces,
and the batched reacting-flow advance — inside *wall-clock* spans
(``Tracer(clock=time.perf_counter)``; the clock is injected here because
the observability package itself never imports ``time``), then gates
each span total against the band recorded in ``BENCH_repro_speed.json``:

    measured <= recorded * slow_factor + slack

A failure means either the reproduction got dramatically slower or the
instrumentation silently disappeared — both are regressions.  Run
directly::

    PYTHONPATH=src python benchmarks/bench_observability.py

Also runs through pytest (``python -m pytest
benchmarks/bench_observability.py``), which is how CI invokes it.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.observability import BenchRegressionGate, Tracer, hot_spans_report
from repro.particles.pm import short_range_forces
from repro.similarity import random_allele_data, tally_2way

from bench_repro_speed import _ignition_flow

_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_repro_speed.json"

#: span name -> key path into BENCH_repro_speed.json
GATED_SPANS = {
    "bench.comet_ccc": ("comet_ccc", "t_gemm_tally"),
    "bench.pm_pairwise": ("pm_pairwise", "t_vectorized"),
    "bench.reacting_flow": ("reacting_flow", "t_batched"),
}


def traced_stage_run(tracer: Tracer) -> None:
    """Re-run every gated stage at its recorded size under *tracer*."""
    with tracer.span("bench.comet_ccc", cat="bench", pid="bench",
                     tid="stages", n_vectors=48, n_fields=96):
        tally_2way(random_allele_data(48, 96, seed=0), method="popcount",
                   tracer=tracer)

    rng = np.random.default_rng(0)
    x = rng.uniform(0.0, 1.0, (400, 3))
    masses = rng.uniform(0.5, 2.0, 400)
    with tracer.span("bench.pm_pairwise", cat="bench", pid="bench",
                     tid="stages", nparticles=400):
        short_range_forces(x, masses, 1.0, rs=0.08)

    flow = _ignition_flow(batched=True, n=128)
    with tracer.span("bench.reacting_flow", cat="bench", pid="bench",
                     tid="stages", ncells=128, steps=5):
        for _ in range(5):
            flow.step()


def run_gate(*, slow_factor: float = 8.0, slack: float = 0.25) -> list:
    """Measure the gated stages and compare against the recorded bands.

    The band is deliberately loose (shared CI runners are noisy); the
    gate exists to catch order-of-magnitude regressions and vanished
    instrumentation, not 10% jitter.
    """
    tracer = Tracer(clock=time.perf_counter)
    traced_stage_run(tracer)
    gate = BenchRegressionGate(_BENCH_PATH, slow_factor=slow_factor,
                               slack=slack)
    checks = gate.check_span_totals(tracer, GATED_SPANS)
    for check in checks:
        print(check.describe())
    print()
    print(hot_spans_report(tracer, top=6))
    BenchRegressionGate.assert_ok(checks)
    return checks


def test_bench_observability_gate():
    checks = run_gate()
    assert len(checks) == len(GATED_SPANS)
    assert all(c.ok for c in checks)


if __name__ == "__main__":
    run_gate()
