"""Wall-clock span benchmark feeding the observability regression gate.

PR 5's tentpole added :mod:`repro.observability`; this bench closes the
loop on its :class:`BenchRegressionGate`.  It re-measures three recorded
stages — the bit-packed GEMM tallies, the vectorized PM pairwise forces,
and the batched reacting-flow advance — inside *wall-clock* spans
(``Tracer(clock=time.perf_counter)``; the clock is injected here because
the observability package itself never imports ``time``), then gates
each span total against the band recorded in ``BENCH_repro_speed.json``:

    measured <= recorded * slow_factor + slack

The figure2 chemistry stage is additionally gated *per array backend*
(one band per backend that is both available and recorded), so a
regression in any backend's fused kernels is caught by its own band.

A failure means either the reproduction got dramatically slower or the
instrumentation silently disappeared — both are regressions.  Run
directly::

    PYTHONPATH=src python benchmarks/bench_observability.py

Also runs through pytest (``python -m pytest
benchmarks/bench_observability.py``).  CI invokes the ``--quick`` form,
which is the same gate run (this bench *is* the smoke — it re-measures
recorded stages at recorded sizes and never writes the JSON).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.backend import available_backends
from repro.observability import BenchRegressionGate, Tracer, hot_spans_report
from repro.particles.pm import short_range_forces
from repro.similarity import random_allele_data, tally_2way

from bench_repro_speed import _ignition_flow

_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_repro_speed.json"

#: span name -> key path into BENCH_repro_speed.json
GATED_SPANS = {
    "bench.comet_ccc": ("comet_ccc", "t_gemm_tally"),
    "bench.pm_pairwise": ("pm_pairwise", "t_vectorized"),
    "bench.reacting_flow": ("reacting_flow", "t_batched"),
}


def gated_backend_spans() -> dict:
    """Per-backend figure2 gate bands: one span per backend that is both
    available in this process and recorded in ``BENCH_repro_speed.json``
    (a CI host with numba gates numba against numba's recorded band; a
    host without it skips that band instead of KeyErroring)."""
    recorded = {}
    if _BENCH_PATH.exists():
        recorded = (json.loads(_BENCH_PATH.read_text())
                    .get("figure2_chemistry_backends", {})
                    .get("backends", {}))
    return {
        f"bench.figure2_chem[{name}]":
            ("figure2_chemistry_backends", "backends", name, "t_batched")
        for name in available_backends() if name in recorded
    }


def traced_stage_run(tracer: Tracer,
                     backend_spans: dict | None = None) -> None:
    """Re-run every gated stage at its recorded size under *tracer*."""
    with tracer.span("bench.comet_ccc", cat="bench", pid="bench",
                     tid="stages", n_vectors=48, n_fields=96):
        tally_2way(random_allele_data(48, 96, seed=0), method="popcount",
                   tracer=tracer)

    rng = np.random.default_rng(0)
    x = rng.uniform(0.0, 1.0, (400, 3))
    masses = rng.uniform(0.5, 2.0, 400)
    with tracer.span("bench.pm_pairwise", cat="bench", pid="bench",
                     tid="stages", nparticles=400):
        short_range_forces(x, masses, 1.0, rs=0.08)

    flow = _ignition_flow(batched=True, n=128)
    with tracer.span("bench.reacting_flow", cat="bench", pid="bench",
                     tid="stages", ncells=128, steps=5):
        for _ in range(5):
            flow.step()

    if backend_spans:
        from repro.apps.pele import (
            PeleConfig,
            chemistry_field,
            integrate_chemistry_batched,
        )

        cfg = PeleConfig()
        T, C0 = chemistry_field(cfg, 48, seed=0)
        for span_name, key in backend_spans.items():
            backend = key[2]
            # warm outside the span: JIT backends compile on first call
            integrate_chemistry_batched(cfg, T[:2], C0[:2], 1e-9,
                                        backend=backend)
            with tracer.span(span_name, cat="bench", pid="bench",
                             tid="stages", ncells=48, backend=backend):
                integrate_chemistry_batched(cfg, T, C0, 1e-9,
                                            backend=backend)


def run_gate(*, slow_factor: float = 8.0, slack: float = 0.25) -> list:
    """Measure the gated stages and compare against the recorded bands.

    The band is deliberately loose (shared CI runners are noisy); the
    gate exists to catch order-of-magnitude regressions and vanished
    instrumentation, not 10% jitter.
    """
    tracer = Tracer(clock=time.perf_counter)
    backend_spans = gated_backend_spans()
    traced_stage_run(tracer, backend_spans)
    gate = BenchRegressionGate(_BENCH_PATH, slow_factor=slow_factor,
                               slack=slack)
    checks = gate.check_span_totals(tracer, {**GATED_SPANS, **backend_spans})
    for check in checks:
        print(check.describe())
    print()
    print(hot_spans_report(tracer, top=6))
    BenchRegressionGate.assert_ok(checks)
    return checks


def test_bench_observability_gate():
    checks = run_gate()
    assert len(checks) >= len(GATED_SPANS) + 1  # numpy band always gated
    assert all(c.ok for c in checks)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: identical to the default gate run "
                             "(reads bands, never writes)")
    parser.parse_args()
    run_gate()
