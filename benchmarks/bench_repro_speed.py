"""Smoke benchmark of the reproduction's *own* runtime (not the models).

PR 1's tentpole moved per-cell stiff chemistry onto a batched BDF
integrator (vectorized RHS sweeps, one-shot FD or generated analytic
Jacobians, batched LU with Jacobian reuse — §3.8's CVODE+MAGMA motif).
This bench measures that change where users feel it:

* the reacting-flow coupled-physics advance (hydro + batched chemistry),
  scalar loop vs batched path on the same ignition field;
* the Figure 2 chemistry stage: a drm19-scale hot field advanced by both
  paths.

Results land in ``BENCH_repro_speed.json`` at the repo root so the
speedups are recorded alongside the code.  Run directly::

    PYTHONPATH=src python benchmarks/bench_repro_speed.py

or through pytest (``python -m pytest benchmarks/bench_repro_speed.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.apps.pele import measured_chemistry_speedup
from repro.hydro.euler1d import Euler1D
from repro.hydro.reacting import ReactingFlow1D

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_repro_speed.json"


def _ignition_flow(*, batched: bool, n: int = 128) -> ReactingFlow1D:
    hydro = Euler1D.sod(n)
    hydro.rho[:] = 1.0
    hydro.mom[:] = 0.0
    hydro.ener[:] = 2.0
    hot = slice(n // 2 - n // 4, n // 2 + n // 4)
    hydro.ener[hot] = 6.0
    flow = ReactingFlow1D(hydro=hydro, use_batched_chemistry=batched)
    flow.concentrations[0, :] = 1.0  # H2
    flow.concentrations[1, :] = 0.5  # O2
    return flow


def reacting_flow_speedup(*, n: int = 128, steps: int = 5) -> dict:
    """Scalar vs batched chemistry inside the coupled-physics advance."""
    timings = {}
    states = {}
    for batched in (False, True):
        flow = _ignition_flow(batched=batched, n=n)
        t0 = time.perf_counter()
        for _ in range(steps):
            flow.step()
        timings[batched] = time.perf_counter() - t0
        states[batched] = flow.concentrations.copy()
    dev = float(np.abs(states[False] - states[True]).max())
    return {
        "ncells": n,
        "steps": steps,
        "t_scalar": timings[False],
        "t_batched": timings[True],
        "speedup": timings[False] / timings[True],
        "max_abs_deviation": dev,
    }


def run_all(*, write: bool = True) -> dict:
    report = {
        "reacting_flow": reacting_flow_speedup(),
        "figure2_chemistry_stage": measured_chemistry_speedup(
            ncells=48, dt=1e-9, seed=0
        ),
    }
    if write:
        _RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_bench_repro_speed():
    report = run_all()
    rf = report["reacting_flow"]
    fig2 = report["figure2_chemistry_stage"]
    print(f"\nreacting flow ({rf['ncells']} cells x {rf['steps']} steps): "
          f"scalar {rf['t_scalar']:.2f} s, batched {rf['t_batched']:.2f} s "
          f"({rf['speedup']:.1f}x)")
    print(f"figure2 chemistry stage ({fig2['ncells']} cells): "
          f"scalar {fig2['t_scalar']:.2f} s, batched {fig2['t_batched']:.2f} s "
          f"({fig2['speedup']:.1f}x)")
    assert rf["max_abs_deviation"] < 1e-6
    assert fig2["max_rel_deviation"] < 1e-6
    assert rf["speedup"] >= 3.0
    assert fig2["speedup"] >= 3.0


if __name__ == "__main__":
    out = run_all()
    print(json.dumps(out, indent=2))
