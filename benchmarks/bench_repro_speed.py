"""Smoke benchmark of the reproduction's *own* runtime (not the models).

PR 1's tentpole moved per-cell stiff chemistry onto a batched BDF
integrator (vectorized RHS sweeps, one-shot FD or generated analytic
Jacobians, batched LU with Jacobian reuse — §3.8's CVODE+MAGMA motif).
PR 3 recast the CoMet CCC tallies as bit-packed popcount/GEMM
contractions and vectorized the ExaSky pairwise force loops.  This bench
measures those changes where users feel them:

* the reacting-flow coupled-physics advance (hydro + batched chemistry),
  scalar loop vs batched path on the same ignition field;
* the Figure 2 chemistry stage: a drm19-scale hot field advanced by both
  paths;
* the CoMet 2-way CCC tallies: naive O(n²·m) Python pair loop vs the
  bit-packed GEMM-tally engine (integer exact);
* the ExaSky/PM pairwise short-range forces: per-pair Python loop vs the
  triangular-index broadcast sweep.

Results land in ``BENCH_repro_speed.json`` at the repo root (existing
keys from other benches are preserved) so the speedups are recorded
alongside the code.  Run directly::

    PYTHONPATH=src python benchmarks/bench_repro_speed.py

``--quick`` runs only the new CoMet/PM benches at tiny sizes and fails
if the vectorized paths are not faster — the CI smoke mode.  Also runs
through pytest (``python -m pytest benchmarks/bench_repro_speed.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.backend import available_backends
from repro.hydro.euler1d import Euler1D
from repro.hydro.reacting import ReactingFlow1D
from repro.particles.pm import short_range_forces
from repro.similarity import (
    ccc_from_counts,
    cooccurrence_counts_bruteforce,
    random_allele_data,
    tally_2way,
)

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_repro_speed.json"

#: PR 1's recorded figure2 batched wall time (48 cells, dt=1e-9, seed 0)
#: on this reference box — the baseline the backend layer is held to.
PR1_FIG2_T_BATCHED = 7.4809


def _ignition_flow(*, batched: bool, n: int = 128) -> ReactingFlow1D:
    hydro = Euler1D.sod(n)
    hydro.rho[:] = 1.0
    hydro.mom[:] = 0.0
    hydro.ener[:] = 2.0
    hot = slice(n // 2 - n // 4, n // 2 + n // 4)
    hydro.ener[hot] = 6.0
    flow = ReactingFlow1D(hydro=hydro, use_batched_chemistry=batched)
    flow.concentrations[0, :] = 1.0  # H2
    flow.concentrations[1, :] = 0.5  # O2
    return flow


def reacting_flow_speedup(*, n: int = 128, steps: int = 5) -> dict:
    """Scalar vs batched chemistry inside the coupled-physics advance."""
    timings = {}
    states = {}
    for batched in (False, True):
        flow = _ignition_flow(batched=batched, n=n)
        t0 = time.perf_counter()
        for _ in range(steps):
            flow.step()
        timings[batched] = time.perf_counter() - t0
        states[batched] = flow.concentrations.copy()
    dev = float(np.abs(states[False] - states[True]).max())
    return {
        "ncells": n,
        "steps": steps,
        "t_scalar": timings[False],
        "t_batched": timings[True],
        "speedup": timings[False] / timings[True],
        "max_abs_deviation": dev,
    }


def comet_ccc_speedup(*, n: int = 48, m: int = 96) -> dict:
    """Naive O(n²·m) tally loop vs the bit-packed GEMM-tally engine.

    Both paths produce *integer* tallies; the deviation is exact zero by
    construction, and recorded to prove it.
    """
    data = random_allele_data(n, m, seed=0)
    t0 = time.perf_counter()
    naive = cooccurrence_counts_bruteforce(data)
    t_naive = time.perf_counter() - t0
    t0 = time.perf_counter()
    gemm = tally_2way(data, method="popcount")
    t_gemm = time.perf_counter() - t0
    dev = float(np.abs(naive - gemm).max())
    sim_dev = float(np.abs(
        ccc_from_counts(naive, m) - ccc_from_counts(gemm, m)
    ).max())
    return {
        "n_vectors": n,
        "n_fields": m,
        "t_naive": t_naive,
        "t_gemm_tally": t_gemm,
        "speedup": t_naive / t_gemm,
        "max_abs_deviation": dev,  # integer tallies: exactly 0
        "max_similarity_deviation": sim_dev,
    }


def figure2_chemistry_backends(*, ncells: int = 48, dt: float = 1e-9,
                               seed: int = 0) -> dict:
    """The Figure 2 chemistry stage swept over every available backend.

    The scalar per-cell loop runs once (it has no backend axis); the
    batched path runs per backend — a tiny warm-up field first so JIT
    backends compile outside the timed region — and each entry records
    its speedup over the scalar loop *and* over PR 1's recorded batched
    wall time (the fused-kernel/backend win alone).
    """
    from repro.apps.pele import (
        PeleConfig,
        chemistry_field,
        integrate_chemistry_batched,
        integrate_chemistry_scalar,
    )

    cfg = PeleConfig()
    T, C0 = chemistry_field(cfg, ncells, seed=seed)
    t0 = time.perf_counter()
    y_scalar = integrate_chemistry_scalar(cfg, T, C0, dt)
    t_scalar = time.perf_counter() - t0
    scale = np.abs(y_scalar).max() + 1e-30

    backends = {}
    for name in available_backends():
        integrate_chemistry_batched(cfg, T[:2], C0[:2], dt, backend=name)
        t0 = time.perf_counter()
        res = integrate_chemistry_batched(cfg, T, C0, dt, backend=name)
        t_batched = time.perf_counter() - t0
        backends[name] = {
            "t_batched": t_batched,
            "speedup": t_scalar / t_batched,
            "speedup_vs_pr1_batched": PR1_FIG2_T_BATCHED / t_batched,
            "max_rel_deviation": float(
                np.abs(res.y - y_scalar).max() / scale),
        }
    best = min(backends, key=lambda k: backends[k]["t_batched"])
    return {
        "ncells": ncells,
        "dt": dt,
        "t_scalar": t_scalar,
        "pr1_t_batched": PR1_FIG2_T_BATCHED,
        "best_backend": best,
        "backends": backends,
    }


def pm_pairwise_speedup(*, n: int = 400) -> dict:
    """Per-pair Python force loop vs the triangular broadcast sweep."""
    rng = np.random.default_rng(0)
    x = rng.uniform(0.0, 1.0, (n, 3))
    masses = rng.uniform(0.5, 2.0, n)
    rs = 0.08
    t0 = time.perf_counter()
    naive = short_range_forces(x, masses, 1.0, rs=rs, vectorized=False)
    t_naive = time.perf_counter() - t0
    t0 = time.perf_counter()
    vec = short_range_forces(x, masses, 1.0, rs=rs)
    t_vec = time.perf_counter() - t0
    return {
        "nparticles": n,
        "t_naive": t_naive,
        "t_vectorized": t_vec,
        "speedup": t_naive / t_vec,
        "max_abs_deviation": float(np.abs(naive - vec).max()),
    }


def run_all(*, write: bool = True) -> dict:
    from repro.backend import get_backend

    sweep = figure2_chemistry_backends(ncells=48, dt=1e-9, seed=0)
    auto = get_backend("auto").name
    # the flat entry keeps its PR 1 shape (plus the backend axis) so the
    # observability gate's reference keys stay stable
    stage = {
        "ncells": sweep["ncells"],
        "dt": sweep["dt"],
        "backend": auto,
        "t_scalar": sweep["t_scalar"],
        "t_batched": sweep["backends"][auto]["t_batched"],
        "speedup": sweep["backends"][auto]["speedup"],
        "max_rel_deviation": sweep["backends"][auto]["max_rel_deviation"],
    }
    report = {
        "reacting_flow": reacting_flow_speedup(),
        "figure2_chemistry_stage": stage,
        "figure2_chemistry_backends": sweep,
        "comet_ccc": comet_ccc_speedup(),
        "pm_pairwise": pm_pairwise_speedup(),
    }
    if write:
        merged = {}
        if _RESULT_PATH.exists():
            merged = json.loads(_RESULT_PATH.read_text())
        merged.update(report)
        _RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    return report


def test_bench_repro_speed():
    report = run_all()
    rf = report["reacting_flow"]
    fig2 = report["figure2_chemistry_stage"]
    sweep = report["figure2_chemistry_backends"]
    ccc = report["comet_ccc"]
    pm = report["pm_pairwise"]
    print(f"\nreacting flow ({rf['ncells']} cells x {rf['steps']} steps): "
          f"scalar {rf['t_scalar']:.2f} s, batched {rf['t_batched']:.2f} s "
          f"({rf['speedup']:.1f}x)")
    print(f"figure2 chemistry stage ({fig2['ncells']} cells): "
          f"scalar {fig2['t_scalar']:.2f} s, batched {fig2['t_batched']:.2f} s "
          f"({fig2['speedup']:.1f}x, backend {fig2['backend']})")
    for name, entry in sweep["backends"].items():
        print(f"  backend {name:6s}: {entry['t_batched']:.3f} s "
              f"({entry['speedup']:.1f}x scalar, "
              f"{entry['speedup_vs_pr1_batched']:.2f}x PR 1 batched)")
    print(f"comet ccc tallies ({ccc['n_vectors']}x{ccc['n_fields']}): "
          f"naive {ccc['t_naive']:.3f} s, gemm-tally {ccc['t_gemm_tally']:.4f} s "
          f"({ccc['speedup']:.0f}x)")
    print(f"pm pairwise forces ({pm['nparticles']} particles): "
          f"naive {pm['t_naive']:.3f} s, vectorized {pm['t_vectorized']:.4f} s "
          f"({pm['speedup']:.0f}x)")
    assert rf["max_abs_deviation"] < 1e-6
    assert fig2["max_rel_deviation"] < 1e-6
    assert rf["speedup"] >= 3.0
    assert fig2["speedup"] >= 3.0
    # the backend-layer acceptance bands: the fused numpy kernels alone
    # must beat PR 1's batched wall time, the best backend by 5x
    best = sweep["backends"][sweep["best_backend"]]
    assert sweep["backends"]["numpy"]["speedup_vs_pr1_batched"] >= 1.3
    assert best["speedup_vs_pr1_batched"] >= 5.0
    for name, entry in sweep["backends"].items():
        assert entry["max_rel_deviation"] < 1e-6, name
    assert ccc["max_abs_deviation"] == 0.0  # integer tallies, exact
    assert ccc["speedup"] >= 10.0
    assert pm["max_abs_deviation"] < 1e-9
    assert pm["speedup"] >= 10.0


def quick_smoke() -> dict:
    """Tiny-size CI smoke: the vectorized paths must beat the naive loops,
    and every available backend must agree with the scalar chemistry on a
    small field (relative bands only — no absolute wall-clock references,
    so the smoke is robust to slow CI boxes)."""
    report = {
        "comet_ccc": comet_ccc_speedup(n=24, m=48),
        "pm_pairwise": pm_pairwise_speedup(n=150),
    }
    for name, entry in report.items():
        dev = entry["max_abs_deviation"]
        print(f"{name}: {entry['speedup']:.1f}x, max deviation {dev:g}")
        assert entry["speedup"] >= 1.0, f"{name} slower than the naive loop"
        assert dev < 1e-9, f"{name} deviates from the naive loop"
    sweep = figure2_chemistry_backends(ncells=6, dt=1e-9, seed=0)
    report["figure2_chemistry_backends"] = sweep
    for name, entry in sweep["backends"].items():
        print(f"figure2 backend {name}: {entry['speedup']:.1f}x scalar, "
              f"max rel deviation {entry['max_rel_deviation']:g}")
        assert entry["max_rel_deviation"] < 1e-6, name
        assert entry["speedup"] >= 1.0, f"{name} slower than the scalar loop"
    return report


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny-size CoMet/PM smoke run; no JSON write")
    if parser.parse_args().quick:
        quick_smoke()
    else:
        out = run_all()
        print(json.dumps(out, indent=2))
