"""Smoke benchmark of the reproduction's *own* runtime (not the models).

PR 1's tentpole moved per-cell stiff chemistry onto a batched BDF
integrator (vectorized RHS sweeps, one-shot FD or generated analytic
Jacobians, batched LU with Jacobian reuse — §3.8's CVODE+MAGMA motif).
PR 3 recast the CoMet CCC tallies as bit-packed popcount/GEMM
contractions and vectorized the ExaSky pairwise force loops.  This bench
measures those changes where users feel them:

* the reacting-flow coupled-physics advance (hydro + batched chemistry),
  scalar loop vs batched path on the same ignition field;
* the Figure 2 chemistry stage: a drm19-scale hot field advanced by both
  paths;
* the CoMet 2-way CCC tallies: naive O(n²·m) Python pair loop vs the
  bit-packed GEMM-tally engine (integer exact);
* the ExaSky/PM pairwise short-range forces: per-pair Python loop vs the
  triangular-index broadcast sweep.

Results land in ``BENCH_repro_speed.json`` at the repo root (existing
keys from other benches are preserved) so the speedups are recorded
alongside the code.  Run directly::

    PYTHONPATH=src python benchmarks/bench_repro_speed.py

``--quick`` runs only the new CoMet/PM benches at tiny sizes and fails
if the vectorized paths are not faster — the CI smoke mode.  Also runs
through pytest (``python -m pytest benchmarks/bench_repro_speed.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.apps.pele import measured_chemistry_speedup
from repro.hydro.euler1d import Euler1D
from repro.hydro.reacting import ReactingFlow1D
from repro.particles.pm import short_range_forces
from repro.similarity import (
    ccc_from_counts,
    cooccurrence_counts_bruteforce,
    random_allele_data,
    tally_2way,
)

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_repro_speed.json"


def _ignition_flow(*, batched: bool, n: int = 128) -> ReactingFlow1D:
    hydro = Euler1D.sod(n)
    hydro.rho[:] = 1.0
    hydro.mom[:] = 0.0
    hydro.ener[:] = 2.0
    hot = slice(n // 2 - n // 4, n // 2 + n // 4)
    hydro.ener[hot] = 6.0
    flow = ReactingFlow1D(hydro=hydro, use_batched_chemistry=batched)
    flow.concentrations[0, :] = 1.0  # H2
    flow.concentrations[1, :] = 0.5  # O2
    return flow


def reacting_flow_speedup(*, n: int = 128, steps: int = 5) -> dict:
    """Scalar vs batched chemistry inside the coupled-physics advance."""
    timings = {}
    states = {}
    for batched in (False, True):
        flow = _ignition_flow(batched=batched, n=n)
        t0 = time.perf_counter()
        for _ in range(steps):
            flow.step()
        timings[batched] = time.perf_counter() - t0
        states[batched] = flow.concentrations.copy()
    dev = float(np.abs(states[False] - states[True]).max())
    return {
        "ncells": n,
        "steps": steps,
        "t_scalar": timings[False],
        "t_batched": timings[True],
        "speedup": timings[False] / timings[True],
        "max_abs_deviation": dev,
    }


def comet_ccc_speedup(*, n: int = 48, m: int = 96) -> dict:
    """Naive O(n²·m) tally loop vs the bit-packed GEMM-tally engine.

    Both paths produce *integer* tallies; the deviation is exact zero by
    construction, and recorded to prove it.
    """
    data = random_allele_data(n, m, seed=0)
    t0 = time.perf_counter()
    naive = cooccurrence_counts_bruteforce(data)
    t_naive = time.perf_counter() - t0
    t0 = time.perf_counter()
    gemm = tally_2way(data, method="popcount")
    t_gemm = time.perf_counter() - t0
    dev = float(np.abs(naive - gemm).max())
    sim_dev = float(np.abs(
        ccc_from_counts(naive, m) - ccc_from_counts(gemm, m)
    ).max())
    return {
        "n_vectors": n,
        "n_fields": m,
        "t_naive": t_naive,
        "t_gemm_tally": t_gemm,
        "speedup": t_naive / t_gemm,
        "max_abs_deviation": dev,  # integer tallies: exactly 0
        "max_similarity_deviation": sim_dev,
    }


def pm_pairwise_speedup(*, n: int = 400) -> dict:
    """Per-pair Python force loop vs the triangular broadcast sweep."""
    rng = np.random.default_rng(0)
    x = rng.uniform(0.0, 1.0, (n, 3))
    masses = rng.uniform(0.5, 2.0, n)
    rs = 0.08
    t0 = time.perf_counter()
    naive = short_range_forces(x, masses, 1.0, rs=rs, vectorized=False)
    t_naive = time.perf_counter() - t0
    t0 = time.perf_counter()
    vec = short_range_forces(x, masses, 1.0, rs=rs)
    t_vec = time.perf_counter() - t0
    return {
        "nparticles": n,
        "t_naive": t_naive,
        "t_vectorized": t_vec,
        "speedup": t_naive / t_vec,
        "max_abs_deviation": float(np.abs(naive - vec).max()),
    }


def run_all(*, write: bool = True) -> dict:
    report = {
        "reacting_flow": reacting_flow_speedup(),
        "figure2_chemistry_stage": measured_chemistry_speedup(
            ncells=48, dt=1e-9, seed=0
        ),
        "comet_ccc": comet_ccc_speedup(),
        "pm_pairwise": pm_pairwise_speedup(),
    }
    if write:
        merged = {}
        if _RESULT_PATH.exists():
            merged = json.loads(_RESULT_PATH.read_text())
        merged.update(report)
        _RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    return report


def test_bench_repro_speed():
    report = run_all()
    rf = report["reacting_flow"]
    fig2 = report["figure2_chemistry_stage"]
    ccc = report["comet_ccc"]
    pm = report["pm_pairwise"]
    print(f"\nreacting flow ({rf['ncells']} cells x {rf['steps']} steps): "
          f"scalar {rf['t_scalar']:.2f} s, batched {rf['t_batched']:.2f} s "
          f"({rf['speedup']:.1f}x)")
    print(f"figure2 chemistry stage ({fig2['ncells']} cells): "
          f"scalar {fig2['t_scalar']:.2f} s, batched {fig2['t_batched']:.2f} s "
          f"({fig2['speedup']:.1f}x)")
    print(f"comet ccc tallies ({ccc['n_vectors']}x{ccc['n_fields']}): "
          f"naive {ccc['t_naive']:.3f} s, gemm-tally {ccc['t_gemm_tally']:.4f} s "
          f"({ccc['speedup']:.0f}x)")
    print(f"pm pairwise forces ({pm['nparticles']} particles): "
          f"naive {pm['t_naive']:.3f} s, vectorized {pm['t_vectorized']:.4f} s "
          f"({pm['speedup']:.0f}x)")
    assert rf["max_abs_deviation"] < 1e-6
    assert fig2["max_rel_deviation"] < 1e-6
    assert rf["speedup"] >= 3.0
    assert fig2["speedup"] >= 3.0
    assert ccc["max_abs_deviation"] == 0.0  # integer tallies, exact
    assert ccc["speedup"] >= 10.0
    assert pm["max_abs_deviation"] < 1e-9
    assert pm["speedup"] >= 10.0


def quick_smoke() -> dict:
    """Tiny-size CI smoke: the vectorized paths must beat the naive loops."""
    report = {
        "comet_ccc": comet_ccc_speedup(n=24, m=48),
        "pm_pairwise": pm_pairwise_speedup(n=150),
    }
    for name, entry in report.items():
        dev = entry["max_abs_deviation"]
        print(f"{name}: {entry['speedup']:.1f}x, max deviation {dev:g}")
        assert entry["speedup"] >= 1.0, f"{name} slower than the naive loop"
        assert dev < 1e-9, f"{name} deviates from the naive loop"
    return report


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny-size CoMet/PM smoke run; no JSON write")
    if parser.parse_args().quick:
        quick_smoke()
    else:
        out = run_all()
        print(json.dumps(out, indent=2))
