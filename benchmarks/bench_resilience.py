"""Resilience-subsystem bench: what checkpointing actually costs.

Measures, on the real reproduction code (wall clock, not models):

* snapshot serialization/restore latency for the Figure 2 Pele campaign
  state — the real-time cost a recovery pays before replay starts;
* the simulated checkpoint-overhead fraction of a fault-injected
  campaign run at the Young/Daly interval, with the failure-free wall
  clock as the baseline.

Results merge into ``BENCH_repro_speed.json`` (existing keys are
preserved).  Run directly::

    PYTHONPATH=src python benchmarks/bench_resilience.py

or through pytest (``python -m pytest benchmarks/bench_resilience.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.apps.pele import PeleChemistryCampaign
from repro.resilience import (
    CheckpointCostModel,
    FaultInjector,
    FaultKind,
    ResilientRunner,
    decode_snapshot,
    encode_snapshot,
    young_daly_interval,
)

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_repro_speed.json"


def checkpoint_latency(*, ncells: int = 32, repeats: int = 20) -> dict:
    """Real wall-clock cost of snapshot/encode and decode/restore for the
    Figure 2 campaign state (the recovery-path critical section)."""
    app = PeleChemistryCampaign(ncells=ncells, seed=0)
    app.step()  # measure a mid-campaign state, not the pristine one

    t0 = time.perf_counter()
    for _ in range(repeats):
        blob = encode_snapshot(app.snapshot())
    t_snapshot = (time.perf_counter() - t0) / repeats

    t0 = time.perf_counter()
    for _ in range(repeats):
        app.restore(decode_snapshot(blob))
    t_restore = (time.perf_counter() - t0) / repeats

    restored = encode_snapshot(app.snapshot())
    return {
        "ncells": ncells,
        "snapshot_bytes": len(blob),
        "t_snapshot": t_snapshot,
        "t_restore": t_restore,
        "round_trip_exact": restored == blob,
    }


def campaign_overhead(*, nsteps: int = 60, mtbf: float = 40.0,
                      seed: int = 43) -> dict:
    """Simulated overhead fraction of a fault-injected Pele campaign at
    the Young/Daly interval, vs. the failure-free run of the same job."""
    cost = CheckpointCostModel(latency=0.5, restart_cost=5.0)

    def campaign() -> PeleChemistryCampaign:
        return PeleChemistryCampaign(ncells=8, seed=1)

    probe = campaign()
    delta = cost.write_time(len(encode_snapshot(probe.snapshot())))
    interval = max(1, round(young_daly_interval(delta, mtbf) / probe.step_cost))

    clean_app = campaign()
    clean = ResilientRunner(clean_app, checkpoint_interval=interval,
                            cost_model=cost).run(nsteps)

    app = campaign()
    injector = FaultInjector(rng=np.random.default_rng(seed),
                             mtbf={FaultKind.RANK_FAILURE: mtbf})
    stats = ResilientRunner(app, checkpoint_interval=interval,
                            injector=injector, cost_model=cost,
                            max_retries=50, backoff_base=0.0).run(nsteps)

    recovery_latency = (stats.recovery_time / stats.recoveries
                        if stats.recoveries else 0.0)
    return {
        "nsteps": nsteps,
        "checkpoint_interval": interval,
        "mtbf": mtbf,
        "recoveries": stats.recoveries,
        "steps_replayed": stats.steps_replayed,
        "checkpoint_overhead_fraction": clean.overhead_fraction,
        "faulty_overhead_fraction": stats.overhead_fraction,
        "recovery_latency": recovery_latency,
        "wall_clock_inflation": stats.wall_clock / clean.wall_clock,
        "bit_identical": bool(
            encode_snapshot(app.snapshot())
            == encode_snapshot(clean_app.snapshot())
        ),
    }


def run_all(*, write: bool = True) -> dict:
    report = {
        "resilience_checkpoint_latency": checkpoint_latency(),
        "resilience_campaign_overhead": campaign_overhead(),
    }
    if write:
        merged = {}
        if _RESULT_PATH.exists():
            merged = json.loads(_RESULT_PATH.read_text())
        merged.update(report)
        _RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    return report


def test_bench_resilience():
    report = run_all()
    lat = report["resilience_checkpoint_latency"]
    camp = report["resilience_campaign_overhead"]
    print(f"\ncheckpoint ({lat['snapshot_bytes']} B): snapshot "
          f"{lat['t_snapshot']*1e6:.0f} us, restore {lat['t_restore']*1e6:.0f} us")
    print(f"campaign: ckpt every {camp['checkpoint_interval']} steps, "
          f"{camp['recoveries']} recoveries, overhead "
          f"{camp['faulty_overhead_fraction']:.1%} "
          f"(clean {camp['checkpoint_overhead_fraction']:.1%}), "
          f"recovery latency {camp['recovery_latency']:.1f} s")
    assert lat["round_trip_exact"]
    assert lat["t_snapshot"] < 0.1 and lat["t_restore"] < 0.1
    assert camp["bit_identical"]
    assert camp["recoveries"] >= 1
    assert camp["checkpoint_overhead_fraction"] < camp["faulty_overhead_fraction"]
    assert camp["wall_clock_inflation"] >= 1.0


if __name__ == "__main__":
    out = run_all()
    print(json.dumps(out, indent=2))
