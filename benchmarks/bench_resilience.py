"""Resilience-subsystem bench: what checkpointing actually costs.

Measures, on the real reproduction code (wall clock, not models):

* snapshot serialization/restore latency for the Figure 2 Pele campaign
  state — the real-time cost a recovery pays before replay starts;
* the simulated checkpoint-overhead fraction of a fault-injected
  campaign run at the Young/Daly interval, with the failure-free wall
  clock as the baseline;
* the simulated-time inflation of ABFT checksum augmentation on the
  production-size batched-LU and count-GEMM kernels (gated at 10%);
* a fault matrix: every FaultKind crossed with every RecoveryPolicy on
  a tiny HACC campaign, each cell required to finish bit-identical.

Results merge into ``BENCH_repro_speed.json`` (existing keys are
preserved).  Run directly::

    PYTHONPATH=src python benchmarks/bench_resilience.py

or through pytest (``python -m pytest benchmarks/bench_resilience.py``).
``--quick`` is the CI smoke: the same four stages at reduced sizes with
the same correctness contracts asserted, and no JSON write.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.apps.exasky import ExaskyCampaign
from repro.apps.pele import PeleChemistryCampaign
from repro.gpu.device import Device
from repro.gpu.perfmodel import time_kernel
from repro.hardware.catalog import FRONTIER
from repro.linalg.batched import batched_lu_kernel_spec
from repro.mpisim import SimComm
from repro.resilience import (
    CheckpointCostModel,
    FaultInjector,
    FaultKind,
    ResilientRunner,
    SpareSwapPolicy,
    decode_snapshot,
    encode_snapshot,
    young_daly_interval,
)
from repro.similarity.gemmtally import gemm_tally_kernel_spec

ABFT_INFLATION_GATE = 0.10  # checksum work may not cost >10% kernel time

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_repro_speed.json"


def checkpoint_latency(*, ncells: int = 32, repeats: int = 20) -> dict:
    """Real wall-clock cost of snapshot/encode and decode/restore for the
    Figure 2 campaign state (the recovery-path critical section)."""
    app = PeleChemistryCampaign(ncells=ncells, seed=0)
    app.step()  # measure a mid-campaign state, not the pristine one

    t0 = time.perf_counter()
    for _ in range(repeats):
        blob = encode_snapshot(app.snapshot())
    t_snapshot = (time.perf_counter() - t0) / repeats

    t0 = time.perf_counter()
    for _ in range(repeats):
        app.restore(decode_snapshot(blob))
    t_restore = (time.perf_counter() - t0) / repeats

    restored = encode_snapshot(app.snapshot())
    return {
        "ncells": ncells,
        "snapshot_bytes": len(blob),
        "t_snapshot": t_snapshot,
        "t_restore": t_restore,
        "round_trip_exact": restored == blob,
    }


def campaign_overhead(*, nsteps: int = 60, mtbf: float = 40.0,
                      seed: int = 43) -> dict:
    """Simulated overhead fraction of a fault-injected Pele campaign at
    the Young/Daly interval, vs. the failure-free run of the same job."""
    cost = CheckpointCostModel(latency=0.5, restart_cost=5.0)

    def campaign() -> PeleChemistryCampaign:
        return PeleChemistryCampaign(ncells=8, seed=1)

    probe = campaign()
    delta = cost.write_time(len(encode_snapshot(probe.snapshot())))
    interval = max(1, round(young_daly_interval(delta, mtbf) / probe.step_cost))

    clean_app = campaign()
    clean = ResilientRunner(clean_app, checkpoint_interval=interval,
                            cost_model=cost).run(nsteps)

    app = campaign()
    injector = FaultInjector(rng=np.random.default_rng(seed),
                             mtbf={FaultKind.RANK_FAILURE: mtbf})
    stats = ResilientRunner(app, checkpoint_interval=interval,
                            injector=injector, cost_model=cost,
                            max_retries=50, backoff_base=0.0).run(nsteps)

    recovery_latency = (stats.recovery_time / stats.recoveries
                        if stats.recoveries else 0.0)
    return {
        "nsteps": nsteps,
        "checkpoint_interval": interval,
        "mtbf": mtbf,
        "recoveries": stats.recoveries,
        "steps_replayed": stats.steps_replayed,
        "checkpoint_overhead_fraction": clean.overhead_fraction,
        "faulty_overhead_fraction": stats.overhead_fraction,
        "recovery_latency": recovery_latency,
        "wall_clock_inflation": stats.wall_clock / clean.wall_clock,
        "bit_identical": bool(
            encode_snapshot(app.snapshot())
            == encode_snapshot(clean_app.snapshot())
        ),
    }


def abft_overhead() -> dict:
    """Simulated-time inflation of checksum augmentation on the two
    production ABFT carriers, timed on the Frontier GPU model.

    The batched LU runs at the production block size (512 cells of a
    128-species mechanism): the Huang–Abraham ride-along is O(n²) work
    against O(n³) elimination, so toy sizes would overstate the ratio.
    The CoMet count-GEMM adds two GEMVs per state pair — O(1/n) of the
    tally itself.
    """
    gpu = FRONTIER.node.gpu

    def inflation(mk) -> float:
        base = time_kernel(mk(False), gpu).execution_time
        return time_kernel(mk(True), gpu).execution_time / base - 1.0

    return {
        "device": gpu.name,
        "batched_lu": {
            "batch": 512, "n": 128,
            "inflation": inflation(
                lambda a: batched_lu_kernel_spec(512, 128, abft=a)),
        },
        "gemm_tally": {
            "n_vectors": 4096, "n_fields": 65536,
            "inflation": inflation(
                lambda a: gemm_tally_kernel_spec(4096, 65536, abft=a)),
        },
        "gate": ABFT_INFLATION_GATE,
    }


def fault_matrix(*, nsteps: int = 16) -> dict:
    """Every FaultKind × every RecoveryPolicy on one tiny HACC campaign.

    Fatal-fault cells must end bit-identical to the failure-free run
    (recovery replays deterministically).  SDC cells must be
    bit-identical whenever every injected flip was detected — the
    campaign's range validators are real, partial guards, so a
    low-order mantissa flip can legitimately ride through; the matrix
    *measures* that coverage instead of assuming it.
    """
    reference = ExaskyCampaign(nparticles=128, seed=3)
    for _ in range(nsteps):
        reference.step()

    cells: dict[str, dict] = {}
    for kind in FaultKind:
        for name in ("restart", "shrink", "spare"):
            app = ExaskyCampaign(nparticles=128, seed=3)
            comm = SimComm(8, FRONTIER.node.interconnect)
            runner = ResilientRunner(
                app, checkpoint_interval=4,
                injector=FaultInjector(rng=np.random.default_rng(11),
                                       mtbf={kind: 0.1},
                                       max_target=comm.nranks),
                cost_model=CheckpointCostModel(restart_cost=0.02),
                comm=comm, device=Device(FRONTIER.node.gpu),
                max_retries=50, backoff_base=0.0,
                policy=(SpareSwapPolicy(spares=2, activation_cost=0.005)
                        if name == "spare" else name),
            )
            stats = runner.run(nsteps)
            cells[f"{kind.value}/{name}"] = {
                "events_fired": stats.events_fired,
                "recoveries": stats.recoveries,
                "ranks_final": stats.ranks_final,
                "sdc_injected": stats.sdc_injected,
                "sdc_detected": stats.sdc_detected,
                "bit_identical": bool(
                    np.array_equal(app.pos, reference.pos)
                    and np.array_equal(app.vel, reference.vel)),
            }
    return cells


def run_all(*, write: bool = True) -> dict:
    report = {
        "resilience_checkpoint_latency": checkpoint_latency(),
        "resilience_campaign_overhead": campaign_overhead(),
        "resilience_abft_overhead": abft_overhead(),
        "resilience_fault_matrix": fault_matrix(),
    }
    if write:
        merged = {}
        if _RESULT_PATH.exists():
            merged = json.loads(_RESULT_PATH.read_text())
        merged.update(report)
        _RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    return report


def test_bench_resilience():
    report = run_all()
    lat = report["resilience_checkpoint_latency"]
    camp = report["resilience_campaign_overhead"]
    print(f"\ncheckpoint ({lat['snapshot_bytes']} B): snapshot "
          f"{lat['t_snapshot']*1e6:.0f} us, restore {lat['t_restore']*1e6:.0f} us")
    print(f"campaign: ckpt every {camp['checkpoint_interval']} steps, "
          f"{camp['recoveries']} recoveries, overhead "
          f"{camp['faulty_overhead_fraction']:.1%} "
          f"(clean {camp['checkpoint_overhead_fraction']:.1%}), "
          f"recovery latency {camp['recovery_latency']:.1f} s")
    assert lat["round_trip_exact"]
    assert lat["t_snapshot"] < 0.1 and lat["t_restore"] < 0.1
    assert camp["bit_identical"]
    assert camp["recoveries"] >= 1
    assert camp["checkpoint_overhead_fraction"] < camp["faulty_overhead_fraction"]
    assert camp["wall_clock_inflation"] >= 1.0

    ab = report["resilience_abft_overhead"]
    print(f"abft inflation on {ab['device']}: "
          f"batched LU {ab['batched_lu']['inflation']:.2%}, "
          f"count GEMM {ab['gemm_tally']['inflation']:.2%} "
          f"(gate {ab['gate']:.0%})")
    for carrier in ("batched_lu", "gemm_tally"):
        assert 0.0 <= ab[carrier]["inflation"] < ABFT_INFLATION_GATE, (
            f"ABFT inflates {carrier} simulated time by "
            f"{ab[carrier]['inflation']:.1%} (gate {ABFT_INFLATION_GATE:.0%})")

    matrix = report["resilience_fault_matrix"]
    fired = sum(c["events_fired"] for c in matrix.values())
    print(f"fault matrix: {len(matrix)} kind x policy cells, "
          f"{fired} events fired")
    assert len(matrix) == len(FaultKind) * 3
    assert fired > 0, "fault matrix fired no events at all"
    for cell, result in matrix.items():
        if result["sdc_injected"] > result["sdc_detected"]:
            continue  # undetected SDC rode through: divergence is honest
        assert result["bit_identical"], f"{cell} diverged: {result}"


def run_quick() -> dict:
    """CI smoke: every stage at reduced size, contracts still asserted,
    recorded bands untouched (no JSON write)."""
    report = {
        "resilience_checkpoint_latency": checkpoint_latency(ncells=8,
                                                            repeats=3),
        "resilience_campaign_overhead": campaign_overhead(nsteps=30),
        "resilience_abft_overhead": abft_overhead(),
        "resilience_fault_matrix": fault_matrix(nsteps=8),
    }
    lat = report["resilience_checkpoint_latency"]
    camp = report["resilience_campaign_overhead"]
    assert lat["round_trip_exact"]
    assert camp["bit_identical"]
    assert camp["recoveries"] >= 1
    assert camp["checkpoint_overhead_fraction"] < camp["faulty_overhead_fraction"]
    ab = report["resilience_abft_overhead"]
    for carrier in ("batched_lu", "gemm_tally"):
        assert 0.0 <= ab[carrier]["inflation"] < ABFT_INFLATION_GATE
    fired = sum(c["events_fired"] for c in report["resilience_fault_matrix"].values())
    assert fired > 0, "fault matrix fired no events at all"
    print(f"quick: snapshot {lat['t_snapshot']*1e6:.0f} us, "
          f"{camp['recoveries']} recoveries, "
          f"overhead {camp['faulty_overhead_fraction']:.1%}, "
          f"{fired} fault events")
    return report


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke at reduced sizes; no JSON write")
    if parser.parse_args().quick:
        run_quick()
    else:
        out = run_all()
        print(json.dumps(out, indent=2))
