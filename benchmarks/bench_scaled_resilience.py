"""Wall-clock benchmark of resilience at full-machine scale.

The resilience-at-scale claim is twofold: fault-injected campaigns on
the representative-rank engine cost seconds of wall-clock even when the
modelled machine has 72,592 ranks, and the measured optimal checkpoint
interval they produce agrees with Young/Daly within 2x.  This bench
times both sweeps from :mod:`repro.experiments.resilience_at_scale`:

* ``t_sweep`` — the 5-interval x 4-seed Daly validation at 4,096 nodes
  (the gated wall-clock span);
* ``t_curve`` — the resilience-overhead-vs-node-count curve from 1,024
  nodes to the paper's 9,074-node Frontier scale.

The measured block is recorded as ``scaled_resilience`` in
``BENCH_repro_speed.json`` (``--record``) and gated by CI through
:class:`BenchRegressionGate` like the other benches.  ``--quick`` runs
the CI mode: a fault-matrix smoke over every fault kind on exemplar and
modelled targets, a reduced Daly sweep asserting the 2x agreement, then
the gated timed sweep.  Run directly::

    PYTHONPATH=src python benchmarks/bench_scaled_resilience.py [--quick] [--record]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.experiments.resilience_at_scale import (
    run_daly_sweep,
    run_overhead_curve,
)
from repro.hardware.interconnect import SLINGSHOT_11
from repro.mpisim import RankGroupPartitioner, ScaledComm
from repro.observability import BenchRegressionGate, Tracer
from repro.resilience import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    SimulatedFault,
)

_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_repro_speed.json"

#: span name -> key path into BENCH_repro_speed.json
GATED_SPANS = {
    "bench.scaled_resilience[daly]": ("scaled_resilience", "t_sweep"),
}

#: the acceptance bound on measured-vs-Young/Daly optimal interval
MAX_DALY_FACTOR = 2.0


def fault_matrix_smoke() -> None:
    """Every fault kind on both an exemplar and a modelled target."""
    inj = FaultInjector(rng=np.random.default_rng(0),
                        mtbf={k: 1.0 for k in FaultKind})
    for target, flavor in ((0, "exemplar"), (5, "modelled")):
        comm = ScaledComm(16, SLINGSHOT_11, ranks_per_node=8,
                          device_buffers=True,
                          partition=RankGroupPartitioner(
                              "endpoints").partition(16))
        arr = np.ones(32)
        for kind in FaultKind:
            event = FaultEvent(time=1.0, kind=kind, target=target,
                               slowdown=2.0, duration=10.0, bit=40)
            try:
                inj.fire(event, comm=comm, arrays=[arr])
            except SimulatedFault:
                pass
            assert kind not in (FaultKind.RANK_FAILURE,) or (
                comm.failed_ranks() == [target])
        assert not np.array_equal(arr, np.ones(32))  # SDC landed
        inj.clear(comm=comm)
        assert comm.failed_ranks() == []
        print(f"fault matrix OK on {flavor} target {target}: "
              f"{[k.value for k in FaultKind]}")


def timed_sweep(tracer: Tracer, *, seeds=(0, 1, 2, 3), nsteps=256):
    """The 4,096-node Daly validation sweep (the gated span)."""
    with tracer.span("bench.scaled_resilience[daly]", cat="bench",
                     pid="bench", tid="resilience", nodes=4096,
                     seeds=len(seeds), nsteps=nsteps):
        return run_daly_sweep(nodes=4096, seeds=tuple(seeds), nsteps=nsteps)


def measure_block() -> dict:
    tracer = Tracer(clock=time.perf_counter)
    t0 = time.perf_counter()
    sweep = timed_sweep(tracer)
    t_sweep = time.perf_counter() - t0

    t0 = time.perf_counter()
    curve = run_overhead_curve()
    t_curve = time.perf_counter() - t0

    return {
        "nodes": sweep.nodes,
        "machine_ranks": sweep.machine_ranks,
        "seeds": len(sweep.seeds),
        "nsteps": sweep.nsteps,
        "t_sweep": t_sweep,
        "t_curve": t_curve,
        "w_star_steps": sweep.w_star_steps,
        "measured_best_steps": sweep.measured_best_steps,
        "daly_agreement_factor": sweep.daly_agreement_factor,
        "intervals": [
            {"steps": p.interval_steps,
             "measured_overhead": p.measured_overhead,
             "predicted_overhead": p.predicted_overhead,
             "failures": p.failures}
            for p in sweep.points
        ],
        "overhead_curve": [
            {"nodes": p.nodes, "machine_ranks": p.machine_ranks,
             "interval_steps": p.interval_steps,
             "measured_overhead": p.measured_overhead,
             "failures": p.failures}
            for p in curve.points
        ],
    }


def run_quick() -> None:
    """CI mode: fault-matrix smoke + reduced Daly sweep + gate."""
    fault_matrix_smoke()
    sweep = run_daly_sweep(nodes=4096, seeds=(0, 1), nsteps=128)
    print(sweep.render())
    checks = sweep.checks()
    assert all(checks.values()), checks
    assert sweep.daly_agreement_factor <= MAX_DALY_FACTOR + 1e-9
    run_gate()


def run_gate(*, slow_factor: float = 8.0, slack: float = 0.25) -> list:
    """Re-time the recorded sweep and gate it against its band."""
    tracer = Tracer(clock=time.perf_counter)
    timed_sweep(tracer)
    gate = BenchRegressionGate(_BENCH_PATH, slow_factor=slow_factor,
                               slack=slack)
    checks = gate.check_span_totals(tracer, GATED_SPANS)
    for check in checks:
        print(check.describe())
    BenchRegressionGate.assert_ok(checks)
    return checks


def run_full(*, record: bool = False) -> dict:
    block = measure_block()
    print(f"Daly validation at {block['nodes']} nodes "
          f"({block['machine_ranks']} machine ranks), "
          f"{block['seeds']} seeds x {block['nsteps']} steps: "
          f"{block['t_sweep']:.3f} s wall")
    for p in block["intervals"]:
        print(f"  {p['steps']:3d} steps: measured {p['measured_overhead']:.4f}"
              f"  predicted {p['predicted_overhead']:.4f}"
              f"  ({p['failures']} faults)")
    print(f"W* = {block['w_star_steps']:.1f} steps, measured optimum "
          f"{block['measured_best_steps']} steps "
          f"(agreement {block['daly_agreement_factor']:.2f}x, "
          f"bound {MAX_DALY_FACTOR:.0f}x)")
    print(f"overhead-vs-node-count curve: {block['t_curve']:.3f} s wall")
    for p in block["overhead_curve"]:
        print(f"  {p['nodes']:5d} nodes ({p['machine_ranks']:6d} ranks): "
              f"overhead {p['measured_overhead']:.4f} "
              f"at W*={p['interval_steps']} steps ({p['failures']} faults)")
    assert block["daly_agreement_factor"] <= MAX_DALY_FACTOR + 1e-9, (
        f"measured optimum {block['measured_best_steps']} steps disagrees "
        f"with W* = {block['w_star_steps']:.1f} by more than "
        f"{MAX_DALY_FACTOR:.0f}x")
    if record:
        doc = json.loads(_BENCH_PATH.read_text())
        doc["scaled_resilience"] = block
        _BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"recorded scaled_resilience block to {_BENCH_PATH.name}")
    return block


def test_bench_scaled_resilience_gate():
    checks = run_gate()
    assert len(checks) == len(GATED_SPANS)
    assert all(c.ok for c in checks)


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="CI mode: fault-matrix smoke + Daly sweep + gate")
    ap.add_argument("--record", action="store_true",
                    help="rewrite the scaled_resilience block")
    args = ap.parse_args(argv)
    if args.quick:
        run_quick()
    else:
        run_full(record=args.record)


if __name__ == "__main__":
    main()
