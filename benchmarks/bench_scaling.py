"""Wall-clock benchmark of the representative-rank scaling engine.

The tentpole claim of the scaling engine is an *economic* one: a full
10-point CoMet weak-scaling sweep to 9,074 Frontier nodes (72,592
simulated ranks) must cost seconds of wall-clock — at least **100x**
cheaper than extrapolating a naive all-live :class:`SimComm` campaign
from the largest live-feasible size.  This bench measures both sides:

* ``t_sweep`` — the 10-point :func:`weak_scaling_curve` on
  :class:`ScaledComm` (six node-role exemplars carry every size);
* ``t_naive_extrapolated`` — an all-live run at ``PROBE_NODES`` (the
  largest sweep size that is still live-feasible), extrapolated linearly
  in rank-steps over the whole sweep.  Linear is deliberately generous
  to the naive side: every live cost is at least linear in P.

The measured block is recorded as ``full_machine_scaling`` in
``BENCH_repro_speed.json`` (``--record``) and gated by CI through
:class:`BenchRegressionGate` exactly like the observability bench.
``--quick`` runs the CI mode: the exemplar-vs-full differential plus a
3-point smoke sweep per app, then the gated timed sweep.  Run directly::

    PYTHONPATH=src python benchmarks/bench_scaling.py [--quick] [--record]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.experiments.scaling import (
    DEFAULT_NODE_COUNTS,
    QUICK_STRONG_NODE_COUNTS,
    QUICK_WEAK_NODE_COUNTS,
    WORKLOADS,
    CometWeakScaling,
    _measure,
    check_validation,
    render_validation,
    strong_scaling_curve,
    validate_exemplar_vs_full,
    weak_scaling_curve,
)
from repro.observability import BenchRegressionGate, Tracer

_BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_repro_speed.json"

#: span name -> key path into BENCH_repro_speed.json
GATED_SPANS = {
    "bench.scaling_sweep[comet]": ("full_machine_scaling", "t_sweep"),
}

#: steps per sweep point — a short CCC campaign epoch; the naive cost
#: grows linearly with this, the exemplar cost barely at all
SWEEP_STEPS = 128
#: largest sweep size still feasible all-live (8,192 in-process ranks)
PROBE_NODES = 1024
#: the tentpole floor: exemplar sweep vs naive all-live extrapolation
MIN_SPEEDUP = 100.0


def timed_sweep(tracer: Tracer):
    """The 10-point CoMet sweep under a wall-clock span (the gated span)."""
    with tracer.span("bench.scaling_sweep[comet]", cat="bench", pid="bench",
                     tid="scaling", points=len(DEFAULT_NODE_COUNTS),
                     steps=SWEEP_STEPS):
        return weak_scaling_curve(CometWeakScaling(),
                                  DEFAULT_NODE_COUNTS, steps=SWEEP_STEPS)


def measure_block() -> dict:
    """Measure sweep + naive probe and assemble the recordable block."""
    tracer = Tracer(clock=time.perf_counter)
    t0 = time.perf_counter()
    curve = timed_sweep(tracer)
    t_sweep = time.perf_counter() - t0

    w = CometWeakScaling()
    probe_ranks = w.ranks_for(PROBE_NODES)
    t0 = time.perf_counter()
    _measure(w, PROBE_NODES, mode="live", steps=SWEEP_STEPS)
    t_probe = time.perf_counter() - t0
    rank_steps_probe = probe_ranks * SWEEP_STEPS
    rank_steps_sweep = sum(w.ranks_for(n) * SWEEP_STEPS
                           for n in DEFAULT_NODE_COUNTS)
    t_naive = t_probe * rank_steps_sweep / rank_steps_probe

    top = curve.points[-1]
    return {
        "app": "comet",
        "node_counts": list(DEFAULT_NODE_COUNTS),
        "steps": SWEEP_STEPS,
        "t_sweep": t_sweep,
        "probe_nodes": PROBE_NODES,
        "probe_ranks": probe_ranks,
        "t_live_probe": t_probe,
        "t_naive_extrapolated": t_naive,
        "speedup_vs_naive": t_naive / t_sweep,
        "exaflops_at_9074": top.metric,
        "efficiency_at_9074": curve.efficiency_at(9074),
        "live_ranks_at_9074": top.live_ranks,
    }


def run_quick() -> None:
    """CI mode: differential + 3-point smoke per app + gated timed sweep."""
    for name in sorted(WORKLOADS):
        points = validate_exemplar_vs_full(WORKLOADS[name](),
                                           node_counts=(1, 2), steps=2)
        check_validation(points)
        print(render_validation(points))

    comet = weak_scaling_curve(CometWeakScaling(),
                               node_counts=QUICK_WEAK_NODE_COUNTS)
    assert comet.efficiency_at(9074) >= 0.99
    assert 5.0 < comet.points[-1].metric < 8.5  # §3.6: 6.71 EF
    print(comet.render())

    pele = weak_scaling_curve(WORKLOADS["pele"](), node_counts=(1, 64, 4096))
    assert pele.efficiency_at(4096) >= 0.8  # §3.8
    print(pele.render())

    gamess = strong_scaling_curve(WORKLOADS["gamess"](),
                                  node_counts=QUICK_STRONG_NODE_COUNTS)
    assert gamess.efficiency_at(2048) >= 0.95  # §3.1
    print(gamess.render())

    run_gate()


def run_gate(*, slow_factor: float = 8.0, slack: float = 0.25) -> list:
    """Re-time the recorded sweep and gate it against its band."""
    tracer = Tracer(clock=time.perf_counter)
    timed_sweep(tracer)
    gate = BenchRegressionGate(_BENCH_PATH, slow_factor=slow_factor,
                               slack=slack)
    checks = gate.check_span_totals(tracer, GATED_SPANS)
    for check in checks:
        print(check.describe())
    BenchRegressionGate.assert_ok(checks)
    return checks


def run_full(*, record: bool = False) -> dict:
    block = measure_block()
    print(f"10-point CoMet sweep to 9,074 nodes ({SWEEP_STEPS} steps/point): "
          f"{block['t_sweep']:.3f} s wall")
    print(f"all-live probe at {block['probe_nodes']} nodes "
          f"({block['probe_ranks']} ranks): {block['t_live_probe']:.3f} s")
    print(f"naive all-live extrapolation over the sweep: "
          f"{block['t_naive_extrapolated']:.2f} s")
    print(f"speedup vs naive: {block['speedup_vs_naive']:.0f}x "
          f"(floor: {MIN_SPEEDUP:.0f}x)")
    print(f"headline at 9,074 nodes: {block['exaflops_at_9074']:.3f} EF, "
          f"weak-scaling efficiency {block['efficiency_at_9074']:.4f}, "
          f"{block['live_ranks_at_9074']} live ranks")
    assert block["speedup_vs_naive"] >= MIN_SPEEDUP, (
        f"representative-rank sweep only {block['speedup_vs_naive']:.1f}x "
        f"cheaper than naive (floor {MIN_SPEEDUP:.0f}x)")
    if record:
        doc = json.loads(_BENCH_PATH.read_text())
        doc["full_machine_scaling"] = block
        _BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"recorded full_machine_scaling block to {_BENCH_PATH.name}")
    return block


def test_bench_scaling_gate():
    checks = run_gate()
    assert len(checks) == len(GATED_SPANS)
    assert all(c.ok for c in checks)


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="CI mode: differential + smoke sweeps + gate")
    ap.add_argument("--record", action="store_true",
                    help="rewrite the full_machine_scaling block")
    args = ap.parse_args(argv)
    if args.quick:
        run_quick()
    else:
        run_full(record=args.record)


if __name__ == "__main__":
    main()
