"""Soak benchmark for the campaign service: throughput + queue latency.

PR 7's tentpole added :mod:`repro.service`; this bench soaks it the way
a facility would qualify a scheduler: a seeded open-loop arrival stream
(three tenants, the four-size HACC job mix, fault injection ON) against
Summit-like and Frontier-like pools, recording

* **sustained jobs/sec** and **p50/p99 queue-wait** on the *simulated*
  clock (the service's SLOs — machine-independent, bit-reproducible);
* **wall-clock runtime** of each soak (``t_soak``/``t_quick``), the
  host-dependent numbers the :class:`BenchRegressionGate` bands.

Every soak also asserts the acceptance contract: each completed
campaign's final state is bit-identical to stepping the same app with no
service, no faults and no runner at all (the PR 4 recovery invariant
composed with the service's seeding discipline).

The full run writes a ``service_throughput`` block into
``BENCH_repro_speed.json`` (merging, never clobbering, other benches'
keys)::

    PYTHONPATH=src python benchmarks/bench_service.py

``--quick`` is the CI smoke: one small pool, 60 jobs, no JSON write,
gated against the recorded ``t_quick`` band.  Also runs through pytest
(``python -m pytest benchmarks/bench_service.py``), which is how the CI
service job invokes it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.observability import BenchRegressionGate, Tracer
from repro.resilience.faults import FaultKind
from repro.resilience.runner import CheckpointCostModel
from repro.service import (
    CampaignService,
    EasyBackfillScheduler,
    OpenLoopArrivals,
    build_pool,
    failure_free_checksum,
)

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_repro_speed.json"

#: fault environment scaled to the job mix (sub-second campaigns):
#: every soak sees real recoveries, spare draws and requeues.
MTBF = {
    FaultKind.RANK_FAILURE: 1.5,
    FaultKind.DEVICE_OOM: 6.0,
    FaultKind.LINK_DEGRADATION: 3.0,
}
TENANTS = {"astro": 2.0, "chem": 1.0, "climate": 1.0}
COST = CheckpointCostModel(restart_cost=0.05)

#: the two qualification pools; arrival rate tuned to ~0.7-0.8 offered
#: utilization so queues form without the open loop diverging.
POOLS = {
    "summit-like": dict(machine="summit", nodes=32, spares=2, rate=80.0),
    "frontier-like": dict(machine="frontier", nodes=64, spares=4, rate=160.0),
}

GATED_SPANS = {
    "bench.service_soak": ("service_throughput", "t_soak"),
}
QUICK_SPAN = {
    "bench.service_quick": ("service_throughput", "t_quick"),
}


def run_soak(machine: str, *, nodes: int, spares: int, rate: float,
             njobs: int = 500, seed: int = 2023) -> dict:
    """One seeded soak; returns the SLO record for the JSON block."""
    pool = build_pool(machine, nodes=nodes, spares=spares)
    arrivals = OpenLoopArrivals(rate=rate, tenants=TENANTS, seed=seed)
    jobs = arrivals.draw(njobs)
    service = CampaignService(
        pool, seed=seed, fault_mtbf=MTBF, cost_model=COST,
        backoff_base=0.05,  # scaled to the sub-second job mix
        scheduler=EasyBackfillScheduler(borrow_after=1.0),
    )
    t0 = time.perf_counter()
    res = service.run(jobs)
    t_wall = time.perf_counter() - t0

    for job in res.completed:
        if job.result_checksum != failure_free_checksum(job):
            raise AssertionError(
                f"job {job.job_id} diverged from its failure-free replay "
                f"— the bit-identity contract is broken")

    slo = res.slo
    return {
        "machine": machine,
        "nodes": nodes,
        "spares": spares,
        "rate": rate,
        "njobs": njobs,
        "completed": slo.completed,
        "failed": slo.failed,
        "requeues": slo.requeues,
        "recoveries": sum(j.stats.recoveries
                          for j in res.completed if j.stats),
        "spare_denials": pool.spares.denials,
        "makespan_sim": slo.makespan,
        "jobs_per_sec": slo.jobs_per_sec,
        "p50_queue_wait": slo.p50_queue_wait,
        "p99_queue_wait": slo.p99_queue_wait,
        "utilization": slo.utilization,
        "backfill_fraction": slo.backfill_fraction,
        "t_wall": t_wall,
    }


def quick_soak() -> dict:
    """The CI smoke configuration: small pool, 60 jobs, still faulted."""
    return run_soak("summit", nodes=16, spares=2, rate=40.0, njobs=60,
                    seed=2023)


def _print_record(name: str, rec: dict) -> None:
    print(f"{name} ({rec['machine']}, {rec['nodes']}n+{rec['spares']}sp, "
          f"rate {rec['rate']:.0f}/s): "
          f"{rec['completed']}/{rec['njobs']} jobs, "
          f"{rec['jobs_per_sec']:.2f} jobs/s, "
          f"wait p50/p99 {rec['p50_queue_wait']:.2f}/"
          f"{rec['p99_queue_wait']:.2f} s, "
          f"util {rec['utilization']:.1%}, "
          f"{rec['recoveries']} recoveries, "
          f"{rec['requeues']} requeues "
          f"[{rec['t_wall']:.1f} s wall]")


def run_all(write: bool = True) -> dict:
    pools = {}
    t_soak = 0.0
    for name, cfg in POOLS.items():
        rec = run_soak(cfg["machine"], nodes=cfg["nodes"],
                       spares=cfg["spares"], rate=cfg["rate"])
        _print_record(name, rec)
        pools[name] = rec
        t_soak += rec["t_wall"]
    quick = quick_soak()
    _print_record("quick", quick)
    block = {
        "service_throughput": {
            "pools": pools,
            "quick": quick,
            "t_soak": t_soak,
            "t_quick": quick["t_wall"],
        }
    }
    if write:
        merged = {}
        if _RESULT_PATH.exists():
            merged = json.loads(_RESULT_PATH.read_text())
        merged.update(block)
        _RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    return block


def run_quick_gate(*, slow_factor: float = 8.0, slack: float = 0.5) -> list:
    """CI smoke: run the quick soak in a wall-clock span and gate it
    against the recorded ``t_quick`` band (loose — shared runners)."""
    # warm outside the span (first-import and first-call costs are not
    # the scheduler's throughput; the recorded band is warm too)
    run_soak("summit", nodes=8, spares=1, rate=20.0, njobs=10, seed=1)
    tracer = Tracer(clock=time.perf_counter)
    with tracer.span("bench.service_quick", cat="bench", pid="bench",
                     tid="service"):
        rec = quick_soak()
    _print_record("quick", rec)
    gate = BenchRegressionGate(_RESULT_PATH, slow_factor=slow_factor,
                               slack=slack)
    checks = gate.check_span_totals(tracer, QUICK_SPAN)
    for check in checks:
        print(check.describe())
    BenchRegressionGate.assert_ok(checks)
    return checks


def test_bench_service_quick_gate():
    checks = run_quick_gate()
    assert len(checks) == 1 and all(c.ok for c in checks)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke soak + regression gate; no JSON write")
    if parser.parse_args().quick:
        run_quick_gate()
    else:
        print(json.dumps(run_all(), indent=2))
