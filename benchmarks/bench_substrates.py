"""Substrate micro-benches: the numerical kernels themselves, timed for real.

These time the *actual Python computation* of the working substrates (not
the simulated device model) so performance regressions in the library's
own code are visible.
"""

import numpy as np
import pytest

from repro.graph import blocked_floyd_warshall
from repro.linalg import zblock_lu
from repro.md import build_neighbor_list, hns_like_crystal
from repro.ode import BdfIntegrator
from repro.similarity import ccc_similarity, random_allele_data
from repro.spectral import PseudoSpectralNS, SlabFFT3D
from repro.hardware.interconnect import SLINGSHOT_11


def test_bench_blocked_fw(benchmark):
    rng = np.random.default_rng(0)
    d = np.where(rng.random((96, 96)) < 0.2, rng.uniform(1, 5, (96, 96)), np.inf)
    result = benchmark(blocked_floyd_warshall, d, 24)
    assert np.isfinite(result).any()


def test_bench_zblock_lu(benchmark):
    rng = np.random.default_rng(1)
    n = 96
    a = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n)) + 8 * np.eye(n)
    result = benchmark(zblock_lu, a, 12)
    assert result.shape == (12, 12)


def test_bench_distributed_fft(benchmark):
    rng = np.random.default_rng(2)
    x = rng.normal(size=(32, 32, 32)) + 1j * rng.normal(size=(32, 32, 32))
    fft = SlabFFT3D(32, 8, fabric=SLINGSHOT_11)

    def roundtrip():
        return fft.inverse(fft.forward(fft.scatter(x)))

    slabs = benchmark(roundtrip)
    np.testing.assert_allclose(fft.gather_slabs(slabs), x, atol=1e-9)


def test_bench_psdns_step(benchmark):
    ns = PseudoSpectralNS(16, viscosity=0.02)
    ns.set_taylor_green()
    benchmark(ns.step, 0.005)
    assert ns.max_divergence() < 1e-9


def test_bench_bdf_robertson(benchmark):
    def rob(t, y):
        return np.array([
            -0.04 * y[0] + 1e4 * y[1] * y[2],
            0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] ** 2,
            3e7 * y[1] ** 2,
        ])

    integ = BdfIntegrator(rob, rtol=1e-5, atol=1e-8)
    result = benchmark(integ.integrate, np.array([1.0, 0, 0]), 0.0, 1.0)
    assert result.y.sum() == pytest.approx(1.0, abs=1e-5)


def test_bench_ccc_similarity(benchmark):
    data = random_allele_data(48, 256, seed=3)
    sim = benchmark(ccc_similarity, data)
    assert sim.shape == (48, 48)


def test_bench_neighbor_list(benchmark):
    x, box = hns_like_crystal(5, 5, 5, seed=4)
    nb = benchmark(build_neighbor_list, x, box, 2.5)
    assert len(nb) == len(x)


def test_bench_sod_shock_tube(benchmark):
    from repro.hydro import Euler1D

    def run():
        s = Euler1D.sod(200)
        s.run_until(0.1)
        return s

    s = benchmark(run)
    assert s.total_mass() > 0


def test_bench_mmf_step(benchmark):
    from repro.cloud import MmfModel

    m = MmfModel.create(16, 32, seed=0)
    benchmark(m.step)
    assert m.n_columns == 16


def test_bench_scf_iteration(benchmark):
    from repro.scattering import build_liz, scf_iterate

    liz = build_liz(1.0, 1.2, block_size=8)
    result = benchmark(scf_iterate, liz, target_moment=0.4)
    assert result.converged
