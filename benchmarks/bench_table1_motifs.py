"""Table 1 bench: regenerate the porting-motif matrix from the registry."""

from repro.experiments.table1 import run_table1


def test_bench_table1(benchmark):
    result = benchmark(run_table1)
    print("\n" + result.render())
    assert result.matches_paper()
