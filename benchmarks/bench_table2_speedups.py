"""Table 2 bench: run all eight apps on simulated Summit and Frontier."""

from repro.experiments.table2 import run_table2


def test_bench_table2(benchmark):
    result = benchmark(run_table2)
    print("\n" + result.render())
    assert result.all_in_band
    assert len(result.rows) == 8
