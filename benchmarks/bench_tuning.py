"""Autotuning navigator bench: tuned-vs-default across the fleet.

Runs the full-budget :func:`repro.tuning.run_navigator` pass — ten apps
x {Summit, Frontier} kernel configs, per-machine checkpoint cadence,
per-machine collective selection — and records the tuned-vs-default
speedup table as a ``tuning`` block in ``BENCH_repro_speed.json``
(merging, never clobbering, other benches' keys)::

    PYTHONPATH=src python benchmarks/bench_tuning.py

The block carries the ISSUE acceptance evidence: per-cell default/tuned
times and the chosen knobs, the ``improved_apps`` list (floor: 6 of 10),
checkpoint overhead default-vs-tuned with the Daly agreement factor, the
collective selection table, and the wall-clock ``t_full``/``t_quick``
the :class:`BenchRegressionGate` bands.

``--quick`` is the CI smoke: the quick-budget pass in a wall-clock span
gated against the recorded ``t_quick`` band, no JSON write, the
improved-apps floor still asserted.  Also runs through pytest
(``python -m pytest benchmarks/bench_tuning.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.observability import BenchRegressionGate, Tracer
from repro.tuning import TuningBudget, TuningReport, run_navigator

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_repro_speed.json"

SEED = 0
IMPROVED_APPS_FLOOR = 6  # ISSUE acceptance: >= 6 of 10 apps improve

QUICK_SPAN = {
    "bench.tuning_quick": ("tuning", "t_quick"),
}


def _assert_acceptance(report: TuningReport) -> None:
    improved = report.improved_apps()
    assert len(improved) >= IMPROVED_APPS_FLOOR, (
        f"tuner improved only {len(improved)} apps ({improved}); "
        f"floor is {IMPROVED_APPS_FLOOR}")
    for ckpt in report.checkpoint:
        assert ckpt.tuned_overhead < ckpt.default_overhead, (
            f"{ckpt.machine}: tuned checkpoint cadence no better than "
            f"checkpoint-every-step")


def run_full(*, write: bool = True) -> dict:
    t0 = time.perf_counter()
    report = run_navigator(seed=SEED, budget=TuningBudget())
    t_full = time.perf_counter() - t0
    _assert_acceptance(report)

    t0 = time.perf_counter()
    quick = run_navigator(seed=SEED, budget=TuningBudget.quick())
    t_quick = time.perf_counter() - t0
    _assert_acceptance(quick)

    print(report.render())
    print(f"\nfull pass {t_full:.1f} s wall, quick pass {t_quick:.1f} s wall")

    block = {"tuning": dict(report.to_dict(),
                            improved_apps=report.improved_apps(),
                            t_full=t_full, t_quick=t_quick)}
    if write:
        merged = {}
        if _RESULT_PATH.exists():
            merged = json.loads(_RESULT_PATH.read_text())
        merged.update(block)
        _RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")
    return block


def run_quick_gate(*, slow_factor: float = 8.0, slack: float = 0.5) -> list:
    """CI smoke: quick pass in a wall-clock span, gated against the
    recorded ``t_quick`` band (loose — shared runners)."""
    # warm outside the span: first-import costs are not the tuner's speed
    run_navigator(seed=SEED, budget=TuningBudget.quick(),
                  machines=(), apps=())
    tracer = Tracer(clock=time.perf_counter)
    with tracer.span("bench.tuning_quick", cat="bench", pid="bench",
                     tid="tuning"):
        report = run_navigator(seed=SEED, budget=TuningBudget.quick())
    _assert_acceptance(report)
    print(f"quick: {len(report.improved_apps())}/10 apps improved, "
          f"{len(report.collectives)} collective cells, "
          f"checkpoint intervals "
          f"{[c.tuned_interval_steps for c in report.checkpoint]}")
    gate = BenchRegressionGate(_RESULT_PATH, slow_factor=slow_factor,
                               slack=slack)
    checks = gate.check_span_totals(tracer, QUICK_SPAN)
    for check in checks:
        print(check.describe())
    BenchRegressionGate.assert_ok(checks)
    return checks


def test_bench_tuning_quick_gate():
    checks = run_quick_gate()
    assert len(checks) == 1 and all(c.ok for c in checks)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke pass + regression gate; no JSON write")
    if parser.parse_args().quick:
        run_quick_gate()
    else:
        print(json.dumps(run_full(), indent=2))