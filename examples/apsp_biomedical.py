"""COAST's literature-mining use case on a synthetic knowledge graph.

Run:  python examples/apsp_biomedical.py

Builds a SPOKE-like typed biomedical graph, solves all-pairs shortest
paths with the distributed blocked Floyd-Warshall, ranks indirect
compound→disease connections (candidate drug discovery), and autotunes
the (min,+) kernel for both GPU generations.
"""

import numpy as np

from repro.graph import (
    TileAutotuner,
    blocked_floyd_warshall,
    discover_relationships,
    distributed_floyd_warshall,
    generate_knowledge_graph,
)
from repro.hardware.gpu import MI250X, V100
from repro.hardware.interconnect import SLINGSHOT_11


def main() -> None:
    print("=== Building a SPOKE-like knowledge graph ===")
    kg = generate_knowledge_graph(512, mean_degree=5.0, seed=11)
    counts = kg.type_counts()
    print(f"  {kg.n_vertices} vertices, {kg.n_edges} edges")
    print("  types:", ", ".join(f"{t}={n}" for t, n in counts.items()))

    print("\n=== All-pairs shortest paths (distributed Floyd-Warshall) ===")
    dist_matrix = kg.distance_matrix()
    result = distributed_floyd_warshall(dist_matrix, grid=4,
                                        fabric=SLINGSHOT_11, ranks_per_node=8)
    serial = blocked_floyd_warshall(dist_matrix, 128)
    assert np.allclose(result.dist, serial)
    reachable = np.isfinite(result.dist).mean()
    print(f"  16 simulated ranks, {result.messages} collectives, "
          f"simulated wall {result.elapsed*1e3:.2f} ms")
    print(f"  {reachable:.1%} of pairs connected; results match serial: True")

    print("\n=== Discovering unknown relationships ===")
    hits = discover_relationships(kg, result.dist, source_type="compound",
                                  target_type="disease", max_distance=4.0, top=5)
    print("  top indirect compound -> disease connections (no direct edge):")
    for u, v, d in hits:
        print(f"    compound {u:4d} -> disease {v:4d}: path length {d:.2f}")

    print("\n=== Autotuning the (min,+) kernel (§3.9) ===")
    for gpu in (V100, MI250X):
        tuned = TileAutotuner(gpu).tune(40960)
        print(f"  {gpu.name:8s}: best {tuned.best} -> "
              f"{0.71 * tuned.best_tflops:5.1f} TF sustained "
              f"({tuned.evaluated} configs timed)")
    print("  (paper: 5.6 TF on V100 -> 30.6 TF on MI250X)")


if __name__ == "__main__":
    main()
