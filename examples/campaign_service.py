"""A multi-tenant campaign service over the simulated machine.

Run:  python examples/campaign_service.py

The paper's applications never had Frontier to themselves: their
campaigns ran through batch queues and workflow services (ALCF's Balsam,
OLCF's launch queues) that packed many teams' jobs onto one machine.
This example runs that whole stack in simulation:

1. a machine pool carved from the hardware catalog (a Summit-like
   32-node slice plus two warm spares);
2. three tenants submitting an open-loop Poisson stream of HACC-style
   campaigns in four sizes, priorities and all — every arrival, seed
   and size drawn from one seeded generator;
3. EASY backfill scheduling with per-tenant fair-share decay, walltime
   estimates derived from Young/Daly checkpoint math, and spare-node
   borrowing for heads stuck past a threshold;
4. fault injection ON for every job: campaigns recover through the
   spare-swap policy, drawing from the *same* spare pool the scheduler
   borrows from — the audit log shows both sides contending;
5. service SLOs (sustained jobs/sec, p50/p99 queue wait, utilization,
   per-tenant shares) and the acceptance check that every completed
   campaign is bit-identical to a failure-free standalone run.

``--trace PATH`` writes one merged Chrome-trace/Perfetto JSON with the
scheduler's decisions, every job's span per tenant, and (via
``--trace-campaigns``) the apps' own step spans on the same timeline.
"""

import argparse

from repro.observability import Tracer, export_chrome_trace
from repro.resilience import CheckpointCostModel, FaultKind
from repro.service import (
    CampaignService,
    EasyBackfillScheduler,
    OpenLoopArrivals,
    build_pool,
    failure_free_checksum,
)


def main(trace: str | None = None, trace_campaigns: bool = False,
         njobs: int = 120) -> None:
    pool = build_pool("summit", nodes=32, spares=2)
    print(f"machine : {pool.describe()}")

    arrivals = OpenLoopArrivals(
        rate=80.0,
        tenants={"astro": 2.0, "chem": 1.0, "climate": 1.0},
        seed=2023,
    )
    jobs = arrivals.draw(njobs)
    print(f"workload: {njobs} jobs from {len(arrivals.tenant_names)} tenants, "
          f"offered load {arrivals.offered_load():.1f} node-s/s")

    tracer = Tracer() if trace or trace_campaigns else None
    service = CampaignService(
        pool,
        seed=2023,
        fault_mtbf={
            FaultKind.RANK_FAILURE: 1.5,
            FaultKind.DEVICE_OOM: 6.0,
            FaultKind.LINK_DEGRADATION: 3.0,
        },
        cost_model=CheckpointCostModel(restart_cost=0.05),
        backoff_base=0.05,
        scheduler=EasyBackfillScheduler(borrow_after=1.0),
        tracer=tracer,
        trace_campaigns=trace_campaigns,
    )
    result = service.run(jobs)

    print()
    print(result.render())
    print()

    audit = pool.spares.audit()
    recov = sum(1 for e in audit if e[1] == "recovery")
    sched = sum(1 for e in audit if e[1] == "scheduler")
    print(f"spare-pool contention: {len(audit)} audit events "
          f"({recov} recovery draws, {sched} scheduler borrows, "
          f"{pool.spares.denials} denials)")

    verified = sum(
        1 for j in result.completed
        if j.result_checksum == failure_free_checksum(j)
    )
    assert verified == len(result.completed)
    print(f"bit-identity: {verified}/{len(result.completed)} completed "
          f"campaigns identical to their failure-free standalone replay")

    if trace and tracer is not None:
        from pathlib import Path

        Path(trace).write_text(export_chrome_trace(tracer))
        print(f"trace    : wrote {len(tracer.spans)} spans to {trace}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default=None,
                        help="write a merged Chrome/Perfetto trace here")
    parser.add_argument("--trace-campaigns", action="store_true",
                        help="thread the tracer into the apps themselves")
    parser.add_argument("--njobs", type=int, default=120)
    args = parser.parse_args()
    main(trace=args.trace, trace_campaigns=args.trace_campaigns,
         njobs=args.njobs)
