"""Pele-style reacting-flow building blocks: AMR + EB + stiff chemistry.

Run:  python examples/combustion_amr.py

Exercises the real substrates behind the PeleC reproduction: a
block-structured AMR hierarchy with embedded boundaries, generated
chemistry source (PelePhysics-style), a CVODE-like implicit integration
of the generated mechanism, and the Figure 2 history.
"""

import numpy as np

from repro.amr import AmrHierarchy, Box, BoxArray, MultiFab, build_eb_geometry
from repro.apps import pele
from repro.chem import compile_rates, h2_o2_mechanism
from repro.chem.kinetics import analytic_jacobian
from repro.ode import BdfIntegrator, LinearSolver


def main() -> None:
    print("=== AMR hierarchy with an embedded cylinder ===")
    domain = Box(lo=(0, 0, 0), hi=(63, 63, 63))
    hierarchy = AmrHierarchy(domain, max_levels=3, max_grid_size=16)
    # refine near the cylinder surface at x,y = 32
    hierarchy.regrid(lambda b: abs(b.lo[0] - 28) < 12 and abs(b.lo[1] - 28) < 12)
    print(f"  levels: {hierarchy.nlevels}, composite cells: "
          f"{hierarchy.composite_cells():,}")
    print(f"  uniform-grid equivalent: {hierarchy.equivalent_uniform_cells():,} "
          f"({hierarchy.savings_factor():.1f}x saved by AMR)")

    geom = build_eb_geometry(
        Box(lo=(0, 0, 0), hi=(31, 31, 31)),
        lambda x, y, z: 8.0 - np.sqrt((x - 16) ** 2 + (y - 16) ** 2),
    )
    print(f"  EB classification: {geom.n_regular} fluid, {geom.n_cut} cut, "
          f"{geom.n_covered} covered cells")

    print("\n=== Ghost exchange on a MultiFab ===")
    ba = BoxArray.from_domain(domain, 32)
    mf = MultiFab(ba, domain, ncomp=5, nghost=2)
    mf.set_from_function(lambda x, y, z: np.sin(0.1 * x) * np.cos(0.1 * y) + z)
    moved = mf.fill_boundary()
    print(f"  {len(ba)} boxes, {moved/1e6:.1f} MB of ghost data per fill")

    print("\n=== Generated chemistry + CVODE-like integration (§3.8) ===")
    mech = h2_o2_mechanism()
    generated = compile_rates(mech)
    print(f"  generated rates routine: {generated.n_lines} lines, "
          f"~{generated.estimated_registers} live registers")
    T = 1500.0
    c0 = np.array([1.0, 0.5, 0.0, 0.0, 0.0, 0.0])
    integ = BdfIntegrator(
        lambda t, c: generated.fn(T, np.maximum(c, 0.0)),
        jac=lambda t, c: analytic_jacobian(mech, T, np.maximum(c, 0.0)),
        rtol=1e-5, atol=1e-9, linear_solver=LinearSolver.DENSE,
    )
    res = integ.integrate(c0, 0.0, 1e-3)
    names = mech.species
    final = ", ".join(f"{n}={v:.3e}" for n, v in zip(names, res.y))
    print(f"  ignition advance to t=1 ms: {res.stats.steps} BDF steps, "
          f"{res.stats.newton_iters} Newton iterations")
    print(f"  final state: {final}")

    print("\n=== Batched chemistry: every cell at once (§3.8) ===")
    import time

    from repro.chem.codegen import compile_batched_kernels
    from repro.ode import BatchedBdfIntegrator

    kernels = compile_batched_kernels(mech)
    rng = np.random.default_rng(0)
    T_field = rng.uniform(1200.0, 1600.0, 64)
    C_field = rng.uniform(0.05, 1.0, (64, mech.n_species))
    batched = BatchedBdfIntegrator(
        lambda t, c: kernels.rates(T_field, np.maximum(c, 0.0)),
        jac=lambda t, c: kernels.jacobian(T_field, np.maximum(c, 0.0)),
        rtol=1e-6, atol=1e-9,
    )
    t0 = time.perf_counter()
    bres = batched.integrate(C_field, 0.0, 1e-4)
    wall = time.perf_counter() - t0
    s = bres.stats
    print(f"  64 cells advanced together in {wall*1e3:.0f} ms: "
          f"{s.steps} cell-steps in {s.step_rounds} lockstep rounds")
    print(f"  {s.rhs_sweeps} batched RHS sweeps, {s.jac_builds} Jacobian "
          f"builds, {s.cells_refactored} cell-LU refactorizations "
          "(reuse does the rest)")

    print("\n=== Coupled reacting flow (PeleC-in-miniature) ===")
    from repro.hydro import ignition_demo

    flow = ignition_demo(48, steps=2)
    T = flow.temperature()
    h2o = flow.concentrations[2]
    print(f"  hot pocket: T_max = {T.max():.0f} K, H2O formed "
          f"{h2o.max():.2e} mol (edges frozen: {h2o[0] == 0.0})")

    print("\n=== The Figure 2 history ===")
    for date, machine, state, t in pele.figure2_history():
        print(f"  {date}  {machine:9s} {state:18s} {t:.3e} s/cell/step")
    print(f"  total improvement: {pele.total_improvement():.1f}x (paper: ~75x)")

    print("\n=== Surviving node failures: the campaign through the "
          "resilience layer ===")
    from repro.resilience import (
        CheckpointCostModel,
        FaultInjector,
        FaultKind,
        ResilientRunner,
    )
    from repro.hydro.reacting import ReactingFlow1D

    class ReactingFlowApp:
        """Adapter: the reacting-flow solver as a resilient-runner app."""

        snapshot_kind = ReactingFlow1D.snapshot_kind
        snapshot_version = ReactingFlow1D.snapshot_version

        def __init__(self, flow):
            self.flow = flow

        def step(self) -> float:
            self.flow.step(chem_dt=2e-6)
            return 30.0  # simulated seconds per coupled step at scale

        def snapshot(self):
            return self.flow.snapshot()

        def restore(self, snap) -> None:
            self.flow.restore(snap)

    reference = ReactingFlowApp(ignition_demo(32, steps=0))
    ResilientRunner(reference, checkpoint_interval=2).run(6)

    app = ReactingFlowApp(ignition_demo(32, steps=0))
    injector = FaultInjector(
        rng=np.random.default_rng(7),
        mtbf={FaultKind.RANK_FAILURE: 70.0},
    )
    runner = ResilientRunner(
        app, checkpoint_interval=2, injector=injector,
        cost_model=CheckpointCostModel(restart_cost=5.0), max_retries=20,
    )
    stats = runner.run(6)
    print(f"  {stats.describe()}")
    identical = (
        np.array_equal(app.flow.concentrations, reference.flow.concentrations)
        and np.array_equal(app.flow.hydro.ener, reference.flow.hydro.ener)
    )
    print(f"  final flow state bit-identical to failure-free run: {identical}")


if __name__ == "__main__":
    main()
