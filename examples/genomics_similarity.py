"""CoMet-style comparative genomics: exact similarity on reduced precision.

Run:  python examples/genomics_similarity.py

Demonstrates the §3.6 story end to end: 2-way CCC over synthetic allele
data via the GEMM formulation, the exactness of the FP16 and Int8 paths,
the 3-way metric (epistasis-style triples), and the precision/throughput
trade on simulated Frontier hardware.
"""

import numpy as np

from repro.apps import comet
from repro.similarity import (
    ccc_similarity,
    cooccurrence_counts_bruteforce,
    cooccurrence_counts_gemm,
    random_allele_data,
    threeway_similarity,
)


def main() -> None:
    print("=== Synthetic allele data ===")
    data = random_allele_data(24, 400, seed=7)
    # plant two strongly related vectors and a correlated triple
    data[5] = data[2]
    data[9, :200] = data[3, :200]
    print(f"  {data.shape[0]} sample vectors x {data.shape[1]} allele fields")

    print("\n=== Reduced precision computes EXACT counts (§3.6) ===")
    exact = cooccurrence_counts_bruteforce(data)
    for label, kwargs in (("FP64 GEMM", {}), ("FP16 GEMM", {"fp16": True}),
                          ("Int8 GEMM", {"int8": True})):
        match = np.array_equal(cooccurrence_counts_gemm(data, **kwargs), exact)
        print(f"  {label}: matches brute force = {match}")

    print("\n=== 2-way CCC similarity ===")
    sim = ccc_similarity(data)
    pairs = [(i, j) for i in range(24) for j in range(i + 1, 24)]
    top = sorted(pairs, key=lambda p: -sim[p])[:3]
    for i, j in top:
        marker = "  <- planted duplicate" if (i, j) == (2, 5) else ""
        print(f"  vectors ({i:2d},{j:2d}): CCC = {sim[i, j]:.4f}{marker}")

    print("\n=== 3-way CCC on a subset (triple interactions) ===")
    sub = data[:8]
    sim3 = threeway_similarity(sub)
    triples = [(i, j, k) for i in range(8) for j in range(i + 1, 8)
               for k in range(j + 1, 8)]
    best = max(triples, key=lambda t: sim3[t])
    print(f"  strongest triple: {best} with score {sim3[best]:.4f}")

    print("\n=== Precision/throughput trade on Frontier (per GCD) ===")
    for dtype, tf in comet.precision_ablation().items():
        print(f"  {dtype}: {tf:6.1f} TF useful")
    print(f"\n  full-system projection: {comet.system_exaflops():.2f} EF "
          "on 9074 nodes (paper: 6.71 EF)")


if __name__ == "__main__":
    main()
