"""The performance-engineering toolbox the COE taught (§3.10.3, §5).

Run:  python examples/performance_tools.py

Profiles a kernel set, reads the compiler's assembly-dump fields, applies
the register-allocation fix, microbenchmarks the device math library, and
exports a Chrome-trace timeline — the workflow the LAMMPS/AMD
collaboration used to crack the ReaxFF register-spill problem.
"""

import json

from repro.gpu import (
    Device,
    KernelSpec,
    MathLibrary,
    apply_compiler_fix,
    assembly_report,
    profile_kernels,
    roofline_report,
    timeline_stats,
    to_chrome_trace,
)
from repro.hardware.gpu import MI250X_GCD


def main() -> None:
    device = MI250X_GCD
    kernels = [
        KernelSpec(name="torsion_force", flops=4e10, bytes_read=2e9,
                   bytes_written=5e8, registers_per_thread=290,
                   active_lane_fraction=0.3),
        KernelSpec(name="angle_force", flops=2e10, bytes_read=1e9,
                   bytes_written=3e8, registers_per_thread=270),
        KernelSpec(name="qeq_spmv", flops=4e9, bytes_read=8e9,
                   bytes_written=4e8, registers_per_thread=64),
        KernelSpec(name="neighbor_build", flops=6e9, bytes_read=3e9,
                   bytes_written=2e9, registers_per_thread=48),
    ]

    print("=== Kernel profile (hottest first) ===")
    for row in profile_kernels(kernels, device):
        print(f"  {row.kernel:16s} {row.time*1e3:8.2f} ms  {row.share:5.1%}  "
              f"{row.bound}-bound  occ {row.occupancy:.2f} ({row.limited_by})"
              + (f"  SPILLS {row.spills} regs" if row.spills else ""))

    print("\n=== -save-temps assembly fields (§3.10.3) ===")
    for k in kernels[:2]:
        rep = assembly_report(k, device)
        print(f"  {rep.kernel}: vgpr_count={rep.vgpr_count} "
              f"vgpr_spill_count={rep.vgpr_spill_count} "
              f"amdhsa_private_segment_fixed_size={rep.amdhsa_private_segment_fixed_size}")

    print("\n=== After the compiler register-allocation fix ===")
    from repro.gpu import time_kernel

    for k in kernels[:2]:
        fixed = apply_compiler_fix(k)
        rep = assembly_report(fixed, device)
        gain = time_kernel(k, device).total_time / time_kernel(fixed, device).total_time
        print(f"  {k.name}: spills -> {rep.vgpr_spill_count}, {gain:.2f}x faster")

    print("\n=== Math-library microbenchmark (results/s, Grsips) ===")
    old, new = MathLibrary(optimized=False), MathLibrary(optimized=True)
    for fn in ("fma", "exp", "log", "pow"):
        a, b = old.throughput(fn, device), new.throughput(fn, device)
        print(f"  {fn:4s}: {a/1e9:9.1f} -> {b/1e9:9.1f} Gop/s "
              f"({b/a:.1f}x after ROCm optimization)")

    print("\n=== Roofline placement ===")
    print(roofline_report(kernels, device))

    print("\n=== Timeline export ===")
    d = Device(device)
    for k in kernels:
        d.launch(apply_compiler_fix(k))
    d.synchronize()
    doc = json.loads(to_chrome_trace(d))
    stats = timeline_stats(d)
    print(f"  {len(doc['traceEvents'])} chrome-trace events; device "
          f"utilization {stats.utilization:.1%}, largest gap "
          f"{stats.largest_gap*1e6:.2f} us")


if __name__ == "__main__":
    main()
