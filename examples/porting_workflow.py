"""The COE application-readiness workflow, end to end.

Run:  python examples/porting_workflow.py

Plays one application team's four years: declare a challenge problem and
FOM, port a CUDA mini-app with hipify, climb the early-access ladder
(Poplar → Spock → Crusher → Frontier) while filing issues and lessons,
track the FOM, and pass the final review.
"""

from repro.core import (
    AccelerationPlan,
    ChallengeProblem,
    ChallengeTracker,
    Channel,
    EarlyAccessCampaign,
    FigureOfMerit,
    FomKind,
    KnowledgeBase,
    Lesson,
    ReadinessPhase,
    ReviewVerdict,
    convergence_to_frontier,
)
from repro.gpu import KernelSpec
from repro.hardware import CRUSHER, FRONTIER, POPLAR, SPOCK, SUMMIT
from repro.gpu.perfmodel import time_kernel
from repro.progmodel.hipify import hipify

APP_KERNEL = KernelSpec(
    name="stencil_rhs",
    flops=6e11,
    bytes_read=3e10,
    bytes_written=1e10,
    registers_per_thread=120,
)

CUDA_MINIAPP = """
state = rt.cudaMalloc(nbytes)
rt.cudaMemcpyHostToDevice(state)
for step in range(nsteps):
    rt.cudaLaunchKernel(rhs_kernel)
rt.cudaDeviceSynchronize()
rt.cudaMemcpyDeviceToHost(state)
"""


def main() -> None:
    # 1. Declare the challenge problem, FOM and plan (the §6 contract).
    summit_rate = 1.0 / time_kernel(APP_KERNEL, SUMMIT.node.gpu).total_time
    fom = FigureOfMerit(name="steps/sec per GPU", kind=FomKind.THROUGHPUT,
                        reference_value=summit_rate, target_factor=2.5)
    tracker = ChallengeTracker(
        problem=ChallengeProblem(application="MiniApp", description="stencil RHS",
                                 fom=fom),
        plan=AccelerationPlan(application="MiniApp", milestones=(
            "hipify the CUDA code", "first run on early access",
            "tune for MI250X", "full-scale Frontier run")),
    )
    print(f"Challenge declared: reference {summit_rate:.1f} steps/s on Summit, "
          f"target {fom.target_factor}x (a memory-bound stencil: the\n"
          "  commitment tracks the bandwidth ratio, not the FLOP ratio)")

    # 2. Port with hipify.
    result = hipify(CUDA_MINIAPP)
    print(f"\nhipify: {result.substitutions} substitutions, "
          f"clean={result.clean}")
    tracker.complete_milestone(0)

    # 3. Climb the early-access ladder.
    campaign = EarlyAccessCampaign(application="MiniApp")
    kb = KnowledgeBase()
    print("\nEarly-access ladder (convergence to Frontier in brackets):")
    for machine in (POPLAR, SPOCK, CRUSHER, FRONTIER):
        rate = 1.0 / time_kernel(APP_KERNEL, machine.node.gpu).total_time
        m = tracker.tracker.record(machine.name, rate)
        conv = convergence_to_frontier(machine, FRONTIER)
        print(f"  {machine.name:9s} [{conv:.1f}]: {rate:8.1f} steps/s "
              f"({fom.achieved_factor(rate):.2f}x of reference)")
        if machine is POPLAR:
            campaign.file_issue(machine.name, ReadinessPhase.FUNCTIONALITY,
                                "kernel faults under early ROCm")
            lid = kb.add(Lesson(topic="early ROCm faults",
                                issue="intermittent faults in divergent code",
                                mitigation="update ROCm; reduce register pressure",
                                source_application="MiniApp",
                                source_channel=Channel.HACKATHON))
            kb.disseminate(lid, Channel.USER_GUIDE)
            campaign.resolve(0)
    tracker.complete_milestone(1)
    tracker.complete_milestone(2)
    tracker.complete_milestone(3)

    # 4. Final review.
    report = tracker.file_report("final", notes="Frontier production run")
    verdict = tracker.review()
    print(f"\nFinal report: achieved {report.achieved_factor:.2f}x "
          f"(target {fom.target_factor}x) -> {verdict.value.upper()}")
    print(f"Lessons in the user guide: {len(kb.in_user_guide())}; "
          f"re-triages avoided: {kb.triage_savings()}")
    assert verdict is ReviewVerdict.ON_TRACK


if __name__ == "__main__":
    main()
