"""Quickstart: the simulation stack in five minutes.

Run:  python examples/quickstart.py

Walks the core objects: the hardware catalog, kernel timing on simulated
GPUs, hipify translation, the HIP-vs-CUDA comparison, and one Table 2
speed-up.
"""

from repro.apps import lsms
from repro.gpu import KernelSpec, time_kernel
from repro.hardware import FRONTIER, SUMMIT, Precision
from repro.hardware.gpu import MI250X_GCD, V100
from repro.progmodel import CudaRuntime, HipRuntime, hipify


def main() -> None:
    print("=== The machines ===")
    for machine in (SUMMIT, FRONTIER):
        print(" ", machine.describe())

    print("\n=== Timing one kernel on both GPUs ===")
    gemm = KernelSpec(
        name="dgemm_4096",
        flops=2 * 4096.0**3,
        bytes_read=2 * 4096.0**2 * 8,
        bytes_written=4096.0**2 * 8,
        precision=Precision.FP64,
        registers_per_thread=128,
    )
    for gpu in (V100, MI250X_GCD):
        t = time_kernel(gemm, gpu)
        print(f"  {gpu.name:15s} {t.total_time*1e3:8.2f} ms  ({t.bound}-bound, "
              f"occupancy {t.occupancy.occupancy:.2f})")

    print("\n=== hipify: CUDA source to HIP ===")
    cuda_src = "buf = rt.cudaMalloc(n); rt.cudaMemcpyHostToDevice(buf); rt.cudaLaunchKernel(k)"
    result = hipify(cuda_src)
    print("  in :", cuda_src)
    print("  out:", result.translated)
    print(f"  {result.substitutions} substitutions, clean={result.clean}")

    print("\n=== HIP vs CUDA on the same NVIDIA device (the Figure 1 fact) ===")
    for name, rt_cls, launch in (
        ("CUDA", CudaRuntime, "cudaLaunchKernel"),
        ("HIP ", HipRuntime, "hipLaunchKernel"),
    ):
        rt = rt_cls(V100)
        getattr(rt, launch)(gemm)
        rt.device_synchronize()
        print(f"  {name}: {rt.elapsed*1e3:.4f} ms")

    print("\n=== One Table 2 row, from first principles ===")
    print(f"  LSMS per-GPU speed-up Summit -> Frontier: "
          f"{lsms.speedup():.2f}x  (paper: 7.5x)")


if __name__ == "__main__":
    main()
