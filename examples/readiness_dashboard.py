"""The COE readiness dashboard across all eight Table 2 applications.

Run:  python examples/readiness_dashboard.py

The capstone view the Management Council reviews ran on (§6): every
application's simulated Summit→Frontier acceleration against its
commitment, plus the paper-vs-measured experiment ledger.
"""

from repro.experiments import build_dashboard, run_table2


def main() -> None:
    dashboard = build_dashboard()
    print(dashboard.render())
    assert dashboard.all_on_track

    print()
    print(run_table2().render())

    print("\nAll applications met their acceleration commitments — the")
    print("simulated COE closes out as the real one did.")


if __name__ == "__main__":
    main()
