"""Resilience at Exascale: checkpoint/restart under injected failures.

Run:  python examples/resilient_campaign.py

The paper's campaigns (weeks on 4 096-9 408 nodes) only produced their
figures because checkpoint/restart absorbed the node losses a machine
that size suffers daily.  This example exercises the reproduction's
resilience subsystem end to end:

1. Young/Daly optimal checkpoint intervals computed from the same
   machine models (fabric alpha-beta, node counts) the rest of the
   repo uses;
2. a fault-injected HACC-style campaign — rank failures, device OOM and
   link degradation drawn from seeded exponential MTBF processes —
   driven by the ResilientRunner, recovering from the last valid
   snapshot, with the final phase space bit-identical to a
   failure-free run;
3. the Figure 2 Pele chemistry campaign surviving injected rank
   failures with an exact replay;
4. a measured overhead-vs-interval sweep against Daly's model: the
   sweet spot lands where sqrt(2 delta M) says it should.
"""

import numpy as np

from repro.apps.exasky import ExaskyCampaign
from repro.gpu.device import Device
from repro.hardware.catalog import FRONTIER, SUMMIT
from repro.mpisim import SimComm
from repro.resilience import (
    CheckpointCostModel,
    FaultInjector,
    FaultKind,
    ResilientRunner,
    encode_snapshot,
    machine_checkpoint_cost,
    optimal_interval_for_machine,
    predicted_overhead,
    system_mtbf,
    young_daly_interval,
)


def main(fast: bool = False) -> None:
    """Run the full demo; ``fast`` shrinks the campaign and the Daly sweep
    (fewer steps, particles and seeds) without dropping any assertion —
    the bit-identical-recovery check runs in both modes."""
    print("=== Young/Daly intervals from the machine models ===")
    nbytes = 16 << 30  # 16 GiB of state per node, a typical PeleC plotfile
    for machine in (SUMMIT, FRONTIER):
        mtbf = system_mtbf(machine)
        delta = machine_checkpoint_cost(machine, nbytes).write_time(nbytes)
        w = optimal_interval_for_machine(machine, nbytes)
        print(f"  {machine.name:9s} {machine.nodes:5d} nodes: system MTBF "
              f"{mtbf/3600:5.1f} h, ckpt {delta:6.1f} s "
              f"-> checkpoint every {w/60:.0f} min")

    print("\n=== Fault-injected HACC campaign, bit-identical restart ===")
    nsteps, interval = (120, 25) if fast else (400, 25)
    nparticles = 1024 if fast else 4096

    def campaign() -> ExaskyCampaign:
        return ExaskyCampaign(nparticles=nparticles, seed=3)

    cost = CheckpointCostModel(latency=5e-4, restart_cost=0.05)
    reference = campaign()
    ResilientRunner(reference, checkpoint_interval=interval,
                    cost_model=cost).run(nsteps)

    app = campaign()
    comm = SimComm(16, FRONTIER.node.interconnect)
    device = Device(FRONTIER.node.gpu)
    injector = FaultInjector(
        rng=np.random.default_rng(43),
        mtbf={
            FaultKind.RANK_FAILURE: 2.0,
            FaultKind.DEVICE_OOM: 4.0,
            FaultKind.LINK_DEGRADATION: 1.5,
        },
        max_target=comm.nranks,
    )
    runner = ResilientRunner(
        app, checkpoint_interval=interval, injector=injector,
        cost_model=cost, comm=comm, device=device, max_retries=30,
        backoff_base=0.0,  # compressed timescale: skip the exponential waits
    )
    stats = runner.run(nsteps)
    print(f"  {stats.describe()}")
    identical = (
        np.array_equal(app.pos, reference.pos)
        and np.array_equal(app.vel, reference.vel)
        and app.steps_done == reference.steps_done
    )
    print(f"  final phase space bit-identical to failure-free run: {identical}")

    print("\n=== The Figure 2 campaign surviving rank failures ===")
    from repro.experiments.figure2 import run_figure2_resilient

    fig2 = run_figure2_resilient(nsteps=8, checkpoint_interval=2, ncells=8,
                                 mtbf=7.0)
    print("  " + fig2.render().replace("\n", "\n  "))
    assert all(fig2.checks().values()), fig2.checks()

    print("\n=== Measured overhead vs. the Daly curve ===")
    probe = campaign()
    delta = cost.write_time(len(encode_snapshot(probe.snapshot())))
    mtbf = 1.0
    w_opt = young_daly_interval(delta, mtbf)
    opt_steps = max(1, round(w_opt / probe.step_cost))
    print(f"  ckpt cost {delta*1e3:.2f} ms, MTBF {mtbf:.1f} s "
          f"-> W* = {w_opt:.3f} s ({opt_steps} steps)")
    # exponential failures are noisy; average the measurement
    nseeds = 3 if fast else 8
    sweep = ({max(1, opt_steps // 4), opt_steps, opt_steps * 4} if fast
             else {max(1, opt_steps // 4), opt_steps,
                   opt_steps * 4, opt_steps * 16})
    for steps in sorted(sweep):
        measured = []
        for trial in range(nseeds):
            run_app = campaign()
            inj = FaultInjector(rng=np.random.default_rng(100 + trial),
                                mtbf={FaultKind.RANK_FAILURE: mtbf})
            r = ResilientRunner(run_app, checkpoint_interval=steps,
                                injector=inj, cost_model=cost,
                                max_retries=200, backoff_base=0.0)
            measured.append(r.run(nsteps).overhead_fraction)
        pred = predicted_overhead(steps * run_app.step_cost, delta, mtbf,
                                  restart_cost=cost.restart_cost)
        marker = "  <- W*" if steps == opt_steps else ""
        print(f"  every {steps:3d} steps: measured overhead "
              f"{np.mean(measured):6.1%}  (Daly predicts {pred:6.1%})"
              f"{marker}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced-size run (smaller campaign and sweep)")
    main(fast=parser.parse_args().fast)
