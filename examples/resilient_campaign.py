"""Resilience at Exascale: checkpoint/restart under injected failures.

Run:  python examples/resilient_campaign.py

The paper's campaigns (weeks on 4 096-9 408 nodes) only produced their
figures because checkpoint/restart absorbed the node losses a machine
that size suffers daily.  This example exercises the reproduction's
resilience subsystem end to end:

1. Young/Daly optimal checkpoint intervals computed from the same
   machine models (fabric alpha-beta, node counts) the rest of the
   repo uses;
2. a fault-injected HACC-style campaign — rank failures, device OOM and
   link degradation drawn from seeded exponential MTBF processes —
   driven by the ResilientRunner, recovering from the last valid
   snapshot, with the final phase space bit-identical to a
   failure-free run;
3. an elastic shrink-and-continue recovery: a rank dies, the surviving
   communicator shrinks ULFM-style, the particle domain redistributes,
   and the campaign finishes *without* a restart — still bit-identical;
4. the Figure 2 Pele chemistry campaign surviving injected rank
   failures with an exact replay;
5. a measured overhead-vs-interval sweep against Daly's model: the
   sweet spot lands where sqrt(2 delta M) says it should.

``--policy {restart,shrink,spare}`` selects the recovery policy the
main campaign uses; all three end in the same bits.  ``--nodes N`` adds
a machine-scale act: the same fault-injected campaign through a
representative-rank :class:`~repro.mpisim.scaled.ScaledComm` modelling
every rank of an N-node Frontier (N x 8 machine ranks, a handful
executed), with failures drawn over the whole machine by
:func:`~repro.resilience.scaled_fault_injector` — and still bit-identical
to the failure-free run.  ``--trace PATH``
turns on the unified observability layer and writes one merged
Chrome-trace/Perfetto JSON of the whole demo — spans from the simulated
communicator, the resilience runner, the batched solver and the GPU
perf model on a single timeline.  Tracing is observation-only: the
returned final state is bit-identical with it on or off.
``--backend {numpy,numba,auto}`` picks the array engine for the
chemistry campaign; the Figure 2 exact-replay assertion is re-run under
every backend available in the process.
"""

import numpy as np

from repro.apps.exasky import ExaskyCampaign
from repro.gpu.device import Device
from repro.hardware.catalog import FRONTIER, SUMMIT
from repro.mpisim import RankGroupPartitioner, ScaledComm, SimComm
from repro.resilience import (
    CheckpointCostModel,
    FaultInjector,
    FaultKind,
    ResilientRunner,
    encode_snapshot,
    machine_checkpoint_cost,
    make_policy,
    optimal_interval_for_machine,
    predicted_overhead,
    scaled_fault_injector,
    system_mtbf,
    young_daly_interval,
)


def main(fast: bool = False, policy: str = "restart",
         trace: str | None = None, backend: str = "auto",
         nodes: int | None = None) -> dict:
    """Run the full demo; ``fast`` shrinks the campaign and the Daly sweep
    (fewer steps, particles and seeds) without dropping any assertion —
    the bit-identical-recovery checks run in both modes.  ``policy``
    picks the main campaign's recovery strategy.  ``trace`` (a path)
    records the demo through :mod:`repro.observability` and writes the
    merged Chrome-trace JSON there.  ``backend`` selects the array engine
    for the Figure 2 chemistry campaign; the exact-replay assertion is
    additionally re-run under *every* available backend.  Returns the
    final state and fault accounting of the main campaign, so a
    differential harness can assert traced and untraced runs are
    identical."""
    from repro.backend import available_backends, get_backend

    be = get_backend(backend)
    tracer = None
    if trace is not None:
        from repro.observability import Tracer

        tracer = Tracer()
    print(f"array backend: {be.name} "
          f"(available: {', '.join(available_backends())})")
    print("=== Young/Daly intervals from the machine models ===")
    nbytes = 16 << 30  # 16 GiB of state per node, a typical PeleC plotfile
    for machine in (SUMMIT, FRONTIER):
        mtbf = system_mtbf(machine)
        delta = machine_checkpoint_cost(machine, nbytes).write_time(nbytes)
        w = optimal_interval_for_machine(machine, nbytes)
        print(f"  {machine.name:9s} {machine.nodes:5d} nodes: system MTBF "
              f"{mtbf/3600:5.1f} h, ckpt {delta:6.1f} s "
              f"-> checkpoint every {w/60:.0f} min")

    print(f"\n=== Fault-injected HACC campaign, policy={policy} ===")
    nsteps, interval = (80, 25) if fast else (400, 25)
    nparticles = 512 if fast else 4096

    def campaign() -> ExaskyCampaign:
        return ExaskyCampaign(nparticles=nparticles, seed=3)

    cost = CheckpointCostModel(latency=5e-4, restart_cost=0.05)
    reference = campaign()
    ResilientRunner(reference, checkpoint_interval=interval,
                    cost_model=cost).run(nsteps)

    app = campaign()
    comm = SimComm(16, FRONTIER.node.interconnect, tracer=tracer)
    device = Device(FRONTIER.node.gpu)
    injector = FaultInjector(
        rng=np.random.default_rng(43),
        mtbf={
            FaultKind.RANK_FAILURE: 2.0,
            FaultKind.DEVICE_OOM: 4.0,
            FaultKind.LINK_DEGRADATION: 1.5,
        },
        max_target=comm.nranks,
    )
    # spares must come up fast on this compressed timescale or recoveries
    # outrun the MTBF and the event queue snowballs
    chosen = (make_policy("spare", spares=4, activation_cost=0.005)
              if policy == "spare" else policy)
    runner = ResilientRunner(
        app, checkpoint_interval=interval, injector=injector,
        cost_model=cost, comm=comm, device=device, max_retries=30,
        backoff_base=0.0,  # compressed timescale: skip the exponential waits
        policy=chosen, tracer=tracer,
    )
    stats = runner.run(nsteps)
    print(f"  {stats.describe()}")
    if stats.shrinks or stats.spares_used:
        print(f"  ranks {stats.ranks_initial} -> {stats.ranks_final}: "
              f"{stats.shrinks} shrink(s), {stats.spares_used} spare(s), "
              f"{stats.migrated_bytes/1e3:.1f} kB migrated, "
              f"{stats.degraded_throughput_time:.2f} s throughput haircut")
    identical = (
        np.array_equal(app.pos, reference.pos)
        and np.array_equal(app.vel, reference.vel)
        and app.steps_done == reference.steps_done
    )
    print(f"  final phase space bit-identical to failure-free run: {identical}")
    assert identical, f"policy={policy} diverged from the failure-free run"

    print("\n=== Elastic shrink-and-continue: lose a rank, keep going ===")
    shrink_app = campaign()
    shrink_comm = SimComm(16, FRONTIER.node.interconnect)
    shrink_runner = ResilientRunner(
        shrink_app, checkpoint_interval=interval,
        injector=FaultInjector(rng=np.random.default_rng(43),
                               mtbf={FaultKind.RANK_FAILURE: 2.0},
                               max_target=shrink_comm.nranks),
        cost_model=cost, comm=shrink_comm, max_retries=30,
        backoff_base=0.0, policy="shrink",
    )
    shrink_stats = shrink_runner.run(nsteps)
    assert shrink_stats.shrinks >= 1, "expected at least one shrink"
    assert shrink_stats.ranks_final < shrink_stats.ranks_initial
    assert np.array_equal(shrink_app.pos, reference.pos)
    assert np.array_equal(shrink_app.vel, reference.vel)
    print(f"  survived {shrink_stats.shrinks} failure(s) without restarting: "
          f"{shrink_stats.ranks_initial} -> {shrink_stats.ranks_final} ranks, "
          f"final state bit-identical to the failure-free run")

    scaled_stats = None
    if nodes:
        import dataclasses

        machine = dataclasses.replace(FRONTIER, nodes=int(nodes))
        ranks = machine.nodes * machine.node.gpus_per_node
        print(f"\n=== Machine-scale campaign: {machine.nodes} nodes, "
              f"{ranks} machine ranks, representative-rank engine ===")
        part = RankGroupPartitioner("endpoints").partition(ranks)
        scaled_comm = ScaledComm(ranks, machine.node.interconnect,
                                 ranks_per_node=machine.node.gpus_per_node,
                                 device_buffers=True, partition=part,
                                 tracer=tracer)
        scaled_app = campaign()
        # compress the failure timescale so this seconds-long campaign
        # sees the fault rate of a weeks-long one at this node count
        horizon = nsteps * scaled_app.step_cost
        compression = system_mtbf(machine) / (horizon / 4.0)
        scaled_runner = ResilientRunner(
            scaled_app, checkpoint_interval=interval,
            injector=scaled_fault_injector(
                np.random.default_rng(43), machine, machine_ranks=ranks,
                time_compression=compression),
            cost_model=cost, comm=scaled_comm, max_retries=30,
            backoff_base=0.0, policy="restart", tracer=tracer,
        )
        scaled_stats = scaled_runner.run(nsteps)
        print(f"  executing {scaled_comm.nranks} exemplar ranks for "
              f"{ranks}; {scaled_stats.describe()}")
        scaled_identical = (
            np.array_equal(scaled_app.pos, reference.pos)
            and np.array_equal(scaled_app.vel, reference.vel)
        )
        print(f"  final phase space bit-identical to failure-free run: "
              f"{scaled_identical}")
        assert scaled_identical, (
            f"machine-scale campaign at {machine.nodes} nodes diverged")

    print("\n=== The Figure 2 campaign surviving rank failures ===")
    from repro.experiments.figure2 import run_figure2_resilient

    fig2_device = Device(FRONTIER.node.gpu) if tracer is not None else None
    fig2 = run_figure2_resilient(nsteps=4 if fast else 8,
                                 checkpoint_interval=2,
                                 ncells=4 if fast else 8, mtbf=7.0,
                                 tracer=tracer, device=fig2_device,
                                 backend=be)
    print("  " + fig2.render().replace("\n", "\n  "))
    assert all(fig2.checks().values()), fig2.checks()

    # exact replay is a per-backend contract: whatever engine runs the
    # chemistry, recovery must land on the failure-free run's exact bits
    fig2_by_backend: dict[str, bool] = {be.name: bool(fig2.bit_identical)}
    for name in available_backends():
        if name == be.name:
            continue
        other = run_figure2_resilient(nsteps=4, checkpoint_interval=2,
                                      ncells=4, mtbf=7.0, backend=name)
        fig2_by_backend[name] = bool(other.bit_identical)
        assert other.bit_identical, (
            f"backend {name!r} recovery diverged from its failure-free run")
    print("  exact replay per backend: "
          + ", ".join(f"{k}={v}" for k, v in sorted(fig2_by_backend.items())))

    print("\n=== Measured overhead vs. the Daly curve ===")
    probe = campaign()
    delta = cost.write_time(len(encode_snapshot(probe.snapshot())))
    mtbf = 1.0
    w_opt = young_daly_interval(delta, mtbf)
    opt_steps = max(1, round(w_opt / probe.step_cost))
    print(f"  ckpt cost {delta*1e3:.2f} ms, MTBF {mtbf:.1f} s "
          f"-> W* = {w_opt:.3f} s ({opt_steps} steps)")
    # exponential failures are noisy; average the measurement
    nseeds = 2 if fast else 8
    sweep = ({max(1, opt_steps // 4), opt_steps, opt_steps * 4} if fast
             else {max(1, opt_steps // 4), opt_steps,
                   opt_steps * 4, opt_steps * 16})
    for steps in sorted(sweep):
        measured = []
        for trial in range(nseeds):
            run_app = campaign()
            inj = FaultInjector(rng=np.random.default_rng(100 + trial),
                                mtbf={FaultKind.RANK_FAILURE: mtbf})
            r = ResilientRunner(run_app, checkpoint_interval=steps,
                                injector=inj, cost_model=cost,
                                max_retries=200, backoff_base=0.0)
            measured.append(r.run(nsteps).overhead_fraction)
        pred = predicted_overhead(steps * run_app.step_cost, delta, mtbf,
                                  restart_cost=cost.restart_cost)
        marker = "  <- W*" if steps == opt_steps else ""
        print(f"  every {steps:3d} steps: measured overhead "
              f"{np.mean(measured):6.1%}  (Daly predicts {pred:6.1%})"
              f"{marker}")

    if tracer is not None:
        from pathlib import Path

        from repro.observability import (
            export_chrome_trace,
            hot_spans_report,
            subsystems_in_trace,
            validate_chrome_trace,
        )

        devices = [d for d in (device, fig2_device) if d is not None]
        doc = export_chrome_trace(tracer, devices)
        payload = validate_chrome_trace(doc)
        Path(trace).write_text(doc)
        print(f"\n=== Merged Chrome trace -> {trace} ===")
        print(f"  {len(payload['traceEvents'])} events, subsystems: "
              + ", ".join(sorted(subsystems_in_trace(payload))))
        print("  " + hot_spans_report(tracer, top=8).replace("\n", "\n  "))

    # the differential harness's contract: everything the demo computed
    # that tracing must not perturb, in one comparable payload
    return {
        "pos": app.pos.copy(),
        "vel": app.vel.copy(),
        "steps_done": int(app.steps_done),
        "events_drawn": int(stats.events_drawn),
        "events_fired": int(stats.events_fired),
        "events_requeued_pending": int(stats.events_requeued_pending),
        "recoveries": int(stats.recoveries),
        "failures_by_kind": dict(stats.failures_by_kind),
        "shrink_recoveries": int(shrink_stats.recoveries),
        "fig2_bit_identical": bool(fig2.bit_identical),
        "fig2_bit_identical_by_backend": fig2_by_backend,
        "scaled_nodes": int(nodes) if nodes else None,
        "scaled_recoveries": (int(scaled_stats.recoveries)
                              if scaled_stats is not None else None),
    }


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced-size run (smaller campaign and sweep)")
    parser.add_argument("--policy", choices=("restart", "shrink", "spare"),
                        default="restart",
                        help="recovery policy for the main campaign")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a merged Chrome-trace JSON of the demo")
    parser.add_argument("--backend", choices=("numpy", "numba", "auto"),
                        default="auto",
                        help="array backend for the chemistry campaign "
                             "(auto = numba when installed, else numpy)")
    parser.add_argument("--nodes", type=int, default=None, metavar="N",
                        help="also run the fault-injected campaign at N "
                             "Frontier nodes (N x 8 machine ranks) on the "
                             "representative-rank engine, e.g. 4096 or 9074")
    cli = parser.parse_args()
    main(fast=cli.fast, policy=cli.policy, trace=cli.trace,
         backend=cli.backend, nodes=cli.nodes)
