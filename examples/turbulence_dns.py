"""GESTS-style pseudo-spectral DNS: real solve + exascale FOM projection.

Run:  python examples/turbulence_dns.py

Solves Taylor-Green decay with the real pseudo-spectral Navier-Stokes
stepper, demonstrates the distributed 3-D FFT against numpy, then
projects the paper-scale FOM (18432^3 Summit reference vs 32768^3 on
4096 Frontier nodes) including the Slabs-vs-Pencils trade.
"""

import numpy as np

from repro.apps import gests
from repro.hardware.interconnect import SLINGSHOT_11
from repro.spectral import PseudoSpectralNS, SlabFFT3D


def main() -> None:
    print("=== A real (small) DNS: Taylor-Green decay ===")
    ns = PseudoSpectralNS(32, viscosity=0.02)
    ns.set_taylor_green()
    e0 = ns.energy()
    for step in range(25):
        ns.step(0.01)
    print(f"  E(0)={e0:.5f} -> E(0.25)={ns.energy():.5f}; "
          f"max divergence {ns.max_divergence():.2e} (must stay ~0)")

    print("\n=== The distributed FFT under the solver ===")
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 32, 32)) + 1j * rng.normal(size=(32, 32, 32))
    fft = SlabFFT3D(32, 8, fabric=SLINGSHOT_11)
    spectrum = fft.forward(fft.scatter(x))
    ok = np.allclose(fft.gather_spectrum(spectrum), np.fft.fftn(x))
    print(f"  8-rank slab FFT matches numpy.fft.fftn: {ok}; "
          f"{fft.stats.transposes} global transpose(s), "
          f"{fft.stats.comm_time*1e6:.1f} us simulated comm")

    print("\n=== Paper-scale FOM projection (§3.3) ===")
    cfg = gests.GestsConfig()
    summit = gests.summit_step(cfg)
    frontier = gests.frontier_step(cfg)
    print(f"  Summit  {cfg.summit_n}^3 on {cfg.summit_ranks} ranks: "
          f"{summit.total:6.2f} s/step  (FFT {summit.fft_time:.1f}s, "
          f"transpose {summit.transpose_time:.1f}s)")
    print(f"  Frontier {cfg.frontier_n}^3 on {cfg.frontier_ranks} ranks: "
          f"{frontier.total:6.2f} s/step")
    print(f"  FOM improvement: {gests.fom_improvement(cfg):.2f}x "
          "(CAAR target 4x, paper measured >5x)")

    print("\n=== Slabs vs Pencils at 4096 ranks ===")
    for name, step in gests.slabs_vs_pencils().items():
        print(f"  {name:8s}: {step.total:6.3f} s/step "
              f"(transpose share {step.transpose_time/step.total:.0%})")
    beyond = gests.pencil_only_scale()
    print(f"  pencils at 32768 ranks on a 4096^3 grid (impossible for slabs): "
          f"{beyond.total:.3f} s/step")


if __name__ == "__main__":
    main()
