"""repro: an exascale application-readiness simulation framework.

Reproduces "Experiences Readying Applications for Exascale" (SC 2023):
simulated Summit/Frontier-class hardware, CUDA/HIP/OpenMP/Kokkos/YAKL
programming-model layers, an MPI cost-model simulator, working numerical
substrates for the paper's ten applications, and the experiment harnesses
that regenerate Figure 1, Table 1, Table 2, Figure 2, and the in-text
performance claims.
"""

__version__ = "1.0.0"
