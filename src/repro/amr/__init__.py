"""AMReX-like block-structured AMR substrate (Pele's foundation, §3.8)."""

from repro.amr.box import Box, BoxArray, chop_domain
from repro.amr.eb import (
    CellType,
    EBGeometry,
    build_eb_geometry,
    eb_redistribution_weights,
    sorted_cut_cells,
)
from repro.amr.ghost import (
    GhostExchangeSpec,
    asynchronous_step_time,
    fill_boundary_time,
    synchronous_step_time,
)
from repro.amr.hierarchy import AmrHierarchy, AmrLevel
from repro.amr.multifab import FabArrayStats, MultiFab

__all__ = [
    "TwoLevelAdvection",
    "FluxRegister",
    "AmrHierarchy",
    "AmrLevel",
    "Box",
    "BoxArray",
    "CellType",
    "EBGeometry",
    "FabArrayStats",
    "GhostExchangeSpec",
    "MultiFab",
    "asynchronous_step_time",
    "build_eb_geometry",
    "chop_domain",
    "eb_redistribution_weights",
    "fill_boundary_time",
    "sorted_cut_cells",
    "synchronous_step_time",
]
from repro.amr.flux import FluxRegister, TwoLevelAdvection
