"""Boxes and box arrays: the index-space vocabulary of block-structured AMR.

A :class:`Box` is a rectangular region of cell-centred index space
(AMReX's ``Box``); a :class:`BoxArray` is the disjoint union of boxes that
tiles a level's valid region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Box:
    """A 3-D cell-centred index box, inclusive on both ends."""

    lo: tuple[int, int, int]
    hi: tuple[int, int, int]

    def __post_init__(self) -> None:
        if any(h < l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"empty box lo={self.lo} hi={self.hi}")

    @property
    def shape(self) -> tuple[int, int, int]:
        return tuple(h - l + 1 for l, h in zip(self.lo, self.hi))

    @property
    def ncells(self) -> int:
        return int(np.prod(self.shape))

    def grow(self, n: int) -> "Box":
        """The box enlarged by *n* ghost cells on every face."""
        return Box(
            lo=tuple(l - n for l in self.lo),
            hi=tuple(h + n for h in self.hi),
        )

    def intersects(self, other: "Box") -> bool:
        return all(
            self.lo[d] <= other.hi[d] and other.lo[d] <= self.hi[d]
            for d in range(3)
        )

    def intersection(self, other: "Box") -> "Box | None":
        if not self.intersects(other):
            return None
        return Box(
            lo=tuple(max(self.lo[d], other.lo[d]) for d in range(3)),
            hi=tuple(min(self.hi[d], other.hi[d]) for d in range(3)),
        )

    def contains(self, other: "Box") -> bool:
        return all(
            self.lo[d] <= other.lo[d] and other.hi[d] <= self.hi[d]
            for d in range(3)
        )

    def refine(self, ratio: int) -> "Box":
        """The box in the next-finer index space."""
        if ratio < 1:
            raise ValueError("refinement ratio must be >= 1")
        return Box(
            lo=tuple(l * ratio for l in self.lo),
            hi=tuple((h + 1) * ratio - 1 for h in self.hi),
        )

    def coarsen(self, ratio: int) -> "Box":
        if ratio < 1:
            raise ValueError("refinement ratio must be >= 1")
        return Box(
            lo=tuple(l // ratio for l in self.lo),
            hi=tuple(h // ratio for h in self.hi),
        )

    def shift(self, offset: tuple[int, int, int]) -> "Box":
        return Box(
            lo=tuple(l + o for l, o in zip(self.lo, offset)),
            hi=tuple(h + o for h, o in zip(self.hi, offset)),
        )


def chop_domain(domain: Box, max_grid_size: int) -> list[Box]:
    """Chop *domain* into boxes no larger than ``max_grid_size`` per side —
    AMReX's ``maxGridSize`` decomposition."""
    if max_grid_size < 1:
        raise ValueError("max_grid_size must be positive")
    boxes: list[Box] = []
    los = [
        range(domain.lo[d], domain.hi[d] + 1, max_grid_size)
        for d in range(3)
    ]
    for i in los[0]:
        for j in los[1]:
            for k in los[2]:
                boxes.append(
                    Box(
                        lo=(i, j, k),
                        hi=(
                            min(i + max_grid_size - 1, domain.hi[0]),
                            min(j + max_grid_size - 1, domain.hi[1]),
                            min(k + max_grid_size - 1, domain.hi[2]),
                        ),
                    )
                )
    return boxes


@dataclass(frozen=True)
class BoxArray:
    """A disjoint collection of boxes tiling a level."""

    boxes: tuple[Box, ...]

    def __post_init__(self) -> None:
        for i, a in enumerate(self.boxes):
            for b in self.boxes[i + 1 :]:
                if a.intersects(b):
                    raise ValueError(f"overlapping boxes {a} and {b}")

    def __len__(self) -> int:
        return len(self.boxes)

    def __iter__(self):
        return iter(self.boxes)

    @property
    def ncells(self) -> int:
        return sum(b.ncells for b in self.boxes)

    @classmethod
    def from_domain(cls, domain: Box, max_grid_size: int) -> "BoxArray":
        return cls(boxes=tuple(chop_domain(domain, max_grid_size)))

    def distribute(self, nranks: int) -> list[int]:
        """Round-robin-by-size distribution map: box index → owning rank.

        Greedy largest-first assignment to the least-loaded rank (the
        knapsack heuristic AMReX's ``DistributionMapping`` uses).
        """
        if nranks < 1:
            raise ValueError("nranks must be positive")
        order = sorted(range(len(self.boxes)), key=lambda i: -self.boxes[i].ncells)
        load = [0] * nranks
        owner = [0] * len(self.boxes)
        for i in order:
            r = load.index(min(load))
            owner[i] = r
            load[r] += self.boxes[i].ncells
        return owner
