"""Embedded boundaries: cut-cell geometry over a MultiFab (Pele, §3.8).

A signed-distance function classifies cells as regular / cut / covered;
cut cells carry volume fractions.  The EB routines Pele needed device
sorting for are represented by :func:`sorted_cut_cells` (sorting cut cells
by connectivity index, the Thrust-backed operation the paper mentions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.amr.box import Box


class CellType(enum.Enum):
    REGULAR = 0
    CUT = 1
    COVERED = 2


@dataclass
class EBGeometry:
    """Cut-cell classification of one box against a level-set function."""

    box: Box
    cell_type: np.ndarray  # int array with CellType values
    volume_fraction: np.ndarray

    @property
    def n_regular(self) -> int:
        return int(np.sum(self.cell_type == CellType.REGULAR.value))

    @property
    def n_cut(self) -> int:
        return int(np.sum(self.cell_type == CellType.CUT.value))

    @property
    def n_covered(self) -> int:
        return int(np.sum(self.cell_type == CellType.COVERED.value))


def build_eb_geometry(box: Box, level_set: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
                      *, h: float = 1.0) -> EBGeometry:
    """Classify cells of *box* against ``level_set`` (φ<0 is fluid).

    A cell whose centre value |φ| is within half a cell diagonal of zero is
    cut; deeper-positive cells are covered; deeper-negative are regular.
    """
    idx = np.meshgrid(
        np.arange(box.lo[0], box.hi[0] + 1),
        np.arange(box.lo[1], box.hi[1] + 1),
        np.arange(box.lo[2], box.hi[2] + 1),
        indexing="ij",
    )
    phi = level_set(*(h * (a + 0.5) for a in idx))
    half_diag = 0.5 * np.sqrt(3.0) * h
    ctype = np.full(phi.shape, CellType.REGULAR.value, dtype=int)
    ctype[phi > half_diag] = CellType.COVERED.value
    ctype[np.abs(phi) <= half_diag] = CellType.CUT.value
    vf = np.ones_like(phi)
    vf[ctype == CellType.COVERED.value] = 0.0
    cut = ctype == CellType.CUT.value
    # linear volume-fraction model: fraction of the cell on the fluid side
    vf[cut] = np.clip(0.5 - phi[cut] / (2 * half_diag), 0.0, 1.0)
    return EBGeometry(box=box, cell_type=ctype, volume_fraction=vf)


def sorted_cut_cells(geom: EBGeometry) -> np.ndarray:
    """Flat indices of cut cells sorted by volume fraction then index.

    This is the device-sort workload (Thrust in the paper) EB redistribution
    needs; returned order is deterministic for testing.
    """
    flat = np.flatnonzero(geom.cell_type.ravel() == CellType.CUT.value)
    vf = geom.volume_fraction.ravel()[flat]
    order = np.lexsort((flat, vf))
    return flat[order]


def eb_redistribution_weights(geom: EBGeometry) -> np.ndarray:
    """Mass-redistribution weights ∝ volume fraction (flux redistribution).

    Weights over cut cells sum to 1 so redistribution conserves mass.
    """
    cut = geom.cell_type == CellType.CUT.value
    w = np.zeros_like(geom.volume_fraction)
    total = geom.volume_fraction[cut].sum()
    if total > 0:
        w[cut] = geom.volume_fraction[cut] / total
    return w
