"""Flux registers and refluxing: conservation at coarse-fine boundaries.

The part of AMReX that makes block-structured AMR *conservative*: when a
coarse cell abuts a fine patch, the coarse advance used a coarse flux
through the shared face while the fine advance used (better) fine fluxes.
Refluxing corrects the coarse cells adjacent to the patch by the
time-and-area-integrated difference, restoring exact conservation — the
property the tests pin down on a real advection update.

:class:`TwoLevelAdvection` is a complete 1-D, 2-level, subcycled AMR
advection solver; composite mass is conserved to rounding *only* when
refluxing is on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class FluxRegister:
    """Time/area-integrated flux mismatch through a set of coarse faces.

    Parameters
    ----------
    n_faces:
        Coarse faces covered by this register.
    fine_faces_per_coarse:
        Spatial refinement of the face (1 in 1-D, ``ratio`` per transverse
        dimension in higher dimensions); fine fluxes are area-averaged.
    substeps:
        Fine time steps per coarse step (subcycling factor).
    """

    n_faces: int
    fine_faces_per_coarse: int = 1
    substeps: int = 2

    def __post_init__(self) -> None:
        if min(self.n_faces, self.fine_faces_per_coarse, self.substeps) < 1:
            raise ValueError("all register dimensions must be positive")
        self.coarse_flux = np.zeros(self.n_faces)
        self.fine_flux_sum = np.zeros(self.n_faces)
        self._fine_adds = 0

    def add_coarse(self, flux: np.ndarray, dt_coarse: float) -> None:
        """Record the coarse advance's flux x dt through each face."""
        flux = np.asarray(flux, dtype=float)
        if flux.shape != (self.n_faces,):
            raise ValueError(f"expected {self.n_faces} coarse-face fluxes")
        self.coarse_flux += flux * dt_coarse

    def add_fine(self, fine_fluxes: np.ndarray, dt_fine: float) -> None:
        """Record one fine substep's fluxes (area-averaged onto coarse)."""
        fine_fluxes = np.asarray(fine_fluxes, dtype=float)
        expected = self.n_faces * self.fine_faces_per_coarse
        if fine_fluxes.shape != (expected,):
            raise ValueError(f"expected {expected} fine-face fluxes")
        per_coarse = fine_fluxes.reshape(
            self.n_faces, self.fine_faces_per_coarse
        ).mean(axis=1)
        self.fine_flux_sum += per_coarse * dt_fine
        self._fine_adds += 1

    def reflux_correction(self) -> np.ndarray:
        """Per-face correction: ∫fine flux dt − ∫coarse flux dt."""
        if self._fine_adds != self.substeps:
            raise RuntimeError(
                f"expected {self.substeps} fine substeps, saw {self._fine_adds}"
            )
        return self.fine_flux_sum - self.coarse_flux


@dataclass
class TwoLevelAdvection:
    """A 1-D, 2-level AMR advection testbed with subcycling and refluxing.

    Domain [0, n_coarse) of unit coarse cells, velocity +1, periodic.
    Cells [lo, hi) are refined by ``ratio``; the fine level subcycles
    ``ratio`` times per coarse step (fine CFL equals coarse CFL).
    """

    n_coarse: int
    lo: int
    hi: int
    ratio: int = 2

    def __post_init__(self) -> None:
        if not 0 <= self.lo < self.hi <= self.n_coarse:
            raise ValueError("invalid refined region")
        if self.ratio < 2:
            raise ValueError("refinement ratio must be >= 2")
        self.coarse = np.zeros(self.n_coarse)
        self.fine = np.zeros((self.hi - self.lo) * self.ratio)

    def set_initial(self, fn) -> None:
        """Initialize both levels from ``fn(x_center)``."""
        xc = np.arange(self.n_coarse) + 0.5
        self.coarse = np.asarray(fn(xc), dtype=float)
        h_f = 1.0 / self.ratio
        xf = self.lo + (np.arange(self.fine.size) + 0.5) * h_f
        self.fine = np.asarray(fn(xf), dtype=float)
        self._restrict()

    def _restrict(self) -> None:
        """Coarse cells under the patch hold the conservative average."""
        self.coarse[self.lo : self.hi] = self.fine.reshape(
            -1, self.ratio
        ).mean(axis=1)

    def total_mass(self) -> float:
        """Composite mass: coarse outside the patch + fine inside."""
        outside = self.coarse[: self.lo].sum() + self.coarse[self.hi :].sum()
        return float(outside + self.fine.sum() / self.ratio)

    def step(self, dt: float, *, reflux: bool = True) -> None:
        """One coarse step (CFL number = dt) with subcycled fine steps."""
        if not 0 < dt <= 1.0:
            raise ValueError("dt must be in (0, 1] for CFL stability")
        n, r = self.n_coarse, self.ratio
        reg_lo = FluxRegister(n_faces=1, substeps=r)
        reg_hi = FluxRegister(n_faces=1, substeps=r)

        # --- coarse advance everywhere (patch interior overwritten later) ---
        flux_c = np.roll(self.coarse, 1)  # upwind flux through left faces
        reg_lo.add_coarse([flux_c[self.lo]], dt)
        reg_hi.add_coarse([flux_c[self.hi % n]], dt)
        self.coarse = self.coarse - dt * (np.roll(flux_c, -1) - flux_c)

        # --- fine advance: r substeps; dt_f/h_f equals the coarse CFL ---
        dt_f = dt / r
        left_ghost = flux_c[self.lo]  # coarse upwind value, frozen in time
        fine = self.fine
        for _ in range(r):
            faces = np.empty(fine.size + 1)
            faces[0] = left_ghost
            faces[1:] = fine
            reg_lo.add_fine([faces[0]], dt_f)
            reg_hi.add_fine([faces[-1]], dt_f)
            fine = fine - dt * (faces[1:] - faces[:-1])
        self.fine = fine
        self._restrict()

        if reflux:
            # outside cell lo-1's outflow and cell hi's inflow should have
            # been the fine (time-integrated) fluxes; correct by the
            # register differences
            self.coarse[(self.lo - 1) % n] -= reg_lo.reflux_correction()[0]
            if self.hi % n != self.lo:  # patch does not wrap onto itself
                self.coarse[self.hi % n] += reg_hi.reflux_correction()[0]
