"""Ghost-exchange timing: synchronous vs. asynchronous (overlapping).

The AMReX ghost exchange of §3.8: the synchronous variant serializes
pack → exchange → unpack → compute; the asynchronous variant posts the
exchange, computes on interior cells, then waits and computes on the
(much smaller) halo band.  ``fill_boundary_time`` prices one exchange over
the MPI cost model; the step functions combine it with compute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpisim.costmodel import LinkParameters


@dataclass(frozen=True)
class GhostExchangeSpec:
    """What one rank exchanges per fill."""

    neighbors: int  # distinct ranks exchanged with (6 faces typically)
    bytes_per_neighbor: float

    @property
    def total_bytes(self) -> float:
        return self.neighbors * self.bytes_per_neighbor


def fill_boundary_time(spec: GhostExchangeSpec, link: LinkParameters) -> float:
    """Time for one rank's ghost fill: messages to all neighbours.

    Sends proceed concurrently across neighbours but share the NIC, so the
    bandwidth term serializes while latencies overlap (standard multi-port
    model): ``α + total_bytes · β``.
    """
    if spec.neighbors == 0:
        return 0.0
    return link.alpha + spec.total_bytes * link.beta


def synchronous_step_time(compute_time: float, spec: GhostExchangeSpec,
                          link: LinkParameters) -> float:
    """Exchange, then compute: no overlap."""
    return fill_boundary_time(spec, link) + compute_time


def asynchronous_step_time(compute_time: float, spec: GhostExchangeSpec,
                           link: LinkParameters, *,
                           interior_fraction: float = 0.9) -> float:
    """Post exchange, compute interior, wait, compute halo band.

    ``interior_fraction`` is the share of compute that needs no ghost
    data (interior cells).  The exchange overlaps the interior compute;
    only the halo compute serializes behind it.
    """
    if not 0.0 <= interior_fraction <= 1.0:
        raise ValueError("interior_fraction must be in [0, 1]")
    comm = fill_boundary_time(spec, link)
    interior = compute_time * interior_fraction
    halo = compute_time - interior
    return max(interior, comm) + halo
