"""AMR level hierarchy: refinement, regridding, composite cell counts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.amr.box import Box, BoxArray, chop_domain


@dataclass
class AmrLevel:
    """One refinement level: its domain-space boxes and refinement ratio
    relative to the next-coarser level."""

    boxes: BoxArray
    ratio_to_coarser: int = 2

    @property
    def ncells(self) -> int:
        return self.boxes.ncells


class AmrHierarchy:
    """A block-structured AMR hierarchy over a base domain.

    ``regrid`` builds finer levels by tagging coarse cells with a user
    criterion and refining the boxes that contain tagged cells — the
    essential AMReX regrid loop, without the Berger–Rigoutsos clustering
    (each tagged box refines whole, which is correct if lower-efficiency).
    """

    def __init__(self, domain: Box, *, max_levels: int = 3,
                 max_grid_size: int = 32, ratio: int = 2) -> None:
        if max_levels < 1:
            raise ValueError("need at least one level")
        self.domain = domain
        self.max_levels = max_levels
        self.max_grid_size = max_grid_size
        self.ratio = ratio
        self.levels: list[AmrLevel] = [
            AmrLevel(boxes=BoxArray.from_domain(domain, max_grid_size), ratio_to_coarser=1)
        ]

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    def regrid(self, tag_fn: Callable[[Box], bool]) -> None:
        """Rebuild levels 1..max from scratch using ``tag_fn`` on level-0
        boxes (True = refine this region)."""
        self.levels = self.levels[:1]
        current_domain = self.domain
        current_tagged = [b for b in self.levels[0].boxes if tag_fn(b)]
        for _ in range(1, self.max_levels):
            if not current_tagged:
                break
            fine_boxes: list[Box] = []
            for b in current_tagged:
                refined = b.refine(self.ratio)
                fine_boxes.extend(chop_domain(refined, self.max_grid_size))
            level = AmrLevel(boxes=BoxArray(tuple(fine_boxes)), ratio_to_coarser=self.ratio)
            self.levels.append(level)
            current_domain = current_domain.refine(self.ratio)
            current_tagged = [b for b in level.boxes if tag_fn(b.coarsen(
                self.ratio ** (len(self.levels) - 1)))]

    def composite_cells(self) -> int:
        """Total cells over all levels (the AMR work measure)."""
        return sum(level.ncells for level in self.levels)

    def equivalent_uniform_cells(self) -> int:
        """Cells a uniform grid at the finest resolution would need."""
        fine_ratio = self.ratio ** (self.nlevels - 1)
        return self.domain.refine(fine_ratio).ncells if self.nlevels > 1 else self.domain.ncells

    def savings_factor(self) -> float:
        """Uniform-grid cells per AMR composite cell (>1 when AMR helps)."""
        comp = self.composite_cells()
        return self.equivalent_uniform_cells() / comp if comp else 1.0
