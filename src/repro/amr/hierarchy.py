"""AMR level hierarchy: refinement, regridding, composite cell counts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.amr.box import Box, BoxArray, chop_domain
from repro.resilience.elastic import DomainSpec
from repro.resilience.snapshot import Snapshot, require_kind


@dataclass
class AmrLevel:
    """One refinement level: its domain-space boxes and refinement ratio
    relative to the next-coarser level."""

    boxes: BoxArray
    ratio_to_coarser: int = 2

    @property
    def ncells(self) -> int:
        return self.boxes.ncells


class AmrHierarchy:
    """A block-structured AMR hierarchy over a base domain.

    ``regrid`` builds finer levels by tagging coarse cells with a user
    criterion and refining the boxes that contain tagged cells — the
    essential AMReX regrid loop, without the Berger–Rigoutsos clustering
    (each tagged box refines whole, which is correct if lower-efficiency).
    """

    def __init__(self, domain: Box, *, max_levels: int = 3,
                 max_grid_size: int = 32, ratio: int = 2) -> None:
        if max_levels < 1:
            raise ValueError("need at least one level")
        self.domain = domain
        self.max_levels = max_levels
        self.max_grid_size = max_grid_size
        self.ratio = ratio
        self.levels: list[AmrLevel] = [
            AmrLevel(boxes=BoxArray.from_domain(domain, max_grid_size), ratio_to_coarser=1)
        ]

    @property
    def nlevels(self) -> int:
        return len(self.levels)

    def regrid(self, tag_fn: Callable[[Box], bool]) -> None:
        """Rebuild levels 1..max from scratch using ``tag_fn`` on level-0
        boxes (True = refine this region)."""
        self.levels = self.levels[:1]
        current_domain = self.domain
        current_tagged = [b for b in self.levels[0].boxes if tag_fn(b)]
        for _ in range(1, self.max_levels):
            if not current_tagged:
                break
            fine_boxes: list[Box] = []
            for b in current_tagged:
                refined = b.refine(self.ratio)
                fine_boxes.extend(chop_domain(refined, self.max_grid_size))
            level = AmrLevel(boxes=BoxArray(tuple(fine_boxes)), ratio_to_coarser=self.ratio)
            self.levels.append(level)
            current_domain = current_domain.refine(self.ratio)
            current_tagged = [b for b in level.boxes if tag_fn(b.coarsen(
                self.ratio ** (len(self.levels) - 1)))]

    # -- checkpoint/restart -------------------------------------------------

    snapshot_kind = "amr.hierarchy"
    snapshot_version = 1

    def snapshot(self) -> Snapshot:
        """Level structure as packed (nboxes, 6) lo/hi coordinate arrays —
        the grids a restarted AMR run needs before it can place data."""
        levels = []
        for level in self.levels:
            coords = np.array(
                [b.lo + b.hi for b in level.boxes], dtype=np.int64
            ).reshape(len(level.boxes), 6)
            levels.append({
                "boxes": coords,
                "ratio_to_coarser": int(level.ratio_to_coarser),
            })
        return Snapshot(self.snapshot_kind, self.snapshot_version, {
            "domain": np.array(self.domain.lo + self.domain.hi, dtype=np.int64),
            "max_levels": int(self.max_levels),
            "max_grid_size": int(self.max_grid_size),
            "ratio": int(self.ratio),
            "levels": levels,
        })

    def restore(self, snap: Snapshot) -> None:
        require_kind(snap, self)
        p = snap.payload
        d = p["domain"]
        self.domain = Box(lo=tuple(int(v) for v in d[:3]),
                          hi=tuple(int(v) for v in d[3:]))
        self.max_levels = p["max_levels"]
        self.max_grid_size = p["max_grid_size"]
        self.ratio = p["ratio"]
        self.levels = [
            AmrLevel(
                boxes=BoxArray(tuple(
                    Box(lo=tuple(int(v) for v in row[:3]),
                        hi=tuple(int(v) for v in row[3:]))
                    for row in lv["boxes"]
                )),
                ratio_to_coarser=lv["ratio_to_coarser"],
            )
            for lv in p["levels"]
        ]

    def elastic_domain(self) -> DomainSpec:
        """Boxes are the migratable unit (AMReX's distribution-map grain);
        a box's payload is its cells' field data."""
        nboxes = sum(len(level.boxes) for level in self.levels)
        if nboxes == 0:
            return DomainSpec(nitems=0, bytes_per_item=0.0, label="boxes")
        return DomainSpec(
            nitems=nboxes,
            bytes_per_item=8.0 * self.composite_cells() / nboxes,
            label="boxes",
        )

    def composite_cells(self) -> int:
        """Total cells over all levels (the AMR work measure)."""
        return sum(level.ncells for level in self.levels)

    def equivalent_uniform_cells(self) -> int:
        """Cells a uniform grid at the finest resolution would need."""
        fine_ratio = self.ratio ** (self.nlevels - 1)
        return self.domain.refine(fine_ratio).ncells if self.nlevels > 1 else self.domain.ncells

    def savings_factor(self) -> float:
        """Uniform-grid cells per AMR composite cell (>1 when AMR helps)."""
        comp = self.composite_cells()
        return self.equivalent_uniform_cells() / comp if comp else 1.0
