"""MultiFab: distributed multi-component data over a BoxArray, with ghosts.

The real data structure at the heart of AMReX (§3.8): each box owns an
array with ``nghost`` ghost cells on every side; ``fill_boundary``
exchanges ghost regions between neighbouring boxes (periodically wrapped
at the domain edge).  Both a synchronous and an asynchronous (overlapping)
exchange are provided — "the largest performance increase at large scale
came from the asynchronous ghost cell exchange implementation".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.amr.box import Box, BoxArray


@dataclass
class FabArrayStats:
    """Ghost-exchange accounting."""

    exchanges: int = 0
    messages: int = 0
    bytes_moved: int = 0


class MultiFab:
    """Multi-component cell data on a BoxArray with ghost cells."""

    def __init__(self, ba: BoxArray, domain: Box, *, ncomp: int = 1,
                 nghost: int = 1, periodic: bool = True) -> None:
        if ncomp < 1 or nghost < 0:
            raise ValueError("ncomp must be >= 1 and nghost >= 0")
        self.ba = ba
        self.domain = domain
        self.ncomp = ncomp
        self.nghost = nghost
        self.periodic = periodic
        self.fabs: list[np.ndarray] = []
        for b in ba:
            shape = tuple(s + 2 * nghost for s in b.shape) + (ncomp,)
            self.fabs.append(np.zeros(shape, dtype=float))
        self.stats = FabArrayStats()

    # -- indexing helpers ------------------------------------------------------

    def valid_view(self, i: int) -> np.ndarray:
        """Interior (non-ghost) view of fab *i*."""
        g = self.nghost
        if g == 0:
            return self.fabs[i]
        return self.fabs[i][g:-g, g:-g, g:-g, :]

    def set_from_function(self, fn) -> None:
        """Fill valid cells from ``fn(x_idx, y_idx, z_idx)`` (vectorized)."""
        for i, b in enumerate(self.ba):
            idx = np.meshgrid(
                np.arange(b.lo[0], b.hi[0] + 1),
                np.arange(b.lo[1], b.hi[1] + 1),
                np.arange(b.lo[2], b.hi[2] + 1),
                indexing="ij",
            )
            vals = fn(*idx)
            view = self.valid_view(i)
            if vals.ndim == 3:
                for c in range(self.ncomp):
                    view[..., c] = vals
            else:
                view[...] = vals

    def _global_index(self, i: int) -> tuple[np.ndarray, ...]:
        """Global (wrapped) cell indices covered by fab *i* incl. ghosts."""
        b = self.ba.boxes[i]
        g = self.nghost
        dshape = self.domain.shape
        axes = []
        for d in range(3):
            idx = np.arange(b.lo[d] - g, b.hi[d] + g + 1)
            if self.periodic:
                idx = (idx - self.domain.lo[d]) % dshape[d] + self.domain.lo[d]
            axes.append(idx)
        return tuple(axes)

    # -- ghost exchange ----------------------------------------------------------

    def fill_boundary(self) -> int:
        """Synchronous ghost fill; returns bytes moved.

        Implementation gathers the full domain once (the reference
        semantics), then scatters each fab's grown region.  Message/byte
        accounting counts the *logical* pairwise messages a distributed
        implementation would send, which the perf layer prices.
        """
        g = self.nghost
        if g == 0:
            return 0
        dshape = self.domain.shape
        global_data = np.zeros(dshape + (self.ncomp,), dtype=float)
        for i, b in enumerate(self.ba):
            sl = tuple(
                slice(b.lo[d] - self.domain.lo[d], b.hi[d] - self.domain.lo[d] + 1)
                for d in range(3)
            )
            global_data[sl] = self.valid_view(i)

        moved = 0
        for i, b in enumerate(self.ba):
            ix, iy, iz = self._global_index(i)
            if not self.periodic:
                ix = np.clip(ix, 0, dshape[0] - 1)
                iy = np.clip(iy, 0, dshape[1] - 1)
                iz = np.clip(iz, 0, dshape[2] - 1)
            self.fabs[i][...] = global_data[np.ix_(ix, iy, iz)]
            ghost_cells = self.fabs[i][..., 0].size - b.ncells
            moved += ghost_cells * self.ncomp * 8
        self.stats.exchanges += 1
        # 26-neighbour logical messages per box (faces+edges+corners)
        self.stats.messages += 26 * len(self.ba)
        self.stats.bytes_moved += moved
        return moved

    def ghost_bytes_per_box(self) -> float:
        """Mean ghost bytes a box exchanges per fill."""
        if len(self.ba) == 0:
            return 0.0
        total = 0
        for i, b in enumerate(self.ba):
            total += (self.fabs[i][..., 0].size - b.ncells) * self.ncomp * 8
        return total / len(self.ba)

    # -- reductions -----------------------------------------------------------------

    def norm0(self, comp: int = 0) -> float:
        """Max-norm over valid cells."""
        return max(
            float(np.abs(self.valid_view(i)[..., comp]).max()) for i in range(len(self.ba))
        )

    def sum(self, comp: int = 0) -> float:
        return float(
            np.sum([self.valid_view(i)[..., comp].sum() for i in range(len(self.ba))])
        )

    def copy_from(self, other: "MultiFab") -> None:
        if len(other.ba) != len(self.ba) or other.ncomp != self.ncomp:
            raise ValueError("incompatible MultiFabs")
        for dst, src in zip(self.fabs, other.fabs):
            np.copyto(dst, src)
