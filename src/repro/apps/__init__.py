"""The paper's ten Section 3 applications, wired to the simulation stack.

Each module exposes ``run_summit()`` / ``run_frontier()`` / ``speedup()``
(where the paper reports a Summit→Frontier number) plus its app-specific
experiments (FOMs, ablations, scaling studies).
"""

from repro.apps import (
    coast,
    comet,
    e3sm,
    exasky,
    gamess,
    gests,
    lammps,
    lsms,
    nuccor,
    pele,
)

#: Table 2 rows: application module -> paper speed-up, in paper order.
TABLE2_APPS = {
    "GAMESS": gamess,
    "LSMS": lsms,
    "GESTS": gests,
    "ExaSky": exasky,
    "CoMet": comet,
    "NuCCOR": nuccor,
    "Pele": pele,
    "COAST": coast,
}

__all__ = [
    "cholla",
    "TABLE2_APPS",
    "coast",
    "comet",
    "e3sm",
    "exasky",
    "gamess",
    "gests",
    "lammps",
    "lsms",
    "nuccor",
    "pele",
]
from repro.apps import cholla
