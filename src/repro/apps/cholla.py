"""Cholla-style mini-app: CUDA-spelled hydro on either vendor's runtime.

Section 2.1's alternative porting strategy: "a single header file with
macros to convert between CUDA and HIP calls depending on the build
environment.  The application code may remain in CUDA and evolve using
either CUDA or HIP."  This mini-app is written once, in CUDA spellings,
against :class:`repro.progmodel.macro_layer.MacroLayer`; "building" it for
NVIDIA or AMD is just constructing the layer with the target device.

The physics is the real 1-D Euler solver (:mod:`repro.hydro.euler1d`);
the GPU layer prices each step's flux/update kernels on the simulated
device so the same source reports per-platform performance.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import MI250X_GCD, V100, GPUSpec, Precision
from repro.hydro.euler1d import Euler1D, sod_plateau_states
from repro.progmodel.macro_layer import MacroLayer

#: Per-cell kernel costs of the two hydro kernels (flux + update).
FLUX_FLOPS_PER_CELL = 140.0
UPDATE_FLOPS_PER_CELL = 12.0


@dataclass
class ChollaResult:
    backend: str
    steps: int
    simulated_gpu_time: float
    plateau: dict[str, float]
    mass_error: float


def _kernels(n_cells: int) -> list[KernelSpec]:
    state_bytes = 3 * 8.0 * n_cells
    return [
        KernelSpec(name="hll_flux", flops=FLUX_FLOPS_PER_CELL * n_cells,
                   bytes_read=2 * state_bytes, bytes_written=state_bytes,
                   threads=max(n_cells, 64), precision=Precision.FP64,
                   registers_per_thread=80),
        KernelSpec(name="cons_update", flops=UPDATE_FLOPS_PER_CELL * n_cells,
                   bytes_read=2 * state_bytes, bytes_written=state_bytes,
                   threads=max(n_cells, 64), precision=Precision.FP64,
                   registers_per_thread=40),
    ]


def run_sod(device: GPUSpec, *, n_cells: int = 400, t_end: float = 0.2,
            paper_scale_cells: int = 1 << 24) -> ChollaResult:
    """Run the Sod problem 'on' *device* through the macro layer.

    The physics runs at ``n_cells`` (real numerics); the per-step GPU cost
    is priced at ``paper_scale_cells`` (a production Cholla grid slab),
    launched through CUDA-spelled calls whatever the vendor — the §2.1
    single-source property.
    """
    layer = MacroLayer(device)
    solver = Euler1D.sod(n_cells)
    m0 = solver.total_mass()
    kernels = _kernels(paper_scale_cells)
    state = layer.cudaMalloc(3 * 8 * paper_scale_cells)
    layer.cudaMemcpyHostToDevice(state)
    steps = 0
    t = 0.0
    while t < t_end:
        dt = min(solver.step(0.5), t_end - t)
        t += dt
        steps += 1
        for k in kernels:
            layer.cudaLaunchKernel(k)
    layer.cudaDeviceSynchronize()
    layer.cudaMemcpyDeviceToHost(state)
    layer.cudaFree(state)
    return ChollaResult(
        backend=layer.backend_name,
        steps=steps,
        simulated_gpu_time=layer.elapsed,
        plateau=sod_plateau_states(solver, t=t_end),
        mass_error=abs(solver.total_mass() - m0) / m0,
    )


def speedup() -> float:
    """Per-GPU Sod-throughput ratio MI250X GCD / V100 (single source)."""
    v = run_sod(V100)
    m = run_sod(MI250X_GCD)
    assert v.backend == "cuda" and m.backend == "hip"
    return v.simulated_gpu_time / m.simulated_gpu_time
