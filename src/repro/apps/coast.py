"""COAST (§3.9): autotuned (min,+) kernel TF/GPU and system exaflops.

The paper's three numbers: the autotuned kernel went from 5.6 TF on one
V100 to 30.6 TF on one MI250X; at system scale the Gordon Bell runs
achieved 136 PF on Summit (2020) and 1.004 EF on Frontier (2022), a >7x
gain.  The per-GPU factor comes from the tile autotuner over the real
tiling search space; the system factor adds the device-count ratio.

COAST counts both the add and the min of the (min,+) semiring as
operations, matching the Gordon Bell accounting (``apsp_flops``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.tuning import AutotuneResult, TileAutotuner
from repro.hardware.gpu import MI250X, V100

#: Fraction of the model-roofline rate the production kernel sustains
#: (instruction-mix overheads the tile model does not see: address math,
#: semiring select ops).  One constant for both platforms.
KERNEL_SUSTAINED_FRACTION = 0.71


@dataclass(frozen=True)
class CoastConfig:
    matrix_n: int = 40960  # per-GPU tile of the distributed matrix
    summit_gpus: int = 27648  # 4608 nodes x 6 V100
    frontier_gpus: int = 9074 * 4  # the Gordon Bell run: full MI250X packages


def tuned_v100(cfg: CoastConfig = CoastConfig()) -> AutotuneResult:
    return TileAutotuner(V100).tune(cfg.matrix_n)


def tuned_mi250x(cfg: CoastConfig = CoastConfig()) -> AutotuneResult:
    return TileAutotuner(MI250X).tune(cfg.matrix_n)


def per_gpu_tflops(cfg: CoastConfig = CoastConfig()) -> dict[str, float]:
    """The §3.9 kernel numbers: ≈5.6 TF (V100) and ≈30.6 TF (MI250X)."""
    return {
        "V100": KERNEL_SUSTAINED_FRACTION * tuned_v100(cfg).best_tflops,
        "MI250X": KERNEL_SUSTAINED_FRACTION * tuned_mi250x(cfg).best_tflops,
    }


def run_summit(cfg: CoastConfig = CoastConfig()) -> float:
    """Time of one per-GPU kernel invocation on Summit (the Table-2 unit
    is system throughput; times are per unit work so ratios compose)."""
    tf = per_gpu_tflops(cfg)["V100"]
    return 1.0 / (tf * cfg.summit_gpus)


def run_frontier(cfg: CoastConfig = CoastConfig()) -> float:
    tf = per_gpu_tflops(cfg)["MI250X"]
    return 1.0 / (tf * cfg.frontier_gpus)


def speedup(cfg: CoastConfig = CoastConfig()) -> float:
    """Table 2: 7.4x (system performance ratio, 1.004 EF / 136 PF)."""
    return run_summit(cfg) / run_frontier(cfg)


def system_petaflops(cfg: CoastConfig = CoastConfig()) -> dict[str, float]:
    """The Gordon Bell numbers: ≈136 PF (Summit), ≈1004 PF (Frontier)."""
    tf = per_gpu_tflops(cfg)
    return {
        "Summit": tf["V100"] * cfg.summit_gpus / 1e3,
        "Frontier": tf["MI250X"] * cfg.frontier_gpus / 1e3,
    }
