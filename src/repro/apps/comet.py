"""CoMet (§3.6): mixed-precision CCC throughput and full-system exaflops.

Two headline numbers:

* Table 2's 5.2× per-GPU gain — the FP16 count-GEMM device ratio times
  the library co-design factor (CoMet "was able to articulate precise
  library requirements to AMD early in the project, enabling delivery of
  high performance routines optimized for the CoMet target problem": the
  generic cuBLAS path on V100 reached ~0.50 of tensor peak for CoMet's
  K-heavy shapes, the co-designed rocBLAS routines ~0.85);
* 6.71 EF mixed FP16/FP32 on 9 074 nodes with near-perfect weak scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.perfmodel import time_kernel
from repro.hardware.catalog import FRONTIER
from repro.hardware.gpu import MI250X, V100, GPUSpec
from repro.similarity.gemmtally import gemmtally_kernel_specs

#: Achieved fraction of the FP16 matrix peak on each platform.  Calibrated
#: against the paper's own numbers: 6.71 EF over 9 074 x 8 GCDs is 92 TF
#: per GCD = 0.48 of the 191.5 TF FP16 matrix peak; the V100 generic path
#: at 0.28 of its 125 TF tensor peak yields the observed 5.2x per-GPU.
CUBLAS_GENERIC_EFFICIENCY = 0.28
ROCBLAS_CODESIGNED_EFFICIENCY = 0.48


@dataclass(frozen=True)
class CometConfig:
    vectors_per_gpu: int = 16384
    fields: int = 1 << 20


def gpu_time(device: GPUSpec, cfg: CometConfig, *, efficiency: float) -> float:
    """One CCC tally pass over this GPU's vector block.

    The pipeline is the GEMM-recast tally engine of
    :mod:`repro.similarity.gemmtally`: a bandwidth-bound bit-pack stage
    (64× operand compression) followed by the batched mixed-precision
    count GEMM — the launch sequence whose GEMM stage §3.6 describes as
    "overwhelmingly dominating".
    """
    specs = gemmtally_kernel_specs(cfg.vectors_per_gpu, cfg.fields,
                                   efficiency=efficiency)
    return sum(time_kernel(s, device).total_time for s in specs)


def run_summit(cfg: CometConfig = CometConfig()) -> float:
    return gpu_time(V100, cfg, efficiency=CUBLAS_GENERIC_EFFICIENCY)


def run_frontier(cfg: CometConfig = CometConfig()) -> float:
    return gpu_time(MI250X, cfg, efficiency=ROCBLAS_CODESIGNED_EFFICIENCY)


def speedup(cfg: CometConfig = CometConfig()) -> float:
    """Table 2: 5.2x per GPU."""
    return run_summit(cfg) / run_frontier(cfg)


def system_exaflops(nodes: int = 9074, cfg: CometConfig = CometConfig()) -> float:
    """Achieved mixed-precision EF on *nodes* Frontier nodes (§3.6: 6.71)."""
    from repro.similarity.ccc import ccc_gemm_flops

    useful = ccc_gemm_flops(cfg.vectors_per_gpu, cfg.fields)
    t = gpu_time(FRONTIER.node.gpu, cfg, efficiency=ROCBLAS_CODESIGNED_EFFICIENCY)
    per_gcd = useful / t
    return nodes * FRONTIER.node.gpus_per_node * per_gcd / 1e18


def weak_scaling_efficiency(node_counts: list[int],
                            cfg: CometConfig = CometConfig()) -> dict[int, float]:
    """Weak scaling of the CCC sweep.

    The computation is embarrassingly block-parallel: each node's GEMMs
    are independent; the only shared step is a results reduction whose
    cost grows logarithmically.  Efficiency = per-node throughput at N
    nodes / at 1 node.
    """
    from repro.mpisim.costmodel import link_parameters, reduce_time

    base = gpu_time(FRONTIER.node.gpu, cfg,
                    efficiency=ROCBLAS_CODESIGNED_EFFICIENCY)
    link = link_parameters(FRONTIER.node.interconnect, ranks_sharing_nic=2,
                           device_buffers=True)
    out: dict[int, float] = {}
    for nodes in node_counts:
        if nodes < 1:
            raise ValueError("node counts must be positive")
        t_reduce = reduce_time(nodes, 8.0 * cfg.vectors_per_gpu, link)
        out[nodes] = base / (base + t_reduce)
    return out


def precision_ablation(cfg: CometConfig = CometConfig()) -> dict[str, float]:
    """Per-GCD useful TF by datatype (§3.6: "CoMet can calculate on data
    using FP32, FP16, Int8 and other datatypes, making it possible to
    solve much larger problems").

    All paths compute *exact* counts (verified in the similarity tests);
    only throughput differs: FP32 runs on the vector units, FP16 and INT8
    on the matrix engines.
    """
    import dataclasses

    from repro.hardware.gpu import Precision
    from repro.similarity.ccc import ccc_gemm_flops
    from repro.similarity.gemmtally import gemm_tally_kernel_spec

    useful = ccc_gemm_flops(cfg.vectors_per_gpu, cfg.fields)
    out: dict[str, float] = {}
    for name, precision, matrix in (
        ("FP32", Precision.FP32, False),
        ("FP16", Precision.FP16, True),
        ("INT8", Precision.INT8, True),
    ):
        spec = gemm_tally_kernel_spec(cfg.vectors_per_gpu, cfg.fields,
                                      efficiency=ROCBLAS_CODESIGNED_EFFICIENCY)
        spec = dataclasses.replace(spec, precision=precision,
                                   uses_matrix_engine=matrix)
        t = time_kernel(spec, FRONTIER.node.gpu).total_time
        out[name] = useful / t / 1e12
    return out
