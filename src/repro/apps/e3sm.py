"""E3SM-MMF (§3.5): latency-dominated CRM throughput and its three levers.

E3SM-MMF is not a Table 2 row; its story is the strong-scaling/latency
one: a 1000-2000× realtime throughput target forces tiny per-GPU
workloads, making kernel-launch latency, allocation latency, and register
spills the first-order terms.  The app wires the CRM kernel ensemble to
the optimization levers (fusion/fission balance, same-stream async
launching, the YAKL pool allocator) and reports realtime throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.crm import (
    CrmStepTime,
    crm_kernel_ensemble,
    crm_step_time,
    optimize_ensemble,
    realtime_throughput,
)
from repro.hardware.catalog import FRONTIER, SUMMIT
from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class E3smConfig:
    """Strong-scaled configuration: few CRM columns per GCD."""

    columns_per_gpu: int = 32
    dt_model_seconds: float = 10.0


@dataclass(frozen=True)
class E3smResult:
    step: CrmStepTime
    throughput: float  # simulated seconds per wall second

    @property
    def meets_target(self) -> bool:
        """The ECP throughput target: 1000-2000x realtime."""
        return self.throughput >= 1000.0


def run(device: GPUSpec, cfg: E3smConfig = E3smConfig(), *,
        optimized: bool = True) -> E3smResult:
    kernels = crm_kernel_ensemble(columns=cfg.columns_per_gpu)
    if optimized:
        kernels = optimize_ensemble(kernels, device)
    step = crm_step_time(
        kernels, device,
        same_stream_async=optimized,
        pool_allocator=optimized,
    )
    return E3smResult(
        step=step,
        throughput=realtime_throughput(step.total, dt_model_seconds=cfg.dt_model_seconds),
    )


def run_summit(cfg: E3smConfig = E3smConfig()) -> float:
    """Optimized per-step time on one Summit V100."""
    return run(SUMMIT.node.gpu, cfg).step.total


def run_frontier(cfg: E3smConfig = E3smConfig()) -> float:
    return run(FRONTIER.node.gpu, cfg).step.total


def speedup(cfg: E3smConfig = E3smConfig()) -> float:
    """Per-GPU step-time ratio (not a Table 2 row; reported for context)."""
    return run_summit(cfg) / run_frontier(cfg)


def optimization_gain(cfg: E3smConfig = E3smConfig()) -> float:
    """All three levers together on Frontier."""
    device = FRONTIER.node.gpu
    base = run(device, cfg, optimized=False).step.total
    tuned = run(device, cfg, optimized=True).step.total
    return base / tuned


def lever_breakdown(cfg: E3smConfig = E3smConfig()) -> dict[str, float]:
    """Individual gain of each §3.5 lever on Frontier (vs. all-off)."""
    device = FRONTIER.node.gpu
    kernels = crm_kernel_ensemble(columns=cfg.columns_per_gpu)
    base = crm_step_time(kernels, device, same_stream_async=False,
                         pool_allocator=False).total
    fused = crm_step_time(optimize_ensemble(kernels, device), device,
                          same_stream_async=False, pool_allocator=False).total
    async_ = crm_step_time(kernels, device, same_stream_async=True,
                           pool_allocator=False).total
    pool = crm_step_time(kernels, device, same_stream_async=False,
                         pool_allocator=True).total
    return {
        "fusion+fission": base / fused,
        "same-stream async": base / async_,
        "pool allocator": base / pool,
    }
