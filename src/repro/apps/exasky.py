"""ExaSky/HACC (§3.4): weak-scaled gravity FOM, Summit vs. Frontier.

The Frontier target was a weak-scaling benchmark on 8 192 nodes
(32 768 GPUs = GCDs) aiming for 4× the Summit FOM; measured 4.2×.  The
FOM is machine-level particle-interaction throughput, so the ratio
combines the per-GCD kernel rates (six short-range gravity kernels, FP32),
the node counts, and the §3.4 kernel story: the one branchy kernel tuned
for 32-wide warps was restructured for wavefront 64 during the port.
Against the original Theta full-machine baseline the cumulative FOM gain
was ≈230×.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.gpu.perfmodel import time_kernel
from repro.hardware.catalog import FRONTIER, SUMMIT, THETA
from repro.hardware.gpu import GPUSpec
from repro.particles.cosmology import hacc_gravity_kernels
from repro.resilience.abft import SdcDetected, require_finite
from repro.resilience.elastic import DomainSpec
from repro.resilience.snapshot import Snapshot, require_kind

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.observability.tracer import Tracer


@dataclass(frozen=True)
class ExaskyConfig:
    particles_per_gpu: int = 16_000_000
    summit_nodes: int = 4608  # full Summit
    frontier_nodes: int = 8192  # the §3.4 target scale


def _kernels(cfg: ExaskyConfig, *, wavefront64_tuned: bool) -> list[KernelSpec]:
    kernels = hacc_gravity_kernels(cfg.particles_per_gpu)
    if wavefront64_tuned:
        # the restructured tree-walk kernel no longer assumes 32-wide warps
        kernels = [
            dataclasses.replace(k, divergence_wavefront_sensitive=False)
            if k.divergence_wavefront_sensitive
            else k
            for k in kernels
        ]
    return kernels


def step_time_per_gpu(device: GPUSpec, cfg: ExaskyConfig, *,
                      wavefront64_tuned: bool) -> float:
    """Sum of the six gravity kernels on one device."""
    return sum(
        time_kernel(k, device).total_time
        for k in _kernels(cfg, wavefront64_tuned=wavefront64_tuned)
    )


def machine_fom(machine, cfg: ExaskyConfig, nodes: int, *,
                wavefront64_tuned: bool) -> float:
    """Particles processed per second across *nodes* of *machine*."""
    device = machine.node.gpu
    t = step_time_per_gpu(device, cfg, wavefront64_tuned=wavefront64_tuned)
    gpus = nodes * machine.node.gpus_per_node
    return gpus * cfg.particles_per_gpu / t


class ExaskyCampaign:
    """A checkpointable HACC-style campaign: kick-drift particle sweeps.

    A small periodic particle block evolves by deterministic symplectic
    kick-drift steps under a fixed smooth potential (a stand-in for the
    short-range force loop); each ``step`` returns the simulated cost of
    the six gravity kernels on one Frontier GCD at the §3.4 scale.  The
    state is the exact phase space, so checkpoint/restore is bit-exact.
    """

    snapshot_kind = "apps.exasky.campaign"
    snapshot_version = 1

    def __init__(self, *, nparticles: int = 2048, seed: int = 0,
                 dt: float = 0.05, cfg: ExaskyConfig | None = None,
                 tracer: "Tracer | None" = None) -> None:
        cfg = cfg or ExaskyConfig()
        rng = np.random.default_rng(seed)
        self.pos = rng.uniform(0.0, 1.0, (nparticles, 3))
        self.vel = 0.05 * rng.standard_normal((nparticles, 3))
        self.dt = float(dt)
        self.steps_done = 0
        self.particles_processed = 0
        # observation-only span/metric sink on the campaign's own
        # simulated clock (steps x step_cost); like the Pele campaign's,
        # it is an engine choice, not campaign state — never snapshotted,
        # and traced runs stay bit-identical to untraced ones
        self.tracer = tracer
        self.step_cost = step_time_per_gpu(
            FRONTIER.node.gpu, cfg, wavefront64_tuned=True
        )

    def _acceleration(self) -> np.ndarray:
        # a smooth periodic force field: cheap, deterministic, nontrivial
        return -np.sin(2.0 * np.pi * self.pos) * 0.1

    def step(self) -> float:
        t0 = self.steps_done * self.step_cost
        self.vel += 0.5 * self.dt * self._acceleration()
        self.pos = np.mod(self.pos + self.dt * self.vel, 1.0)
        self.vel += 0.5 * self.dt * self._acceleration()
        self.steps_done += 1
        self.particles_processed += self.pos.shape[0]
        tr = self.tracer
        if tr is not None:
            tr.record("exasky.step", t0, self.step_cost, cat="apps",
                      pid="apps", tid="exasky", step=int(self.steps_done),
                      nparticles=int(self.pos.shape[0]))
            tr.metrics.counter("exasky.steps").inc()
            tr.metrics.counter("exasky.particles_processed").inc(
                float(self.pos.shape[0]))
        return self.step_cost

    def snapshot(self) -> Snapshot:
        return Snapshot(self.snapshot_kind, self.snapshot_version, {
            "pos": self.pos,
            "vel": self.vel,
            "dt": self.dt,
            "steps_done": int(self.steps_done),
            "particles_processed": int(self.particles_processed),
        })

    def restore(self, snap: Snapshot) -> None:
        require_kind(snap, self)
        p = snap.payload
        self.pos = p["pos"].copy()
        self.vel = p["vel"].copy()
        self.dt = p["dt"]
        self.steps_done = p["steps_done"]
        self.particles_processed = p["particles_processed"]

    # -- resilience hooks ---------------------------------------------------

    def elastic_domain(self) -> DomainSpec:
        """Particles are the migratable unit: 6 float64 of phase space."""
        return DomainSpec(nitems=self.pos.shape[0], bytes_per_item=48.0,
                          label="particles")

    def sdc_targets(self) -> list[np.ndarray]:
        """The live arrays a bit flip can strike."""
        return [self.pos, self.vel]

    def validate_state(self) -> None:
        """Physical-plausibility audit: positions must lie in the periodic
        unit box (``np.mod`` guarantees it every step) and velocities far
        inside the kick budget; an exponent-field flip lands outside both."""
        require_finite("exasky phase space", self.pos, self.vel)
        if (self.pos < 0.0).any() or (self.pos >= 1.0).any():
            bad = int(np.flatnonzero((self.pos < 0.0).any(axis=1)
                                     | (self.pos >= 1.0).any(axis=1))[0])
            raise SdcDetected(
                f"particle {bad} outside the periodic unit box",
                location=(bad,),
            )
        if np.abs(self.vel).max() > 1.0:
            bad = int(np.flatnonzero(np.abs(self.vel).max(axis=1) > 1.0)[0])
            raise SdcDetected(
                f"particle {bad} velocity beyond the kick budget",
                location=(bad,),
            )


def run_summit(cfg: ExaskyConfig = ExaskyConfig()) -> float:
    """Summit FOM (CUDA path; warp-32 tuning is native there)."""
    return machine_fom(SUMMIT, cfg, cfg.summit_nodes, wavefront64_tuned=False)


def run_frontier(cfg: ExaskyConfig = ExaskyConfig(), *,
                 wavefront64_tuned: bool = True) -> float:
    return machine_fom(FRONTIER, cfg, cfg.frontier_nodes,
                       wavefront64_tuned=wavefront64_tuned)


def speedup(cfg: ExaskyConfig = ExaskyConfig()) -> float:
    """Table 2 / §3.4: the measured FOM factor vs. Summit (4.2)."""
    return run_frontier(cfg) / run_summit(cfg)


def wavefront_fix_gain(cfg: ExaskyConfig = ExaskyConfig()) -> float:
    """§3.4 ablation: restructuring the warp-32-tuned gravity kernel."""
    before = run_frontier(cfg, wavefront64_tuned=False)
    after = run_frontier(cfg, wavefront64_tuned=True)
    return after / before


def fom_vs_theta_baseline(cfg: ExaskyConfig = ExaskyConfig()) -> float:
    """The ≈230x cumulative factor vs. the original Theta full machine.

    Theta is CPU-only: its throughput comes from the node FP32 peak at
    the same interactions-per-particle cost.  HACC's CPU short-range
    force is famously well vectorized (its BG-Q ancestor sustained >50 %
    of peak); 25 % of peak on KNL is the conservative end of its record.
    """
    from repro.particles.cosmology import (
        FLOPS_PER_INTERACTION,
        INTERACTIONS_PER_PARTICLE,
    )

    cpu_flops = THETA.nodes * THETA.node.cpu.peak_flops_fp64 * 2  # FP32 = 2x
    cpu_rate = 0.25 * cpu_flops / (INTERACTIONS_PER_PARTICLE * FLOPS_PER_INTERACTION)
    return run_frontier(cfg) / cpu_rate
