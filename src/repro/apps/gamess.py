"""GAMESS (§3.1): fragment-level RI-MP2 on Summit vs. Frontier.

The paper's measured unit is "the fragment-level HIP RI-MP2 code within
LibCChem/EXESS": a 5× per-GPU speed-up of the density-fitted MP2
contraction after the memory-transfer optimizations, plus near-ideal
linear scaling of the Many Body Expansion to 2 048 nodes.

Timing model (documented in DESIGN.md §calibration): the contraction is an
FP64 GEMM running near library peak.  MI250X DGEMM in practice delivers
the vector-unit rate (its FP64 MFMA peak is not sustained by rocBLAS for
these shapes), so the per-GPU ratio is ≈ (47.9·0.85)/(7.8·0.90) with the
measured unit including the (optimized) host-device transfer of the
B-tensor batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.fragments import fragment_scaling_efficiency, mbe_energy, water_cluster
from repro.chem.rimp2 import rimp2_kernel_spec
from repro.gpu.perfmodel import time_kernel
from repro.gpu.transfer import h2d_time
from repro.hardware.gpu import MI250X, V100, GPUSpec


@dataclass(frozen=True)
class GamessConfig:
    """The production fragment dimensions (per-fragment RI-MP2 block)."""

    nocc: int = 64
    nvirt: int = 512
    naux: int = 2048

    @property
    def b_tensor_bytes(self) -> float:
        return 8.0 * self.naux * self.nocc * self.nvirt


def fragment_kernel_time(device: GPUSpec, cfg: GamessConfig, *,
                         transfers_optimized: bool) -> float:
    """One fragment's RI-MP2 time on *device*: transfer + contraction.

    Before the §3.1 memory-transfer optimizations the B tensor was
    re-staged per occupied pair batch (8 extra transfers); after, it moves
    once.
    """
    # cuBLAS on Summit was a mature library (0.92 of peak for these
    # shapes); the early rocBLAS releases reached 0.80 (§3.1's "nearly
    # peak" after optimization).
    efficiency = 0.92 if device.vendor.value == "nvidia" else 0.80
    spec = rimp2_kernel_spec(cfg.nocc, cfg.nvirt, cfg.naux, efficiency=efficiency)
    # DGEMM sustains the vector rate, not the MFMA headline (see module doc)
    spec = type(spec)(**{**spec.__dict__, "uses_matrix_engine": False})
    t_kernel = time_kernel(spec, device).total_time
    n_transfers = 1 if transfers_optimized else 9
    t_copy = n_transfers * h2d_time(int(cfg.b_tensor_bytes), device).time
    return t_kernel + t_copy


def run_summit(cfg: GamessConfig = GamessConfig()) -> float:
    """Per-fragment time on one Summit V100 (CUDA path, optimized)."""
    return fragment_kernel_time(V100, cfg, transfers_optimized=True)


def run_frontier(cfg: GamessConfig = GamessConfig()) -> float:
    """Per-fragment time on one Frontier MI250X (HIP path, optimized)."""
    return fragment_kernel_time(MI250X, cfg, transfers_optimized=True)


def speedup(cfg: GamessConfig = GamessConfig()) -> float:
    """The Table 2 number: fragment-level RI-MP2, Frontier/Summit."""
    return run_summit(cfg) / run_frontier(cfg)


def transfer_optimization_gain(cfg: GamessConfig = GamessConfig()) -> float:
    """§3.1's 'substantial improvement' from the memory-transfer fixes."""
    before = fragment_kernel_time(MI250X, cfg, transfers_optimized=False)
    after = fragment_kernel_time(MI250X, cfg, transfers_optimized=True)
    return before / after


def mbe_scaling(n_molecules: int, node_counts: list[int], *,
                gpus_per_node: int = 8) -> dict[int, float]:
    """Parallel efficiency of the MBE across Frontier node counts.

    Tasks = monomers + dimer pairs; each runs independently on one GCD
    (the GDDI group model).  Reproduces "nearly ideal linear scaling up
    to 2K nodes".
    """
    frags = water_cluster(min(n_molecules, 64), seed=0)
    # count tasks for the *full* molecule count without building them all
    n_tasks = n_molecules + n_molecules * (n_molecules - 1) // 2
    # sanity anchor: the small built cluster obeys the same formula
    small = mbe_energy(frags)
    assert small.n_independent_tasks == len(frags) + len(frags) * (len(frags) - 1) // 2
    return {
        nodes: fragment_scaling_efficiency(n_tasks, nodes * gpus_per_node)
        for nodes in node_counts
    }
