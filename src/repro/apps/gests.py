"""GESTS (§3.3): PSDNS figure of merit, Summit reference vs. Frontier.

FOM = N³ / t_wall.  Reference: the 18 432³ problem from the INCITE 2019
Summit campaign (CUDA PSDNS, slabs).  Frontier result: both ported
versions exceeded 5× on 4 096 nodes / 32 768 ranks at 32 768³.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fom import FigureOfMerit, FomKind
from repro.hardware.catalog import FRONTIER, SUMMIT
from repro.spectral.psdns import PsdnsStepTime, psdns_step_time


@dataclass(frozen=True)
class GestsConfig:
    summit_n: int = 18432
    summit_ranks: int = 18432  # slab limit: one rank per plane
    frontier_n: int = 32768
    frontier_ranks: int = 32768  # 4096 nodes x 8 GCDs
    decomposition: str = "slabs"


def summit_step(cfg: GestsConfig = GestsConfig()) -> PsdnsStepTime:
    return psdns_step_time(SUMMIT, cfg.summit_n, cfg.summit_ranks,
                           decomposition=cfg.decomposition)


def frontier_step(cfg: GestsConfig = GestsConfig()) -> PsdnsStepTime:
    return psdns_step_time(FRONTIER, cfg.frontier_n, cfg.frontier_ranks,
                           decomposition=cfg.decomposition)


def reference_fom(cfg: GestsConfig = GestsConfig()) -> FigureOfMerit:
    """The CAAR FOM definition with its Summit reference value."""
    ref = summit_step(cfg).fom(cfg.summit_n)
    return FigureOfMerit(
        name="GESTS PSDNS throughput",
        kind=FomKind.THROUGHPUT,
        reference_value=ref,
        target_factor=4.0,  # the CAAR commitment; >5x was delivered
        units="grid points / s",
    )


def fom_improvement(cfg: GestsConfig = GestsConfig()) -> float:
    """The headline: Frontier FOM / Summit reference FOM."""
    return frontier_step(cfg).fom(cfg.frontier_n) / summit_step(cfg).fom(cfg.summit_n)


def speedup(cfg: GestsConfig = GestsConfig()) -> float:
    """Table 2 basis: the FOM improvement factor."""
    return fom_improvement(cfg)


def slabs_vs_pencils(n: int = 8192, ranks: int = 4096) -> dict[str, PsdnsStepTime]:
    """The decomposition trade at rank counts both schemes support."""
    return {
        "slabs": psdns_step_time(FRONTIER, n, ranks, decomposition="slabs"),
        "pencils": psdns_step_time(FRONTIER, n, ranks, decomposition="pencils"),
    }


def pencil_only_scale(n: int = 4096, ranks: int = 32768) -> PsdnsStepTime:
    """A configuration beyond the slab rank ceiling (ranks > N)."""
    return psdns_step_time(FRONTIER, n, ranks, decomposition="pencils")


def openmp_management_overhead(n: int = 2048, nranks: int = 512) -> float:
    """§3.3's porting choice, quantified: vendor FFT + OpenMP management.

    "Vendor-specific functionality was limited to the core FFT functions,
    and OpenMP offloading was used to manage data movement ... and to
    accelerate a variety of array operations."  Returns the step-time
    ratio (OpenMP-managed / all-native); the FFT dominates, so the ratio
    must stay close to 1 — which is why the team could afford the
    portability.
    """
    from repro.progmodel.openmp import OPENMP_KERNEL_DERATE

    native = psdns_step_time(FRONTIER, n, nranks, decomposition="slabs")
    # OpenMP path: identical FFT + transpose terms; pointwise array ops
    # run at the OpenMP derate
    managed_total = (
        native.fft_time
        + native.transpose_time
        + native.pointwise_time / OPENMP_KERNEL_DERATE
    )
    return managed_total / native.total
