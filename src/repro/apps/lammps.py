"""LAMMPS/ReaxFF (§3.10): the >50 % speed-up from three optimizations.

Not a Table 2 row; the claim is "a greater than 50 % speedup of ReaxFF in
LAMMPS since Feb. 2022 for multiple GPU-vendors", from:

* the preprocessor-tuple rewrite of the divergent angular/torsional
  kernels (§3.10.2) — measured divergence comes from the *real* kernels in
  :mod:`repro.md.reaxff` on an HNS-like crystal;
* the fused dual-CG charge-equilibration solve (halved matrix reads and
  allreduces) — counters from :mod:`repro.md.qeq`;
* the compiler register-spill fix (§3.10.3) — spills zeroed in the kernel
  descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.gpu.perfmodel import time_kernel
from repro.hardware.catalog import FRONTIER
from repro.hardware.gpu import MI250X_GCD, GPUSpec, Precision
from repro.md.neighbor import build_bond_list, build_neighbor_list, hns_like_crystal
from repro.md.qeq import equilibrate_charges
from repro.md.reaxff import DivergenceStats, torsion_survivor_tuples
from repro.mpisim.costmodel import allreduce_time, link_parameters

#: Atoms per GCD in the production HNS benchmark.
ATOMS_PER_GPU = 500_000
#: FLOPs of one full torsion/angle force evaluation (§3.10: "many
#: expensive memory loads and floating-point operations").
FLOPS_PER_FORCE_TERM = 2000.0
#: FLOPs of one cutoff check ("proportionally small").
FLOPS_PER_CUTOFF = 12.0
#: QEq CG iterations per MD step and the matrix row cost.
QEQ_ITERATIONS = 25
QEQ_ROW_BYTES = 40 * 8.0  # ~40 nonzeros per atom row


@dataclass(frozen=True)
class LammpsConfig:
    seed: int = 1
    crystal_side: int = 4  # measurement crystal (statistics only)


@lru_cache(maxsize=4)
def measured_divergence(seed: int = 1, side: int = 4) -> tuple[float, float]:
    """(active_lane_fraction, survivors_per_atom) from the real kernels."""
    # molecular-crystal spacing: bonded pairs are rare relative to the
    # distance neighbor list, which is what makes Algorithm 1 divergent
    # ("only a handful of threads in the entire wavefront were active")
    x, box = hns_like_crystal(side, side, side, spacing=2.2, jitter=0.3, seed=seed)
    nb = build_neighbor_list(x, box, 4.4)
    bonds = build_bond_list(x, box, 2.0, build_neighbor_list(x, box, 2.0))
    stats = DivergenceStats()
    tuples = torsion_survivor_tuples(x, box, nb, bonds, cutoff=2.0, stats=stats)
    return stats.active_fraction, len(tuples) / len(x)


def torsion_kernel(cfg: LammpsConfig, *, preprocessed: bool,
                   spill_fixed: bool) -> KernelSpec:
    """The torsional force kernel before/after the §3.10.2 rewrite.

    Naive: every candidate lane runs, only ``active_fraction`` do useful
    force work.  Preprocessed: a cheap tuple-list pass plus a dense force
    kernel with full lanes.
    """
    lanes, tuples_per_atom = measured_divergence(cfg.seed, cfg.crystal_side)
    force_terms = ATOMS_PER_GPU * tuples_per_atom
    regs = 168 if spill_fixed else 280  # the double-constant spilling bug
    common = dict(
        threads=max(int(force_terms), 64),
        precision=Precision.FP64,
        registers_per_thread=regs,
        workgroup_size=256,
    )
    if preprocessed:
        return KernelSpec(
            name="torsion_dense",
            flops=force_terms * FLOPS_PER_FORCE_TERM,
            bytes_read=force_terms * 4 * 24.0,  # 4 atom records per tuple
            bytes_written=force_terms * 4 * 24.0,
            active_lane_fraction=0.95,
            **common,
        )
    candidates = force_terms / max(lanes, 1e-6)
    return KernelSpec(
        name="torsion_divergent",
        flops=force_terms * FLOPS_PER_FORCE_TERM + candidates * FLOPS_PER_CUTOFF,
        bytes_read=candidates * 2 * 24.0 + force_terms * 4 * 24.0,
        bytes_written=force_terms * 4 * 24.0,
        active_lane_fraction=max(lanes, 0.02),
        **common,
    )


def preprocessor_kernel(cfg: LammpsConfig) -> KernelSpec:
    """The tuple-list builder: all cutoff checks, no force math."""
    lanes, tuples_per_atom = measured_divergence(cfg.seed, cfg.crystal_side)
    candidates = ATOMS_PER_GPU * tuples_per_atom / max(lanes, 1e-6)
    return KernelSpec(
        name="torsion_preprocess",
        flops=candidates * FLOPS_PER_CUTOFF,
        bytes_read=candidates * 2 * 24.0,
        bytes_written=ATOMS_PER_GPU * tuples_per_atom * 16.0,
        threads=max(int(candidates), 64),
        precision=Precision.FP64,
        registers_per_thread=48,
        active_lane_fraction=0.9,  # checks are uniform work
        workgroup_size=256,
    )


def qeq_time(device: GPUSpec, *, fused: bool, nodes: int = 64) -> float:
    """Charge-equilibration time per MD step on *device* at *nodes*.

    Per CG iteration: one pass over the sparse matrix (memory bound) and
    one allreduce.  Fused dual-CG reads the matrix once for both systems
    and shares the allreduce (§3.10.2); separate solves pay both twice.
    """
    matrix_bytes = ATOMS_PER_GPU * QEQ_ROW_BYTES
    spmv = KernelSpec(
        name="qeq_spmv",
        flops=2.0 * ATOMS_PER_GPU * 40 * (2 if fused else 1),
        bytes_read=matrix_bytes,  # one read serves one (or both) RHS
        bytes_written=ATOMS_PER_GPU * 8.0 * (2 if fused else 1),
        threads=ATOMS_PER_GPU,
        precision=Precision.FP64,
        registers_per_thread=64,
    )
    fabric = FRONTIER.node.interconnect
    link = link_parameters(fabric, ranks_sharing_nic=2, device_buffers=True)
    t_iter = time_kernel(spmv, device).total_time + allreduce_time(
        nodes * 8, 16.0, link
    )
    solves = 1 if fused else 2
    return QEQ_ITERATIONS * solves * t_iter


def step_time(device: GPUSpec = MI250X_GCD, cfg: LammpsConfig = LammpsConfig(), *,
              preprocessed: bool = True, fused_qeq: bool = True,
              spill_fixed: bool = True, nodes: int = 64) -> float:
    """One ReaxFF MD step: torsion + angular forces + QEq."""
    t = 0.0
    if preprocessed:
        t += time_kernel(preprocessor_kernel(cfg), device).total_time
    # torsion and angular share the pattern; charge the kernel twice
    force = torsion_kernel(cfg, preprocessed=preprocessed, spill_fixed=spill_fixed)
    t += 2 * time_kernel(force, device).total_time
    t += qeq_time(device, fused=fused_qeq, nodes=nodes)
    return t


def optimization_speedup(cfg: LammpsConfig = LammpsConfig()) -> float:
    """The §3.10 headline: >50 % (i.e. >1.5x) since Feb 2022."""
    before = step_time(cfg=cfg, preprocessed=False, fused_qeq=False,
                       spill_fixed=False)
    after = step_time(cfg=cfg, preprocessed=True, fused_qeq=True,
                      spill_fixed=True)
    return before / after


def lever_breakdown(cfg: LammpsConfig = LammpsConfig()) -> dict[str, float]:
    """Each optimization's individual gain (others held at 'before')."""
    base = step_time(cfg=cfg, preprocessed=False, fused_qeq=False, spill_fixed=False)
    return {
        "preprocessor tuples": base / step_time(
            cfg=cfg, preprocessed=True, fused_qeq=False, spill_fixed=False),
        "fused dual-CG QEq": base / step_time(
            cfg=cfg, preprocessed=False, fused_qeq=True, spill_fixed=False),
        # the compiler fix landed after the rewrite; measure it there
        "spill fix": step_time(
            cfg=cfg, preprocessed=True, fused_qeq=True, spill_fixed=False)
        / step_time(cfg=cfg, preprocessed=True, fused_qeq=True, spill_fixed=True),
    }


def qeq_numerics_check(cfg: LammpsConfig = LammpsConfig()) -> bool:
    """The fused and separate QEq paths agree on real charges."""
    x, box = hns_like_crystal(3, 3, 3, seed=cfg.seed)
    chi = np.random.default_rng(cfg.seed).uniform(-1, 1, len(x))
    fused = equilibrate_charges(x, box, chi, fused=True)
    sep = equilibrate_charges(x, box, chi, fused=False)
    return bool(np.allclose(fused.charges, sep.charges, atol=1e-6))
