"""LSMS (§3.2): per-GPU FePt multiple-scattering time, Summit vs. Frontier.

The measured unit is the per-GPU time of one atom's LIZ calculation:
structure-constant construction + KKR-matrix assembly (HIP kernels) and
the τ-matrix dense complex solve.  Three effects compose the observed
≈7.5× per-GPU gain:

* raw device ratio — MI250X vs. V100 FP64;
* the solver switch — Summit ran the historical ``zblock_lu`` block
  inversion (lower FLOPs, lower achieved efficiency on pivotless small
  panels); Frontier calls rocSOLVER ``zgetrf/zgetrs`` (more FLOPs, much
  higher fraction of peak) — "we observe better performance for the
  direct solution";
* the assembly-kernel fix — the first HIP port's integer index/address
  arithmetic interfered with floating-point issue on MI250X; rearranging
  recovered throughput (modelled as an effective-rate derate removed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.kernel import KernelSpec
from repro.gpu.perfmodel import time_kernel
from repro.hardware.gpu import MI250X, V100, GPUSpec, Precision
from repro.linalg.solver import (
    getrf_flops,
    getrs_flops,
    solver_kernel_spec,
    zblock_lu_flops,
)

#: Achieved fractions of peak for each solver path (vendor-library scale):
#: block inversion spends time in small unblocked panels; rocSOLVER's
#: blocked LU keeps more of the work in large GEMM updates.
ZBLOCK_LU_EFFICIENCY = 0.45
GETRF_EFFICIENCY = 0.55


@dataclass(frozen=True)
class LsmsConfig:
    """FePt-class production problem: one atom's LIZ."""

    liz_atoms: int = 113  # atoms within the production LIZ radius
    block_size: int = 16  # (l_max + 1)^2 with l_max = 3

    @property
    def matrix_size(self) -> int:
        return self.liz_atoms * self.block_size


def assembly_kernel(cfg: LsmsConfig, *, index_math_optimized: bool) -> KernelSpec:
    """Structure constants + KKR assembly for one LIZ.

    ~400 FLOPs per complex matrix element (spherical harmonics, Hankel
    functions).  The unoptimized HIP port loses ~45 % of issue slots to
    integer address arithmetic (§3.2), modelled as extra flops.
    """
    n = cfg.matrix_size
    elements = float(n) * n
    flops = 400.0 * elements
    if not index_math_optimized:
        flops *= 1.8
    return KernelSpec(
        name="kkr_assembly",
        flops=flops,
        bytes_read=16.0 * elements,
        bytes_written=16.0 * elements,
        threads=max(int(elements), 64),
        precision=Precision.FP64,
        registers_per_thread=96,
        workgroup_size=256,
    )


def solve_time(device: GPUSpec, cfg: LsmsConfig, *, method: str) -> float:
    """τ-matrix solve time for one LIZ on *device*."""
    n, b = cfg.matrix_size, cfg.block_size
    if method == "zblock_lu":
        flops = zblock_lu_flops(n, b)
        eff = ZBLOCK_LU_EFFICIENCY
    elif method == "getrf":
        flops = getrf_flops(n) + getrs_flops(n, b)
        eff = GETRF_EFFICIENCY
    else:
        raise ValueError(f"unknown method {method!r}")
    spec = solver_kernel_spec(f"tau_{method}", flops, n, efficiency=eff)
    return time_kernel(spec, device).total_time


def run_summit(cfg: LsmsConfig = LsmsConfig()) -> float:
    """Summit production path: CUDA kernels + cuBLAS zblock_lu."""
    t_assembly = time_kernel(
        assembly_kernel(cfg, index_math_optimized=True), V100
    ).total_time
    return t_assembly + solve_time(V100, cfg, method="zblock_lu")


def run_frontier(cfg: LsmsConfig = LsmsConfig(), *,
                 index_math_optimized: bool = True) -> float:
    """Frontier path: optimized HIP assembly + rocSOLVER LU."""
    t_assembly = time_kernel(
        assembly_kernel(cfg, index_math_optimized=index_math_optimized), MI250X
    ).total_time
    return t_assembly + solve_time(MI250X, cfg, method="getrf")


def speedup(cfg: LsmsConfig = LsmsConfig()) -> float:
    """The Table 2 number: per-GPU FePt performance, Frontier/Summit."""
    return run_summit(cfg) / run_frontier(cfg)


def solver_choice_gain_on_frontier(cfg: LsmsConfig = LsmsConfig()) -> float:
    """§3.2 ablation: direct LU vs. block inversion on MI250X."""
    blocked = solve_time(MI250X, cfg, method="zblock_lu")
    direct = solve_time(MI250X, cfg, method="getrf")
    return blocked / direct


def index_math_fix_gain(cfg: LsmsConfig = LsmsConfig()) -> float:
    """§3.2 ablation: the assembly-kernel rearrangement on MI250X."""
    before = run_frontier(cfg, index_math_optimized=False)
    after = run_frontier(cfg, index_math_optimized=True)
    return before / after
