"""NuCCOR (§3.7): per-GPU coupled-cluster contraction throughput.

The NuCCOR port is architectural (plugins + hipify + rocBLAS adapters);
its 6.1× per-GPU gain is the device ratio of its dominant workload —
channel-blocked FP64 tensor contractions executed as library GEMMs — with
the same library efficiency on both sides (the abstraction layer calls
vendor BLAS either way).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.plugins import PluginFactory
from repro.gpu.perfmodel import time_kernel
from repro.hardware.gpu import MI250X, V100, GPUSpec
from repro.linalg.blas import gemm_kernel_spec


@dataclass(frozen=True)
class NuccorConfig:
    """Representative contraction block sizes for a medium-mass nucleus."""

    block_dim: int = 1536  # typical pphh channel block edge
    contractions_per_iteration: int = 48
    library_efficiency: float = 0.82


def contraction_time(device: GPUSpec, cfg: NuccorConfig) -> float:
    """One CC-iteration's worth of channel GEMMs on *device*."""
    spec = gemm_kernel_spec(
        cfg.block_dim, cfg.block_dim, cfg.block_dim,
        efficiency=cfg.library_efficiency,
        use_matrix_engine=False,  # FP64 GEMM sustains the vector rate
    )
    return cfg.contractions_per_iteration * time_kernel(spec, device).total_time


def run_summit(cfg: NuccorConfig = NuccorConfig()) -> float:
    """Per-GPU iteration time through the cublas plugin path."""
    return contraction_time(V100, cfg)


def run_frontier(cfg: NuccorConfig = NuccorConfig()) -> float:
    """Per-GPU iteration time through the rocblas adapter (§3.7)."""
    return contraction_time(MI250X, cfg)


def speedup(cfg: NuccorConfig = NuccorConfig()) -> float:
    """Table 2: 6.1x per-GPU."""
    return run_summit(cfg) / run_frontier(cfg)


def plugin_port_demo(n: int = 128) -> dict[str, float]:
    """The §3.7 porting story in miniature: the same domain call runs on
    every registered backend, numerically identical, only the simulated
    device differs.  Returns each plugin's elapsed device seconds."""
    import numpy as np

    factory = PluginFactory()
    rng = np.random.default_rng(0)
    a, b = rng.normal(size=(n, n)), rng.normal(size=(n, n))
    out: dict[str, float] = {}
    reference = None
    for name in factory.available:
        plugin = factory.create(name)
        result = plugin.gemm(a, b)
        if reference is None:
            reference = result
        else:
            np.testing.assert_allclose(result, reference)
        out[name] = plugin.elapsed
    return out
