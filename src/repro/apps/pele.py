"""Pele (§3.8): PeleC time-per-cell-per-timestep history — Figure 2.

Figure 2 plots the single-node time per cell per timestep of PeleC from
September 2018 to March 2023 across Cori (KNL), Theta (KNL), Eagle
(Skylake), Summit (V100) and Frontier (MI250X), through a sequence of code
states, with additional 4096-node points for the 2020/2021/2023 states.
The cumulative improvement is ≈75×, "due to both software and hardware
improvements".

Code states (each lever is a paper-described optimization):

* ``cpp-fortran-cpu`` — the original hybrid C++/Fortran many-core code;
* ``gpu-port-uvm`` — first AMReX-C++ GPU port: point-wise explicit
  chemistry, UVM-managed data, synchronous ghost exchange;
* ``cvode-batched`` — cells assembled into one big CVODE system
  (matrix-free GMRES in PeleC); far fewer RHS evaluations per step;
* ``fused-async`` — fused kernel launches for small boxes + AMReX's
  asynchronous ghost exchange (March 2021);
* ``frontier-tuned`` — UVM removed, HIP backend, register-pressure fixes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.amr.ghost import (
    GhostExchangeSpec,
    asynchronous_step_time,
    synchronous_step_time,
)
from repro.backend import ArrayBackend, resolve_backend
from repro.chem.codegen import compile_batched_kernels
from repro.chem.fused import rate_tables
from repro.chem.kinetics import (
    chemistry_rhs,
    jacobian_flop_count,
    rates_flop_count,
)
from repro.chem.mechanism import (
    Mechanism,
    drm19_like_mechanism,
    h2_o2_mechanism,
)
from repro.ode import BatchedBdfIntegrator, BdfIntegrator
from repro.resilience.abft import SdcDetected, require_finite
from repro.resilience.elastic import DomainSpec
from repro.resilience.snapshot import Snapshot, require_kind
from repro.gpu.kernel import KernelSpec
from repro.gpu.perfmodel import time_kernel_sequence
from repro.hardware.catalog import CORI, EAGLE, FRONTIER, SUMMIT, THETA
from repro.hardware.gpu import Precision
from repro.hardware.machine import MachineSpec
from repro.mpisim.comm import SimComm
from repro.mpisim.costmodel import link_parameters, ranks_per_nic
from repro.gpu.device import Device
from repro.ode.batched import BatchedBdfStats
from repro.observability.tracer import Tracer

#: Cells resident on one node in the single-node benchmark.
CELLS_PER_NODE = 256**3
#: Explicit point-wise chemistry: RK substeps per hydro step (stiff
#: mechanisms force many small substeps).
EXPLICIT_SUBSTEPS = 250
#: CVODE path: RHS evaluations + Newton/Krylov work per cell per step.
#: Stiff combustion still needs O(100) RHS evaluations per step; the win
#: over the explicit path is ~2.4x in work plus the batching efficiency.
CVODE_RHS_EVALS = 150
CVODE_JAC_EVALS = 4
#: Hydro/transport stencil work per cell per step.
HYDRO_FLOPS_PER_CELL = 4.0e3
#: Fraction of peak the chemistry inner loops reach on CPUs (gather-heavy,
#: exp-bound) and on GPUs after tuning.
CPU_CHEM_EFFICIENCY = 0.15
GPU_CHEM_EFFICIENCY = 0.12
#: The first GPU port ran the point-wise integrator: every cell walks its
#: own stiff substep sequence, so wavefronts diverge badly.
GPU_PORT_LANE_FRACTION = 0.50


@dataclass(frozen=True)
class PeleConfig:
    mechanism: Mechanism = None  # defaults to drm19-like

    def __post_init__(self) -> None:
        if self.mechanism is None:
            object.__setattr__(self, "mechanism", drm19_like_mechanism())


CODE_STATES = (
    "cpp-fortran-cpu",
    "gpu-port-uvm",
    "cvode-batched",
    "fused-async",
    "frontier-tuned",
)


def chemistry_field(cfg: PeleConfig = PeleConfig(), ncells: int = 64, *,
                    seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A synthetic hot reacting field: per-cell temperatures + states.

    Returns ``(T, C0)`` with ``T`` of shape (ncells,) and ``C0`` of shape
    (ncells, n_species) — the stacked layout the batched chemistry
    integration consumes.
    """
    rng = np.random.default_rng(seed)
    n = cfg.mechanism.n_species
    T = rng.uniform(1200.0, 1800.0, ncells)
    C0 = rng.uniform(0.05, 1.0, (ncells, n))
    return T, C0


def _fused_chemistry_rhs(mech: Mechanism, T: np.ndarray,
                         backend: ArrayBackend):
    """Batched RHS closure on the backend's fused rates kernel.

    The Arrhenius constants depend only on T — a parameter of the
    integration, not part of the state — so ``kf``/``kr`` are computed
    once here and every RHS sweep is just gathers, multiplies and one
    GEMM against the net stoichiometry matrix (~6 whole-batch ops vs the
    generated kernel's ~700 tiny per-reaction ones).
    """
    kernel = backend.rates_kernel(rate_tables(mech))
    kf, kr = kernel.rate_constants(np.asarray(T, dtype=float))

    def rhs(t, conc):
        return kernel.wdot(kf, kr, np.maximum(conc, 0.0))

    return rhs


def integrate_chemistry_batched(cfg: PeleConfig, T: np.ndarray,
                                C0: np.ndarray, dt: float, *,
                                rtol: float = 1e-6, atol: float = 1e-9,
                                backend: "str | ArrayBackend | None" = None):
    """Advance every cell's chemistry at once (the cvode-batched lever).

    Backend-dispatched fused rates + generated analytic batched Jacobian
    + batched Newton with factor reuse — the reproduction of the
    CVODE+MAGMA path Figure 2's 'cvode-batched' code state names.
    """
    be = resolve_backend(backend)
    kernels = compile_batched_kernels(cfg.mechanism)
    rhs = _fused_chemistry_rhs(cfg.mechanism, T, be)

    def jac(t, conc):
        return kernels.jacobian(T, np.maximum(conc, 0.0))

    integ = BatchedBdfIntegrator(rhs, jac=jac, rtol=rtol, atol=atol,
                                 backend=be)
    return integ.integrate(C0, 0.0, dt)


def integrate_chemistry_scalar(cfg: PeleConfig, T: np.ndarray,
                               C0: np.ndarray, dt: float, *,
                               rtol: float = 1e-6,
                               atol: float = 1e-9) -> np.ndarray:
    """The pre-batching reference: one scalar BDF integration per cell."""
    out = np.empty_like(C0)
    for i in range(C0.shape[0]):
        rhs = chemistry_rhs(cfg.mechanism, float(T[i]))
        integ = BdfIntegrator(rhs, rtol=rtol, atol=atol)
        out[i] = integ.integrate(C0[i].copy(), 0.0, dt).y
    return out


def measured_chemistry_speedup(cfg: PeleConfig = PeleConfig(), *,
                               ncells: int = 64, dt: float = 1e-6,
                               seed: int = 0,
                               backend: "str | ArrayBackend | None" = None,
                               ) -> dict:
    """Wall-clock scalar-loop vs batched chemistry on the same field.

    This is a *measured* (not modeled) ablation of the paper's batching
    lever, run on the reproduction's own integrators.  Returns timings,
    the speedup, and the worst per-species deviation between the two
    solutions (they must agree within solver tolerances).
    """
    be = resolve_backend(backend)
    T, C0 = chemistry_field(cfg, ncells, seed=seed)
    t0 = time.perf_counter()
    y_scalar = integrate_chemistry_scalar(cfg, T, C0, dt)
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    res = integrate_chemistry_batched(cfg, T, C0, dt, backend=be)
    t_batched = time.perf_counter() - t0
    scale = np.abs(y_scalar).max() + 1e-30
    return {
        "ncells": ncells,
        "dt": dt,
        "backend": be.name,
        "t_scalar": t_scalar,
        "t_batched": t_batched,
        "speedup": t_scalar / t_batched,
        "max_rel_deviation": float(np.abs(res.y - y_scalar).max() / scale),
    }


_CAMPAIGN_MECHANISMS = {
    "h2-o2": h2_o2_mechanism,
    "drm19": drm19_like_mechanism,
}


class PeleChemistryCampaign:
    """A checkpointable PeleC-style campaign: the Figure 2 workload as a
    long-running stateful job.

    Each ``step`` advances the whole hot reacting field by ``dt_chem``
    through the batched BDF integrator (the cvode-batched code state) and
    returns the *simulated* cost of that step on one node of the paper's
    2020 Summit configuration — the number the resilience runner charges
    against MTBF.  State is exactly ``(T, C, steps_done)``; the chemistry
    advance is deterministic, so replay-after-restore reproduces the
    failure-free trajectory bit for bit.
    """

    snapshot_kind = "apps.pele.campaign"
    snapshot_version = 1

    def __init__(self, *, ncells: int = 16, dt_chem: float = 5e-7,
                 seed: int = 0, mechanism: str = "h2-o2",
                 rtol: float = 1e-6, atol: float = 1e-9,
                 sdc_guard: bool = False,
                 tracer: Tracer | None = None,
                 comm: SimComm | None = None,
                 device: Device | None = None,
                 kernel_config: "object | None" = None,
                 backend: "str | ArrayBackend | None" = None) -> None:
        if mechanism not in _CAMPAIGN_MECHANISMS:
            raise ValueError(
                f"unknown mechanism {mechanism!r}; "
                f"known: {sorted(_CAMPAIGN_MECHANISMS)}"
            )
        self.mechanism_name = mechanism
        self.mechanism = _CAMPAIGN_MECHANISMS[mechanism]()
        self.dt_chem = float(dt_chem)
        self.rtol = rtol
        self.atol = atol
        self.sdc_guard = sdc_guard
        # observation-only substrates: the tracer records solver spans,
        # the communicator carries a per-step halo exchange and the
        # device replays the step as a kernel launch — none of them feed
        # back into (T, C, steps_done), so traced and untraced campaigns
        # stay bit-identical (the differential test's contract)
        self.tracer = tracer
        self.comm = comm
        self.device = device
        # a tuned launch configuration (any object with
        # ``apply(kernels, gpu_spec)``, e.g. repro.tuning.KernelConfig)
        # transforms the observation launch only — it can never reach
        # (T, C, steps_done), so tuned and default campaigns stay
        # bit-identical and only the modeled timeline moves
        self.kernel_config = kernel_config
        # like the tracer, the backend is an engine choice, not campaign
        # state: snapshots restore onto whatever engine the host runs
        self.backend = resolve_backend(backend)
        rng = np.random.default_rng(seed)
        self.T = rng.uniform(1200.0, 1600.0, ncells)
        self.C = rng.uniform(0.05, 1.0, (ncells, self.mechanism.n_species))
        self.steps_done = 0
        # simulated per-step cost: one cvode-batched step on a 2020
        # Summit node (drm19-sized chemistry, the Figure 2 workload)
        self.step_cost = single_node_step_time(SUMMIT, "cvode-batched")

    def step(self) -> float:
        kernels = compile_batched_kernels(self.mechanism)
        if self.sdc_guard:
            # a corrupted input state must not be integrated forward
            self.validate_state()

        rhs = _fused_chemistry_rhs(self.mechanism, self.T, self.backend)

        def jac(t, conc):
            return kernels.jacobian(self.T, np.maximum(conc, 0.0))

        integ = BatchedBdfIntegrator(rhs, jac=jac, rtol=self.rtol,
                                     atol=self.atol, max_steps=20_000,
                                     sdc_guard=self.sdc_guard,
                                     tracer=self.tracer,
                                     backend=self.backend)
        res = integ.integrate(self.C, 0.0, self.dt_chem)
        self.C = np.maximum(res.y, 0.0)
        self.steps_done += 1
        self._observe_step(res.stats)
        return self.step_cost

    def _observe_step(self, stats: BatchedBdfStats) -> None:
        """Per-step activity on the attached observation substrates.

        A ring halo exchange plus a stability allreduce on the simulated
        communicator (what the real multi-rank campaign would do between
        chemistry advances) and one fused chemistry launch on the device
        perf model.  Results are discarded: the campaign state never
        depends on either substrate, only the timeline does.
        """
        comm = self.comm
        if comm is not None and comm.nranks > 1 and not comm.failed.any():
            halo_bytes = float(self.C.nbytes) / comm.nranks
            for r in range(comm.nranks):
                comm.sendrecv(r, (r + 1) % comm.nranks,
                              float(self.T[r % self.T.shape[0]]), halo_bytes)
            comm.allreduce([float(self.steps_done)] * comm.nranks, 8.0,
                           op=np.maximum)
        if self.device is not None:
            spec = campaign_chemistry_kernel_spec(stats, self.mechanism)
            specs = ([spec] if self.kernel_config is None
                     else self.kernel_config.apply([spec], self.device.spec))
            for s in specs:
                self.device.launch_sync(s)
        tr = self.tracer
        if tr is not None:
            tr.metrics.counter("pele.steps").inc()
            tr.metrics.counter("pele.rhs_sweeps").inc(stats.rhs_sweeps)

    def snapshot(self) -> Snapshot:
        return Snapshot(self.snapshot_kind, self.snapshot_version, {
            "mechanism": self.mechanism_name,
            "dt_chem": self.dt_chem,
            "rtol": float(self.rtol),
            "atol": float(self.atol),
            "T": self.T,
            "C": self.C,
            "steps_done": int(self.steps_done),
        })

    def restore(self, snap: Snapshot) -> None:
        require_kind(snap, self)
        p = snap.payload
        if p["mechanism"] != self.mechanism_name:
            raise ValueError(
                f"snapshot is a {p['mechanism']!r} campaign, "
                f"this one is {self.mechanism_name!r}"
            )
        self.dt_chem = p["dt_chem"]
        self.rtol = p["rtol"]
        self.atol = p["atol"]
        self.T = p["T"].copy()
        self.C = p["C"].copy()
        self.steps_done = p["steps_done"]

    # -- resilience hooks ---------------------------------------------------

    def elastic_domain(self) -> DomainSpec:
        """Cells migrate whole: temperature plus the species vector."""
        return DomainSpec(
            nitems=self.T.shape[0],
            bytes_per_item=8.0 * (1 + self.mechanism.n_species),
            label="cells",
        )

    def sdc_targets(self) -> list[np.ndarray]:
        """The live arrays a bit flip can strike."""
        return [self.T, self.C]

    def validate_state(self) -> None:
        """Physical-plausibility audit: concentrations are clipped
        non-negative every step and temperatures start (and stay) in the
        hot-ignition window, so a sign or exponent flip is visible."""
        require_finite("pele chemistry state", self.T, self.C)
        if (self.C < 0.0).any():
            bad = int(np.flatnonzero((self.C < 0.0).any(axis=1))[0])
            raise SdcDetected(
                f"negative species concentration in cell {bad}",
                location=(bad,),
            )
        if (self.T < 500.0).any() or (self.T > 5000.0).any():
            bad = int(np.flatnonzero((self.T < 500.0) | (self.T > 5000.0))[0])
            raise SdcDetected(
                f"temperature outside the ignition window in cell {bad}",
                location=(bad,),
            )


def campaign_chemistry_kernel_spec(stats: BatchedBdfStats,
                                   mech: Mechanism) -> KernelSpec:
    """One campaign step's batched chemistry advance as a fused launch.

    Sized from the integration's *actual* work counters (RHS sweeps and
    LU refactorizations), so the device timeline reflects what the
    solver really did that step.
    """
    n = mech.n_species
    rates = rates_flop_count(mech)
    solve = (2.0 / 3.0) * n**3 + 2.0 * n**2
    flops = (stats.rhs_sweeps * rates * max(stats.ncells, 1)
             + stats.cells_refactored * solve)
    state_bytes = float(max(stats.ncells, 1) * (n + 1) * 8)
    return KernelSpec(
        name="campaign_chem_advance",
        flops=max(flops, 1.0),
        bytes_read=4 * state_bytes,
        bytes_written=state_bytes,
        threads=max(stats.ncells, 64),
        precision=Precision.FP64,
        registers_per_thread=160,
        workgroup_size=128,
    )


def chemistry_flops_per_cell(mech: Mechanism, *, cvode: bool) -> float:
    """FLOPs per cell per hydro step for the chemistry advance."""
    rates = rates_flop_count(mech)
    if not cvode:
        return EXPLICIT_SUBSTEPS * rates
    jac = jacobian_flop_count(mech)
    # Newton linear algebra per cell: one small dense solve worth of work
    n = mech.n_species
    solve = (2.0 / 3.0) * n**3 + 2.0 * n**2
    return CVODE_RHS_EVALS * rates + CVODE_JAC_EVALS * (jac + solve)


def _gpu_kernels(machine: MachineSpec, state: str, cfg: PeleConfig) -> list[KernelSpec]:
    """The per-step kernel list for one node's cells on one GCD-share."""
    assert machine.node.has_gpus
    cells = CELLS_PER_NODE // machine.node.gpus_per_node
    cvode = state in ("cvode-batched", "fused-async", "frontier-tuned")
    chem_flops = chemistry_flops_per_cell(cfg.mechanism, cvode=cvode) * cells
    nspec = cfg.mechanism.n_species
    state_bytes = float(cells * (nspec + 5) * 8)

    # the unrolled chemistry kernel: register-hungry; early states spill
    # and diverge (point-wise integration)
    regs = 260 if state == "gpu-port-uvm" else 160
    lanes = GPU_PORT_LANE_FRACTION if state == "gpu-port-uvm" else 1.0
    chem = KernelSpec(
        name="chem_advance",
        flops=chem_flops / GPU_CHEM_EFFICIENCY,
        bytes_read=4 * state_bytes,
        bytes_written=state_bytes,
        threads=max(cells, 64),
        precision=Precision.FP64,
        registers_per_thread=regs,
        active_lane_fraction=lanes,
        workgroup_size=128,
    )
    # un-fused hydro sweeps each re-read the full state; fusion removes
    # the intermediate passes (the real payoff beyond launch latency)
    hydro_launches = 2 if state in ("fused-async", "frontier-tuned") else 12
    hydro = KernelSpec(
        name="hydro_flux",
        flops=HYDRO_FLOPS_PER_CELL * cells / hydro_launches,
        bytes_read=3 * state_bytes,
        bytes_written=state_bytes,
        threads=max(cells, 64),
        precision=Precision.FP64,
        registers_per_thread=96,
        workgroup_size=256,
        launch_count=1,
    )
    return [chem] + [hydro] * hydro_launches


def single_node_step_time(machine: MachineSpec, state: str,
                          cfg: PeleConfig = PeleConfig()) -> float:
    """Wall seconds of one time step on one node of *machine*."""
    if state not in CODE_STATES:
        raise ValueError(f"unknown code state {state!r}; known: {CODE_STATES}")
    node = machine.node
    if not node.has_gpus:
        if state != "cpp-fortran-cpu":
            raise ValueError("GPU code states need a GPU machine")
        flops = (
            chemistry_flops_per_cell(cfg.mechanism, cvode=False)
            + HYDRO_FLOPS_PER_CELL
        ) * CELLS_PER_NODE
        rate = CPU_CHEM_EFFICIENCY * node.cpu_sockets * node.cpu.peak_flops_fp64
        return flops / rate

    kernels = _gpu_kernels(machine, state, cfg)
    async_launch = state in ("fused-async", "frontier-tuned")
    t = time_kernel_sequence(kernels, node.gpu, same_stream_async=async_launch)
    if state == "gpu-port-uvm":
        # UVM migration: the working set faults across the host link each
        # step while data ping-pongs between unported host code and kernels
        cells = CELLS_PER_NODE // node.gpus_per_node
        working_set = cells * (cfg.mechanism.n_species + 5) * 8
        t += 3 * working_set / node.gpu.host_link_bandwidth
    return t


def time_per_cell(machine: MachineSpec, state: str,
                  cfg: PeleConfig = PeleConfig()) -> float:
    """The Figure 2 y-axis: seconds per cell per timestep (single node)."""
    return single_node_step_time(machine, state, cfg) / CELLS_PER_NODE


def scaled_step_time(machine: MachineSpec, state: str, nodes: int,
                     cfg: PeleConfig = PeleConfig()) -> float:
    """Per-step time at *nodes* (weak scaling): node step + ghost exchange."""
    t_node = single_node_step_time(machine, state, cfg)
    fabric = machine.node.interconnect
    assert fabric is not None
    link = link_parameters(
        fabric,
        ranks_sharing_nic=ranks_per_nic(max(machine.node.gpus_per_node, 1), fabric),
        device_buffers=machine.node.has_gpus,
    )
    per_rank_cells = CELLS_PER_NODE // max(machine.node.gpus_per_node, 1)
    face = round(per_rank_cells ** (2 / 3))
    nspec = cfg.mechanism.n_species
    spec = GhostExchangeSpec(neighbors=6, bytes_per_neighbor=4 * face * (nspec + 5) * 8.0)
    if state in ("fused-async", "frontier-tuned"):
        return asynchronous_step_time(t_node, spec, link)
    return synchronous_step_time(t_node, spec, link)


def weak_scaling_efficiency(machine: MachineSpec, state: str, nodes: int,
                            cfg: PeleConfig = PeleConfig()) -> float:
    """t(1 node) / t(N nodes) under weak scaling (§3.8: >80 % at 4096)."""
    return single_node_step_time(machine, state, cfg) / scaled_step_time(
        machine, state, nodes, cfg
    )


def figure2_history(cfg: PeleConfig = PeleConfig()) -> list[tuple[str, str, str, float]]:
    """The Figure 2 series: (date, machine, state, s/cell/step)."""
    entries = [
        ("2018-09", CORI, "cpp-fortran-cpu"),
        ("2019-03", THETA, "cpp-fortran-cpu"),
        ("2019-06", EAGLE, "cpp-fortran-cpu"),
        ("2019-12", SUMMIT, "gpu-port-uvm"),
        ("2020-09", SUMMIT, "cvode-batched"),
        ("2021-03", SUMMIT, "fused-async"),
        ("2023-03", FRONTIER, "frontier-tuned"),
    ]
    return [
        (date, m.name, state, time_per_cell(m, state, cfg))
        for date, m, state in entries
    ]


def figure2_scale_series(cfg: PeleConfig = PeleConfig()) -> list[tuple[str, str, str, float]]:
    """The 4096-node points of Figure 2 (2020, 2021, 2023 states)."""
    entries = [
        ("2020-09", SUMMIT, "cvode-batched"),
        ("2021-03", SUMMIT, "fused-async"),
        ("2023-03", FRONTIER, "frontier-tuned"),
    ]
    return [
        (date, m.name, state,
         scaled_step_time(m, state, 4096, cfg) / CELLS_PER_NODE)
        for date, m, state in entries
    ]


def total_improvement(cfg: PeleConfig = PeleConfig()) -> float:
    """Figure 2's headline: ≈75x from Sept 2018 Cori to Mar 2023 Frontier."""
    hist = figure2_history(cfg)
    return hist[0][3] / hist[-1][3]


def run_summit(cfg: PeleConfig = PeleConfig()) -> float:
    """Table 2 basis: best Summit code state, per-cell time."""
    return time_per_cell(SUMMIT, "fused-async", cfg)


def run_frontier(cfg: PeleConfig = PeleConfig()) -> float:
    return time_per_cell(FRONTIER, "frontier-tuned", cfg)


def speedup(cfg: PeleConfig = PeleConfig()) -> float:
    """Table 2: 4.2x."""
    return run_summit(cfg) / run_frontier(cfg)
