"""Pluggable array-backend dispatch for the reproduction's hot kernels.

One kernel source of truth per family, retargeted across array engines —
the CRK-HACC single-source SYCL lesson (PAPERS.md, arXiv:2310.16122)
applied to the reproduction's own compute.  The numpy reference backend
is always available; a numba-JIT backend is auto-detected at import;
cupy/JAX names are registered as porting stubs.

Selection::

    from repro.backend import get_backend
    be = get_backend()          # "auto": numba when installed, else numpy
    be = get_backend("numpy")   # explicit
    be = get_backend(existing_backend_instance)  # pass-through

``REPRO_BACKEND=<name>`` pins the "auto" choice process-wide (the CI
matrix job uses it to force each backend under the same suite).  Every
backend is held to the numpy reference by ``tests/test_backend.py``:
integer-exact tallies, ≤1e-9 relative LU/forces, roundoff-level fused
chemistry rates.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.backend.base import (
    ArrayBackend,
    BackendUnavailable,
    ChemRateTables,
    FusedRatesKernel,
)
from repro.backend.numba_backend import HAVE_NUMBA, NumbaBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.stubs import library_present, make_stub_factory

__all__ = [
    "ArrayBackend",
    "BackendUnavailable",
    "ChemRateTables",
    "FusedRatesKernel",
    "available_backends",
    "backend_available",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]

_FACTORIES: dict[str, Callable[[], ArrayBackend]] = {}
_PROBES: dict[str, Callable[[], bool]] = {}
_INSTANCES: dict[str, ArrayBackend] = {}


def register_backend(name: str, factory: Callable[[], ArrayBackend], *,
                     probe: Callable[[], bool] | None = None) -> None:
    """Register *factory* under *name*; *probe* gates availability."""
    _FACTORIES[name] = factory
    _PROBES[name] = probe if probe is not None else (lambda: True)
    _INSTANCES.pop(name, None)


def registered_backends() -> tuple[str, ...]:
    """Every registered name, available or not (stubs included)."""
    return tuple(_FACTORIES)


def backend_available(name: str) -> bool:
    """True when *name* is registered and its probe passes."""
    probe = _PROBES.get(name)
    return bool(probe and probe())


def available_backends() -> tuple[str, ...]:
    """Names that :func:`get_backend` will actually construct."""
    return tuple(n for n in _FACTORIES if backend_available(n))


def _auto_name() -> str:
    pinned = os.environ.get("REPRO_BACKEND")
    if pinned:
        return pinned
    return "numba" if backend_available("numba") else "numpy"


def get_backend(name: str | ArrayBackend | None = "auto") -> ArrayBackend:
    """Resolve a backend by name ("auto" picks the best available)."""
    if isinstance(name, ArrayBackend):
        return name
    if name is None or name == "auto":
        name = _auto_name()
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown backend {name!r}; registered: {registered_backends()}")
    if not backend_available(name):
        # let the factory speak: stubs raise porting guidance, the numba
        # factory names the missing library
        _FACTORIES[name]()
        raise BackendUnavailable(
            f"backend {name!r} is registered but unavailable here; "
            f"available: {available_backends()}")
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _FACTORIES[name]()
        _INSTANCES[name] = instance
    return instance


def resolve_backend(backend: str | ArrayBackend | None) -> ArrayBackend:
    """Consumer-side resolver: ``None`` means "auto"."""
    return get_backend("auto" if backend is None else backend)


register_backend("numpy", NumpyBackend)
register_backend("numba", NumbaBackend, probe=lambda: HAVE_NUMBA)
# device-array porting stubs: visible in the registry, never "available"
register_backend("cupy", make_stub_factory("cupy", "cupy"),
                 probe=lambda: False)
register_backend("jax", make_stub_factory("jax", "jax"),
                 probe=lambda: False)
