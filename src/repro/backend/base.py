"""The ``ArrayBackend`` contract: one interface, many array engines.

The paper's porting chapters keep arriving at the same destination —
CRK-HACC recast on single-source SYCL, Kokkos/YAKL abstracting the
E3SM/ExaStar kernels, OpenMP offload carrying GAMESS — one *kernel
source of truth* retargeted across vendors (performance portability).
The reproduction models that pattern in :mod:`repro.progmodel`; this
package makes the *real* compute follow it.  An :class:`ArrayBackend`
implements the repo's three proven hot-kernel families:

* **batched dense linalg** — the MAGMA-style LU factor/solve stacks
  under the batched BDF Newton iterations (§3.8 Pele), plus the fused
  factor-to-inverse/apply pair the Newton fast path uses (factor once,
  then every modified-Newton iteration is a single batched matmul);
* **fused chemistry rates** — mass-action production rates evaluated
  from precomputed stoichiometry tables (:class:`ChemRateTables`) in a
  handful of fused array sweeps, replacing the unrolled generated
  kernel's hundreds of tiny array ops (the launch-overhead pathology
  §3.8 describes, in numpy form);
* **bit-plane popcount tallies** — CoMet's count-GEMM word sweeps
  (§3.6) as one fused AND+popcount+reduce pass;
* **pairwise short-range forces** — the HACC/ExaSky direct kernels
  (§3.4).

The numpy reference implementation is always available and defines the
semantics; every alternate backend is held to it by the parity suite in
``tests/test_backend.py`` (integer-exact for tallies, ≤1e-9 relative
for LU/forces).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


class BackendUnavailable(RuntimeError):
    """Requested a backend whose runtime dependency is not importable."""


@dataclass(frozen=True)
class ChemRateTables:
    """Mechanism stoichiometry flattened into backend-agnostic arrays.

    The generated-code path (:mod:`repro.chem.codegen`) unrolls every
    reaction into its own source lines; these tables are the same
    information laid out for *data-driven* fused kernels:

    ``fwd_idx``/``rev_idx`` list each reaction's reactant/product species
    with multiplicity (a ν=2 species appears twice), padded with the
    out-of-range index ``n_species`` so a gathered dummy concentration of
    1.0 is a no-op.  ``net_*`` hold the net stoichiometric scatter both
    dense (``net``, for one GEMM) and as COO triplets (for compiled
    scatter loops).
    """

    n_species: int
    n_reactions: int
    A: np.ndarray          # (R,) forward Arrhenius prefactor
    b: np.ndarray          # (R,) forward temperature exponent
    Ea: np.ndarray         # (R,) forward activation energy
    rev_A: np.ndarray      # (R,) reverse prefactor (0 = irreversible)
    rev_b: np.ndarray
    rev_Ea: np.ndarray
    has_reverse: np.ndarray  # (R,) bool
    fwd_idx: np.ndarray    # (R, Lf) intp, padded with n_species
    rev_idx: np.ndarray    # (R, Lp) intp, padded with n_species
    net: np.ndarray        # (R, n) float net stoichiometry
    net_rows: np.ndarray   # (E,) intp reaction index of each COO entry
    net_cols: np.ndarray   # (E,) intp species index
    net_vals: np.ndarray   # (E,) float coefficient


class FusedRatesKernel(abc.ABC):
    """A compiled fused ω̇ evaluator for one mechanism on one backend.

    Split in two so the temperature-only Arrhenius work is paid once per
    integration (T is a parameter of the chemistry advance, not a state
    variable): :meth:`rate_constants` precomputes ``(kf, kr)`` for a
    temperature field, :meth:`wdot` evaluates production rates for a
    concentration field under those constants.
    """

    def __init__(self, tables: ChemRateTables) -> None:
        self.tables = tables

    def rate_constants(self, T) -> tuple[np.ndarray, np.ndarray]:
        """``(kf, kr)`` with shape ``np.shape(T) + (n_reactions,)``.

        Elementwise identical to the generated kernel's per-reaction
        ``A * T**b * exp(-Ea/(R*T))`` expressions, so fused and unrolled
        paths agree to the last bit on the rate constants.
        """
        from repro.chem.mechanism import R_UNIV

        t = self.tables
        T = np.asarray(T, dtype=float)[..., None]
        kf = t.A * T ** t.b * np.exp(-t.Ea / (R_UNIV * T))
        kr = np.where(
            t.has_reverse,
            t.rev_A * T ** t.rev_b * np.exp(-t.rev_Ea / (R_UNIV * T)),
            0.0,
        )
        return kf, np.broadcast_to(kr, kf.shape)

    @abc.abstractmethod
    def wdot(self, kf: np.ndarray, kr: np.ndarray,
             C: np.ndarray) -> np.ndarray:
        """Production rates for ``C`` (..., n_species) under ``(kf, kr)``.

        Leading axes of ``C`` beyond the ones ``kf`` carries must
        broadcast (the batched FD Jacobian stacks perturbed copies of the
        whole field in front).
        """


class ArrayBackend(abc.ABC):
    """One array engine implementing the repro's hot kernel families."""

    #: Registry name; also the tag recorded on observability spans.
    name: str = "?"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArrayBackend {self.name}>"

    # -- batched dense linalg (§3.8 MAGMA motif) ---------------------------

    @abc.abstractmethod
    def lu_factor(self, mats: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Row-pivoted LU of a (batch, n, n) stack → ``(lu, piv)``."""

    @abc.abstractmethod
    def lu_solve(self, lu: np.ndarray, piv: np.ndarray,
                 rhs: np.ndarray) -> np.ndarray:
        """Solve with held factors; ``rhs`` (batch, n) or (batch, n, k)."""

    @abc.abstractmethod
    def inv(self, mats: np.ndarray) -> np.ndarray:
        """Explicit batched inverse (batch, n, n) → (batch, n, n).

        The Newton fast path trades one inversion per refactorization for
        matmul-only iterations — the fuse-the-solve move; modified Newton
        is self-correcting, so the residual envelope difference versus a
        triangular solve is absorbed by the iteration it feeds.
        """

    @abc.abstractmethod
    def inv_apply(self, inv: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """``x[i] = inv[i] @ rhs[i]`` — one fused batched matmul."""

    # -- fused chemistry rates (§3.8 Pele) ---------------------------------

    @abc.abstractmethod
    def rates_kernel(self, tables: ChemRateTables) -> FusedRatesKernel:
        """Compile a fused ω̇ evaluator for one mechanism."""

    # -- bit-plane popcount tallies (§3.6 CoMet) ---------------------------

    @abc.abstractmethod
    def popcount_tallies_2way(self, words: np.ndarray) -> np.ndarray:
        """(n, S, W) packed planes → int64 (S, S, n, n) co-occurrence."""

    @abc.abstractmethod
    def popcount_tallies_3way(self, words: np.ndarray) -> np.ndarray:
        """(n, S, W) packed planes → int64 (S, S, S, n, n, n) tallies."""

    # -- pairwise short-range forces (§3.4 ExaSky) -------------------------

    @abc.abstractmethod
    def pairwise_forces(self, x: np.ndarray, masses: np.ndarray, *,
                        G: float, rs: float | None = None,
                        cutoff: float | None = None,
                        box_size: float | None = None) -> np.ndarray:
        """All i<j pair forces accumulated per particle.

        ``rs`` selects the erfc-filtered short-range kernel (with
        ``cutoff`` and minimum-image ``box_size``); ``rs=None`` is the
        open-boundary Newtonian direct sum.
        """
