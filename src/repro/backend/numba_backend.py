"""Optional numba-JIT backend: the same kernels, compiled to machine code.

Auto-detected at import of :mod:`repro.backend` (``HAVE_NUMBA``); when
numba is absent this module still imports cleanly and the backend simply
reports unavailable — the container/CI contract is "skip gracefully,
never fail at import".

Design constraints, in the spirit of the paper's single-source ports:

* every kernel implements the *identical algorithm and operation order*
  as the numpy reference (same pivot tie-breaking, same accumulation
  order per cell), so parity holds far inside the suite's 1e-9 band and
  tallies are integer-exact;
* no ``fastmath``, no ``parallel`` — reassociation or nondeterministic
  reductions would break the repo's bit-identical resilience contracts;
* popcounts go through a 16-bit lookup table (four lookups per packed
  word) rather than SWAR intrinsics, keeping the uint arithmetic simple
  enough to type-check on every numba version CI meets.

Kernels compile lazily on first use; the first call in a process pays
the JIT cost (seconds), which the benchmarks warm up out of band.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend.base import ArrayBackend, ChemRateTables, FusedRatesKernel
from repro.backend.numpy_backend import POP16

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the numpy-only container path
    HAVE_NUMBA = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Placeholder so kernel definitions below still parse."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


# -- batched dense linalg ----------------------------------------------------


@njit(cache=False)
def _lu_factor_kernel(lu, piv):  # pragma: no cover - requires numba
    B, n, _ = lu.shape
    for bi in range(B):
        for k in range(n):
            p = k
            best = abs(lu[bi, k, k])
            for i in range(k + 1, n):
                v = abs(lu[bi, i, k])
                if v > best:  # strict: first maximum, like np.argmax
                    best = v
                    p = i
            piv[bi, k] = p
            if p != k:
                for j in range(n):
                    tmp = lu[bi, k, j]
                    lu[bi, k, j] = lu[bi, p, j]
                    lu[bi, p, j] = tmp
            pivot = lu[bi, k, k]
            safe = pivot if abs(pivot) > 0.0 else 1.0
            for i in range(k + 1, n):
                lu[bi, i, k] /= safe
            for i in range(k + 1, n):
                lik = lu[bi, i, k]
                for j in range(k + 1, n):
                    lu[bi, i, j] -= lik * lu[bi, k, j]


@njit(cache=False)
def _lu_solve_kernel(lu, piv, x):  # pragma: no cover - requires numba
    B, n, _ = lu.shape
    nrhs = x.shape[2]
    for bi in range(B):
        for k in range(n):
            p = piv[bi, k]
            if p != k:
                for m in range(nrhs):
                    tmp = x[bi, k, m]
                    x[bi, k, m] = x[bi, p, m]
                    x[bi, p, m] = tmp
        for k in range(1, n):  # forward: L has unit diagonal
            for m in range(nrhs):
                acc = 0.0
                for j in range(k):
                    acc += lu[bi, k, j] * x[bi, j, m]
                x[bi, k, m] -= acc
        for k in range(n - 1, -1, -1):  # backward
            for m in range(nrhs):
                acc = 0.0
                for j in range(k + 1, n):
                    acc += lu[bi, k, j] * x[bi, j, m]
                x[bi, k, m] = (x[bi, k, m] - acc) / lu[bi, k, k]


@njit(cache=False)
def _inv_kernel(mats, out):  # pragma: no cover - requires numba
    B = mats.shape[0]
    for bi in range(B):
        out[bi] = np.linalg.inv(mats[bi])


# -- fused chemistry rates ---------------------------------------------------


@njit(cache=False)
def _wdot_kernel(kf, kr, C, fwd_idx, rev_idx, has_rev,
                 net_rows, net_cols, net_vals, q,
                 out):  # pragma: no cover - requires numba
    B, n = C.shape
    R = kf.shape[1]
    Lf = fwd_idx.shape[1]
    Lp = rev_idx.shape[1]
    E = net_rows.shape[0]
    for c in range(B):
        for r in range(R):
            qf = kf[c, r]
            for col in range(Lf):
                s = fwd_idx[r, col]
                if s < n:
                    qf *= C[c, s]
            if has_rev[r]:
                qr = kr[c, r]
                for col in range(Lp):
                    s = rev_idx[r, col]
                    if s < n:
                        qr *= C[c, s]
                q[r] = qf - qr
            else:
                q[r] = qf
        for s in range(n):
            out[c, s] = 0.0
        for e in range(E):
            out[c, net_cols[e]] += net_vals[e] * q[net_rows[e]]


class _NumbaRates(FusedRatesKernel):
    def wdot(self, kf: np.ndarray, kr: np.ndarray,
             C: np.ndarray) -> np.ndarray:  # pragma: no cover - needs numba
        t = self.tables
        n = t.n_species
        C = np.ascontiguousarray(C, dtype=np.float64)
        lead = np.broadcast_shapes(C.shape[:-1], kf.shape[:-1])
        kf2 = np.ascontiguousarray(
            np.broadcast_to(kf, lead + kf.shape[-1:]), dtype=np.float64
        ).reshape(-1, t.n_reactions)
        kr2 = np.ascontiguousarray(
            np.broadcast_to(kr, lead + kr.shape[-1:]), dtype=np.float64
        ).reshape(-1, t.n_reactions)
        C2 = np.ascontiguousarray(
            np.broadcast_to(C, lead + (n,))).reshape(-1, n)
        out = np.empty_like(C2)
        q = np.empty(t.n_reactions)
        _wdot_kernel(kf2, kr2, C2, t.fwd_idx, t.rev_idx,
                     np.ascontiguousarray(t.has_reverse),
                     t.net_rows, t.net_cols, t.net_vals, q, out)
        return out.reshape(lead + (n,))


# -- bit-plane popcount tallies ----------------------------------------------


@njit(cache=False)
def _tally2_kernel(words16, table, out):  # pragma: no cover - requires numba
    n, S, W4 = words16.shape
    for s in range(S):
        for t in range(S):
            for i in range(n):
                for j in range(n):
                    acc = 0
                    for w in range(W4):
                        acc += table[words16[i, s, w] & words16[j, t, w]]
                    out[s, t, i, j] = acc


@njit(cache=False)
def _tally3_kernel(words16, table, out):  # pragma: no cover - requires numba
    n, S, W4 = words16.shape
    for s in range(S):
        for t in range(S):
            for u in range(S):
                for i in range(n):
                    for j in range(n):
                        for k in range(n):
                            acc = 0
                            for w in range(W4):
                                acc += table[words16[i, s, w]
                                             & words16[j, t, w]
                                             & words16[k, u, w]]
                            out[s, t, u, i, j, k] = acc


# -- pairwise short-range forces ---------------------------------------------


@njit(cache=False)
def _short_forces_kernel(x, masses, box, rs, cutoff, G, periodic,
                         out):  # pragma: no cover - requires numba
    n = x.shape[0]
    pref = 1.0 / (rs * math.sqrt(math.pi))
    for i in range(n):
        for j in range(i + 1, n):
            dx = x[j, 0] - x[i, 0]
            dy = x[j, 1] - x[i, 1]
            dz = x[j, 2] - x[i, 2]
            if periodic:
                dx -= box * math.floor(dx / box + 0.5)
                dy -= box * math.floor(dy / box + 0.5)
                dz -= box * math.floor(dz / box + 0.5)
            r2 = dx * dx + dy * dy + dz * dz
            if r2 <= 0.0:
                continue
            r = math.sqrt(r2)
            if r >= cutoff:
                continue
            fmag = G * (math.erfc(r / (2.0 * rs)) / r2
                        + math.exp(-r2 / (4.0 * rs * rs)) * pref / r)
            f = masses[i] * masses[j] * fmag / r
            out[i, 0] += f * dx
            out[i, 1] += f * dy
            out[i, 2] += f * dz
            out[j, 0] -= f * dx
            out[j, 1] -= f * dy
            out[j, 2] -= f * dz


@njit(cache=False)
def _direct_forces_kernel(x, masses, G, out):  # pragma: no cover - numba
    n = x.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            dx = x[j, 0] - x[i, 0]
            dy = x[j, 1] - x[i, 1]
            dz = x[j, 2] - x[i, 2]
            r2 = dx * dx + dy * dy + dz * dz
            if r2 <= 0.0:
                continue
            r = math.sqrt(r2)
            f = G * masses[i] * masses[j] / (r2 * r)
            out[i, 0] += f * dx
            out[i, 1] += f * dy
            out[i, 2] += f * dz
            out[j, 0] -= f * dx
            out[j, 1] -= f * dy
            out[j, 2] -= f * dz


class NumbaBackend(ArrayBackend):  # pragma: no cover - requires numba
    """JIT-compiled backend; only constructible when numba imports."""

    name = "numba"

    def __init__(self) -> None:
        if not HAVE_NUMBA:
            from repro.backend.base import BackendUnavailable

            raise BackendUnavailable(
                "numba is not installed; `pip install numba` or use the "
                "numpy backend")

    def lu_factor(self, mats: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lu = np.array(mats, dtype=np.float64, copy=True, order="C")
        if lu.ndim != 3 or lu.shape[1] != lu.shape[2]:
            raise ValueError(f"expected (batch, n, n) matrices, got {lu.shape}")
        piv = np.empty((lu.shape[0], lu.shape[1]), dtype=np.intp)
        _lu_factor_kernel(lu, piv)
        return lu, piv

    def lu_solve(self, lu: np.ndarray, piv: np.ndarray,
                 rhs: np.ndarray) -> np.ndarray:
        b, n, _ = lu.shape
        x = np.array(rhs, dtype=np.float64, copy=True, order="C")
        vector_rhs = x.ndim == 2
        if vector_rhs:
            x = x[..., None]
        if x.shape[:2] != (b, n):
            raise ValueError(
                f"rhs shape {np.shape(rhs)} does not match factors {lu.shape}")
        _lu_solve_kernel(np.ascontiguousarray(lu, dtype=np.float64),
                         np.ascontiguousarray(piv), x)
        return x[..., 0] if vector_rhs else x

    def inv(self, mats: np.ndarray) -> np.ndarray:
        mats = np.ascontiguousarray(mats, dtype=np.float64)
        out = np.empty_like(mats)
        _inv_kernel(mats, out)
        return out

    def inv_apply(self, inv: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        # one batched matmul is already a single fused call; BLAS wins here
        return np.matmul(inv, rhs[..., None])[..., 0]

    def rates_kernel(self, tables: ChemRateTables) -> FusedRatesKernel:
        return _NumbaRates(tables)

    def popcount_tallies_2way(self, words: np.ndarray) -> np.ndarray:
        n, S, W = words.shape
        words16 = np.ascontiguousarray(words).view(np.uint16)
        words16 = words16.reshape(n, S, W * 4)
        out = np.empty((S, S, n, n), dtype=np.int64)
        _tally2_kernel(words16, POP16, out)
        return out

    def popcount_tallies_3way(self, words: np.ndarray) -> np.ndarray:
        n, S, W = words.shape
        words16 = np.ascontiguousarray(words).view(np.uint16)
        words16 = words16.reshape(n, S, W * 4)
        out = np.empty((S, S, S, n, n, n), dtype=np.int64)
        _tally3_kernel(words16, POP16, out)
        return out

    def pairwise_forces(self, x: np.ndarray, masses: np.ndarray, *,
                        G: float, rs: float | None = None,
                        cutoff: float | None = None,
                        box_size: float | None = None) -> np.ndarray:
        x = np.ascontiguousarray(x, dtype=np.float64)
        masses = np.ascontiguousarray(masses, dtype=np.float64)
        out = np.zeros_like(x)
        if len(x) < 2:
            return out
        if rs is not None:
            _short_forces_kernel(
                x, masses,
                float(box_size) if box_size is not None else 1.0,
                float(rs),
                float(cutoff) if cutoff is not None else np.inf,
                float(G), box_size is not None, out)
        else:
            _direct_forces_kernel(x, masses, float(G), out)
        return out
