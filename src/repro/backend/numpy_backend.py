"""The numpy reference backend: always available, defines the semantics.

Every kernel here is *fused* relative to the paths it replaced:

* chemistry rates collapse the generated kernel's ~700 tiny array ops
  per sweep (one per unrolled reaction term) into ~6 whole-batch ops —
  two gathers, two multiplies, one subtract, one GEMM against the net
  stoichiometry matrix;
* the Newton solve path trades the 2n-einsum triangular sweeps for one
  batched inversion per refactorization plus a single matmul per
  iteration;
* the popcount tallies AND/popcount/reduce *all* state pairs in one
  broadcast sweep over (n·S)-row word blocks instead of S² separate
  pack-then-AND-then-popcount temporaries.

The bit-exact LU factor/solve reference lives in
:mod:`repro.linalg.batched`; this backend re-exports it so alternate
backends have a single semantic anchor.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.special import erfc

from repro.backend.base import ArrayBackend, ChemRateTables, FusedRatesKernel

# -- popcount primitives (shared with repro.similarity.gemmtally) -----------

#: Byte-popcount lookup, built once at import (never per engine instance).
POP8 = np.array([bin(v).count("1") for v in range(256)], dtype=np.uint8)
#: 16-bit popcount lookup for compiled backends (4 lookups per uint64).
POP16 = (POP8[np.arange(1 << 16) & 0xFF]
         + POP8[np.arange(1 << 16) >> 8]).astype(np.uint8)

if hasattr(np, "bitwise_count"):  # numpy >= 2.0: the hardware popcount
    def popcount_words(words: np.ndarray) -> np.ndarray:
        return np.bitwise_count(words)
else:  # pragma: no cover - exercised only on numpy 1.x
    def popcount_words(words: np.ndarray) -> np.ndarray:
        return POP8[words.view(np.uint8)].reshape(*words.shape, 8).sum(axis=-1)


#: Word-sweep temporary budget (elements) for the fused tally kernels.
_SWEEP_BUDGET = 1 << 24


@lru_cache(maxsize=128)
def triu_pairs(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Memoized ``np.triu_indices(n, k=1)`` — campaigns evaluate forces
    for the same particle count thousands of times; callers must treat
    the returned arrays as read-only."""
    return np.triu_indices(n, k=1)


def short_range_pair_magnitude(r: np.ndarray, rs: float, *,
                               G: float = 1.0) -> np.ndarray:
    """erfc-filtered short-range force magnitude for unit masses."""
    return G * (
        erfc(r / (2 * rs)) / r**2
        + np.exp(-(r**2) / (4 * rs**2)) / (rs * np.sqrt(np.pi) * r)
    )


class _NumpyRates(FusedRatesKernel):
    def __init__(self, tables: ChemRateTables) -> None:
        super().__init__(tables)
        self._any_reverse = bool(tables.has_reverse.any())

    def wdot(self, kf: np.ndarray, kr: np.ndarray,
             C: np.ndarray) -> np.ndarray:
        t = self.tables
        # dummy-species column: padded gather indices hit a constant 1.0
        C1 = np.concatenate(
            [C, np.ones(C.shape[:-1] + (1,), dtype=C.dtype)], axis=-1)
        q = kf * C1[..., t.fwd_idx[:, 0]]
        for col in range(1, t.fwd_idx.shape[1]):
            q = q * C1[..., t.fwd_idx[:, col]]
        if self._any_reverse:
            qr = kr * C1[..., t.rev_idx[:, 0]]
            for col in range(1, t.rev_idx.shape[1]):
                qr = qr * C1[..., t.rev_idx[:, col]]
            q = q - qr
        return q @ t.net


class NumpyBackend(ArrayBackend):
    """Reference implementation on plain numpy (+ scipy.special)."""

    name = "numpy"

    # -- batched dense linalg ---------------------------------------------

    def lu_factor(self, mats: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        from repro.linalg.batched import batched_lu_factor

        return batched_lu_factor(mats)

    def lu_solve(self, lu: np.ndarray, piv: np.ndarray,
                 rhs: np.ndarray) -> np.ndarray:
        from repro.linalg.batched import batched_lu_solve_factored

        return batched_lu_solve_factored(lu, piv, rhs)

    def inv(self, mats: np.ndarray) -> np.ndarray:
        return np.linalg.inv(mats)

    def inv_apply(self, inv: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        return np.matmul(inv, rhs[..., None])[..., 0]

    # -- fused chemistry rates --------------------------------------------

    def rates_kernel(self, tables: ChemRateTables) -> FusedRatesKernel:
        return _NumpyRates(tables)

    # -- bit-plane popcount tallies ---------------------------------------

    def popcount_tallies_2way(self, words: np.ndarray) -> np.ndarray:
        n, S, W = words.shape
        flat = words.reshape(n * S, W)
        counts = np.zeros((n * S, n * S), dtype=np.int64)
        block = max(1, _SWEEP_BUDGET // max(1, (n * S) ** 2))
        for w0 in range(0, W, block):
            blk = flat[:, w0:w0 + block]
            counts += popcount_words(blk[:, None, :] & blk[None, :, :]).sum(
                axis=-1, dtype=np.int64)
        return np.ascontiguousarray(
            counts.reshape(n, S, n, S).transpose(1, 3, 0, 2))

    def popcount_tallies_3way(self, words: np.ndarray) -> np.ndarray:
        n, S, _ = words.shape
        counts = np.empty((S,) * 3 + (n,) * 3, dtype=np.int64)
        for s in range(S):
            for t in range(S):
                pair = words[:, s, None, :] & words[None, :, t, :]
                for u in range(S):
                    tri = pair[:, :, None, :] & words[None, None, :, u, :]
                    counts[s, t, u] = popcount_words(tri).sum(
                        axis=-1, dtype=np.int64)
        return counts

    # -- pairwise short-range forces --------------------------------------

    def pairwise_forces(self, x: np.ndarray, masses: np.ndarray, *,
                        G: float, rs: float | None = None,
                        cutoff: float | None = None,
                        box_size: float | None = None) -> np.ndarray:
        n = len(x)
        forces = np.zeros_like(x)
        if n < 2:
            return forces
        ii, jj = triu_pairs(n)
        d = x[jj] - x[ii]
        if box_size is not None:
            d -= box_size * np.round(d / box_size)
        r = np.sqrt((d * d).sum(axis=1))
        keep = r > 0.0
        if cutoff is not None:
            keep &= r < cutoff
        ii, jj, d, r = ii[keep], jj[keep], d[keep], r[keep]
        if rs is not None:
            fmag = masses[ii] * masses[jj] * short_range_pair_magnitude(
                r, rs, G=G)
            fvec = (fmag / r)[:, None] * d
        else:
            fvec = (G * masses[ii] * masses[jj] / r**3)[:, None] * d
        np.add.at(forces, ii, fvec)
        np.add.at(forces, jj, -fvec)
        return forces
