"""Registration stubs for GPU array libraries (cupy, JAX).

The paper's portability chapters end with the same kernels running on
NVIDIA, AMD and Intel devices from one source; the registry mirrors that
trajectory by reserving names for the device-array engines.  Each stub
registers the name, reports whether the library is importable, and
refuses construction with a pointed message — the :class:`ArrayBackend`
surface in :mod:`repro.backend.base` is the porting contract an
implementation must fill in (and the parity suite in
``tests/test_backend.py`` is its acceptance test).
"""

from __future__ import annotations

import importlib.util

from repro.backend.base import BackendUnavailable


def library_present(module: str) -> bool:
    """True when *module* is importable (no import side effects)."""
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic paths
        return False


def make_stub_factory(name: str, module: str):
    """A factory that always raises with porting guidance."""

    def factory():
        present = library_present(module)
        hint = (
            f"{module} is importable but the {name!r} backend is a "
            f"registration stub"
            if present else
            f"{module} is not installed"
        )
        raise BackendUnavailable(
            f"backend {name!r} is not implemented yet ({hint}); implement "
            f"repro.backend.base.ArrayBackend for it and register the "
            f"factory — tests/test_backend.py is the acceptance suite"
        )

    return factory
