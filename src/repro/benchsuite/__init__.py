"""SHOC-like benchmark suite for the Figure 1 HIP-vs-CUDA evaluation."""

from repro.benchsuite.shoc import (
    SHOC_SUITE,
    ShocBenchmark,
    ShocResult,
    run_benchmark_cuda,
    run_benchmark_hip,
)

__all__ = [
    "SHOC_SUITE",
    "ShocBenchmark",
    "ShocResult",
    "run_benchmark_cuda",
    "run_benchmark_hip",
]
