"""The SHOC-like benchmark suite used for the Figure 1 evaluation (§2.1).

Thirteen benchmark programs covering the SHOC level-0/level-1 categories:
bus speed, peak FLOPS, device memory, FFT, GEMM, MD, reduction, scan,
sort, SpMV, stencil, triad, and S3D (chemistry).  Each benchmark is
*CUDA source text*: a small Python program written against the
:class:`~repro.progmodel.cuda.CudaRuntime` API spelling.  The Figure 1
workflow runs each program natively on CUDA, then pushes the source
through :func:`~repro.progmodel.hipify.hipify` and runs the translated
text on the HIP runtime — the same translate-build-compare loop OLCF ran
on Summit.

Each program reports two timings, with and without host-device transfer,
matching the two Figure 1 series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GPUSpec, V100
from repro.progmodel.cuda import CudaRuntime
from repro.progmodel.hip import HipRuntime
from repro.progmodel.hipify import hipify_strict

#: Template for one SHOC program.  The body uses only CUDA spellings so
#: hipify can translate it mechanically.  Each program defines `bytes_io`
#: (transfers) and launches kernels built from the parameters below.
_PROGRAM_TEMPLATE = '''
def run(rt, make_kernel):
    """SHOC {name}: {description}"""
    h_in = rt.cudaMalloc({bytes_in})
    h_out = rt.cudaMalloc({bytes_out})
    start = rt.cudaEventCreate()
    stop = rt.cudaEventCreate()

    rt.cudaEventRecord(start)
    rt.cudaMemcpyHostToDevice(h_in)
    k_start = rt.cudaEventCreate()
    rt.cudaEventRecord(k_start)
    for _ in range({launches}):
        rt.cudaLaunchKernel(make_kernel())
    rt.cudaDeviceSynchronize()
    k_stop = rt.cudaEventCreate()
    rt.cudaEventRecord(k_stop)
    rt.cudaMemcpyDeviceToHost(h_out)
    rt.cudaEventRecord(stop)
    rt.cudaEventSynchronize(stop)

    total_ms = rt.cudaEventElapsedTime(start, stop)
    kernel_ms = rt.cudaEventElapsedTime(k_start, k_stop)
    rt.cudaFree(h_in)
    rt.cudaFree(h_out)
    return total_ms, kernel_ms
'''


@dataclass(frozen=True)
class ShocBenchmark:
    """One SHOC program: its CUDA source plus kernel resource parameters."""

    name: str
    description: str
    flops: float
    bytes_read: float
    bytes_written: float
    bytes_in: int
    bytes_out: int
    launches: int = 1
    registers: int = 48
    fp32: bool = False

    @property
    def cuda_source(self) -> str:
        return _PROGRAM_TEMPLATE.format(
            name=self.name,
            description=self.description,
            bytes_in=self.bytes_in,
            bytes_out=self.bytes_out,
            launches=self.launches,
        )

    def make_kernel(self):
        from repro.gpu.kernel import KernelSpec
        from repro.hardware.gpu import Precision

        return KernelSpec(
            name=self.name,
            flops=self.flops,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            threads=max(int(self.bytes_read / 8), 64),
            precision=Precision.FP32 if self.fp32 else Precision.FP64,
            registers_per_thread=self.registers,
            workgroup_size=256,
        )


_MB = 1 << 20
_PROBLEM = 64 * _MB  # SHOC default problem class scale

SHOC_SUITE: tuple[ShocBenchmark, ...] = (
    ShocBenchmark("BusSpeedDownload", "host-to-device bandwidth",
                  flops=0.0, bytes_read=8 * _MB, bytes_written=0.0,
                  bytes_in=256 * _MB, bytes_out=8),
    ShocBenchmark("BusSpeedReadback", "device-to-host bandwidth",
                  flops=0.0, bytes_read=8 * _MB, bytes_written=0.0,
                  bytes_in=8, bytes_out=256 * _MB),
    ShocBenchmark("MaxFlops", "peak single-precision arithmetic",
                  flops=4e11, bytes_read=1 * _MB, bytes_written=1 * _MB,
                  bytes_in=4 * _MB, bytes_out=4 * _MB, fp32=True, registers=64),
    ShocBenchmark("DeviceMemory", "streaming device-memory bandwidth",
                  flops=1e7, bytes_read=2 * _PROBLEM, bytes_written=_PROBLEM,
                  bytes_in=16 * _MB, bytes_out=16 * _MB),
    ShocBenchmark("FFT", "batched 1-D FFTs",
                  flops=5 * 512 * 9 * 65536, bytes_read=4 * _PROBLEM,
                  bytes_written=4 * _PROBLEM, bytes_in=_PROBLEM, bytes_out=_PROBLEM,
                  launches=3, registers=64),
    ShocBenchmark("GEMM", "dense matrix multiply",
                  flops=2 * 2048.0**3, bytes_read=3 * 2048 * 2048 * 8.0,
                  bytes_written=2048 * 2048 * 8.0,
                  bytes_in=2 * 32 * _MB, bytes_out=32 * _MB, registers=128),
    ShocBenchmark("MD", "Lennard-Jones force kernel",
                  flops=8e9, bytes_read=_PROBLEM, bytes_written=_PROBLEM // 4,
                  bytes_in=24 * _MB, bytes_out=24 * _MB, registers=96),
    ShocBenchmark("Reduction", "sum reduction",
                  flops=8e6, bytes_read=_PROBLEM, bytes_written=1024.0,
                  bytes_in=64 * _MB, bytes_out=8, launches=2),
    ShocBenchmark("Scan", "parallel prefix sum",
                  flops=2e7, bytes_read=2 * _PROBLEM, bytes_written=_PROBLEM,
                  bytes_in=64 * _MB, bytes_out=64 * _MB, launches=3),
    ShocBenchmark("Sort", "radix sort",
                  flops=4e7, bytes_read=4 * _PROBLEM, bytes_written=4 * _PROBLEM,
                  bytes_in=32 * _MB, bytes_out=32 * _MB, launches=8),
    ShocBenchmark("Spmv", "sparse matrix-vector multiply",
                  flops=2e8, bytes_read=12 * 8 * 1 << 20,
                  bytes_written=8 << 20, bytes_in=96 * _MB, bytes_out=8 * _MB),
    ShocBenchmark("Stencil2D", "9-point 2-D stencil",
                  flops=9 * 4096.0**2 * 2, bytes_read=4096.0**2 * 8 * 2,
                  bytes_written=4096.0**2 * 8,
                  bytes_in=128 * _MB, bytes_out=128 * _MB, launches=4),
    ShocBenchmark("S3D", "chemical rates kernel (S3D)",
                  flops=6e10, bytes_read=_PROBLEM // 2, bytes_written=_PROBLEM // 2,
                  bytes_in=16 * _MB, bytes_out=16 * _MB, registers=180),
)


@dataclass(frozen=True)
class ShocResult:
    """Timings of one benchmark on one runtime."""

    name: str
    backend: str
    total_ms: float
    kernel_ms: float

    @property
    def transfer_ms(self) -> float:
        return self.total_ms - self.kernel_ms


def run_benchmark_cuda(bench: ShocBenchmark, *, device: GPUSpec = V100) -> ShocResult:
    """Compile and run the CUDA source on the native CUDA runtime."""
    namespace: dict = {}
    exec(compile(bench.cuda_source, f"<shoc:{bench.name}>", "exec"), namespace)
    rt = CudaRuntime(device)
    total_ms, kernel_ms = namespace["run"](rt, bench.make_kernel)
    return ShocResult(name=bench.name, backend="cuda", total_ms=total_ms,
                      kernel_ms=kernel_ms)


def run_benchmark_hip(bench: ShocBenchmark, *, device: GPUSpec = V100) -> ShocResult:
    """hipify the CUDA source, then run it on the HIP runtime.

    On an NVIDIA device this exercises exactly the Figure 1 pipeline:
    translated source, HIP shim over the same engine.
    """
    hip_source = hipify_strict(bench.cuda_source)
    namespace: dict = {}
    exec(compile(hip_source, f"<shoc-hip:{bench.name}>", "exec"), namespace)
    rt = HipRuntime(device)
    total_ms, kernel_ms = namespace["run"](rt, bench.make_kernel)
    return ShocResult(name=bench.name, backend="hip", total_ms=total_ms,
                      kernel_ms=kernel_ms)
