"""NuCCOR substrate: block tensors, pairing Hamiltonian, plugin architecture."""

from repro.cc.pairing import PairingModel, power_iteration_ground_state
from repro.cc.plugins import (
    ComputePlugin,
    CublasPlugin,
    HostPlugin,
    PluginFactory,
    RocblasPlugin,
)
from repro.cc.tensor import BlockMatrix, ChannelBasis, random_channel_basis

__all__ = [
    "BlockMatrix",
    "ChannelBasis",
    "ComputePlugin",
    "CublasPlugin",
    "HostPlugin",
    "PairingModel",
    "PluginFactory",
    "RocblasPlugin",
    "power_iteration_ground_state",
    "random_channel_basis",
]
