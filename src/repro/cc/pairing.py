"""The pairing-model nuclear Hamiltonian: exact and iterative solvers.

NuCCOR "solves the time-independent Schrödinger equation for many
interacting protons and neutrons".  The standard pedagogical stand-in
with the same structure is the pairing (picket-fence) Hamiltonian:

    H = Σ_p δ·p (a†_{p↑}a_{p↑} + a†_{p↓}a_{p↓}) − g Σ_{pq} P†_p P_q

restricted to seniority-zero (fully paired) configurations.  We build the
exact Hamiltonian over pair configurations and diagonalize (the
verification anchor), plus a power-iteration eigensolver whose matvec is
the GEMM-shaped workload routed through the NuCCOR plugin layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np


@dataclass(frozen=True)
class PairingModel:
    """P levels, N pairs, level spacing δ, pairing strength g."""

    n_levels: int
    n_pairs: int
    delta: float = 1.0
    g: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.n_pairs <= self.n_levels:
            raise ValueError("need 0 < n_pairs <= n_levels")

    def configurations(self) -> list[tuple[int, ...]]:
        """All seniority-zero configurations (occupied-level tuples)."""
        return list(combinations(range(self.n_levels), self.n_pairs))

    def hamiltonian(self) -> np.ndarray:
        """Dense H over the pair-configuration basis.

        Diagonal: single-particle energy 2δΣp − g·n_pairs (the P†_p P_p
        term).  Off-diagonal: −g between configurations differing by one
        pair hop.
        """
        configs = self.configurations()
        index = {c: i for i, c in enumerate(configs)}
        n = len(configs)
        h = np.zeros((n, n))
        for c, i in index.items():
            h[i, i] = 2.0 * self.delta * sum(c) - self.g * self.n_pairs
            occupied = set(c)
            for p in c:
                for q in range(self.n_levels):
                    if q in occupied:
                        continue
                    dest = tuple(sorted(occupied - {p} | {q}))
                    h[i, index[dest]] -= self.g
        return h

    def exact_ground_state(self) -> float:
        """Exact (FCI) ground-state energy by dense diagonalization."""
        return float(np.linalg.eigvalsh(self.hamiltonian())[0])

    def reference_energy(self) -> float:
        """Energy of the uncorrelated reference (lowest levels filled)."""
        return float(
            2.0 * self.delta * sum(range(self.n_pairs)) - self.g * self.n_pairs
        )

    def correlation_energy(self) -> float:
        return self.exact_ground_state() - self.reference_energy()


def power_iteration_ground_state(h: np.ndarray, *, tol: float = 1e-10,
                                 maxiter: int = 10_000,
                                 matvec=None) -> tuple[float, np.ndarray, int]:
    """Ground state by shifted power iteration.

    ``matvec`` lets the caller route the H·v product through a compute
    plugin (the NuCCOR architecture); defaults to numpy.  Returns
    (energy, vector, iterations).
    """
    if matvec is None:
        matvec = lambda v: h @ v  # noqa: E731
    n = h.shape[0]
    # shift so the ground state dominates: H' = σI − H with σ ≥ max eigenvalue
    sigma = float(np.abs(h).sum(axis=1).max())  # Gershgorin bound
    v = np.ones(n) / np.sqrt(n)
    e_old = np.inf
    for it in range(1, maxiter + 1):
        w = sigma * v - matvec(v)
        w /= np.linalg.norm(w)
        e = float(w @ matvec(w))
        if abs(e - e_old) < tol:
            return e, w, it
        e_old = e
        v = w
    return e_old, v, maxiter
