"""NuCCOR's plugin/factory hardware-abstraction architecture (§3.7).

"Portability is always handled first by abstraction ... adding a new
hardware architecture or support for a new library is just a matter of
creating the appropriate plugin and adding it to the appropriate factory
classes.  This way CUDA Fortran, hipfort, OpenMP, or any other tool
becomes an optional dependency for experimentation instead of a
requirement."

The domain code below (``matvec``, ``gemm``) is written against the
:class:`ComputePlugin` interface only.  Three plugins ship: a host
reference, a cuBLAS-adapter (CUDA runtime), and a rocBLAS-adapter (HIP
runtime) — the last being "the necessary adapters to libraries like
rocBLAS" the team created for Frontier.  All produce identical numbers;
only the priced device differs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.hardware.gpu import MI250X_GCD, V100, GPUSpec
from repro.linalg.blas import gemm_kernel_spec
from repro.progmodel.cuda import CudaRuntime
from repro.progmodel.hip import HipRuntime


class ComputePlugin(ABC):
    """The abstract interface all NuCCOR backends implement."""

    name: str = "abstract"

    @abstractmethod
    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix multiply."""

    @abstractmethod
    def matvec(self, a: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Matrix-vector product."""

    @property
    @abstractmethod
    def elapsed(self) -> float:
        """Simulated device seconds consumed so far."""


class HostPlugin(ComputePlugin):
    """The minimal gfortran-compatible build: plain host execution."""

    name = "host"

    def __init__(self) -> None:
        self._elapsed = 0.0

    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b

    def matvec(self, a: np.ndarray, v: np.ndarray) -> np.ndarray:
        return a @ v

    @property
    def elapsed(self) -> float:
        return self._elapsed


class _GpuLibraryPlugin(ComputePlugin):
    """Shared adapter logic for the vendor-BLAS plugins."""

    def __init__(self, runtime, launch) -> None:
        self._runtime = runtime
        self._launch = launch

    def _charge(self, m: int, n: int, k: int) -> None:
        self._launch(gemm_kernel_spec(m, n, k, efficiency=0.8))

    def gemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        m, k = a.shape
        n = b.shape[1] if b.ndim > 1 else 1
        self._charge(m, n, k)
        return a @ b

    def matvec(self, a: np.ndarray, v: np.ndarray) -> np.ndarray:
        self._charge(a.shape[0], 1, a.shape[1])
        return a @ v

    @property
    def elapsed(self) -> float:
        self._runtime.device_synchronize()
        return self._runtime.elapsed


class CublasPlugin(_GpuLibraryPlugin):
    """CUDA-era backend (Summit)."""

    name = "cublas"

    def __init__(self, spec: GPUSpec = V100) -> None:
        rt = CudaRuntime(spec)
        super().__init__(rt, lambda k: rt.cudaLaunchKernel(k))


class RocblasPlugin(_GpuLibraryPlugin):
    """The Frontier adapter created during the CAAR port."""

    name = "rocblas"

    def __init__(self, spec: GPUSpec = MI250X_GCD) -> None:
        rt = HipRuntime(spec)
        super().__init__(rt, lambda k: rt.hipLaunchKernel(k))


@dataclass
class PluginFactory:
    """The factory class domain code asks for a backend by name."""

    _registry: dict[str, type[ComputePlugin]] | None = None

    def __post_init__(self) -> None:
        if self._registry is None:
            self._registry = {}
        for cls in (HostPlugin, CublasPlugin, RocblasPlugin):
            self._registry.setdefault(cls.name, cls)

    def register(self, name: str, cls: type[ComputePlugin]) -> None:
        """Adding a new architecture = registering one plugin."""
        if not issubclass(cls, ComputePlugin):
            raise TypeError(f"{cls} does not implement ComputePlugin")
        assert self._registry is not None
        self._registry[name] = cls

    def create(self, name: str, **kwargs) -> ComputePlugin:
        assert self._registry is not None
        if name not in self._registry:
            raise KeyError(
                f"no plugin {name!r}; available: {sorted(self._registry)}"
            )
        return self._registry[name](**kwargs)

    @property
    def available(self) -> list[str]:
        assert self._registry is not None
        return sorted(self._registry)
