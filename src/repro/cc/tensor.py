"""Blocked, symmetry-aware tensors (NuCCOR's data structure, §3.7).

Coupled-cluster tensors for atomic nuclei are block-sparse: a matrix
element is nonzero only when the quantum numbers (here, an integer label
per index) satisfy a conservation law.  NuCCOR stores only the allowed
blocks and contracts block-by-block with GEMMs.  :class:`BlockMatrix`
implements the two-index case with channel conservation — enough to carry
the contraction workload and verify block-sparse contraction against the
dense reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ChannelBasis:
    """Index space partitioned into labelled channels.

    ``labels[i]`` is the conserved quantum number of basis state *i*;
    states of one channel are contiguous (sorted at construction).
    """

    labels: tuple[int, ...]

    def __post_init__(self) -> None:
        if list(self.labels) != sorted(self.labels):
            raise ValueError("channel labels must be sorted (states grouped)")

    @property
    def size(self) -> int:
        return len(self.labels)

    def channels(self) -> dict[int, slice]:
        out: dict[int, slice] = {}
        start = 0
        labels = self.labels
        for i in range(1, len(labels) + 1):
            if i == len(labels) or labels[i] != labels[start]:
                out[labels[start]] = slice(start, i)
                start = i
        return out


class BlockMatrix:
    """A channel-conserving block-sparse matrix over two ChannelBases."""

    def __init__(self, row_basis: ChannelBasis, col_basis: ChannelBasis) -> None:
        self.row_basis = row_basis
        self.col_basis = col_basis
        self.blocks: dict[int, np.ndarray] = {}
        row_ch = row_basis.channels()
        col_ch = col_basis.channels()
        self._row_slices = row_ch
        self._col_slices = col_ch
        for ch in set(row_ch) & set(col_ch):
            r, c = row_ch[ch], col_ch[ch]
            self.blocks[ch] = np.zeros((r.stop - r.start, c.stop - c.start))

    def set_random(self, seed: int = 0, scale: float = 1.0) -> "BlockMatrix":
        rng = np.random.default_rng(seed)
        for ch, blk in self.blocks.items():
            blk[:] = scale * rng.normal(size=blk.shape)
        return self

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.row_basis.size, self.col_basis.size))
        for ch, blk in self.blocks.items():
            dense[self._row_slices[ch], self._col_slices[ch]] = blk
        return dense

    @classmethod
    def from_dense(cls, dense: np.ndarray, row_basis: ChannelBasis,
                   col_basis: ChannelBasis, *, check: bool = True) -> "BlockMatrix":
        out = cls(row_basis, col_basis)
        for ch, blk in out.blocks.items():
            blk[:] = dense[out._row_slices[ch], out._col_slices[ch]]
        if check and not np.allclose(out.to_dense(), dense):
            raise ValueError("dense matrix violates channel conservation")
        return out

    def contract(self, other: "BlockMatrix") -> "BlockMatrix":
        """Block-by-block GEMM: channels contract independently."""
        if self.col_basis.labels != other.row_basis.labels:
            raise ValueError("contraction bases do not match")
        out = BlockMatrix(self.row_basis, other.col_basis)
        for ch in out.blocks:
            if ch in self.blocks and ch in other.blocks:
                out.blocks[ch] = self.blocks[ch] @ other.blocks[ch]
        return out

    def norm(self) -> float:
        return float(np.sqrt(sum(np.sum(b * b) for b in self.blocks.values())))

    @property
    def stored_elements(self) -> int:
        return sum(b.size for b in self.blocks.values())

    @property
    def dense_elements(self) -> int:
        return self.row_basis.size * self.col_basis.size

    @property
    def sparsity_savings(self) -> float:
        """Dense elements per stored element (the memory win of blocking)."""
        return self.dense_elements / max(self.stored_elements, 1)


def random_channel_basis(n_channels: int, states_per_channel: int) -> ChannelBasis:
    labels: list[int] = []
    for ch in range(n_channels):
        labels.extend([ch] * states_per_channel)
    return ChannelBasis(labels=tuple(labels))
