"""Chemistry substrates: RI-MP2 + fragmentation (GAMESS), mechanisms +
codegen + kinetics (PelePhysics)."""

from repro.chem.codegen import (
    GeneratedKernel,
    compile_rates,
    estimate_registers,
    generate_rates_source,
    generated_lines_for_jacobian,
)
from repro.chem.fragments import (
    Fragment,
    MbeResult,
    distribute_fragments,
    fragment_scaling_efficiency,
    mbe_energy,
    pairwise_energy,
    supersystem_energy,
    water_cluster,
)
from repro.chem.kinetics import (
    analytic_jacobian,
    chemistry_rhs,
    jacobian_flop_count,
    numerical_jacobian,
    production_rates,
    rates_flop_count,
)
from repro.chem.mechanism import (
    Mechanism,
    Reaction,
    drm19_like_mechanism,
    h2_o2_mechanism,
)
from repro.chem.rimp2 import (
    FragmentOrbitals,
    make_fragment,
    rimp2_energy,
    rimp2_energy_reference,
    rimp2_flops,
    rimp2_kernel_spec,
)

__all__ = [
    "Fragment",
    "FragmentOrbitals",
    "GeneratedKernel",
    "MbeResult",
    "Mechanism",
    "Reaction",
    "analytic_jacobian",
    "chemistry_rhs",
    "compile_rates",
    "distribute_fragments",
    "drm19_like_mechanism",
    "estimate_registers",
    "fragment_scaling_efficiency",
    "generate_rates_source",
    "generated_lines_for_jacobian",
    "h2_o2_mechanism",
    "jacobian_flop_count",
    "make_fragment",
    "mbe_energy",
    "numerical_jacobian",
    "pairwise_energy",
    "production_rates",
    "rates_flop_count",
    "rimp2_energy",
    "rimp2_energy_reference",
    "rimp2_flops",
    "rimp2_kernel_spec",
    "supersystem_energy",
    "water_cluster",
]
