"""PelePhysics-style code generation for thermo-chemistry routines (§3.8).

"Both applications share a library called PelePhysics which contains a
code generator to emit code for thermo-chemistry routines ... the unrolled
chemistry computation routines can contain upwards of 200k lines of code
in a single file, with a single GPU kernel (such as the calculation of a
chemical Jacobian) spanning 140k lines".

:func:`generate_rates_source` emits a fully unrolled Python function for a
mechanism's production rates (every reaction's Arrhenius expression and
stoichiometric update written out literally, no loops); the generated code
is ``exec``-compiled and must match the interpreted evaluator bit-for-bit.
Generated line counts grow linearly with mechanism size, reproducing the
kernel-size pathology the paper describes.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.chem.mechanism import R_UNIV, Mechanism


@dataclass(frozen=True)
class GeneratedKernel:
    """A compiled generated routine plus its source metrics."""

    source: str
    fn: Callable
    n_lines: int
    estimated_registers: int


def _emit_rate(buf: io.StringIO, tag: str, A: float, b: float, Ea: float) -> None:
    buf.write(f"    k{tag} = {A!r} * T**{b!r} * exp({-Ea!r} / ({R_UNIV!r} * T))\n")


def generate_rates_source(mech: Mechanism, *, fn_name: str = "wdot_generated") -> str:
    """Emit unrolled Python source computing ω̇ for *mech*."""
    buf = io.StringIO()
    buf.write(f"def {fn_name}(T, C, out):\n")
    buf.write('    """Generated production rates — do not edit."""\n')
    buf.write("    from math import exp\n")
    for i in range(mech.n_species):
        buf.write(f"    out[{i}] = 0.0\n")
    for r, rx in enumerate(mech.reactions):
        buf.write(f"    # reaction {r}\n")
        _emit_rate(buf, f"f{r}", rx.A, rx.b, rx.Ea)
        terms = " * ".join(
            f"C[{s}]" if nu == 1 else f"C[{s}]**{nu}" for s, nu in rx.reactants.items()
        )
        buf.write(f"    qf{r} = kf{r} * {terms}\n")
        if rx.reverse_A:
            _emit_rate(buf, f"r{r}", rx.reverse_A, rx.reverse_b, rx.reverse_Ea)
            terms_r = " * ".join(
                f"C[{s}]" if nu == 1 else f"C[{s}]**{nu}" for s, nu in rx.products.items()
            )
            buf.write(f"    qr{r} = kr{r} * {terms_r}\n")
            buf.write(f"    q{r} = qf{r} - qr{r}\n")
        else:
            buf.write(f"    q{r} = qf{r}\n")
        for s, nu in rx.reactants.items():
            buf.write(f"    out[{s}] -= {float(nu)!r} * q{r}\n")
        for s, nu in rx.products.items():
            buf.write(f"    out[{s}] += {float(nu)!r} * q{r}\n")
    buf.write("    return out\n")
    return buf.getvalue()


def _mechanism_fingerprint(mech: Mechanism) -> tuple:
    """A hashable identity for memoizing generated-code compilation.

    Mechanism name alone is not enough (e.g. drm19-like with different
    seeds); fold in the full reaction table.
    """
    return (
        mech.name,
        mech.species,
        tuple(
            (
                tuple(sorted(rx.reactants.items())),
                tuple(sorted(rx.products.items())),
                rx.A, rx.b, rx.Ea, rx.reverse_A, rx.reverse_b, rx.reverse_Ea,
            )
            for rx in mech.reactions
        ),
    )


#: Compiled-kernel caches: generating and exec-compiling a 10^4-line
#: unrolled routine is expensive; apps and benches construct the same
#: mechanism repeatedly, so the compile step is memoized per mechanism.
_RATES_CACHE: dict[tuple, "GeneratedKernel"] = {}
_BATCHED_CACHE: dict[tuple, "BatchedChemKernels"] = {}


def compile_rates(mech: Mechanism) -> GeneratedKernel:
    """Generate, compile and wrap the unrolled rates routine (memoized)."""
    key = _mechanism_fingerprint(mech)
    cached = _RATES_CACHE.get(key)
    if cached is not None:
        return cached
    src = generate_rates_source(mech)
    namespace: dict = {}
    exec(compile(src, f"<generated:{mech.name}>", "exec"), namespace)
    raw = namespace["wdot_generated"]

    def fn(T: float, conc: np.ndarray) -> np.ndarray:
        out = np.zeros(mech.n_species)
        raw(T, conc, out)
        return out

    n_lines = src.count("\n")
    kernel = GeneratedKernel(
        source=src,
        fn=fn,
        n_lines=n_lines,
        estimated_registers=estimate_registers(mech),
    )
    _RATES_CACHE[key] = kernel
    return kernel


# -- batched generated kernels (the MAGMA/CVODE chemistry path) ---------------


def _emit_rate_batched(buf: io.StringIO, tag: str, A: float, b: float,
                       Ea: float) -> None:
    buf.write(f"    k{tag} = {A!r} * T**{b!r} * exp({-Ea!r} / ({R_UNIV!r} * T))\n")


def _conc_term(s: int, nu: int) -> str:
    return f"C[..., {s}]" if nu == 1 else f"C[..., {s}]**{nu}"


def generate_rates_source_batched(
    mech: Mechanism, *, fn_name: str = "wdot_batched"
) -> str:
    """Emit unrolled *vectorized* source computing ω̇ for a batch of cells.

    ``C`` has shape (..., batch, n_species), ``T`` is scalar or (batch,);
    every reaction's expression is written out literally but operates on
    whole numpy batch axes — one sweep integrates every cell's chemistry,
    which is exactly how the paper's batched CVODE+MAGMA path stops paying
    per-cell kernel launches.
    """
    buf = io.StringIO()
    buf.write(f"def {fn_name}(T, C, out):\n")
    buf.write('    """Generated batched production rates — do not edit."""\n')
    buf.write("    exp = np.exp\n")
    buf.write("    out[...] = 0.0\n")
    for r, rx in enumerate(mech.reactions):
        buf.write(f"    # reaction {r}\n")
        _emit_rate_batched(buf, f"f{r}", rx.A, rx.b, rx.Ea)
        terms = " * ".join(_conc_term(s, nu) for s, nu in rx.reactants.items())
        buf.write(f"    qf{r} = kf{r} * {terms}\n")
        if rx.reverse_A:
            _emit_rate_batched(buf, f"r{r}", rx.reverse_A, rx.reverse_b,
                               rx.reverse_Ea)
            terms_r = " * ".join(_conc_term(s, nu) for s, nu in rx.products.items())
            buf.write(f"    qr{r} = kr{r} * {terms_r}\n")
            buf.write(f"    q{r} = qf{r} - qr{r}\n")
        else:
            buf.write(f"    q{r} = qf{r}\n")
        for s, nu in rx.reactants.items():
            buf.write(f"    out[..., {s}] -= {float(nu)!r} * q{r}\n")
        for s, nu in rx.products.items():
            buf.write(f"    out[..., {s}] += {float(nu)!r} * q{r}\n")
    buf.write("    return out\n")
    return buf.getvalue()


def generate_jacobian_source_batched(
    mech: Mechanism, *, fn_name: str = "jac_batched"
) -> str:
    """Emit the unrolled analytic batched Jacobian ∂ω̇/∂C.

    ``C``: (batch, n_species) → ``out``: (batch, n, n).  This is the
    kernel whose unrolled form spans ~140k lines in PeleC (§3.8); each
    reaction contributes one product-rule derivative per participating
    species, scattered into the Jacobian columns.
    """
    buf = io.StringIO()
    buf.write(f"def {fn_name}(T, C, out):\n")
    buf.write('    """Generated batched chemical Jacobian — do not edit."""\n')
    buf.write("    exp = np.exp\n")
    buf.write("    out[...] = 0.0\n")
    for r, rx in enumerate(mech.reactions):
        buf.write(f"    # reaction {r}: forward derivatives\n")
        _emit_rate_batched(buf, f"f{r}", rx.A, rx.b, rx.Ea)
        for m, nu_m in rx.reactants.items():
            factors = [f"kf{r}"]
            if nu_m != 1:
                factors.append(f"{float(nu_m)!r} * C[:, {m}]**{nu_m - 1}")
            factors += [
                _conc_term(s, nu).replace("...", ":")
                for s, nu in rx.reactants.items() if s != m
            ]
            buf.write(f"    d{r}_{m} = " + " * ".join(factors) + "\n")
            for s, nu in rx.reactants.items():
                buf.write(f"    out[:, {s}, {m}] -= {float(nu)!r} * d{r}_{m}\n")
            for s, nu in rx.products.items():
                buf.write(f"    out[:, {s}, {m}] += {float(nu)!r} * d{r}_{m}\n")
        if rx.reverse_A:
            buf.write(f"    # reaction {r}: reverse derivatives\n")
            _emit_rate_batched(buf, f"r{r}", rx.reverse_A, rx.reverse_b,
                               rx.reverse_Ea)
            for m, nu_m in rx.products.items():
                factors = [f"kr{r}"]
                if nu_m != 1:
                    factors.append(f"{float(nu_m)!r} * C[:, {m}]**{nu_m - 1}")
                factors += [
                    _conc_term(s, nu).replace("...", ":")
                    for s, nu in rx.products.items() if s != m
                ]
                buf.write(f"    e{r}_{m} = " + " * ".join(factors) + "\n")
                for s, nu in rx.reactants.items():
                    buf.write(f"    out[:, {s}, {m}] += {float(nu)!r} * e{r}_{m}\n")
                for s, nu in rx.products.items():
                    buf.write(f"    out[:, {s}, {m}] -= {float(nu)!r} * e{r}_{m}\n")
    buf.write("    return out\n")
    return buf.getvalue()


@dataclass(frozen=True)
class BatchedChemKernels:
    """Compiled batched rates + analytic Jacobian for one mechanism."""

    rates_source: str
    jacobian_source: str
    rates: Callable  # (T, C(..., B, n)) -> (..., B, n)
    jacobian: Callable  # (T, C(B, n)) -> (B, n, n)
    n_lines: int
    estimated_registers: int


def compile_batched_kernels(mech: Mechanism) -> BatchedChemKernels:
    """Generate + compile the batched rates/Jacobian pair (memoized)."""
    key = _mechanism_fingerprint(mech)
    cached = _BATCHED_CACHE.get(key)
    if cached is not None:
        return cached
    rates_src = generate_rates_source_batched(mech)
    jac_src = generate_jacobian_source_batched(mech)
    namespace: dict = {"np": np}
    exec(compile(rates_src, f"<generated-batched:{mech.name}>", "exec"), namespace)
    exec(compile(jac_src, f"<generated-batched-jac:{mech.name}>", "exec"), namespace)
    raw_rates = namespace["wdot_batched"]
    raw_jac = namespace["jac_batched"]
    n = mech.n_species

    def rates(T, conc: np.ndarray) -> np.ndarray:
        conc = np.asarray(conc, dtype=float)
        out = np.empty(
            np.broadcast_shapes(conc.shape[:-1], np.shape(T)) + (n,)
        )
        raw_rates(T, conc, out)
        return out

    def jacobian(T, conc: np.ndarray) -> np.ndarray:
        conc = np.asarray(conc, dtype=float)
        out = np.empty((conc.shape[0], n, n))
        raw_jac(T, conc, out)
        return out

    kernels = BatchedChemKernels(
        rates_source=rates_src,
        jacobian_source=jac_src,
        rates=rates,
        jacobian=jacobian,
        n_lines=rates_src.count("\n") + jac_src.count("\n"),
        estimated_registers=estimate_registers(mech),
    )
    _BATCHED_CACHE[key] = kernels
    return kernels


def estimate_registers(mech: Mechanism) -> int:
    """Register-pressure estimate of the unrolled kernel.

    Every reaction keeps its rate constant and net rate live; an unrolled
    kernel holds the species accumulator array in registers too.  This is
    the mechanism behind the paper's "large kernels ... use upwards of 18k
    registers" observation — the estimate reproduces that scale for
    detailed mechanisms.
    """
    live_per_reaction = 3  # kf, kr, q
    return 16 + mech.n_species + live_per_reaction * mech.n_reactions


def generated_lines_for_jacobian(mech: Mechanism) -> int:
    """Line count of the (hypothetically emitted) unrolled Jacobian.

    Each reaction contributes a derivative block per participating
    species pair; this reproduces the 84-reaction drm19 → O(10⁴) lines and
    detailed-mechanism → O(10⁵) lines scaling the paper reports.
    """
    lines = 10 + mech.n_species  # prologue + zeroing... per *row* actually
    for rx in mech.reactions:
        participants = len(rx.reactants) + len(rx.products)
        directions = 2 if rx.reverse_A else 1
        # one derivative expression + scatter updates per (direction, var)
        lines += directions * participants * (2 + participants)
    return lines
