"""PelePhysics-style code generation for thermo-chemistry routines (§3.8).

"Both applications share a library called PelePhysics which contains a
code generator to emit code for thermo-chemistry routines ... the unrolled
chemistry computation routines can contain upwards of 200k lines of code
in a single file, with a single GPU kernel (such as the calculation of a
chemical Jacobian) spanning 140k lines".

:func:`generate_rates_source` emits a fully unrolled Python function for a
mechanism's production rates (every reaction's Arrhenius expression and
stoichiometric update written out literally, no loops); the generated code
is ``exec``-compiled and must match the interpreted evaluator bit-for-bit.
Generated line counts grow linearly with mechanism size, reproducing the
kernel-size pathology the paper describes.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.chem.mechanism import R_UNIV, Mechanism


@dataclass(frozen=True)
class GeneratedKernel:
    """A compiled generated routine plus its source metrics."""

    source: str
    fn: Callable
    n_lines: int
    estimated_registers: int


def _emit_rate(buf: io.StringIO, tag: str, A: float, b: float, Ea: float) -> None:
    buf.write(f"    k{tag} = {A!r} * T**{b!r} * exp({-Ea!r} / ({R_UNIV!r} * T))\n")


def generate_rates_source(mech: Mechanism, *, fn_name: str = "wdot_generated") -> str:
    """Emit unrolled Python source computing ω̇ for *mech*."""
    buf = io.StringIO()
    buf.write(f"def {fn_name}(T, C, out):\n")
    buf.write('    """Generated production rates — do not edit."""\n')
    buf.write("    from math import exp\n")
    for i in range(mech.n_species):
        buf.write(f"    out[{i}] = 0.0\n")
    for r, rx in enumerate(mech.reactions):
        buf.write(f"    # reaction {r}\n")
        _emit_rate(buf, f"f{r}", rx.A, rx.b, rx.Ea)
        terms = " * ".join(
            f"C[{s}]" if nu == 1 else f"C[{s}]**{nu}" for s, nu in rx.reactants.items()
        )
        buf.write(f"    qf{r} = kf{r} * {terms}\n")
        if rx.reverse_A:
            _emit_rate(buf, f"r{r}", rx.reverse_A, rx.reverse_b, rx.reverse_Ea)
            terms_r = " * ".join(
                f"C[{s}]" if nu == 1 else f"C[{s}]**{nu}" for s, nu in rx.products.items()
            )
            buf.write(f"    qr{r} = kr{r} * {terms_r}\n")
            buf.write(f"    q{r} = qf{r} - qr{r}\n")
        else:
            buf.write(f"    q{r} = qf{r}\n")
        for s, nu in rx.reactants.items():
            buf.write(f"    out[{s}] -= {float(nu)!r} * q{r}\n")
        for s, nu in rx.products.items():
            buf.write(f"    out[{s}] += {float(nu)!r} * q{r}\n")
    buf.write("    return out\n")
    return buf.getvalue()


def compile_rates(mech: Mechanism) -> GeneratedKernel:
    """Generate, compile and wrap the unrolled rates routine."""
    src = generate_rates_source(mech)
    namespace: dict = {}
    exec(compile(src, f"<generated:{mech.name}>", "exec"), namespace)
    raw = namespace["wdot_generated"]

    def fn(T: float, conc: np.ndarray) -> np.ndarray:
        out = np.zeros(mech.n_species)
        raw(T, conc, out)
        return out

    n_lines = src.count("\n")
    return GeneratedKernel(
        source=src,
        fn=fn,
        n_lines=n_lines,
        estimated_registers=estimate_registers(mech),
    )


def estimate_registers(mech: Mechanism) -> int:
    """Register-pressure estimate of the unrolled kernel.

    Every reaction keeps its rate constant and net rate live; an unrolled
    kernel holds the species accumulator array in registers too.  This is
    the mechanism behind the paper's "large kernels ... use upwards of 18k
    registers" observation — the estimate reproduces that scale for
    detailed mechanisms.
    """
    live_per_reaction = 3  # kf, kr, q
    return 16 + mech.n_species + live_per_reaction * mech.n_reactions


def generated_lines_for_jacobian(mech: Mechanism) -> int:
    """Line count of the (hypothetically emitted) unrolled Jacobian.

    Each reaction contributes a derivative block per participating
    species pair; this reproduces the 84-reaction drm19 → O(10⁴) lines and
    detailed-mechanism → O(10⁵) lines scaling the paper reports.
    """
    lines = 10 + mech.n_species  # prologue + zeroing... per *row* actually
    for rx in mech.reactions:
        participants = len(rx.reactants) + len(rx.products)
        directions = 2 if rx.reverse_A else 1
        # one derivative expression + scatter updates per (direction, var)
        lines += directions * participants * (2 + participants)
    return lines
