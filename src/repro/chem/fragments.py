"""Fragmentation methods: the many-body expansion GAMESS scaled to 2k nodes.

FMO/EFMO/MBE (§3.1) all share the structure exploited for exascale: total
energy as a truncated many-body expansion over fragments,

    E ≈ Σᵢ Eᵢ + Σ_{i<j} (Eᵢⱼ − Eᵢ − Eⱼ) [+ 3-body ...]

where every fragment (and fragment-pair) energy is an *independent*
calculation — hence near-ideal linear scaling.  We implement the MBE over
a pluggable fragment-energy functional.  With an additive pairwise
potential the 2-body MBE is exact, which is the correctness anchor; with a
distance cutoff it becomes the linear-scaling approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

EnergyFn = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class Fragment:
    """One fragment: its atom coordinates (n_atoms, 3)."""

    atoms: np.ndarray

    @property
    def natoms(self) -> int:
        return len(self.atoms)

    @property
    def centroid(self) -> np.ndarray:
        return self.atoms.mean(axis=0)


def water_cluster(n_molecules: int, *, spacing: float = 3.0, seed: int = 0) -> list[Fragment]:
    """A cluster of 3-atom water-like fragments on a jittered lattice.

    The paper's Frontier demonstration used 935 water molecules with the
    Many Body Expansion Fragmentation method; this builds the same shape
    of problem at arbitrary size.
    """
    if n_molecules < 1:
        raise ValueError("need at least one molecule")
    rng = np.random.default_rng(seed)
    side = int(np.ceil(n_molecules ** (1 / 3)))
    frags = []
    count = 0
    for i in range(side):
        for j in range(side):
            for k in range(side):
                if count >= n_molecules:
                    break
                center = np.array([i, j, k]) * spacing + rng.normal(scale=0.2, size=3)
                # O at centre, two H at fixed offsets
                atoms = np.stack([
                    center,
                    center + np.array([0.76, 0.59, 0.0]),
                    center + np.array([-0.76, 0.59, 0.0]),
                ])
                frags.append(Fragment(atoms=atoms))
                count += 1
    return frags


def pairwise_energy(atoms: np.ndarray, *, scale: float = 1.0) -> float:
    """A smooth additive pair potential used as the model 'ab initio' energy.

    Strictly pairwise-additive, so the untruncated 2-body MBE must
    reproduce the supersystem energy exactly — the property the
    correctness tests pin down.
    """
    if len(atoms) < 2:
        return 0.0
    d = atoms[:, None, :] - atoms[None, :, :]
    r2 = np.sum(d * d, axis=-1)
    iu = np.triu_indices(len(atoms), k=1)
    r2 = r2[iu]
    return float(scale * np.sum(np.exp(-0.3 * r2) - 0.05 / (1.0 + r2)))


@dataclass
class MbeResult:
    energy: float
    monomer_energies: list[float]
    pair_corrections: dict[tuple[int, int], float]
    pairs_computed: int
    pairs_skipped: int

    @property
    def n_independent_tasks(self) -> int:
        """Independently schedulable calculations (the scaling resource)."""
        return len(self.monomer_energies) + self.pairs_computed


def mbe_energy(fragments: Sequence[Fragment], energy_fn: EnergyFn = pairwise_energy,
               *, cutoff: float | None = None) -> MbeResult:
    """Two-body many-body expansion with an optional pair-distance cutoff."""
    mono = [energy_fn(f.atoms) for f in fragments]
    pair_corr: dict[tuple[int, int], float] = {}
    skipped = 0
    for i in range(len(fragments)):
        for j in range(i + 1, len(fragments)):
            if cutoff is not None:
                dist = float(np.linalg.norm(fragments[i].centroid - fragments[j].centroid))
                if dist > cutoff:
                    skipped += 1
                    continue
            dimer = np.concatenate([fragments[i].atoms, fragments[j].atoms])
            pair_corr[(i, j)] = energy_fn(dimer) - mono[i] - mono[j]
    return MbeResult(
        energy=float(sum(mono) + sum(pair_corr.values())),
        monomer_energies=mono,
        pair_corrections=pair_corr,
        pairs_computed=len(pair_corr),
        pairs_skipped=skipped,
    )


def supersystem_energy(fragments: Sequence[Fragment],
                       energy_fn: EnergyFn = pairwise_energy) -> float:
    """Direct energy of the whole system (the expensive reference)."""
    return energy_fn(np.concatenate([f.atoms for f in fragments]))


def distribute_fragments(n_tasks: int, nranks: int) -> list[list[int]]:
    """Static round-robin task distribution (GDDI-style group scheduling)."""
    if nranks < 1:
        raise ValueError("nranks must be positive")
    buckets: list[list[int]] = [[] for _ in range(nranks)]
    for t in range(n_tasks):
        buckets[t % nranks].append(t)
    return buckets


def fragment_scaling_efficiency(n_tasks: int, nranks: int,
                                task_time: float = 1.0) -> float:
    """Parallel efficiency of independent equal-cost tasks on nranks."""
    if n_tasks < 1:
        return 1.0
    per_rank = -(-n_tasks // nranks)  # ceil
    ideal = n_tasks * task_time / nranks
    actual = per_rank * task_time
    return ideal / actual
