"""Mechanism → :class:`~repro.backend.base.ChemRateTables` flattening.

The generated-code path unrolls a mechanism into source text (one line
per Arrhenius factor, one per stoichiometric update — §3.8's 140k-line
kernels).  The fused path flattens the same mechanism into index/value
tables a data-driven kernel can sweep in O(1) array operations per RHS
evaluation.  Both paths evaluate identical per-reaction expressions;
the parity suite holds them together to roundoff.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ChemRateTables
from repro.chem.mechanism import Mechanism

#: Memoized tables per mechanism identity (same keying as the generated
#: kernel caches: name alone is not enough, fold in the reaction table).
_TABLES_CACHE: dict[tuple, ChemRateTables] = {}


def _fingerprint(mech: Mechanism) -> tuple:
    return (
        mech.name,
        mech.species,
        tuple(
            (
                tuple(sorted(rx.reactants.items())),
                tuple(sorted(rx.products.items())),
                rx.A, rx.b, rx.Ea, rx.reverse_A, rx.reverse_b, rx.reverse_Ea,
            )
            for rx in mech.reactions
        ),
    )


def _multiplicity_rows(sides: list[dict[int, int]], pad: int
                       ) -> np.ndarray:
    """Species-with-multiplicity index rows, padded with *pad*."""
    width = max((sum(side.values()) for side in sides), default=1)
    width = max(width, 1)
    rows = np.full((len(sides), width), pad, dtype=np.intp)
    for r, side in enumerate(sides):
        k = 0
        for s, nu in side.items():
            for _ in range(nu):
                rows[r, k] = s
                k += 1
    return rows


def rate_tables(mech: Mechanism) -> ChemRateTables:
    """Flatten *mech* into fused-kernel tables (memoized per mechanism)."""
    key = _fingerprint(mech)
    cached = _TABLES_CACHE.get(key)
    if cached is not None:
        return cached
    n, R = mech.n_species, mech.n_reactions
    net = np.zeros((R, n))
    for r, rx in enumerate(mech.reactions):
        for s, nu in rx.reactants.items():
            net[r, s] -= nu
        for s, nu in rx.products.items():
            net[r, s] += nu
    rows, cols = np.nonzero(net)
    tables = ChemRateTables(
        n_species=n,
        n_reactions=R,
        A=np.array([rx.A for rx in mech.reactions]),
        b=np.array([rx.b for rx in mech.reactions]),
        Ea=np.array([rx.Ea for rx in mech.reactions]),
        rev_A=np.array([rx.reverse_A for rx in mech.reactions]),
        rev_b=np.array([rx.reverse_b for rx in mech.reactions]),
        rev_Ea=np.array([rx.reverse_Ea for rx in mech.reactions]),
        has_reverse=np.array([rx.reverse_A != 0.0 for rx in mech.reactions]),
        fwd_idx=_multiplicity_rows([rx.reactants for rx in mech.reactions], n),
        rev_idx=_multiplicity_rows([rx.products for rx in mech.reactions], n),
        net=net,
        net_rows=rows.astype(np.intp),
        net_cols=cols.astype(np.intp),
        net_vals=net[rows, cols],
    )
    _TABLES_CACHE[key] = tables
    return tables
