"""Production rates and Jacobians for a mechanism (interpreted evaluation).

The two kernels §3.8 says dominate Pele's chemistry: "the computation of
chemical production rates and the chemical Jacobian".  The generated-code
path (:mod:`repro.chem.codegen`) must agree with these reference
implementations exactly.
"""

from __future__ import annotations

import numpy as np

from repro.chem.mechanism import R_UNIV, Mechanism


def production_rates(mech: Mechanism, T: float, conc: np.ndarray) -> np.ndarray:
    """Net molar production rate ω̇ of every species at (T, concentrations)."""
    if conc.shape != (mech.n_species,):
        raise ValueError(f"need {mech.n_species} concentrations, got {conc.shape}")
    wdot = np.zeros(mech.n_species)
    for rx in mech.reactions:
        kf = rx.rate_constant(T)
        rate_f = kf
        for s, nu in rx.reactants.items():
            rate_f *= conc[s] ** nu
        kr = rx.reverse_rate_constant(T)
        rate_r = 0.0
        if kr:
            rate_r = kr
            for s, nu in rx.products.items():
                rate_r *= conc[s] ** nu
        net = rate_f - rate_r
        for s, nu in rx.reactants.items():
            wdot[s] -= nu * net
        for s, nu in rx.products.items():
            wdot[s] += nu * net
    return wdot


def analytic_jacobian(mech: Mechanism, T: float, conc: np.ndarray) -> np.ndarray:
    """∂ω̇/∂C, assembled analytically reaction by reaction.

    This is the kernel whose unrolled generated form spans ~140k lines in
    PeleC (§3.8); here it is the closed-form product-rule assembly.
    """
    n = mech.n_species
    jac = np.zeros((n, n))
    for rx in mech.reactions:
        kf = rx.rate_constant(T)
        kr = rx.reverse_rate_constant(T)
        # d(rate_f)/dC_m = kf * nu_m * C_m^(nu_m - 1) * prod_others
        for m in rx.reactants:
            d = kf
            for s, nu in rx.reactants.items():
                if s == m:
                    d *= nu * conc[s] ** (nu - 1)
                else:
                    d *= conc[s] ** nu
            for s, nu in rx.reactants.items():
                jac[s, m] -= nu * d
            for s, nu in rx.products.items():
                jac[s, m] += nu * d
        if kr:
            for m in rx.products:
                d = kr
                for s, nu in rx.products.items():
                    if s == m:
                        d *= nu * conc[s] ** (nu - 1)
                    else:
                        d *= conc[s] ** nu
                # reverse rate reduces net: signs flip
                for s, nu in rx.reactants.items():
                    jac[s, m] += nu * d
                for s, nu in rx.products.items():
                    jac[s, m] -= nu * d
    return jac


def numerical_jacobian(mech: Mechanism, T: float, conc: np.ndarray,
                       *, eps: float = 1e-7) -> np.ndarray:
    """Finite-difference reference for the analytic Jacobian."""
    n = mech.n_species
    base = production_rates(mech, T, conc)
    jac = np.zeros((n, n))
    for m in range(n):
        dc = eps * max(conc[m], 1e-3)
        cp = conc.copy()
        cp[m] += dc
        jac[:, m] = (production_rates(mech, T, cp) - base) / dc
    return jac


def chemistry_rhs(mech: Mechanism, T: float):
    """An ODE right-hand side ``f(t, C) = ω̇(T, C)`` for the integrators."""

    def rhs(t: float, conc: np.ndarray) -> np.ndarray:
        return production_rates(mech, T, np.maximum(conc, 0.0))

    return rhs


def production_rates_batch(mech: Mechanism, T, conc: np.ndarray) -> np.ndarray:
    """ω̇ for a whole batch of cells at once (the paper's batched-RHS motif).

    ``conc`` has shape (..., batch, n_species); ``T`` is a scalar or a
    (batch,)-shaped per-cell temperature.  Leading axes broadcast, which is
    what lets the batched integrator evaluate all finite-difference
    Jacobian columns of every cell in a single sweep.
    """
    conc = np.asarray(conc, dtype=float)
    if conc.shape[-1] != mech.n_species:
        raise ValueError(
            f"need trailing axis of {mech.n_species} concentrations, got {conc.shape}"
        )
    T = np.asarray(T, dtype=float)
    wdot = np.zeros(np.broadcast_shapes(conc.shape[:-1], T.shape) + conc.shape[-1:])
    for rx in mech.reactions:
        kf = rx.A * T**rx.b * np.exp(-rx.Ea / (R_UNIV * T))
        rate_f = kf * np.ones(conc.shape[:-1])
        for s, nu in rx.reactants.items():
            rate_f = rate_f * conc[..., s] ** nu
        net = rate_f
        if rx.reverse_A:
            kr = rx.reverse_A * T**rx.reverse_b * np.exp(
                -rx.reverse_Ea / (R_UNIV * T)
            )
            rate_r = kr * np.ones(conc.shape[:-1])
            for s, nu in rx.products.items():
                rate_r = rate_r * conc[..., s] ** nu
            net = rate_f - rate_r
        for s, nu in rx.reactants.items():
            wdot[..., s] -= nu * net
        for s, nu in rx.products.items():
            wdot[..., s] += nu * net
    return wdot


def analytic_jacobian_batch(mech: Mechanism, T, conc: np.ndarray) -> np.ndarray:
    """∂ω̇/∂C for a batch of cells: (batch, n, n) from (batch, n) states."""
    conc = np.asarray(conc, dtype=float)
    if conc.ndim != 2 or conc.shape[1] != mech.n_species:
        raise ValueError(
            f"need (batch, {mech.n_species}) concentrations, got {conc.shape}"
        )
    T = np.broadcast_to(np.asarray(T, dtype=float), conc.shape[:1])
    n = mech.n_species
    jac = np.zeros((conc.shape[0], n, n))
    for rx in mech.reactions:
        kf = rx.A * T**rx.b * np.exp(-rx.Ea / (R_UNIV * T))
        for m in rx.reactants:
            d = kf.copy()
            for s, nu in rx.reactants.items():
                if s == m:
                    d *= nu * conc[:, s] ** (nu - 1)
                else:
                    d *= conc[:, s] ** nu
            for s, nu in rx.reactants.items():
                jac[:, s, m] -= nu * d
            for s, nu in rx.products.items():
                jac[:, s, m] += nu * d
        if rx.reverse_A:
            kr = rx.reverse_A * T**rx.reverse_b * np.exp(
                -rx.reverse_Ea / (R_UNIV * T)
            )
            for m in rx.products:
                d = kr.copy()
                for s, nu in rx.products.items():
                    if s == m:
                        d *= nu * conc[:, s] ** (nu - 1)
                    else:
                        d *= conc[:, s] ** nu
                for s, nu in rx.reactants.items():
                    jac[:, s, m] += nu * d
                for s, nu in rx.products.items():
                    jac[:, s, m] -= nu * d
    return jac


def chemistry_rhs_batch(mech: Mechanism, T):
    """A batched ODE right-hand side over all cells of a field at once."""

    def rhs(t, conc: np.ndarray) -> np.ndarray:
        return production_rates_batch(mech, T, np.maximum(conc, 0.0))

    return rhs


def rates_flop_count(mech: Mechanism) -> float:
    """FLOPs of one production-rate evaluation (exp + powers + updates)."""
    flops = 0.0
    for rx in mech.reactions:
        # Arrhenius: exp (≈20 flops) + power (≈10) per direction
        flops += 30.0 * (2 if rx.reverse_A else 1)
        flops += 4.0 * (len(rx.reactants) + len(rx.products))
    return flops


def jacobian_flop_count(mech: Mechanism) -> float:
    """FLOPs of one analytic Jacobian assembly."""
    flops = 0.0
    for rx in mech.reactions:
        nr, npd = len(rx.reactants), len(rx.products)
        flops += 30.0 + nr * (3.0 * nr + 2.0 * (nr + npd))
        if rx.reverse_A:
            flops += 30.0 + npd * (3.0 * npd + 2.0 * (nr + npd))
    return flops
