"""Production rates and Jacobians for a mechanism (interpreted evaluation).

The two kernels §3.8 says dominate Pele's chemistry: "the computation of
chemical production rates and the chemical Jacobian".  The generated-code
path (:mod:`repro.chem.codegen`) must agree with these reference
implementations exactly.
"""

from __future__ import annotations

import numpy as np

from repro.chem.mechanism import Mechanism


def production_rates(mech: Mechanism, T: float, conc: np.ndarray) -> np.ndarray:
    """Net molar production rate ω̇ of every species at (T, concentrations)."""
    if conc.shape != (mech.n_species,):
        raise ValueError(f"need {mech.n_species} concentrations, got {conc.shape}")
    wdot = np.zeros(mech.n_species)
    for rx in mech.reactions:
        kf = rx.rate_constant(T)
        rate_f = kf
        for s, nu in rx.reactants.items():
            rate_f *= conc[s] ** nu
        kr = rx.reverse_rate_constant(T)
        rate_r = 0.0
        if kr:
            rate_r = kr
            for s, nu in rx.products.items():
                rate_r *= conc[s] ** nu
        net = rate_f - rate_r
        for s, nu in rx.reactants.items():
            wdot[s] -= nu * net
        for s, nu in rx.products.items():
            wdot[s] += nu * net
    return wdot


def analytic_jacobian(mech: Mechanism, T: float, conc: np.ndarray) -> np.ndarray:
    """∂ω̇/∂C, assembled analytically reaction by reaction.

    This is the kernel whose unrolled generated form spans ~140k lines in
    PeleC (§3.8); here it is the closed-form product-rule assembly.
    """
    n = mech.n_species
    jac = np.zeros((n, n))
    for rx in mech.reactions:
        kf = rx.rate_constant(T)
        kr = rx.reverse_rate_constant(T)
        # d(rate_f)/dC_m = kf * nu_m * C_m^(nu_m - 1) * prod_others
        for m in rx.reactants:
            d = kf
            for s, nu in rx.reactants.items():
                if s == m:
                    d *= nu * conc[s] ** (nu - 1)
                else:
                    d *= conc[s] ** nu
            for s, nu in rx.reactants.items():
                jac[s, m] -= nu * d
            for s, nu in rx.products.items():
                jac[s, m] += nu * d
        if kr:
            for m in rx.products:
                d = kr
                for s, nu in rx.products.items():
                    if s == m:
                        d *= nu * conc[s] ** (nu - 1)
                    else:
                        d *= conc[s] ** nu
                # reverse rate reduces net: signs flip
                for s, nu in rx.reactants.items():
                    jac[s, m] += nu * d
                for s, nu in rx.products.items():
                    jac[s, m] -= nu * d
    return jac


def numerical_jacobian(mech: Mechanism, T: float, conc: np.ndarray,
                       *, eps: float = 1e-7) -> np.ndarray:
    """Finite-difference reference for the analytic Jacobian."""
    n = mech.n_species
    base = production_rates(mech, T, conc)
    jac = np.zeros((n, n))
    for m in range(n):
        dc = eps * max(conc[m], 1e-3)
        cp = conc.copy()
        cp[m] += dc
        jac[:, m] = (production_rates(mech, T, cp) - base) / dc
    return jac


def chemistry_rhs(mech: Mechanism, T: float):
    """An ODE right-hand side ``f(t, C) = ω̇(T, C)`` for the integrators."""

    def rhs(t: float, conc: np.ndarray) -> np.ndarray:
        return production_rates(mech, T, np.maximum(conc, 0.0))

    return rhs


def rates_flop_count(mech: Mechanism) -> float:
    """FLOPs of one production-rate evaluation (exp + powers + updates)."""
    flops = 0.0
    for rx in mech.reactions:
        # Arrhenius: exp (≈20 flops) + power (≈10) per direction
        flops += 30.0 * (2 if rx.reverse_A else 1)
        flops += 4.0 * (len(rx.reactants) + len(rx.products))
    return flops


def jacobian_flop_count(mech: Mechanism) -> float:
    """FLOPs of one analytic Jacobian assembly."""
    flops = 0.0
    for rx in mech.reactions:
        nr, npd = len(rx.reactants), len(rx.products)
        flops += 30.0 + nr * (3.0 * nr + 2.0 * (nr + npd))
        if rx.reverse_A:
            flops += 30.0 + npd * (3.0 * npd + 2.0 * (nr + npd))
    return flops
