"""Chemical mechanisms: species, Arrhenius reactions, and built-in examples.

The PelePhysics layer (§3.8): a mechanism definition from which production
rates, Jacobians, and *generated source code* are produced.  Rates use
mass-action kinetics with modified-Arrhenius coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

R_UNIV = 8.314462618  # J / (mol K)


@dataclass(frozen=True)
class Reaction:
    """An (optionally reversible) mass-action reaction.

    ``reactants``/``products`` map species index → stoichiometric
    coefficient.  Rate constant k = A · T^b · exp(−Ea / (R T)); the
    reverse rate, when enabled, uses an explicit reverse Arrhenius fit
    (the common PelePhysics representation for generated code).
    """

    reactants: dict[int, int]
    products: dict[int, int]
    A: float
    b: float = 0.0
    Ea: float = 0.0
    reverse_A: float = 0.0
    reverse_b: float = 0.0
    reverse_Ea: float = 0.0

    def rate_constant(self, T: float) -> float:
        return self.A * T**self.b * np.exp(-self.Ea / (R_UNIV * T))

    def reverse_rate_constant(self, T: float) -> float:
        if self.reverse_A == 0.0:
            return 0.0
        return self.reverse_A * T**self.reverse_b * np.exp(
            -self.reverse_Ea / (R_UNIV * T)
        )


@dataclass(frozen=True)
class Mechanism:
    """A named mechanism: species list + reactions."""

    name: str
    species: tuple[str, ...]
    reactions: tuple[Reaction, ...]

    @property
    def n_species(self) -> int:
        return len(self.species)

    @property
    def n_reactions(self) -> int:
        return len(self.reactions)

    def __post_init__(self) -> None:
        for rx in self.reactions:
            for idx in list(rx.reactants) + list(rx.products):
                if not 0 <= idx < len(self.species):
                    raise ValueError(f"reaction references unknown species {idx}")

    def conserved_atoms(self) -> np.ndarray:
        """Net stoichiometric change per reaction (must net to zero mass
        under the species' implicit unit masses for the toy mechanisms)."""
        out = np.zeros((self.n_reactions, self.n_species))
        for r, rx in enumerate(self.reactions):
            for s, nu in rx.reactants.items():
                out[r, s] -= nu
            for s, nu in rx.products.items():
                out[r, s] += nu
        return out


def h2_o2_mechanism() -> Mechanism:
    """A compact H2-O2 skeletal mechanism (6 species, 6 reversible steps).

    Coefficients are representative, chosen for a well-posed stiff system
    rather than quantitative flame speeds.
    """
    H2, O2, H2O, H, O, OH = range(6)
    rx = (
        Reaction({H2: 1}, {H: 2}, A=2.2e9, b=0.0, Ea=3.0e5,
                 reverse_A=1.0e6, reverse_b=0.0, reverse_Ea=0.0),
        Reaction({O2: 1}, {O: 2}, A=1.0e9, b=0.0, Ea=4.0e5,
                 reverse_A=1.0e6, reverse_b=0.0, reverse_Ea=0.0),
        Reaction({H: 1, O2: 1}, {OH: 1, O: 1}, A=3.5e6, b=-0.4, Ea=6.0e4,
                 reverse_A=3.5e3, reverse_b=0.0, reverse_Ea=2.0e4),
        Reaction({O: 1, H2: 1}, {OH: 1, H: 1}, A=5.0e4, b=1.0, Ea=2.6e4,
                 reverse_A=1.7e3, reverse_b=1.0, reverse_Ea=1.5e4),
        Reaction({OH: 1, H2: 1}, {H2O: 1, H: 1}, A=2.0e5, b=1.0, Ea=1.4e4,
                 reverse_A=4.0e2, reverse_b=1.0, reverse_Ea=7.5e4),
        Reaction({OH: 2}, {H2O: 1, O: 1}, A=3.0e4, b=1.0, Ea=0.0,
                 reverse_A=7.5e2, reverse_b=1.0, reverse_Ea=6.0e4),
    )
    return Mechanism(
        name="h2o2-skeletal",
        species=("H2", "O2", "H2O", "H", "O", "OH"),
        reactions=rx,
    )


def drm19_like_mechanism(*, seed: int = 7) -> Mechanism:
    """A 21-species, 84-reaction synthetic mechanism with drm19's shape.

    PeleC's standard workload is the DRM-19 reduced methane mechanism
    (21 species, 84 reactions); we generate a random sparse mechanism of
    identical dimensions so the generated-code-size and Jacobian-cost
    experiments exercise the real scale.
    """
    rng = np.random.default_rng(seed)
    n_sp, n_rx = 21, 84
    species = tuple(f"S{i}" for i in range(n_sp))
    reactions = []
    for _ in range(n_rx):
        nr = int(rng.integers(1, 3))
        reacts = {int(i): 1 for i in rng.choice(n_sp, size=nr, replace=False)}
        nprod = int(rng.integers(1, 3))
        prods = {int(i): 1 for i in rng.choice(n_sp, size=nprod, replace=False)}
        if set(reacts) == set(prods):
            prods = {(max(prods) + 1) % n_sp: 1}
        reactions.append(
            Reaction(
                reacts, prods,
                A=float(10 ** rng.uniform(3, 9)),
                b=float(rng.uniform(-1, 2.5)),
                Ea=float(rng.uniform(0, 3e5)),
                reverse_A=float(10 ** rng.uniform(2, 6)),
                reverse_b=float(rng.uniform(-1, 2)),
                reverse_Ea=float(rng.uniform(0, 2e5)),
            )
        )
    return Mechanism(name="drm19-like", species=species, reactions=tuple(reactions))
