"""RI-MP2 correlation energy via density-fitted tensor contractions (§3.1).

The GAMESS/LibCChem-EXESS fragment kernel: with fitted three-index
integrals B[P, i, a] (auxiliary index P, occupied i, virtual a), the MP2
pair energies need the four-index block

    (ia|jb) = Σ_P B[P, i, a] · B[P, j, b]

formed per (i, j) pair as a GEMM — this is the contraction GAMESS drove to
"nearly peak device performance" on MI250X.  We implement it for real
(verified against an einsum reference) over synthetic-but-well-formed B
tensors and orbital energies, plus the kernel descriptor used by the
performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import Precision
from repro.linalg.blas import gemm_kernel_spec


@dataclass(frozen=True)
class FragmentOrbitals:
    """Synthetic post-SCF data of one fragment."""

    b_tensor: np.ndarray  # (naux, nocc, nvirt)
    e_occ: np.ndarray  # (nocc,), negative
    e_virt: np.ndarray  # (nvirt,), positive

    @property
    def nocc(self) -> int:
        return self.b_tensor.shape[1]

    @property
    def nvirt(self) -> int:
        return self.b_tensor.shape[2]

    @property
    def naux(self) -> int:
        return self.b_tensor.shape[0]


def make_fragment(nocc: int, nvirt: int, naux: int, *, seed: int = 0) -> FragmentOrbitals:
    """Generate a well-conditioned synthetic fragment.

    Orbital energies have a proper HOMO-LUMO gap so MP2 denominators never
    vanish; B decays with the auxiliary index like real fitted integrals.
    """
    if min(nocc, nvirt, naux) < 1:
        raise ValueError("all dimensions must be positive")
    rng = np.random.default_rng(seed)
    decay = np.exp(-0.05 * np.arange(naux))[:, None, None]
    b = rng.normal(scale=0.1, size=(naux, nocc, nvirt)) * decay
    e_occ = -np.sort(rng.uniform(0.3, 2.0, nocc))[::-1]
    e_virt = np.sort(rng.uniform(0.2, 3.0, nvirt))
    return FragmentOrbitals(b_tensor=b, e_occ=e_occ, e_virt=e_virt)


def rimp2_energy(frag: FragmentOrbitals) -> float:
    """RI-MP2 correlation energy by per-pair GEMM contractions.

    The production loop structure: for each occupied pair (i, j) form
    V = Bᵢᵀ Bⱼ  (an nvirt×nvirt GEMM over the auxiliary index), then
    accumulate  Σ_ab V_ab (2 V_ab − V_ba) / (εᵢ+εⱼ−εₐ−ε_b).
    """
    b, eo, ev = frag.b_tensor, frag.e_occ, frag.e_virt
    nocc = frag.nocc
    energy = 0.0
    for i in range(nocc):
        bi = b[:, i, :]  # (naux, nvirt)
        for j in range(nocc):
            bj = b[:, j, :]
            v = bi.T @ bj  # (ia|jb) block, the GEMM kernel
            denom = eo[i] + eo[j] - ev[:, None] - ev[None, :]
            energy += float(np.sum(v * (2.0 * v - v.T) / denom))
    return energy


def rimp2_energy_reference(frag: FragmentOrbitals) -> float:
    """Einsum reference (forms the full four-index tensor at once)."""
    b, eo, ev = frag.b_tensor, frag.e_occ, frag.e_virt
    v = np.einsum("pia,pjb->iajb", b, b)
    denom = (
        eo[:, None, None, None]
        + eo[None, None, :, None]
        - ev[None, :, None, None]
        - ev[None, None, None, :]
    )
    return float(np.sum(v * (2.0 * v - v.transpose(0, 3, 2, 1)) / denom))


def rimp2_flops(nocc: int, nvirt: int, naux: int) -> float:
    """Contraction FLOPs: nocc² GEMMs of (nvirt × naux) · (naux × nvirt)."""
    return 2.0 * nocc * nocc * nvirt * nvirt * naux


def rimp2_kernel_spec(nocc: int, nvirt: int, naux: int, *,
                      precision: Precision = Precision.FP64,
                      efficiency: float = 0.85) -> KernelSpec:
    """One launch covering all nocc² pair GEMMs (batched formulation).

    GAMESS reached near-peak rates after the memory-transfer optimizations
    (§3.1), hence the high default efficiency for this tuned shape.
    """
    single = gemm_kernel_spec(
        nvirt, nvirt, naux, precision=precision, efficiency=efficiency,
        name=f"rimp2_{nocc}o{nvirt}v{naux}x",
    )
    return single.scaled(nocc * nocc, name=single.name)
