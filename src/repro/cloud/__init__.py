"""E3SM-MMF substrate: CRM kernel ensemble + WENO reconstruction."""

from repro.cloud.crm import (
    CrmStepTime,
    crm_kernel_ensemble,
    crm_step_time,
    optimize_ensemble,
    realtime_throughput,
)
from repro.cloud.weno import (
    LINEAR2_BYTES_PER_POINT,
    LINEAR2_FLOPS_PER_POINT,
    WENO5_BYTES_PER_POINT,
    WENO5_FLOPS_PER_POINT,
    advect_step,
    arithmetic_intensity,
    linear2_reconstruct,
    weno5_reconstruct,
)

__all__ = [
    "MmfModel",
    "CrmInstance",
    "CrmStepTime",
    "LINEAR2_BYTES_PER_POINT",
    "LINEAR2_FLOPS_PER_POINT",
    "WENO5_BYTES_PER_POINT",
    "WENO5_FLOPS_PER_POINT",
    "advect_step",
    "arithmetic_intensity",
    "crm_kernel_ensemble",
    "crm_step_time",
    "linear2_reconstruct",
    "optimize_ensemble",
    "realtime_throughput",
    "weno5_reconstruct",
]
from repro.cloud.mmf import CrmInstance, MmfModel
