"""The E3SM-MMF cloud-resolving-model kernel ensemble (§3.5).

E3SM-MMF's strong-scaled configuration leaves little work per GPU, so its
runtime is dominated by latencies: kernel launches, allocations, and
register-spill effects.  This module builds the representative kernel
ensemble (many small dynamics/microphysics/macrophysics kernels per step)
and implements the paper's three optimization levers so benchmarks can
measure each:

* **fusion** of small kernels (fewer launches) balanced against
  **fission** of spilling kernels (§3.5's "balance to strike");
* **same-stream asynchronous launching** so launch overheads overlap
  earlier kernels' execution;
* the **YAKL pool allocator** replacing per-step device malloc/free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.kernel import KernelSpec, fission, fuse
from repro.gpu.memory import DeviceAllocator, PoolAllocator
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.perfmodel import time_kernel_sequence
from repro.hardware.gpu import GPUSpec, Precision


def crm_kernel_ensemble(columns: int, *, levels: int = 60,
                        n_micro: int = 24, n_macro: int = 8,
                        n_dyn: int = 10) -> list[KernelSpec]:
    """The per-step kernel list of a strong-scaled CRM instance.

    ``columns`` is the CRM columns resident on one GPU — small at the
    1000x-realtime throughput target, which is what makes latency bite.
    Microphysics kernels are tiny; dynamics kernels are mid-sized with a
    couple of register-heavy WENO kernels that spill when naively fused.
    """
    cells = columns * levels
    kernels: list[KernelSpec] = []
    for i in range(n_micro):
        kernels.append(KernelSpec(
            name=f"micro_{i}",
            flops=18.0 * cells,
            bytes_read=4 * 8.0 * cells,
            bytes_written=2 * 8.0 * cells,
            threads=max(cells, 64),
            precision=Precision.FP32,
            registers_per_thread=48,
            workgroup_size=128,
        ))
    for i in range(n_macro):
        kernels.append(KernelSpec(
            name=f"macro_{i}",
            flops=40.0 * cells,
            bytes_read=6 * 8.0 * cells,
            bytes_written=2 * 8.0 * cells,
            threads=max(cells, 64),
            precision=Precision.FP32,
            registers_per_thread=64,
            workgroup_size=128,
        ))
    for i in range(n_dyn):
        heavy = i < 2  # the WENO limiter kernels
        kernels.append(KernelSpec(
            name=f"dyn_{i}",
            flops=(300.0 if heavy else 90.0) * cells,
            bytes_read=8 * 8.0 * cells,
            bytes_written=3 * 8.0 * cells,
            threads=max(cells, 64),
            precision=Precision.FP64,
            registers_per_thread=320 if heavy else 96,
            workgroup_size=256,
        ))
    return kernels


def optimize_ensemble(kernels: list[KernelSpec], device: GPUSpec, *,
                      fuse_group: int = 4) -> list[KernelSpec]:
    """Apply E3SM's fusion/fission policy.

    Small same-precision kernels are fused in groups of ``fuse_group``
    (launch-latency amortization); any kernel that would spill on
    *device* is fissioned until it does not (§3.5: "kernels could be
    fissioned into multiple kernels until register spillage did not
    occur").
    """
    if fuse_group < 1:
        raise ValueError("fuse_group must be >= 1")
    out: list[KernelSpec] = []
    pending: list[KernelSpec] = []

    def flush() -> None:
        if not pending:
            return
        out.append(fuse(list(pending)) if len(pending) > 1 else pending[0])
        pending.clear()

    for k in kernels:
        small = k.flops / max(k.threads, 1) < 64.0
        if small and (not pending or pending[0].precision == k.precision):
            pending.append(k)
            if len(pending) == fuse_group:
                flush()
        else:
            flush()
            out.append(k)
    flush()

    final: list[KernelSpec] = []
    for k in out:
        parts = 1
        while compute_occupancy(
            k if parts == 1 else fission(k, parts)[0], device
        ).spills and parts < 8:
            parts += 1
        final.extend(fission(k, parts))
    return final


@dataclass(frozen=True)
class CrmStepTime:
    """Per-step cost breakdown for one configuration."""

    kernel_time: float
    allocation_time: float

    @property
    def total(self) -> float:
        return self.kernel_time + self.allocation_time


def crm_step_time(kernels: list[KernelSpec], device: GPUSpec, *,
                  same_stream_async: bool = True,
                  pool_allocator: bool = True,
                  temps_per_step: int = 40,
                  temp_bytes: int = 1 << 20) -> CrmStepTime:
    """Wall time of one CRM step under the chosen optimization levers.

    ``temps_per_step`` transient device arrays are allocated and freed per
    step — through the native allocator (blocking) or the YAKL pool.
    """
    t_kernels = time_kernel_sequence(kernels, device,
                                     same_stream_async=same_stream_async)
    if pool_allocator:
        backing = DeviceAllocator(int(device.mem_capacity))
        pool = PoolAllocator(backing, initial_block=4 * temps_per_step * temp_bytes)
        for _ in range(temps_per_step):
            h = pool.malloc(temp_bytes)
            pool.free(h)
        t_alloc = pool.simulated_time
    else:
        alloc = DeviceAllocator(int(device.mem_capacity))
        for _ in range(temps_per_step):
            h = alloc.malloc(temp_bytes)
            alloc.free(h)
        t_alloc = alloc.simulated_time
    return CrmStepTime(kernel_time=t_kernels, allocation_time=t_alloc)


def realtime_throughput(step_time: float, *, dt_model_seconds: float = 10.0) -> float:
    """Simulated-seconds-per-wall-second (the 1000-2000x target metric)."""
    if step_time <= 0:
        raise ValueError("step time must be positive")
    return dt_model_seconds / step_time
