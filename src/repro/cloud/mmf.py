"""The Multiscale Modeling Framework coupling (E3SM-MMF's defining trait).

E3SM-MMF embeds a cloud-resolving model inside every global-model column:
each GCM column's state forces an independent CRM, and the CRM's response
tendencies feed back — the superparameterization loop.  The CRMs are
*independent* between columns (the source of E3SM-MMF's GPU parallelism),
which the tests verify, along with conservation of the coupled scalar
through the two-way exchange.

The CRM physics here is the real WENO advection substrate; the GCM is a
coarse scalar column model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.weno import advect_step


@dataclass
class CrmInstance:
    """One column's embedded cloud-resolving model (periodic 1-D strip)."""

    state: np.ndarray
    cfl: float = 0.4

    def advance(self, n_substeps: int) -> None:
        for _ in range(n_substeps):
            self.state = advect_step(self.state, self.cfl, scheme="weno5")

    @property
    def mean(self) -> float:
        return float(self.state.mean())


@dataclass
class MmfModel:
    """A GCM column array, each hosting an independent CRM.

    Coupling per GCM step (the superparameterization loop):

    1. *forcing*: each CRM's state is shifted so its mean matches its GCM
       column value (large-scale forcing);
    2. *CRM advance*: every CRM subcycles independently;
    3. *feedback*: each GCM column is set to its CRM's new mean.

    The shift-based coupling conserves the global integral exactly, which
    the tests assert.
    """

    gcm_state: np.ndarray
    crms: list[CrmInstance] = field(default_factory=list)
    crm_substeps: int = 8

    @classmethod
    def create(cls, n_columns: int, crm_cells: int = 32, *, seed: int = 0,
               crm_substeps: int = 8) -> "MmfModel":
        if n_columns < 1 or crm_cells < 8:
            raise ValueError("need >= 1 column and >= 8 CRM cells")
        rng = np.random.default_rng(seed)
        gcm = rng.uniform(0.5, 1.5, n_columns)
        crms = []
        for i in range(n_columns):
            base = rng.uniform(0.2, 0.4, crm_cells)
            state = base - base.mean() + gcm[i]  # CRM mean matches the column
            crms.append(CrmInstance(state=state))
        return cls(gcm_state=gcm, crms=crms, crm_substeps=crm_substeps)

    @property
    def n_columns(self) -> int:
        return len(self.crms)

    def global_integral(self) -> float:
        return float(self.gcm_state.sum())

    def step(self) -> None:
        for i, crm in enumerate(self.crms):
            # 1. large-scale forcing: shift CRM mean onto the column value
            crm.state += self.gcm_state[i] - crm.mean
            # 2. independent CRM advance
            crm.advance(self.crm_substeps)
            # 3. feedback: the column takes the CRM's (advected) mean
            self.gcm_state[i] = crm.mean

    def step_column(self, i: int) -> float:
        """Advance a single column in isolation (for independence tests)."""
        if not 0 <= i < self.n_columns:
            raise ValueError(f"no column {i}")
        crm = self.crms[i]
        crm.state += self.gcm_state[i] - crm.mean
        crm.advance(self.crm_substeps)
        self.gcm_state[i] = crm.mean
        return self.gcm_state[i]
