"""WENO5 reconstruction: the arithmetic-intensity upgrade of E3SM's new
Cloud Resolving Model (§3.5).

"Part of the ECP funding for E3SM-MMF was devoted to writing a new Cloud
Resolving Model, which increases arithmetic intensity via higher-order
interpolation and Weighted Essentially Non-Oscillatory (WENO) limiting.
This improvement in arithmetic intensity is better suited to GPUs."

Implemented for real: classic fifth-order WENO-JS face reconstruction,
verified for design order on smooth data and non-oscillatory behaviour at
discontinuities, alongside the second-order reconstruction it replaced.
The per-point FLOP counts quantify the intensity claim.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-6


def weno5_reconstruct(u: np.ndarray) -> np.ndarray:
    """Left-biased WENO5 face value at each i+1/2 (periodic).

    ``u`` holds *cell averages*; entry i of the result approximates the
    point value u(x_{i+1/2}) from the stencil {i-2 .. i+2}, fifth-order
    accurate on smooth data and non-oscillatory at discontinuities.
    """
    u = np.asarray(u, dtype=float)
    um2, um1, u0, up1, up2 = (np.roll(u, s) for s in (2, 1, 0, -1, -2))
    # candidate stencil reconstructions
    p0 = (2 * um2 - 7 * um1 + 11 * u0) / 6.0
    p1 = (-um1 + 5 * u0 + 2 * up1) / 6.0
    p2 = (2 * u0 + 5 * up1 - up2) / 6.0
    # smoothness indicators
    b0 = 13 / 12 * (um2 - 2 * um1 + u0) ** 2 + 0.25 * (um2 - 4 * um1 + 3 * u0) ** 2
    b1 = 13 / 12 * (um1 - 2 * u0 + up1) ** 2 + 0.25 * (um1 - up1) ** 2
    b2 = 13 / 12 * (u0 - 2 * up1 + up2) ** 2 + 0.25 * (3 * u0 - 4 * up1 + up2) ** 2
    # nonlinear weights
    a0 = 0.1 / (_EPS + b0) ** 2
    a1 = 0.6 / (_EPS + b1) ** 2
    a2 = 0.3 / (_EPS + b2) ** 2
    asum = a0 + a1 + a2
    return (a0 * p0 + a1 * p1 + a2 * p2) / asum


def linear2_reconstruct(u: np.ndarray) -> np.ndarray:
    """Second-order centred face value (the old low-order CRM)."""
    u = np.asarray(u, dtype=float)
    return 0.5 * (u + np.roll(u, -1))


def advect_step(u: np.ndarray, cfl: float, *, scheme: str = "weno5") -> np.ndarray:
    """One periodic upwind advection step (velocity +1) at the given CFL."""
    if not 0 < cfl <= 1:
        raise ValueError("cfl must be in (0, 1]")
    if scheme == "weno5":
        face = weno5_reconstruct(u)
    elif scheme == "linear2":
        face = linear2_reconstruct(u)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    flux_in = np.roll(face, 1)
    return u - cfl * (face - flux_in)


#: FLOPs per reconstructed point, counted from the expressions above.
WENO5_FLOPS_PER_POINT = 62.0
LINEAR2_FLOPS_PER_POINT = 2.0
#: Stencil bytes per point (double precision reads + one write).
WENO5_BYTES_PER_POINT = 6 * 8.0
LINEAR2_BYTES_PER_POINT = 3 * 8.0


def arithmetic_intensity(scheme: str) -> float:
    """FLOP/byte of each reconstruction — the §3.5 intensity claim."""
    if scheme == "weno5":
        return WENO5_FLOPS_PER_POINT / WENO5_BYTES_PER_POINT
    if scheme == "linear2":
        return LINEAR2_FLOPS_PER_POINT / LINEAR2_BYTES_PER_POINT
    raise ValueError(f"unknown scheme {scheme!r}")
