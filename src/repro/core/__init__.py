"""The paper's application-readiness framework, formalized."""

from repro.core.challenge import (
    AccelerationPlan,
    ChallengeProblem,
    ChallengeTracker,
    ProjectReport,
    ReviewVerdict,
)
from repro.core.fom import FigureOfMerit, FomKind, FomMeasurement, FomTracker
from repro.core.lessons import Channel, KnowledgeBase, Lesson, seed_paper_lessons
from repro.core.motifs import TABLE1_EXPECTED, PortingMotif
from repro.core.registry import (
    ApplicationRecord,
    ApplicationRegistry,
    build_default_registry,
)
from repro.core.report import render_bar, render_series, render_table
from repro.core.speedup import (
    TABLE2_EXPECTED,
    SpeedupMeasurement,
    measure_speedup,
    within_band,
)
from repro.core.timeline import (
    EarlyAccessCampaign,
    IssueRecord,
    ReadinessPhase,
    convergence_to_frontier,
    early_access_generations,
)

__all__ = [
    "weak_scaling_efficiency",
    "scaling_study",
    "gustafson_speedup",
    "fit_amdahl",
    "amdahl_speedup",
    "AmdahlFit",
    "topics_by_area",
    "generate_quick_start_guide",
    "TrainingTopic",
    "TopicArea",
    "TRAINING_CATALOG",
    "AccelerationPlan",
    "ApplicationRecord",
    "ApplicationRegistry",
    "ChallengeProblem",
    "ChallengeTracker",
    "Channel",
    "EarlyAccessCampaign",
    "FigureOfMerit",
    "FomKind",
    "FomMeasurement",
    "FomTracker",
    "IssueRecord",
    "KnowledgeBase",
    "Lesson",
    "PortingMotif",
    "ProjectReport",
    "ReadinessPhase",
    "ReviewVerdict",
    "SpeedupMeasurement",
    "TABLE1_EXPECTED",
    "TABLE2_EXPECTED",
    "build_default_registry",
    "convergence_to_frontier",
    "early_access_generations",
    "measure_speedup",
    "render_bar",
    "render_series",
    "render_table",
    "seed_paper_lessons",
    "within_band",
]
from repro.core.training import (
    TRAINING_CATALOG,
    TopicArea,
    TrainingTopic,
    generate_quick_start_guide,
    topics_by_area,
)
from repro.core.scaling import (
    AmdahlFit,
    amdahl_speedup,
    fit_amdahl,
    gustafson_speedup,
    scaling_study,
    weak_scaling_efficiency,
)
