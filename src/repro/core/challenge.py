"""Challenge problems, acceleration plans, and project reviews (§6).

The COE's quantitative tracking workflow: every team declares a challenge
problem + FOM + acceleration plan, files mid-project reports reviewed by
the Management Council, and closes with a final report against the stated
target.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.fom import FigureOfMerit, FomTracker


class ReviewVerdict(enum.Enum):
    ON_TRACK = "on track"
    AT_RISK = "at risk"
    OFF_TRACK = "off track"


@dataclass(frozen=True)
class ChallengeProblem:
    """A well-posed challenge problem (§6)."""

    application: str
    description: str
    fom: FigureOfMerit
    workload: str = ""


@dataclass(frozen=True)
class AccelerationPlan:
    """The declared route from Summit performance to the Frontier target."""

    application: str
    milestones: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.milestones:
            raise ValueError("a plan needs at least one milestone")


@dataclass
class ProjectReport:
    """A mid-project or final report snapshot."""

    application: str
    phase: str  # "mid-project" | "final"
    achieved_factor: float
    notes: str = ""

    def __post_init__(self) -> None:
        if self.phase not in ("mid-project", "final"):
            raise ValueError(f"unknown phase {self.phase!r}")


@dataclass
class ChallengeTracker:
    """One application's full quantitative-tracking record."""

    problem: ChallengeProblem
    plan: AccelerationPlan
    tracker: FomTracker = field(init=False)
    reports: list[ProjectReport] = field(default_factory=list)
    completed_milestones: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.plan.application != self.problem.application:
            raise ValueError("plan and problem belong to different applications")
        self.tracker = FomTracker(fom=self.problem.fom)

    def complete_milestone(self, index: int) -> None:
        if not 0 <= index < len(self.plan.milestones):
            raise ValueError(f"no milestone {index}")
        self.completed_milestones.add(index)

    @property
    def plan_progress(self) -> float:
        return len(self.completed_milestones) / len(self.plan.milestones)

    def file_report(self, phase: str, *, notes: str = "") -> ProjectReport:
        """Snapshot the latest measurement into a review report."""
        latest = self.tracker.latest
        factor = (
            self.problem.fom.achieved_factor(latest.value) if latest else 0.0
        )
        report = ProjectReport(
            application=self.problem.application,
            phase=phase,
            achieved_factor=factor,
            notes=notes,
        )
        self.reports.append(report)
        return report

    def review(self) -> ReviewVerdict:
        """The Management Council heuristic.

        On track: target met, or plan progress ahead of the achieved
        fraction needed.  At risk: progress lags or a regression was
        detected.  Off track: no measurements, or far behind with the plan
        nearly exhausted.
        """
        latest = self.tracker.latest
        if latest is None:
            return ReviewVerdict.OFF_TRACK
        achieved = self.problem.fom.achieved_factor(latest.value)
        needed = self.problem.fom.target_factor
        if achieved >= needed:
            return ReviewVerdict.ON_TRACK
        fraction = achieved / needed
        if self.tracker.regressions():
            return ReviewVerdict.AT_RISK
        if fraction >= self.plan_progress - 0.25:
            return ReviewVerdict.ON_TRACK
        if self.plan_progress > 0.75 and fraction < 0.5:
            return ReviewVerdict.OFF_TRACK
        return ReviewVerdict.AT_RISK
