"""Figures of merit and the COE's quantitative readiness tracking (§6).

"Application teams were expected to provide a well-posed challenge problem
and figure of merit (FOM) on Summit and an acceleration plan for Frontier
... This quantitative approach permitted early detection of software bugs
and performance regressions."

A :class:`FigureOfMerit` is a named, higher-is-better scalar with a
reference (Summit) value and a target factor; a :class:`FomTracker`
records measurements over time and flags regressions — the mechanism the
COE Management Council reviews ran on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FomKind(enum.Enum):
    THROUGHPUT = "throughput"  # e.g. grid points per second
    SPEEDUP = "speedup"  # ratio vs. a fixed baseline
    FLOPS = "flops"  # achieved operations per second


@dataclass(frozen=True)
class FigureOfMerit:
    """A project's FOM definition: higher is better by construction."""

    name: str
    kind: FomKind
    reference_value: float  # measured on the reference system (Summit)
    target_factor: float  # the CAAR/ECP acceleration commitment
    units: str = ""

    def __post_init__(self) -> None:
        if self.reference_value <= 0 or self.target_factor <= 0:
            raise ValueError("reference value and target factor must be positive")

    @property
    def target_value(self) -> float:
        return self.reference_value * self.target_factor

    def achieved_factor(self, measured: float) -> float:
        return measured / self.reference_value

    def meets_target(self, measured: float) -> bool:
        return measured >= self.target_value


@dataclass(frozen=True)
class FomMeasurement:
    """One measurement of a FOM on a named system."""

    system: str
    value: float
    label: str = ""


@dataclass
class FomTracker:
    """Measurement history plus regression detection for one FOM."""

    fom: FigureOfMerit
    history: list[FomMeasurement] = field(default_factory=list)
    #: a drop larger than this fraction vs. the running best is a regression
    regression_threshold: float = 0.05

    def record(self, system: str, value: float, *, label: str = "") -> FomMeasurement:
        if value <= 0:
            raise ValueError("FOM values must be positive")
        m = FomMeasurement(system=system, value=value, label=label)
        self.history.append(m)
        return m

    @property
    def best(self) -> float:
        if not self.history:
            return 0.0
        return max(m.value for m in self.history)

    @property
    def latest(self) -> FomMeasurement | None:
        return self.history[-1] if self.history else None

    def regressions(self) -> list[tuple[FomMeasurement, float]]:
        """Measurements that dropped >threshold below the prior best.

        Returns ``(measurement, fraction_below_best)`` pairs — the early
        warning the mid-project reports surfaced.
        """
        out: list[tuple[FomMeasurement, float]] = []
        best = 0.0
        for m in self.history:
            if best > 0 and m.value < (1.0 - self.regression_threshold) * best:
                out.append((m, 1.0 - m.value / best))
            best = max(best, m.value)
        return out

    def status(self) -> str:
        """One-line readiness status for reviews."""
        if not self.history:
            return f"{self.fom.name}: no measurements"
        latest = self.history[-1]
        factor = self.fom.achieved_factor(latest.value)
        met = "MET" if self.fom.meets_target(latest.value) else "below target"
        return (
            f"{self.fom.name}: {factor:.2f}x of reference on {latest.system} "
            f"(target {self.fom.target_factor:.1f}x, {met})"
        )
