"""Lessons-learned knowledge base and dissemination tracking (§5).

Hackathons surface issues; issues become lessons; lessons are disseminated
through webinars and distilled into user-guide sections so later teams
never re-triage the same problem — "Documenting known performance issues,
and their mitigation ... saved COE early-access users considerable time
... and avoided multiple teams triaging the same issue."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Channel(enum.Enum):
    HACKATHON = "hackathon"
    WEBINAR = "webinar"
    USER_GUIDE = "user guide"
    TICKET = "support ticket"
    LIAISON = "liaison meeting"


@dataclass(frozen=True)
class Lesson:
    """One lesson: the issue, its mitigation, who hit it first."""

    topic: str
    issue: str
    mitigation: str
    source_application: str
    source_channel: Channel = Channel.HACKATHON


@dataclass
class KnowledgeBase:
    """The COE Confluence-style lesson store with dissemination records."""

    lessons: list[Lesson] = field(default_factory=list)
    disseminated: dict[int, set[Channel]] = field(default_factory=dict)

    def add(self, lesson: Lesson) -> int:
        """Store a lesson; returns its id.  Near-duplicate topics from
        other teams are flagged as the re-triage the KB exists to avoid."""
        self.lessons.append(lesson)
        idx = len(self.lessons) - 1
        self.disseminated[idx] = {lesson.source_channel}
        return idx

    def duplicates_of(self, topic: str) -> list[int]:
        return [i for i, l in enumerate(self.lessons) if l.topic == topic]

    def disseminate(self, lesson_id: int, channel: Channel) -> None:
        if lesson_id not in self.disseminated:
            raise KeyError(f"no lesson {lesson_id}")
        self.disseminated[lesson_id].add(channel)

    def in_user_guide(self) -> list[Lesson]:
        """The lessons fully distilled into the user guide (§5's endpoint)."""
        return [
            self.lessons[i]
            for i, chans in self.disseminated.items()
            if Channel.USER_GUIDE in chans
        ]

    def triage_savings(self, teams_that_would_hit_it: int = 3) -> int:
        """Re-triages avoided: each guide lesson spares the other teams."""
        return len(self.in_user_guide()) * max(teams_that_would_hit_it - 1, 0)


def seed_paper_lessons() -> KnowledgeBase:
    """The concrete lessons the paper itself records."""
    kb = KnowledgeBase()
    entries = [
        Lesson("HIP API coverage",
               "developers assume every latest-CUDA feature exists in HIP",
               "publish the supported CUDA API version; list unreplicated features",
               "GAMESS", Channel.LIAISON),
        Lesson("OpenMP data movement",
               "per-loop implicit mapping moves arrays every kernel",
               "large structured TARGET DATA region with persistent MAP arrays",
               "GESTS", Channel.WEBINAR),
        Lesson("HIP + OpenMP in one compilation unit",
               "early compilers could not combine HIP and OpenMP",
               "co-designed build guidelines across team, vendor, integrator",
               "ExaSky", Channel.HACKATHON),
        Lesson("wavefront width",
               "kernels tuned for 32-wide warps lose half the lanes on CDNA",
               "restructure inner loops for wavefront 64",
               "ExaSky", Channel.HACKATHON),
        Lesson("device allocation latency",
               "frequent hipMalloc/hipFree serializes the device",
               "pool allocator (YAKL gator) for all device-resident allocations",
               "E3SM", Channel.WEBINAR),
        Lesson("register spills in divergent code",
               "intermittent segfaults and spills in highly divergent kernels",
               "compiler fix for double-precision constant spilling; kernel fission",
               "LAMMPS", Channel.HACKATHON),
        Lesson("UVM as a porting bridge",
               "unified memory eases porting but caps performance",
               "convert section by section under UVM, then remove it",
               "Pele", Channel.LIAISON),
    ]
    for e in entries:
        kb.add(e)
    return kb
