"""The porting-motif taxonomy of Table 1."""

from __future__ import annotations

import enum


class PortingMotif(enum.Enum):
    """The five optimization/porting motifs the paper classifies work by."""

    CUDA_HIP_PORTING = "CUDA/HIP Porting"
    LIBRARY_TUNING = "Library Tuning"
    PERFORMANCE_PORTABILITY = "Performance Portability"
    KERNEL_FUSION_FISSION = "Kernel Fusion/Fission"
    ALGORITHMIC_OPTIMIZATIONS = "Algorithmic Optimizations"


#: Table 1 exactly as printed: motif -> applications.
TABLE1_EXPECTED: dict[PortingMotif, tuple[str, ...]] = {
    PortingMotif.CUDA_HIP_PORTING: ("GAMESS", "CoMet", "NuCCOR", "COAST"),
    PortingMotif.LIBRARY_TUNING: ("GAMESS", "LSMS", "GESTS", "CoMet", "LAMMPS"),
    PortingMotif.PERFORMANCE_PORTABILITY: ("GESTS", "ExaSky", "E3SM", "NuCCOR", "Pele"),
    PortingMotif.KERNEL_FUSION_FISSION: ("E3SM", "Pele", "LAMMPS"),
    PortingMotif.ALGORITHMIC_OPTIMIZATIONS: (
        "LSMS", "ExaSky", "E3SM", "CoMet", "Pele", "LAMMPS",
    ),
}
