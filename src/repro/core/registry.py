"""Application registry: the metadata each code team declared to the COE."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.motifs import PortingMotif


@dataclass(frozen=True)
class ApplicationRecord:
    """One application's readiness metadata (paper Section 3 headers)."""

    name: str
    domain: str
    program: str  # "CAAR" | "ECP-AD" | "ECP-ST" | "other"
    motifs: frozenset[PortingMotif]
    programming_models: tuple[str, ...]
    libraries: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application needs a name")
        if self.program not in ("CAAR", "ECP-AD", "ECP-ST", "other"):
            raise ValueError(f"unknown program {self.program!r}")


class ApplicationRegistry:
    """The COE's roster of applications."""

    def __init__(self) -> None:
        self._apps: dict[str, ApplicationRecord] = {}

    def register(self, record: ApplicationRecord) -> None:
        if record.name in self._apps:
            raise ValueError(f"{record.name} is already registered")
        self._apps[record.name] = record

    def get(self, name: str) -> ApplicationRecord:
        if name not in self._apps:
            raise KeyError(f"unknown application {name!r}")
        return self._apps[name]

    def __len__(self) -> int:
        return len(self._apps)

    def __iter__(self):
        return iter(self._apps.values())

    def applications_for_motif(self, motif: PortingMotif) -> list[str]:
        """One row of Table 1."""
        return [a.name for a in self._apps.values() if motif in a.motifs]

    def motif_table(self) -> dict[PortingMotif, list[str]]:
        """The full Table 1 mapping."""
        return {m: self.applications_for_motif(m) for m in PortingMotif}


def build_default_registry() -> ApplicationRegistry:
    """The ten Section 3 applications with their paper-stated metadata."""
    reg = ApplicationRegistry()
    M = PortingMotif
    entries = [
        ApplicationRecord(
            name="GAMESS", domain="quantum chemistry", program="other",
            motifs=frozenset({M.CUDA_HIP_PORTING, M.LIBRARY_TUNING}),
            programming_models=("CUDA", "HIP", "OpenACC", "OpenMP", "MPI/GDDI"),
            libraries=("MAGMA", "rocBLAS", "Global Arrays", "EIGEN"),
            description="ab initio quantum chemistry; FMO/EFMO fragmentation",
        ),
        ApplicationRecord(
            name="LSMS", domain="first-principles materials", program="CAAR",
            motifs=frozenset({M.LIBRARY_TUNING, M.ALGORITHMIC_OPTIMIZATIONS}),
            programming_models=("HIP", "CUDA", "MPI"),
            libraries=("rocSOLVER", "rocBLAS", "cuBLAS"),
            description="multiple-scattering DFT, linear scaling in atoms",
        ),
        ApplicationRecord(
            name="GESTS", domain="turbulence DNS", program="CAAR",
            motifs=frozenset({M.LIBRARY_TUNING, M.PERFORMANCE_PORTABILITY}),
            programming_models=("OpenMP offload", "HIP", "CUDA", "MPI"),
            libraries=("rocFFT", "cuFFT"),
            description="pseudo-spectral DNS with custom 3-D FFT",
        ),
        ApplicationRecord(
            name="ExaSky", domain="cosmology", program="ECP-AD",
            motifs=frozenset({M.PERFORMANCE_PORTABILITY, M.ALGORITHMIC_OPTIMIZATIONS}),
            programming_models=("HIP", "OpenMP", "MPI"),
            libraries=("FFT",),
            description="HACC particle-based cosmology framework",
        ),
        ApplicationRecord(
            name="E3SM", domain="climate", program="ECP-AD",
            motifs=frozenset({
                M.PERFORMANCE_PORTABILITY, M.KERNEL_FUSION_FISSION,
                M.ALGORITHMIC_OPTIMIZATIONS,
            }),
            programming_models=("Kokkos", "YAKL", "MPI"),
            libraries=("Kokkos", "YAKL pool allocator"),
            description="E3SM-MMF multiscale climate, 1000-2000x realtime target",
        ),
        ApplicationRecord(
            name="CoMet", domain="comparative genomics", program="CAAR",
            motifs=frozenset({
                M.CUDA_HIP_PORTING, M.LIBRARY_TUNING, M.ALGORITHMIC_OPTIMIZATIONS,
            }),
            programming_models=("CUDA", "HIP", "MPI"),
            libraries=("rocBLAS", "rocPRIM"),
            description="vector-similarity (CCC) mining, mixed precision",
        ),
        ApplicationRecord(
            name="NuCCOR", domain="nuclear structure", program="CAAR",
            motifs=frozenset({M.CUDA_HIP_PORTING, M.PERFORMANCE_PORTABILITY}),
            programming_models=("Fortran", "CUDA Fortran", "hipfort", "OpenMP"),
            libraries=("rocBLAS",),
            description="coupled-cluster nuclei from first principles",
        ),
        ApplicationRecord(
            name="Pele", domain="combustion", program="ECP-AD",
            motifs=frozenset({
                M.PERFORMANCE_PORTABILITY, M.KERNEL_FUSION_FISSION,
                M.ALGORITHMIC_OPTIMIZATIONS,
            }),
            programming_models=("AMReX C++", "HIP", "CUDA", "MPI"),
            libraries=("AMReX", "SUNDIALS/CVODE", "MAGMA", "Thrust"),
            description="AMR reactive flow: PeleC (compressible), PeleLM(eX)",
        ),
        ApplicationRecord(
            name="COAST", domain="graph analytics / literature mining",
            program="other",
            motifs=frozenset({M.CUDA_HIP_PORTING}),
            programming_models=("CUDA", "HIP", "MPI"),
            libraries=(),
            description="all-pairs shortest path on knowledge graphs",
        ),
        ApplicationRecord(
            name="LAMMPS", domain="molecular dynamics", program="ECP-ST",
            motifs=frozenset({
                M.LIBRARY_TUNING, M.KERNEL_FUSION_FISSION,
                M.ALGORITHMIC_OPTIMIZATIONS,
            }),
            programming_models=("Kokkos", "HIP", "OpenMP", "MPI"),
            libraries=("Kokkos", "ROCm device libraries"),
            description="classical MD; ReaxFF on HNS for Frontier",
        ),
    ]
    for e in entries:
        reg.register(e)
    return reg
