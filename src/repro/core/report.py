"""Plain-text table/figure renderers used by the benchmark harnesses."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: str = "") -> str:
    """Fixed-width text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, points: Sequence[tuple[object, float]], *,
                  value_format: str = "{:.4g}") -> str:
    """One figure series as aligned (x, y) text rows."""
    lines = [f"# {name}"]
    for x, y in points:
        lines.append(f"  {str(x):24s} {value_format.format(y)}")
    return "\n".join(lines)


def render_bar(name: str, value: float, *, scale: float = 1.0, width: int = 50,
               value_format: str = "{:.3f}") -> str:
    """A single ASCII bar (for ratio-style figures like Figure 1)."""
    n = max(0, min(width, int(round(value / scale * width))))
    return f"{name:20s} |{'#' * n:<{width}}| {value_format.format(value)}"
