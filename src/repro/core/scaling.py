"""Scaling laws: the vocabulary of the paper's scaling claims.

Amdahl (strong scaling), Gustafson (weak scaling), the communication-
degraded weak-scaling model used throughout the app layer, and a
least-squares fitter that recovers the serial fraction from measured
speed-up curves — the analysis every CAAR report ran on its scaling data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def amdahl_speedup(p: int, serial_fraction: float) -> float:
    """Strong-scaling speed-up on *p* workers with serial fraction *s*."""
    if p < 1:
        raise ValueError("p must be >= 1")
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial fraction must be in [0, 1]")
    s = serial_fraction
    return 1.0 / (s + (1.0 - s) / p)


def gustafson_speedup(p: int, serial_fraction: float) -> float:
    """Weak-scaling (scaled) speed-up: s + p(1−s)."""
    if p < 1:
        raise ValueError("p must be >= 1")
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial fraction must be in [0, 1]")
    return serial_fraction + p * (1.0 - serial_fraction)


def weak_scaling_efficiency(p: int, *, compute_time: float,
                            comm_time_fn) -> float:
    """Efficiency t(1)/t(p) when per-step comm grows as ``comm_time_fn(p)``."""
    if p < 1:
        raise ValueError("p must be >= 1")
    base = compute_time + comm_time_fn(1)
    return base / (compute_time + comm_time_fn(p))


@dataclass(frozen=True)
class AmdahlFit:
    serial_fraction: float
    rms_error: float

    def predict(self, p: int) -> float:
        return amdahl_speedup(p, self.serial_fraction)


def fit_amdahl(workers: list[int], speedups: list[float]) -> AmdahlFit:
    """Least-squares fit of the serial fraction to measured speed-ups.

    Amdahl inverts linearly: 1/S = s + (1−s)/p, so the fit is linear in
    (1/p); we clamp the result into [0, 1].
    """
    if len(workers) != len(speedups) or len(workers) < 2:
        raise ValueError("need >= 2 matching (workers, speedup) points")
    if any(p < 1 for p in workers) or any(s <= 0 for s in speedups):
        raise ValueError("workers must be >= 1 and speedups positive")
    inv_p = np.array([1.0 / p for p in workers])
    inv_s = np.array([1.0 / s for s in speedups])
    # inv_s = s + (1-s)*inv_p  =>  inv_s = s*(1-inv_p) + inv_p
    a = 1.0 - inv_p
    denom = float(a @ a)
    s = float(a @ (inv_s - inv_p)) / denom if denom > 0 else 0.0
    s = min(max(s, 0.0), 1.0)
    fitted = np.array([amdahl_speedup(p, s) for p in workers])
    rms = float(np.sqrt(np.mean((fitted - np.array(speedups)) ** 2)))
    return AmdahlFit(serial_fraction=s, rms_error=rms)


def scaling_study(times_by_workers: dict[int, float]) -> dict[str, object]:
    """Summarize a strong-scaling measurement set.

    Returns speed-ups, parallel efficiencies, and the fitted Amdahl
    serial fraction — the table a CAAR mid-project report contains.
    """
    if 1 not in times_by_workers:
        raise ValueError("need a 1-worker baseline")
    base = times_by_workers[1]
    workers = sorted(times_by_workers)
    speedups = [base / times_by_workers[p] for p in workers]
    fit = fit_amdahl(workers, speedups)
    return {
        "workers": workers,
        "speedups": speedups,
        "efficiencies": [s / p for s, p in zip(speedups, workers)],
        "serial_fraction": fit.serial_fraction,
        "fit_rms": fit.rms_error,
    }
