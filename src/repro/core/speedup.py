"""The Table 2 harness: measured Summit→Frontier speed-ups per application."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: Table 2 exactly as printed (Frontier/Summit measured speed-ups).
TABLE2_EXPECTED: dict[str, float] = {
    "GAMESS": 5.0,
    "LSMS": 7.5,
    "GESTS": 5.0,
    "ExaSky": 4.2,
    "CoMet": 5.2,
    "NuCCOR": 6.1,
    "Pele": 4.2,
    "COAST": 7.4,
}


@dataclass(frozen=True)
class SpeedupMeasurement:
    """One application's Summit and Frontier timings for its challenge unit."""

    application: str
    summit_time: float
    frontier_time: float
    basis: str = ""  # what was timed (per-GPU kernel, full step, FOM unit)

    def __post_init__(self) -> None:
        if self.summit_time <= 0 or self.frontier_time <= 0:
            raise ValueError("timings must be positive")

    @property
    def speedup(self) -> float:
        return self.summit_time / self.frontier_time


def measure_speedup(application: str, summit_fn: Callable[[], float],
                    frontier_fn: Callable[[], float], *,
                    basis: str = "") -> SpeedupMeasurement:
    """Run an app's timing closures on both simulated systems."""
    return SpeedupMeasurement(
        application=application,
        summit_time=summit_fn(),
        frontier_time=frontier_fn(),
        basis=basis,
    )


def within_band(measured: float, expected: float, *, tolerance: float = 0.35) -> bool:
    """The reproduction criterion: shape agreement within ±tolerance.

    We reproduce on a simulator, not the authors' testbed; the check is
    that measured speed-ups land within a relative band of the paper's.
    """
    if expected <= 0:
        raise ValueError("expected speedup must be positive")
    return abs(measured - expected) / expected <= tolerance
