"""Early-access timeline and the readiness-phase model (§4, §6).

"Early access to software and hardware helped identify: A) functionality
problems, B) missing features, and C) performance problems, typically in
this order."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hardware.catalog import EARLY_ACCESS_PROGRESSION
from repro.hardware.machine import MachineSpec


class ReadinessPhase(enum.Enum):
    """The A→B→C progression of issues found on early hardware."""

    FUNCTIONALITY = 1  # does it run at all
    MISSING_FEATURES = 2  # what can't be expressed yet
    PERFORMANCE = 3  # how fast does it go


@dataclass(frozen=True)
class IssueRecord:
    """One issue found on an early-access system."""

    system: str
    phase: ReadinessPhase
    summary: str
    resolved: bool = False


@dataclass
class EarlyAccessCampaign:
    """An application team's passage through the early-access systems."""

    application: str
    issues: list[IssueRecord] = field(default_factory=list)

    def file_issue(self, system: str, phase: ReadinessPhase, summary: str) -> IssueRecord:
        rec = IssueRecord(system=system, phase=phase, summary=summary)
        self.issues.append(rec)
        return rec

    def resolve(self, index: int) -> None:
        if not 0 <= index < len(self.issues):
            raise ValueError(f"no issue {index}")
        old = self.issues[index]
        self.issues[index] = IssueRecord(
            system=old.system, phase=old.phase, summary=old.summary, resolved=True
        )

    def open_issues(self) -> list[IssueRecord]:
        return [i for i in self.issues if not i.resolved]

    def current_phase(self) -> ReadinessPhase:
        """The earliest phase with open issues: you cannot tune what does
        not run."""
        open_ = self.open_issues()
        if not open_:
            return ReadinessPhase.PERFORMANCE
        return min((i.phase for i in open_), key=lambda p: p.value)

    def phase_histogram(self) -> dict[ReadinessPhase, int]:
        out = {p: 0 for p in ReadinessPhase}
        for i in self.issues:
            out[i.phase] += 1
        return out


def early_access_generations() -> list[tuple[int, list[str]]]:
    """The §4 deployment progression grouped by generation."""
    gens: dict[int, list[str]] = {}
    for m in EARLY_ACCESS_PROGRESSION:
        gens.setdefault(m.generation, []).append(m.name)
    return sorted(gens.items())


def convergence_to_frontier(machine: MachineSpec, frontier: MachineSpec) -> float:
    """How architecturally close an early system is to Frontier, in [0, 1].

    Scores the node ingredients the §4 narrative tracks: GPU product,
    CPU product, interconnect, and GPUs per node.
    """
    score = 0.0
    if machine.node.gpu is not None and frontier.node.gpu is not None:
        if machine.node.gpu.name == frontier.node.gpu.name:
            score += 0.4
        elif machine.node.gpu.vendor == frontier.node.gpu.vendor:
            score += 0.2
    if machine.node.cpu.name == frontier.node.cpu.name:
        score += 0.2
    a, b = machine.node.interconnect, frontier.node.interconnect
    if a is not None and b is not None:
        if a.name == b.name:
            score += 0.2
        elif "Slingshot" in a.name and "Slingshot" in b.name:
            score += 0.1
    if machine.node.gpus_per_node == frontier.node.gpus_per_node:
        score += 0.2
    return score
