"""Training catalogue and quick-start-guide generation (§5).

"The OLCF, in coordination with HPE and AMD, created a quick-start guide
and organized a training workshop for each system ... Trainings covered a
wide spectrum of topics across hardware, software and system operations."

The catalogue holds the §5 topic list; :func:`generate_quick_start_guide`
renders a system's guide from its hardware spec plus the lessons that
reached user-guide status — the artifact pipeline §5 describes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.lessons import KnowledgeBase
from repro.hardware.machine import MachineSpec


class TopicArea(enum.Enum):
    HARDWARE = "hardware"
    SOFTWARE = "software"
    SYSTEM = "system operations"


@dataclass(frozen=True)
class TrainingTopic:
    title: str
    area: TopicArea
    summary: str


#: The §5 training catalogue, verbatim topics.
TRAINING_CATALOG: tuple[TrainingTopic, ...] = (
    TrainingTopic("Cache sizes and memory hierarchy", TopicArea.HARDWARE,
                  "per-CU LDS and L2 sizes; blocking for the hierarchy"),
    TrainingTopic("Hardware atomics", TopicArea.HARDWARE,
                  "which atomics are native vs CAS loops on CDNA"),
    TrainingTopic("Register spilling", TopicArea.HARDWARE,
                  "reading vgpr_spill_count; fission to stop spills"),
    TrainingTopic("Kernel launch latencies", TopicArea.HARDWARE,
                  "costs per launch; batching and same-stream pipelining"),
    TrainingTopic("Specialized SGEMM/DGEMM operations", TopicArea.SOFTWARE,
                  "MFMA paths, when libraries use them, shape tuning"),
    TrainingTopic("AMD Infinity Fabric interconnect", TopicArea.SOFTWARE,
                  "GCD-to-GCD and CPU-GPU coherent links"),
    TrainingTopic("HIPifying codes", TopicArea.SOFTWARE,
                  "hipify workflow, outdated-syntax pitfalls, API coverage"),
    TrainingTopic("Batch system call patterns", TopicArea.SYSTEM,
                  "srun layouts for 8 GCDs per node"),
    TrainingTopic("NUMA and affinity considerations", TopicArea.SYSTEM,
                  "binding ranks to the GCD nearest their L3 quadrant"),
)


def topics_by_area(area: TopicArea) -> list[TrainingTopic]:
    return [t for t in TRAINING_CATALOG if t.area is area]


def generate_quick_start_guide(machine: MachineSpec, kb: KnowledgeBase) -> str:
    """Render a Crusher-style quick-start guide for *machine*.

    Sections: system description (from the hardware spec), how it differs
    from Frontier (§4: docs "detailing how the accessible platform
    differed from the final system"), known issues (from the knowledge
    base's user-guide lessons), and the training catalogue.
    """
    from repro.core.timeline import convergence_to_frontier
    from repro.hardware.catalog import FRONTIER

    node = machine.node
    lines = [
        f"# {machine.name} Quick-Start Guide",
        "",
        "## System description",
        f"- {machine.describe()}",
    ]
    if node.has_gpus:
        assert node.gpu is not None
        lines.append(
            f"- GPUs: {node.gpus_per_node}x {node.gpu.name} per node "
            f"(wavefront {node.gpu.wavefront_size}, "
            f"{node.gpu.mem_capacity/2**30:.0f} GiB HBM each)"
        )
    if node.interconnect is not None:
        lines.append(f"- Interconnect: {node.interconnect.name}")
    conv = convergence_to_frontier(machine, FRONTIER)
    lines += [
        "",
        "## Differences from the Frontier node architecture",
        f"- architectural convergence score: {conv:.1f} / 1.0",
    ]
    if machine.name == "Frontier" or conv >= 1.0:
        lines.append("- none: this is the production node architecture")
    else:
        if node.gpu is not None and node.gpu.name != FRONTIER.node.gpu.name:
            lines.append(
                f"- GPU is {node.gpu.name}, not {FRONTIER.node.gpu.name}: "
                "do not tune cache blocking yet"
            )
        if node.gpus_per_node != FRONTIER.node.gpus_per_node:
            lines.append(
                f"- {node.gpus_per_node} devices/node vs Frontier's "
                f"{FRONTIER.node.gpus_per_node}: rank layouts will change"
            )
    guide_lessons = kb.in_user_guide()
    lines += ["", "## Known issues and mitigations"]
    if guide_lessons:
        for lesson in guide_lessons:
            lines.append(f"- **{lesson.topic}** ({lesson.source_application}): "
                         f"{lesson.issue} -> {lesson.mitigation}")
    else:
        lines.append("- none recorded yet")
    lines += ["", "## Training topics"]
    for area in TopicArea:
        lines.append(f"### {area.value.title()}")
        for t in topics_by_area(area):
            lines.append(f"- {t.title}: {t.summary}")
    return "\n".join(lines)
