"""Experiment harnesses: one module per paper table/figure + in-text claims."""

from repro.experiments.earlyaccess import (
    GenerationReport,
    ScalingPoint,
    prediction_improves_with_generation,
    run_ladder,
    spock_scaling_study,
)
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import (
    Figure2MeasuredResult,
    Figure2Result,
    run_figure2,
    run_figure2_measured,
)
from repro.experiments.intext import ALL_CLAIMS, IntextResult, run_intext
from repro.experiments.resilience_at_scale import (
    DalySweepResult,
    DalyValidationPoint,
    NodeOverheadPoint,
    OverheadCurveResult,
    run_daly_sweep,
    run_overhead_curve,
)
from repro.experiments.runner import full_report, run_all
from repro.experiments.scaling import (
    CometWeakScaling,
    GamessStrongScaling,
    PeleWeakScaling,
    ScalingCurve,
    ScalingPoint,
    ScalingWorkload,
    ValidationPoint,
    check_validation,
    strong_scaling_curve,
    validate_exemplar_vs_full,
    weak_scaling_curve,
)
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.tuning import render_tuning, run_tuning

__all__ = [
    "build_dashboard",
    "DashboardRow",
    "Dashboard",
    "GenerationReport",
    "ScalingPoint",
    "prediction_improves_with_generation",
    "run_ladder",
    "spock_scaling_study",
    "ALL_CLAIMS",
    "CometWeakScaling",
    "Figure1Result",
    "DalySweepResult",
    "DalyValidationPoint",
    "Figure2MeasuredResult",
    "Figure2Result",
    "NodeOverheadPoint",
    "OverheadCurveResult",
    "GamessStrongScaling",
    "IntextResult",
    "PeleWeakScaling",
    "ScalingCurve",
    "ScalingPoint",
    "ScalingWorkload",
    "Table1Result",
    "Table2Result",
    "ValidationPoint",
    "check_validation",
    "full_report",
    "run_all",
    "strong_scaling_curve",
    "validate_exemplar_vs_full",
    "weak_scaling_curve",
    "run_daly_sweep",
    "run_figure1",
    "run_figure2",
    "run_figure2_measured",
    "run_intext",
    "render_tuning",
    "run_tuning",
    "run_overhead_curve",
    "run_table1",
    "run_table2",
]
from repro.experiments.dashboard import Dashboard, DashboardRow, build_dashboard
