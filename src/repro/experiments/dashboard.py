"""The COE readiness dashboard: every application's quantitative status.

Ties the framework together the way the Management Council consumed it
(§6): each Table 2 application gets a challenge problem whose FOM
reference is its *measured* simulated-Summit value and whose target factor
is its CAAR/ECP-style commitment; the Frontier measurement is recorded,
reviewed, and rendered as one status table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import TABLE2_APPS
from repro.core.challenge import (
    AccelerationPlan,
    ChallengeProblem,
    ChallengeTracker,
    ReviewVerdict,
)
from repro.core.fom import FigureOfMerit, FomKind
from repro.core.report import render_table

#: Each application's committed acceleration factor (CAAR targeted 4x for
#: FOM-driven projects; per-GPU kernel commitments were lower).
TARGET_FACTORS: dict[str, float] = {
    "GAMESS": 4.0,
    "LSMS": 4.0,
    "GESTS": 4.0,
    "ExaSky": 3.0,
    "CoMet": 4.0,
    "NuCCOR": 4.0,
    "Pele": 3.5,
    "COAST": 4.0,
}

_MILESTONES = ("port to HIP", "early-access bring-up", "tune for MI250X",
               "full-scale Frontier run")


@dataclass(frozen=True)
class DashboardRow:
    application: str
    achieved_factor: float
    target_factor: float
    verdict: ReviewVerdict


@dataclass(frozen=True)
class Dashboard:
    rows: tuple[DashboardRow, ...]

    @property
    def all_on_track(self) -> bool:
        return all(r.verdict is ReviewVerdict.ON_TRACK for r in self.rows)

    def render(self) -> str:
        return render_table(
            ("Application", "Achieved", "Target", "Review"),
            [
                (r.application, f"{r.achieved_factor:.2f}x",
                 f"{r.target_factor:.1f}x", r.verdict.value)
                for r in self.rows
            ],
            title="COE readiness dashboard (final reviews)",
        )


def build_dashboard() -> Dashboard:
    """Run every Table 2 app on both machines and review it."""
    rows = []
    for name, module in TABLE2_APPS.items():
        # normalize every app to Summit == 1.0 (apps report different
        # units: per-GPU times, FOMs, system throughputs)
        speedup = module.speedup()
        fom = FigureOfMerit(
            name=f"{name} challenge throughput",
            kind=FomKind.THROUGHPUT,
            reference_value=1.0,
            target_factor=TARGET_FACTORS[name],
        )
        tracker = ChallengeTracker(
            problem=ChallengeProblem(application=name, description="", fom=fom),
            plan=AccelerationPlan(application=name, milestones=_MILESTONES),
        )
        for i in range(len(_MILESTONES)):
            tracker.complete_milestone(i)
        tracker.tracker.record("Summit", 1.0)
        tracker.tracker.record("Frontier", speedup)
        report = tracker.file_report("final")
        rows.append(DashboardRow(
            application=name,
            achieved_factor=report.achieved_factor,
            target_factor=TARGET_FACTORS[name],
            verdict=tracker.review(),
        ))
    return Dashboard(rows=tuple(rows))
