"""Section 4 experiment: the value of the early-access hardware ladder.

Quantifies the §4 narrative: each early-access generation was closer to
Frontier (architecture convergence), gave application kernels a
progressively more representative performance picture, and Spock/Birch
were "of sufficient scale to permit modest scaling studies".

The experiment runs a representative kernel bundle across
Poplar → Spock → Crusher → Frontier and a modest weak-scaling study on
Spock's node count, reporting per-generation performance and the
prediction error each system would have given for Frontier tuning
decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.timeline import convergence_to_frontier
from repro.gpu.kernel import KernelSpec
from repro.gpu.perfmodel import time_kernel
from repro.hardware.catalog import CRUSHER, FRONTIER, POPLAR, SPOCK
from repro.hardware.gpu import Precision
from repro.hardware.machine import MachineSpec
from repro.mpisim.costmodel import allreduce_time, link_parameters, ranks_per_nic

#: A representative application kernel bundle: one compute-bound, one
#: memory-bound, one register-hungry (the three tuning regimes).
REPRESENTATIVE_KERNELS: tuple[KernelSpec, ...] = (
    KernelSpec(name="gemm_like", flops=5e11, bytes_read=3e8, bytes_written=1e8,
               registers_per_thread=128),
    KernelSpec(name="stream_like", flops=2e8, bytes_read=4e9, bytes_written=2e9,
               registers_per_thread=48),
    KernelSpec(name="chem_like", flops=2e11, bytes_read=5e8, bytes_written=2e8,
               registers_per_thread=240, precision=Precision.FP64),
)


@dataclass(frozen=True)
class GenerationReport:
    machine: str
    generation: int
    convergence: float
    bundle_time: float
    frontier_prediction_error: float  # relative error predicting Frontier


def bundle_time(machine: MachineSpec) -> float:
    """Wall time of the kernel bundle on one device of *machine*."""
    gpu = machine.node.gpu
    if gpu is None:
        raise ValueError(f"{machine.name} has no GPUs")
    return sum(time_kernel(k, gpu).total_time for k in REPRESENTATIVE_KERNELS)


def run_ladder() -> list[GenerationReport]:
    """Per-generation report across the §4 progression."""
    t_frontier = bundle_time(FRONTIER)
    out = []
    for machine in (POPLAR, SPOCK, CRUSHER, FRONTIER):
        t = bundle_time(machine)
        out.append(GenerationReport(
            machine=machine.name,
            generation=machine.generation,
            convergence=convergence_to_frontier(machine, FRONTIER),
            bundle_time=t,
            frontier_prediction_error=abs(t - t_frontier) / t_frontier,
        ))
    return out


@dataclass(frozen=True)
class ScalingPoint:
    nodes: int
    efficiency: float


def spock_scaling_study(max_nodes: int = 36) -> list[ScalingPoint]:
    """A modest weak-scaling study at Spock's scale (§4).

    Per step: the bundle plus one allreduce whose cost grows with node
    count — the study shape users ran to sanity-check scaling behaviour
    before Frontier time existed.
    """
    if max_nodes < 1:
        raise ValueError("max_nodes must be positive")
    t_node = bundle_time(SPOCK)
    fabric = SPOCK.node.interconnect
    assert fabric is not None
    link = link_parameters(
        fabric, ranks_sharing_nic=ranks_per_nic(SPOCK.node.gpus_per_node, fabric),
        device_buffers=True,
    )
    points = []
    nodes = 1
    while nodes <= max_nodes:
        ranks = nodes * SPOCK.node.gpus_per_node
        t_comm = allreduce_time(ranks, 1 << 20, link)
        points.append(ScalingPoint(nodes=nodes, efficiency=t_node / (t_node + t_comm)))
        nodes *= 2
    return points


def prediction_improves_with_generation() -> bool:
    """The §4 payoff: later generations predict Frontier better."""
    errors = [r.frontier_prediction_error for r in run_ladder()]
    return all(a >= b for a, b in zip(errors, errors[1:]))
