"""Figure 1: HIP vs. CUDA relative performance of SHOC on Summit (§2.1).

Workflow reproduced end-to-end: each SHOC program's CUDA source is run on
the CUDA runtime, pushed through ``hipify``, and the translated text run
on the HIP runtime over the same V100 model.  Two series are reported —
relative performance with and without host-device data transfer — plus a
seeded measurement-noise term so the scatter of the published figure
(points between ~0.97 and ~1.02) is reproduced rather than a flat line.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.benchsuite.shoc import SHOC_SUITE, run_benchmark_cuda, run_benchmark_hip
from repro.core.report import render_bar, render_table

#: Run-to-run standard deviation of a SHOC measurement on Summit (~0.5 %).
MEASUREMENT_NOISE = 0.005


@dataclass(frozen=True)
class Figure1Row:
    benchmark: str
    relative_with_transfers: float
    relative_kernel_only: float


@dataclass(frozen=True)
class Figure1Result:
    rows: tuple[Figure1Row, ...]

    @property
    def mean_with_transfers(self) -> float:
        return float(np.mean([r.relative_with_transfers for r in self.rows]))

    @property
    def mean_kernel_only(self) -> float:
        return float(np.mean([r.relative_kernel_only for r in self.rows]))

    def render(self) -> str:
        lines = [
            "Figure 1: HIP performance relative to CUDA on Summit (V100)",
            "",
        ]
        for r in self.rows:
            lines.append(render_bar(r.benchmark, r.relative_with_transfers,
                                    scale=1.05))
        lines.append("")
        lines.append(
            f"mean (with transfers):    {self.mean_with_transfers:.3f}"
            "   [paper: 0.998]"
        )
        lines.append(
            f"mean (without transfers): {self.mean_kernel_only:.3f}"
            "   [paper: 0.999]"
        )
        return "\n".join(lines)

    def table(self) -> str:
        return render_table(
            ("Benchmark", "HIP/CUDA (with transfers)", "HIP/CUDA (kernel only)"),
            [(r.benchmark, f"{r.relative_with_transfers:.4f}",
              f"{r.relative_kernel_only:.4f}") for r in self.rows],
        )


def run_figure1(*, seed: int = 2023) -> Figure1Result:
    """Execute the full translate-and-compare pipeline."""
    rng = np.random.default_rng(seed)
    rows = []
    for bench in SHOC_SUITE:
        cuda = run_benchmark_cuda(bench)
        hip = run_benchmark_hip(bench)
        noise_total = rng.normal(1.0, MEASUREMENT_NOISE)
        noise_kernel = rng.normal(1.0, MEASUREMENT_NOISE)
        rows.append(Figure1Row(
            benchmark=bench.name,
            relative_with_transfers=(cuda.total_ms / hip.total_ms) * noise_total,
            relative_kernel_only=(cuda.kernel_ms / hip.kernel_ms) * noise_kernel,
        ))
    return Figure1Result(rows=tuple(rows))
