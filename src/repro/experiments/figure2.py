"""Figure 2: PeleC time-per-cell-per-timestep history (§3.8)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import pele
from repro.core.report import render_series, render_table


@dataclass(frozen=True)
class Figure2Result:
    single_node: tuple[tuple[str, str, str, float], ...]
    at_scale: tuple[tuple[str, str, str, float], ...]
    total_improvement: float

    def checks(self) -> dict[str, bool]:
        """Shape assertions against the paper's narrative."""
        times = [t for _, _, _, t in self.single_node]
        gains = [a / b for a, b in zip(times, times[1:])]
        gpu_port_gain = gains[2]  # Eagle -> Summit GPU port
        return {
            "total ~75x (band 50-110)": 50.0 <= self.total_improvement <= 110.0,
            "GPU port is the largest single gain": gpu_port_gain == max(gains),
            "monotone improvement after 2019": all(
                g >= 0.999 for g in gains[2:]
            ),
            "Frontier is the fastest point": times[-1] == min(times),
            "async ghost helps at scale": (
                self.at_scale[1][3] <= self.at_scale[0][3]
            ),
        }

    def render(self) -> str:
        parts = [
            "Figure 2: PeleC time per cell per timestep (single node)",
            render_series(
                "single-node",
                [(f"{d} {m:9s} {s}", t) for d, m, s, t in self.single_node],
                value_format="{:.3e} s",
            ),
            render_series(
                "4096 nodes",
                [(f"{d} {m:9s} {s}", t) for d, m, s, t in self.at_scale],
                value_format="{:.3e} s",
            ),
            f"total improvement Sept 2018 -> Mar 2023: {self.total_improvement:.1f}x"
            "   [paper: ~75x]",
        ]
        return "\n\n".join(parts)


def run_figure2() -> Figure2Result:
    return Figure2Result(
        single_node=tuple(pele.figure2_history()),
        at_scale=tuple(pele.figure2_scale_series()),
        total_improvement=pele.total_improvement(),
    )
