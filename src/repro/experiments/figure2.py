"""Figure 2: PeleC time-per-cell-per-timestep history (§3.8)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import pele
from repro.core.report import render_series, render_table


@dataclass(frozen=True)
class Figure2Result:
    single_node: tuple[tuple[str, str, str, float], ...]
    at_scale: tuple[tuple[str, str, str, float], ...]
    total_improvement: float

    def checks(self) -> dict[str, bool]:
        """Shape assertions against the paper's narrative."""
        times = [t for _, _, _, t in self.single_node]
        gains = [a / b for a, b in zip(times, times[1:])]
        gpu_port_gain = gains[2]  # Eagle -> Summit GPU port
        return {
            "total ~75x (band 50-110)": 50.0 <= self.total_improvement <= 110.0,
            "GPU port is the largest single gain": gpu_port_gain == max(gains),
            "monotone improvement after 2019": all(
                g >= 0.999 for g in gains[2:]
            ),
            "Frontier is the fastest point": times[-1] == min(times),
            "async ghost helps at scale": (
                self.at_scale[1][3] <= self.at_scale[0][3]
            ),
        }

    def render(self) -> str:
        parts = [
            "Figure 2: PeleC time per cell per timestep (single node)",
            render_series(
                "single-node",
                [(f"{d} {m:9s} {s}", t) for d, m, s, t in self.single_node],
                value_format="{:.3e} s",
            ),
            render_series(
                "4096 nodes",
                [(f"{d} {m:9s} {s}", t) for d, m, s, t in self.at_scale],
                value_format="{:.3e} s",
            ),
            f"total improvement Sept 2018 -> Mar 2023: {self.total_improvement:.1f}x"
            "   [paper: ~75x]",
        ]
        return "\n\n".join(parts)


def run_figure2() -> Figure2Result:
    return Figure2Result(
        single_node=tuple(pele.figure2_history()),
        at_scale=tuple(pele.figure2_scale_series()),
        total_improvement=pele.total_improvement(),
    )


@dataclass(frozen=True)
class Figure2MeasuredResult:
    """Figure 2 plus a *measured* run of its central lever.

    The modeled history attributes the 2020 jump to the cvode-batched
    code state.  ``chemistry_stage`` re-enacts that lever on the
    reproduction's own integrators: the same drm19-scale field advanced
    once by a per-cell scalar BDF loop and once by the batched BDF with
    generated kernels and batched LU, with wall clocks for both.
    """

    modeled: Figure2Result
    chemistry_stage: dict

    def checks(self) -> dict[str, bool]:
        out = dict(self.modeled.checks())
        stage = self.chemistry_stage
        out["measured batched chemistry beats scalar loop"] = (
            stage["speedup"] > 1.0
        )
        out["scalar and batched solutions agree"] = (
            stage["max_rel_deviation"] < 1e-5
        )
        return out

    def render(self) -> str:
        stage = self.chemistry_stage
        measured = "\n".join([
            "measured batched-chemistry ablation "
            f"({stage['ncells']} cells, dt={stage['dt']:.0e} s):",
            f"  scalar per-cell loop : {stage['t_scalar']:.3f} s",
            f"  batched BDF + LU     : {stage['t_batched']:.3f} s",
            f"  speedup              : {stage['speedup']:.1f}x",
            f"  max relative deviation: {stage['max_rel_deviation']:.2e}",
        ])
        return self.modeled.render() + "\n\n" + measured


def run_figure2_measured(*, ncells: int = 32, dt: float = 1e-9,
                         seed: int = 0) -> Figure2MeasuredResult:
    """Figure 2 with the cvode-batched lever actually executed.

    Slower than :func:`run_figure2` (it integrates real stiff chemistry
    twice); intended for benchmarks, not the fast test tier.
    """
    return Figure2MeasuredResult(
        modeled=run_figure2(),
        chemistry_stage=pele.measured_chemistry_speedup(
            ncells=ncells, dt=dt, seed=seed
        ),
    )
