"""Figure 2: PeleC time-per-cell-per-timestep history (§3.8)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import pele
from repro.core.report import render_series


@dataclass(frozen=True)
class Figure2Result:
    single_node: tuple[tuple[str, str, str, float], ...]
    at_scale: tuple[tuple[str, str, str, float], ...]
    total_improvement: float

    def checks(self) -> dict[str, bool]:
        """Shape assertions against the paper's narrative."""
        times = [t for _, _, _, t in self.single_node]
        gains = [a / b for a, b in zip(times, times[1:])]
        gpu_port_gain = gains[2]  # Eagle -> Summit GPU port
        return {
            "total ~75x (band 50-110)": 50.0 <= self.total_improvement <= 110.0,
            "GPU port is the largest single gain": gpu_port_gain == max(gains),
            "monotone improvement after 2019": all(
                g >= 0.999 for g in gains[2:]
            ),
            "Frontier is the fastest point": times[-1] == min(times),
            "async ghost helps at scale": (
                self.at_scale[1][3] <= self.at_scale[0][3]
            ),
        }

    def render(self) -> str:
        parts = [
            "Figure 2: PeleC time per cell per timestep (single node)",
            render_series(
                "single-node",
                [(f"{d} {m:9s} {s}", t) for d, m, s, t in self.single_node],
                value_format="{:.3e} s",
            ),
            render_series(
                "4096 nodes",
                [(f"{d} {m:9s} {s}", t) for d, m, s, t in self.at_scale],
                value_format="{:.3e} s",
            ),
            f"total improvement Sept 2018 -> Mar 2023: {self.total_improvement:.1f}x"
            "   [paper: ~75x]",
        ]
        return "\n\n".join(parts)


def run_figure2() -> Figure2Result:
    return Figure2Result(
        single_node=tuple(pele.figure2_history()),
        at_scale=tuple(pele.figure2_scale_series()),
        total_improvement=pele.total_improvement(),
    )


@dataclass(frozen=True)
class Figure2MeasuredResult:
    """Figure 2 plus a *measured* run of its central lever.

    The modeled history attributes the 2020 jump to the cvode-batched
    code state.  ``chemistry_stage`` re-enacts that lever on the
    reproduction's own integrators: the same drm19-scale field advanced
    once by a per-cell scalar BDF loop and once by the batched BDF with
    generated kernels and batched LU, with wall clocks for both.
    """

    modeled: Figure2Result
    chemistry_stage: dict

    def checks(self) -> dict[str, bool]:
        out = dict(self.modeled.checks())
        stage = self.chemistry_stage
        out["measured batched chemistry beats scalar loop"] = (
            stage["speedup"] > 1.0
        )
        out["scalar and batched solutions agree"] = (
            stage["max_rel_deviation"] < 1e-5
        )
        return out

    def render(self) -> str:
        stage = self.chemistry_stage
        measured = "\n".join([
            "measured batched-chemistry ablation "
            f"({stage['ncells']} cells, dt={stage['dt']:.0e} s):",
            f"  scalar per-cell loop : {stage['t_scalar']:.3f} s",
            f"  batched BDF + LU     : {stage['t_batched']:.3f} s",
            f"  speedup              : {stage['speedup']:.1f}x",
            f"  max relative deviation: {stage['max_rel_deviation']:.2e}",
        ])
        return self.modeled.render() + "\n\n" + measured


def run_figure2_measured(*, ncells: int = 32, dt: float = 1e-9,
                         seed: int = 0,
                         backend=None) -> Figure2MeasuredResult:
    """Figure 2 with the cvode-batched lever actually executed.

    Slower than :func:`run_figure2` (it integrates real stiff chemistry
    twice); intended for benchmarks, not the fast test tier.  ``backend``
    selects the array engine for the batched side (``None`` = auto).
    """
    return Figure2MeasuredResult(
        modeled=run_figure2(),
        chemistry_stage=pele.measured_chemistry_speedup(
            ncells=ncells, dt=dt, seed=seed, backend=backend
        ),
    )


@dataclass(frozen=True)
class Figure2ResilientResult:
    """A Figure 2 campaign driven through the resilience subsystem.

    The paper's Figure 2 points exist because multi-week PeleC campaigns
    at 4 096 nodes survived node losses; this result object carries the
    evidence the reproduction can do the same: the fault-injected run's
    accounting, and a bit-identical comparison of its final chemistry
    field against a failure-free run of the same campaign.
    """

    stats: "object"  # ResilienceStats (kept loose to avoid a hard import cycle)
    nsteps: int
    checkpoint_interval: int
    mtbf: float
    bit_identical: bool
    young_daly_interval_steps: float

    def checks(self) -> dict[str, bool]:
        return {
            "campaign completed all steps": self.stats.steps_completed == self.nsteps,
            "at least one failure was recovered": self.stats.recoveries >= 1,
            "final state bit-identical to failure-free run": self.bit_identical,
        }

    def render(self) -> str:
        return "\n".join([
            "Figure 2 resilient campaign (cvode-batched state, "
            f"{self.nsteps} steps, checkpoint every {self.checkpoint_interval}, "
            f"MTBF {self.mtbf:.0f}s):",
            "  " + self.stats.describe(),
            f"  Young/Daly optimal interval: "
            f"{self.young_daly_interval_steps:.2g} steps",
            f"  bit-identical vs failure-free: {self.bit_identical}",
        ])


def run_figure2_resilient(*, nsteps: int = 10, checkpoint_interval: int = 3,
                          ncells: int = 12, mtbf: float = 8.0,
                          seed: int = 0, tracer=None,
                          device=None, backend=None) -> Figure2ResilientResult:
    """Drive the Figure 2 chemistry campaign through ``ResilientRunner``
    with injected rank failures, and verify restart exactness.

    The MTBF default is tuned to the campaign's simulated length so a
    handful of failures fire (a compressed stand-in for hours-scale MTBF
    over a weeks-scale campaign).

    ``tracer`` (a :class:`repro.observability.Tracer`) and ``device`` (a
    :class:`repro.gpu.device.Device`) observe the *fault-injected* run
    only — communicator traffic, checkpoint/recovery spans, solver
    rounds and kernel launches all land on one timeline — while the
    failure-free reference stays bare, so the bit-identical check also
    proves instrumentation never feeds back into the physics.

    ``backend`` selects the array engine for *both* the fault-injected
    and the failure-free campaign — recovery must replay the failure-free
    trajectory bit for bit on whatever backend actually runs, so the
    contract is per backend, not numpy-only.
    """
    from repro.resilience import (
        CheckpointCostModel,
        FaultInjector,
        FaultKind,
        ResilientRunner,
        encode_snapshot,
        young_daly_interval,
    )
    import numpy as np

    from repro.hardware.catalog import SUMMIT
    from repro.hardware.interconnect import IB_EDR_DUAL
    from repro.mpisim import SimComm

    span = None
    if tracer is not None:
        span = tracer.begin("experiments.figure2_resilient",
                            cat="experiments", pid="experiments",
                            tid="campaign", nsteps=int(nsteps),
                            ncells=int(ncells))

    def campaign(**observers):
        return pele.PeleChemistryCampaign(ncells=ncells, seed=seed,
                                          backend=backend, **observers)

    # failure-free reference: same campaign, no injector, no observers
    reference = campaign()
    cost = CheckpointCostModel(restart_cost=2.0, latency=1e-3)
    clean = ResilientRunner(reference, checkpoint_interval=checkpoint_interval,
                            cost_model=cost)
    clean.run(nsteps)

    # fault-injected run through a simulated communicator
    fabric = SUMMIT.node.interconnect or IB_EDR_DUAL
    comm = SimComm(8, fabric, tracer=tracer)
    app = campaign(tracer=tracer, comm=comm, device=device)
    injector = FaultInjector(
        rng=np.random.default_rng(seed + 1),
        mtbf={FaultKind.RANK_FAILURE: mtbf},
        max_target=comm.nranks,
    )
    runner = ResilientRunner(app, checkpoint_interval=checkpoint_interval,
                             injector=injector, cost_model=cost, comm=comm,
                             max_retries=20, tracer=tracer)
    stats = runner.run(nsteps)
    if span is not None:
        tracer.end(span, recoveries=stats.recoveries)

    delta = cost.write_time(len(encode_snapshot(app.snapshot())))
    w_opt = young_daly_interval(delta, mtbf)
    return Figure2ResilientResult(
        stats=stats,
        nsteps=nsteps,
        checkpoint_interval=checkpoint_interval,
        mtbf=mtbf,
        bit_identical=bool(
            np.array_equal(app.C, reference.C)
            and np.array_equal(app.T, reference.T)
            and app.steps_done == reference.steps_done
        ),
        young_daly_interval_steps=w_opt / app.step_cost,
    )


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import argparse

    parser = argparse.ArgumentParser(
        description="Figure 2 with the cvode-batched lever measured")
    parser.add_argument("--ncells", type=int, default=32)
    parser.add_argument("--dt", type=float, default=1e-9)
    parser.add_argument("--backend", choices=("numpy", "numba", "auto"),
                        default="auto",
                        help="array backend for the batched chemistry "
                             "(auto = numba when installed, else numpy)")
    cli = parser.parse_args()
    result = run_figure2_measured(ncells=cli.ncells, dt=cli.dt,
                                  backend=cli.backend)
    print(result.render())
    print("backend: " + result.chemistry_stage["backend"])
    print(", ".join(f"{k}={'OK' if v else 'MISS'}"
                    for k, v in result.checks().items()))
