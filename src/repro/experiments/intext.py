"""The paper's quantitative in-text claims, one check each.

Each entry reproduces a number stated in the running text of Sections
2-3 and records measured-vs-paper with a band verdict.  These are the
"experiments" beyond the two tables and two figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.report import render_table


@dataclass(frozen=True)
class Claim:
    section: str
    description: str
    paper_value: float
    measure: Callable[[], float]
    #: relative band; some claims are one-sided thresholds
    band: float = 0.35
    one_sided_min: bool = False

    def evaluate(self) -> "ClaimResult":
        measured = self.measure()
        if self.one_sided_min:
            ok = measured >= self.paper_value
        else:
            ok = abs(measured - self.paper_value) / self.paper_value <= self.band
        return ClaimResult(claim=self, measured=measured, ok=ok)


@dataclass(frozen=True)
class ClaimResult:
    claim: Claim
    measured: float
    ok: bool


def _shoc_mean_with_transfers() -> float:
    from repro.experiments.figure1 import run_figure1

    return run_figure1().mean_with_transfers


def _shoc_mean_kernel_only() -> float:
    from repro.experiments.figure1 import run_figure1

    return run_figure1().mean_kernel_only


def _gests_fom() -> float:
    from repro.apps import gests

    return gests.fom_improvement()


def _gests_slab_advantage() -> float:
    from repro.apps import gests

    r = gests.slabs_vs_pencils()
    return r["pencils"].total / r["slabs"].total


def _exasky_fom() -> float:
    from repro.apps import exasky

    return exasky.speedup()


def _exasky_theta() -> float:
    from repro.apps import exasky

    return exasky.fom_vs_theta_baseline()


def _comet_exaflops() -> float:
    from repro.apps import comet

    return comet.system_exaflops()


def _comet_weak_scaling() -> float:
    from repro.apps import comet

    return min(comet.weak_scaling_efficiency([1, 64, 1024, 9074]).values())


def _comet_gemm_dominance() -> float:
    """Fraction of the tally-pipeline time spent in the count GEMM
    (§3.6: "overwhelmingly dominated by the mixed precision GEMM")."""
    from repro.apps.comet import ROCBLAS_CODESIGNED_EFFICIENCY, CometConfig
    from repro.gpu.perfmodel import time_kernel
    from repro.hardware.catalog import FRONTIER
    from repro.similarity.gemmtally import gemmtally_kernel_specs

    cfg = CometConfig()
    specs = gemmtally_kernel_specs(
        cfg.vectors_per_gpu, cfg.fields,
        efficiency=ROCBLAS_CODESIGNED_EFFICIENCY,
    )
    times = [time_kernel(s, FRONTIER.node.gpu).total_time for s in specs]
    return times[-1] / sum(times)


def _coast_v100_tf() -> float:
    from repro.apps import coast

    return coast.per_gpu_tflops()["V100"]


def _coast_mi250x_tf() -> float:
    from repro.apps import coast

    return coast.per_gpu_tflops()["MI250X"]


def _coast_frontier_ef() -> float:
    from repro.apps import coast

    return coast.system_petaflops()["Frontier"] / 1000.0


def _coast_summit_pf() -> float:
    from repro.apps import coast

    return coast.system_petaflops()["Summit"]


def _lammps_speedup() -> float:
    from repro.apps import lammps

    return lammps.optimization_speedup()


def _pele_weak_scaling() -> float:
    from repro.apps import pele
    from repro.hardware.catalog import FRONTIER

    return pele.weak_scaling_efficiency(FRONTIER, "frontier-tuned", 4096)


def _gamess_scaling_2048() -> float:
    from repro.apps import gamess

    return gamess.mbe_scaling(935, [2048])[2048]


def _e3sm_throughput() -> float:
    from repro.apps import e3sm
    from repro.hardware.catalog import FRONTIER

    return e3sm.run(FRONTIER.node.gpu).throughput


def _comet_scaled_exaflops() -> float:
    from repro.experiments.scaling import comet_full_machine_exaflops

    return comet_full_machine_exaflops()


def _pele_scaled_weak_scaling() -> float:
    from repro.experiments.scaling import pele_full_machine_weak_scaling

    return pele_full_machine_weak_scaling()


def _gamess_scaled_efficiency() -> float:
    from repro.experiments.scaling import gamess_full_machine_efficiency

    return gamess_full_machine_efficiency()


ALL_CLAIMS: tuple[Claim, ...] = (
    Claim("2.1", "SHOC HIP/CUDA mean, with transfers", 0.998,
          _shoc_mean_with_transfers, band=0.01),
    Claim("2.1", "SHOC HIP/CUDA mean, kernel only", 0.999,
          _shoc_mean_kernel_only, band=0.01),
    Claim("3.3", "GESTS FOM improvement > 5x", 4.0, _gests_fom,
          one_sided_min=True),
    Claim("3.3", "Slabs faster than pencils (ratio > 1)", 1.0,
          _gests_slab_advantage, one_sided_min=True),
    Claim("3.4", "ExaSky FOM factor vs Summit", 4.2, _exasky_fom),
    Claim("3.4", "ExaSky FOM vs Theta baseline ~230x", 230.0, _exasky_theta),
    Claim("3.6", "CoMet mixed-precision exaflops on 9074 nodes", 6.71,
          _comet_exaflops, band=0.25),
    Claim("3.6", "CoMet weak scaling near-perfect (min eff)", 0.99,
          _comet_weak_scaling, one_sided_min=True),
    Claim("3.6", "CoMet count GEMM dominates tally pipeline", 0.95,
          _comet_gemm_dominance, one_sided_min=True),
    Claim("3.9", "COAST kernel TF on one V100", 5.6, _coast_v100_tf, band=0.25),
    Claim("3.9", "COAST kernel TF on one MI250X", 30.6, _coast_mi250x_tf,
          band=0.25),
    Claim("3.9", "COAST Summit system PF", 136.0, _coast_summit_pf, band=0.35),
    Claim("3.9", "COAST Frontier system EF", 1.004, _coast_frontier_ef,
          band=0.35),
    Claim("3.10", "LAMMPS ReaxFF speedup > 1.5x", 1.5, _lammps_speedup,
          one_sided_min=True),
    Claim("3.8", "Pele weak-scaling efficiency > 0.8 at 4096 nodes", 0.8,
          _pele_weak_scaling, one_sided_min=True),
    Claim("3.1", "GAMESS near-ideal MBE scaling at 2048 nodes", 0.95,
          _gamess_scaling_2048, one_sided_min=True),
    Claim("3.5", "E3SM-MMF realtime throughput > 1000x", 1000.0,
          _e3sm_throughput, one_sided_min=True),
    # full-machine sweeps through the representative-rank engine: the
    # same numbers as the analytic checks above, but executed as
    # communicator campaigns at machine size (72,592 simulated ranks)
    Claim("3.6", "CoMet EF at 9,074 nodes via ScaledComm", 6.71,
          _comet_scaled_exaflops, band=0.25),
    Claim("3.8", "Pele weak scaling > 0.8 at 4,096 nodes via ScaledComm",
          0.8, _pele_scaled_weak_scaling, one_sided_min=True),
    Claim("3.1", "GAMESS MBE efficiency > 0.95 at 2,048 nodes via ScaledComm",
          0.95, _gamess_scaled_efficiency, one_sided_min=True),
)


@dataclass(frozen=True)
class IntextResult:
    results: tuple[ClaimResult, ...]

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.results)

    def render(self) -> str:
        return render_table(
            ("Section", "Claim", "Paper", "Measured", "Verdict"),
            [
                (r.claim.section, r.claim.description,
                 f"{r.claim.paper_value:g}", f"{r.measured:.4g}",
                 "OK" if r.ok else "MISS")
                for r in self.results
            ],
            title="In-text quantitative claims",
        )


def run_intext() -> IntextResult:
    return IntextResult(results=tuple(c.evaluate() for c in ALL_CLAIMS))
