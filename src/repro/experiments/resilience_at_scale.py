"""Resilience at machine scale: Daly validation on the scaled engine.

The fault-tolerance half of exascale readiness is only credible if the
simulated failure process and the analytic checkpoint theory agree.  This
experiment closes that loop at full-machine rank counts:

* **Daly validation** (:func:`run_daly_sweep`) — drive a fault-injected
  :class:`~repro.apps.exasky.ExaskyCampaign` through the
  :class:`~repro.resilience.runner.ResilientRunner` on a representative-
  rank :class:`~repro.mpisim.scaled.ScaledComm` modelling every rank of a
  4,096+-node machine, sweeping the checkpoint interval from ``W*/4`` to
  ``4 W*``.  The *measured* overhead-minimizing interval must land within
  2x of Young/Daly's ``W* = sqrt(2 delta M)`` — the acceptance test that
  the discrete-event failure process, the checkpoint cost accounting,
  and the first-order theory describe the same machine.
* **Overhead vs node count** (:func:`run_overhead_curve`) — the same
  campaign at each node count with its own Daly-optimal interval.
  System MTBF composes as ``M_node / N``, so resilience overhead grows
  roughly like ``sqrt(N)`` toward full machine scale — the reason the
  paper's applications budget checkpoint cadence per allocation size.

Campaigns run on a *compressed* timescale: one fixed
``time_compression`` (derived so ``W*`` lands at
:data:`TARGET_WSTAR_STEPS` steps at the reference node count) divides
every MTBF identically, preserving the 1/N shape while a weeks-long
campaign simulates in seconds.  Fault targets draw uniformly over all
machine ranks — 72,592 on the 9,074-node Frontier point — through
:func:`~repro.resilience.daly.scaled_fault_injector`.

Everything is deterministic given the seed tuple: same seeds, same
measured table.  This module is bench-tier (it steps thousands of
campaign steps); the fast test tier runs it with reduced seeds/steps.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.apps.exasky import ExaskyCampaign
from repro.core.report import render_series
from repro.hardware.catalog import FRONTIER
from repro.hardware.machine import MachineSpec
from repro.mpisim.partition import RankGroupPartitioner
from repro.mpisim.scaled import ScaledComm
from repro.resilience.daly import (
    predicted_overhead,
    scaled_fault_injector,
    system_mtbf,
    young_daly_interval,
)
from repro.resilience.runner import (
    CheckpointCostModel,
    ResilienceStats,
    ResilientRunner,
)
from repro.resilience.snapshot import encode_snapshot

#: steps of compute Young/Daly prescribes between checkpoints at the
#: reference node count — the compression anchor.  8 keeps the W*/4 ..
#: 4 W* sweep inside {2 .. 32} steps, cheap but discriminating.
TARGET_WSTAR_STEPS = 8
#: checkpoint write cost delta as a fraction of one step's cost
CHECKPOINT_STEP_FRACTION = 0.25
#: scheduler relaunch cost as a fraction of one step's cost
RESTART_STEP_FRACTION = 0.5


def _machine(nodes: int) -> MachineSpec:
    return dataclasses.replace(FRONTIER, nodes=int(nodes))


def _machine_ranks(machine: MachineSpec) -> int:
    return machine.nodes * max(machine.node.gpus_per_node, 1)


def _scaled_comm(machine: MachineSpec) -> ScaledComm:
    """Every machine rank, O(dozens) executed: endpoints partition."""
    ranks = _machine_ranks(machine)
    part = RankGroupPartitioner("endpoints").partition(ranks)
    return ScaledComm(
        ranks, machine.node.interconnect,
        ranks_per_node=max(machine.node.gpus_per_node, 1),
        device_buffers=machine.node.has_gpus, partition=part,
    )


def _calibrate(nparticles: int) -> tuple[float, float, CheckpointCostModel]:
    """``(step_cost, delta, cost_model)`` for the campaign at this size.

    The cost model is built backwards from the campaign's actual
    snapshot size so a checkpoint write costs exactly
    ``CHECKPOINT_STEP_FRACTION`` steps regardless of ``nparticles`` —
    the sweep's delta/M ratio is a design constant, not an accident of
    the problem size.
    """
    probe = ExaskyCampaign(nparticles=nparticles, seed=0)
    dt_step = float(probe.step_cost)
    nbytes = len(encode_snapshot(probe.snapshot()))
    delta = CHECKPOINT_STEP_FRACTION * dt_step
    cost_model = CheckpointCostModel(
        write_bandwidth=nbytes / delta,
        read_bandwidth=nbytes / delta,
        latency=0.0,
        restart_cost=RESTART_STEP_FRACTION * dt_step,
    )
    return dt_step, delta, cost_model


def _run_campaign(machine: MachineSpec, *, interval_steps: int, nsteps: int,
                  seed: int, time_compression: float, nparticles: int,
                  cost_model: CheckpointCostModel) -> ResilienceStats:
    app = ExaskyCampaign(nparticles=nparticles, seed=seed)
    comm = _scaled_comm(machine)
    injector = scaled_fault_injector(
        np.random.default_rng(seed), machine,
        machine_ranks=comm.machine_ranks,
        time_compression=time_compression,
    )
    runner = ResilientRunner(
        app, checkpoint_interval=interval_steps, injector=injector,
        cost_model=cost_model, comm=comm, policy="restart",
        backoff_base=0.0, max_retries=64,
    )
    return runner.run(nsteps)


@dataclass(frozen=True)
class DalyValidationPoint:
    """One checkpoint interval's measured-vs-predicted overhead."""

    interval_steps: int
    measured_overhead: float  # mean overhead fraction over the seeds
    predicted_overhead: float  # first-order Young/Daly expectation
    failures: int  # fatal faults fired across all seeds


@dataclass(frozen=True)
class DalySweepResult:
    """Measured optimal checkpoint interval vs Young/Daly ``W*``."""

    nodes: int
    machine_ranks: int
    step_cost: float
    checkpoint_cost: float
    mtbf_seconds: float  # compressed system MTBF on the campaign clock
    w_star_seconds: float
    w_star_steps: float
    points: tuple[DalyValidationPoint, ...]
    seeds: tuple[int, ...]
    nsteps: int

    @property
    def measured_best_steps(self) -> int:
        return min(self.points,
                   key=lambda p: p.measured_overhead).interval_steps

    @property
    def daly_agreement_factor(self) -> float:
        """``max(measured/W*, W*/measured)`` — 1.0 is perfect agreement."""
        best = float(self.measured_best_steps)
        return max(best / self.w_star_steps, self.w_star_steps / best)

    def checks(self) -> dict[str, bool]:
        overheads = [p.measured_overhead for p in self.points]
        return {
            "measured optimum within 2x of Young/Daly W*":
                self.daly_agreement_factor <= 2.0 + 1e-9,
            "faults actually fired":
                sum(p.failures for p in self.points) > 0,
            "overhead curve is not flat":
                max(overheads) > 1.05 * min(overheads),
            "extremes beat by the interior": min(overheads) < min(
                self.points[0].measured_overhead,
                self.points[-1].measured_overhead,
            ),
        }

    def render(self) -> str:
        rows = [
            (f"W*x{p.interval_steps / self.w_star_steps:<4g} "
             f"({p.interval_steps:3d} steps, {p.failures} faults)",
             p.measured_overhead)
            for p in self.points
        ]
        return "\n".join([
            f"Daly validation at {self.nodes} nodes "
            f"({self.machine_ranks} machine ranks), "
            f"{len(self.seeds)} seeds x {self.nsteps} steps:",
            render_series("measured overhead fraction", rows,
                          value_format="{:.4f}"),
            f"Young/Daly W* = {self.w_star_steps:.1f} steps; measured "
            f"optimum {self.measured_best_steps} steps "
            f"(agreement factor {self.daly_agreement_factor:.2f}x, "
            f"acceptance <= 2x)",
        ])


def run_daly_sweep(*, nodes: int = 4096, seeds: tuple[int, ...] = (0, 1, 2, 3),
                   nsteps: int = 256, nparticles: int = 96,
                   interval_factors: tuple[float, ...] = (
                       0.25, 0.5, 1.0, 2.0, 4.0),
                   ) -> DalySweepResult:
    """Measure the optimal checkpoint interval at machine scale.

    Sweeps ``interval_factors x W*`` checkpoint intervals over seeded
    fault-injected campaigns on a ScaledComm modelling all
    ``nodes x gpus_per_node`` ranks, and reports measured overhead
    against :func:`~repro.resilience.daly.predicted_overhead`.
    """
    machine = _machine(nodes)
    dt_step, delta, cost_model = _calibrate(nparticles)
    w_star = TARGET_WSTAR_STEPS * dt_step
    # the MTBF that makes w_star optimal; compression maps the machine's
    # real system MTBF onto it without touching its 1/N node scaling
    m_eff = w_star * w_star / (2.0 * delta)
    compression = system_mtbf(machine) / m_eff
    intervals = sorted({
        max(1, round(TARGET_WSTAR_STEPS * f)) for f in interval_factors
    })
    points = []
    for steps in intervals:
        overheads, failures = [], 0
        for seed in seeds:
            stats = _run_campaign(
                machine, interval_steps=steps, nsteps=nsteps, seed=seed,
                time_compression=compression, nparticles=nparticles,
                cost_model=cost_model,
            )
            overheads.append(stats.overhead_fraction)
            failures += sum(stats.failures_by_kind.values())
        points.append(DalyValidationPoint(
            interval_steps=steps,
            measured_overhead=float(np.mean(overheads)),
            predicted_overhead=predicted_overhead(
                steps * dt_step, delta, m_eff,
                restart_cost=cost_model.restart_cost,
            ),
            failures=failures,
        ))
    return DalySweepResult(
        nodes=machine.nodes, machine_ranks=_machine_ranks(machine),
        step_cost=dt_step, checkpoint_cost=delta, mtbf_seconds=m_eff,
        w_star_seconds=young_daly_interval(delta, m_eff),
        w_star_steps=young_daly_interval(delta, m_eff) / dt_step,
        points=tuple(points), seeds=tuple(seeds), nsteps=int(nsteps),
    )


@dataclass(frozen=True)
class NodeOverheadPoint:
    """Resilience overhead at one node count, at its own Daly interval."""

    nodes: int
    machine_ranks: int
    interval_steps: int
    measured_overhead: float
    predicted_overhead: float
    failures: int


@dataclass(frozen=True)
class OverheadCurveResult:
    """Resilience overhead vs node count at fixed time compression."""

    points: tuple[NodeOverheadPoint, ...]
    seeds: tuple[int, ...]
    nsteps: int

    def checks(self) -> dict[str, bool]:
        first, last = self.points[0], self.points[-1]
        return {
            "overhead grows toward full machine":
                last.measured_overhead > first.measured_overhead,
            "full-machine point saw faults": last.failures > 0,
            "Daly interval shrinks with node count":
                last.interval_steps < first.interval_steps,
        }

    def render(self) -> str:
        rows = [
            (f"{p.nodes:5d} nodes ({p.machine_ranks:6d} ranks, "
             f"W*={p.interval_steps} steps, {p.failures} faults)",
             p.measured_overhead)
            for p in self.points
        ]
        return "\n".join([
            f"Resilience overhead vs node count "
            f"({len(self.seeds)} seeds x {self.nsteps} steps, "
            "each at its own Young/Daly interval):",
            render_series("measured overhead fraction", rows,
                          value_format="{:.4f}"),
        ])


def run_overhead_curve(*, node_counts: tuple[int, ...] = (
                           1024, 2048, 4096, 9074),
                       seeds: tuple[int, ...] = (0, 1, 2),
                       nsteps: int = 192, nparticles: int = 96,
                       ) -> OverheadCurveResult:
    """Resilience overhead from partial allocations to the full machine.

    One ``time_compression`` (anchored at the largest count) serves
    every point, so MTBF differences between points are *only* the
    ``M_node / N`` composition law; each point checkpoints at its own
    Daly-optimal interval, exactly as a production campaign would.
    """
    if not node_counts:
        raise ValueError("need at least one node count")
    dt_step, delta, cost_model = _calibrate(nparticles)
    w_ref = TARGET_WSTAR_STEPS * dt_step
    m_ref = w_ref * w_ref / (2.0 * delta)
    compression = system_mtbf(_machine(max(node_counts))) / m_ref
    points = []
    for nodes in sorted(int(n) for n in node_counts):
        machine = _machine(nodes)
        m_eff = system_mtbf(machine) / compression
        steps = max(1, round(young_daly_interval(delta, m_eff) / dt_step))
        overheads, failures = [], 0
        for seed in seeds:
            stats = _run_campaign(
                machine, interval_steps=steps, nsteps=nsteps, seed=seed,
                time_compression=compression, nparticles=nparticles,
                cost_model=cost_model,
            )
            overheads.append(stats.overhead_fraction)
            failures += sum(stats.failures_by_kind.values())
        points.append(NodeOverheadPoint(
            nodes=nodes, machine_ranks=_machine_ranks(machine),
            interval_steps=steps,
            measured_overhead=float(np.mean(overheads)),
            predicted_overhead=predicted_overhead(
                steps * dt_step, delta, m_eff,
                restart_cost=cost_model.restart_cost,
            ),
            failures=failures,
        ))
    return OverheadCurveResult(points=tuple(points), seeds=tuple(seeds),
                               nsteps=int(nsteps))
