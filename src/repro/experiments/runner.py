"""Run every experiment and render the paper-vs-measured report."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.intext import IntextResult, run_intext
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.observability.tracer import Tracer


def run_all(*, tracer: "Tracer | None" = None) -> dict[str, object]:
    """Execute every experiment; returns results keyed by artifact name.

    With a ``tracer``, each experiment runs inside a campaign-level span
    on the ``experiments`` lane (ordinal tick timeline), so the merged
    trace shows where a full reproduction run spends its artifacts.
    """
    experiments = (
        ("figure1", run_figure1),
        ("table1", run_table1),
        ("table2", run_table2),
        ("figure2", run_figure2),
        ("intext", run_intext),
    )
    results: dict[str, object] = {}
    for name, run in experiments:
        if tracer is None:
            results[name] = run()
        else:
            with tracer.span(f"experiments.{name}", cat="experiments",
                             pid="experiments", tid="campaign"):
                results[name] = run()
            tracer.metrics.counter("experiments.artifacts").inc()
    return results


def full_report() -> str:
    """The EXPERIMENTS.md-style consolidated text report."""
    r = run_all()
    fig1: Figure1Result = r["figure1"]  # type: ignore[assignment]
    tab1: Table1Result = r["table1"]  # type: ignore[assignment]
    tab2: Table2Result = r["table2"]  # type: ignore[assignment]
    fig2: Figure2Result = r["figure2"]  # type: ignore[assignment]
    intext: IntextResult = r["intext"]  # type: ignore[assignment]
    parts = [
        fig1.render(),
        tab1.render(),
        f"Table 1 matches the paper exactly: {tab1.matches_paper()}",
        tab2.render(),
        fig2.render(),
        "Figure 2 shape checks: " + ", ".join(
            f"{k}={'OK' if v else 'MISS'}" for k, v in fig2.checks().items()
        ),
        intext.render(),
    ]
    return "\n\n" + "\n\n".join(parts) + "\n"


if __name__ == "__main__":  # pragma: no cover - CLI entry
    print(full_report())
