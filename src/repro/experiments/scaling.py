"""Full-machine weak/strong scaling through the representative-rank engine.

The paper's biggest in-text claims are scaling claims — CoMet's 6.71 EF
on 9,074 Frontier nodes with near-perfect weak scaling (§3.6), Pele's
>80 % weak-scaling efficiency at 4,096 nodes (§3.8), GAMESS's near-ideal
MBE scaling to 2,048 nodes (§3.1) — but an all-live
:class:`~repro.mpisim.comm.SimComm` executes every rank in-process and
tops out at a few dozen ranks.  This module sweeps those claims to
machine size on :class:`~repro.mpisim.scaled.ScaledComm`: each app
workload names a rank partition (node-role classes for the
collective-dominated CoMet sweep, 3-D boundary classes for Pele's halo
pattern, task-count classes for the GAMESS MBE farm), executes only the
class exemplars, and pays the full-machine collective costs through the
Hockney models.

The drivers are communicator-agnostic: they speak ``comm.nranks`` values,
``comm.representatives`` global positions and ``comm.rank_weights``, so
the same campaign runs on a SimComm (all live), a ScaledComm with the
all-live partition (``R = P``, bit-identical by construction) and a
ScaledComm with exemplars (``R ≪ P``) — the differential
:func:`validate_exemplar_vs_full` exploits exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.report import render_table
from repro.hardware.catalog import FRONTIER
from repro.mpisim import (
    BlockDecomposition,
    RankGroupPartitioner,
    RankPartition,
    ScaledComm,
    SimComm,
    balanced_block_grid,
    balanced_counts,
    partition_from_labels,
)

#: The 10-point node sweep of the full-machine curves: 8 nodes up to the
#: 9,074 nodes of the CoMet run (§3.6).
DEFAULT_NODE_COUNTS: tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024,
                                        4096, 9074)
#: 3-point smoke sweeps for the CI `--quick` mode.
QUICK_WEAK_NODE_COUNTS: tuple[int, ...] = (8, 1024, 9074)
QUICK_STRONG_NODE_COUNTS: tuple[int, ...] = (8, 512, 2048)

#: Execution modes of :meth:`ScalingWorkload.build_comm`.
MODES = ("live", "exact", "scaled")


@dataclass(frozen=True)
class ScalingPoint:
    nodes: int
    ranks: int
    live_ranks: int
    step_time: float  # simulated seconds per step
    efficiency: float
    metric: float | None = None  # app headline at this size (EF for CoMet)


@dataclass(frozen=True)
class ScalingCurve:
    app: str
    mode: str  # "weak" | "strong"
    metric_label: str | None
    points: tuple[ScalingPoint, ...]

    def efficiency_at(self, nodes: int) -> float:
        for p in self.points:
            if p.nodes == nodes:
                return p.efficiency
        raise KeyError(f"no {nodes}-node point in the {self.app} curve")

    def render(self) -> str:
        header = ["Nodes", "Ranks", "Live", "Step (s)", "Efficiency"]
        if self.metric_label:
            header.append(self.metric_label)
        rows = []
        for p in self.points:
            row = [str(p.nodes), str(p.ranks), str(p.live_ranks),
                   f"{p.step_time:.4g}", f"{p.efficiency:.4f}"]
            if self.metric_label:
                row.append("-" if p.metric is None else f"{p.metric:.4g}")
            rows.append(tuple(row))
        return render_table(tuple(header), rows,
                            title=f"{self.app} {self.mode} scaling "
                                  "(representative-rank engine)")


class ScalingWorkload:
    """One app's scaling campaign, written against the comm-agnostic API."""

    name = "workload"
    gpus_per_node = 8
    metric_label: str | None = None

    def ranks_for(self, nodes: int) -> int:
        return nodes * self.gpus_per_node

    def build_partition(self, nodes: int) -> RankPartition:
        raise NotImplementedError

    def build_comm(self, nodes: int, *, mode: str = "scaled",
                   tracer=None) -> SimComm:
        """``live``: all-rank SimComm.  ``exact``: ScaledComm with the
        all-live partition (R = P).  ``scaled``: exemplars only."""
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
        ranks = self.ranks_for(nodes)
        fabric = FRONTIER.node.interconnect
        if mode == "live":
            return SimComm(ranks, fabric, ranks_per_node=self.gpus_per_node,
                           device_buffers=True, tracer=tracer)
        partition = self.build_partition(nodes) if mode == "scaled" else None
        return ScaledComm(ranks, fabric, ranks_per_node=self.gpus_per_node,
                          device_buffers=True, tracer=tracer,
                          partition=partition)

    def run(self, comm: SimComm, nodes: int, *, steps: int) -> None:
        raise NotImplementedError

    def metric(self, nodes: int, step_time: float) -> float | None:
        return None


def _measure(workload: ScalingWorkload, nodes: int, *, mode: str,
             steps: int, tracer=None) -> tuple[float, int, int]:
    """Returns (simulated step time, machine ranks, live ranks)."""
    comm = workload.build_comm(nodes, mode=mode, tracer=tracer)
    workload.run(comm, nodes, steps=steps)
    return comm.elapsed / steps, comm.machine_ranks, comm.nranks


class CometWeakScaling(ScalingWorkload):
    """§3.6: one CCC tally pass per GCD per step + a results reduction.

    The computation is embarrassingly block-parallel, so the rank classes
    are the node-role ones (first/mid/last node × leader/follower): six
    exemplars carry a 72,592-rank machine.
    """

    name = "comet"
    metric_label = "EF"

    def __init__(self, cfg=None) -> None:
        from repro.apps.comet import (
            ROCBLAS_CODESIGNED_EFFICIENCY,
            CometConfig,
            gpu_time,
        )
        from repro.similarity.ccc import ccc_gemm_flops

        self.cfg = cfg if cfg is not None else CometConfig()
        self._t_gpu = gpu_time(FRONTIER.node.gpu, self.cfg,
                               efficiency=ROCBLAS_CODESIGNED_EFFICIENCY)
        self._useful_flops = ccc_gemm_flops(self.cfg.vectors_per_gpu,
                                            self.cfg.fields)

    def build_partition(self, nodes: int) -> RankPartition:
        return RankGroupPartitioner("node-role").partition(
            self.ranks_for(nodes), ranks_per_node=self.gpus_per_node)

    def run(self, comm: SimComm, nodes: int, *, steps: int) -> None:
        tally_bytes = 8.0 * self.cfg.vectors_per_gpu
        for _ in range(steps):
            comm.advance_all(self._t_gpu)
            comm.reduce([1.0] * comm.nranks, tally_bytes)

    def metric(self, nodes: int, step_time: float) -> float:
        """Achieved mixed-precision EF at this size (§3.6: 6.71 at 9,074)."""
        return (self.ranks_for(nodes) * self._useful_flops
                / step_time / 1e18)


class PeleWeakScaling(ScalingWorkload):
    """§3.8: asynchronous ghost exchange overlapped with the node step.

    Rank classes are the 3-D boundary classes of the process grid (≤27
    corner/edge/face/interior exemplars), the halo symmetry AMReX block
    decompositions expose.
    """

    name = "pele"
    interior_fraction = 0.9

    def __init__(self, state: str = "frontier-tuned") -> None:
        from repro.apps.pele import (
            CELLS_PER_NODE,
            PeleConfig,
            single_node_step_time,
        )

        self.cfg = PeleConfig()
        self.state = state
        self._t_node = single_node_step_time(FRONTIER, state, self.cfg)
        per_rank_cells = CELLS_PER_NODE // self.gpus_per_node
        face = round(per_rank_cells ** (2 / 3))
        nspec = self.cfg.mechanism.n_species
        self._halo_bytes = 4 * face * (nspec + 5) * 8.0

    def decomposition(self, nodes: int) -> BlockDecomposition:
        px, py, pz = balanced_block_grid(self.ranks_for(nodes))
        return BlockDecomposition(nx=px, ny=py, nz=pz, px=px, py=py, pz=pz)

    def build_partition(self, nodes: int) -> RankPartition:
        return RankGroupPartitioner("block3d").partition(
            self.ranks_for(nodes), decomposition=self.decomposition(nodes))

    def run(self, comm: SimComm, nodes: int, *, steps: int) -> None:
        dec = self.decomposition(nodes)
        interior = self.interior_fraction * self._t_node
        tail = self._t_node - interior
        for _ in range(steps):
            op = comm.ineighbor_exchange(dec.neighbors, self._halo_bytes)
            comm.advance_all(interior)
            op.wait()
            comm.advance_all(tail)
            comm.allreduce([0.0] * comm.nranks, 8.0, op=np.maximum)


class GamessStrongScaling(ScalingWorkload):
    """§3.1: the MBE task farm — 935 molecules → 437,580 monomer+dimer
    tasks spread over the GCDs, then an energy reduction.

    Under the balanced block distribution every rank carries ``base`` or
    ``base+1`` tasks, so two exemplars carry the whole machine and the
    ceil/floor imbalance — the entire efficiency story — is exact.
    """

    name = "gamess"

    def __init__(self, n_molecules: int = 935) -> None:
        from repro.apps.gamess import GamessConfig, run_frontier

        self.n_molecules = n_molecules
        self.n_tasks = n_molecules + n_molecules * (n_molecules - 1) // 2
        self._t_frag = run_frontier(GamessConfig())

    def task_counts(self, nodes: int) -> np.ndarray:
        return balanced_counts(self.n_tasks, self.ranks_for(nodes))

    def build_partition(self, nodes: int) -> RankPartition:
        labels = [f"tasks{c}" for c in self.task_counts(nodes).tolist()]
        return partition_from_labels(labels)

    def run(self, comm: SimComm, nodes: int, *, steps: int) -> None:
        counts = self.task_counts(nodes)
        per_live = counts[np.asarray(comm.representatives)] * self._t_frag
        for _ in range(steps):
            comm.advance_all(per_live)
            comm.reduce([0.0] * comm.nranks, 8.0)

    def ideal_step_time(self, nodes: int) -> float:
        return self.n_tasks * self._t_frag / self.ranks_for(nodes)


WORKLOADS = {
    "comet": CometWeakScaling,
    "pele": PeleWeakScaling,
    "gamess": GamessStrongScaling,
}


def weak_scaling_curve(workload: ScalingWorkload,
                       node_counts: Sequence[int] = DEFAULT_NODE_COUNTS, *,
                       mode: str = "scaled", steps: int = 2,
                       tracer=None) -> ScalingCurve:
    """Efficiency vs. the smallest node count at fixed per-rank work."""
    points = []
    base_time: float | None = None
    for nodes in node_counts:
        t, ranks, live = _measure(workload, nodes, mode=mode, steps=steps,
                                  tracer=tracer)
        if base_time is None:
            base_time = t
        points.append(ScalingPoint(nodes, ranks, live, t, base_time / t,
                                   workload.metric(nodes, t)))
    return ScalingCurve(workload.name, "weak", workload.metric_label,
                        tuple(points))


def strong_scaling_curve(workload: ScalingWorkload,
                         node_counts: Sequence[int] = QUICK_STRONG_NODE_COUNTS,
                         *, mode: str = "scaled", steps: int = 2,
                         tracer=None) -> ScalingCurve:
    """Efficiency = (t₀·P₀)/(t·P) vs. the smallest node count at fixed
    total work."""
    points = []
    base: tuple[float, int] | None = None
    for nodes in node_counts:
        t, ranks, live = _measure(workload, nodes, mode=mode, steps=steps,
                                  tracer=tracer)
        if base is None:
            base = (t, ranks)
        eff = (base[0] * base[1]) / (t * ranks)
        points.append(ScalingPoint(nodes, ranks, live, t, eff,
                                   workload.metric(nodes, t)))
    return ScalingCurve(workload.name, "strong", workload.metric_label,
                        tuple(points))


# -- exemplar-vs-full differential ------------------------------------------------


@dataclass(frozen=True)
class ValidationPoint:
    app: str
    nodes: int
    ranks: int
    live_ranks: int
    live_time: float    # all-rank SimComm
    exact_time: float   # ScaledComm, R = P
    scaled_time: float  # ScaledComm, exemplars only

    @property
    def bit_identical(self) -> bool:
        """R = P must reproduce the all-live run exactly."""
        return self.exact_time == self.live_time

    @property
    def rel_error(self) -> float:
        """Exemplar-mode deviation from the all-live run."""
        if self.live_time == 0.0:
            return abs(self.scaled_time)
        return abs(self.scaled_time - self.live_time) / self.live_time


def validate_exemplar_vs_full(workload: ScalingWorkload,
                              node_counts: Sequence[int] = (1, 2, 8, 64), *,
                              steps: int = 2,
                              ) -> tuple[ValidationPoint, ...]:
    """Run the same campaign all-live, R = P and exemplars-only at the
    overlapping (live-feasible) sizes."""
    out = []
    for nodes in node_counts:
        t_live, ranks, _ = _measure(workload, nodes, mode="live", steps=steps)
        t_exact, _, _ = _measure(workload, nodes, mode="exact", steps=steps)
        t_scaled, _, live = _measure(workload, nodes, mode="scaled",
                                     steps=steps)
        out.append(ValidationPoint(workload.name, nodes, ranks, live,
                                   t_live, t_exact, t_scaled))
    return tuple(out)


def check_validation(points: Sequence[ValidationPoint], *,
                     tol: float = 1e-9) -> None:
    """Raise if any point breaks bit-identity (R = P) or tolerance (R < P)."""
    for p in points:
        if not p.bit_identical:
            raise ValueError(
                f"{p.app} at {p.nodes} nodes: R = P mode diverged from the "
                f"all-live run ({p.exact_time!r} != {p.live_time!r})")
        if p.rel_error > tol:
            raise ValueError(
                f"{p.app} at {p.nodes} nodes: exemplar mode off by "
                f"{p.rel_error:.2e} (> {tol:g})")


def render_validation(points: Sequence[ValidationPoint]) -> str:
    return render_table(
        ("App", "Nodes", "Ranks", "Live", "All-live (s)", "R=P (s)",
         "Exemplar (s)", "Rel err", "Bit-id"),
        [
            (p.app, str(p.nodes), str(p.ranks), str(p.live_ranks),
             f"{p.live_time:.6g}", f"{p.exact_time:.6g}",
             f"{p.scaled_time:.6g}", f"{p.rel_error:.2e}",
             "yes" if p.bit_identical else "NO")
            for p in points
        ],
        title="Exemplar-vs-full differential",
    )


# -- full-machine claim measures (wired into experiments.intext) -----------------


def comet_full_machine_exaflops(*, nodes: int = 9074, steps: int = 2) -> float:
    """§3.6: 6.71 EF on 9,074 Frontier nodes, swept through ScaledComm."""
    w = CometWeakScaling()
    t, _, _ = _measure(w, nodes, mode="scaled", steps=steps)
    return w.metric(nodes, t)


def pele_full_machine_weak_scaling(*, nodes: int = 4096,
                                   steps: int = 2) -> float:
    """§3.8: weak-scaling efficiency at 4,096 nodes vs. one node."""
    w = PeleWeakScaling()
    t_base, _, _ = _measure(w, 1, mode="scaled", steps=steps)
    t_full, _, _ = _measure(w, nodes, mode="scaled", steps=steps)
    return t_base / t_full


def gamess_full_machine_efficiency(*, nodes: int = 2048,
                                   steps: int = 2) -> float:
    """§3.1: MBE parallel efficiency vs. ideal at 2,048 nodes."""
    w = GamessStrongScaling()
    t, _, _ = _measure(w, nodes, mode="scaled", steps=steps)
    return w.ideal_step_time(nodes) / t
