"""Table 1: the porting-motif ↔ application matrix, from the registry."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.motifs import TABLE1_EXPECTED, PortingMotif
from repro.core.registry import ApplicationRegistry, build_default_registry
from repro.core.report import render_table


@dataclass(frozen=True)
class Table1Result:
    rows: dict[PortingMotif, list[str]]

    def matches_paper(self) -> bool:
        return all(
            sorted(self.rows[m]) == sorted(TABLE1_EXPECTED[m]) for m in PortingMotif
        )

    def mismatches(self) -> dict[PortingMotif, tuple[list[str], list[str]]]:
        out = {}
        for m in PortingMotif:
            got, exp = sorted(self.rows[m]), sorted(TABLE1_EXPECTED[m])
            if got != exp:
                out[m] = (got, exp)
        return out

    def render(self) -> str:
        return render_table(
            ("Porting Motif", "Applications"),
            [(m.value, ", ".join(self.rows[m])) for m in PortingMotif],
            title="Table 1: Application Porting Motifs",
        )


def run_table1(registry: ApplicationRegistry | None = None) -> Table1Result:
    reg = registry if registry is not None else build_default_registry()
    return Table1Result(rows=reg.motif_table())
