"""Table 2: Summit→Frontier speed-ups for the eight measured applications.

Every number is computed by running the application's challenge unit on
the simulated Summit and Frontier; nothing is copied from the paper except
the expected column used for the band check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import TABLE2_APPS
from repro.core.report import render_table
from repro.core.speedup import TABLE2_EXPECTED, within_band

#: The measurement basis per application (what the paper's number is of).
BASIS: dict[str, str] = {
    "GAMESS": "fragment-level RI-MP2 kernel, per GPU",
    "LSMS": "FePt per-GPU LIZ calculation",
    "GESTS": "PSDNS FOM (N^3/t_wall), 32768^3 on 4096 nodes",
    "ExaSky": "gravity FOM, weak-scaled to 8192 nodes",
    "CoMet": "bit-packed CCC tally pipeline (pack + count-GEMM), per GPU",
    "NuCCOR": "CC contraction throughput, per GPU",
    "Pele": "PeleC time/cell/step, best code states",
    "COAST": "system APSP throughput (Gordon Bell runs)",
}


@dataclass(frozen=True)
class Table2Row:
    application: str
    measured: float
    expected: float

    @property
    def in_band(self) -> bool:
        return within_band(self.measured, self.expected)


@dataclass(frozen=True)
class Table2Result:
    rows: tuple[Table2Row, ...]

    @property
    def all_in_band(self) -> bool:
        return all(r.in_band for r in self.rows)

    def render(self) -> str:
        return render_table(
            ("Application", "Measured (sim)", "Paper", "Band ±35%"),
            [
                (r.application, f"{r.measured:.2f}", f"{r.expected:.1f}",
                 "OK" if r.in_band else "MISS")
                for r in self.rows
            ],
            title="Table 2: Observed application speed-ups, Summit -> Frontier",
        )


def run_table2() -> Table2Result:
    rows = []
    for name, module in TABLE2_APPS.items():
        rows.append(Table2Row(
            application=name,
            measured=module.speedup(),
            expected=TABLE2_EXPECTED[name],
        ))
    return Table2Result(rows=tuple(rows))
