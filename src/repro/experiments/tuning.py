"""Autotuning navigator experiment: tuned-vs-default across the fleet.

The paper's teams tuned launch configurations, checkpoint cadences and
communication algorithms by hand, one machine at a time (§2.2 Pele's
launch-latency war, §3.5 E3SM's kernel fission/fusion, the Young/Daly
budgeting every team repeated).  This experiment runs the
:mod:`repro.tuning` navigator end-to-end — the automated version of that
labor — and reports the tuned-vs-default margins across the ten apps on
Summit and Frontier, plus the two supporting knob domains.

Acceptance handles the repo's tests assert through this module:

* the tuner finds a strictly-better-than-default kernel config for most
  apps (the ISSUE floor is 6 of 10, on at least one machine);
* the full-budget checkpoint search lands within 2x of Young/Daly's W*;
* the report reproduces byte-for-byte from (seed, budget).
"""

from __future__ import annotations

from repro.tuning.navigator import TuningBudget, TuningReport, run_navigator


def run_tuning(*, seed: int = 0,
               quick: bool = False) -> TuningReport:
    """One navigator pass at the standard (or CI-quick) budget."""
    budget = TuningBudget.quick() if quick else TuningBudget()
    return run_navigator(seed=seed, budget=budget)


def render_tuning(report: TuningReport) -> str:
    return report.render()
