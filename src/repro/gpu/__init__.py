"""Simulated GPU execution model: kernels, occupancy, timing, memory, streams."""

from repro.gpu.device import Device, LaunchRecord
from repro.gpu.kernel import KernelSpec, cap_registers, fission, fuse
from repro.gpu.memory import (
    Allocation,
    DeviceAllocator,
    OutOfDeviceMemory,
    PoolAllocator,
    UnifiedMemory,
)
from repro.gpu.occupancy import (
    OccupancyResult,
    compute_occupancy,
    latency_hiding_factor,
    latency_hiding_from_waves,
    spill_traffic_bytes,
)
from repro.gpu.perfmodel import (
    KernelTiming,
    achieved_flops,
    divergence_factor,
    time_kernel,
    time_kernel_sequence,
)
from repro.gpu.stream import DeviceClock, Event, Stream
from repro.gpu.transfer import TransferTiming, d2d_time, d2h_time, h2d_time

__all__ = [
    "to_chrome_trace",
    "timeline_stats",
    "TimelineStats",
    "roofline_report",
    "roofline_curve",
    "place_kernel",
    "RooflinePoint",
    "profile_kernels",
    "assembly_report",
    "apply_compiler_fix",
    "MathLibrary",
    "KernelProfile",
    "AssemblyReport",
    "Allocation",
    "Device",
    "DeviceAllocator",
    "DeviceClock",
    "Event",
    "KernelSpec",
    "KernelTiming",
    "LaunchRecord",
    "OccupancyResult",
    "OutOfDeviceMemory",
    "PoolAllocator",
    "Stream",
    "TransferTiming",
    "UnifiedMemory",
    "achieved_flops",
    "cap_registers",
    "compute_occupancy",
    "d2d_time",
    "d2h_time",
    "divergence_factor",
    "fission",
    "fuse",
    "h2d_time",
    "latency_hiding_factor",
    "latency_hiding_from_waves",
    "spill_traffic_bytes",
    "time_kernel",
    "time_kernel_sequence",
]
from repro.gpu.profiler import (
    AssemblyReport,
    KernelProfile,
    MathLibrary,
    apply_compiler_fix,
    assembly_report,
    profile_kernels,
)
from repro.gpu.roofline import RooflinePoint, place_kernel, roofline_curve, roofline_report
from repro.gpu.trace import TimelineStats, timeline_stats, to_chrome_trace
