"""The simulated GPU device: spec + clock + streams + memory, in one object.

This is the execution engine both API layers (:mod:`repro.progmodel.cuda`
and :mod:`repro.progmodel.hip`) delegate to — the analogue of HIP being a
thin header over the underlying runtime, which is what makes Figure 1's
HIP≈CUDA result structural rather than accidental.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.kernel import KernelSpec
from repro.gpu.memory import Allocation, DeviceAllocator
from repro.gpu.perfmodel import KernelTiming, time_kernel
from repro.gpu.stream import DeviceClock, Event, Stream
from repro.gpu.transfer import d2d_time, d2h_time, h2d_time
from repro.hardware.gpu import GPUSpec


@dataclass
class LaunchRecord:
    """Trace entry for one kernel launch."""

    kernel: str
    stream_id: int
    enqueued_at: float
    completes_at: float
    timing: KernelTiming


class Device:
    """One simulated GPU with its own clock, streams, memory and trace."""

    def __init__(self, spec: GPUSpec, *, device_id: int = 0) -> None:
        self.spec = spec
        self.device_id = device_id
        self.clock = DeviceClock()
        self.allocator = DeviceAllocator(int(spec.mem_capacity))
        self.default_stream = self.clock.create_stream()
        self.trace: list[LaunchRecord] = []
        self.kernel_launches = 0
        self.bytes_h2d = 0
        self.bytes_d2h = 0

    # -- memory ------------------------------------------------------------

    def malloc(self, nbytes: int, *, tag: str = "") -> Allocation:
        alloc = self.allocator.malloc(nbytes, tag=tag)
        self.clock.host_busy(self.allocator.alloc_latency)
        return alloc

    def free(self, alloc: Allocation) -> None:
        self.allocator.free(alloc)
        self.clock.host_busy(self.allocator.alloc_latency)

    def reserve_remaining_memory(self, *, tag: str = "reserved") -> list[Allocation]:
        """Exhaust the device heap (fault injection: a leak or a
        neighbouring tenant); ``free`` the returned allocations to recover."""
        allocs = self.allocator.reserve_remaining(tag=tag)
        self.clock.host_busy(self.allocator.alloc_latency)
        return allocs

    # -- transfers ----------------------------------------------------------

    def memcpy_h2d(self, nbytes: int, *, stream: Stream | None = None, sync: bool = True) -> float:
        """Copy host→device; returns the transfer time charged."""
        t = h2d_time(nbytes, self.spec).time
        s = stream or self.default_stream
        s.enqueue(t)
        self.bytes_h2d += nbytes
        if sync:
            self.clock.synchronize_stream(s)
        return t

    def memcpy_d2h(self, nbytes: int, *, stream: Stream | None = None, sync: bool = True) -> float:
        t = d2h_time(nbytes, self.spec).time
        s = stream or self.default_stream
        s.enqueue(t)
        self.bytes_d2h += nbytes
        if sync:
            self.clock.synchronize_stream(s)
        return t

    def memcpy_d2d(self, nbytes: int, *, same_package: bool = False,
                   stream: Stream | None = None, sync: bool = True) -> float:
        """Device-to-device copy (in-package Infinity Fabric when
        ``same_package``, e.g. the two GCDs of one MI250X)."""
        t = d2d_time(nbytes, self.spec, same_package=same_package).time
        s = stream or self.default_stream
        s.enqueue(t)
        if sync:
            self.clock.synchronize_stream(s)
        return t

    def memset(self, nbytes: int, *, stream: Stream | None = None,
               sync: bool = True) -> float:
        """Device memset: a pure-bandwidth write of *nbytes*."""
        if nbytes < 0:
            raise ValueError("memset size must be non-negative")
        t = nbytes / self.spec.effective_bandwidth
        s = stream or self.default_stream
        s.enqueue(t, launch_latency=self.spec.kernel_launch_latency)
        if sync:
            self.clock.synchronize_stream(s)
        return t

    # -- kernels -------------------------------------------------------------

    def launch(self, kernel: KernelSpec, *, stream: Stream | None = None) -> LaunchRecord:
        """Asynchronously launch *kernel*; the host only pays the API cost."""
        s = stream or self.default_stream
        timing = time_kernel(kernel, self.spec)
        enqueued = self.clock.host_now
        completes = s.enqueue(timing.execution_time, launch_latency=timing.launch_latency)
        # Host-side API cost of issuing the launch (a fraction of device latency).
        self.clock.host_busy(0.25 * timing.launch_latency)
        rec = LaunchRecord(
            kernel=kernel.name,
            stream_id=s.stream_id,
            enqueued_at=enqueued,
            completes_at=completes,
            timing=timing,
        )
        self.trace.append(rec)
        self.kernel_launches += kernel.launch_count if kernel.launch_count else 1
        return rec

    def launch_sync(self, kernel: KernelSpec, *, stream: Stream | None = None) -> LaunchRecord:
        """Launch and wait; host time advances past completion."""
        rec = self.launch(kernel, stream=stream)
        self.clock.host_now = max(self.clock.host_now, rec.completes_at)
        return rec

    # -- control -------------------------------------------------------------

    def create_stream(self) -> Stream:
        return self.clock.create_stream()

    def create_event(self) -> Event:
        return self.clock.create_event()

    def synchronize(self) -> None:
        self.clock.synchronize_device()

    @property
    def elapsed(self) -> float:
        """Wall time so far: host clock after all blocking operations."""
        return self.clock.host_now

    @property
    def busy_until(self) -> float:
        return self.clock.device_idle_at
