"""Kernel resource descriptors and source-level transformations.

A :class:`KernelSpec` captures exactly the quantities the paper's teams used
to reason about performance: floating-point work and its precision, memory
traffic, register pressure (driving occupancy and spills), and control-flow
divergence (the ReaxFF story).  The descriptor is hardware-independent; the
timing comes from :mod:`repro.gpu.perfmodel` applied against a
:class:`repro.hardware.gpu.GPUSpec`.

Two structural transformations from the paper are implemented here:

* :func:`fuse` — merge several small kernels into one, summing work and
  taking the max register pressure (E3SM §3.5: fewer launches, possible
  register-pressure increase).
* :func:`fission` — split one large kernel into pieces, dividing work and
  reducing per-piece register pressure (E3SM/Pele: more launches, no spills).
* :func:`cap_registers` — a voluntary per-thread register ceiling
  (``__launch_bounds__`` / ``amdgpu-num-vgpr``): occupancy rises because the
  compiler allocates fewer registers, and the evicted values pay scratch
  traffic instead — the launch-config knob autotuners search first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.hardware.gpu import Precision


@dataclass(frozen=True)
class KernelSpec:
    """Architecture-independent description of one GPU kernel's resources.

    Parameters
    ----------
    name:
        Kernel identifier (used in traces and reports).
    flops:
        Floating-point operations performed per launch.
    bytes_read, bytes_written:
        Device-memory traffic per launch, in bytes.
    threads:
        Total work-items per launch.
    precision:
        Dominant arithmetic precision.
    uses_matrix_engine:
        Whether the kernel's FLOPs run on tensor cores / MFMA units.
    registers_per_thread:
        Architectural registers the compiler allocates per work-item.
    lds_per_workgroup / workgroup_size:
        Shared-memory usage, for the occupancy calculation.
    active_lane_fraction:
        Mean fraction of SIMD lanes doing useful work (1.0 = no
        divergence).  The ReaxFF torsion kernel pre-optimization sat near
        a few lanes out of 64.
    divergence_wavefront_sensitive:
        If True, the active fraction is interpreted as *expected active
        lanes per 32-wide warp*; running on a 64-wide machine halves the
        utilization again (the HACC gravity-kernel regression).
    launch_count:
        How many times the kernel is launched per measured step.
    """

    name: str
    flops: float
    bytes_read: float
    bytes_written: float = 0.0
    threads: int = 1 << 20
    precision: Precision = Precision.FP64
    uses_matrix_engine: bool = False
    registers_per_thread: int = 64
    lds_per_workgroup: int = 0
    workgroup_size: int = 256
    active_lane_fraction: float = 1.0
    divergence_wavefront_sensitive: bool = False
    launch_count: int = 1

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError(f"kernel {self.name!r}: negative resource counts")
        if not 0.0 < self.active_lane_fraction <= 1.0:
            raise ValueError(
                f"kernel {self.name!r}: active_lane_fraction must be in (0, 1], "
                f"got {self.active_lane_fraction}"
            )
        if self.threads <= 0 or self.workgroup_size <= 0:
            raise ValueError(f"kernel {self.name!r}: threads/workgroup must be positive")
        if self.launch_count <= 0:
            raise ValueError(f"kernel {self.name!r}: launch_count must be positive")
        # a kernel with zero or negative registers would silently report
        # full occupancy (the register constraint degenerates), so reject it
        if self.registers_per_thread < 1:
            raise ValueError(
                f"kernel {self.name!r}: registers_per_thread must be >= 1, "
                f"got {self.registers_per_thread}"
            )
        if self.lds_per_workgroup < 0:
            raise ValueError(f"kernel {self.name!r}: lds_per_workgroup must be >= 0")

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def arithmetic_intensity(self) -> float:
        """FLOP per byte of device-memory traffic."""
        if self.bytes_total == 0:
            return math.inf
        return self.flops / self.bytes_total

    def scaled(self, factor: float, *, name: str | None = None) -> "KernelSpec":
        """A copy with work (flops, bytes, threads) scaled by *factor*."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            name=name or self.name,
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            threads=max(1, int(self.threads * factor)),
        )


def fuse(kernels: list[KernelSpec], *, name: str | None = None) -> KernelSpec:
    """Fuse several kernels into one launch.

    Work sums; register pressure and LDS take the maximum plus a small
    additive term for live values crossing the old kernel boundaries
    (which is why over-aggressive fusion triggers spills).  Divergence is
    the work-weighted mean.  Intermediate arrays that existed only to
    carry data between the fused kernels are dropped: each interior
    boundary removes one write + one read of the smaller neighbour's
    traffic, which is the actual payoff of fusion beyond launch latency.
    """
    if not kernels:
        raise ValueError("cannot fuse an empty kernel list")
    if len({k.precision for k in kernels}) != 1:
        raise ValueError("fused kernels must share a precision")
    total_flops = sum(k.flops for k in kernels)
    reads = sum(k.bytes_read for k in kernels)
    writes = sum(k.bytes_written for k in kernels)
    for a, b in zip(kernels, kernels[1:]):
        saved = min(a.bytes_written, b.bytes_read)
        writes -= saved
        reads -= saved
    # Live values spanning old boundaries cost ~8 extra registers per joint.
    regs = max(k.registers_per_thread for k in kernels) + 8 * (len(kernels) - 1)
    lanes = (
        sum(k.active_lane_fraction * k.flops for k in kernels) / total_flops
        if total_flops > 0
        else min(k.active_lane_fraction for k in kernels)
    )
    return KernelSpec(
        name=name or "+".join(k.name for k in kernels),
        flops=total_flops,
        bytes_read=max(reads, 0.0),
        bytes_written=max(writes, 0.0),
        threads=max(k.threads for k in kernels),
        precision=kernels[0].precision,
        uses_matrix_engine=all(k.uses_matrix_engine for k in kernels),
        registers_per_thread=regs,
        lds_per_workgroup=max(k.lds_per_workgroup for k in kernels),
        workgroup_size=kernels[0].workgroup_size,
        active_lane_fraction=min(1.0, lanes),
        launch_count=1,
    )


def cap_registers(kernel: KernelSpec, cap: int) -> KernelSpec:
    """Voluntarily cap per-thread registers at *cap* (launch-bounds style).

    The compiler keeps the hottest *cap* values in registers and spills the
    rest to scratch up front, so occupancy is computed at the cap while the
    evicted values pay the same store+reload traffic the hardware spill
    model charges: ``2 accesses x 4 bytes x evicted x threads``, split
    evenly between reads and writes.  A cap at or above the kernel's demand
    is a no-op; caps below 32 are rejected (no real compiler goes lower).
    """
    if cap < 32:
        raise ValueError(f"register cap must be >= 32, got {cap}")
    if cap >= kernel.registers_per_thread:
        return kernel
    evicted = kernel.registers_per_thread - cap
    scratch = 4.0 * evicted * kernel.threads  # one store + one reload
    return replace(
        kernel,
        registers_per_thread=cap,
        bytes_read=kernel.bytes_read + scratch,
        bytes_written=kernel.bytes_written + scratch,
    )


def fission(kernel: KernelSpec, parts: int) -> list[KernelSpec]:
    """Split one kernel into *parts* pieces.

    Each piece carries ``1/parts`` of the work but must re-load the live
    state the original kept in registers, so per-piece traffic gains a
    spill-avoidance overhead term while register pressure drops roughly
    proportionally (floored at 32).  This mirrors E3SM's observation:
    more launches, lower register pressure, often lower total runtime
    once spills are eliminated.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if parts == 1:
        return [kernel]
    regs = max(32, int(math.ceil(kernel.registers_per_thread / parts)) + 8)
    # Each boundary re-materializes intermediates through memory.
    boundary_bytes = kernel.threads * 8.0 * 4  # ~4 doubles per thread per cut
    pieces = []
    for i in range(parts):
        pieces.append(
            replace(
                kernel,
                name=f"{kernel.name}.part{i}",
                flops=kernel.flops / parts,
                bytes_read=kernel.bytes_read / parts + (boundary_bytes if i > 0 else 0.0),
                bytes_written=kernel.bytes_written / parts
                + (boundary_bytes if i < parts - 1 else 0.0),
                registers_per_thread=regs,
                launch_count=1,
            )
        )
    return pieces
