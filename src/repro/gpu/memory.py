"""Device memory allocators.

Three allocation strategies from the paper:

* :class:`DeviceAllocator` — a "native" allocator whose every call costs a
  device synchronization (the latency E3SM suffered from);
* :class:`PoolAllocator` — the YAKL-style transparent pool: one up-front
  native allocation carved by a cheap, non-blocking first-fit allocator;
* :class:`UnifiedMemory` — UVM-style automatic migration with page-fault
  accounting (the Pele team's porting bridge, later removed for speed).

All allocators keep real byte-level bookkeeping so tests can assert
invariants (no overlap, exhaustive free, alignment), and an accumulated
simulated-time cost so the perf models can charge allocation latency.
"""

from __future__ import annotations

from dataclasses import dataclass


class OutOfDeviceMemory(RuntimeError):
    """Raised when an allocation cannot be satisfied."""


def _align_up(n: int, alignment: int) -> int:
    return (n + alignment - 1) // alignment * alignment


@dataclass
class Allocation:
    """One live device allocation (offset within the device heap)."""

    offset: int
    size: int
    tag: str = ""


class DeviceAllocator:
    """Native cudaMalloc/hipMalloc-style allocator.

    Every ``malloc``/``free`` implies a device synchronization, charged at
    ``alloc_latency`` seconds of simulated time — the cost that motivated
    YAKL's pool (§3.5).
    """

    #: hipMalloc-class latency per call, seconds.
    alloc_latency: float = 30e-6

    def __init__(self, capacity: int, *, alignment: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.alignment = alignment
        self._free: list[tuple[int, int]] = [(0, self.capacity)]  # (offset, size)
        self._live: dict[int, Allocation] = {}
        self.simulated_time = 0.0
        self.alloc_calls = 0
        self.free_calls = 0
        self.peak_bytes = 0
        self._used = 0

    @property
    def bytes_in_use(self) -> int:
        return self._used

    @property
    def bytes_free(self) -> int:
        return self.capacity - self._used

    def malloc(self, size: int, *, tag: str = "") -> Allocation:
        """Allocate *size* bytes; first-fit over the free list."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        need = _align_up(size, self.alignment)
        for i, (off, sz) in enumerate(self._free):
            if sz >= need:
                alloc = Allocation(offset=off, size=need, tag=tag)
                rest = sz - need
                if rest:
                    self._free[i] = (off + need, rest)
                else:
                    del self._free[i]
                self._live[off] = alloc
                self._used += need
                self.peak_bytes = max(self.peak_bytes, self._used)
                self.alloc_calls += 1
                self.simulated_time += self.alloc_latency
                return alloc
        raise OutOfDeviceMemory(
            f"cannot allocate {size} bytes ({self.bytes_free} free of {self.capacity})"
        )

    def free(self, alloc: Allocation) -> None:
        """Release an allocation, coalescing adjacent free ranges."""
        if alloc.offset not in self._live:
            raise ValueError(f"double free or foreign allocation at offset {alloc.offset}")
        del self._live[alloc.offset]
        self._used -= alloc.size
        self.free_calls += 1
        self.simulated_time += self.alloc_latency
        self._insert_free(alloc.offset, alloc.size)

    def _insert_free(self, off: int, size: int) -> None:
        self._free.append((off, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for o, s in self._free:
            if merged and merged[-1][0] + merged[-1][1] == o:
                merged[-1] = (merged[-1][0], merged[-1][1] + s)
            else:
                merged.append((o, s))
        self._free = merged

    def reserve_remaining(self, *, tag: str = "reserved") -> list[Allocation]:
        """Claim every free range in one sweep (fault injection: the
        memory pressure that makes the next real ``malloc`` raise
        :class:`OutOfDeviceMemory`).  Returns the claimed allocations so
        the caller can ``free`` them to release the pressure."""
        allocs: list[Allocation] = []
        for off, sz in self._free:
            alloc = Allocation(offset=off, size=sz, tag=tag)
            self._live[off] = alloc
            self._used += sz
            allocs.append(alloc)
        self._free = []
        self.peak_bytes = max(self.peak_bytes, self._used)
        self.alloc_calls += 1
        self.simulated_time += self.alloc_latency
        return allocs

    def live_allocations(self) -> list[Allocation]:
        return list(self._live.values())

    def check_invariants(self) -> None:
        """Assert non-overlap and full accounting (used by property tests)."""
        ranges = sorted(
            [(a.offset, a.size) for a in self._live.values()] + self._free
        )
        pos = 0
        for off, size in ranges:
            if off != pos:
                raise AssertionError(f"gap or overlap at offset {pos} vs {off}")
            pos = off + size
        if pos != self.capacity:
            raise AssertionError(f"heap accounting ends at {pos}, capacity {self.capacity}")


class PoolAllocator:
    """YAKL "gator"-style pool allocator.

    One native allocation is grabbed up front; subsequent mallocs are
    served from the pool at near-zero cost and never block the device.
    When the pool overflows, a new pool block is chained (one more native
    allocation), matching YAKL's growth behaviour.
    """

    #: pool-internal bookkeeping cost per call, seconds (vs. 30 us native).
    alloc_latency: float = 0.3e-6

    def __init__(
        self,
        backing: DeviceAllocator,
        *,
        initial_block: int = 1 << 30,
        grow_block: int | None = None,
    ) -> None:
        self.backing = backing
        self.block_size = int(initial_block)
        self.grow_block = int(grow_block) if grow_block else self.block_size
        self._blocks: list[tuple[Allocation, DeviceAllocator]] = []
        self.simulated_time = 0.0
        self.alloc_calls = 0
        self.free_calls = 0
        self._grow(self.block_size)

    def _grow(self, size: int) -> None:
        native = self.backing.malloc(size, tag="yakl-pool")
        sub = DeviceAllocator(size)
        sub.alloc_latency = 0.0  # internal carving is free; we charge our own
        self._blocks.append((native, sub))

    def malloc(self, size: int, *, tag: str = "") -> tuple[int, Allocation]:
        """Allocate from the pool; returns ``(block_index, allocation)``."""
        self.alloc_calls += 1
        self.simulated_time += self.alloc_latency
        for i, (_, sub) in enumerate(self._blocks):
            try:
                return i, sub.malloc(size, tag=tag)
            except OutOfDeviceMemory:
                continue
        self._grow(max(self.grow_block, _align_up(size, 256)))
        i = len(self._blocks) - 1
        return i, self._blocks[i][1].malloc(size, tag=tag)

    def free(self, handle: tuple[int, Allocation]) -> None:
        block, alloc = handle
        self.free_calls += 1
        self.simulated_time += self.alloc_latency
        self._blocks[block][1].free(alloc)

    @property
    def bytes_in_use(self) -> int:
        return sum(sub.bytes_in_use for _, sub in self._blocks)

    @property
    def native_alloc_calls(self) -> int:
        """Native (blocking) allocations performed — should stay tiny."""
        return len(self._blocks)

    def release(self) -> None:
        """Return all pool blocks to the backing allocator."""
        for native, sub in self._blocks:
            if sub.bytes_in_use:
                raise RuntimeError("releasing pool with live allocations")
            self.backing.free(native)
        self._blocks.clear()


@dataclass
class PageFaultStats:
    """UVM migration accounting."""

    faults: int = 0
    migrated_bytes: int = 0
    fault_time: float = 0.0


class UnifiedMemory:
    """UVM-style managed memory with page-granular migration.

    Arrays live wherever they were last touched; touching them from the
    other side faults pages across the host link.  ``touch`` returns the
    simulated migration time.  Pele used UVM to port incrementally and
    then removed it (§3.8) — the benchmarks quantify why.
    """

    page_size: int = 2 << 20  # 2 MiB huge pages, typical for HPC UVM
    fault_latency: float = 20e-6  # per-fault service time

    def __init__(self, link_bandwidth: float) -> None:
        if link_bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        self.link_bandwidth = link_bandwidth
        self._location: dict[str, str] = {}  # array name -> "host"|"device"
        self._size: dict[str, int] = {}
        self.stats = PageFaultStats()

    def register(self, name: str, size: int, *, location: str = "host") -> None:
        if location not in ("host", "device"):
            raise ValueError("location must be 'host' or 'device'")
        self._location[name] = location
        self._size[name] = int(size)

    def touch(self, name: str, side: str) -> float:
        """Access *name* from *side*; migrate if resident elsewhere."""
        if side not in ("host", "device"):
            raise ValueError("side must be 'host' or 'device'")
        if name not in self._location:
            raise KeyError(f"unregistered managed array {name!r}")
        if self._location[name] == side:
            return 0.0
        size = self._size[name]
        pages = -(-size // self.page_size)
        t = pages * self.fault_latency + size / self.link_bandwidth
        self.stats.faults += pages
        self.stats.migrated_bytes += size
        self.stats.fault_time += t
        self._location[name] = side
        return t

    def location(self, name: str) -> str:
        return self._location[name]
