"""Occupancy and register-spill model.

Occupancy — concurrent wavefronts per compute unit — is limited by the
register file, shared memory (LDS), and the hardware wave ceiling.  Spills
occur when a kernel wants more registers per thread than the compiler
ceiling allows; spilled values move through scratch (device) memory, adding
traffic.  Both effects are first-order terms in the LAMMPS and E3SM
sections of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel on one device."""

    waves_per_cu: int
    max_waves_per_cu: int
    limited_by: str  # "registers" | "lds" | "hardware"
    spilled_registers_per_thread: int

    @property
    def occupancy(self) -> float:
        """Achieved fraction of the hardware wave ceiling, in (0, 1]."""
        return self.waves_per_cu / self.max_waves_per_cu

    @property
    def spills(self) -> bool:
        return self.spilled_registers_per_thread > 0


def compute_occupancy(kernel: KernelSpec, device: GPUSpec) -> OccupancyResult:
    """Compute achievable waves/CU and spill count for *kernel* on *device*.

    The model matches vendor occupancy calculators at the granularity we
    need: registers are allocated per wavefront
    (``regs_per_thread * wavefront_size``), LDS per workgroup, and the
    winner is the tightest constraint.  Any register demand beyond the
    per-thread ceiling spills; the kernel then runs at the ceiling.
    """
    regs = kernel.registers_per_thread
    spilled = max(0, regs - device.max_registers_per_thread)
    regs = min(regs, device.max_registers_per_thread)

    regs_per_wave = regs * device.wavefront_size
    waves_by_regs = device.registers_per_cu // max(regs_per_wave, 1)

    waves_per_group = max(
        1, -(-kernel.workgroup_size // device.wavefront_size)
    )  # ceil division
    if kernel.lds_per_workgroup > 0:
        groups_by_lds = device.lds_per_cu // kernel.lds_per_workgroup
        waves_by_lds = groups_by_lds * waves_per_group
    else:
        waves_by_lds = device.max_waves_per_cu

    waves = min(waves_by_regs, waves_by_lds, device.max_waves_per_cu)
    waves = max(waves, 1)  # hardware always runs at least one wave

    if waves == device.max_waves_per_cu:
        limit = "hardware"
    elif waves_by_regs <= waves_by_lds:
        limit = "registers"
    else:
        limit = "lds"
    return OccupancyResult(
        waves_per_cu=waves,
        max_waves_per_cu=device.max_waves_per_cu,
        limited_by=limit,
        spilled_registers_per_thread=spilled,
    )


def spill_traffic_bytes(kernel: KernelSpec, device: GPUSpec) -> float:
    """Extra scratch-memory traffic caused by register spills, in bytes.

    Each spilled register is stored and reloaded roughly once per use; we
    charge 2 accesses x 4 bytes x spilled regs x threads.  The LAMMPS
    §3.10.3 compiler fix is modelled as zeroing this term.
    """
    occ = compute_occupancy(kernel, device)
    if not occ.spills:
        return 0.0
    return 2.0 * 4.0 * occ.spilled_registers_per_thread * kernel.threads


def latency_hiding_from_waves(waves_per_cu: int) -> float:
    """Throughput derate from insufficient latency hiding, by wave count.

    Latency tolerance depends on the *absolute* number of wavefronts in
    flight per CU, not the fraction of the hardware ceiling (a V100 at
    16/64 waves hides latency exactly as well as a CDNA2 die at 16/32).
    Eight waves per CU suffice for ~95 % of peak on regular kernels; the
    factor degrades linearly below that.
    """
    if waves_per_cu < 1:
        raise ValueError(f"waves_per_cu must be >= 1, got {waves_per_cu}")
    if waves_per_cu >= 8:
        return 0.95 + 0.05 * min(1.0, (waves_per_cu - 8) / 24.0)
    return 0.30 + 0.65 * waves_per_cu / 8.0


def latency_hiding_factor(occupancy: float) -> float:
    """Throughput derate from insufficient latency hiding.

    With full occupancy a device reaches its roofline; with few waves in
    flight, memory latency is exposed.  We use a saturating curve that
    reaches ~95 % of peak at half occupancy and degrades linearly below —
    the standard shape of occupancy-vs-throughput measurements.
    """
    if not 0.0 < occupancy <= 1.0:
        raise ValueError(f"occupancy must be in (0, 1], got {occupancy}")
    if occupancy >= 0.5:
        return 0.95 + 0.05 * (occupancy - 0.5) / 0.5
    return 0.30 + (0.95 - 0.30) * occupancy / 0.5
