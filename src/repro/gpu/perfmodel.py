"""Roofline-with-overheads kernel timing model.

``kernel_time`` combines:

* the roofline bound ``max(flops / effective_peak, bytes / effective_bw)``,
* occupancy-driven latency hiding (:mod:`repro.gpu.occupancy`),
* SIMD divergence (active-lane fraction, wavefront-width sensitivity),
* register-spill scratch traffic,
* a fixed per-launch device-side tail latency.

The model is deterministic; run-to-run noise, when wanted, is injected by
callers with a seeded RNG so experiments stay reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.kernel import KernelSpec
from repro.gpu.occupancy import (
    OccupancyResult,
    compute_occupancy,
    latency_hiding_from_waves,
    spill_traffic_bytes,
)
from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one kernel execution on one device."""

    kernel: str
    device: str
    compute_time: float
    memory_time: float
    launch_latency: float
    occupancy: OccupancyResult
    effective_flops: float

    @property
    def execution_time(self) -> float:
        """Device-side execution time, excluding launch latency."""
        return max(self.compute_time, self.memory_time)

    @property
    def total_time(self) -> float:
        """Wall time of a synchronous launch: latency + execution."""
        return self.launch_latency + self.execution_time

    @property
    def bound(self) -> str:
        return "compute" if self.compute_time >= self.memory_time else "memory"


def divergence_factor(kernel: KernelSpec, device: GPUSpec) -> float:
    """Fraction of SIMD throughput retained under divergence.

    ``active_lane_fraction`` is calibrated at warp width 32.  On a 64-wide
    wavefront a kernel marked wavefront-sensitive wastes the extra lanes
    too — the HACC gravity-kernel regression on MI100 (§3.4).
    """
    f = kernel.active_lane_fraction
    if kernel.divergence_wavefront_sensitive and device.wavefront_size > 32:
        f *= 32.0 / device.wavefront_size
    return max(f, 1.0 / device.wavefront_size)


def time_kernel(kernel: KernelSpec, device: GPUSpec) -> KernelTiming:
    """Time one launch of *kernel* on an otherwise idle *device*."""
    occ = compute_occupancy(kernel, device)
    hiding = latency_hiding_from_waves(occ.waves_per_cu)
    div = divergence_factor(kernel, device)

    peak = device.peak(kernel.precision, matrix=kernel.uses_matrix_engine)
    effective_flops = peak * hiding * div
    compute_time = kernel.flops / effective_flops if kernel.flops > 0 else 0.0

    bw = device.effective_bandwidth * hiding
    bytes_total = kernel.bytes_total + spill_traffic_bytes(kernel, device)
    memory_time = bytes_total / bw if bytes_total > 0 else 0.0

    return KernelTiming(
        kernel=kernel.name,
        device=device.name,
        compute_time=compute_time,
        memory_time=memory_time,
        launch_latency=device.kernel_launch_latency,
        occupancy=occ,
        effective_flops=effective_flops,
    )


def time_kernel_sequence(
    kernels: list[KernelSpec], device: GPUSpec, *, same_stream_async: bool = True
) -> float:
    """Wall time of launching *kernels* back-to-back on one device.

    With ``same_stream_async`` (E3SM's strategy, §3.5) the host enqueues
    all launches without waiting, so launch latency overlaps the previous
    kernel's execution: each kernel costs
    ``max(execution, launch_latency)`` after the first.  Synchronous
    launching pays ``latency + execution`` every time.
    """
    if not kernels:
        return 0.0
    total = 0.0
    first = True
    for k in kernels:
        t = time_kernel(k, device)
        for _ in range(k.launch_count):
            if not same_stream_async or first:
                # the very first async launch still waits out its latency
                total += t.launch_latency + t.execution_time
                first = False
            else:
                total += max(t.execution_time, t.launch_latency)
    return total


def achieved_flops(kernel: KernelSpec, device: GPUSpec) -> float:
    """Achieved FLOP/s for one synchronous launch (paper's TF/GPU metric)."""
    t = time_kernel(kernel, device)
    if t.total_time == 0.0:
        return 0.0
    return kernel.flops / t.total_time
