"""Kernel profiling and compiler diagnostics (§3.2, §3.10.3).

Three tools the paper's teams leaned on:

* :func:`profile_kernels` — per-kernel timing/occupancy/bound reports,
  sorted hottest-first (the profiling that found LSMS's index-arithmetic
  bottleneck and LAMMPS's divergence);
* :func:`assembly_report` — the ``-save-temps`` fields the LAMMPS team
  read: ``vgpr_count``, ``vgpr_spill_count``,
  ``amdhsa_private_segment_fixed_size`` (scratch bytes per work-item);
  the compiler register-allocation fix is modelled by
  :func:`apply_compiler_fix`;
* :class:`MathLibrary` — per-function throughput of heavily used device
  math functions (``pow``, ``exp``, ...), with the ROCm-version
  optimization story: "microbenchmarking the achieved throughput of some
  heavily used math functions (e.g., pow() and exp()) exposed some
  additional optimization opportunities".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.gpu.kernel import KernelSpec
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.perfmodel import KernelTiming, time_kernel
from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class KernelProfile:
    """One row of the profiler output."""

    kernel: str
    time: float
    share: float  # fraction of the profiled total
    bound: str
    occupancy: float
    limited_by: str
    spills: int


def profile_kernels(kernels: list[KernelSpec], device: GPUSpec) -> list[KernelProfile]:
    """Profile a kernel set; rows sorted by time, hottest first."""
    timings: list[tuple[KernelSpec, KernelTiming]] = [
        (k, time_kernel(k, device)) for k in kernels
    ]
    total = sum(t.total_time * k.launch_count for k, t in timings) or 1.0
    rows = []
    for k, t in timings:
        rows.append(KernelProfile(
            kernel=k.name,
            time=t.total_time * k.launch_count,
            share=t.total_time * k.launch_count / total,
            bound=t.bound,
            occupancy=t.occupancy.occupancy,
            limited_by=t.occupancy.limited_by,
            spills=t.occupancy.spilled_registers_per_thread,
        ))
    rows.sort(key=lambda r: -r.time)
    return rows


@dataclass(frozen=True)
class AssemblyReport:
    """The fields read from ``-save-temps`` assembly dumps (§3.10.3)."""

    kernel: str
    vgpr_count: int
    vgpr_spill_count: int
    amdhsa_private_segment_fixed_size: int  # scratch bytes per work-item
    sgpr_count: int

    @property
    def spills(self) -> bool:
        return self.vgpr_spill_count > 0


def assembly_report(kernel: KernelSpec, device: GPUSpec) -> AssemblyReport:
    """What the compiler's assembly dump would say for *kernel*."""
    occ = compute_occupancy(kernel, device)
    spilled = occ.spilled_registers_per_thread
    return AssemblyReport(
        kernel=kernel.name,
        vgpr_count=min(kernel.registers_per_thread, device.max_registers_per_thread),
        vgpr_spill_count=spilled,
        amdhsa_private_segment_fixed_size=4 * spilled,
        sgpr_count=min(16 + kernel.registers_per_thread // 8, 102),
    )


#: Registers wasted by the double-precision-constant spilling bug the
#: LAMMPS/AMD collaboration tracked down with DWARF info (§3.10.3): FP64
#: literals were bounced between scalar and vector registers.
_CONSTANT_SPILL_WASTE = 48


def apply_compiler_fix(kernel: KernelSpec, *, fp64_constants: int = 24) -> KernelSpec:
    """The register-allocation fix: reclaim the constant-spilling waste.

    Models the post-fix kernel: ``min(fp64_constants * 2, waste)``
    registers come back (each double held a VGPR pair), which "virtually
    eliminated register spills from the key kernels".
    """
    if fp64_constants < 0:
        raise ValueError("fp64_constants must be non-negative")
    reclaimed = min(2 * fp64_constants, _CONSTANT_SPILL_WASTE)
    return dataclasses.replace(
        kernel,
        registers_per_thread=max(16, kernel.registers_per_thread - reclaimed),
    )


@dataclass(frozen=True)
class MathFunctionSpec:
    """Throughput of one device math function, in results per clock per CU."""

    name: str
    rate_per_clock_per_cu: float


class MathLibrary:
    """The ROCm device math library at a given optimization level.

    ``optimized=False`` is the early-ROCm state the microbenchmarks
    exposed; ``optimized=True`` reflects the §3.10.3 improvements
    (biggest on ``pow``, which decomposes into log+mul+exp).
    """

    _BASE: dict[str, float] = {
        "add": 64.0,
        "mul": 64.0,
        "fma": 64.0,
        "rcp": 16.0,
        "sqrt": 16.0,
        "exp": 8.0,
        "log": 8.0,
        "pow": 2.0,
        "sin": 6.0,
    }
    _OPTIMIZED_GAIN: dict[str, float] = {"exp": 1.6, "log": 1.5, "pow": 2.2}

    def __init__(self, *, optimized: bool = True) -> None:
        self.optimized = optimized

    def throughput(self, fn: str, device: GPUSpec) -> float:
        """Results per second on the whole device."""
        if fn not in self._BASE:
            raise KeyError(f"unknown function {fn!r}; known: {sorted(self._BASE)}")
        rate = self._BASE[fn]
        if self.optimized:
            rate *= self._OPTIMIZED_GAIN.get(fn, 1.0)
        clock = device.peak_flops[next(iter(device.peak_flops))] / (
            device.compute_units * device.wavefront_size * 2
        )
        return rate * device.compute_units * clock

    def microbenchmark(self, device: GPUSpec) -> dict[str, float]:
        """The §3.10.3 sweep: throughput of every function, results/s."""
        return {fn: self.throughput(fn, device) for fn in self._BASE}

    def kernel_math_derate(self, kernel_exp_fraction: float, *,
                           device: GPUSpec) -> float:
        """Effective throughput fraction for a kernel whose FLOPs are
        ``kernel_exp_fraction`` transcendental (chemistry kernels)."""
        if not 0.0 <= kernel_exp_fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        exp_rate = self.throughput("exp", device)
        fma_rate = self.throughput("fma", device)
        inv = (1 - kernel_exp_fraction) / fma_rate + kernel_exp_fraction / exp_rate
        return (1.0 / inv) / fma_rate
