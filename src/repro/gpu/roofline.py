"""Roofline analysis reports: where kernels sit against a device's limits.

The standard co-design artifact the COE trainings taught: plot (or
tabulate) every kernel's arithmetic intensity against the device's
bandwidth and compute ceilings, and say which ceiling binds and how far
from it the kernel runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.gpu.perfmodel import time_kernel
from repro.hardware.gpu import GPUSpec, Precision


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the roofline."""

    kernel: str
    intensity: float  # flop/byte
    achieved_flops: float
    roof_flops: float  # min(peak, bw * intensity)
    bound: str

    @property
    def fraction_of_roof(self) -> float:
        return self.achieved_flops / self.roof_flops if self.roof_flops else 0.0


def roofline_curve(device: GPUSpec, *, precision: Precision = Precision.FP64,
                   matrix: bool = False, n_points: int = 40) -> list[tuple[float, float]]:
    """(intensity, attainable FLOP/s) samples of the roofline itself."""
    if n_points < 2:
        raise ValueError("need at least 2 points")
    peak = device.peak(precision, matrix=matrix)
    bw = device.effective_bandwidth
    ridge = peak / bw
    intensities = np.logspace(np.log10(ridge / 100), np.log10(ridge * 100), n_points)
    return [(float(i), float(min(peak, bw * i))) for i in intensities]


def place_kernel(kernel: KernelSpec, device: GPUSpec) -> RooflinePoint:
    """Place one kernel on the device roofline."""
    timing = time_kernel(kernel, device)
    intensity = kernel.arithmetic_intensity
    peak = device.peak(kernel.precision, matrix=kernel.uses_matrix_engine)
    bw = device.effective_bandwidth
    roof = min(peak, bw * intensity) if np.isfinite(intensity) else peak
    achieved = kernel.flops / timing.execution_time if timing.execution_time else 0.0
    return RooflinePoint(
        kernel=kernel.name,
        intensity=float(intensity),
        achieved_flops=achieved,
        roof_flops=float(roof),
        bound=timing.bound,
    )


def roofline_report(kernels: list[KernelSpec], device: GPUSpec) -> str:
    """A text roofline table for a kernel set on one device."""
    from repro.core.report import render_table

    rows = []
    for k in kernels:
        pt = place_kernel(k, device)
        rows.append((
            pt.kernel,
            f"{pt.intensity:.2f}" if np.isfinite(pt.intensity) else "inf",
            f"{pt.achieved_flops/1e12:.2f}",
            f"{pt.roof_flops/1e12:.2f}",
            f"{pt.fraction_of_roof:.0%}",
            pt.bound,
        ))
    return render_table(
        ("Kernel", "AI (flop/B)", "Achieved TF", "Roof TF", "Of roof", "Bound"),
        rows,
        title=f"Roofline on {device.name} "
              f"(ridge {device.ridge_intensity(Precision.FP64):.1f} flop/B)",
    )
