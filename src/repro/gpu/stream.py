"""Streams and events: in-order queues with asynchronous host semantics.

The simulated device keeps a clock per stream.  ``launch`` enqueues work
and returns immediately (host time advances only by the launch API cost);
``synchronize`` advances host time to the stream's completion.  Events
record stream timestamps and support cross-stream waits — enough to model
the overlap strategies in §2.2 (NOWAIT), §3.5 (same-stream pipelining) and
the AMReX asynchronous ghost exchange.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass
class Event:
    """A marker in a stream's timeline."""

    event_id: int
    timestamp: float | None = None  # device time when recorded, None until then

    @property
    def recorded(self) -> bool:
        return self.timestamp is not None


class Stream:
    """An in-order execution queue on one device."""

    _ids = itertools.count()

    def __init__(self, clock: "DeviceClock") -> None:
        self.stream_id = next(Stream._ids)
        self._clock = clock
        self.ready_at = 0.0  # device time when all enqueued work completes

    def enqueue(self, duration: float, *, launch_latency: float = 0.0) -> float:
        """Enqueue *duration* seconds of device work; returns completion time.

        Work begins once both the stream is free and the launch command has
        reached the device (host_now + launch_latency).
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(self.ready_at, self._clock.host_now + launch_latency)
        self.ready_at = start + duration
        return self.ready_at

    def record_event(self, event: Event) -> None:
        event.timestamp = self.ready_at

    def wait_event(self, event: Event) -> None:
        """Stall this stream until *event* has occurred (cross-stream dep)."""
        if not event.recorded:
            raise RuntimeError("waiting on an unrecorded event")
        assert event.timestamp is not None
        self.ready_at = max(self.ready_at, event.timestamp)


class DeviceClock:
    """Shared notion of host time for a set of streams.

    ``host_now`` advances when the host blocks (API call costs,
    synchronizations).  Device streams run ahead asynchronously.
    """

    def __init__(self) -> None:
        self.host_now = 0.0
        self._streams: list[Stream] = []
        self._events: list[Event] = []
        self._event_ids = itertools.count()

    def create_stream(self) -> Stream:
        s = Stream(self)
        self._streams.append(s)
        return s

    def create_event(self) -> Event:
        e = Event(event_id=next(self._event_ids))
        self._events.append(e)
        return e

    def host_busy(self, duration: float) -> None:
        """Host-side work (or API overhead) of *duration* seconds."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.host_now += duration

    def synchronize_stream(self, stream: Stream) -> None:
        """Block the host until *stream* drains."""
        self.host_now = max(self.host_now, stream.ready_at)

    def synchronize_event(self, event: Event) -> None:
        if not event.recorded:
            raise RuntimeError("synchronizing on an unrecorded event")
        assert event.timestamp is not None
        self.host_now = max(self.host_now, event.timestamp)

    def synchronize_device(self) -> None:
        """Block the host until every stream drains."""
        for s in self._streams:
            self.host_now = max(self.host_now, s.ready_at)

    @property
    def device_idle_at(self) -> float:
        """Time at which all currently enqueued work completes."""
        if not self._streams:
            return self.host_now
        return max(self.host_now, max(s.ready_at for s in self._streams))
