"""Execution-trace export: Chrome-trace JSON from a simulated device.

Profilers were central to every porting story in the paper; this module
turns a :class:`~repro.gpu.device.Device`'s launch trace into the Chrome
``chrome://tracing`` / Perfetto JSON event format, plus summary
statistics (gaps, utilization) that the latency-hunting teams (E3SM)
read off their timelines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.gpu.device import Device


def to_chrome_trace(device: Device, *, process_name: str = "simulated-gpu") -> str:
    """Serialize the device's kernel trace as Chrome-trace JSON.

    One complete-event ("ph": "X") per launch, timestamps in
    microseconds, one row (tid) per stream.
    """
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": device.device_id,
        "args": {"name": f"{process_name} ({device.spec.name})"},
    }]
    for rec in device.trace:
        start = rec.completes_at - rec.timing.execution_time
        events.append({
            "name": rec.kernel,
            "ph": "X",
            "pid": device.device_id,
            "tid": rec.stream_id,
            "ts": start * 1e6,
            "dur": rec.timing.execution_time * 1e6,
            "args": {
                "bound": rec.timing.bound,
                "occupancy": rec.timing.occupancy.occupancy,
                "enqueued_at_us": rec.enqueued_at * 1e6,
            },
        })
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


@dataclass(frozen=True)
class TimelineStats:
    """What a timeline reader extracts at a glance."""

    kernels: int
    busy_time: float
    span: float  # first start to last completion
    largest_gap: float

    @property
    def utilization(self) -> float:
        """Busy fraction of the span — launch-latency-bound runs sit low."""
        return self.busy_time / self.span if self.span > 0 else 1.0


def timeline_stats(device: Device) -> TimelineStats:
    """Gap/utilization analysis of the device's launch trace."""
    if not device.trace:
        return TimelineStats(kernels=0, busy_time=0.0, span=0.0, largest_gap=0.0)
    intervals = sorted(
        (rec.completes_at - rec.timing.execution_time, rec.completes_at)
        for rec in device.trace
    )
    busy = sum(b - a for a, b in intervals)
    span = intervals[-1][1] - intervals[0][0]
    largest_gap = 0.0
    cursor = intervals[0][1]
    for a, b in intervals[1:]:
        if a > cursor:
            largest_gap = max(largest_gap, a - cursor)
        cursor = max(cursor, b)
    return TimelineStats(
        kernels=len(device.trace),
        busy_time=busy,
        span=span,
        largest_gap=largest_gap,
    )
