"""Host-device and peer-to-peer transfer timing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import GPUSpec


@dataclass(frozen=True)
class TransferTiming:
    """Timing of one explicit memcpy."""

    bytes: int
    latency: float
    bandwidth: float

    @property
    def time(self) -> float:
        return self.latency + self.bytes / self.bandwidth


def h2d_time(nbytes: int, device: GPUSpec) -> TransferTiming:
    """Host-to-device copy over the host link."""
    if nbytes < 0:
        raise ValueError("transfer size must be non-negative")
    return TransferTiming(
        bytes=nbytes,
        latency=device.host_link_latency,
        bandwidth=device.host_link_bandwidth,
    )


def d2h_time(nbytes: int, device: GPUSpec) -> TransferTiming:
    """Device-to-host copy (symmetric links on all catalog parts)."""
    return h2d_time(nbytes, device)


def d2d_time(nbytes: int, device: GPUSpec, *, same_package: bool = False) -> TransferTiming:
    """Peer-to-peer copy between devices.

    GCDs in one MI250X package share a 200 GB/s in-package Infinity Fabric
    link; other pairs route over the host link.
    """
    if nbytes < 0:
        raise ValueError("transfer size must be non-negative")
    if same_package:
        return TransferTiming(bytes=nbytes, latency=2e-6, bandwidth=200e9)
    return TransferTiming(
        bytes=nbytes,
        latency=device.host_link_latency,
        bandwidth=device.host_link_bandwidth,
    )
