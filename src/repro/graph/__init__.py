"""COAST substrate: Floyd-Warshall APSP, distributed FW, autotuning, knowledge graphs."""

from repro.graph.apsp import apsp_flops, blocked_floyd_warshall, floyd_warshall, minplus
from repro.graph.distributed import DistributedApspResult, distributed_floyd_warshall
from repro.graph.knowledge import (
    EDGE_TYPES,
    VERTEX_TYPES,
    KnowledgeGraph,
    discover_relationships,
    generate_knowledge_graph,
)
from repro.graph.tuning import (
    DEFAULT_SEARCH_SPACE,
    AutotuneResult,
    TileAutotuner,
    TileConfig,
    kernel_for_config,
)

__all__ = [
    "floyd_warshall_with_paths",
    "explain_relationships",
    "DiscoveredPath",
    "ApspWithPaths",
    "AutotuneResult",
    "DEFAULT_SEARCH_SPACE",
    "DistributedApspResult",
    "EDGE_TYPES",
    "KnowledgeGraph",
    "TileAutotuner",
    "TileConfig",
    "VERTEX_TYPES",
    "apsp_flops",
    "blocked_floyd_warshall",
    "discover_relationships",
    "distributed_floyd_warshall",
    "floyd_warshall",
    "generate_knowledge_graph",
    "kernel_for_config",
    "minplus",
]
from repro.graph.paths import ApspWithPaths, DiscoveredPath, explain_relationships, floyd_warshall_with_paths
