"""All-pairs shortest path via Floyd–Warshall, plain and blocked (§3.9).

COAST solves APSP on knowledge graphs with a "parallel, distributed, and
GPU accelerated version of the Floyd-Warshall algorithm, which is a
canonical example of dynamic programming".  The blocked formulation is the
GPU-friendly one: the k-loop is tiled, and each phase's tile update "heavily
resembles matrix multiplication" in the (min, +) semiring — exactly why the
paper's kernel autotunes like GEMM.

Everything here is real and verified against ``scipy.sparse.csgraph``.
"""

from __future__ import annotations

import numpy as np


def floyd_warshall(dist: np.ndarray) -> np.ndarray:
    """Reference Floyd–Warshall on a dense distance matrix.

    ``dist[i, j]`` is the edge weight (``inf`` for no edge); diagonal is
    forced to zero.  Returns the shortest-path distance matrix.
    """
    d = _prepare(dist)
    n = d.shape[0]
    for k in range(n):
        # vectorized relaxation: d = min(d, d[:,k,None] + d[None,k,:])
        np.minimum(d, d[:, k, None] + d[None, k, :], out=d)
    return d


def minplus(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(min, +) matrix product — the GEMM-like inner kernel."""
    # broadcast to (i, k, j) then reduce over k; fine at tile sizes
    return np.min(a[:, :, None] + b[None, :, :], axis=1)


def blocked_floyd_warshall(dist: np.ndarray, tile: int) -> np.ndarray:
    """Blocked (tiled) Floyd–Warshall.

    The classic three-phase schedule per diagonal tile k:

    1. *dependent* phase — FW on the pivot tile (k, k);
    2. *partially dependent* — update row-k and column-k tiles;
    3. *independent* — min-plus update of all remaining tiles, the
       GEMM-like bulk (this is the kernel COAST autotunes).
    """
    d = _prepare(dist)
    n = d.shape[0]
    if tile < 1:
        raise ValueError("tile must be positive")
    if n % tile != 0:
        raise ValueError(f"n={n} must be a multiple of tile={tile}")
    nt = n // tile

    def blk(i: int, j: int) -> tuple[slice, slice]:
        return (slice(i * tile, (i + 1) * tile), slice(j * tile, (j + 1) * tile))

    for k in range(nt):
        kk = blk(k, k)
        # phase 1: pivot tile, full FW restricted to the tile
        pivot = d[kk]
        for m in range(tile):
            np.minimum(pivot, pivot[:, m, None] + pivot[None, m, :], out=pivot)
        # phase 2: row and column of the pivot
        for j in range(nt):
            if j == k:
                continue
            kj = blk(k, j)
            d[kj] = np.minimum(d[kj], minplus(pivot, d[kj]))
        for i in range(nt):
            if i == k:
                continue
            ik = blk(i, k)
            d[ik] = np.minimum(d[ik], minplus(d[ik], pivot))
        # phase 3: the independent bulk
        for i in range(nt):
            if i == k:
                continue
            ik = blk(i, k)
            for j in range(nt):
                if j == k:
                    continue
                ij = blk(i, j)
                d[ij] = np.minimum(d[ij], minplus(d[ik], d[blk(k, j)]))
    return d


def _prepare(dist: np.ndarray) -> np.ndarray:
    dist = np.asarray(dist, dtype=float)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ValueError(f"distance matrix must be square, got {dist.shape}")
    d = dist.copy()
    np.fill_diagonal(d, 0.0)
    return d


def apsp_flops(n: int) -> float:
    """Semiring operations in Floyd–Warshall: n³ adds + n³ mins = 2n³.

    This is the FLOP convention under which COAST reports exaflops (each
    min counted as an op, as the Gordon Bell submissions do).
    """
    return 2.0 * float(n) ** 3
