"""Distributed blocked Floyd–Warshall over the MPI simulator (§3.9).

A 2-D block-cyclic layout of the distance matrix: at each pivot step the
owning rank row broadcasts the pivot-row panel down columns and the
pivot-column panel across rows (the standard SUMMA-like FW schedule).
Data semantics are real — the result matches the serial algorithm — and
the communicator prices every broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.apsp import _prepare, minplus
from repro.hardware.interconnect import InterconnectSpec
from repro.mpisim.comm import SimComm


@dataclass
class DistributedApspResult:
    dist: np.ndarray
    elapsed: float
    comm_time: float
    messages: int


def distributed_floyd_warshall(
    dist: np.ndarray,
    *,
    grid: int,
    fabric: InterconnectSpec,
    ranks_per_node: int = 8,
    compute_time_per_tile_update: float = 0.0,
) -> DistributedApspResult:
    """APSP over a ``grid x grid`` process grid.

    ``compute_time_per_tile_update`` lets callers charge the kernel time
    of one (min,+) tile update (from the GPU model); pass 0 to measure
    communication structure only.
    """
    d = _prepare(dist)
    n = d.shape[0]
    if grid < 1:
        raise ValueError("grid must be positive")
    if n % grid != 0:
        raise ValueError(f"n={n} must be a multiple of grid={grid}")
    tile = n // grid
    nranks = grid * grid
    comm = SimComm(nranks, fabric, ranks_per_node=ranks_per_node, device_buffers=True)

    def blk(i: int, j: int) -> tuple[slice, slice]:
        return (slice(i * tile, (i + 1) * tile), slice(j * tile, (j + 1) * tile))

    tile_bytes = float(tile * tile * 8)
    for k in range(grid):
        kk = blk(k, k)
        pivot = d[kk]
        for m in range(tile):
            np.minimum(pivot, pivot[:, m, None] + pivot[None, m, :], out=pivot)
        # broadcast pivot tile to its row and column groups
        comm.bcast(pivot, nbytes=tile_bytes, root=k * grid + k)
        # phase 2 panels
        for j in range(grid):
            if j != k:
                kj = blk(k, j)
                d[kj] = np.minimum(d[kj], minplus(pivot, d[kj]))
        for i in range(grid):
            if i != k:
                ik = blk(i, k)
                d[ik] = np.minimum(d[ik], minplus(d[ik], pivot))
        # broadcast row-k panels down each column, column-k panels across rows
        comm.bcast(d[blk(k, 0)], nbytes=tile_bytes * grid, root=k * grid)
        comm.bcast(d[blk(0, k)], nbytes=tile_bytes * grid, root=k)
        # phase 3 everywhere; every rank does (grid-1)^2 / nranks tile updates
        for i in range(grid):
            if i == k:
                continue
            for j in range(grid):
                if j == k:
                    continue
                ij = blk(i, j)
                d[ij] = np.minimum(d[ij], minplus(d[blk(i, k)], d[blk(k, j)]))
        if compute_time_per_tile_update > 0.0:
            # each rank owns one tile; it updates it once per pivot step,
            # plus panel work on the pivot row/column ranks
            comm.advance_all(compute_time_per_tile_update)
    return DistributedApspResult(
        dist=d,
        elapsed=comm.elapsed,
        comm_time=comm.stats.total_comm_time,
        messages=comm.stats.collectives,
    )
