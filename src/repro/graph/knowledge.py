"""SPOKE-like biomedical knowledge-graph generator (§3.9).

The paper's graphs come from the SPOKE database: >50 M vertices of typed
biomedical concepts (genes, diseases, compounds, proteins, symptoms) with
typed relationships.  We generate a synthetic scale-down with the same
structure: typed vertices, typed edges biased toward biologically plausible
pairs, and a heavy-tailed degree distribution — enough to exercise APSP and
the "discover unknown relationships" workflow on realistic shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

VERTEX_TYPES = ("gene", "disease", "compound", "protein", "symptom")

#: Plausible relationships (the SPOKE-style typed edge catalogue).
EDGE_TYPES: dict[tuple[str, str], str] = {
    ("compound", "disease"): "treats",
    ("compound", "symptom"): "causes_side_effect",
    ("gene", "disease"): "associates",
    ("gene", "protein"): "encodes",
    ("protein", "compound"): "binds",
    ("disease", "symptom"): "presents",
    ("gene", "gene"): "interacts",
    ("protein", "protein"): "interacts",
}


@dataclass(frozen=True)
class KnowledgeGraph:
    """A typed graph plus its dense distance matrix for APSP."""

    graph: nx.Graph
    vertex_type: dict[int, str]

    @property
    def n_vertices(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self.graph.number_of_edges()

    def distance_matrix(self) -> np.ndarray:
        """Dense edge-weight matrix with inf for absent edges."""
        n = self.n_vertices
        d = np.full((n, n), np.inf)
        np.fill_diagonal(d, 0.0)
        for u, v, data in self.graph.edges(data=True):
            w = data.get("weight", 1.0)
            d[u, v] = min(d[u, v], w)
            d[v, u] = min(d[v, u], w)
        return d

    def type_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {t: 0 for t in VERTEX_TYPES}
        for t in self.vertex_type.values():
            counts[t] += 1
        return counts


def generate_knowledge_graph(n_vertices: int, *, mean_degree: float = 4.0,
                             seed: int = 0) -> KnowledgeGraph:
    """Generate a typed, connected SPOKE-like graph.

    Preferential attachment gives the heavy tail; edges are typed by the
    endpoint-type pair (falling back to "related_to" for unlisted pairs);
    weights are mildly dispersed around 1 (relationship confidence).
    """
    if n_vertices < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    m = max(1, int(round(mean_degree / 2)))
    g = nx.barabasi_albert_graph(n_vertices, m, seed=int(rng.integers(2**31)))
    # type assignment: genes and proteins dominate, like SPOKE
    probs = np.array([0.35, 0.1, 0.2, 0.3, 0.05])
    types = rng.choice(VERTEX_TYPES, size=n_vertices, p=probs)
    vertex_type = {i: str(types[i]) for i in range(n_vertices)}
    for u, v in g.edges():
        pair = (vertex_type[u], vertex_type[v])
        rel = EDGE_TYPES.get(pair) or EDGE_TYPES.get(pair[::-1]) or "related_to"
        g.edges[u, v]["relation"] = rel
        g.edges[u, v]["weight"] = float(rng.uniform(0.5, 2.0))
    return KnowledgeGraph(graph=g, vertex_type=vertex_type)


def discover_relationships(kg: KnowledgeGraph, dist: np.ndarray, *,
                           source_type: str, target_type: str,
                           max_distance: float, top: int = 10) -> list[tuple[int, int, float]]:
    """The COAST use case: rank *indirect* (non-adjacent) type-pairs by
    shortest-path distance — e.g. candidate compounds for a disease.

    Returns ``(source_vertex, target_vertex, distance)`` triples sorted by
    distance, excluding directly connected pairs.
    """
    out: list[tuple[int, int, float]] = []
    for u in range(kg.n_vertices):
        if kg.vertex_type[u] != source_type:
            continue
        for v in range(kg.n_vertices):
            if u == v or kg.vertex_type[v] != target_type:
                continue
            if kg.graph.has_edge(u, v):
                continue
            if dist[u, v] <= max_distance:
                out.append((u, v, float(dist[u, v])))
    out.sort(key=lambda t: t[2])
    return out[:top]
