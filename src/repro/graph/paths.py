"""Floyd–Warshall with path reconstruction (the COAST deliverable).

COAST's objective is not the distance numbers but "to discover unknown
relationships among concepts" — the *paths* connecting, say, a compound to
a disease through intermediate genes and proteins are the scientific
output.  This module tracks the successor matrix during the relaxation and
reconstructs explicit vertex paths, verified against networkx.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.apsp import _prepare
from repro.graph.knowledge import KnowledgeGraph


@dataclass(frozen=True)
class ApspWithPaths:
    """Distances plus the successor matrix for path reconstruction."""

    dist: np.ndarray
    successor: np.ndarray  # successor[i, j] = next hop from i toward j (-1 none)

    def path(self, i: int, j: int) -> list[int] | None:
        """The shortest i→j vertex path, or None if unreachable."""
        n = self.dist.shape[0]
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"vertices out of range [0, {n})")
        if i == j:
            return [i]
        if self.successor[i, j] < 0:
            return None
        out = [i]
        cur = i
        while cur != j:
            cur = int(self.successor[cur, j])
            out.append(cur)
            if len(out) > n:
                raise RuntimeError("successor matrix contains a cycle")
        return out

    def path_length(self, path: list[int], weights: np.ndarray) -> float:
        return float(sum(weights[a, b] for a, b in zip(path, path[1:])))


def floyd_warshall_with_paths(dist: np.ndarray) -> ApspWithPaths:
    """Vectorized FW relaxation maintaining the successor matrix."""
    d = _prepare(dist)
    n = d.shape[0]
    succ = np.where(np.isfinite(d), np.arange(n)[None, :], -1)
    np.fill_diagonal(succ, np.arange(n))
    for k in range(n):
        via = d[:, k, None] + d[None, k, :]
        better = via < d
        d = np.where(better, via, d)
        # the first hop toward j via k is the first hop toward k
        succ = np.where(better, succ[:, k, None], succ)
    return ApspWithPaths(dist=d, successor=succ)


@dataclass(frozen=True)
class DiscoveredPath:
    """One explained indirect relationship (the COAST result object)."""

    source: int
    target: int
    distance: float
    vertices: list[int]
    narrative: str


def explain_relationships(kg: KnowledgeGraph, apsp: ApspWithPaths, *,
                          source_type: str, target_type: str,
                          max_distance: float, top: int = 5) -> list[DiscoveredPath]:
    """Rank indirect typed pairs and narrate their connecting paths.

    The narrative strings are the human-readable product: e.g.
    ``compound 12 -[binds]- protein 40 -[encodes]- gene 3 -[associates]- disease 7``.
    """
    out: list[DiscoveredPath] = []
    for u in range(kg.n_vertices):
        if kg.vertex_type[u] != source_type:
            continue
        for v in range(kg.n_vertices):
            if u == v or kg.vertex_type[v] != target_type:
                continue
            if kg.graph.has_edge(u, v) or apsp.dist[u, v] > max_distance:
                continue
            path = apsp.path(u, v)
            if path is None:
                continue
            pieces = [f"{kg.vertex_type[path[0]]} {path[0]}"]
            for a, b in zip(path, path[1:]):
                rel = kg.graph.edges[a, b].get("relation", "related_to")
                pieces.append(f"-[{rel}]- {kg.vertex_type[b]} {b}")
            out.append(DiscoveredPath(
                source=u, target=v, distance=float(apsp.dist[u, v]),
                vertices=path, narrative=" ".join(pieces),
            ))
    out.sort(key=lambda p: p.distance)
    return out[:top]
