"""Automated kernel tiling search (COAST's autotuning strategy, §3.9).

"The main computational kernel ... is written as nested loops with
multiple levels of tiling, and the best set of tiling factors is
discovered in the process of compiling and timing a large number of
combinations."

:class:`TileAutotuner` reproduces that: it enumerates (workgroup-tile,
thread-tile, k-tile) combinations, prices each configuration with the GPU
model (occupancy from register pressure, LDS from tile footprint,
traffic from tiling-dependent reuse), and returns the fastest.  The search
is honest — different devices pick different winners, and tuned beats the
naive configuration by a large factor.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.gpu.kernel import KernelSpec
from repro.gpu.perfmodel import achieved_flops, time_kernel
from repro.hardware.gpu import GPUSpec, Precision


@dataclass(frozen=True)
class TileConfig:
    """One candidate tiling of the (min,+)/GEMM-like kernel."""

    block_tile: int  # workgroup tile edge (LDS-resident)
    thread_tile: int  # per-thread register tile edge
    k_tile: int  # depth of the k-panel staged through LDS

    def __post_init__(self) -> None:
        if self.thread_tile > self.block_tile:
            raise ValueError("thread tile cannot exceed block tile")


def kernel_for_config(n: int, cfg: TileConfig, *, precision: Precision = Precision.FP64,
                      semiring: bool = True) -> KernelSpec:
    """Kernel descriptor of one full n×n×n (min,+) update at tiling *cfg*.

    Reuse: each element of the two input panels is read once per
    ``block_tile`` of output it contributes to, so traffic scales as
    ``2 n³/block_tile + n²`` elements.  Register pressure grows with the
    thread tile (``thread_tile² `` accumulators); LDS holds two
    ``block_tile × k_tile`` panels.
    """
    itemsize = precision.bytes_per_element
    flops = 2.0 * float(n) ** 3
    traffic = (2.0 * float(n) ** 3 / cfg.block_tile + float(n) ** 2) * itemsize
    regs = 24 + 2 * cfg.thread_tile**2 + cfg.k_tile
    lds = 2 * cfg.block_tile * cfg.k_tile * itemsize
    threads_per_group = (cfg.block_tile // cfg.thread_tile) ** 2
    return KernelSpec(
        name=f"minplus_b{cfg.block_tile}_t{cfg.thread_tile}_k{cfg.k_tile}",
        flops=flops,
        bytes_read=traffic,
        bytes_written=float(n) ** 2 * itemsize,
        threads=max((n // cfg.thread_tile) ** 2, 64),
        precision=precision,
        uses_matrix_engine=False if semiring else True,  # min has no MFMA path
        registers_per_thread=regs,
        lds_per_workgroup=int(lds),
        workgroup_size=max(threads_per_group, 64),
    )


DEFAULT_SEARCH_SPACE: tuple[TileConfig, ...] = tuple(
    TileConfig(block_tile=b, thread_tile=t, k_tile=k)
    for b, t, k in itertools.product((16, 32, 64, 128), (1, 2, 4, 8), (8, 16, 32))
    if t <= b and 2 * b * k * 8 <= 64 * 1024  # LDS feasibility
)


@dataclass
class AutotuneResult:
    best: TileConfig
    best_time: float
    best_tflops: float
    evaluated: int
    table: list[tuple[TileConfig, float]]


class TileAutotuner:
    """Exhaustive compile-and-time search over tile configurations."""

    def __init__(self, device: GPUSpec,
                 search_space: tuple[TileConfig, ...] = DEFAULT_SEARCH_SPACE) -> None:
        if not search_space:
            raise ValueError("empty search space")
        self.device = device
        self.search_space = search_space

    def tune(self, n: int, *, precision: Precision = Precision.FP64) -> AutotuneResult:
        table: list[tuple[TileConfig, float]] = []
        for cfg in self.search_space:
            spec = kernel_for_config(n, cfg, precision=precision)
            table.append((cfg, time_kernel(spec, self.device).total_time))
        table.sort(key=lambda pair: pair[1])
        best, best_time = table[0]
        spec = kernel_for_config(n, best, precision=precision)
        return AutotuneResult(
            best=best,
            best_time=best_time,
            best_tflops=achieved_flops(spec, self.device) / 1e12,
            evaluated=len(table),
            table=table,
        )
