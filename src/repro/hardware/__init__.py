"""Hardware substrate: GPU/CPU/node/machine/interconnect specifications.

The catalog (`repro.hardware.catalog`) holds frozen instances of every
system named in the paper; all timing models elsewhere in the library are
derived from these first-principles spec-sheet numbers.
"""

from repro.hardware.cpu import ALL_CPUS, CPUSpec, cpu_by_name
from repro.hardware.gpu import (
    ALL_GPUS,
    MI60,
    MI100,
    MI250X,
    MI250X_GCD,
    P100,
    V100,
    GPUSpec,
    GPUVendor,
    Precision,
    gpu_by_name,
)
from repro.hardware.interconnect import (
    ALL_INTERCONNECTS,
    ARIES,
    EARLY_ACCESS_FABRIC,
    IB_EDR,
    IB_EDR_DUAL,
    SLINGSHOT_10,
    SLINGSHOT_11,
    InterconnectSpec,
)
from repro.hardware.machine import MachineSpec
from repro.hardware.node import NodeSpec
from repro.hardware.catalog import (
    ALL_MACHINES,
    BIRCH,
    CORI,
    CRUSHER,
    EAGLE,
    EARLY_ACCESS_PROGRESSION,
    FRONTIER,
    FRONTIER_NODE,
    POPLAR,
    SPOCK,
    SUMMIT,
    SUMMIT_NODE,
    THETA,
    TULIP,
    machine_by_name,
)

__all__ = [
    "ALL_CPUS",
    "ALL_GPUS",
    "ALL_INTERCONNECTS",
    "ALL_MACHINES",
    "ARIES",
    "BIRCH",
    "CORI",
    "CRUSHER",
    "CPUSpec",
    "EAGLE",
    "EARLY_ACCESS_FABRIC",
    "EARLY_ACCESS_PROGRESSION",
    "FRONTIER",
    "FRONTIER_NODE",
    "GPUSpec",
    "GPUVendor",
    "IB_EDR",
    "IB_EDR_DUAL",
    "InterconnectSpec",
    "MachineSpec",
    "MI100",
    "MI250X",
    "MI250X_GCD",
    "MI60",
    "NodeSpec",
    "P100",
    "POPLAR",
    "Precision",
    "SLINGSHOT_10",
    "SLINGSHOT_11",
    "SPOCK",
    "SUMMIT",
    "SUMMIT_NODE",
    "THETA",
    "TULIP",
    "V100",
    "cpu_by_name",
    "gpu_by_name",
    "machine_by_name",
]
