"""Canonical machine catalog: every system named in the paper.

Production machines (Summit, Frontier, Cori, Theta, Eagle, Titan-era
omitted), plus the three generations of Frontier early-access platforms
described in Section 4: Poplar/Tulip (MI60 + Naples), Spock/Birch
(MI100 + Rome + Slingshot-10), and Crusher (Frontier node architecture).
"""

from __future__ import annotations

from repro.hardware import cpu as _cpu
from repro.hardware import gpu as _gpu
from repro.hardware import interconnect as _ic
from repro.hardware.machine import MachineSpec
from repro.hardware.node import NodeSpec

# ---------------------------------------------------------------------------
# Node designs
# ---------------------------------------------------------------------------

SUMMIT_NODE = NodeSpec(
    name="Summit node",
    cpu=_cpu.POWER9,
    cpu_sockets=2,
    gpu=_gpu.V100,
    gpus_per_node=6,
    interconnect=_ic.IB_EDR_DUAL,
)

FRONTIER_NODE = NodeSpec(
    name="Frontier node",
    cpu=_cpu.EPYC_TRENTO,
    cpu_sockets=1,
    gpu=_gpu.MI250X_GCD,
    gpus_per_node=8,  # 4 MI250X packages, each exposing 2 GCDs
    interconnect=_ic.SLINGSHOT_11,
)

CORI_NODE = NodeSpec(
    name="Cori KNL node",
    cpu=_cpu.KNL_CORI,
    cpu_sockets=1,
    interconnect=_ic.ARIES,
)

THETA_NODE = NodeSpec(
    name="Theta KNL node",
    cpu=_cpu.KNL_THETA,
    cpu_sockets=1,
    interconnect=_ic.ARIES,
)

EAGLE_NODE = NodeSpec(
    name="Eagle node",
    cpu=_cpu.SKYLAKE_EAGLE,
    cpu_sockets=2,
    interconnect=_ic.IB_EDR,
)

POPLAR_NODE = NodeSpec(
    name="Poplar/Tulip node",
    cpu=_cpu.EPYC_NAPLES,
    cpu_sockets=2,
    gpu=_gpu.MI60,
    gpus_per_node=4,
    interconnect=_ic.EARLY_ACCESS_FABRIC,
)

SPOCK_NODE = NodeSpec(
    name="Spock/Birch node",
    cpu=_cpu.EPYC_ROME,
    cpu_sockets=1,
    gpu=_gpu.MI100,
    gpus_per_node=4,
    interconnect=_ic.SLINGSHOT_10,
)

CRUSHER_NODE = NodeSpec(
    name="Crusher node",
    cpu=_cpu.EPYC_TRENTO,
    cpu_sockets=1,
    gpu=_gpu.MI250X_GCD,
    gpus_per_node=8,
    interconnect=_ic.SLINGSHOT_11,
)

# ---------------------------------------------------------------------------
# Machines
# ---------------------------------------------------------------------------

SUMMIT = MachineSpec(name="Summit", site="OLCF", node=SUMMIT_NODE, nodes=4608, year=2018)
FRONTIER = MachineSpec(
    name="Frontier", site="OLCF", node=FRONTIER_NODE, nodes=9408, year=2022, generation=4
)
CORI = MachineSpec(name="Cori", site="NERSC", node=CORI_NODE, nodes=9688, year=2016)
THETA = MachineSpec(name="Theta", site="ALCF", node=THETA_NODE, nodes=4392, year=2017)
EAGLE = MachineSpec(name="Eagle", site="NREL", node=EAGLE_NODE, nodes=2114, year=2018)

POPLAR = MachineSpec(
    name="Poplar", site="HPE", node=POPLAR_NODE, nodes=64, year=2019, generation=1
)
TULIP = MachineSpec(
    name="Tulip", site="HPE", node=POPLAR_NODE, nodes=64, year=2019, generation=1
)
SPOCK = MachineSpec(
    name="Spock", site="OLCF", node=SPOCK_NODE, nodes=36, year=2021, generation=2
)
BIRCH = MachineSpec(
    name="Birch", site="HPE", node=SPOCK_NODE, nodes=12, year=2020, generation=2
)
CRUSHER = MachineSpec(
    name="Crusher", site="OLCF", node=CRUSHER_NODE, nodes=192, year=2022, generation=3
)

ALL_MACHINES: tuple[MachineSpec, ...] = (
    SUMMIT,
    FRONTIER,
    CORI,
    THETA,
    EAGLE,
    POPLAR,
    TULIP,
    SPOCK,
    BIRCH,
    CRUSHER,
)

#: The paper's early-access progression in deployment order (Section 4).
EARLY_ACCESS_PROGRESSION: tuple[MachineSpec, ...] = (POPLAR, TULIP, BIRCH, SPOCK, CRUSHER)

#: The production GPU systems every app readied for — the machines the
#: autotuning navigator (:mod:`repro.tuning`) searches configurations on.
TUNING_MACHINES: tuple[MachineSpec, ...] = (SUMMIT, FRONTIER)


def machine_by_name(name: str) -> MachineSpec:
    """Look up a catalog machine by name (case-insensitive)."""
    for m in ALL_MACHINES:
        if m.name.lower() == name.lower():
            return m
    raise KeyError(f"unknown machine {name!r}; known: {[m.name for m in ALL_MACHINES]}")
