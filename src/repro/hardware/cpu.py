"""CPU hardware specifications for the machines in the paper's history.

Figure 2's PeleC timeline starts on many-core CPU machines (Cori and Theta's
Knights Landing, Eagle's Skylake), and every GPU node also has a host CPU
whose throughput matters for un-offloaded code.  The model is the same
roofline style as the GPU side: peak FLOP/s and streaming bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import Precision

_T = 1e12
_G = 1e9


@dataclass(frozen=True)
class CPUSpec:
    """Static description of one CPU socket.

    ``peak_flops_fp64`` is the vector peak of one socket; ``mem_bandwidth``
    is the socket's streaming bandwidth (MCDRAM for KNL).  ``smt`` is the
    hardware-thread multiplier.
    """

    name: str
    cores: int
    peak_flops_fp64: float
    mem_bandwidth: float
    mem_capacity: float
    smt: int = 1
    base_clock_hz: float = 2.0e9

    @property
    def peak_flops_fp32(self) -> float:
        return 2.0 * self.peak_flops_fp64

    def peak(self, precision: Precision) -> float:
        if precision == Precision.FP64:
            return self.peak_flops_fp64
        return self.peak_flops_fp32

    @property
    def effective_bandwidth(self) -> float:
        """Achievable streaming bandwidth in B/s (0.8 derate vs. spec)."""
        return 0.8 * self.mem_bandwidth


_GiB = 1024.0**3

#: Intel Xeon Phi 7250 "Knights Landing" — NERSC Cori (68 cores/node).
KNL_CORI = CPUSpec(
    name="Xeon Phi 7250 (Cori)",
    cores=68,
    peak_flops_fp64=3.0 * _T,
    mem_bandwidth=450 * _G,  # MCDRAM
    mem_capacity=96 * _GiB,
    smt=4,
    base_clock_hz=1.4e9,
)

#: Intel Xeon Phi 7230 — ANL Theta (64 cores/node).
KNL_THETA = CPUSpec(
    name="Xeon Phi 7230 (Theta)",
    cores=64,
    peak_flops_fp64=2.6 * _T,
    mem_bandwidth=450 * _G,
    mem_capacity=192 * _GiB,
    smt=4,
    base_clock_hz=1.3e9,
)

#: Intel Xeon Gold 6154 "Skylake" — NREL Eagle (dual socket, 18 cores each).
SKYLAKE_EAGLE = CPUSpec(
    name="Xeon Gold 6154 (Eagle)",
    cores=18,
    peak_flops_fp64=1.1 * _T,
    mem_bandwidth=128 * _G,
    mem_capacity=96 * _GiB,
    smt=2,
    base_clock_hz=3.0e9,
)

#: IBM POWER9 — OLCF Summit host CPU (22 cores/socket, 2 sockets).
POWER9 = CPUSpec(
    name="POWER9",
    cores=22,
    peak_flops_fp64=0.54 * _T,
    mem_bandwidth=170 * _G,
    mem_capacity=256 * _GiB,
    smt=4,
    base_clock_hz=3.1e9,
)

#: AMD EPYC 7601 "Naples" — first-gen early access (Poplar/Tulip).
EPYC_NAPLES = CPUSpec(
    name="EPYC 7601 (Naples)",
    cores=32,
    peak_flops_fp64=0.56 * _T,
    mem_bandwidth=170 * _G,
    mem_capacity=256 * _GiB,
    smt=2,
    base_clock_hz=2.2e9,
)

#: AMD EPYC 7662 "Rome" — second-gen early access (Spock/Birch).
EPYC_ROME = CPUSpec(
    name="EPYC 7662 (Rome)",
    cores=64,
    peak_flops_fp64=2.0 * _T,
    mem_bandwidth=204 * _G,
    mem_capacity=256 * _GiB,
    smt=2,
    base_clock_hz=2.0e9,
)

#: AMD "optimized 3rd-gen EPYC" (Trento) — Crusher and Frontier host CPU.
EPYC_TRENTO = CPUSpec(
    name="EPYC 7A53 (Trento)",
    cores=64,
    peak_flops_fp64=2.0 * _T,
    mem_bandwidth=205 * _G,
    mem_capacity=512 * _GiB,
    smt=2,
    base_clock_hz=2.0e9,
)

ALL_CPUS: tuple[CPUSpec, ...] = (
    KNL_CORI,
    KNL_THETA,
    SKYLAKE_EAGLE,
    POWER9,
    EPYC_NAPLES,
    EPYC_ROME,
    EPYC_TRENTO,
)


def cpu_by_name(name: str) -> CPUSpec:
    """Look up a catalog CPU by its exact :attr:`CPUSpec.name`."""
    for spec in ALL_CPUS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown CPU {name!r}; known: {[c.name for c in ALL_CPUS]}")
