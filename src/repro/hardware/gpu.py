"""GPU hardware specifications.

Every accelerator named in the paper is modelled from public spec-sheet
numbers: peak floating-point throughput per precision, HBM bandwidth and
capacity, host link bandwidth, kernel-launch latency, wavefront width, and
the register/LDS resources that drive the occupancy model in
:mod:`repro.gpu.occupancy`.

The MI250X is a dual-die package: each Graphics Compute Die (GCD) is
addressed as a separate device by the runtime, so the catalog exposes both
the per-GCD device (what a rank binds to) and the full-package aggregate
(what marketing numbers quote).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Precision(enum.Enum):
    """Arithmetic precision of a kernel's dominant floating-point work."""

    FP64 = "fp64"
    FP32 = "fp32"
    FP16 = "fp16"
    BF16 = "bf16"
    INT8 = "int8"

    @property
    def bytes_per_element(self) -> int:
        return {
            Precision.FP64: 8,
            Precision.FP32: 4,
            Precision.FP16: 2,
            Precision.BF16: 2,
            Precision.INT8: 1,
        }[self]


class GPUVendor(enum.Enum):
    NVIDIA = "nvidia"
    AMD = "amd"


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU device (one die, for dual-die parts).

    Parameters
    ----------
    name:
        Human-readable product name (e.g. ``"MI250X (1 GCD)"``).
    vendor:
        :class:`GPUVendor`; selects the native programming model and the
        wavefront width default.
    peak_flops:
        Map from :class:`Precision` to peak vector throughput in FLOP/s.
    peak_matrix_flops:
        Map from :class:`Precision` to peak matrix-engine (tensor core /
        MFMA) throughput in FLOP/s.  Empty for devices without one.
    mem_bandwidth:
        STREAM-achievable device memory bandwidth in B/s (we store the
        spec-sheet number; an ``hbm_efficiency`` derate is applied by the
        perf model).
    mem_capacity:
        Device memory capacity in bytes.
    host_link_bandwidth:
        Host-device link bandwidth in B/s (PCIe gen3/4, or Infinity
        Fabric for Frontier's coherent CPU-GPU link).
    host_link_latency:
        One-way host-device transfer setup latency in seconds.
    kernel_launch_latency:
        Time from launch API call until the kernel starts on an idle
        device, in seconds.
    compute_units:
        Number of SMs (NVIDIA) or CUs (AMD).
    wavefront_size:
        Native SIMD width: 32 on NVIDIA, 64 on AMD CDNA.
    registers_per_cu:
        32-bit architectural vector registers available per CU/SM.
    max_registers_per_thread:
        Compiler ceiling before spilling to scratch.
    lds_per_cu:
        Shared-memory/LDS bytes per CU/SM.
    max_waves_per_cu:
        Hardware occupancy ceiling, in wavefronts per CU.
    hbm_efficiency:
        Fraction of spec-sheet bandwidth achievable by well-written
        streaming kernels (≈0.85 on HBM2e parts).
    """

    name: str
    vendor: GPUVendor
    peak_flops: dict[Precision, float]
    peak_matrix_flops: dict[Precision, float] = field(default_factory=dict)
    mem_bandwidth: float = 0.0
    mem_capacity: float = 0.0
    host_link_bandwidth: float = 0.0
    host_link_latency: float = 10e-6
    kernel_launch_latency: float = 5e-6
    compute_units: int = 0
    wavefront_size: int = 32
    registers_per_cu: int = 65536
    max_registers_per_thread: int = 255
    lds_per_cu: int = 65536
    max_waves_per_cu: int = 32
    hbm_efficiency: float = 0.85

    def peak(self, precision: Precision, *, matrix: bool = False) -> float:
        """Peak FLOP/s at *precision*, using the matrix engine if requested.

        Falls back to vector throughput when no matrix engine supports the
        precision, mirroring how libraries fall back to vector kernels.
        """
        if matrix and precision in self.peak_matrix_flops:
            return self.peak_matrix_flops[precision]
        if precision not in self.peak_flops:
            raise KeyError(f"{self.name} has no {precision.value} throughput")
        return self.peak_flops[precision]

    @property
    def effective_bandwidth(self) -> float:
        """Achievable streaming bandwidth in B/s."""
        return self.mem_bandwidth * self.hbm_efficiency

    def ridge_intensity(self, precision: Precision, *, matrix: bool = False) -> float:
        """Roofline ridge point (FLOP/byte) at *precision*."""
        return self.peak(precision, matrix=matrix) / self.effective_bandwidth


_T = 1e12
_G = 1e9
_GiB = 1024.0**3

#: NVIDIA Tesla V100 (SXM2, 16/32 GB) — six per Summit node.
V100 = GPUSpec(
    name="V100",
    vendor=GPUVendor.NVIDIA,
    peak_flops={
        Precision.FP64: 7.8 * _T,
        Precision.FP32: 15.7 * _T,
        Precision.FP16: 31.4 * _T,
    },
    peak_matrix_flops={Precision.FP16: 125.0 * _T},
    mem_bandwidth=900 * _G,
    mem_capacity=16 * _GiB,
    host_link_bandwidth=50 * _G,  # NVLink2 to POWER9 (3 bricks x ~16.6 GB/s)
    host_link_latency=8e-6,
    kernel_launch_latency=4.0e-6,
    compute_units=80,
    wavefront_size=32,
    registers_per_cu=65536,
    max_registers_per_thread=255,
    lds_per_cu=96 * 1024,
    max_waves_per_cu=64,
    hbm_efficiency=0.87,
)

#: NVIDIA P100 — for the 2018 starting points in Figure 2's history.
P100 = GPUSpec(
    name="P100",
    vendor=GPUVendor.NVIDIA,
    peak_flops={
        Precision.FP64: 5.3 * _T,
        Precision.FP32: 10.6 * _T,
        Precision.FP16: 21.2 * _T,
    },
    mem_bandwidth=732 * _G,
    mem_capacity=16 * _GiB,
    host_link_bandwidth=16 * _G,
    kernel_launch_latency=5.0e-6,
    compute_units=56,
    wavefront_size=32,
    max_waves_per_cu=64,
    hbm_efficiency=0.82,
)

#: AMD Instinct MI60 — first-generation early-access systems (Poplar/Tulip).
MI60 = GPUSpec(
    name="MI60",
    vendor=GPUVendor.AMD,
    peak_flops={
        Precision.FP64: 7.4 * _T,
        Precision.FP32: 14.7 * _T,
        Precision.FP16: 29.5 * _T,
    },
    mem_bandwidth=1024 * _G,
    mem_capacity=32 * _GiB,
    host_link_bandwidth=32 * _G,  # PCIe gen4 x16
    kernel_launch_latency=7.0e-6,  # early ROCm launch path was slower
    compute_units=64,
    wavefront_size=64,
    registers_per_cu=131072,
    max_registers_per_thread=256,
    lds_per_cu=64 * 1024,
    max_waves_per_cu=40,
    hbm_efficiency=0.80,
)

#: AMD Instinct MI100 — second-generation early access (Spock/Birch).
MI100 = GPUSpec(
    name="MI100",
    vendor=GPUVendor.AMD,
    peak_flops={
        Precision.FP64: 11.5 * _T,
        Precision.FP32: 23.1 * _T,
        Precision.FP16: 46.1 * _T,
    },
    peak_matrix_flops={
        Precision.FP32: 46.1 * _T,
        Precision.FP16: 184.6 * _T,
        Precision.BF16: 92.3 * _T,
    },
    mem_bandwidth=1228 * _G,
    mem_capacity=32 * _GiB,
    host_link_bandwidth=32 * _G,
    kernel_launch_latency=6.0e-6,
    compute_units=120,
    wavefront_size=64,
    registers_per_cu=131072,
    max_registers_per_thread=256,
    lds_per_cu=64 * 1024,
    max_waves_per_cu=40,
    hbm_efficiency=0.82,
)

#: One Graphics Compute Die of the AMD Instinct MI250X.  Frontier exposes
#: each GCD as a separate device; a node has 4 packages = 8 GCDs.
MI250X_GCD = GPUSpec(
    name="MI250X (1 GCD)",
    vendor=GPUVendor.AMD,
    peak_flops={
        Precision.FP64: 23.95 * _T,
        Precision.FP32: 23.95 * _T,
        Precision.FP16: 95.8 * _T,
    },
    peak_matrix_flops={
        Precision.FP64: 47.9 * _T,
        Precision.FP32: 47.9 * _T,
        Precision.FP16: 191.5 * _T,
        Precision.BF16: 191.5 * _T,
        Precision.INT8: 191.5 * _T,
    },
    mem_bandwidth=1638 * _G,
    mem_capacity=64 * _GiB,
    host_link_bandwidth=36 * _G,  # Infinity Fabric CPU-GCD link
    host_link_latency=6e-6,
    kernel_launch_latency=5.0e-6,
    compute_units=110,
    wavefront_size=64,
    registers_per_cu=131072,
    max_registers_per_thread=256,
    lds_per_cu=64 * 1024,
    max_waves_per_cu=32,
    hbm_efficiency=0.85,
)

#: Full MI250X package (both GCDs) — used when quoting per-"GPU" numbers the
#: way the paper does (e.g. COAST's 30.6 TF on "one MI250X").
MI250X = GPUSpec(
    name="MI250X",
    vendor=GPUVendor.AMD,
    peak_flops={
        Precision.FP64: 47.9 * _T,
        Precision.FP32: 47.9 * _T,
        Precision.FP16: 191.5 * _T,
    },
    peak_matrix_flops={
        Precision.FP64: 95.7 * _T,
        Precision.FP32: 95.7 * _T,
        Precision.FP16: 383.0 * _T,
        Precision.BF16: 383.0 * _T,
        Precision.INT8: 383.0 * _T,
    },
    mem_bandwidth=3276 * _G,
    mem_capacity=128 * _GiB,
    host_link_bandwidth=72 * _G,
    host_link_latency=6e-6,
    kernel_launch_latency=5.0e-6,
    compute_units=220,
    wavefront_size=64,
    registers_per_cu=131072,
    max_registers_per_thread=256,
    lds_per_cu=64 * 1024,
    max_waves_per_cu=32,
    hbm_efficiency=0.85,
)

ALL_GPUS: tuple[GPUSpec, ...] = (P100, V100, MI60, MI100, MI250X_GCD, MI250X)


def gpu_by_name(name: str) -> GPUSpec:
    """Look up a catalog GPU by its exact :attr:`GPUSpec.name`."""
    for spec in ALL_GPUS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown GPU {name!r}; known: {[g.name for g in ALL_GPUS]}")
