"""Interconnect specifications (Hockney α-β parameters per fabric).

The paper's machines span Cray Aries (Cori/Theta), dual-rail EDR InfiniBand
(Summit), and two generations of HPE Slingshot (100 GbE on Spock/Birch,
200 GbE on Crusher/Frontier).  The MPI cost model in
:mod:`repro.mpisim.costmodel` consumes these parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

_G = 1e9


@dataclass(frozen=True)
class InterconnectSpec:
    """Point-to-point fabric parameters.

    Parameters
    ----------
    name:
        Fabric product name.
    latency:
        Small-message one-way latency α in seconds (MPI level).
    bandwidth:
        Per-NIC injection bandwidth in B/s (1/β).
    nics_per_node:
        Injection ports per node; ranks on a node share them.
    gpu_aware:
        Whether the MPI stack can move device buffers without staging
        through host memory.
    gpu_aware_efficiency:
        Fraction of link bandwidth achieved on device-resident buffers.
    """

    name: str
    latency: float
    bandwidth: float
    nics_per_node: int = 1
    gpu_aware: bool = False
    gpu_aware_efficiency: float = 0.9

    @property
    def node_injection_bandwidth(self) -> float:
        """Aggregate injection bandwidth of one node in B/s."""
        return self.bandwidth * self.nics_per_node


#: Cray Aries dragonfly — Cori, Theta.
ARIES = InterconnectSpec(
    name="Cray Aries",
    latency=1.3e-6,
    bandwidth=10.0 * _G,
    nics_per_node=1,
    gpu_aware=False,
)

#: Dual-rail EDR InfiniBand — Summit.
IB_EDR_DUAL = InterconnectSpec(
    name="EDR InfiniBand (dual-rail)",
    latency=1.0e-6,
    bandwidth=12.5 * _G,
    nics_per_node=2,
    gpu_aware=True,
    gpu_aware_efficiency=0.92,
)

#: EDR InfiniBand single rail — NREL Eagle.
IB_EDR = InterconnectSpec(
    name="EDR InfiniBand",
    latency=1.0e-6,
    bandwidth=12.5 * _G,
    nics_per_node=1,
    gpu_aware=False,
)

#: HPE Slingshot with 100 GbE NICs (Slingshot-10) — Spock, Birch.
SLINGSHOT_10 = InterconnectSpec(
    name="Slingshot-10 (100 GbE)",
    latency=1.8e-6,
    bandwidth=12.5 * _G,
    nics_per_node=1,
    gpu_aware=True,
    gpu_aware_efficiency=0.85,
)

#: HPE Slingshot with 200 GbE Cassini NICs (Slingshot-11) — Crusher, Frontier.
SLINGSHOT_11 = InterconnectSpec(
    name="Slingshot-11 (200 GbE)",
    latency=1.7e-6,
    bandwidth=25.0 * _G,
    nics_per_node=4,
    gpu_aware=True,
    gpu_aware_efficiency=0.92,
)

#: First-generation early-access clusters used plain 100 Gb IB-class fabric.
EARLY_ACCESS_FABRIC = InterconnectSpec(
    name="100 Gb fabric (early access)",
    latency=1.5e-6,
    bandwidth=12.5 * _G,
    nics_per_node=1,
    gpu_aware=False,
)

ALL_INTERCONNECTS: tuple[InterconnectSpec, ...] = (
    ARIES,
    IB_EDR_DUAL,
    IB_EDR,
    SLINGSHOT_10,
    SLINGSHOT_11,
    EARLY_ACCESS_FABRIC,
)
