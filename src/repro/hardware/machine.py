"""Machine (full-system) specifications."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.gpu import Precision
from repro.hardware.node import NodeSpec


@dataclass(frozen=True)
class MachineSpec:
    """A named system: a node design replicated ``nodes`` times.

    ``generation`` tags the paper's early-access progression: 0 for
    production precursors (Summit, Cori, ...), 1-3 for the three
    early-access generations, 4 for Frontier itself.
    """

    name: str
    site: str
    node: NodeSpec
    nodes: int
    year: int
    generation: int = 0

    def peak_flops(self, precision: Precision = Precision.FP64, *, matrix: bool = False) -> float:
        """System peak FLOP/s at *precision*."""
        return self.nodes * self.node.peak_flops(precision, matrix=matrix)

    @property
    def total_devices(self) -> int:
        """Total GPU devices in the system (0 for CPU machines)."""
        return self.nodes * self.node.gpus_per_node

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        gpu = (
            f"{self.node.gpus_per_node}x {self.node.gpu.name}"
            if self.node.has_gpus
            else "CPU-only"
        )
        pf = self.peak_flops(Precision.FP64) / 1e15
        return (
            f"{self.name} ({self.site}, {self.year}): {self.nodes} nodes x "
            f"[{self.node.cpu_sockets}x {self.node.cpu.name} + {gpu}], "
            f"{pf:.2f} PF FP64"
        )
