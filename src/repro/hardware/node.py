"""Node architecture: CPU sockets + GPU devices + fabric attachment."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cpu import CPUSpec
from repro.hardware.gpu import GPUSpec, Precision
from repro.hardware.interconnect import InterconnectSpec


@dataclass(frozen=True)
class NodeSpec:
    """One compute node.

    ``gpus_per_node`` counts *devices as the runtime sees them* — 8 for a
    Frontier node (four MI250X packages, two GCDs each), 6 for Summit.
    ``gpu`` is therefore the per-device spec (MI250X GCD, not the package).
    """

    name: str
    cpu: CPUSpec
    cpu_sockets: int
    gpu: GPUSpec | None = None
    gpus_per_node: int = 0
    interconnect: InterconnectSpec | None = None

    @property
    def has_gpus(self) -> bool:
        return self.gpu is not None and self.gpus_per_node > 0

    def peak_flops(self, precision: Precision = Precision.FP64, *, matrix: bool = False) -> float:
        """Aggregate node peak FLOP/s at *precision* (GPUs if present, else CPUs)."""
        if self.has_gpus:
            assert self.gpu is not None
            return self.gpus_per_node * self.gpu.peak(precision, matrix=matrix)
        return self.cpu_sockets * self.cpu.peak(precision)

    @property
    def node_memory_bandwidth(self) -> float:
        """Aggregate achievable memory bandwidth in B/s."""
        if self.has_gpus:
            assert self.gpu is not None
            return self.gpus_per_node * self.gpu.effective_bandwidth
        return self.cpu_sockets * self.cpu.effective_bandwidth

    @property
    def gpu_memory_capacity(self) -> float:
        if not self.has_gpus:
            return 0.0
        assert self.gpu is not None
        return self.gpus_per_node * self.gpu.mem_capacity
