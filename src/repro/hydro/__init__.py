"""Cholla-class compressible hydro substrate (1-D Euler, HLL)."""

from repro.hydro.euler1d import (
    SOD_EXACT,
    Euler1D,
    IdealGas,
    sod_plateau_states,
)

__all__ = [
    "ignition_demo",
    "ReactingFlow1D","Euler1D", "IdealGas", "SOD_EXACT", "sod_plateau_states"]
from repro.hydro.reacting import ReactingFlow1D, ignition_demo
