"""1-D compressible Euler solver: the Cholla-class astrophysical hydro.

Section 2.1 cites Cholla's single-header macro strategy for staying in
CUDA while running on AMD.  Cholla itself is a GPU finite-volume Euler
code; this module implements its 1-D core for real — conservative
finite-volume update with HLL fluxes and an ideal-gas EOS — verified on
the Sod shock tube against the exact Riemann solution's plateau states.

The GPU mini-app wrapper (:mod:`repro.apps.cholla`) drives these kernels
through the macro compatibility layer on either vendor's runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IdealGas:
    gamma: float = 1.4

    def pressure(self, rho: np.ndarray, mom: np.ndarray, ener: np.ndarray) -> np.ndarray:
        """p = (γ−1)(E − ½ρu²)."""
        u = mom / rho
        return (self.gamma - 1.0) * (ener - 0.5 * rho * u * u)

    def sound_speed(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        return np.sqrt(self.gamma * np.maximum(p, 1e-300) / rho)


@dataclass
class Euler1D:
    """Conservative state U = (ρ, ρu, E) on a uniform grid with outflow BCs."""

    rho: np.ndarray
    mom: np.ndarray
    ener: np.ndarray
    dx: float
    eos: IdealGas = IdealGas()

    def __post_init__(self) -> None:
        if not (len(self.rho) == len(self.mom) == len(self.ener)):
            raise ValueError("state components must have equal length")
        if self.dx <= 0:
            raise ValueError("dx must be positive")

    @classmethod
    def sod(cls, n: int = 400, *, gamma: float = 1.4) -> "Euler1D":
        """The Sod shock-tube initial condition on [0, 1], interface at 0.5."""
        if n < 10:
            raise ValueError("need at least 10 cells")
        x = (np.arange(n) + 0.5) / n
        rho = np.where(x < 0.5, 1.0, 0.125)
        p = np.where(x < 0.5, 1.0, 0.1)
        mom = np.zeros(n)
        ener = p / (gamma - 1.0)
        return cls(rho=rho, mom=mom, ener=ener, dx=1.0 / n,
                   eos=IdealGas(gamma=gamma))

    # -- physics --------------------------------------------------------------

    def primitive(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        u = self.mom / self.rho
        p = self.eos.pressure(self.rho, self.mom, self.ener)
        return self.rho, u, p

    def _flux(self, rho, mom, ener):
        u = mom / rho
        p = self.eos.pressure(rho, mom, ener)
        return np.stack([mom, mom * u + p, (ener + p) * u])

    def _hll_fluxes(self):
        """HLL flux at each interior face (outflow ghost at the ends)."""
        rho = np.concatenate([[self.rho[0]], self.rho, [self.rho[-1]]])
        mom = np.concatenate([[self.mom[0]], self.mom, [self.mom[-1]]])
        ener = np.concatenate([[self.ener[0]], self.ener, [self.ener[-1]]])
        uL = (rho[:-1], mom[:-1], ener[:-1])
        uR = (rho[1:], mom[1:], ener[1:])
        fL = self._flux(*uL)
        fR = self._flux(*uR)
        vL = mom[:-1] / rho[:-1]
        vR = mom[1:] / rho[1:]
        pL = self.eos.pressure(*uL)
        pR = self.eos.pressure(*uR)
        cL = self.eos.sound_speed(rho[:-1], pL)
        cR = self.eos.sound_speed(rho[1:], pR)
        sL = np.minimum(vL - cL, vR - cR)
        sR = np.maximum(vL + cL, vR + cR)
        UL = np.stack(uL)
        UR = np.stack(uR)
        with np.errstate(divide="ignore", invalid="ignore"):
            hll = (sR * fL - sL * fR + sL * sR * (UR - UL)) / (sR - sL)
        flux = np.where(sL >= 0, fL, np.where(sR <= 0, fR, hll))
        return flux  # shape (3, n+1)

    def max_wavespeed(self) -> float:
        rho, u, p = self.primitive()
        return float(np.max(np.abs(u) + self.eos.sound_speed(rho, p)))

    def step(self, cfl: float = 0.5) -> float:
        """One first-order Godunov/HLL step; returns the dt taken."""
        if not 0 < cfl <= 1:
            raise ValueError("cfl must be in (0, 1]")
        dt = cfl * self.dx / self.max_wavespeed()
        flux = self._hll_fluxes()
        dfdx = (flux[:, 1:] - flux[:, :-1]) / self.dx
        self.rho -= dt * dfdx[0]
        self.mom -= dt * dfdx[1]
        self.ener -= dt * dfdx[2]
        if np.any(self.rho <= 0):
            raise FloatingPointError("negative density: CFL too aggressive")
        return dt

    def run_until(self, t_end: float, *, cfl: float = 0.5) -> int:
        """Advance to *t_end*; returns the number of steps taken."""
        if t_end <= 0:
            raise ValueError("t_end must be positive")
        t, steps = 0.0, 0
        while t < t_end:
            dt = min(self.step(cfl), t_end - t)
            t += dt
            steps += 1
            if steps > 100_000:
                raise RuntimeError("step limit exceeded")
        return steps

    def total_mass(self) -> float:
        return float(self.rho.sum() * self.dx)

    def total_energy(self) -> float:
        return float(self.ener.sum() * self.dx)


#: Exact Sod solution plateau states at γ=1.4 (Toro, Table 4.2):
#: the star-region pressure and the density on each side of the contact.
SOD_EXACT = {
    "p_star": 0.30313,
    "rho_star_left": 0.42632,
    "rho_star_right": 0.26557,
    "u_star": 0.92745,
}


def sod_plateau_states(solver: Euler1D, *, t: float = 0.2) -> dict[str, float]:
    """Measured star-region states of a Sod run at time *t*.

    Samples the solution just left/right of the contact discontinuity
    (which has moved to x = 0.5 + u*·t).
    """
    rho, u, p = solver.primitive()
    n = len(rho)
    x_contact = 0.5 + SOD_EXACT["u_star"] * t
    i_contact = int(x_contact * n)
    off = max(3, n // 80)
    return {
        "p_star": float(p[i_contact - off]),
        "rho_star_left": float(rho[i_contact - off]),
        "rho_star_right": float(rho[i_contact + off]),
        "u_star": float(u[i_contact - off]),
    }
