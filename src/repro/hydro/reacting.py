"""Operator-split reacting flow: PeleC's structure in one dimension.

PeleC advances the compressible Navier-Stokes equations with chemistry by
Strang-type operator splitting: a hydrodynamic advance (here the real HLL
Euler step) alternating with a stiff chemistry advance per cell (here the
real CVODE-like BDF integration of a mechanism).  This module couples the
two working substrates into an actual reacting-flow solver:

* species mass fractions advect conservatively with the flow;
* each cell's composition reacts at its local temperature;
* heat release feeds back into the energy field.

Tests verify elemental conservation through the split, positivity, and
ignition behaviour (hot region reacts, cold region does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chem.codegen import compile_batched_kernels
from repro.chem.kinetics import chemistry_rhs
from repro.chem.mechanism import Mechanism, h2_o2_mechanism
from repro.hydro.euler1d import Euler1D
from repro.ode import BatchedBdfIntegrator, BdfIntegrator
from repro.resilience.snapshot import Snapshot, require_kind


@dataclass
class ReactingFlow1D:
    """1-D reacting Euler flow with per-cell stiff chemistry.

    ``concentrations`` has shape (n_species, n_cells); temperature is the
    local specific internal energy scaled by ``temperature_scale`` — a
    caloric model adequate for exercising the coupling.

    By default the chemistry advance is *batched* (§3.8's CVODE+MAGMA
    motif): all burning cells integrate simultaneously through generated
    vectorized rates, analytic batched Jacobians, and batched LU Newton
    solves.  ``use_batched_chemistry=False`` selects the original
    cell-at-a-time scalar loop, kept as a reference ablation.
    """

    hydro: Euler1D
    mechanism: Mechanism = field(default_factory=h2_o2_mechanism)
    concentrations: np.ndarray | None = None
    heat_release: float = 5.0e3  # energy per mole reacted into products
    temperature_scale: float = 300.0
    use_batched_chemistry: bool = True

    def __post_init__(self) -> None:
        n = len(self.hydro.rho)
        if self.concentrations is None:
            self.concentrations = np.zeros((self.mechanism.n_species, n))
        if self.concentrations.shape != (self.mechanism.n_species, n):
            raise ValueError(
                f"concentrations must be ({self.mechanism.n_species}, {n})"
            )

    # -- checkpoint/restart -----------------------------------------------------

    snapshot_kind = "hydro.reacting_flow1d"
    snapshot_version = 1

    def snapshot(self) -> Snapshot:
        """Full solver state: hydro conservatives + species field + knobs.

        The mechanism itself is configuration, not state — restore
        validates its shape rather than rebuilding it from bytes.
        """
        return Snapshot(self.snapshot_kind, self.snapshot_version, {
            "rho": self.hydro.rho,
            "mom": self.hydro.mom,
            "ener": self.hydro.ener,
            "dx": float(self.hydro.dx),
            "gamma": float(self.hydro.eos.gamma),
            "concentrations": self.concentrations,
            "heat_release": float(self.heat_release),
            "temperature_scale": float(self.temperature_scale),
            "use_batched_chemistry": bool(self.use_batched_chemistry),
            "n_species": int(self.mechanism.n_species),
        })

    def restore(self, snap: Snapshot) -> None:
        require_kind(snap, self)
        p = snap.payload
        if p["n_species"] != self.mechanism.n_species:
            raise ValueError(
                f"snapshot has {p['n_species']} species, mechanism has "
                f"{self.mechanism.n_species}"
            )
        self.hydro.rho = p["rho"].copy()
        self.hydro.mom = p["mom"].copy()
        self.hydro.ener = p["ener"].copy()
        self.hydro.dx = p["dx"]
        self.hydro.eos = type(self.hydro.eos)(gamma=p["gamma"])
        self.concentrations = p["concentrations"].copy()
        self.heat_release = p["heat_release"]
        self.temperature_scale = p["temperature_scale"]
        self.use_batched_chemistry = p["use_batched_chemistry"]

    # -- diagnostics ------------------------------------------------------------

    def temperature(self) -> np.ndarray:
        """Caloric temperature from specific internal energy."""
        rho, u, p = self.hydro.primitive()
        e_int = self.hydro.ener / rho - 0.5 * u * u
        return self.temperature_scale * np.maximum(e_int, 0.0)

    def total_species_moles(self) -> np.ndarray:
        """Per-species cell-integrated moles (the conservation invariant
        for advection; chemistry redistributes within columns)."""
        return self.concentrations.sum(axis=1) * self.hydro.dx

    def total_atoms(self) -> float:
        """A conserved 'atom count': H2/H2O/H/OH carry H atoms etc.

        For the bundled H2-O2 mechanism: H2=2H, H2O=2H+O, H=1H, OH=1H+1O,
        O2=2O, O=1O; total H and O are conserved by every reaction."""
        c = self.concentrations
        h_atoms = 2 * c[0] + 2 * c[2] + c[3] + c[5]
        o_atoms = 2 * c[1] + c[2] + c[4] + c[5]
        return float((h_atoms + o_atoms).sum() * self.hydro.dx)

    # -- the split ----------------------------------------------------------------

    def _advect_species(self, dt_taken: float) -> None:
        """Upwind advection of concentrations by the (new) velocity field.

        Conservative upwind with outflow BCs, matched to the hydro CFL.
        """
        u = self.hydro.mom / self.hydro.rho
        dx = self.hydro.dx
        c = self.concentrations
        # face velocities (simple average), upwind donor cells
        u_face = 0.5 * (np.concatenate([[u[0]], u]) +
                        np.concatenate([u, [u[-1]]]))  # (n+1,)
        c_ext = np.concatenate([c[:, :1], c, c[:, -1:]], axis=1)
        donor = np.where(u_face >= 0, c_ext[:, :-1], c_ext[:, 1:])
        flux = donor * u_face
        self.concentrations = c - (dt_taken / dx) * (flux[:, 1:] - flux[:, :-1])
        np.maximum(self.concentrations, 0.0, out=self.concentrations)

    def _react(self, dt: float, *, ignition_temperature: float = 800.0) -> None:
        """Stiff chemistry advance with heat release feedback."""
        if self.use_batched_chemistry:
            self._react_batched(dt, ignition_temperature=ignition_temperature)
        else:
            self._react_scalar(dt, ignition_temperature=ignition_temperature)

    def _burning_cells(self, ignition_temperature: float) -> np.ndarray:
        """Indices of cells with active chemistry (hot, non-empty)."""
        T = self.temperature()
        hot = ((T >= ignition_temperature)
               & (self.concentrations.sum(axis=0) >= 1e-12))
        return np.flatnonzero(hot)

    def _react_batched(self, dt: float, *, ignition_temperature: float) -> None:
        """All burning cells advance in one batched BDF integration.

        The paper's Pele recipe (§3.8): generated vectorized production
        rates + analytic batched Jacobians + batched LU with Jacobian
        reuse, instead of a Python loop of scalar integrations.
        """
        idx = self._burning_cells(ignition_temperature)
        if idx.size == 0:
            return
        T_cells = self.temperature()[idx]
        c0 = np.ascontiguousarray(self.concentrations[:, idx].T)  # (B, nspec)
        kernels = compile_batched_kernels(self.mechanism)

        def rhs(t, conc):
            return kernels.rates(T_cells, np.maximum(conc, 0.0))

        def jac(t, conc):
            return kernels.jacobian(T_cells, np.maximum(conc, 0.0))

        integ = BatchedBdfIntegrator(rhs, jac=jac, rtol=1e-5, atol=1e-9,
                                     max_steps=20_000)
        res = integ.integrate(c0, 0.0, dt)
        # heat release ∝ product formation (H2O is species 2)
        dq = self.heat_release * np.maximum(res.y[:, 2] - c0[:, 2], 0.0)
        self.hydro.ener[idx] += dq
        self.concentrations[:, idx] = np.maximum(res.y, 0.0).T

    def _react_scalar(self, dt: float, *, ignition_temperature: float) -> None:
        """The original cell-at-a-time advance (reference ablation)."""
        T = self.temperature()
        for i in range(self.concentrations.shape[1]):
            if T[i] < ignition_temperature:
                continue  # frozen chemistry in cold cells
            c0 = self.concentrations[:, i]
            if c0.sum() < 1e-12:
                continue
            rhs = chemistry_rhs(self.mechanism, float(T[i]))
            integ = BdfIntegrator(rhs, rtol=1e-5, atol=1e-9, max_steps=20_000)
            res = integ.integrate(c0.copy(), 0.0, dt)
            reacted = res.y
            # heat release ∝ product formation (H2O is species 2)
            dq = self.heat_release * max(reacted[2] - c0[2], 0.0)
            self.hydro.ener[i] += dq
            self.concentrations[:, i] = np.maximum(reacted, 0.0)

    def step(self, *, cfl: float = 0.5, chem_dt: float = 1e-5) -> float:
        """One split step: hydro + species advection, then chemistry."""
        dt = self.hydro.step(cfl)
        self._advect_species(dt)
        self._react(chem_dt)
        return dt


def ignition_demo(n: int = 64, *, steps: int = 5) -> ReactingFlow1D:
    """A hot pocket in premixed H2-O2: the standard ignition test setup."""
    hydro = Euler1D.sod(n)
    # overwrite with quiescent gas + a hot spot
    hydro.rho[:] = 1.0
    hydro.mom[:] = 0.0
    hydro.ener[:] = 2.0
    hot = slice(n // 2 - n // 8, n // 2 + n // 8)
    hydro.ener[hot] = 6.0
    flow = ReactingFlow1D(hydro=hydro)
    flow.concentrations[0, :] = 1.0  # H2
    flow.concentrations[1, :] = 0.5  # O2
    for _ in range(steps):
        flow.step()
    return flow
