"""Vendor math-library substrates: BLAS, dense solvers, batched ops, FFT."""

from repro.linalg.batched import batched_lu_kernel_spec, batched_lu_solve
from repro.linalg.blas import (
    GENERIC_GEMM_EFFICIENCY,
    SMALL_GEMM_EFFICIENCY,
    SMALL_GEMM_THRESHOLD,
    TUNED_GEMM_EFFICIENCY,
    TunedGemmLibrary,
    batched_gemm_kernel_spec,
    gemm,
    gemm_bytes,
    gemm_flops,
    gemm_kernel_spec,
)
from repro.linalg.fft import fft, fft_flops, fft_kernel_spec, ifft, rfft
from repro.linalg.solver import (
    LUFactorization,
    getrf,
    getrf_flops,
    getrs,
    getrs_flops,
    invert_first_block_lu,
    solver_kernel_spec,
    zblock_lu,
    zblock_lu_flops,
)

__all__ = [
    "GENERIC_GEMM_EFFICIENCY",
    "LUFactorization",
    "SMALL_GEMM_EFFICIENCY",
    "SMALL_GEMM_THRESHOLD",
    "TUNED_GEMM_EFFICIENCY",
    "TunedGemmLibrary",
    "batched_gemm_kernel_spec",
    "batched_lu_kernel_spec",
    "batched_lu_solve",
    "fft",
    "fft_flops",
    "fft_kernel_spec",
    "gemm",
    "gemm_bytes",
    "gemm_flops",
    "gemm_kernel_spec",
    "getrf",
    "getrf_flops",
    "getrs",
    "getrs_flops",
    "ifft",
    "invert_first_block_lu",
    "rfft",
    "solver_kernel_spec",
    "zblock_lu",
    "zblock_lu_flops",
]
