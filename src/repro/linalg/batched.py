"""MAGMA-style batched dense operations (PeleLM(eX)'s chemistry path, §3.8).

Real math over stacks of small matrices plus aggregate kernel descriptors.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import Precision
from repro.linalg.solver import getrf_flops, getrs_flops


def batched_lu_solve(mats: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``mats[i] @ x[i] = rhs[i]`` for a stack of square systems.

    ``mats``: (batch, n, n); ``rhs``: (batch, n) or (batch, n, nrhs).
    """
    mats = np.asarray(mats)
    rhs = np.asarray(rhs)
    if mats.ndim != 3 or mats.shape[1] != mats.shape[2]:
        raise ValueError(f"expected (batch, n, n) matrices, got {mats.shape}")
    if rhs.shape[0] != mats.shape[0] or rhs.shape[1] != mats.shape[1]:
        raise ValueError(f"rhs shape {rhs.shape} does not match {mats.shape}")
    if rhs.ndim == 2:
        # (batch, n) would be read as an (n, nrhs) matrix by the gufunc
        return np.linalg.solve(mats, rhs[..., None])[..., 0]
    return np.linalg.solve(mats, rhs)


def batched_lu_kernel_spec(batch: int, n: int, nrhs: int = 1, *,
                           precision: Precision = Precision.FP64,
                           complex_data: bool = False,
                           efficiency: float | None = None) -> KernelSpec:
    """One launch factorizing and solving *batch* n×n systems.

    Batching amortizes launch overhead and fills the device: efficiency
    grows with total work, saturating at the dense-solver ceiling (0.5).
    """
    if batch < 1 or n < 1:
        raise ValueError("batch and n must be positive")
    flops = batch * (getrf_flops(n, complex_data=complex_data)
                     + getrs_flops(n, nrhs, complex_data=complex_data))
    if efficiency is None:
        # tiny batches leave the device idle; ramp to 0.5 by ~10^8 flops
        efficiency = min(0.5, max(0.05, 0.5 * flops / 1e8))
    itemsize = precision.bytes_per_element * (2 if complex_data else 1)
    return KernelSpec(
        name=f"batched_lu_{batch}x{n}",
        flops=flops / efficiency,
        bytes_read=float(batch * (n * n + n * nrhs) * itemsize),
        bytes_written=float(batch * (n * n + n * nrhs) * itemsize),
        threads=max(batch * n, 64),
        precision=precision,
        registers_per_thread=128,
        workgroup_size=256,
    )
