"""MAGMA-style batched dense operations (PeleLM(eX)'s chemistry path, §3.8).

Real math over stacks of small matrices plus aggregate kernel descriptors.
The factor/solve path optionally carries Huang–Abraham row-sum checksums
(:mod:`repro.resilience.abft`): ``P·A·e = L·(U·e)`` is verified after
every factorization and solves are residual-checked against the original
matrices, so a bit flip in the held factors — the LU-reuse caches live
across many Newton iterations, plenty of time to take a hit — surfaces
as :class:`~repro.resilience.abft.SdcDetected` instead of a silently
wrong trajectory.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import Precision
from repro.linalg.solver import getrf_flops, getrs_flops
from repro.resilience.abft import (
    AbftReport,
    lu_checksum,
    verify_lu,
    verify_solve,
)


def batched_lu_factor(mats: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row-pivoted LU of a stack of small square systems (getrf_batched).

    Vectorizes over the batch: the elimination loop runs over the (small)
    matrix dimension only, every operation inside it touching all batch
    entries at once — the MAGMA batched-factorization structure the Pele
    chemistry path reuses across Newton iterations and steps.

    Returns ``(lu, piv)``: the packed L\\U factors (unit lower diagonal
    implicit) and the pivot row chosen at each elimination column.
    """
    lu = np.array(mats, dtype=float, copy=True)
    if lu.ndim != 3 or lu.shape[1] != lu.shape[2]:
        raise ValueError(f"expected (batch, n, n) matrices, got {lu.shape}")
    b, n, _ = lu.shape
    piv = np.empty((b, n), dtype=np.intp)
    rows = np.arange(b)
    for k in range(n):
        p = k + np.argmax(np.abs(lu[:, k:, k]), axis=1)
        piv[:, k] = p
        tmp = lu[rows, k, :].copy()
        lu[rows, k, :] = lu[rows, p, :]
        lu[rows, p, :] = tmp
        pivot = lu[:, k, k]
        safe = np.where(np.abs(pivot) > 0.0, pivot, 1.0)
        lu[:, k + 1:, k] /= safe[:, None]
        lu[:, k + 1:, k + 1:] -= lu[:, k + 1:, k, None] * lu[:, k, None, k + 1:]
    return lu, piv


def batched_lu_solve_factored(lu: np.ndarray, piv: np.ndarray,
                              rhs: np.ndarray) -> np.ndarray:
    """Solve with factors from :func:`batched_lu_factor` (getrs_batched).

    ``rhs``: (batch, n) or (batch, n, nrhs); triangular sweeps run over the
    matrix dimension with the whole batch advanced per sweep.
    """
    b, n, _ = lu.shape
    x = np.array(rhs, dtype=float, copy=True)
    vector_rhs = x.ndim == 2
    if vector_rhs:
        x = x[..., None]
    if x.shape[:2] != (b, n):
        raise ValueError(f"rhs shape {rhs.shape} does not match factors {lu.shape}")
    rows = np.arange(b)
    for k in range(n):
        p = piv[:, k]
        tmp = x[rows, k, :].copy()
        x[rows, k, :] = x[rows, p, :]
        x[rows, p, :] = tmp
    for k in range(1, n):  # forward: L has unit diagonal
        x[:, k, :] -= np.einsum("bj,bjm->bm", lu[:, k, :k], x[:, :k, :])
    for k in range(n - 1, -1, -1):  # backward
        if k + 1 < n:
            x[:, k, :] -= np.einsum("bj,bjm->bm", lu[:, k, k + 1:], x[:, k + 1:, :])
        x[:, k, :] /= lu[:, k, k, None]
    return x[..., 0] if vector_rhs else x


def batched_lu_factor_checked(mats: np.ndarray
                              ) -> tuple[np.ndarray, np.ndarray]:
    """:func:`batched_lu_factor` with the Huang–Abraham invariant verified.

    The checksum ``A·e`` is taken before elimination; after it,
    ``L·(U·e)`` must reproduce the permuted checksum to within roundoff.
    Raises :class:`~repro.resilience.abft.SdcDetected` when the factors
    came out corrupted.
    """
    mats = np.asarray(mats, dtype=float)
    checksum = lu_checksum(mats)
    lu, piv = batched_lu_factor(mats)
    verify_lu(lu, piv, checksum)
    return lu, piv


class BatchedLU:
    """A held batched factorization: factor once, solve many times.

    The CVODE/MAGMA reuse pattern — the Newton matrix is factored when the
    Jacobian (or gamma) changes and the factors serve every subsequent
    modified-Newton iteration.  ``select`` solves for a subset of the batch
    (converged cells freeze while stiff cells keep iterating).

    With ``abft=True`` the factorization is checksum-verified, the held
    factors can be re-audited at any time (:meth:`verify` — the factors
    outlive many solves, so corruption-while-held is the realistic SDC
    window), and every solve is residual-checked against the original
    matrices at O(n²) per cell next to the O(n³) factorization.

    ``backend`` dispatches the factor/solve kernels to an array backend
    (``None`` means "auto"); the numpy backend delegates right back to
    this module's reference functions, alternate backends must match the
    same pivoting semantics (the parity suite holds them to ≤1e-9).
    """

    def __init__(self, mats: np.ndarray, *, abft: bool = False,
                 backend=None) -> None:
        from repro.backend import resolve_backend

        mats = np.asarray(mats, dtype=float)
        self.abft = abft
        self._backend = resolve_backend(backend)
        self._mats = np.array(mats, copy=True) if abft else None
        self._checksum = lu_checksum(mats) if abft else None
        self.lu, self.piv = self._backend.lu_factor(mats)
        if abft:
            verify_lu(self.lu, self.piv, self._checksum)

    @property
    def batch(self) -> int:
        return self.lu.shape[0]

    def verify(self) -> AbftReport:
        """Re-audit the held factors against their stored checksum."""
        if not self.abft:
            raise ValueError("factorization was not built with abft=True")
        return verify_lu(self.lu, self.piv, self._checksum)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        x = self._backend.lu_solve(self.lu, self.piv, rhs)
        if self.abft:
            verify_solve(self._mats, x, np.asarray(rhs, dtype=float))
        return x

    def solve_subset(self, idx: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        x = self._backend.lu_solve(self.lu[idx], self.piv[idx], rhs)
        if self.abft:
            verify_solve(self._mats[idx], x, np.asarray(rhs, dtype=float))
        return x

    def update(self, idx: np.ndarray, mats: np.ndarray) -> None:
        """Refactor only the systems in *idx* (fresh Jacobians)."""
        mats = np.asarray(mats, dtype=float)
        lu, piv = self._backend.lu_factor(mats)
        self.lu[idx] = lu
        self.piv[idx] = piv
        if self.abft:
            self._mats[idx] = mats
            self._checksum[idx] = lu_checksum(mats)
            verify_lu(lu, piv, self._checksum[idx])


def batched_lu_solve(mats: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``mats[i] @ x[i] = rhs[i]`` for a stack of square systems.

    ``mats``: (batch, n, n); ``rhs``: (batch, n) or (batch, n, nrhs).
    """
    mats = np.asarray(mats)
    rhs = np.asarray(rhs)
    if mats.ndim != 3 or mats.shape[1] != mats.shape[2]:
        raise ValueError(f"expected (batch, n, n) matrices, got {mats.shape}")
    if rhs.shape[0] != mats.shape[0] or rhs.shape[1] != mats.shape[1]:
        raise ValueError(f"rhs shape {rhs.shape} does not match {mats.shape}")
    if rhs.ndim == 2:
        # (batch, n) would be read as an (n, nrhs) matrix by the gufunc
        return np.linalg.solve(mats, rhs[..., None])[..., 0]
    return np.linalg.solve(mats, rhs)


def batched_lu_kernel_spec(batch: int, n: int, nrhs: int = 1, *,
                           precision: Precision = Precision.FP64,
                           complex_data: bool = False,
                           abft: bool = False,
                           efficiency: float | None = None) -> KernelSpec:
    """One launch factorizing and solving *batch* n×n systems.

    Batching amortizes launch overhead and fills the device: efficiency
    grows with total work, saturating at the dense-solver ceiling (0.5).

    ``abft=True`` folds in the Huang–Abraham ride-along: the checksum
    column ``A·e`` is eliminated alongside the matrix (one extra column,
    ~3n² flops per cell next to the O(n³) elimination) and solves are
    checked in checksum space (``(eᵀA)·x`` vs ``eᵀb``, O(n) per rhs).
    The factors never need a second pass — only the checksum vectors
    move — so the overhead ratio shrinks with n, which is why the gate
    in the benchmarks runs at production block sizes, not toy ones.
    """
    if batch < 1 or n < 1:
        raise ValueError("batch and n must be positive")
    flops = batch * (getrf_flops(n, complex_data=complex_data)
                     + getrs_flops(n, nrhs, complex_data=complex_data))
    if abft:
        # checksum build (n²), augmented-column elimination + fused
        # L·(U·e) comparison (2n²), checksum-space solve check (4n/rhs)
        flops += batch * (3.0 * n * n + 4.0 * n * nrhs)
    if efficiency is None:
        # tiny batches leave the device idle; ramp to 0.5 by ~10^8 flops
        efficiency = min(0.5, max(0.05, 0.5 * flops / 1e8))
    itemsize = precision.bytes_per_element * (2 if complex_data else 1)
    # the checksum columns ride along; the factors are never re-read
    abft_bytes = float(batch * (2 * n + n * nrhs) * itemsize) if abft else 0.0
    return KernelSpec(
        name=f"batched_lu_{batch}x{n}" + ("_abft" if abft else ""),
        flops=flops / efficiency,
        bytes_read=float(batch * (n * n + n * nrhs) * itemsize) + abft_bytes,
        bytes_written=float(batch * (n * n + n * nrhs) * itemsize)
        + (float(batch * 2 * n * itemsize) if abft else 0.0),
        threads=max(batch * n, 64),
        precision=precision,
        registers_per_thread=128,
        workgroup_size=256,
    )
