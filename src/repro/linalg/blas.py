"""Simulated vendor BLAS (cuBLAS / rocBLAS / hipBLAS) with size-tuned kernels.

Two responsibilities:

* **real arithmetic** — ``gemm`` really multiplies (numpy), so application
  substrates built on it are numerically correct;
* **timing** — :class:`TunedGemmLibrary` models §4's central library story:
  GPU math libraries contain "a large collection of problem-size-dependent
  implementations", and sizes the application teams communicated early got
  hand-tuned kernels.  Tuned shapes reach a high fraction of peak; generic
  shapes fall back to a lower efficiency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import GPUSpec, Precision

#: Fraction of peak a generic (untuned) GEMM shape achieves.
GENERIC_GEMM_EFFICIENCY = 0.60
#: Fraction of peak a vendor-tuned shape achieves (post-§4 co-design).
TUNED_GEMM_EFFICIENCY = 0.90
#: Very small GEMMs are launch/shape limited regardless of tuning.
SMALL_GEMM_EFFICIENCY = 0.20
SMALL_GEMM_THRESHOLD = 128  # max(m, n, k) below this counts as small


def gemm(a: np.ndarray, b: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
    """Real matrix multiply (any real/complex dtype)."""
    if a.shape[-1] != b.shape[-2 if b.ndim > 1 else 0]:
        raise ValueError(f"gemm shape mismatch {a.shape} x {b.shape}")
    result = a @ b
    if out is not None:
        np.copyto(out, result)
        return out
    return result


def gemm_flops(m: int, n: int, k: int, *, complex_data: bool = False) -> float:
    """FLOPs of an m×k · k×n multiply (4x multiplies for complex)."""
    base = 2.0 * m * n * k
    return 4.0 * base if complex_data else base


def gemm_bytes(m: int, n: int, k: int, itemsize: int) -> float:
    """Minimum device traffic: read A and B, write C."""
    return float((m * k + k * n + m * n) * itemsize)


def gemm_kernel_spec(
    m: int,
    n: int,
    k: int,
    *,
    precision: Precision = Precision.FP64,
    complex_data: bool = False,
    efficiency: float = GENERIC_GEMM_EFFICIENCY,
    use_matrix_engine: bool = True,
    name: str | None = None,
) -> KernelSpec:
    """Kernel descriptor for one GEMM call at a given achieved efficiency.

    Efficiency is folded into the FLOP count (``flops / efficiency``) so the
    roofline model yields ``ideal_time / efficiency``.
    """
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    itemsize = precision.bytes_per_element * (2 if complex_data else 1)
    return KernelSpec(
        name=name or f"gemm_{m}x{n}x{k}_{precision.value}",
        flops=gemm_flops(m, n, k, complex_data=complex_data) / efficiency,
        bytes_read=float((m * k + k * n) * itemsize),
        bytes_written=float(m * n * itemsize),
        threads=max(m * n, 64),
        precision=precision,
        uses_matrix_engine=use_matrix_engine,
        registers_per_thread=128,
        lds_per_workgroup=32 * 1024,
        workgroup_size=256,
    )


@dataclass
class TunedGemmLibrary:
    """A vendor GEMM library with a registry of hand-tuned problem sizes."""

    device: GPUSpec
    tuned_shapes: set[tuple[int, int, int]] = field(default_factory=set)
    tuned_hits: int = 0
    generic_hits: int = 0

    def register_tuned_shape(self, m: int, n: int, k: int) -> None:
        """Record a shape communicated to the vendor for tuning (§4)."""
        self.tuned_shapes.add((m, n, k))

    def efficiency_for(self, m: int, n: int, k: int) -> float:
        if max(m, n, k) < SMALL_GEMM_THRESHOLD:
            return SMALL_GEMM_EFFICIENCY
        if (m, n, k) in self.tuned_shapes:
            return TUNED_GEMM_EFFICIENCY
        return GENERIC_GEMM_EFFICIENCY

    def kernel_spec(self, m: int, n: int, k: int, *,
                    precision: Precision = Precision.FP64,
                    complex_data: bool = False,
                    use_matrix_engine: bool = True) -> KernelSpec:
        eff = self.efficiency_for(m, n, k)
        if eff == TUNED_GEMM_EFFICIENCY:
            self.tuned_hits += 1
        else:
            self.generic_hits += 1
        return gemm_kernel_spec(
            m, n, k,
            precision=precision,
            complex_data=complex_data,
            efficiency=eff,
            use_matrix_engine=use_matrix_engine,
        )

    def time(self, m: int, n: int, k: int, **kw) -> float:
        """Synchronous wall time of one GEMM on this device."""
        from repro.gpu.perfmodel import time_kernel

        return time_kernel(self.kernel_spec(m, n, k, **kw), self.device).total_time


def batched_gemm_kernel_spec(
    batch: int, m: int, n: int, k: int, *,
    precision: Precision = Precision.FP64,
    complex_data: bool = False,
    efficiency: float | None = None,
) -> KernelSpec:
    """One launch computing *batch* independent GEMMs (MAGMA-style).

    Batching rescues small shapes: efficiency is computed for the
    *aggregate* problem, so many tiny GEMMs in one launch behave like one
    large one — the PeleLM(eX) + MAGMA strategy (§3.8).
    """
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if efficiency is None:
        eff_m = int(round(m * math.sqrt(batch)))
        efficiency = (
            SMALL_GEMM_EFFICIENCY
            if max(eff_m, n, k) < SMALL_GEMM_THRESHOLD
            else GENERIC_GEMM_EFFICIENCY
        )
    single = gemm_kernel_spec(
        m, n, k, precision=precision, complex_data=complex_data, efficiency=efficiency,
        name=f"batched_gemm_{batch}x{m}x{n}x{k}",
    )
    return single.scaled(batch, name=single.name)
