"""FFT library substrate (cuFFT / rocFFT analogue).

Real transforms via numpy plus kernel descriptors using the standard
``5 N log2 N`` FLOP model for complex transforms.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import Precision


def fft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Forward complex FFT along one axis."""
    return np.fft.fft(x, axis=axis)


def ifft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse complex FFT along one axis (numpy's 1/N normalization)."""
    return np.fft.ifft(x, axis=axis)


def rfft(x: np.ndarray, axis: int = -1) -> np.ndarray:
    return np.fft.rfft(x, axis=axis)


def fft_flops(n: int, batch: int = 1) -> float:
    """FLOPs of *batch* complex length-n transforms: 5 n log2 n each."""
    if n < 1 or batch < 1:
        raise ValueError("n and batch must be positive")
    return 5.0 * n * math.log2(max(n, 2)) * batch


def fft_kernel_spec(n: int, batch: int = 1, *,
                    precision: Precision = Precision.FP64,
                    efficiency: float = 0.35,
                    name: str | None = None) -> KernelSpec:
    """Kernel descriptor for a batched 1-D complex FFT.

    FFTs are memory-bandwidth limited on GPUs; typical achieved compute
    fractions are ~35 % of vector peak, and the traffic term (one read +
    one write of the complex data per pass) usually dominates.
    """
    itemsize = 2 * precision.bytes_per_element
    passes = max(1, int(math.ceil(math.log2(max(n, 2)) / 4)))  # radix-16ish
    return KernelSpec(
        name=name or f"fft1d_{n}x{batch}",
        flops=fft_flops(n, batch) / efficiency,
        bytes_read=float(n * batch * itemsize * passes),
        bytes_written=float(n * batch * itemsize * passes),
        threads=max(n * batch // 4, 64),
        precision=precision,
        registers_per_thread=64,
        lds_per_workgroup=32 * 1024,
        workgroup_size=256,
    )
