"""Dense solvers: LAPACK-style LU and the LSMS ``zblock_lu`` alternative.

LSMS (§3.2) needs the *first diagonal block* of the inverse of a large
complex non-Hermitian matrix (the τ-matrix of the local interaction zone).
Two algorithms:

* ``getrf``/``getrs`` — full LU factorization then solve against the first
  block columns of the identity (what rocSOLVER provides);
* :func:`zblock_lu` — the historical block-elimination algorithm that
  only computes the needed block, with a slightly lower FLOP count.

Both are implemented for real (they agree to rounding on random systems),
and both expose FLOP counts so the perf model can reproduce the paper's
observation that the library LU wins on MI250X despite more FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as sla

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import Precision


@dataclass(frozen=True)
class LUFactorization:
    """Result of :func:`getrf` (compact LU plus pivots)."""

    lu: np.ndarray
    piv: np.ndarray


def getrf(a: np.ndarray) -> LUFactorization:
    """LU factorization with partial pivoting (rocsolver_zgetrf analogue)."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"getrf needs a square matrix, got {a.shape}")
    lu, piv = sla.lu_factor(a)
    return LUFactorization(lu=lu, piv=piv)


def getrs(fact: LUFactorization, b: np.ndarray) -> np.ndarray:
    """Solve A x = b from a prior factorization (rocsolver_zgetrs)."""
    return sla.lu_solve((fact.lu, fact.piv), b)


def invert_first_block_lu(a: np.ndarray, block_size: int) -> np.ndarray:
    """First ``block_size`` diagonal block of A⁻¹ via full LU (library path)."""
    n = a.shape[0]
    if not 0 < block_size <= n:
        raise ValueError(f"block_size {block_size} out of range for n={n}")
    fact = getrf(a)
    rhs = np.zeros((n, block_size), dtype=a.dtype)
    rhs[:block_size, :] = np.eye(block_size, dtype=a.dtype)
    return getrs(fact, rhs)[:block_size, :]


def zblock_lu(a: np.ndarray, block_size: int) -> np.ndarray:
    """First diagonal block of A⁻¹ by block elimination (LSMS zblock_lu).

    Eliminates trailing blocks bottom-up: for each trailing block *k*,
    ``A[:k, :k] -= A[:k, k] · A[k, k]⁻¹ · A[k, :k]`` restricted to the
    surviving leading submatrix, then inverts the final leading block.
    Touches only the work needed for the leading block — the "slightly
    lower total floating point operation count" of §3.2.
    """
    n = a.shape[0]
    if not 0 < block_size <= n:
        raise ValueError(f"block_size {block_size} out of range for n={n}")
    if n % block_size != 0:
        raise ValueError(f"n={n} must be a multiple of block_size={block_size}")
    nblocks = n // block_size
    work = a.astype(a.dtype, copy=True)
    for k in range(nblocks - 1, 0, -1):
        lo, hi = k * block_size, (k + 1) * block_size
        akk = work[lo:hi, lo:hi]
        # Schur update of everything above-left of block k
        akk_inv_arow = np.linalg.solve(akk, work[lo:hi, :lo])
        work[:lo, :lo] -= work[:lo, lo:hi] @ akk_inv_arow
    return np.linalg.inv(work[:block_size, :block_size])


# ---------------------------------------------------------------------------
# FLOP counts and kernel descriptors
# ---------------------------------------------------------------------------


def getrf_flops(n: int, *, complex_data: bool = True) -> float:
    """2/3 n³ real multiply-adds; complex arithmetic costs 4x."""
    base = (2.0 / 3.0) * n**3
    return 4.0 * base if complex_data else base


def getrs_flops(n: int, nrhs: int, *, complex_data: bool = True) -> float:
    base = 2.0 * n**2 * nrhs
    return 4.0 * base if complex_data else base


def zblock_lu_flops(n: int, block_size: int, *, complex_data: bool = True) -> float:
    """Block-elimination FLOPs: Σ over trailing blocks of the Schur update.

    For block k with leading size m=k·b: one b×b solve against m columns
    (2b²m) plus one m×m ·(m×b · b×m) update (2m²b), then the final b³
    inversion.
    """
    b = block_size
    nblocks = n // b
    total = 2.0 * b**3  # final inversion
    for k in range(nblocks - 1, 0, -1):
        m = k * b
        total += 2.0 * b * b * m  # solve A_kk^-1 * A_k,row
        total += 2.0 * m * m * b  # rank-b Schur update
    return 4.0 * total if complex_data else total


def solver_kernel_spec(name: str, flops: float, n: int, *,
                       precision: Precision = Precision.FP64,
                       complex_data: bool = True,
                       efficiency: float = 0.5) -> KernelSpec:
    """Kernel descriptor for a dense-solver call.

    Factorizations are less efficient than GEMM (pivoting, panel work):
    default 50 % of peak, matching measured rocSOLVER/cuSOLVER fractions.
    """
    itemsize = precision.bytes_per_element * (2 if complex_data else 1)
    return KernelSpec(
        name=name,
        flops=flops / efficiency,
        bytes_read=float(2 * n * n * itemsize),
        bytes_written=float(n * n * itemsize),
        threads=max(n * n, 64),
        precision=precision,
        uses_matrix_engine=False,  # pivoted panels don't run on MFMA
        registers_per_thread=64,  # vendor solver kernels stay occupancy-lean
        workgroup_size=256,
    )
