"""LAMMPS/ReaxFF substrate: neighbor lists, divergent 4-body kernels, QEq."""

from repro.md.lj import lj_forces, velocity_verlet, velocity_verlet_finish
from repro.md.neighbor import (
    SimBox,
    brute_force_neighbors,
    build_bond_list,
    build_cell_list,
    build_neighbor_list,
    hns_like_crystal,
)
from repro.md.qeq import (
    CgStats,
    QeqResult,
    cg,
    dual_cg,
    equilibrate_charges,
    qeq_matrix,
)
from repro.md.reaxff import (
    DivergenceStats,
    angle_forces,
    angle_survivor_triples,
    torsion_forces_naive,
    torsion_forces_preprocessed,
    torsion_survivor_tuples,
)

__all__ = [
    "CgStats",
    "DivergenceStats",
    "QeqResult",
    "SimBox",
    "angle_forces",
    "angle_survivor_triples",
    "brute_force_neighbors",
    "build_bond_list",
    "build_cell_list",
    "build_neighbor_list",
    "cg",
    "dual_cg",
    "equilibrate_charges",
    "hns_like_crystal",
    "lj_forces",
    "qeq_matrix",
    "torsion_forces_naive",
    "torsion_forces_preprocessed",
    "torsion_survivor_tuples",
    "velocity_verlet",
    "velocity_verlet_finish",
]
