"""Lennard-Jones pair forces — the 'simple force-field' bring-up case of
§3.10.1 (LJ ran fine while ReaxFF exposed the compiler bug)."""

from __future__ import annotations

import numpy as np

from repro.md.neighbor import SimBox


def lj_forces(x: np.ndarray, box: SimBox, neighbors: list[list[int]], *,
              epsilon: float = 1.0, sigma: float = 1.0,
              cutoff: float = 2.5) -> tuple[float, np.ndarray]:
    """Truncated 12-6 Lennard-Jones energy and forces over a neighbor list."""
    xw = box.wrap(x)
    cut2 = cutoff * cutoff
    energy = 0.0
    forces = np.zeros_like(x)
    s6 = sigma**6
    for i in range(len(x)):
        for j in neighbors[i]:
            if j <= i:
                continue  # each pair once
            d = box.minimum_image(xw[j] - xw[i])
            r2 = float(d @ d)
            if r2 >= cut2:
                continue
            inv_r2 = 1.0 / r2
            inv_r6 = inv_r2**3
            e = 4 * epsilon * s6 * inv_r6 * (s6 * inv_r6 - 1.0)
            # f = -dE/dr along d: 24 eps (2 s12/r12 - s6/r6)/r2 * d
            fmag = 24 * epsilon * s6 * inv_r6 * (2 * s6 * inv_r6 - 1.0) * inv_r2
            energy += e
            forces[i] -= fmag * d
            forces[j] += fmag * d
    return energy, forces


def velocity_verlet(x: np.ndarray, v: np.ndarray, forces: np.ndarray,
                    dt: float, mass: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """First half of velocity Verlet: returns (x_new, v_half)."""
    v_half = v + 0.5 * dt * forces / mass
    return x + dt * v_half, v_half


def velocity_verlet_finish(v_half: np.ndarray, forces_new: np.ndarray,
                           dt: float, mass: float = 1.0) -> np.ndarray:
    return v_half + 0.5 * dt * forces_new / mass
