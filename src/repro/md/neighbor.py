"""Cell and neighbor lists for molecular dynamics (LAMMPS substrate).

Periodic orthorhombic box, linked-cell binning, and Verlet neighbor lists
— plus the *bond list* (a tighter-cutoff neighbor list) that the ReaxFF
kernels consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SimBox:
    """Periodic orthorhombic simulation box [0, L)³."""

    lengths: tuple[float, float, float]

    def __post_init__(self) -> None:
        if any(l <= 0 for l in self.lengths):
            raise ValueError("box lengths must be positive")

    def wrap(self, x: np.ndarray) -> np.ndarray:
        return np.mod(x, np.asarray(self.lengths))

    def minimum_image(self, dx: np.ndarray) -> np.ndarray:
        """Minimum-image displacement vectors."""
        L = np.asarray(self.lengths)
        return dx - L * np.round(dx / L)


def build_cell_list(x: np.ndarray, box: SimBox, cutoff: float) -> dict[tuple[int, int, int], list[int]]:
    """Bin atoms into cells of edge >= cutoff."""
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    L = np.asarray(box.lengths)
    ncells = np.maximum((L / cutoff).astype(int), 1)
    cell_size = L / ncells
    cells: dict[tuple[int, int, int], list[int]] = {}
    xw = box.wrap(x)
    idx = np.minimum((xw / cell_size).astype(int), ncells - 1)
    for i, c in enumerate(map(tuple, idx)):
        cells.setdefault(c, []).append(i)
    return cells


def build_neighbor_list(x: np.ndarray, box: SimBox, cutoff: float) -> list[list[int]]:
    """Half→full Verlet list via linked cells; neighbors[i] excludes i."""
    n = len(x)
    L = np.asarray(box.lengths)
    ncells = np.maximum((L / cutoff).astype(int), 1)
    cells = build_cell_list(x, box, cutoff)
    neighbors: list[list[int]] = [[] for _ in range(n)]
    cut2 = cutoff * cutoff
    xw = box.wrap(x)
    seen: set[tuple[int, int]] = set()
    for (cx, cy, cz), atoms in cells.items():
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    nb = (
                        (cx + dx) % ncells[0],
                        (cy + dy) % ncells[1],
                        (cz + dz) % ncells[2],
                    )
                    if nb not in cells:
                        continue
                    pair = ((cx, cy, cz), nb)
                    for i in atoms:
                        for j in cells[nb]:
                            if j <= i:
                                continue
                            d = box.minimum_image(xw[j] - xw[i])
                            if d @ d < cut2 and (i, j) not in seen:
                                seen.add((i, j))
                                neighbors[i].append(j)
                                neighbors[j].append(i)
    for lst in neighbors:
        lst.sort()
    return neighbors


def build_bond_list(x: np.ndarray, box: SimBox, bond_cutoff: float,
                    neighbors: list[list[int]] | None = None) -> list[list[int]]:
    """Bond list: the sub-cutoff subset of the neighbor list (ReaxFF)."""
    if neighbors is None:
        neighbors = build_neighbor_list(x, box, bond_cutoff)
    xw = box.wrap(x)
    cut2 = bond_cutoff * bond_cutoff
    bonds: list[list[int]] = [[] for _ in range(len(x))]
    for i, nbrs in enumerate(neighbors):
        for j in nbrs:
            d = box.minimum_image(xw[j] - xw[i])
            if d @ d < cut2:
                bonds[i].append(j)
    return bonds


def brute_force_neighbors(x: np.ndarray, box: SimBox, cutoff: float) -> list[list[int]]:
    """O(n²) reference for testing the cell-list implementation."""
    n = len(x)
    xw = box.wrap(x)
    cut2 = cutoff * cutoff
    out: list[list[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = box.minimum_image(xw[j] - xw[i])
            if d @ d < cut2:
                out[i].append(j)
                out[j].append(i)
    for lst in out:
        lst.sort()
    return out


def hns_like_crystal(nx: int, ny: int, nz: int, *, spacing: float = 1.6,
                     jitter: float = 0.05, seed: int = 0) -> tuple[np.ndarray, SimBox]:
    """A jittered cubic crystal standing in for crystalline HNS (§3.10).

    Real HNS is a 34-atom-molecule triclinic crystal; for exercising the
    force kernels what matters is a dense periodic arrangement with bonded
    chains, which a jittered lattice at bonding distance provides.
    """
    rng = np.random.default_rng(seed)
    grid = np.stack(
        np.meshgrid(
            np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
        ),
        axis=-1,
    ).reshape(-1, 3).astype(float)
    x = grid * spacing + rng.normal(scale=jitter, size=grid.shape)
    box = SimBox(lengths=(nx * spacing, ny * spacing, nz * spacing))
    return box.wrap(x), box
