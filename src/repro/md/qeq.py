"""Charge equilibration (QEq) with separate or fused dual CG (§3.10.2).

ReaxFF's partial-charge equilibration solves two linear systems with the
*same* matrix H (shielded electrostatics plus atomic hardness):

    H s = -χ        H t = -1

then sets q = s - (Σs/Σt) t so charges sum to zero.  Aktulga's
optimization, restored to the Kokkos backend during the Frontier work,
fuses the two conjugate-gradient loops: each iteration reads H once for
both right-hand sides (halving memory traffic) and shares one allreduce
(halving the latency-bound communication), and the loop runs
max(iter₁, iter₂) times instead of iter₁ + iter₂.

Counters on both paths make the savings measurable and testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.neighbor import SimBox


@dataclass
class CgStats:
    iterations: int = 0
    matrix_reads: int = 0  # full passes over H
    allreduces: int = 0  # global dot-product reductions


def qeq_matrix(x: np.ndarray, box: SimBox, *, cutoff: float = 4.0,
               hardness: float = 12.0) -> np.ndarray:
    """Shielded-Coulomb QEq matrix: SPD by hardness-dominated diagonal."""
    n = len(x)
    xw = box.wrap(x)
    H = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = box.minimum_image(xw[j] - xw[i])
            r = float(np.linalg.norm(d))
            if r < cutoff:
                # tapered shielded interaction, smooth to zero at cutoff
                taper = (1 - (r / cutoff) ** 2) ** 2
                H[i, j] = H[j, i] = taper / np.sqrt(r**2 + 1.0)
        H[i, i] = hardness
    return H


def cg(H: np.ndarray, b: np.ndarray, *, tol: float = 1e-10,
       maxiter: int = 1000) -> tuple[np.ndarray, CgStats]:
    """Plain conjugate gradients with work counters."""
    stats = CgStats()
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rr = float(r @ r)
    stats.allreduces += 1
    bnorm = np.sqrt(float(b @ b)) or 1.0
    for _ in range(maxiter):
        if np.sqrt(rr) / bnorm <= tol:
            break
        Hp = H @ p
        stats.matrix_reads += 1
        alpha = rr / float(p @ Hp)
        stats.allreduces += 1
        x += alpha * p
        r -= alpha * Hp
        rr_new = float(r @ r)
        stats.allreduces += 1
        p = r + (rr_new / rr) * p
        rr = rr_new
        stats.iterations += 1
    return x, stats


def dual_cg(H: np.ndarray, b1: np.ndarray, b2: np.ndarray, *, tol: float = 1e-10,
            maxiter: int = 1000) -> tuple[np.ndarray, np.ndarray, CgStats]:
    """Fused dual-RHS conjugate gradients.

    One pass over H serves both systems per iteration (a single matvec
    with two columns), and the dot products of both systems share each
    allreduce.  A converged system freezes while the other continues.
    """
    stats = CgStats()
    n = b1.size
    X = np.zeros((n, 2))
    B = np.stack([b1, b2], axis=1)
    R = B.copy()
    P = R.copy()
    rr = np.einsum("ij,ij->j", R, R)
    stats.allreduces += 1  # both reductions share one message
    bnorm = np.maximum(np.sqrt(np.einsum("ij,ij->j", B, B)), 1.0)
    active = np.array([True, True])
    for _ in range(maxiter):
        active = np.sqrt(rr) / bnorm > tol
        if not active.any():
            break
        HP = H @ P  # one read of H covers both columns
        stats.matrix_reads += 1
        pHp = np.einsum("ij,ij->j", P, HP)
        stats.allreduces += 1
        alpha = np.where(active, rr / np.where(pHp == 0, 1, pHp), 0.0)
        X += alpha * P
        R -= alpha * HP
        rr_new = np.einsum("ij,ij->j", R, R)
        stats.allreduces += 1
        beta = np.where(active, rr_new / np.where(rr == 0, 1, rr), 0.0)
        P = R + beta * P
        rr = rr_new
        stats.iterations += 1
    return X[:, 0], X[:, 1], stats


@dataclass
class QeqResult:
    charges: np.ndarray
    stats: CgStats


def equilibrate_charges(x: np.ndarray, box: SimBox, chi: np.ndarray, *,
                        cutoff: float = 4.0, hardness: float = 12.0,
                        fused: bool = True, tol: float = 1e-10) -> QeqResult:
    """Full QEq: build H, solve both systems, combine to net-zero charges."""
    if chi.shape != (len(x),):
        raise ValueError("chi must have one electronegativity per atom")
    H = qeq_matrix(x, box, cutoff=cutoff, hardness=hardness)
    ones = np.ones(len(x))
    if fused:
        s, t, stats = dual_cg(H, -chi, -ones, tol=tol)
    else:
        s, s1 = cg(H, -chi, tol=tol)
        t, s2 = cg(H, -ones, tol=tol)
        stats = CgStats(
            iterations=s1.iterations + s2.iterations,
            matrix_reads=s1.matrix_reads + s2.matrix_reads,
            allreduces=s1.allreduces + s2.allreduces,
        )
    q = s - t * (s.sum() / t.sum())
    return QeqResult(charges=q, stats=stats)
