"""ReaxFF-class angular/torsional kernels: the divergence story of §3.10.2.

Algorithm 1 of the paper: a quadruply nested loop over (i, j, k, l) with
boolean ``cutoff`` checks at every level and an expensive force evaluation
for the few tuples that survive — on average "only a handful of threads in
the entire wavefront were active".

Two implementations of the *same* physics:

* :func:`torsion_forces_naive` — the original pattern, which also records
  lane-activity statistics (survivors per candidate) used to parameterize
  the divergent :class:`~repro.gpu.kernel.KernelSpec`;
* :func:`torsion_forces_preprocessed` — the optimized pattern: a cheap
  "preprocessor" pass emits the surviving (i, j, k, l) tuple list, then a
  dense kernel evaluates forces with no control flow.

Both produce bit-identical forces.  The model interaction is a smooth
4-body alignment energy  E = k_t (r̂_ij · r̂_kl)  gated by sharp distance
cutoffs (the paper's ``cutoff()`` is boolean), with analytic gradients
verified against finite differences.  It stands in for the ReaxFF torsion:
same data access, same divergence, same preprocessing fix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.neighbor import SimBox


@dataclass
class DivergenceStats:
    """Lane-activity record of the naive kernel."""

    candidates: int = 0  # tuples examined (threads' loop trips)
    survivors: int = 0  # tuples passing all cutoffs

    @property
    def active_fraction(self) -> float:
        return self.survivors / self.candidates if self.candidates else 1.0


def _unit(d: np.ndarray) -> tuple[np.ndarray, float]:
    r = float(np.linalg.norm(d))
    return d / r, r


def _pair_alignment_force(
    rij: np.ndarray, rkl: np.ndarray, k_t: float
) -> tuple[float, np.ndarray, np.ndarray]:
    """Energy and gradients of E = k_t (r̂_ij · r̂_kl).

    Returns ``(E, dE/d(rij), dE/d(rkl))``; the caller maps bond-vector
    gradients onto atoms (rij = x_j - x_i ⇒ F_i = +dE/drij, F_j = -dE/drij).
    """
    uij, nij = _unit(rij)
    ukl, nkl = _unit(rkl)
    c = float(uij @ ukl)
    e = k_t * c
    dij = k_t * (ukl - c * uij) / nij
    dkl = k_t * (uij - c * ukl) / nkl
    return e, dij, dkl


def torsion_survivor_tuples(
    x: np.ndarray,
    box: SimBox,
    neighbors: list[list[int]],
    bonds: list[list[int]],
    *,
    cutoff: float,
    stats: DivergenceStats | None = None,
) -> list[tuple[int, int, int, int]]:
    """The "preprocessor" kernel: emit surviving (i, j, k, l) tuples.

    Tuple structure follows Algorithm 1: i marches over atoms, j over
    i's distance neighbors with a pair cutoff, k over j's bonds, l over
    k's bonds; all four atoms distinct, with an (i, l) distance gate.
    """
    xw = box.wrap(x)
    cut2 = cutoff * cutoff
    out: list[tuple[int, int, int, int]] = []

    def count(n: int = 1) -> None:
        if stats is not None:
            stats.candidates += n

    for i in range(len(x)):
        for j in neighbors[i]:
            dij = box.minimum_image(xw[j] - xw[i])
            if dij @ dij >= cut2:
                count()  # a lane evaluated the pair gate and went idle
                continue
            for k in bonds[j]:
                if k == i:
                    count()
                    continue
                for l in bonds[k]:
                    count()
                    if l in (i, j):
                        continue
                    dil = box.minimum_image(xw[l] - xw[i])
                    if dil @ dil >= (2 * cutoff) ** 2:
                        continue
                    out.append((i, j, k, l))
                    if stats is not None:
                        stats.survivors += 1
    return out


def torsion_forces_naive(
    x: np.ndarray,
    box: SimBox,
    neighbors: list[list[int]],
    bonds: list[list[int]],
    *,
    cutoff: float,
    k_t: float = 0.1,
) -> tuple[float, np.ndarray, DivergenceStats]:
    """Algorithm 1 as written: cutoffs and force evaluation interleaved."""
    stats = DivergenceStats()
    xw = box.wrap(x)
    cut2 = cutoff * cutoff
    energy = 0.0
    forces = np.zeros_like(x)
    for i in range(len(x)):
        for j in neighbors[i]:
            dij = box.minimum_image(xw[j] - xw[i])
            if dij @ dij >= cut2:
                stats.candidates += 1
                continue
            for k in bonds[j]:
                if k == i:
                    stats.candidates += 1
                    continue
                for l in bonds[k]:
                    stats.candidates += 1
                    if l in (i, j):
                        continue
                    dil = box.minimum_image(xw[l] - xw[i])
                    if dil @ dil >= (2 * cutoff) ** 2:
                        continue
                    stats.survivors += 1
                    dkl = box.minimum_image(xw[l] - xw[k])
                    e, gij, gkl = _pair_alignment_force(dij, dkl, k_t)
                    energy += e
                    forces[i] += gij
                    forces[j] -= gij
                    forces[k] += gkl
                    forces[l] -= gkl
    return energy, forces, stats


def torsion_forces_preprocessed(
    x: np.ndarray,
    box: SimBox,
    tuples: list[tuple[int, int, int, int]],
    *,
    k_t: float = 0.1,
) -> tuple[float, np.ndarray]:
    """Dense evaluation over a precomputed survivor list: no control flow."""
    xw = box.wrap(x)
    energy = 0.0
    forces = np.zeros_like(x)
    for i, j, k, l in tuples:
        dij = box.minimum_image(xw[j] - xw[i])
        dkl = box.minimum_image(xw[l] - xw[k])
        e, gij, gkl = _pair_alignment_force(dij, dkl, k_t)
        energy += e
        forces[i] += gij
        forces[j] -= gij
        forces[k] += gkl
        forces[l] -= gkl
    return energy, forces


def angle_survivor_triples(
    x: np.ndarray,
    box: SimBox,
    bonds: list[list[int]],
) -> list[tuple[int, int, int]]:
    """Surviving (i, j, k) angular triples: i-j and j-k bonded, i < k."""
    out: list[tuple[int, int, int]] = []
    for j in range(len(x)):
        bj = bonds[j]
        for ai in range(len(bj)):
            for ak in range(ai + 1, len(bj)):
                out.append((bj[ai], j, bj[ak]))
    return out


def angle_forces(
    x: np.ndarray,
    box: SimBox,
    triples: list[tuple[int, int, int]],
    *,
    k_a: float = 0.2,
) -> tuple[float, np.ndarray]:
    """3-body alignment energy  E = k_a (r̂_ji · r̂_jk)  over triples."""
    xw = box.wrap(x)
    energy = 0.0
    forces = np.zeros_like(x)
    for i, j, k in triples:
        dji = box.minimum_image(xw[i] - xw[j])
        djk = box.minimum_image(xw[k] - xw[j])
        e, gji, gjk = _pair_alignment_force(dji, djk, k_a)
        energy += e
        forces[j] -= gji + gjk
        forces[i] += gji
        forces[k] += gjk
    return energy, forces
