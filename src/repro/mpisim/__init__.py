"""Simulated MPI: communicator with real data semantics + Hockney cost models."""

from repro.mpisim.comm import (
    CommError,
    CommStats,
    PendingOp,
    RankFailedError,
    SimComm,
)
from repro.mpisim.costmodel import (
    INTRA_NODE,
    LinkParameters,
    allgather_time,
    allreduce_time,
    alltoall_time,
    alltoallv_time,
    barrier_time,
    bcast_time,
    link_parameters,
    ranks_per_nic,
    reduce_scatter_time,
    reduce_time,
)
from repro.mpisim.decomposition import (
    BlockDecomposition,
    DecompositionError,
    PencilDecomposition,
    SlabDecomposition,
    balanced_counts,
    balanced_pencil_grid,
    block_owners,
)
from repro.mpisim.topology import Topology

__all__ = [
    "BlockDecomposition",
    "CommError",
    "CommStats",
    "DecompositionError",
    "INTRA_NODE",
    "LinkParameters",
    "PencilDecomposition",
    "RankFailedError",
    "PendingOp",
    "SimComm",
    "SlabDecomposition",
    "Topology",
    "allgather_time",
    "allreduce_time",
    "alltoall_time",
    "alltoallv_time",
    "balanced_counts",
    "balanced_pencil_grid",
    "block_owners",
    "barrier_time",
    "bcast_time",
    "link_parameters",
    "ranks_per_nic",
    "reduce_scatter_time",
    "reduce_time",
]
