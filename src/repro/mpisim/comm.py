"""A bulk-synchronous simulated communicator with real data semantics.

Applications written against :class:`SimComm` hold *all* ranks' data (SPMD
state as lists indexed by rank) and invoke collectives that both compute
the correct result and advance per-rank simulated clocks using the cost
models in :mod:`repro.mpisim.costmodel`.  This mirrors how mpi4py programs
look (§guide: buffer-based collectives), while staying single-process and
deterministic.

Clock semantics:

* each rank has its own clock (``clocks[r]``);
* a point-to-point transfer completes at
  ``max(clock[src], clock[dst]) + t`` for both ends;
* a collective is synchronizing: all participating clocks advance to
  ``max(clocks) + T_collective``;
* nonblocking ops return a :class:`PendingOp` whose ``wait`` applies the
  completion — overlap is modelled by letting the caller advance clocks
  with compute in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.hardware.interconnect import InterconnectSpec
from repro.mpisim import costmodel as cm
from repro.mpisim.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.observability.tracer import Tracer

#: Fixed histogram bucket edges for traced communication (seconds/bytes).
#: Fixed at module scope so every traced run bins identically.
COMM_TIME_EDGES = (1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
COMM_BYTES_EDGES = (64.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)


class CommError(RuntimeError):
    pass


class RankFailedError(CommError):
    """An operation touched a failed rank (ULFM-style detection: the
    failure surfaces at the next communication involving the dead rank)."""

    def __init__(self, ranks: Sequence[int]) -> None:
        self.ranks = tuple(int(r) for r in ranks)
        super().__init__(f"rank(s) {list(self.ranks)} have failed")


@dataclass
class CommStats:
    """Aggregate communication accounting across all ranks."""

    p2p_messages: int = 0
    p2p_bytes: float = 0.0
    collectives: int = 0
    collective_bytes: float = 0.0
    total_comm_time: float = 0.0  # sum over ranks of time spent communicating

    def merge(self, other: "CommStats") -> None:
        """Fold *other*'s accounting into this one (child-comm totals)."""
        self.p2p_messages += other.p2p_messages
        self.p2p_bytes += other.p2p_bytes
        self.collectives += other.collectives
        self.collective_bytes += other.collective_bytes
        self.total_comm_time += other.total_comm_time


@dataclass
class PendingOp:
    """Handle for a nonblocking operation."""

    complete_at: dict[int, float]  # rank -> completion time
    comm: "SimComm"
    done: bool = False

    def wait(self) -> None:
        """Block each participating rank until its completion time."""
        if self.done:
            return
        for rank, t in self.complete_at.items():
            self.comm.clocks[rank] = max(self.comm.clocks[rank], t)
        self.done = True


class SimComm:
    """Simulated communicator over ``nranks`` ranks."""

    def __init__(
        self,
        nranks: int,
        fabric: InterconnectSpec,
        *,
        ranks_per_node: int = 1,
        device_buffers: bool = False,
        tracer: "Tracer | None" = None,
    ) -> None:
        if nranks < 1:
            raise CommError("communicator needs at least one rank")
        self.nranks = nranks
        self.topology = Topology(nranks=nranks, ranks_per_node=ranks_per_node, fabric=fabric)
        self.device_buffers = device_buffers
        #: observation-only span/metric sink; ``None`` keeps every
        #: instrumented site a single pointer test (tracing off is free)
        self.tracer = tracer
        self.clocks = np.zeros(nranks, dtype=float)
        self.failed = np.zeros(nranks, dtype=bool)
        self.stats = CommStats()
        #: set by :meth:`shrink`: new-rank -> rank in the parent communicator
        self.parent_ranks: tuple[int, ...] | None = None
        #: set by :meth:`shrink`: new-rank -> *machine* rank in the parent
        #: (equals ``parent_ranks`` here; a shrunk ScaledComm reports the
        #: surviving global machine ranks, which its live indices cannot)
        self.parent_machine_ranks: tuple[int, ...] | None = None
        #: active :meth:`degrade_link` windows as ``(slowdown, until)``
        #: pairs on the simulated clock; expired windows are pruned lazily
        self._degradation_windows: list[tuple[float, float]] = []

    # -- representative-rank surface --------------------------------------------
    #
    # Scaling drivers are written against these two properties plus the
    # collective API, so the same driver runs unchanged on a SimComm
    # (every rank live) and a ScaledComm (exemplars only).

    @property
    def machine_ranks(self) -> int:
        """Total ranks the communicator models (equals ``nranks`` here;
        a ScaledComm reports the full machine while holding R ranks)."""
        return self.nranks

    @property
    def representatives(self) -> tuple[int, ...]:
        """Ranks executed concretely.  All of them, for a plain SimComm."""
        return tuple(range(self.nranks))

    @property
    def rank_weights(self) -> np.ndarray:
        """Ranks each live rank stands for (all ones on a plain SimComm)."""
        return np.ones(self.nranks, dtype=np.int64)

    # -- rank failure (fault injection) -----------------------------------------

    def fail_rank(self, rank: int) -> None:
        """Mark *rank* dead; detection happens at the next operation that
        involves it (the way MPI jobs actually learn about node loss)."""
        if not 0 <= rank < self.nranks:
            raise CommError(f"rank {rank} out of range")
        self.failed[rank] = True

    def restore_rank(self, rank: int) -> None:
        """Replace a failed rank; it rejoins at the current global time."""
        if not 0 <= rank < self.nranks:
            raise CommError(f"rank {rank} out of range")
        self.failed[rank] = False
        self.clocks[rank] = float(self.clocks.max())

    def alive_ranks(self) -> list[int]:
        """Ranks that have not failed, in rank order."""
        return [int(r) for r in np.flatnonzero(~self.failed)]

    def failed_ranks(self) -> list[int]:
        """Dead ranks in *machine* numbering, sorted.

        On a plain SimComm indices and machine ranks coincide; a
        ScaledComm overrides this to report dead exemplars and dead
        modelled ranks by their global machine rank, so fault-injection
        drivers (``FaultInjector.clear``) work on either communicator.
        """
        return [int(r) for r in np.flatnonzero(self.failed)]

    @property
    def machine_alive_count(self) -> int:
        """Machine ranks still alive (``machine_ranks`` minus the dead)."""
        return self.nranks - int(self.failed.sum())

    # -- link degradation (fault injection) --------------------------------------

    def degrade_link(self, slowdown: float, duration: float) -> None:
        """Degrade the internode fabric by *slowdown* for *duration*
        simulated seconds, starting now (the current slowest clock).

        Collectives priced while a window is active see the link's beta
        multiplied by the product of all active slowdowns — bandwidth
        collapses, latency stays (a flapping link, not a dead one).
        Windows expire on the simulated clock; nothing needs clearing.
        """
        if slowdown < 1.0:
            raise CommError("link slowdown must be >= 1")
        if duration <= 0 or slowdown == 1.0:
            return
        start = float(self.clocks.max())
        self._degradation_windows.append((float(slowdown), start + duration))

    def _collective_link(self) -> cm.LinkParameters:
        """The internode link every collective prices against, degraded
        by any active :meth:`degrade_link` window."""
        link = self.topology.internode_link(device_buffers=self.device_buffers)
        return self._apply_degradation(link)

    def _apply_degradation(self, link: cm.LinkParameters) -> cm.LinkParameters:
        if not self._degradation_windows:
            return link
        now = float(self.clocks.max())
        self._degradation_windows = [
            w for w in self._degradation_windows if w[1] > now]
        factor = 1.0
        for slowdown, _until in self._degradation_windows:
            factor *= slowdown
        if factor == 1.0:
            return link
        return cm.LinkParameters(alpha=link.alpha, beta=link.beta * factor)

    def agree(self, values: Sequence[Any] | None = None, nbytes: float = 8.0,
              op: Callable = np.logical_and) -> tuple[Any, tuple[int, ...]]:
        """ULFM ``MPIX_Comm_agree``: fault-tolerant consensus among survivors.

        Unlike the ordinary collectives, ``agree`` *never* raises
        :class:`RankFailedError` — it runs over the alive ranks only,
        reduces their contributions with *op* (logical AND by default,
        matching the MPI semantics of agreeing on a bitmask), and returns
        ``(agreed_value, failed_ranks)`` so the survivors share a
        consistent view of who died.  ``values`` is indexed by *global*
        rank (length ``nranks``); dead ranks' entries are ignored.  Costs
        an allreduce over the survivor group.
        """
        alive = self.alive_ranks()
        if not alive:
            raise CommError("agree on a communicator with no alive ranks")
        if values is None:
            values = [True] * self.nranks
        if len(values) != self.nranks:
            raise CommError(f"expected {self.nranks} per-rank values, "
                            f"got {len(values)}")
        link = self._collective_link()
        t = cm.allreduce_time(len(alive), nbytes, link)
        start = float(np.max(self.clocks[alive]))
        self.clocks[alive] = start + t
        self.stats.collectives += 1
        self.stats.collective_bytes += nbytes * len(alive)
        self.stats.total_comm_time += t * len(alive)
        self._trace_collective("agree", start, t, nbytes, len(alive))
        acc = values[alive[0]]
        for r in alive[1:]:
            acc = op(acc, values[r])
        return acc, tuple(int(r) for r in np.flatnonzero(self.failed))

    def shrink(self) -> "SimComm":
        """ULFM ``MPIX_Comm_shrink``: a new communicator over the survivors.

        The surviving ranks are renumbered densely (old rank order is
        preserved: if rank 0 died, old rank 1 becomes new rank 0) and
        carry their clocks over, synchronized to the shrink consensus —
        building the shrunken communicator is itself an agreement, so the
        survivors pay one ``agree`` before the new communicator exists.
        ``parent_ranks[new_rank]`` maps back to the rank numbering of this
        communicator.  Shrinking a fully-alive communicator returns an
        identical copy; shrinking repeatedly after repeated failures keeps
        working down to a single rank.
        """
        self.agree()  # the consensus that makes the survivor set common
        alive = self.alive_ranks()
        sub = SimComm(len(alive), self.topology.fabric,
                      ranks_per_node=self.topology.ranks_per_node,
                      device_buffers=self.device_buffers,
                      tracer=self.tracer)
        sub.clocks = self.clocks[alive].copy()
        sub.parent_ranks = tuple(alive)
        sub.parent_machine_ranks = tuple(alive)
        return sub

    def _check_alive(self, participants: Sequence[int] | None = None) -> None:
        dead = (self.failed if participants is None
                else self.failed[list(participants)])
        if dead.any():
            ranks = (np.flatnonzero(self.failed) if participants is None
                     else [r for r in participants if self.failed[r]])
            raise RankFailedError(list(ranks))

    # -- tracing (observation only: reads clocks, never moves them) -------------

    def _trace_collective(self, name: str, start: float, t: float,
                          nbytes: float, participants: int) -> None:
        tr = self.tracer
        if tr is None:
            return
        tr.record(name, start, t, cat="mpisim", pid="mpisim",
                  tid="collectives", nbytes=float(nbytes),
                  participants=int(participants))
        m = tr.metrics
        m.counter("mpisim.collectives").inc()
        m.counter("mpisim.collective_bytes").inc(float(nbytes) * participants)
        m.histogram("mpisim.collective_time", COMM_TIME_EDGES).observe(t)

    def _trace_p2p(self, name: str, src: int, dst: int, start: float,
                   t: float, nbytes: float) -> None:
        tr = self.tracer
        if tr is None:
            return
        tr.record(name, start, t, cat="mpisim", pid="mpisim",
                  tid=f"rank{dst}", src=int(src), dst=int(dst),
                  nbytes=float(nbytes))
        m = tr.metrics
        m.counter(f"mpisim.edge[{src}->{dst}].messages").inc()
        m.counter(f"mpisim.edge[{src}->{dst}].bytes").inc(float(nbytes))
        m.histogram("mpisim.p2p_time", COMM_TIME_EDGES).observe(t)
        m.histogram("mpisim.p2p_bytes", COMM_BYTES_EDGES).observe(float(nbytes))

    # -- clock helpers ---------------------------------------------------------

    def advance(self, rank: int, dt: float) -> None:
        """Rank-local compute time."""
        if dt < 0:
            raise CommError("time must advance forward")
        self.clocks[rank] += dt

    def advance_all(self, dt: float | np.ndarray) -> None:
        """Compute time on every rank (scalar or per-rank array)."""
        dt_arr = np.asarray(dt, dtype=float)
        if np.any(dt_arr < 0):
            raise CommError("time must advance forward")
        self.clocks += dt_arr

    @property
    def elapsed(self) -> float:
        """Simulated wall time: the slowest rank's clock."""
        return float(self.clocks.max())

    def load_imbalance(self) -> float:
        """max/mean clock ratio — 1.0 is perfectly balanced."""
        mean = float(self.clocks.mean())
        return float(self.clocks.max()) / mean if mean > 0 else 1.0

    # -- internal ------------------------------------------------------------------

    def _sync_collective(self, nbytes: float, time_fn: Callable[..., float],
                         *, participants: Sequence[int] | None = None,
                         name: str = "collective") -> None:
        self._check_alive(participants)
        ranks = range(self.nranks) if participants is None else participants
        p = len(list(ranks)) if participants is not None else self.nranks
        link = self._collective_link()
        t = time_fn(p, nbytes, link) if time_fn is not cm.barrier_time else time_fn(p, link)
        idx = list(participants) if participants is not None else slice(None)
        start = float(np.max(self.clocks[idx]))
        self.clocks[idx] = start + t
        self.stats.collectives += 1
        self.stats.collective_bytes += nbytes * p
        self.stats.total_comm_time += t * p
        self._trace_collective(name, start, t, nbytes, p)

    # -- point-to-point ---------------------------------------------------------------

    def _link(self, a: int, b: int) -> cm.LinkParameters:
        """α-β path between two rank *indices* (overridden by ScaledComm
        to translate live indices to their global machine positions)."""
        return self.topology.link(a, b, device_buffers=self.device_buffers)

    def sendrecv(self, src: int, dst: int, payload: Any, nbytes: float) -> Any:
        """Blocking matched send/recv; returns the payload at the receiver."""
        if src == dst:
            raise CommError("sendrecv with src == dst")
        self._check_alive([src, dst])
        link = self._link(src, dst)
        t = link.p2p_time(nbytes)
        done = max(self.clocks[src], self.clocks[dst]) + t
        self.clocks[src] = done
        self.clocks[dst] = done
        self.stats.p2p_messages += 1
        self.stats.p2p_bytes += nbytes
        self.stats.total_comm_time += 2 * t
        self._trace_p2p("sendrecv", src, dst, done - t, t, nbytes)
        return payload

    def isendrecv(self, src: int, dst: int, nbytes: float) -> PendingOp:
        """Nonblocking transfer: completion time computed now, applied at wait."""
        if src == dst:
            raise CommError("isendrecv with src == dst")
        self._check_alive([src, dst])
        link = self._link(src, dst)
        t = link.p2p_time(nbytes)
        done = max(self.clocks[src], self.clocks[dst]) + t
        self.stats.p2p_messages += 1
        self.stats.p2p_bytes += nbytes
        self.stats.total_comm_time += 2 * t
        self._trace_p2p("isendrecv", src, dst, done - t, t, nbytes)
        return PendingOp(complete_at={src: done, dst: done}, comm=self)

    def ineighbor_exchange(self, partners_of: Callable[[int], Sequence[int]],
                           nbytes: float, *,
                           name: str = "neighbor_exchange") -> PendingOp:
        """Nonblocking halo exchange: every rank swaps *nbytes* with each of
        its ``partners_of(rank)`` concurrently (MPI_Ineighbor_alltoall).

        Each rank completes at ``max(own clock, partner clocks) + sum of
        its per-partner p2p times`` — the serialization a single NIC
        imposes on one rank's messages, while distinct ranks overlap.
        Self-partners are ignored (degenerate axes of periodic grids).
        """
        self._check_alive()
        start_clocks = self.clocks.copy()
        complete: dict[int, float] = {}
        nmessages = 0
        time_sum = 0.0
        for r in range(self.nranks):
            partners = [int(q) for q in partners_of(r) if int(q) != r]
            if not partners:
                continue
            t_r = sum(self._link(r, q).p2p_time(nbytes) for q in partners)
            ready = max(float(start_clocks[r]),
                        max(float(start_clocks[q]) for q in partners))
            complete[r] = ready + t_r
            nmessages += len(partners)
            time_sum += t_r
        self.stats.p2p_messages += nmessages
        self.stats.p2p_bytes += nmessages * nbytes
        self.stats.total_comm_time += time_sum
        if complete:
            start = min(float(start_clocks[r]) for r in complete)
            span = max(complete.values()) - start
            self._trace_collective(name, start, span, nbytes * nmessages,
                                   len(complete))
        return PendingOp(complete_at=complete, comm=self)

    def neighbor_exchange(self, partners_of: Callable[[int], Sequence[int]],
                          nbytes: float) -> None:
        """Blocking halo exchange (``ineighbor_exchange`` + ``wait``)."""
        self.ineighbor_exchange(partners_of, nbytes).wait()

    # -- collectives with data semantics ----------------------------------------------

    def bcast(self, value: Any, nbytes: float, root: int = 0) -> list[Any]:
        """Broadcast: every rank receives *value* (deep-shared, numpy-copied)."""
        self._check_root(root)
        self._sync_collective(nbytes, cm.bcast_time, name="bcast")
        return [np.copy(value) if isinstance(value, np.ndarray) else value
                for _ in range(self.nranks)]

    def reduce(self, values: Sequence[Any], nbytes: float, op: Callable = np.add,
               root: int = 0) -> Any:
        self._check_inputs(values)
        self._check_root(root)
        self._sync_collective(nbytes, cm.reduce_time, name="reduce")
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(self, values: Sequence[Any], nbytes: float, op: Callable = np.add) -> list[Any]:
        self._check_inputs(values)
        self._sync_collective(nbytes, cm.allreduce_time, name="allreduce")
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return [np.copy(acc) if isinstance(acc, np.ndarray) else acc
                for _ in range(self.nranks)]

    def reduce_scatter(self, blocks: Sequence[Sequence[Any]], nbytes: float,
                       op: Callable = np.add) -> list[Any]:
        """Reduce-scatter: ``blocks[src][dst]`` contributions; rank *dst*
        receives the reduction over *src* of its block.

        *nbytes* is the full input vector size (each rank ends holding
        ``nbytes / p``), matching :func:`costmodel.reduce_scatter_time` —
        the first half of Rabenseifner's allreduce decomposition.
        """
        if len(blocks) != self.nranks or any(len(row) != self.nranks for row in blocks):
            raise CommError(f"reduce_scatter needs an {self.nranks}x{self.nranks} block matrix")
        self._sync_collective(nbytes, cm.reduce_scatter_time, name="reduce_scatter")
        out: list[Any] = []
        for dst in range(self.nranks):
            acc = blocks[0][dst]
            for src in range(1, self.nranks):
                acc = op(acc, blocks[src][dst])
            out.append(acc)
        return out

    def allgather(self, values: Sequence[Any], nbytes: float) -> list[list[Any]]:
        self._check_inputs(values)
        self._sync_collective(nbytes, cm.allgather_time, name="allgather")
        gathered = list(values)
        return [list(gathered) for _ in range(self.nranks)]

    def gather(self, values: Sequence[Any], nbytes: float, root: int = 0) -> list[Any]:
        self._check_inputs(values)
        self._check_root(root)
        self._sync_collective(nbytes, cm.reduce_time, name="gather")
        return list(values)

    def scatter(self, values: Sequence[Any], nbytes: float, root: int = 0) -> list[Any]:
        self._check_inputs(values)
        self._check_root(root)
        self._sync_collective(nbytes, cm.bcast_time, name="scatter")
        return list(values)

    def alltoall(self, matrix: Sequence[Sequence[Any]], nbytes_per_pair: float) -> list[list[Any]]:
        """``matrix[src][dst]`` payloads → returns ``out[dst][src]``."""
        if len(matrix) != self.nranks or any(len(row) != self.nranks for row in matrix):
            raise CommError(f"alltoall needs an {self.nranks}x{self.nranks} payload matrix")
        self._sync_collective(nbytes_per_pair * self.nranks, lambda p, n, l:
                              cm.alltoall_time(p, nbytes_per_pair, l),
                              name="alltoall")
        return [[matrix[src][dst] for src in range(self.nranks)]
                for dst in range(self.nranks)]

    def ialltoall(self, matrix: Sequence[Sequence[Any]],
                  nbytes_per_pair: float) -> tuple[list[list[Any]], PendingOp]:
        """Nonblocking alltoall: data available immediately for staging,
        clocks advance at ``wait`` — the overlap GESTS uses to hide the
        transpose behind local FFT passes."""
        if len(matrix) != self.nranks or any(len(row) != self.nranks for row in matrix):
            raise CommError(f"alltoall needs an {self.nranks}x{self.nranks} payload matrix")
        self._check_alive()
        link = self._collective_link()
        t = cm.alltoall_time(self.nranks, nbytes_per_pair, link)
        start = float(self.clocks.max())
        done = {r: start + t for r in range(self.nranks)}
        self.stats.collectives += 1
        self.stats.collective_bytes += nbytes_per_pair * self.nranks * self.nranks
        self.stats.total_comm_time += t * self.nranks
        self._trace_collective("ialltoall", start, t,
                               nbytes_per_pair * self.nranks, self.nranks)
        out = [[matrix[src][dst] for src in range(self.nranks)]
               for dst in range(self.nranks)]
        return out, PendingOp(complete_at=done, comm=self)

    def split(self, color_of: Callable[[int], int], *,
              shared_stats: bool = False) -> dict[int, "SimComm"]:
        """MPI_Comm_split: one sub-communicator per color.

        Each sub-communicator starts with its members' current clocks (so
        prior work carries over); the parent keeps its own clocks.  Used
        for the row/column communicators of pencil decompositions.

        With ``shared_stats=True`` the children record into the parent's
        :class:`CommStats` object directly, so multi-comm campaigns
        report true totals without a merge step; otherwise call
        :meth:`merge_child_stats` when the children retire.
        """
        groups: dict[int, list[int]] = {}
        for r in range(self.nranks):
            groups.setdefault(color_of(r), []).append(r)
        out: dict[int, SimComm] = {}
        for color, members in groups.items():
            sub = SimComm(len(members), self.topology.fabric,
                          ranks_per_node=self.topology.ranks_per_node,
                          device_buffers=self.device_buffers,
                          tracer=self.tracer)
            sub.clocks = self.clocks[members].copy()
            sub.parent_ranks = tuple(members)
            sub.parent_machine_ranks = tuple(members)
            if shared_stats:
                sub.stats = self.stats
            out[color] = sub
        return out

    def merge_child_stats(self, children: "Sequence[SimComm] | dict[Any, SimComm]") -> None:
        """Fold child communicators' accounting into this comm's stats.

        Children created with ``shared_stats=True`` already write here and
        are skipped, so mixing the two modes never double-counts.
        """
        comms = children.values() if isinstance(children, dict) else children
        for child in comms:
            if child.stats is self.stats:
                continue
            self.stats.merge(child.stats)

    def alltoallv(self, matrix: Sequence[Sequence[Any]],
                  nbytes: Sequence[Sequence[float]]) -> list[list[Any]]:
        """Variable-size alltoall: ``nbytes[src][dst]`` per payload."""
        if len(matrix) != self.nranks or any(len(r) != self.nranks for r in matrix):
            raise CommError(f"alltoallv needs an {self.nranks}x{self.nranks} payload matrix")
        if len(nbytes) != self.nranks or any(len(r) != self.nranks for r in nbytes):
            raise CommError("nbytes must match the payload matrix shape")
        self._check_alive()
        link = self._collective_link()
        t = cm.alltoallv_time([list(map(float, row)) for row in nbytes], link)
        start = float(self.clocks.max())
        self.clocks[:] = start + t
        self.stats.collectives += 1
        total_bytes = float(sum(sum(r) for r in nbytes))
        self.stats.collective_bytes += total_bytes
        self.stats.total_comm_time += t * self.nranks
        self._trace_collective("alltoallv", start, t,
                               total_bytes / self.nranks, self.nranks)
        return [[matrix[src][dst] for src in range(self.nranks)]
                for dst in range(self.nranks)]

    def barrier(self) -> None:
        self._sync_collective(0.0, cm.barrier_time, name="barrier")

    # -- validation --------------------------------------------------------------

    def _check_inputs(self, values: Sequence[Any]) -> None:
        if len(values) != self.nranks:
            raise CommError(f"expected {self.nranks} per-rank values, got {len(values)}")

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.nranks:
            raise CommError(f"root {root} out of range")
