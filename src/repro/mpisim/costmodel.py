"""Communication cost models (Hockney α-β plus collective algorithms).

Point-to-point time is ``α + n·β`` with α the MPI small-message latency and
β the inverse effective bandwidth.  Collectives use the standard algorithm
costs (binomial broadcast, Rabenseifner allreduce, pairwise alltoall, ring
allgather) that production MPIs select; these are the terms that dominate
the paper's scaling discussions (GESTS transpose cycles, LAMMPS QEq
CG-iteration latency, Pele ghost exchange).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.interconnect import InterconnectSpec


@dataclass(frozen=True)
class LinkParameters:
    """Resolved α-β parameters for one message path."""

    alpha: float  # startup latency, s
    beta: float  # s per byte

    def p2p_time(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ValueError("message size must be non-negative")
        return self.alpha + nbytes * self.beta


#: Intra-node path (shared memory / XGMI): latency and bandwidth are far
#: better than any NIC.
INTRA_NODE = LinkParameters(alpha=0.4e-6, beta=1.0 / 80e9)


def link_parameters(
    fabric: InterconnectSpec,
    *,
    ranks_sharing_nic: int = 1,
    device_buffers: bool = False,
) -> LinkParameters:
    """α-β for an inter-node message on *fabric*.

    ``ranks_sharing_nic`` divides the per-NIC injection bandwidth among the
    node's concurrently communicating ranks (Frontier: 8 ranks over 4
    NICs → 2 ranks/NIC).  ``device_buffers`` applies the GPU-aware
    efficiency, or a staging penalty when the fabric is not GPU-aware.
    """
    if ranks_sharing_nic < 1:
        raise ValueError("ranks_sharing_nic must be >= 1")
    bw = fabric.bandwidth / ranks_sharing_nic
    alpha = fabric.latency
    if device_buffers:
        if fabric.gpu_aware:
            bw *= fabric.gpu_aware_efficiency
        else:
            # staged through host memory: pay the host link both sides
            bw *= 0.5
            alpha += 5e-6
    return LinkParameters(alpha=alpha, beta=1.0 / bw)


def ranks_per_nic(total_ranks_on_node: int, fabric: InterconnectSpec) -> int:
    """How many ranks share one NIC when all communicate at once."""
    return max(1, math.ceil(total_ranks_on_node / max(fabric.nics_per_node, 1)))


# ---------------------------------------------------------------------------
# Collective algorithm costs (p ranks, n bytes per rank unless stated)
#
# Each collective exposes its named algorithm variants individually (the
# per-algorithm α-β costs a production MPI's tuning tables choose between)
# plus the historical entry point that applies the stock selection rule.
# ``COLLECTIVE_ALGORITHMS`` is the registry the autotuning navigator
# searches per machine and message size.
# ---------------------------------------------------------------------------


def bcast_time_binomial(p: int, nbytes: float, link: LinkParameters) -> float:
    """Binomial-tree broadcast: ⌈log2 p⌉ rounds of the full payload."""
    if p <= 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    return rounds * link.p2p_time(nbytes)


def bcast_time_scatter_allgather(p: int, nbytes: float,
                                 link: LinkParameters) -> float:
    """Van de Geijn broadcast: binomial scatter + ring allgather.

    ``(⌈log2 p⌉ + p − 1)·α + 2·(p−1)/p·n·β`` — β-optimal, so it wins for
    large payloads despite the linear α term.
    """
    if p <= 1:
        return 0.0
    lg = math.ceil(math.log2(p))
    return (lg + p - 1) * link.alpha + 2.0 * (p - 1) / p * nbytes * link.beta


def bcast_time(p: int, nbytes: float, link: LinkParameters) -> float:
    """Binomial-tree broadcast (the stock small-message default)."""
    return bcast_time_binomial(p, nbytes, link)


def reduce_time(p: int, nbytes: float, link: LinkParameters) -> float:
    """Binomial-tree reduction (same round structure as bcast)."""
    return bcast_time(p, nbytes, link)


def allreduce_time_recursive_doubling(p: int, nbytes: float,
                                      link: LinkParameters) -> float:
    """Recursive doubling: ⌈log2 p⌉·(α + n·β) — latency-optimal."""
    if p <= 1:
        return 0.0
    return math.ceil(math.log2(p)) * link.p2p_time(nbytes)


def allreduce_time_rabenseifner(p: int, nbytes: float,
                                link: LinkParameters) -> float:
    """Rabenseifner: reduce-scatter + allgather, ``2·⌈log2 p⌉·α +
    2·(p−1)/p·n·β`` — bandwidth-optimal."""
    if p <= 1:
        return 0.0
    lg = math.ceil(math.log2(p))
    return 2 * lg * link.alpha + 2.0 * (p - 1) / p * nbytes * link.beta


def allreduce_time_ring(p: int, nbytes: float, link: LinkParameters) -> float:
    """Ring allreduce: ``2·(p−1)·α + 2·(p−1)/p·n·β``.

    Same β term as Rabenseifner with a linear α term — never the winner
    under this contention-free model, but kept in the registry so the
    tuner's selection is an honest argmin over what real MPIs offer.
    """
    if p <= 1:
        return 0.0
    return 2 * (p - 1) * link.alpha + 2.0 * (p - 1) / p * nbytes * link.beta


def allreduce_time(p: int, nbytes: float, link: LinkParameters) -> float:
    """Rabenseifner for large payloads, recursive doubling for small
    (the stock message-size switch production MPIs apply)."""
    if p <= 1:
        return 0.0
    return min(
        allreduce_time_recursive_doubling(p, nbytes, link),
        allreduce_time_rabenseifner(p, nbytes, link),
    )


def allgather_time_ring(p: int, nbytes: float, link: LinkParameters) -> float:
    """Ring allgather of *nbytes* contributed per rank: (p-1) steps."""
    if p <= 1:
        return 0.0
    return (p - 1) * link.p2p_time(nbytes)


def allgather_time_recursive_doubling(p: int, nbytes: float,
                                      link: LinkParameters) -> float:
    """Recursive-doubling allgather: ⌈log2 p⌉·α + (p−1)·n·β."""
    if p <= 1:
        return 0.0
    return math.ceil(math.log2(p)) * link.alpha + (p - 1) * nbytes * link.beta


def allgather_time(p: int, nbytes: float, link: LinkParameters) -> float:
    """Ring allgather (the historical default path)."""
    return allgather_time_ring(p, nbytes, link)


def alltoall_time_pairwise(p: int, nbytes_per_pair: float,
                           link: LinkParameters) -> float:
    """Pairwise-exchange alltoall: p-1 rounds of one pair message each."""
    if p <= 1:
        return 0.0
    return (p - 1) * link.p2p_time(nbytes_per_pair)


def alltoall_time_bruck(p: int, nbytes_per_pair: float,
                        link: LinkParameters) -> float:
    """Bruck alltoall: ⌈log2 p⌉ rounds shipping half the local data each,
    ``⌈log2 p⌉·(α + (p/2)·n·β)`` — the small-message latency winner."""
    if p <= 1:
        return 0.0
    lg = math.ceil(math.log2(p))
    return lg * link.p2p_time(0.5 * p * nbytes_per_pair)


def alltoall_time(p: int, nbytes_per_pair: float, link: LinkParameters) -> float:
    """Pairwise-exchange alltoall (the stock large-message default)."""
    return alltoall_time_pairwise(p, nbytes_per_pair, link)


#: op -> {algorithm name -> cost fn(p, nbytes, link)}; what the autotuner
#: searches.  Every entry is a real algorithm a production MPI implements.
COLLECTIVE_ALGORITHMS: dict[str, dict[str, object]] = {
    "allreduce": {
        "recursive-doubling": allreduce_time_recursive_doubling,
        "rabenseifner": allreduce_time_rabenseifner,
        "ring": allreduce_time_ring,
    },
    "bcast": {
        "binomial": bcast_time_binomial,
        "scatter-allgather": bcast_time_scatter_allgather,
    },
    "allgather": {
        "ring": allgather_time_ring,
        "recursive-doubling": allgather_time_recursive_doubling,
    },
    "alltoall": {
        "pairwise": alltoall_time_pairwise,
        "bruck": alltoall_time_bruck,
    },
}

#: The fixed per-op choice an untuned MPI build ships with (no
#: message-size switching): the baseline the navigator's margins are
#: measured against.
DEFAULT_COLLECTIVE_ALGORITHM: dict[str, str] = {
    "allreduce": "recursive-doubling",
    "bcast": "binomial",
    "allgather": "ring",
    "alltoall": "pairwise",
}


def barrier_time(p: int, link: LinkParameters) -> float:
    """Dissemination barrier: ⌈log2 p⌉ zero-payload rounds."""
    if p <= 1:
        return 0.0
    return math.ceil(math.log2(p)) * link.alpha


def reduce_scatter_time(p: int, nbytes: float, link: LinkParameters) -> float:
    """Pairwise reduce-scatter of a length-n input: (p-1)/p·n·β + (p-1)·α."""
    if p <= 1:
        return 0.0
    return (p - 1) * link.alpha + (p - 1) / p * nbytes * link.beta


def alltoallv_time(pair_bytes: "list[list[float]]", link: LinkParameters) -> float:
    """Pairwise-exchange alltoallv with per-pair sizes.

    ``pair_bytes[src][dst]`` bytes flow src→dst; the exchange runs p−1
    rounds and each round is gated by its largest pair message (the
    bulk-synchronous pairwise schedule).
    """
    p = len(pair_bytes)
    if any(len(row) != p for row in pair_bytes):
        raise ValueError("pair_bytes must be a square matrix")
    if p <= 1:
        return 0.0
    total = 0.0
    for step in range(1, p):
        # in round `step`, rank r exchanges with r XOR-partner r±step
        round_max = 0.0
        for src in range(p):
            dst = (src + step) % p
            round_max = max(round_max, pair_bytes[src][dst])
        total += link.p2p_time(round_max)
    return total
