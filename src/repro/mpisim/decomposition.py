"""Domain decompositions: slabs, pencils, blocks (GESTS §3.3, HACC, Pele).

The GESTS discussion is entirely about decomposition arithmetic: a *Slabs*
(1-D) decomposition of an N³ grid needs one fewer transpose per FFT
direction than *Pencils* (2-D) but is limited to N ranks, while pencils
admit N² ranks.  These helpers compute local shapes, rank limits and the
transpose communication pattern sizes consumed by the FFT and app layers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


class DecompositionError(ValueError):
    pass


def balanced_counts(nitems: int, nranks: int) -> np.ndarray:
    """Items per rank under the balanced 1-D block partition.

    The first ``nitems % nranks`` ranks carry one extra item — the
    standard MPI block distribution, and the partition the elastic
    recovery layer rebuilds after a shrink.
    """
    if nranks < 1:
        raise DecompositionError("need at least one rank")
    if nitems < 0:
        raise DecompositionError("item count must be non-negative")
    base, extra = divmod(nitems, nranks)
    counts = np.full(nranks, base, dtype=np.int64)
    counts[:extra] += 1
    return counts


def block_owners(nitems: int, nranks: int) -> np.ndarray:
    """Owning rank of each item under :func:`balanced_counts`.

    Returns an ``(nitems,)`` int array; comparing the owner maps before
    and after a communicator shrink yields exactly the items that must
    migrate to survivors.
    """
    counts = balanced_counts(nitems, nranks)
    return np.repeat(np.arange(nranks, dtype=np.int64), counts)


@dataclass(frozen=True)
class SlabDecomposition:
    """1-D decomposition of an N³ grid over P ranks (complete planes)."""

    n: int
    nranks: int

    def __post_init__(self) -> None:
        if self.nranks > self.n:
            raise DecompositionError(
                f"slabs limited to N={self.n} ranks, requested {self.nranks}"
            )
        if self.n % self.nranks != 0:
            raise DecompositionError(
                f"N={self.n} must be divisible by P={self.nranks}"
            )

    @property
    def local_shape(self) -> tuple[int, int, int]:
        return (self.n // self.nranks, self.n, self.n)

    @property
    def transposes_per_fft(self) -> int:
        """One global transpose per 3-D FFT direction pass."""
        return 1

    def transpose_bytes_per_pair(self, itemsize: int = 16) -> float:
        """Bytes each rank sends to each other rank in one transpose."""
        total_local = math.prod(self.local_shape) * itemsize
        return total_local / self.nranks


@dataclass(frozen=True)
class PencilDecomposition:
    """2-D decomposition over a ``prow x pcol`` process grid."""

    n: int
    prow: int
    pcol: int

    def __post_init__(self) -> None:
        if self.prow * self.pcol > self.n * self.n:
            raise DecompositionError(
                f"pencils limited to N^2={self.n * self.n} ranks, "
                f"requested {self.prow * self.pcol}"
            )
        if self.n % self.prow != 0 or self.n % self.pcol != 0:
            raise DecompositionError(
                f"N={self.n} must be divisible by prow={self.prow} and pcol={self.pcol}"
            )

    @property
    def nranks(self) -> int:
        return self.prow * self.pcol

    @property
    def local_shape(self) -> tuple[int, int, int]:
        return (self.n // self.prow, self.n // self.pcol, self.n)

    @property
    def transposes_per_fft(self) -> int:
        """Two global transposes per 3-D FFT pass (one more than slabs)."""
        return 2

    def transpose_bytes_per_pair(self, itemsize: int = 16) -> float:
        """Bytes per pair in one row- or column-communicator transpose."""
        total_local = math.prod(self.local_shape) * itemsize
        # transposes run within rows (prow ranks) or columns (pcol ranks)
        group = max(self.prow, self.pcol)
        return total_local / group


def balanced_pencil_grid(n: int, nranks: int) -> tuple[int, int]:
    """Most-square ``(prow, pcol)`` factorization with both dividing *n*."""
    best: tuple[int, int] | None = None
    for prow in range(1, int(math.isqrt(nranks)) + 1):
        if nranks % prow:
            continue
        pcol = nranks // prow
        if n % prow == 0 and n % pcol == 0:
            best = (prow, pcol)
    if best is None:
        raise DecompositionError(f"no pencil grid for N={n}, P={nranks}")
    return best


@dataclass(frozen=True)
class BlockDecomposition:
    """3-D block decomposition (HACC, Pele/AMReX at the node level)."""

    nx: int
    ny: int
    nz: int
    px: int
    py: int
    pz: int

    def __post_init__(self) -> None:
        for n, p, axis in ((self.nx, self.px, "x"), (self.ny, self.py, "y"), (self.nz, self.pz, "z")):
            if n % p != 0:
                raise DecompositionError(f"{axis}: {n} not divisible by {p}")

    @property
    def nranks(self) -> int:
        return self.px * self.py * self.pz

    @property
    def local_shape(self) -> tuple[int, int, int]:
        return (self.nx // self.px, self.ny // self.py, self.nz // self.pz)

    def ghost_bytes_per_exchange(self, ghost_width: int, itemsize: int = 8,
                                 ncomponents: int = 1) -> float:
        """Total bytes one rank exchanges with its 6 face neighbours."""
        lx, ly, lz = self.local_shape
        faces = 2 * (lx * ly + ly * lz + lx * lz)
        return faces * ghost_width * itemsize * ncomponents

    def coords(self, rank: int) -> tuple[int, int, int]:
        """Process-grid position ``(ix, iy, iz)`` of *rank*."""
        if not 0 <= rank < self.nranks:
            raise DecompositionError(f"rank {rank} out of range")
        iz, rem = divmod(rank, self.px * self.py)
        iy, ix = divmod(rem, self.px)
        return ix, iy, iz

    def neighbors(self, rank: int) -> list[int]:
        """Face-neighbour ranks with periodic wrap."""
        ix, iy, iz = self.coords(rank)
        out = []
        for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)):
            jx = (ix + dx) % self.px
            jy = (iy + dy) % self.py
            jz = (iz + dz) % self.pz
            out.append(jz * self.px * self.py + jy * self.px + jx)
        return out

    def boundary_class(self, rank: int) -> str:
        """Structural class of *rank* in the (non-periodic) process grid.

        Each axis contributes ``lo`` / ``mid`` / ``hi`` (collapsing to
        ``lo``/``hi`` when the axis has fewer than three ranks), so the
        grid has at most 27 classes — the corner/edge/face/interior
        taxonomy the representative-rank partitioner groups by.  Under
        periodic wrap all ranks are symmetric; this classification keeps
        the open-boundary distinctions, which is conservative (more
        exemplars than strictly needed, never fewer).
        """
        pos = self.coords(rank)
        parts = []
        for i, (c, p) in enumerate(zip(pos, (self.px, self.py, self.pz))):
            axis = "xyz"[i]
            if p == 1:
                parts.append(f"{axis}*")
            elif c == 0:
                parts.append(f"{axis}lo")
            elif c == p - 1:
                parts.append(f"{axis}hi")
            else:
                parts.append(f"{axis}mid")
        return "/".join(parts)

    def boundary_classes(self) -> np.ndarray:
        """Vectorized :meth:`boundary_class` over every rank.

        Encodes each axis category (lo / mid / hi / degenerate ``*``) in
        two bits and decodes through a 64-entry string table, so the
        whole map costs a few array passes — the partitioner calls this
        at full machine scale.
        """
        ranks = np.arange(self.nranks, dtype=np.int64)
        iz, rem = np.divmod(ranks, self.px * self.py)
        iy, ix = np.divmod(rem, self.px)
        code = np.zeros(self.nranks, dtype=np.int64)
        for c, p in ((ix, self.px), (iy, self.py), (iz, self.pz)):
            if p == 1:
                cat = np.full(self.nranks, 3, dtype=np.int64)
            else:
                cat = np.where(c == 0, 0, np.where(c == p - 1, 2, 1))
            code = code * 4 + cat
        names = ("lo", "mid", "hi", "*")
        lut = np.array(["/".join(f"{axis}{names[(k >> shift) & 3]}"
                                 for axis, shift in
                                 (("x", 4), ("y", 2), ("z", 0)))
                        for k in range(64)])
        return lut[code]


def balanced_block_grid(nranks: int) -> tuple[int, int, int]:
    """Most-cubic ``(px, py, pz)`` factorization of an arbitrary *nranks*.

    Unlike :func:`balanced_pencil_grid` there is no divisibility
    constraint against a grid size — this factorization shapes the
    *process* grid only (halo-neighbour structure for the scaling
    engine), so any rank count works, falling back to elongated grids
    for awkward factors and ``(n, 1, 1)`` for primes.
    """
    if nranks < 1:
        raise DecompositionError("need at least one rank")
    best: tuple[int, int, int] | None = None
    best_score = float("inf")
    for px in range(1, int(round(nranks ** (1 / 3))) + 1):
        if nranks % px:
            continue
        rest = nranks // px
        for py in range(px, int(math.isqrt(rest)) + 1):
            if rest % py:
                continue
            pz = rest // py
            score = pz / px  # max/min extent; 1.0 is a perfect cube
            if score < best_score:
                best, best_score = (px, py, pz), score
    if best is None:
        best = (1, 1, nranks)
    return best
