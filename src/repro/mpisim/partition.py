"""Rank-class partitioning for representative-rank simulation.

At full-machine scale almost every rank is *structurally identical* to
thousands of others: an interior rank of a 3-D block decomposition sees
the same six-neighbour halo, the same collective fan-ins and the same
per-step compute as every other interior rank.  The scaled execution
mode (:mod:`repro.mpisim.scaled`) exploits that symmetry by executing a
few **representative** ranks concretely and modelling the rest through
their group's clock aggregates.

This module supplies the assignment layer, shaped after nengo_mpi's
``Partitioner`` / ``verify_assignments`` pair: a partitioner produces a
:class:`RankPartition` (disjoint :class:`RankGroup`\\ s covering every
rank, each naming its live representatives), and
:func:`verify_assignments` audits any assignment — hand-built or
generated — before a communicator will accept it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Hashable, Sequence

import numpy as np

from repro.mpisim.decomposition import BlockDecomposition


class PartitionError(ValueError):
    """An assignment of ranks to groups is malformed."""


@dataclass(frozen=True)
class RankGroup:
    """One equivalence class of ranks.

    ``representatives`` are the members executed concretely; the
    remaining members are modelled, each mirroring one representative
    (its *proxy*, assigned round-robin in rank order).
    """

    name: str
    members: tuple[int, ...]
    representatives: tuple[int, ...]

    @property
    def modeled_count(self) -> int:
        return len(self.members) - len(self.representatives)

    def proxy_assignment(self) -> dict[int, int]:
        """Proxy representative of each modelled member (round-robin)."""
        reps = self.representatives
        rep_set = set(reps)
        modeled = [m for m in self.members if m not in rep_set]
        return {m: reps[i % len(reps)] for i, m in enumerate(modeled)}

    def proxy_counts(self) -> dict[int, int]:
        """Modelled members mirrored by each representative.

        Computed arithmetically from the round-robin assignment — the
        first ``modeled_count % len(reps)`` representatives carry one
        extra mirror — so the per-member dict never materializes.
        """
        base, extra = divmod(self.modeled_count, len(self.representatives))
        return {rep: base + (1 if i < extra else 0)
                for i, rep in enumerate(self.representatives)}


@dataclass(frozen=True)
class RankPartition:
    """A verified grouping of ``nranks`` ranks into equivalence classes."""

    nranks: int
    groups: tuple[RankGroup, ...]

    def __post_init__(self) -> None:
        verify_assignments(self)

    @cached_property
    def live_ranks(self) -> tuple[int, ...]:
        """Every representative, in global rank order."""
        return tuple(sorted(r for g in self.groups for r in g.representatives))

    @cached_property
    def nlive(self) -> int:
        return len(self.live_ranks)

    @cached_property
    def live_index(self) -> dict[int, int]:
        """Global rank -> index into the live arrays."""
        return {r: i for i, r in enumerate(self.live_ranks)}

    @cached_property
    def group_of(self) -> np.ndarray:
        """Group index of every global rank (``(nranks,)`` int array)."""
        out = np.empty(self.nranks, dtype=np.int64)
        for gi, g in enumerate(self.groups):
            out[list(g.members)] = gi
        return out

    @cached_property
    def weights(self) -> np.ndarray:
        """Ranks each live rank stands for (itself + proxied modelled)."""
        w = np.ones(self.nlive, dtype=np.int64)
        for g in self.groups:
            for rep, n in g.proxy_counts().items():
                w[self.live_index[rep]] += n
        return w

    @property
    def modeled_count(self) -> int:
        return self.nranks - self.nlive

    def describe(self) -> str:
        rows = ", ".join(
            f"{g.name}[{len(g.members)}|{len(g.representatives)} live]"
            for g in self.groups
        )
        return (f"RankPartition(P={self.nranks}, R={self.nlive}, "
                f"groups={len(self.groups)}: {rows})")


def verify_assignments(partition: RankPartition) -> None:
    """Audit a partition: disjoint coverage, live reps inside their group.

    The checks mirror nengo_mpi's ``verify_assignments`` contract: every
    object (rank) is assigned to exactly one component (group), and the
    assignment is usable by the runtime — here, each group must name at
    least one representative drawn from its own members.
    """
    if partition.nranks < 1:
        raise PartitionError("partition needs at least one rank")
    if not partition.groups:
        raise PartitionError("partition has no groups")
    seen = np.zeros(partition.nranks, dtype=np.int64)
    for g in partition.groups:
        if not g.members:
            raise PartitionError(f"group {g.name!r} has no members")
        if not g.representatives:
            raise PartitionError(f"group {g.name!r} has no representatives")
        members = np.asarray(g.members, dtype=np.int64)
        if members.min() < 0 or members.max() >= partition.nranks:
            raise PartitionError(
                f"group {g.name!r} has out-of-range ranks "
                f"(nranks={partition.nranks})")
        # strictly-increasing members (what the builders emit) are
        # duplicate-free by inspection; only unsorted hand-built groups
        # pay for a full unique pass
        if (not (np.diff(members) > 0).all()
                and np.unique(members).size != members.size):
            raise PartitionError(f"group {g.name!r} repeats a member")
        if not np.isin(np.asarray(g.representatives, dtype=np.int64),
                       members).all():
            raise PartitionError(
                f"group {g.name!r} names representatives outside its members")
        np.add.at(seen, members, 1)
    uncovered = np.flatnonzero(seen == 0)
    if uncovered.size:
        raise PartitionError(
            f"ranks not assigned to any group: {uncovered[:8].tolist()}...")
    doubled = np.flatnonzero(seen > 1)
    if doubled.size:
        raise PartitionError(
            f"ranks assigned to multiple groups: {doubled[:8].tolist()}...")


def all_live_partition(nranks: int) -> RankPartition:
    """The degenerate partition: every rank is its own representative.

    A :class:`~repro.mpisim.scaled.ScaledComm` built on it reproduces
    :class:`~repro.mpisim.comm.SimComm` bit for bit (``R = P``).
    """
    ranks = tuple(range(nranks))
    return RankPartition(nranks=nranks,
                         groups=(RankGroup("all", ranks, ranks),))


def partition_from_labels(labels: Sequence[Hashable], *,
                          live_per_group: int = 1) -> RankPartition:
    """Group ranks by an arbitrary per-rank label.

    The workhorse for workload-derived classes — e.g. GAMESS MBE ranks
    labelled by their task count (``base`` vs ``base+1`` under the
    balanced block distribution).  The lowest ``live_per_group`` ranks
    of each class become its representatives.
    """
    if live_per_group < 1:
        raise PartitionError("live_per_group must be >= 1")
    arr = np.asarray(labels)
    if arr.ndim == 1 and arr.dtype != object:
        # vectorized grouping: sort ranks by class code, slice per class.
        # This path is what keeps partition construction out of the
        # representative-rank sweep's critical cost (P can be ~10^5).
        uniq, codes = np.unique(arr, return_inverse=True)
        counts = np.bincount(codes, minlength=uniq.size)
        by_code = np.argsort(codes, kind="stable")
        starts = np.concatenate(([0], np.cumsum(counts)))
        groups = tuple(
            RankGroup(name=str(uniq[gi]),
                      members=(members := tuple(
                          by_code[starts[gi]:starts[gi + 1]].tolist())),
                      representatives=members[:live_per_group])
            for gi in sorted(range(uniq.size), key=lambda i: str(uniq[i]))
        )
        return RankPartition(nranks=arr.size, groups=groups)
    by_label: dict[Hashable, list[int]] = {}
    for rank, lab in enumerate(labels):
        by_label.setdefault(lab, []).append(rank)
    groups = tuple(
        RankGroup(name=str(lab), members=tuple(members),
                  representatives=tuple(members[:live_per_group]))
        for lab, members in sorted(by_label.items(), key=lambda kv: str(kv[0]))
    )
    return RankPartition(nranks=len(labels), groups=groups)


@dataclass(frozen=True)
class RankGroupPartitioner:
    """Classify ranks into structural equivalence classes.

    Strategies:

    * ``"block3d"`` — requires a :class:`BlockDecomposition`; classes are
      the boundary classes of the process grid (corner / edge / face /
      interior per axis), the Pele/HACC halo symmetry;
    * ``"node-role"`` — classes from node position (first / interior /
      last node) x on-node role (leader / follower), the right shape for
      collective-dominated apps;
    * ``"endpoints"`` — just {rank 0} / {last rank} / {interior}, the
      minimal 1-D ring classification;
    * ``"auto"`` — ``block3d`` when a decomposition is supplied, else
      ``node-role`` when ``ranks_per_node > 1``, else ``endpoints``.
    """

    strategy: str = "auto"
    live_per_group: int = 1

    def __post_init__(self) -> None:
        known = ("auto", "block3d", "node-role", "endpoints")
        if self.strategy not in known:
            raise PartitionError(
                f"unknown strategy {self.strategy!r}; known: {known}")
        if self.live_per_group < 1:
            raise PartitionError("live_per_group must be >= 1")

    def partition(self, nranks: int, *,
                  decomposition: BlockDecomposition | None = None,
                  ranks_per_node: int = 1) -> RankPartition:
        if nranks < 1:
            raise PartitionError("need at least one rank")
        strategy = self.strategy
        if strategy == "auto":
            if decomposition is not None:
                strategy = "block3d"
            elif ranks_per_node > 1:
                strategy = "node-role"
            else:
                strategy = "endpoints"
        if strategy == "block3d":
            if decomposition is None:
                raise PartitionError("block3d strategy needs a decomposition")
            if decomposition.nranks != nranks:
                raise PartitionError(
                    f"decomposition covers {decomposition.nranks} ranks, "
                    f"communicator has {nranks}")
            labels = decomposition.boundary_classes()
        elif strategy == "node-role":
            labels = self._node_role_labels(nranks, ranks_per_node)
        else:
            labels = np.full(nranks, "interior", dtype="<U8")
            labels[-1] = "last"
            labels[0] = "first"  # wins over "last" when nranks == 1
        return partition_from_labels(labels,
                                     live_per_group=self.live_per_group)

    @staticmethod
    def _node_role(rank: int, nranks: int, ranks_per_node: int) -> str:
        node = rank // ranks_per_node
        last_node = (nranks - 1) // ranks_per_node
        pos = ("first" if node == 0
               else ("last" if node == last_node else "mid"))
        role = "leader" if rank % ranks_per_node == 0 else "follower"
        return f"{pos}-{role}"

    @staticmethod
    def _node_role_labels(nranks: int, ranks_per_node: int) -> np.ndarray:
        """Vectorized :meth:`_node_role` over every rank."""
        ranks = np.arange(nranks, dtype=np.int64)
        node = ranks // ranks_per_node
        last_node = (nranks - 1) // ranks_per_node
        pos = np.where(node == 0, 0, np.where(node == last_node, 2, 1))
        leader = (ranks % ranks_per_node == 0)
        lut = np.array([f"{p}-{r}" for p in ("first", "mid", "last")
                        for r in ("leader", "follower")])
        return lut[pos * 2 + np.where(leader, 0, 1)]
