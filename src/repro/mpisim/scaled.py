"""Representative-rank execution: full-machine costs at O(R) state.

:class:`ScaledComm` is drop-in API-compatible with
:class:`~repro.mpisim.comm.SimComm` but holds data and clocks for only the
``R`` representative ranks a :class:`~repro.mpisim.partition.RankPartition`
names, while the remaining ``P − R`` ranks are *modelled*: each mirrors
its proxy representative (the round-robin assignment the partition
records), so their clocks are exactly derivable from the live clocks and
are reported as per-group ``(count, min, max, sum)`` aggregates
(:meth:`ScaledComm.group_clocks`).  Every collective advances the whole
machine in O(groups): the cost models in :mod:`repro.mpisim.costmodel`
are evaluated at the **full** ``p`` (an allreduce over 9,074 × 8 ranks
costs ``allreduce_time(p=72592, …)``) while compute executes on the
exemplars only.

Index conventions:

* data-plane arguments (``values`` sequences, ``advance(rank, …)``,
  ``sendrecv`` endpoints, collective roots) use **live indices**
  ``0 … R−1``, exactly as a plain SimComm of size R would — drivers
  written against ``comm.representatives`` / ``comm.rank_weights`` run
  unchanged on either communicator;
* topology-facing callables (``ineighbor_exchange``'s ``partners_of``)
  speak **global** machine ranks, which coincide with indices on a plain
  SimComm.

With the degenerate all-live partition (``R = P``) every operation
delegates to the parent class, so ScaledComm reproduces SimComm bit for
bit — the identity the differential tests pin down.  With ``R < P`` the
documented approximations are: accounting for collectives and neighbor
exchanges is extrapolated through rank weights; index-addressed p2p is
counted once (not weighted); ``alltoallv`` uses the conservative
pairwise bound gated by the largest exemplar pair; and subgroup
collectives (``participants=``) still require all-live mode.

Fault semantics run at full machine scale.  ``fail_rank`` /
``restore_rank`` / ``failed_ranks`` speak **global machine ranks** in
modeled mode: killing a representative marks it dead exactly as SimComm
would, killing a modelled rank fires a *group-level* failure — the
group's effective weight drops by one (``rank_weights``), its proxy
bookkeeping is decremented, and the next collective raises
:class:`~repro.mpisim.comm.RankFailedError` carrying global ranks (ULFM
detection).  ``agree`` prices the consensus allreduce at the *machine*
survivor count; ``shrink`` and ``split`` rebuild the survivor/color
partition (renumbered densely, order preserved, matching SimComm), carry
exemplar clocks over, promote the first surviving member of a group
whose representatives all died, and record the global survivor ranks in
``parent_machine_ranks``.  The one documented approximation: mirrors of
a *dead* representative still count as alive machine ranks, but their
data is unreachable for ``agree``'s folded value (their proxy died with
their data path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.hardware.interconnect import InterconnectSpec
from repro.mpisim import costmodel as cm
from repro.mpisim.comm import (
    COMM_BYTES_EDGES,
    COMM_TIME_EDGES,
    CommError,
    PendingOp,
    RankFailedError,
    SimComm,
)
from repro.mpisim.partition import RankGroup, RankPartition, all_live_partition
from repro.mpisim.topology import Topology


@dataclass(frozen=True)
class GroupClock:
    """Clock aggregate over one group's modelled (non-representative) ranks."""

    name: str
    count: int
    min: float
    max: float
    sum: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class ScaledComm(SimComm):
    """Simulated communicator over ``nranks`` machine ranks, executing
    only the partition's representatives concretely."""

    def __init__(
        self,
        nranks: int,
        fabric: InterconnectSpec,
        *,
        ranks_per_node: int = 1,
        device_buffers: bool = False,
        tracer: Any = None,
        partition: RankPartition | None = None,
    ) -> None:
        if partition is None:
            partition = all_live_partition(nranks)
        if partition.nranks != nranks:
            raise CommError(
                f"partition covers {partition.nranks} ranks, machine has {nranks}")
        self.partition = partition
        super().__init__(partition.nlive, fabric, ranks_per_node=ranks_per_node,
                         device_buffers=device_buffers, tracer=tracer)
        # the data plane is R ranks; the cost plane sees the full machine
        self.topology = Topology(nranks=nranks, ranks_per_node=ranks_per_node,
                                 fabric=fabric)
        self._live = np.asarray(partition.live_ranks, dtype=np.int64)
        self._modeled = partition.modeled_count > 0
        #: modelled global rank -> proxy representative's global rank,
        #: built lazily: only the neighbor-exchange path dereferences
        #: individual modelled ranks, so collective-only campaigns never
        #: pay the O(P) map construction.
        self._proxy_of: dict[int, int] | None = None
        self._group_rep_idx: list[np.ndarray] = []
        self._group_rep_proxy: list[np.ndarray] = []
        for g in partition.groups:
            counts = g.proxy_counts()
            self._group_rep_idx.append(np.asarray(
                [partition.live_index[r] for r in g.representatives],
                dtype=np.int64))
            self._group_rep_proxy.append(np.asarray(
                [counts[r] for r in g.representatives], dtype=np.int64))
        # per-collective hot path: the internode link and the integer
        # weights are invariants of the communicator, not of the call
        # (degradation windows route through _collective_link, so the
        # cache never serves stale bandwidth during a fault window)
        self._internode_link = self.topology.internode_link(
            device_buffers=device_buffers)
        self._weights_int = [int(w) for w in partition.weights]
        #: dead *modelled* ranks, by global machine rank
        self._machine_failed: set[int] = set()
        #: per-exemplar count of its mirrors that are currently dead
        self._dead_mirrors = np.zeros(self.nranks, dtype=np.int64)

    # -- representative-rank surface --------------------------------------------

    @property
    def machine_ranks(self) -> int:
        return self.partition.nranks

    @property
    def representatives(self) -> tuple[int, ...]:
        return self.partition.live_ranks

    @property
    def rank_weights(self) -> np.ndarray:
        """Ranks each exemplar currently stands for: the partition's
        structural weights minus its dead mirrors (group-level failures
        decrement the group's effective weight)."""
        if not self._machine_failed:
            return self.partition.weights
        return self.partition.weights - self._dead_mirrors

    def group_clocks(self) -> tuple[GroupClock, ...]:
        """Per-group aggregates over the modelled ranks' clocks.

        Modelled ranks mirror their proxy representatives, so the
        aggregates derive from the live clocks in O(R).
        """
        out = []
        for g, idx, proxies in zip(self.partition.groups,
                                   self._group_rep_idx, self._group_rep_proxy):
            mask = proxies > 0
            if not mask.any():
                out.append(GroupClock(g.name, 0, 0.0, 0.0, 0.0))
                continue
            mirrored = self.clocks[idx[mask]]
            out.append(GroupClock(
                g.name, int(proxies.sum()),
                float(mirrored.min()), float(mirrored.max()),
                float(self.clocks[idx] @ proxies)))
        return tuple(out)

    def describe(self) -> str:
        return (f"ScaledComm(P={self.machine_ranks}, R={self.nranks}, "
                f"groups={len(self.partition.groups)})")

    # -- full-machine cost plane --------------------------------------------------

    def _collective_link(self) -> cm.LinkParameters:
        """The cached internode link — unless a ``degrade_link`` window
        is active, in which case the degraded parameters are rebuilt so
        the cache never serves stale bandwidth mid-fault."""
        if not self._degradation_windows:
            return self._internode_link
        return self._apply_degradation(self._internode_link)

    def _link(self, a: int, b: int) -> cm.LinkParameters:
        return self.topology.link(int(self._live[a]), int(self._live[b]),
                                  device_buffers=self.device_buffers)

    def _sync_collective(self, nbytes: float, time_fn: Callable[..., float],
                         *, participants: Sequence[int] | None = None,
                         name: str = "collective") -> None:
        if not self._modeled:
            super()._sync_collective(nbytes, time_fn, participants=participants,
                                     name=name)
            return
        if participants is not None:
            raise CommError("subgroup collectives need all-live mode (R = P)")
        self._check_alive()
        p = self.machine_ranks
        link = self._collective_link()
        t = time_fn(p, nbytes, link) if time_fn is not cm.barrier_time else time_fn(p, link)
        start = float(self.clocks.max())
        self.clocks[:] = start + t
        self.stats.collectives += 1
        self.stats.collective_bytes += nbytes * p
        self.stats.total_comm_time += t * p
        self._trace_collective(name, start, t, nbytes, p)

    def load_imbalance(self) -> float:
        if not self._modeled:
            return super().load_imbalance()
        mean = float(self.clocks @ self.partition.weights) / self.machine_ranks
        return float(self.clocks.max()) / mean if mean > 0 else 1.0

    # -- data semantics: weighted folds -------------------------------------------

    def _fold(self, values: Sequence[Any], op: Callable) -> Any:
        """Reduce exemplar contributions to the full-machine value.

        ``np.add`` (the default) weights each exemplar by the ranks it
        stands for, since its mirrors contribute identical terms;
        idempotent ops (max / min / logical) fold the exemplars directly.
        """
        if op is np.add:
            acc = None
            for v, w in zip(values, self._weights_int):
                term = v * w if w != 1 else v
                acc = term if acc is None else np.add(acc, term)
            return acc
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def reduce(self, values: Sequence[Any], nbytes: float, op: Callable = np.add,
               root: int = 0) -> Any:
        if not self._modeled:
            return super().reduce(values, nbytes, op=op, root=root)
        self._check_inputs(values)
        self._check_root(root)
        self._sync_collective(nbytes, cm.reduce_time, name="reduce")
        return self._fold(values, op)

    def allreduce(self, values: Sequence[Any], nbytes: float,
                  op: Callable = np.add) -> list[Any]:
        if not self._modeled:
            return super().allreduce(values, nbytes, op=op)
        self._check_inputs(values)
        self._sync_collective(nbytes, cm.allreduce_time, name="allreduce")
        acc = self._fold(values, op)
        return [np.copy(acc) if isinstance(acc, np.ndarray) else acc
                for _ in range(self.nranks)]

    def reduce_scatter(self, blocks: Sequence[Sequence[Any]], nbytes: float,
                       op: Callable = np.add) -> list[Any]:
        if not self._modeled:
            return super().reduce_scatter(blocks, nbytes, op=op)
        if len(blocks) != self.nranks or any(len(row) != self.nranks for row in blocks):
            raise CommError(
                f"reduce_scatter needs an {self.nranks}x{self.nranks} block matrix")
        self._sync_collective(nbytes, cm.reduce_scatter_time, name="reduce_scatter")
        return [self._fold([blocks[src][dst] for src in range(self.nranks)], op)
                for dst in range(self.nranks)]

    # -- alltoall family -----------------------------------------------------------

    def alltoall(self, matrix: Sequence[Sequence[Any]],
                 nbytes_per_pair: float) -> list[list[Any]]:
        if not self._modeled:
            return super().alltoall(matrix, nbytes_per_pair)
        if len(matrix) != self.nranks or any(len(row) != self.nranks for row in matrix):
            raise CommError(
                f"alltoall needs an {self.nranks}x{self.nranks} payload matrix")
        self._sync_collective(nbytes_per_pair * self.machine_ranks,
                              lambda p, n, link:
                              cm.alltoall_time(p, nbytes_per_pair, link),
                              name="alltoall")
        return [[matrix[src][dst] for src in range(self.nranks)]
                for dst in range(self.nranks)]

    def ialltoall(self, matrix: Sequence[Sequence[Any]],
                  nbytes_per_pair: float) -> tuple[list[list[Any]], PendingOp]:
        if not self._modeled:
            return super().ialltoall(matrix, nbytes_per_pair)
        if len(matrix) != self.nranks or any(len(row) != self.nranks for row in matrix):
            raise CommError(
                f"alltoall needs an {self.nranks}x{self.nranks} payload matrix")
        self._check_alive()
        p = self.machine_ranks
        link = self._collective_link()
        t = cm.alltoall_time(p, nbytes_per_pair, link)
        start = float(self.clocks.max())
        done = {i: start + t for i in range(self.nranks)}
        self.stats.collectives += 1
        self.stats.collective_bytes += nbytes_per_pair * p * p
        self.stats.total_comm_time += t * p
        self._trace_collective("ialltoall", start, t, nbytes_per_pair * p, p)
        out = [[matrix[src][dst] for src in range(self.nranks)]
               for dst in range(self.nranks)]
        return out, PendingOp(complete_at=done, comm=self)

    def alltoallv(self, matrix: Sequence[Sequence[Any]],
                  nbytes: Sequence[Sequence[float]]) -> list[list[Any]]:
        if not self._modeled:
            return super().alltoallv(matrix, nbytes)
        if len(matrix) != self.nranks or any(len(r) != self.nranks for r in matrix):
            raise CommError(
                f"alltoallv needs an {self.nranks}x{self.nranks} payload matrix")
        if len(nbytes) != self.nranks or any(len(r) != self.nranks for r in nbytes):
            raise CommError("nbytes must match the payload matrix shape")
        self._check_alive()
        p = self.machine_ranks
        link = self._collective_link()
        # conservative pairwise bound: the full P x P matrix is never
        # materialized, so every round is gated by the largest exemplar pair
        worst = max(max(float(b) for b in row) for row in nbytes)
        t = (p - 1) * link.p2p_time(worst)
        start = float(self.clocks.max())
        self.clocks[:] = start + t
        mean_pair = float(sum(sum(float(b) for b in row) for row in nbytes))
        mean_pair /= self.nranks * self.nranks
        total_bytes = mean_pair * p * p
        self.stats.collectives += 1
        self.stats.collective_bytes += total_bytes
        self.stats.total_comm_time += t * p
        self._trace_collective("alltoallv", start, t, total_bytes / p, p)
        return [[matrix[src][dst] for src in range(self.nranks)]
                for dst in range(self.nranks)]

    # -- neighbor exchange (global-rank callable) ----------------------------------

    def _proxy_map(self) -> dict[int, int]:
        if self._proxy_of is None:
            proxy_of: dict[int, int] = {}
            for g in self.partition.groups:
                proxy_of.update(g.proxy_assignment())
            self._proxy_of = proxy_of
        return self._proxy_of

    def _clock_estimate(self, global_rank: int, clocks: np.ndarray) -> float:
        """Current clock of any machine rank: live ranks read directly,
        modelled ranks mirror their proxy representative."""
        idx = self.partition.live_index.get(global_rank)
        if idx is None:
            idx = self.partition.live_index[self._proxy_map()[global_rank]]
        return float(clocks[idx])

    def proxy_live_indices(self) -> np.ndarray:
        """Live index every machine rank reads its clock from —
        representatives map to themselves, modelled ranks to their
        round-robin proxy.  ``(machine_ranks,)`` int64, built vectorized
        per group (the elastic layer folds machine-pair traffic onto
        exemplar pairs through this map)."""
        out = np.empty(self.machine_ranks, dtype=np.int64)
        live_index = self.partition.live_index
        for g in self.partition.groups:
            reps = g.representatives
            rep_idx = np.asarray([live_index[r] for r in reps],
                                 dtype=np.int64)
            for r, idx in zip(reps, rep_idx):
                out[r] = idx
            members = np.asarray(g.members, dtype=np.int64)
            modeled = members[~np.isin(members,
                                       np.asarray(reps, dtype=np.int64))]
            if modeled.size:
                # same order as RankGroup.proxy_assignment (round-robin
                # over modelled members in member order)
                out[modeled] = rep_idx[np.arange(modeled.size) % len(reps)]
        return out

    def ineighbor_exchange(self, partners_of: Callable[[int], Sequence[int]],
                           nbytes: float, *,
                           name: str = "neighbor_exchange") -> PendingOp:
        if not self._modeled:
            return super().ineighbor_exchange(partners_of, nbytes, name=name)
        self._check_alive()
        start_clocks = self.clocks.copy()
        weights = self.partition.weights
        complete: dict[int, float] = {}
        nmessages = 0
        time_sum = 0.0
        for i in range(self.nranks):
            r = int(self._live[i])
            partners = [int(q) for q in partners_of(r) if int(q) != r]
            if not partners:
                continue
            t_r = sum(
                self.topology.link(r, q, device_buffers=self.device_buffers)
                .p2p_time(nbytes) for q in partners)
            ready = max(float(start_clocks[i]),
                        max(self._clock_estimate(q, start_clocks)
                            for q in partners))
            complete[i] = ready + t_r
            nmessages += int(weights[i]) * len(partners)
            time_sum += int(weights[i]) * t_r
        self.stats.p2p_messages += nmessages
        self.stats.p2p_bytes += nmessages * nbytes
        self.stats.total_comm_time += time_sum
        if complete:
            start = min(float(start_clocks[i]) for i in complete)
            span = max(complete.values()) - start
            self._trace_collective(name, start, span, nbytes * nmessages,
                                   self.machine_ranks)
        return PendingOp(complete_at=complete, comm=self)

    # -- O(groups) tracing ---------------------------------------------------------

    def _trace_p2p(self, name: str, src: int, dst: int, start: float,
                   t: float, nbytes: float) -> None:
        if not self._modeled:
            super()._trace_p2p(name, src, dst, start, t, nbytes)
            return
        tr = self.tracer
        if tr is None:
            return
        group_of = self.partition.group_of
        gsrc = self.partition.groups[int(group_of[self._live[src]])].name
        gdst = self.partition.groups[int(group_of[self._live[dst]])].name
        tr.record(name, start, t, cat="mpisim", pid="mpisim",
                  tid=f"group:{gdst}", src=int(self._live[src]),
                  dst=int(self._live[dst]), nbytes=float(nbytes))
        m = tr.metrics
        m.counter(f"mpisim.group_edge[{gsrc}->{gdst}].messages").inc()
        m.counter(f"mpisim.group_edge[{gsrc}->{gdst}].bytes").inc(float(nbytes))
        m.histogram("mpisim.p2p_time", COMM_TIME_EDGES).observe(t)
        m.histogram("mpisim.p2p_bytes", COMM_BYTES_EDGES).observe(float(nbytes))

    # -- fault semantics over the modelled machine ----------------------------------

    def fail_rank(self, rank: int) -> None:
        """Kill a **global machine rank**.

        A representative dies exactly as on SimComm; a modelled rank
        fires a group-level failure — the group's effective weight drops
        by one and its proxy's dead-mirror count rises.  Detection is
        ULFM-style either way: the next machine-wide collective raises
        :class:`RankFailedError` with global ranks.
        """
        if not self._modeled:
            super().fail_rank(rank)
            return
        rank = int(rank)
        if not 0 <= rank < self.machine_ranks:
            raise CommError(f"rank {rank} out of range")
        idx = self.partition.live_index.get(rank)
        if idx is not None:
            self.failed[idx] = True
            return
        if rank in self._machine_failed:
            return
        self._machine_failed.add(rank)
        pidx = self.partition.live_index[self._proxy_map()[rank]]
        self._dead_mirrors[pidx] += 1

    def restore_rank(self, rank: int) -> None:
        """Replace a failed machine rank (global numbering); a revived
        representative rejoins at the current global time, a revived
        modelled rank simply mirrors its proxy again."""
        if not self._modeled:
            super().restore_rank(rank)
            return
        rank = int(rank)
        if not 0 <= rank < self.machine_ranks:
            raise CommError(f"rank {rank} out of range")
        idx = self.partition.live_index.get(rank)
        if idx is not None:
            self.failed[idx] = False
            self.clocks[idx] = float(self.clocks.max())
            return
        if rank not in self._machine_failed:
            return
        self._machine_failed.discard(rank)
        pidx = self.partition.live_index[self._proxy_map()[rank]]
        self._dead_mirrors[pidx] -= 1

    def failed_ranks(self) -> list[int]:
        if not self._modeled:
            return super().failed_ranks()
        dead = [int(self._live[i]) for i in np.flatnonzero(self.failed)]
        return sorted(dead + list(self._machine_failed))

    @property
    def machine_alive_count(self) -> int:
        if not self._modeled:
            return super().machine_alive_count
        return (self.machine_ranks - len(self._machine_failed)
                - int(self.failed.sum()))

    def _check_alive(self, participants: Sequence[int] | None = None) -> None:
        if not self._modeled or participants is not None:
            # p2p between named exemplars only needs those endpoints
            # alive, exactly as on SimComm
            super()._check_alive(participants)
            return
        if self._machine_failed or self.failed.any():
            raise RankFailedError(self.failed_ranks())

    def agree(self, values: Sequence[Any] | None = None, nbytes: float = 8.0,
              op: Callable = np.logical_and) -> tuple[Any, tuple[int, ...]]:
        """ULFM consensus priced at the *machine* survivor count.

        The allreduce cost uses ``machine_alive_count`` participants
        (the Hockney model at full machine ``p`` minus the dead), while
        the fold runs over the surviving exemplars — weighted by their
        effective weights for ``np.add``, direct for idempotent ops.
        Returns the failed ranks in global machine numbering.
        """
        if not self._modeled:
            return super().agree(values, nbytes, op)
        alive_idx = [int(i) for i in np.flatnonzero(~self.failed)]
        if not alive_idx:
            raise CommError("agree on a communicator with no alive ranks")
        alive_machine = self.machine_alive_count
        if values is None:
            values = [True] * self.nranks
        if len(values) != self.nranks:
            raise CommError(f"expected {self.nranks} per-rank values, "
                            f"got {len(values)}")
        link = self._collective_link()
        t = cm.allreduce_time(alive_machine, nbytes, link)
        start = float(np.max(self.clocks[alive_idx]))
        self.clocks[alive_idx] = start + t
        self.stats.collectives += 1
        self.stats.collective_bytes += nbytes * alive_machine
        self.stats.total_comm_time += t * alive_machine
        self._trace_collective("agree", start, t, nbytes, alive_machine)
        if op is np.add:
            acc = None
            for i in alive_idx:
                w = self._weights_int[i] - int(self._dead_mirrors[i])
                term = values[i] * w if w != 1 else values[i]
                acc = term if acc is None else np.add(acc, term)
        else:
            acc = values[alive_idx[0]]
            for i in alive_idx[1:]:
                acc = op(acc, values[i])
        return acc, tuple(self.failed_ranks())

    def shrink(self) -> SimComm:
        """ULFM shrink over the modelled machine: pay one ``agree``,
        then rebuild the partition over the global survivors (dense
        renumbering preserving order — the same contract as SimComm and
        :func:`~repro.mpisim.decomposition.block_owners`).  Groups whose
        representatives all died promote their first surviving member;
        ``parent_machine_ranks`` maps new machine ranks back to this
        communicator's global numbering."""
        if not self._modeled:
            return super().shrink()
        self.agree()  # the consensus that makes the survivor set common
        mask = np.ones(self.machine_ranks, dtype=bool)
        mask[self.failed_ranks()] = False
        return self._induced_subcomm(np.flatnonzero(mask))

    def split(self, color_of: Callable[[int], int], *,
              shared_stats: bool = False) -> dict[int, SimComm]:
        """MPI_Comm_split over **global machine ranks** (``color_of`` is
        called for every rank ``0..P-1``, consistent with SimComm where
        indices and machine ranks coincide).  Each color keeps the
        induced partition: old groups intersected with the color's
        members, representatives promoted where a color captured only
        modelled ranks."""
        if not self._modeled:
            return super().split(color_of, shared_stats=shared_stats)
        groups: dict[int, list[int]] = {}
        for r in range(self.machine_ranks):
            groups.setdefault(color_of(r), []).append(r)
        return {color: self._induced_subcomm(
                    np.asarray(members, dtype=np.int64),
                    shared_stats=shared_stats)
                for color, members in groups.items()}

    def _induced_subcomm(self, members: np.ndarray, *,
                         shared_stats: bool = False) -> "ScaledComm":
        """A ScaledComm over a subset of machine ranks, renumbered
        densely in rank order, with the partition induced by
        intersecting each group with *members*.  Representative clocks
        carry over; a group left without representatives promotes its
        first surviving member at its proxy's clock."""
        members = np.asarray(members, dtype=np.int64)
        if members.size == 0:
            raise CommError("sub-communicator needs at least one rank")
        remap = np.full(self.machine_ranks, -1, dtype=np.int64)
        remap[members] = np.arange(members.size, dtype=np.int64)
        live_index = self.partition.live_index
        new_groups: list[RankGroup] = []
        rep_clocks: dict[int, float] = {}
        for g in self.partition.groups:
            mem = np.asarray(g.members, dtype=np.int64)
            keep = mem[remap[mem] >= 0]
            if keep.size == 0:
                continue
            new_members = tuple(int(r) for r in remap[keep])
            surviving_reps = [r for r in g.representatives if remap[r] >= 0]
            if surviving_reps:
                new_reps = []
                for old in surviving_reps:
                    new = int(remap[old])
                    new_reps.append(new)
                    rep_clocks[new] = float(self.clocks[live_index[old]])
            else:
                promoted = int(keep[0])
                new_reps = [int(remap[promoted])]
                rep_clocks[new_reps[0]] = self._clock_estimate(
                    promoted, self.clocks)
            new_groups.append(RankGroup(g.name, new_members,
                                        tuple(new_reps)))
        partition = RankPartition(nranks=int(members.size),
                                  groups=tuple(new_groups))
        sub = ScaledComm(int(members.size), self.topology.fabric,
                         ranks_per_node=self.topology.ranks_per_node,
                         device_buffers=self.device_buffers,
                         tracer=self.tracer, partition=partition)
        sub.clocks = np.asarray([rep_clocks[r] for r in partition.live_ranks],
                                dtype=float)
        sub.parent_machine_ranks = tuple(int(r) for r in members)
        if shared_stats:
            sub.stats = self.stats
        return sub
