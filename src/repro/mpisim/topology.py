"""Rank placement: ranks → nodes, path classification, NIC sharing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.interconnect import InterconnectSpec
from repro.mpisim.costmodel import INTRA_NODE, LinkParameters, link_parameters, ranks_per_nic


@dataclass(frozen=True)
class Topology:
    """Block placement of ``nranks`` over nodes with ``ranks_per_node`` each."""

    nranks: int
    ranks_per_node: int
    fabric: InterconnectSpec

    def __post_init__(self) -> None:
        if self.nranks < 1 or self.ranks_per_node < 1:
            raise ValueError("nranks and ranks_per_node must be positive")

    @property
    def nnodes(self) -> int:
        return -(-self.nranks // self.ranks_per_node)

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        return rank // self.ranks_per_node

    def local_rank(self, rank: int) -> int:
        """Position of *rank* among its node's ranks (0 = node leader)."""
        self.node_of(rank)  # range check
        return rank % self.ranks_per_node

    def is_node_leader(self, rank: int) -> bool:
        """Node leaders anchor hierarchical collectives and rank groups."""
        return self.local_rank(rank) == 0

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def link(self, a: int, b: int, *, device_buffers: bool = False) -> LinkParameters:
        """α-β parameters for a message between ranks *a* and *b*."""
        if self.same_node(a, b):
            return INTRA_NODE
        share = ranks_per_nic(self.ranks_per_node, self.fabric)
        return link_parameters(
            self.fabric, ranks_sharing_nic=share, device_buffers=device_buffers
        )

    def internode_link(self, *, device_buffers: bool = False,
                       concurrent_ranks: int | None = None) -> LinkParameters:
        """The inter-node α-β assuming *concurrent_ranks* ranks inject at once
        (defaults to all ranks on the node, the collective-heavy case)."""
        active = self.ranks_per_node if concurrent_ranks is None else concurrent_ranks
        share = ranks_per_nic(active, self.fabric)
        return link_parameters(
            self.fabric, ranks_sharing_nic=share, device_buffers=device_buffers
        )
