"""Unified observability: spans, metrics, Perfetto export, regression gate.

The cross-cutting tracing/metrics substrate the paper's porting teams
had and the reproduction lacked: nested spans on simulated clocks
(:mod:`.tracer`), counters/gauges/histograms (:mod:`.metrics`), one
merged Chrome-trace/Perfetto JSON unifying subsystem spans with GPU
launch records (:mod:`.export`), and a CI gate comparing measured span
totals against the recorded speedup bands (:mod:`.gate`).

Instrumented substrates (``SimComm``, ``ResilientRunner``,
``BatchedBdfIntegrator``, the GEMM-tally engine, the experiment
drivers) all accept an optional ``tracer``; passing ``None`` (the
default) keeps every call site a single pointer test — tracing off is
free, and tracing on is observation-only (bit-effect-free).
"""

from repro.observability.export import (
    SpanSummary,
    TraceFormatError,
    export_chrome_trace,
    hot_spans_report,
    merged_trace_events,
    metrics_report,
    subsystems_in_trace,
    summarize_spans,
    validate_chrome_trace,
)
from repro.observability.gate import (
    BenchRegressionError,
    BenchRegressionGate,
    GateCheck,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)
from repro.observability.tracer import (
    NULL_TRACER,
    Instant,
    NullTracer,
    Span,
    TraceError,
    Tracer,
)

__all__ = [
    "BenchRegressionError",
    "BenchRegressionGate",
    "Counter",
    "Gauge",
    "GateCheck",
    "Histogram",
    "Instant",
    "MetricsError",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanSummary",
    "TraceError",
    "TraceFormatError",
    "Tracer",
    "export_chrome_trace",
    "hot_spans_report",
    "merged_trace_events",
    "metrics_report",
    "subsystems_in_trace",
    "summarize_spans",
    "validate_chrome_trace",
]
