"""One merged Chrome-trace/Perfetto JSON for the whole reproduction.

The paper's teams tuned off *unified* timelines — kernel launches next
to MPI phases next to checkpoint stalls.  This exporter merges a
:class:`~repro.observability.tracer.Tracer`'s spans/instants/metrics
with the existing per-device launch records from
:mod:`repro.gpu.trace` into one ``chrome://tracing`` document:
processes are lanes (subsystems, ranks, devices), tids are
streams/sub-lanes, and every span is a complete event (``"ph": "X"``)
with microsecond ``ts``/``dur``.

Also here: the text-mode views a terminal reader wants — the "hot
spans" table (where did the time go, by span name) and the metrics
report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Sequence

from repro.core.report import render_table
from repro.gpu.device import Device
from repro.gpu.trace import to_chrome_trace
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer


class TraceFormatError(ValueError):
    """The document does not satisfy the Chrome-trace event contract."""


class _LaneTable:
    """Deterministic lane -> integer pid/tid assignment with metadata."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[int, str], int] = {}

    def pid(self, name: str) -> int:
        if name not in self._pids:
            self._pids[name] = pid = len(self._pids) + 1
            self.events.append({
                "name": "process_name", "ph": "M", "pid": pid,
                "args": {"name": name},
            })
        return self._pids[name]

    def tid(self, pid: int, name: str) -> int:
        key = (pid, name)
        if key not in self._tids:
            per_pid = sum(1 for p, _ in self._tids if p == pid)
            self._tids[key] = tid = per_pid + 1
            self.events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            })
        return self._tids[key]


def merged_trace_events(tracer: Tracer | None = None,
                        devices: Sequence[Device] = ()) -> list[dict]:
    """All trace events — tracer spans + device launch records — with
    lanes mapped onto integer pids/tids (metadata events included)."""
    lanes = _LaneTable()
    events: list[dict] = []
    if tracer is not None:
        for span in tracer.spans:
            if span.dur is None:
                continue  # still open: not a timeline interval yet
            pid = lanes.pid(span.pid)
            events.append({
                "name": span.name, "cat": span.cat or "repro", "ph": "X",
                "pid": pid, "tid": lanes.tid(pid, span.tid),
                "ts": span.ts * 1e6, "dur": span.dur * 1e6,
                "args": dict(span.args),
            })
        for inst in tracer.instants:
            pid = lanes.pid(inst.pid)
            events.append({
                "name": inst.name, "cat": inst.cat or "repro", "ph": "i",
                "pid": pid, "tid": lanes.tid(pid, inst.tid),
                "ts": inst.ts * 1e6, "s": "t", "args": dict(inst.args),
            })
        end_ts = max((s.end_ts for s in tracer.closed_spans()), default=0.0)
        for name, counter in sorted(tracer.metrics.counters.items()):
            pid = lanes.pid("metrics")
            events.append({
                "name": name, "ph": "C", "pid": pid,
                "tid": lanes.tid(pid, "counters"),
                "ts": end_ts * 1e6, "args": {"value": counter.value},
            })
    for device in devices:
        dev_doc = json.loads(to_chrome_trace(device))
        pid = lanes.pid(f"gpu{device.device_id} ({device.spec.name})")
        for event in dev_doc["traceEvents"]:
            if event.get("ph") == "M":
                continue  # superseded by the lane table's metadata
            event["pid"] = pid
            event["tid"] = lanes.tid(pid, f"stream{event.get('tid', 0)}")
            event["cat"] = "gpu"
            events.append(event)
    return lanes.events + events


def export_chrome_trace(tracer: Tracer | None = None,
                        devices: Sequence[Device] = (), *,
                        indent: int | None = None) -> str:
    """The merged timeline as a Chrome-trace JSON document."""
    return json.dumps(
        {"traceEvents": merged_trace_events(tracer, devices),
         "displayTimeUnit": "ms"},
        indent=indent,
    )


def validate_chrome_trace(payload: str | dict) -> dict:
    """Assert the document honours the Chrome-trace contract.

    Checks what a viewer actually depends on: a ``traceEvents`` list,
    a string ``ph`` per event, numeric ``ts`` and non-negative ``dur``
    on every complete event, names throughout.  Returns the parsed
    document; raises :class:`TraceFormatError` on the first violation.
    """
    data = json.loads(payload) if isinstance(payload, str) else payload
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise TraceFormatError("document has no traceEvents list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceFormatError(f"event {i} is not an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise TraceFormatError(f"event {i} has no phase ('ph')")
        if not isinstance(event.get("name"), str):
            raise TraceFormatError(f"event {i} ({ph}) has no name")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            raise TraceFormatError(f"event {i} ({event['name']}) has no ts")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                raise TraceFormatError(
                    f"complete event {i} ({event['name']}) has no dur")
            if dur < 0:
                raise TraceFormatError(
                    f"complete event {i} ({event['name']}) has negative "
                    f"dur {dur}")
    return data


# ---------------------------------------------------------------------------
# Text views: hot spans and metrics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SpanSummary:
    """Aggregate of every span sharing one name."""

    name: str
    cat: str
    count: int
    total: float
    max: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def summarize_spans(tracer: Tracer) -> list[SpanSummary]:
    """Per-name span aggregates, hottest (largest total) first."""
    totals: dict[str, list] = {}
    for span in tracer.closed_spans():
        agg = totals.setdefault(span.name, [span.cat, 0, 0.0, 0.0])
        agg[1] += 1
        agg[2] += span.dur
        agg[3] = max(agg[3], span.dur)
    out = [SpanSummary(name=k, cat=v[0], count=v[1], total=v[2], max=v[3])
           for k, v in totals.items()]
    return sorted(out, key=lambda s: (-s.total, s.name))


def hot_spans_report(tracer: Tracer, *, top: int = 15,
                     unit: str = "s") -> str:
    """The table a latency hunter reads first: time by span name."""
    rows = [
        (s.name, s.cat, str(s.count), f"{s.total:.3e} {unit}",
         f"{s.mean:.3e} {unit}", f"{s.max:.3e} {unit}")
        for s in summarize_spans(tracer)[:top]
    ]
    return render_table(
        ("Span", "Subsystem", "Count", "Total", "Mean", "Max"),
        rows,
        title="Hot spans",
    )


def metrics_report(metrics: MetricsRegistry) -> str:
    """Counters, gauges and histogram summaries as one text table."""
    rows: list[tuple[str, str, str]] = []
    for name, c in sorted(metrics.counters.items()):
        rows.append((name, "counter", f"{c.value:g}"))
    for name, g in sorted(metrics.gauges.items()):
        rows.append((name, "gauge", f"{g.value:g}"))
    for name, h in sorted(metrics.histograms.items()):
        rows.append((name, "histogram",
                     f"n={h.count} mean={h.mean:.3e} total={h.total:.3e}"))
    return render_table(("Metric", "Kind", "Value"), rows, title="Metrics")


def subsystems_in_trace(payload: str | dict) -> set[str]:
    """The set of subsystem categories with at least one complete event —
    the acceptance check that a merged trace actually covers the stack."""
    data = json.loads(payload) if isinstance(payload, str) else payload
    return {
        e.get("cat", "")
        for e in data.get("traceEvents", ())
        if e.get("ph") == "X"
    }
