"""CI regression gate: recorded span totals vs ``BENCH_repro_speed.json``.

The ROADMAP keeps ``--durations`` in the tier-1 invocation so runtime
regressions *in the reproduction itself* surface early; this gate makes
that check explicit and mechanical.  A benchmark wraps its measured
stages in wall-clock spans (``Tracer(clock=time.perf_counter)``, the
clock injected by the benchmark — this package never imports ``time``),
and the gate compares each span's total against the corresponding entry
recorded in ``BENCH_repro_speed.json``:

    measured <= reference * slow_factor + slack

A missing span is itself a failure — "the instrumentation disappeared"
is exactly the kind of silent regression a gate exists to catch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.observability.export import summarize_spans
from repro.observability.tracer import Tracer


class BenchRegressionError(AssertionError):
    """At least one gated measurement fell outside its band."""


@dataclass(frozen=True)
class GateCheck:
    """One span-total-vs-recorded-band comparison."""

    name: str
    reference_key: tuple[str, ...]
    reference: float
    limit: float
    measured: float | None  # None: the span never appeared

    @property
    def ok(self) -> bool:
        return self.measured is not None and self.measured <= self.limit

    def describe(self) -> str:
        key = "/".join(self.reference_key)
        if self.measured is None:
            return (f"{self.name}: MISSING (no span recorded; "
                    f"reference {key} = {self.reference:.4g} s)")
        verdict = "ok" if self.ok else "REGRESSION"
        return (f"{self.name}: {self.measured:.4g} s vs limit "
                f"{self.limit:.4g} s (recorded {key} = "
                f"{self.reference:.4g} s) [{verdict}]")


class BenchRegressionGate:
    """Compare measured span totals against recorded benchmark bands."""

    def __init__(self, bench: Mapping | str | Path, *,
                 slow_factor: float = 6.0, slack: float = 0.15) -> None:
        if slow_factor <= 0:
            raise ValueError("slow_factor must be positive")
        if slack < 0:
            raise ValueError("slack must be non-negative")
        if isinstance(bench, (str, Path)):
            bench = json.loads(Path(bench).read_text())
        self.bench = dict(bench)
        self.slow_factor = slow_factor
        self.slack = slack

    def reference(self, key: Sequence[str]) -> float:
        """Walk a key path into the recorded benchmark document."""
        node = self.bench
        for part in key:
            if not isinstance(node, Mapping) or part not in node:
                raise KeyError(
                    f"benchmark record has no entry {'/'.join(key)!r}")
            node = node[part]
        if not isinstance(node, (int, float)) or isinstance(node, bool):
            raise KeyError(f"benchmark entry {'/'.join(key)!r} is not a number")
        return float(node)

    def check(self, name: str, measured: float | None,
              reference_key: Sequence[str]) -> GateCheck:
        ref = self.reference(reference_key)
        return GateCheck(
            name=name,
            reference_key=tuple(reference_key),
            reference=ref,
            limit=ref * self.slow_factor + self.slack,
            measured=measured,
        )

    def check_span_totals(self, tracer: Tracer,
                          mapping: Mapping[str, Sequence[str]]
                          ) -> list[GateCheck]:
        """Gate every ``span name -> bench key path`` pair in *mapping*."""
        totals = {s.name: s.total for s in summarize_spans(tracer)}
        return [self.check(name, totals.get(name), key)
                for name, key in mapping.items()]

    @staticmethod
    def assert_ok(checks: Sequence[GateCheck]) -> None:
        bad = [c for c in checks if not c.ok]
        if bad:
            raise BenchRegressionError(
                "benchmark regression gate failed:\n  "
                + "\n  ".join(c.describe() for c in bad)
            )
