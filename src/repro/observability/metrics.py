"""Metrics primitives: counters, gauges, fixed-bucket histograms.

The porting teams in the paper read two kinds of evidence off their
tools: timelines (spans, :mod:`repro.observability.tracer`) and
*aggregates* — message volumes per link, Jacobian-reuse rates, checkpoint
bytes.  This module is the aggregate side: a tiny Prometheus-shaped
metric set with hard invariants the property suite can enforce:

* a :class:`Counter` is monotone — ``inc`` rejects negative amounts, so
  a counter's value never decreases;
* a :class:`Histogram` has *fixed* bucket edges chosen at creation and
  its bucket counts always sum to the observation count;
* everything is plain arithmetic on caller-supplied values — no clocks,
  no ambient state, bit-effect-free by construction.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field


class MetricsError(ValueError):
    """Misuse of a metric (negative counter increment, bad edges, ...)."""


@dataclass
class Counter:
    """A monotonically non-decreasing accumulator."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r}: negative increment {amount!r} "
                f"(counters are monotone; use a Gauge)"
            )
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value that may move either way."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: ``counts[i]`` tallies observations in
    ``[edges[i-1], edges[i])`` with underflow/overflow buckets at the
    ends, so ``sum(counts) == count`` always holds."""

    def __init__(self, name: str, edges: tuple[float, ...]) -> None:
        e = tuple(float(x) for x in edges)
        if not e:
            raise MetricsError(f"histogram {name!r}: needs at least one edge")
        if any(b <= a for a, b in zip(e, e[1:])):
            raise MetricsError(
                f"histogram {name!r}: edges must be strictly increasing, got {e}"
            )
        self.name = name
        self.edges = e
        self.counts = [0] * (len(e) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_right(self.edges, v)] += 1
        self.count += 1
        self.total += v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (the Prometheus
        ``histogram_quantile`` rule: linear within the owning bucket).

        Mass in the underflow bucket reports the first edge, overflow the
        last — a histogram only knows its edges.  Exact percentiles of a
        retained sample belong to the caller (:mod:`repro.service.slo`
        keeps the raw waits for exactly that reason); this estimate is
        what a scrape-time SLO dashboard would show.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"histogram {self.name!r}: quantile {q!r} "
                               f"outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c and cum + c >= rank:
                if i == 0:
                    return self.edges[0]
                if i == len(self.edges):
                    return self.edges[-1]
                lo, hi = self.edges[i - 1], self.edges[i]
                return lo + (hi - lo) * (rank - cum) / c
            cum += c
        return self.edges[-1]

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


@dataclass
class MetricsRegistry:
    """Get-or-create store for every metric a traced run produces."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, edges: tuple[float, ...] = ()) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, edges)
        return h

    def to_dict(self) -> dict:
        return {
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {k: v.value for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: v.to_dict() for k, v in sorted(self.histograms.items())
            },
        }
