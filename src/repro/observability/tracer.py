"""Span-based tracing over the reproduction's *simulated* clocks.

Every porting story in the paper leans on timelines; this tracer is the
substrate that lets the simulated MPI fabric, the resilience runner, the
batched solvers and the GPU perf model all write onto one of them.

Design rules, enforced by the property suite and the determinism audit:

* **Timestamps never come from the wall clock.**  A span's ``ts`` is
  either caller-supplied (simulated seconds read off a
  :class:`~repro.mpisim.comm.SimComm` clock, a runner's ``t_sim``, a
  device clock) or drawn from the tracer's deterministic tick counter —
  so two runs of the same seeded workload produce byte-identical traces.
  (Benchmarks may pass ``clock=time.perf_counter`` explicitly to build
  *wall-clock* traces for the regression gate; the import never lives in
  this package.)
* **Lanes.**  Each span lives on a ``(pid, tid)`` lane — process/thread
  rows in the Perfetto UI (ranks, devices, subsystems).  Nesting is
  per-lane and LIFO: ``begin``/``end`` maintain a stack, and a span's
  ``parent`` is whatever was open on its lane when it began.
* **Observation only.**  Tracing mutates nothing it observes; all
  previously bit-identical guarantees hold with tracing on, which the
  differential tests assert.
* **Zero cost when off.**  Instrumented call sites hold
  ``tracer = None`` and guard with one ``is not None`` test;
  :class:`NullTracer` exists for callers that prefer unconditional calls.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.observability.metrics import MetricsRegistry


class TraceError(ValueError):
    """Structural misuse: negative duration, non-LIFO end, double end."""


@dataclass
class Span:
    """One timed interval on a lane.  ``dur is None`` while still open."""

    name: str
    cat: str
    pid: str
    tid: str
    ts: float
    dur: float | None = None
    args: dict = field(default_factory=dict)
    parent: int | None = None
    index: int = -1

    @property
    def end_ts(self) -> float:
        return self.ts + (self.dur or 0.0)


@dataclass
class Instant:
    """A zero-duration marker (fault fired, SDC detected, ...)."""

    name: str
    cat: str
    pid: str
    tid: str
    ts: float
    args: dict = field(default_factory=dict)


class Tracer:
    """Collects spans, instants and metrics for one run.

    ``clock`` supplies timestamps when the caller does not: the default
    is a deterministic tick counter (+1 per event), which keeps ordinal
    timelines (solver rounds, pipeline phases) reproducible.  Pass an
    explicit callable (e.g. ``time.perf_counter`` from a benchmark) only
    for wall-clock traces feeding the regression gate.
    """

    is_enabled = True

    def __init__(self, *, clock: Callable[[], float] | None = None) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.metrics = MetricsRegistry()
        self._clock = clock
        self._tick = 0.0
        self._stacks: dict[tuple[str, str], list[int]] = {}

    # -- clock -----------------------------------------------------------------

    def now(self) -> float:
        """Next timestamp: the injected clock, or the deterministic tick."""
        if self._clock is not None:
            return float(self._clock())
        self._tick += 1.0
        return self._tick

    # -- spans -----------------------------------------------------------------

    def begin(self, name: str, *, ts: float | None = None, cat: str = "repro",
              pid: str = "repro", tid: str = "main", **args) -> int:
        """Open a span on lane ``(pid, tid)``; returns its handle index."""
        stack = self._stacks.setdefault((pid, tid), [])
        span = Span(
            name=name, cat=cat, pid=pid, tid=tid,
            ts=self.now() if ts is None else float(ts),
            args=dict(args),
            parent=stack[-1] if stack else None,
            index=len(self.spans),
        )
        self.spans.append(span)
        stack.append(span.index)
        return span.index

    def end(self, index: int, *, ts: float | None = None, **args) -> Span:
        """Close the span ``begin`` returned; ends must be LIFO per lane."""
        span = self.spans[index]
        if span.dur is not None:
            raise TraceError(f"span {span.name!r} already ended")
        stack = self._stacks.get((span.pid, span.tid), [])
        if not stack or stack[-1] != index:
            raise TraceError(
                f"non-LIFO end of span {span.name!r} on lane "
                f"({span.pid}, {span.tid})"
            )
        end_ts = self.now() if ts is None else float(ts)
        if end_ts < span.ts:
            raise TraceError(
                f"span {span.name!r} would end at {end_ts} before its "
                f"start {span.ts}"
            )
        stack.pop()
        span.dur = end_ts - span.ts
        span.args.update(args)
        return span

    @contextmanager
    def span(self, name: str, *, cat: str = "repro", pid: str = "repro",
             tid: str = "main", **args) -> Iterator[Span]:
        """``with tracer.span(...) as s:`` — begin/end on the lane stack.
        Mutate ``s.args`` inside the block to attach results."""
        index = self.begin(name, cat=cat, pid=pid, tid=tid, **args)
        try:
            yield self.spans[index]
        finally:
            self.end(index)

    def record(self, name: str, ts: float, dur: float, *, cat: str = "repro",
               pid: str = "repro", tid: str = "main", **args) -> Span:
        """Record an already-complete span (explicit sim-time interval).

        The natural call for substrates that know an operation's start
        and cost on their own clocks (collectives, checkpoints).  The
        span still nests under whatever ``begin`` left open on its lane.
        """
        if dur < 0:
            raise TraceError(f"span {name!r}: negative duration {dur!r}")
        stack = self._stacks.get((pid, tid), [])
        span = Span(
            name=name, cat=cat, pid=pid, tid=tid, ts=float(ts),
            dur=float(dur), args=dict(args),
            parent=stack[-1] if stack else None,
            index=len(self.spans),
        )
        self.spans.append(span)
        return span

    def instant(self, name: str, *, ts: float | None = None,
                cat: str = "repro", pid: str = "repro", tid: str = "main",
                **args) -> Instant:
        inst = Instant(name=name, cat=cat, pid=pid, tid=tid,
                       ts=self.now() if ts is None else float(ts),
                       args=dict(args))
        self.instants.append(inst)
        return inst

    # -- introspection ---------------------------------------------------------

    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended (should be empty after a run)."""
        return [s for s in self.spans if s.dur is None]

    def closed_spans(self) -> list[Span]:
        return [s for s in self.spans if s.dur is not None]


class _NullContext:
    """Reusable no-op ``with`` target yielding a shared throwaway span."""

    __slots__ = ("_span",)

    def __init__(self) -> None:
        self._span = Span(name="", cat="", pid="", tid="", ts=0.0, dur=0.0)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        return None


class NullTracer:
    """A tracer-shaped black hole: every method is a no-op.

    For call sites that prefer ``tracer.record(...)`` unconditionally
    over ``if tracer is not None`` guards.  Shares the :class:`Tracer`
    surface; records nothing, allocates (almost) nothing.
    """

    is_enabled = False

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.metrics = MetricsRegistry()
        self._null_context = _NullContext()

    def now(self) -> float:
        return 0.0

    def begin(self, name: str, **kw) -> int:
        return -1

    def end(self, index: int, **kw) -> None:
        return None

    def span(self, name: str, **kw) -> _NullContext:
        return self._null_context

    def record(self, name: str, ts: float, dur: float, **kw) -> None:
        return None

    def instant(self, name: str, **kw) -> None:
        return None

    def open_spans(self) -> list[Span]:
        return []

    def closed_spans(self) -> list[Span]:
        return []


#: Shared no-op instance for unconditional call styles.
NULL_TRACER = NullTracer()
