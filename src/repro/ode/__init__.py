"""CVODE-like ODE substrate: BDF (scalar + batched), GMRES, explicit RK."""

from repro.ode.batched import (
    BatchedBdfIntegrator,
    BatchedBdfResult,
    BatchedBdfState,
    BatchedBdfStats,
)
from repro.ode.bdf import (
    BdfIntegrator,
    BdfResult,
    BdfStats,
    IntegrationError,
    LinearSolver,
)
from repro.ode.erk import ErkResult, rk4, rk45
from repro.ode.gmres import GmresResult, gmres, gmres_flops

__all__ = [
    "BatchedBdfIntegrator",
    "BatchedBdfResult",
    "BatchedBdfState",
    "BatchedBdfStats",
    "BdfIntegrator",
    "BdfResult",
    "BdfStats",
    "ErkResult",
    "GmresResult",
    "IntegrationError",
    "LinearSolver",
    "gmres",
    "gmres_flops",
    "rk4",
    "rk45",
]
