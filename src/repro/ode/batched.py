"""Batched BDF integration: every cell of a field advances at once (§3.8).

The paper attributes a large share of Pele's 75× improvement to moving
per-cell stiff chemistry onto batched solvers — CVODE with MAGMA batched
dense LU, Jacobian reuse, and vectorized RHS sweeps.  This module is that
motif made real for the reproduction: instead of a Python loop running a
scalar :class:`~repro.ode.bdf.BdfIntegrator` per cell, a single
:class:`BatchedBdfIntegrator` advances stacked states ``(ncells, nspec)``
with

* one vectorized RHS sweep per Newton iteration covering every cell;
* one-shot finite-difference Jacobians — all columns of all cells are
  perturbed together via broadcasting, no per-column Python loop;
* batched Newton solves through :mod:`repro.linalg.batched` LU factors
  held and reused across Newton iterations and steps (refreshed only when
  convergence degrades, the Jacobian ages out, or gamma drifts);
* per-cell adaptive step/error control with masked convergence: cells
  that converge or finish freeze while stiff cells keep iterating.

The per-cell algorithm is the same variable-step BDF(1,2) with modified
Newton as the scalar integrator, so results agree within solver
tolerances (the ablation bench asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.ode.bdf import IntegrationError
from repro.resilience.abft import (
    SdcDetected,
    lu_checksum,
    require_finite,
    verify_lu,
    verify_solve,
)
from repro.resilience.snapshot import Snapshot, require_kind

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.observability.tracer import Tracer

#: Batched RHS: ``f(t, Y)`` with ``Y`` of shape (..., ncells, n); ``t`` a
#: scalar or (ncells,) array.  Leading axes must broadcast (they carry the
#: stacked Jacobian perturbations).
BatchRhsFn = Callable[[object, np.ndarray], np.ndarray]
#: Batched Jacobian: ``jac(t, Y)`` mapping (ncells, n) -> (ncells, n, n).
BatchJacFn = Callable[[object, np.ndarray], np.ndarray]


@dataclass
class BatchedBdfStats:
    """Aggregate work counters for one batched integration.

    ``rhs_sweeps`` counts *batched* evaluations — each one covers every
    cell, which is the whole point: compare against ``ncells ×`` the
    scalar integrator's ``rhs_evals``.
    """

    ncells: int = 0
    steps: int = 0                # accepted BDF steps, summed over cells
    step_rounds: int = 0          # lockstep step-attempt rounds
    rhs_sweeps: int = 0           # batched RHS evaluations
    jac_builds: int = 0           # batched Jacobian constructions
    cells_refactored: int = 0     # LU factorizations, summed over cells
    newton_iters: int = 0         # batched Newton sweeps
    error_test_failures: int = 0  # per-cell step rejections
    newton_failures: int = 0      # per-cell Newton failures


@dataclass
class BatchedBdfResult:
    t: np.ndarray  # (ncells,) final times (== t_end)
    y: np.ndarray  # (ncells, n) final states
    stats: BatchedBdfStats


_STATS_FIELDS = (
    "ncells", "steps", "step_rounds", "rhs_sweeps", "jac_builds",
    "cells_refactored", "newton_iters", "error_test_failures",
    "newton_failures",
)

#: (name, dtype) of every array carried across lockstep rounds — the full
#: resumable state, *including* the Jacobian/LU reuse caches.
_STATE_ARRAYS = (
    ("t", float), ("Y", float), ("F0", float), ("h", float),
    ("Y_prev", float), ("h_prev", float), ("have_prev", bool),
    ("past_t", float), ("past_y", float), ("past_cnt", np.int64),
    ("J", float), ("J_valid", bool), ("jac_age", np.int64),
    ("lu", float), ("piv", np.intp), ("inv", float), ("gamma_fact", float),
    ("fact_valid", bool), ("steps_per_cell", np.int64), ("done", bool),
)


@dataclass
class BatchedBdfState:
    """The complete mid-integration state of a batched BDF advance.

    Everything the lockstep loop carries between rounds lives here — the
    per-cell solution/history arrays *and* the Jacobian/LU reuse caches —
    so an integration can pause after any round and resume (or be
    checkpointed and restored bit-identically on another host).
    """

    t_end: float
    t_scale: float
    t: np.ndarray
    Y: np.ndarray
    F0: np.ndarray
    h: np.ndarray
    Y_prev: np.ndarray
    h_prev: np.ndarray
    have_prev: np.ndarray
    past_t: np.ndarray
    past_y: np.ndarray
    past_cnt: np.ndarray
    J: np.ndarray
    J_valid: np.ndarray
    jac_age: np.ndarray
    lu: np.ndarray
    piv: np.ndarray
    inv: np.ndarray
    gamma_fact: np.ndarray
    fact_valid: np.ndarray
    steps_per_cell: np.ndarray
    done: np.ndarray
    stats: BatchedBdfStats = field(default_factory=BatchedBdfStats)

    snapshot_kind = "ode.batched_bdf_state"
    #: v2 added the held Newton inverse (the backend fast path's factor
    #: cache) so mid-integration restores resume bit-identically on it.
    snapshot_version = 2

    @property
    def finished(self) -> bool:
        return bool(self.done.all())

    def result(self) -> BatchedBdfResult:
        return BatchedBdfResult(t=self.t, y=self.Y, stats=self.stats)

    def snapshot(self) -> Snapshot:
        payload: dict = {
            "t_end": float(self.t_end),
            "t_scale": float(self.t_scale),
            "stats": {f: int(getattr(self.stats, f)) for f in _STATS_FIELDS},
        }
        for name, _ in _STATE_ARRAYS:
            payload[name] = getattr(self, name)
        return Snapshot(self.snapshot_kind, self.snapshot_version, payload)

    def restore(self, snap: Snapshot) -> None:
        require_kind(snap, self)
        self.t_end = snap.payload["t_end"]
        self.t_scale = snap.payload["t_scale"]
        self.stats = BatchedBdfStats(
            **{f: snap.payload["stats"][f] for f in _STATS_FIELDS}
        )
        for name, dtype in _STATE_ARRAYS:
            setattr(self, name,
                    np.array(snap.payload[name], dtype=dtype, copy=True))


class BatchedBdfIntegrator:
    """Variable-step BDF(1,2) over a batch of independent stiff systems.

    ``sdc_guard=True`` arms the silent-data-corruption defenses: fresh
    Newton factorizations are checksum-verified
    (:func:`~repro.resilience.abft.verify_lu`), the first Newton solve of
    every round is residual-checked against the reconstructed iteration
    matrix — the held LU caches live across rounds, which is exactly the
    window a bit flip hits — and accepted states must be finite and pass
    the optional ``plausibility`` predicate (per-cell physical-bounds
    check, e.g. temperature/mass-fraction windows).  Violations raise
    :class:`~repro.resilience.abft.SdcDetected` instead of integrating on
    corrupted state.
    """

    def __init__(
        self,
        rhs: BatchRhsFn,
        *,
        jac: BatchJacFn | None = None,
        rtol: float = 1e-6,
        atol: float | np.ndarray = 1e-9,
        max_steps: int = 100_000,
        newton_tol: float = 0.1,
        max_newton: int = 6,
        max_jac_age: int = 50,
        gamma_drift_tol: float = 0.3,
        sdc_guard: bool = False,
        plausibility: Callable[[np.ndarray], np.ndarray] | None = None,
        tracer: "Tracer | None" = None,
        backend: "str | ArrayBackend | None" = None,
    ) -> None:
        self.rhs = rhs
        #: array engine for the Newton factor/solve kernels ("auto" default)
        self._backend = resolve_backend(backend)
        self.jac = jac
        self.rtol = rtol
        self.atol = atol
        self.max_steps = max_steps
        self.newton_tol = newton_tol
        self.max_newton = max_newton
        self.max_jac_age = max_jac_age
        self.gamma_drift_tol = gamma_drift_tol
        self.sdc_guard = sdc_guard
        self.plausibility = plausibility
        #: observation-only span/metric sink on the tracer's ordinal tick
        #: clock (solver rounds are ordinal, not simulated-time, events)
        self.tracer = tracer

    # -- internals ------------------------------------------------------------

    def _error_weights(self, Y: np.ndarray) -> np.ndarray:
        return 1.0 / (self.rtol * np.abs(Y) + self.atol)

    @staticmethod
    def _wrms(E: np.ndarray, W: np.ndarray) -> np.ndarray:
        """Per-cell weighted RMS norm over the species axis."""
        EW = E * W
        # einsum sidesteps np.mean's reduction machinery on this hot path
        return np.sqrt(np.einsum("...j,...j->...", EW, EW) / EW.shape[-1])

    def _build_jacobian(self, t, Y: np.ndarray,
                        stats: BatchedBdfStats) -> np.ndarray:
        tr = self.tracer
        if tr is None:
            return self._build_jacobian_impl(t, Y, stats)
        with tr.span("ode.jacobian", cat="ode", pid="ode", tid="batched",
                     cells=int(Y.shape[0])):
            out = self._build_jacobian_impl(t, Y, stats)
        tr.metrics.counter("ode.jac_builds").inc()
        return out

    def _build_jacobian_impl(self, t, Y: np.ndarray,
                             stats: BatchedBdfStats) -> np.ndarray:
        """(ncells, n, n) Jacobians: analytic, or one-shot vectorized FD.

        The FD path stacks all n perturbed copies of the whole batch into
        a (n, ncells, n) array and evaluates the RHS once — the batched
        equivalent of perturbing every Jacobian column of every cell in a
        single kernel launch.
        """
        stats.jac_builds += 1
        if self.jac is not None:
            return np.asarray(self.jac(t, Y))
        B, n = Y.shape
        F0 = self.rhs(t, Y)
        stats.rhs_sweeps += 1
        eps = np.sqrt(np.finfo(float).eps)
        dy = eps * np.maximum(np.abs(Y), 1e-8)
        Yp = np.broadcast_to(Y, (n, B, n)).copy()
        cols = np.arange(n)
        Yp[cols, :, cols] += dy.T
        F = np.asarray(self.rhs(t, Yp))  # (n, B, n)
        stats.rhs_sweeps += n
        return (np.transpose(F, (1, 2, 0)) - F0[:, :, None]) / dy[:, None, :]

    def _check_underflow(self, h: np.ndarray, t: np.ndarray,
                         mask: np.ndarray, t_scale: float) -> None:
        bad = mask & (h < 1e-14 * np.maximum(np.abs(t), t_scale))
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            raise IntegrationError(
                f"step size underflow in cell {i} at t={t[i]:.3e}"
            )

    def _error_estimate(self, past_t, past_y, past_cnt, have_prev,
                        t_new, Yn, h, W) -> np.ndarray:
        """Per-cell WRMS local-truncation-error estimate.

        Mirrors the scalar integrator: the highest-order Newton divided
        difference of the last implicit solution points, with the number
        of points selected per cell (ragged histories are handled by
        computing all three candidate differences vectorized and picking
        per cell)."""
        pts_t = np.concatenate([past_t, t_new[:, None]], axis=1)       # (B, 5)
        pts_y = np.concatenate([past_y, Yn[:, None, :]], axis=1)       # (B, 5, n)
        order = np.where(have_prev, 2, 1)
        npts = np.minimum(past_cnt, order + 1) + 1                     # in {2,3,4}
        # only compute the difference levels some cell actually selects —
        # after warmup that is usually just m=4, a third of the old work
        dds = {}
        for m in (2, 3, 4):
            if not (npts == m).any():
                continue
            Tm = pts_t[:, -m:]
            Yv = pts_y[:, -m:, :]
            for level in range(1, m):
                denom = (Tm[:, level:] - Tm[:, :-level])[:, :, None]
                Yv = (Yv[:, 1:, :] - Yv[:, :-1, :]) / denom
            dds[m] = Yv[:, 0, :]
        if len(dds) == 1:
            dd = next(iter(dds.values()))
        else:
            fill = np.zeros_like(pts_y[:, 0, :])
            dd = np.where((npts == 2)[:, None], dds.get(2, fill),
                          np.where((npts == 3)[:, None], dds.get(3, fill),
                                   dds.get(4, fill)))
        err_vec = np.where((order == 1)[:, None],
                           h[:, None] ** 2 * dd,
                           (4.0 / 3.0) * h[:, None] ** 3 * dd)
        return self._wrms(err_vec, W)

    def _newton(self, t_new, Y, Y_prev, Y_pred, a0, a1, a2, h, gamma, active,
                J, J_valid, jac_age, lu, piv, inv, gamma_fact, fact_valid,
                stats) -> tuple[np.ndarray, np.ndarray]:
        tr = self.tracer
        if tr is None:
            return self._newton_impl(
                t_new, Y, Y_prev, Y_pred, a0, a1, a2, h, gamma, active,
                J, J_valid, jac_age, lu, piv, inv, gamma_fact, fact_valid,
                stats)
        iters0 = stats.newton_iters
        refact0 = stats.cells_refactored
        with tr.span("ode.newton", cat="ode", pid="ode", tid="batched",
                     cells=int(active.sum()),
                     backend=self._backend.name) as sp:
            converged, Yn = self._newton_impl(
                t_new, Y, Y_prev, Y_pred, a0, a1, a2, h, gamma, active,
                J, J_valid, jac_age, lu, piv, inv, gamma_fact, fact_valid,
                stats)
            sp.args["iters"] = stats.newton_iters - iters0
            sp.args["converged"] = int(converged.sum())
        m = tr.metrics
        m.counter("ode.newton_calls").inc()
        m.counter("ode.newton_iters").inc(stats.newton_iters - iters0)
        refactored = stats.cells_refactored - refact0
        m.counter("ode.cells_refactored").inc(refactored)
        reused = int(active.sum()) - refactored
        if reused > 0:
            # Jacobian/LU reuse hits: cells solved on held factors
            m.counter("ode.lu_reuse_hits").inc(reused)
        return converged, Yn

    def _newton_impl(self, t_new, Y, Y_prev, Y_pred, a0, a1, a2, h, gamma,
                     active, J, J_valid, jac_age, lu, piv, inv, gamma_fact,
                     fact_valid, stats) -> tuple[np.ndarray, np.ndarray]:
        """Masked modified-Newton solve across the batch.

        Returns ``(converged, Yn)``.  Newton factors persist across calls
        and are refactored per cell only when the Jacobian was refreshed
        or gamma drifted; a cell that fails with a *reused* Jacobian gets
        one fresh-Jacobian retry (CVODE's recovery ladder) before its step
        is abandoned.

        Without ``sdc_guard`` the factor cache is the backend's explicit
        inverse — one ``inv`` per refactorization, one matmul per
        iteration — which modified Newton tolerates because each iterate
        is corrected by the next residual.  With ``sdc_guard`` the LU
        factor/solve path is kept: the checksum and residual audits
        (:func:`verify_lu`/:func:`verify_solve`) are contracts on a
        backward-stable triangular solve, which an explicit inverse does
        not honor.
        """
        B, n = Y.shape
        use_inv = not self.sdc_guard
        be = self._backend
        diag = np.arange(n)
        Yn = np.where(active[:, None], Y_pred, Y)
        W = self._error_weights(Y_pred)
        converged = np.zeros(B, dtype=bool)
        need = active.copy()
        for attempt in range(2):
            stale = need & (~J_valid | (jac_age >= self.max_jac_age)
                            if attempt == 0 else need)
            if stale.any():
                J_new = self._build_jacobian(t_new, Yn, stats)
                J[stale] = J_new[stale]
                J_valid |= stale
                jac_age[stale] = 0
            drifted = ~fact_valid | (
                np.abs(gamma - gamma_fact)
                > self.gamma_drift_tol * np.maximum(np.abs(gamma_fact), 1e-300)
            )
            idx = np.flatnonzero(need & (stale | drifted))
            if idx.size:
                M = -gamma[idx, None, None] * J[idx]
                M[:, diag, diag] += 1.0
                if use_inv:
                    inv[idx] = be.inv(M)
                else:
                    lu[idx], piv[idx] = be.lu_factor(M)
                    verify_lu(lu[idx], piv[idx], lu_checksum(M))
                gamma_fact[idx] = gamma[idx]
                fact_valid[idx] = True
                stats.cells_refactored += idx.size
            unconv = need & ~converged
            audited = not self.sdc_guard
            for _ in range(self.max_newton):
                if not unconv.any():
                    break
                F = self.rhs(t_new, Yn)
                stats.rhs_sweeps += 1
                stats.newton_iters += 1
                res = Yn + ((a1[:, None] * Y + a2[:, None] * Y_prev)
                            - h[:, None] * F) / a0[:, None]
                uidx = np.flatnonzero(unconv)
                if use_inv:
                    delta = be.inv_apply(inv[uidx], -res[uidx])
                else:
                    delta = be.lu_solve(lu[uidx], piv[uidx], -res[uidx])
                if not audited:
                    # first solve of the round residual-checks the *held*
                    # factors: rebuild the iteration matrix they claim to
                    # factor (J is only refreshed together with a refactor,
                    # so gamma_fact + J reproduce it exactly) and demand
                    # M·delta ≈ −res within the backward-stable envelope.
                    # A bit flip in the cached lu/piv leaves a residual of
                    # order the solve error, far outside roundoff.
                    audited = True
                    M_held = -gamma_fact[uidx, None, None] * J[uidx]
                    M_held[:, diag, diag] += 1.0
                    verify_solve(M_held, delta, -res[uidx], growth=4.0)
                Yn[uidx] += delta
                newly = self._wrms(delta, W[uidx]) < self.newton_tol
                converged[uidx[newly]] = True
                unconv[uidx[newly]] = False
            failed = need & ~converged
            if not failed.any():
                break
            retry = failed & (jac_age > 0)
            if attempt == 0 and retry.any():
                need = retry
                Yn[retry] = Y_pred[retry]  # restart the retried iteration
                continue
            break
        failed = active & ~converged
        J_valid[failed] = False
        return converged, Yn

    # -- public ---------------------------------------------------------------

    def start(self, y0: np.ndarray, t0: float, t_end: float) -> BatchedBdfState:
        """Initialize a resumable integration of ``y0`` (ncells, n)."""
        if t_end <= t0:
            raise IntegrationError("t_end must exceed t0")
        Y = np.array(y0, dtype=float, copy=True)
        if Y.ndim != 2:
            raise IntegrationError(f"batched state must be 2-D, got {Y.shape}")
        B, n = Y.shape
        stats = BatchedBdfStats(ncells=B)

        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            t = np.full(B, float(t0))
            F0 = np.asarray(self.rhs(t0, Y))
            stats.rhs_sweeps += 1
            scale = np.sqrt(np.sum((F0 * self._error_weights(Y)) ** 2,
                                   axis=1)) + 1e-30
            h = np.minimum((t_end - t0) / 100.0, 0.01 / scale)
            # interval-relative step floor: microsecond chemistry advances
            # legitimately need h far below 1e-14
            t_scale = max(abs(t0), abs(t_end))
            h = np.maximum(h, 1e-14 * t_scale)

        # rolling accepted-point history for error estimation; fake
        # pre-history times are distinct so unused divided differences
        # stay finite (they are never selected)
        past_t = np.full((B, 4), t0) - np.arange(4, 0, -1)[None, :]
        past_t[:, -1] = t0
        past_y = np.zeros((B, 4, n))
        past_y[:, -1] = Y

        tiny = 1e-14 * t_scale
        return BatchedBdfState(
            t_end=float(t_end),
            t_scale=t_scale,
            t=t,
            Y=Y,
            F0=F0,
            h=h,
            Y_prev=np.zeros_like(Y),
            h_prev=np.ones(B),
            have_prev=np.zeros(B, dtype=bool),
            past_t=past_t,
            past_y=past_y,
            past_cnt=np.ones(B, dtype=np.int64),
            J=np.zeros((B, n, n)),
            J_valid=np.zeros(B, dtype=bool),
            jac_age=np.zeros(B, dtype=np.int64),
            lu=np.zeros((B, n, n)),
            piv=np.zeros((B, n), dtype=np.intp),
            inv=np.zeros((B, n, n)),
            gamma_fact=np.zeros(B),
            fact_valid=np.zeros(B, dtype=bool),
            steps_per_cell=np.zeros(B, dtype=np.int64),
            done=t >= t_end - tiny,
            stats=stats,
        )

    def step_round(self, s: BatchedBdfState) -> None:
        """One lockstep step-attempt round over all unfinished cells.

        Mutates *s* in place; ``s.finished`` reports completion.  The
        state is self-contained, so a round sequence can be paused,
        checkpointed, restored, and resumed bit-identically.
        """
        if s.finished:
            return
        tr = self.tracer
        if tr is None:
            self._step_round_impl(s)
            return
        with tr.span("ode.step_round", cat="ode", pid="ode", tid="batched",
                     active_cells=int((~s.done).sum())) as sp:
            self._step_round_impl(s)
            sp.args["round"] = s.stats.step_rounds
        tr.metrics.counter("ode.step_rounds").inc()

    def _step_round_impl(self, s: BatchedBdfState) -> None:
        if s.finished:
            return
        t_end, tiny = s.t_end, 1e-14 * s.t_scale
        stats = s.stats
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            stats.step_rounds += 1
            if s.steps_per_cell.max() >= self.max_steps:
                i = int(s.steps_per_cell.argmax())
                raise IntegrationError(
                    f"max_steps={self.max_steps} exceeded in cell {i} "
                    f"at t={s.t[i]:.3e}"
                )
            if stats.step_rounds > 10 * self.max_steps:
                raise IntegrationError("lockstep round budget exceeded")
            active = ~s.done
            h = np.where(active, np.minimum(s.h, t_end - s.t), s.h)
            t_new = s.t + h
            rho = np.where(s.have_prev, h / s.h_prev, 1.0)
            a0 = np.where(s.have_prev, (1 + 2 * rho) / (1 + rho), 1.0)
            a1 = np.where(s.have_prev, -(1 + rho), -1.0)
            a2 = np.where(s.have_prev, rho**2 / (1 + rho), 0.0)
            gamma = h / a0
            Y_pred = np.where(s.have_prev[:, None],
                              s.Y + rho[:, None] * (s.Y - s.Y_prev),
                              s.Y + h[:, None] * s.F0)

            converged, Yn = self._newton(
                t_new, s.Y, s.Y_prev, Y_pred, a0, a1, a2, h, gamma, active,
                s.J, s.J_valid, s.jac_age, s.lu, s.piv, s.inv, s.gamma_fact,
                s.fact_valid, stats)
            newton_failed = active & ~converged
            if newton_failed.any():
                stats.newton_failures += int(newton_failed.sum())
                h = np.where(newton_failed, 0.25 * h, h)
                self._check_underflow(h, s.t, newton_failed, s.t_scale)

            test = active & converged
            if not test.any():
                s.h = h
                return
            W = self._error_weights(s.Y)
            err = self._error_estimate(s.past_t, s.past_y, s.past_cnt,
                                       s.have_prev, t_new, Yn, h, W)
            order = np.where(s.have_prev, 2, 1)
            factor = 0.9 * np.maximum(err, 1e-300) ** (-1.0 / (order + 1))
            reject = test & (err > 1.0)
            accept = test & ~reject
            if reject.any():
                stats.error_test_failures += int(reject.sum())
                h = np.where(reject, h * np.maximum(0.1, factor), h)
                self._check_underflow(h, s.t, reject, s.t_scale)
            if accept.any():
                stats.steps += int(accept.sum())
                s.steps_per_cell[accept] += 1
                s.jac_age[accept] += 1
                s.Y_prev = np.where(accept[:, None], s.Y, s.Y_prev)
                s.h_prev = np.where(accept, h, s.h_prev)
                s.t = np.where(accept, t_new, s.t)
                s.Y = np.where(accept[:, None], Yn, s.Y)
                s.past_t[accept, :-1] = s.past_t[accept, 1:]
                s.past_t[accept, -1] = s.t[accept]
                s.past_y[accept, :-1, :] = s.past_y[accept, 1:, :]
                s.past_y[accept, -1, :] = s.Y[accept]
                s.past_cnt[accept] = np.minimum(s.past_cnt[accept] + 1, 4)
                s.have_prev |= accept
                grow = np.where(err > 0,
                                np.minimum(5.0, np.maximum(0.2, factor)),
                                5.0)
                h = np.where(accept, h * grow, h)
                s.done = s.t >= t_end - tiny
                if self.sdc_guard:
                    require_finite("accepted state", s.Y[accept],
                                   s.t[accept], s.h_prev[accept])
                    if self.plausibility is not None:
                        ok = np.asarray(self.plausibility(s.Y[accept]),
                                        dtype=bool)
                        if not ok.all():
                            cell = int(np.flatnonzero(accept)[
                                int(np.flatnonzero(~ok)[0])])
                            raise SdcDetected(
                                f"accepted state fails plausibility in "
                                f"cell {cell} at t={s.t[cell]:.3e}",
                                location=(cell,),
                            )
            s.h = h

    def integrate(self, y0: np.ndarray, t0: float, t_end: float) -> BatchedBdfResult:
        """Advance every cell of ``y0`` (ncells, n) from *t0* to *t_end*."""
        tr = self.tracer
        if tr is None:
            state = self.start(y0, t0, t_end)
            while not state.finished:
                self.step_round(state)
            return state.result()
        with tr.span("ode.integrate", cat="ode", pid="ode", tid="batched",
                     ncells=int(np.asarray(y0).shape[0]),
                     backend=self._backend.name) as sp:
            state = self.start(y0, t0, t_end)
            while not state.finished:
                self.step_round(state)
            sp.args["rounds"] = state.stats.step_rounds
        return state.result()
