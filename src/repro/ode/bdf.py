"""A CVODE-like stiff integrator: variable-step BDF(1,2) with Newton.

Implements the SUNDIALS CVODE structure the Pele project depends on
(§3.8): implicit BDF time stepping, a modified-Newton nonlinear solve, and
a pluggable linear solver — dense LU (the PeleLM(eX)/MAGMA path, batched
over cells elsewhere) or matrix-free GMRES (the PeleC path).

BDF2 on non-uniform steps uses the standard variable-step coefficients;
local error is estimated from the difference between the BDF2 solution and
a BDF1 predictor, driving PI step-size control.  Verified against
``scipy.integrate.solve_ivp(method="BDF")`` on Robertson-class problems.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.ode.gmres import gmres

RhsFn = Callable[[float, np.ndarray], np.ndarray]
JacFn = Callable[[float, np.ndarray], np.ndarray]


class LinearSolver(enum.Enum):
    DENSE = "dense"  # direct LU on the Newton matrix (MAGMA-style)
    GMRES = "gmres"  # matrix-free Krylov (PeleC-style)


class IntegrationError(RuntimeError):
    pass


@dataclass
class BdfStats:
    """Solver work counters (mirrors CVodeGetNumRhsEvals and friends)."""

    steps: int = 0
    rhs_evals: int = 0
    jac_evals: int = 0
    newton_iters: int = 0
    linear_iters: int = 0
    error_test_failures: int = 0
    newton_failures: int = 0


@dataclass
class BdfResult:
    t: float
    y: np.ndarray
    stats: BdfStats
    t_history: list[float] = field(default_factory=list)
    y_history: list[np.ndarray] = field(default_factory=list)


def _divided_difference(points: list[tuple[float, np.ndarray]]) -> np.ndarray:
    """Highest-order Newton divided difference of (t, y) *points*.

    Over k+1 points this approximates y^(k)(ξ)/k!, the quantity BDF
    local-truncation-error estimates are built from.
    """
    table = [y for _, y in points]
    ts = [t for t, _ in points]
    k = len(points) - 1
    for level in range(1, k + 1):
        table = [
            (table[i + 1] - table[i]) / (ts[i + level] - ts[i])
            for i in range(len(table) - 1)
        ]
    return table[0]


def _numerical_jacobian(f: RhsFn, t: float, y: np.ndarray, fy: np.ndarray,
                        stats: BdfStats, *, columnwise: bool = False) -> np.ndarray:
    """Finite-difference Jacobian; one vectorized sweep when the RHS allows.

    With ``columnwise=True`` the RHS is evaluated once on an (n, n) matrix
    whose column j is ``y + dy_j e_j`` — the batched-perturbation trick the
    batched integrator uses across cells (no per-column Python loop).
    """
    n = y.size
    eps = np.sqrt(np.finfo(float).eps)
    dy = eps * np.maximum(np.abs(y), 1e-8)
    if columnwise:
        Y = y[:, None] + np.diag(dy)
        F = np.asarray(f(t, Y))
        stats.rhs_evals += n
        # non-finite RHS values (diverging problems probed near a failure)
        # legitimately produce NaN differences here; Newton rejects them
        with np.errstate(invalid="ignore"):
            return (F - fy[:, None]) / dy[None, :]
    J = np.empty((n, n))
    with np.errstate(invalid="ignore"):
        for j in range(n):
            yp = y.copy()
            yp[j] += dy[j]
            J[:, j] = (f(t, yp) - fy) / dy[j]
            stats.rhs_evals += 1
    return J


class BdfIntegrator:
    """Variable-step BDF(1,2) integrator with modified Newton iteration."""

    def __init__(
        self,
        rhs: RhsFn,
        *,
        jac: JacFn | None = None,
        rtol: float = 1e-6,
        atol: float | np.ndarray = 1e-9,
        linear_solver: LinearSolver = LinearSolver.DENSE,
        max_steps: int = 100_000,
        newton_tol: float = 0.1,
        max_newton: int = 6,
        max_jac_age: int = 50,
        gamma_drift_tol: float = 0.3,
    ) -> None:
        self.rhs = rhs
        self.jac = jac
        self.rtol = rtol
        self.atol = atol
        self.linear_solver = linear_solver
        self.max_steps = max_steps
        self.newton_tol = newton_tol
        self.max_newton = max_newton
        self.max_jac_age = max_jac_age
        self.gamma_drift_tol = gamma_drift_tol
        # CVODE-style reuse cache: Jacobian + Newton matrix held across
        # steps until convergence degrades, the step count ages it out, or
        # gamma drifts too far from the value it was assembled with.
        self._J: np.ndarray | None = None
        self._M: np.ndarray | None = None
        self._gamma_M: float | None = None
        self._jac_age = 0
        self._jac_stale = True
        # None = unprobed; True/False = RHS accepts column-stacked states
        self._rhs_columnwise: bool | None = None

    # -- internals ------------------------------------------------------------

    def _error_weights(self, y: np.ndarray) -> np.ndarray:
        return 1.0 / (self.rtol * np.abs(y) + self.atol)

    def _wrms(self, e: np.ndarray, w: np.ndarray) -> float:
        return float(np.sqrt(np.mean((e * w) ** 2)))

    def _probe_columnwise(self, t: float, y: np.ndarray, fy: np.ndarray) -> bool:
        """Decide (once) whether the RHS evaluates column-stacked states.

        The vectorized FD Jacobian passes all n perturbed states as the
        columns of an (n, n) matrix.  Componentwise RHS expressions (the
        common case: ``A @ y``, chemistry rates, Robertson) broadcast
        correctly; anything else is detected by comparing column 0 against
        a direct scalar evaluation and falls back to the column loop.
        """
        if self._rhs_columnwise is None:
            n = y.size
            eps = np.sqrt(np.finfo(float).eps)
            dy = eps * np.maximum(np.abs(y), 1e-8)
            try:
                F = np.asarray(self.rhs(t, y[:, None] + np.diag(dy)))
                y0 = y.copy()
                y0[0] += dy[0]
                f0 = self.rhs(t, y0)
                ok = (F.shape == (n, n)
                      and np.allclose(F[:, 0], f0, rtol=1e-12, atol=1e-300,
                                      equal_nan=True))
            except Exception:
                ok = False
            self._rhs_columnwise = bool(ok)
        return self._rhs_columnwise

    def _newton_matrix(self, t_new: float, y: np.ndarray, gamma: float,
                       stats: BdfStats, *, force_fresh: bool) -> np.ndarray:
        """Return I - gamma J, reusing the cached Jacobian/matrix when safe."""
        need_jac = (force_fresh or self._J is None or self._jac_stale
                    or self._jac_age >= self.max_jac_age)
        if need_jac:
            if self.jac is not None:
                self._J = self.jac(t_new, y)
            else:
                fy = self.rhs(t_new, y)
                stats.rhs_evals += 1
                self._J = _numerical_jacobian(
                    self.rhs, t_new, y, fy, stats,
                    columnwise=self._probe_columnwise(t_new, y, fy))
            stats.jac_evals += 1
            self._jac_age = 0
            self._jac_stale = False
            self._M = None
        gamma_drifted = (self._gamma_M is None or abs(gamma / self._gamma_M - 1.0)
                         > self.gamma_drift_tol)
        if self._M is None or gamma_drifted:
            self._M = np.eye(y.size) - gamma * self._J
            self._gamma_M = gamma
        return self._M

    def _newton_solve(self, t_new: float, y_pred: np.ndarray, gamma: float,
                      psi: Callable[[np.ndarray], np.ndarray],
                      stats: BdfStats) -> np.ndarray | None:
        """Solve the BDF nonlinear system via modified Newton.

        ``psi(y)`` returns the BDF residual *scaled by 1/a0* so its exact
        Jacobian is ``I - gamma J`` — the iteration matrix the dense path
        factors and the CVODE convention that makes Jacobian reuse sound.
        A failed iteration with a reused Jacobian triggers one fresh-J
        retry before the step is abandoned (CVODE's recovery ladder).
        """
        if self.linear_solver is LinearSolver.DENSE:
            attempts = 2 if (self._jac_age > 0 or self._jac_stale
                             or self._J is None) else 1
            for attempt in range(attempts):
                M = self._newton_matrix(t_new, y_pred, gamma, stats,
                                        force_fresh=attempt > 0)
                y = y_pred.copy()
                w = self._error_weights(y_pred)
                for _ in range(self.max_newton):
                    stats.newton_iters += 1
                    res = psi(y)
                    delta = np.linalg.solve(M, -res)
                    y = y + delta
                    if self._wrms(delta, w) < self.newton_tol:
                        return y
                if attempt + 1 < attempts:
                    continue  # retry once with a freshly built Jacobian
            self._jac_stale = True
            stats.newton_failures += 1
            return None

        # matrix-free GMRES path (PeleC-style)
        y = y_pred.copy()
        w = self._error_weights(y_pred)
        for _ in range(self.max_newton):
            stats.newton_iters += 1
            res = psi(y)
            fy = self.rhs(t_new, y)
            stats.rhs_evals += 1

            def jv(v: np.ndarray) -> np.ndarray:
                """Finite-difference J·v, matrix-free."""
                sigma = 1e-7 * max(np.linalg.norm(y), 1.0) / max(np.linalg.norm(v), 1e-30)
                stats.rhs_evals += 1
                return (self.rhs(t_new, y + sigma * v) - fy) / sigma

            def mop(v: np.ndarray) -> np.ndarray:
                return v - gamma * jv(v)

            sol = gmres(mop, -res, tol=1e-4 * self.newton_tol, restart=20,
                        maxiter=200)
            stats.linear_iters += sol.iterations
            if not sol.converged:
                stats.newton_failures += 1
                return None
            delta = sol.x
            y = y + delta
            if self._wrms(delta, w) < self.newton_tol:
                return y
        stats.newton_failures += 1
        return None

    # -- public ---------------------------------------------------------------

    def integrate(self, y0: np.ndarray, t0: float, t_end: float, *,
                  first_step: float | None = None,
                  record_history: bool = False) -> BdfResult:
        """Integrate from *t0* to *t_end*; returns the final state and stats."""
        if t_end <= t0:
            raise IntegrationError("t_end must exceed t0")
        y0 = np.asarray(y0, dtype=float)
        stats = BdfStats()
        self._J = None
        self._M = None
        self._gamma_M = None
        self._jac_age = 0
        self._jac_stale = True
        t = t0
        y = y0.copy()
        f0 = self.rhs(t, y)
        stats.rhs_evals += 1
        scale = np.linalg.norm(f0 * self._error_weights(y)) + 1e-30
        h = first_step if first_step is not None else min(
            (t_end - t0) / 100.0, 0.01 / scale
        )
        # step floor relative to the integration interval, not to O(1):
        # microsecond chemistry advances legitimately need h ~ 1e-16
        h_floor = 1e-14 * max(abs(t0), abs(t_end))
        h = max(h, h_floor)

        t_hist: list[float] = [t0]
        y_hist: list[np.ndarray] = [y0.copy()]

        # previous step memory for BDF2
        y_prev: np.ndarray | None = None
        h_prev: float | None = None
        # accepted (t, y) points for divided-difference error estimation
        past: list[tuple[float, np.ndarray]] = [(t0, y0.copy())]

        while t < t_end:
            if stats.steps >= self.max_steps:
                raise IntegrationError(
                    f"max_steps={self.max_steps} exceeded at t={t:.3e}"
                )
            h = min(h, t_end - t)
            t_new = t + h

            if y_prev is None:
                # BDF1 (backward Euler): y_new - h f = y
                gamma = h

                def psi1(yn: np.ndarray, y=y, h=h, t_new=t_new) -> np.ndarray:
                    r = self.rhs(t_new, yn)
                    stats.rhs_evals += 1
                    # infinite RHS values make this NaN on purpose; the
                    # Newton loop treats non-finite residuals as failure
                    with np.errstate(invalid="ignore"):
                        return yn - y - h * r

                y_new = self._newton_solve(t_new, y + h * f0, gamma, psi1, stats)
                order = 1
            else:
                # variable-step BDF2 coefficients: a0 y_{n+1} + a1 y_n +
                # a2 y_{n-1} = h f(y_{n+1}), with a0 + a1 + a2 = 0
                rho = h / h_prev
                a0 = (1 + 2 * rho) / (1 + rho)
                a1 = -(1 + rho)
                a2 = rho**2 / (1 + rho)
                gamma = h / a0

                def psi2(yn: np.ndarray, y=y, yp=y_prev, a0=a0, a1=a1, a2=a2,
                         h=h, t_new=t_new) -> np.ndarray:
                    r = self.rhs(t_new, yn)
                    stats.rhs_evals += 1
                    # scaled by 1/a0 so the residual Jacobian is exactly
                    # I - gamma J, matching the factored iteration matrix;
                    # NaN from an infinite RHS is the intended failure signal
                    with np.errstate(invalid="ignore"):
                        return yn + (a1 * y + a2 * yp - h * r) / a0

                # predictor: linear extrapolation
                y_pred = y + rho * (y - y_prev)
                y_new = self._newton_solve(t_new, y_pred, gamma, psi2, stats)
                order = 2

            if y_new is None:
                h *= 0.25
                if h < 1e-14 * max(abs(t), abs(t_end)):
                    raise IntegrationError(f"step size underflow at t={t:.3e}")
                continue

            # Local-truncation-error estimate from divided differences of
            # *implicit* solution points only — an explicit predictor would
            # see the stiff mode and cap h at explicit-stability scale.
            w = self._error_weights(y)
            pts = past[-order - 1 :] + [(t_new, y_new)]
            dd = _divided_difference(pts)
            if order == 1:
                # LTE(BE) = h²/2 · y'' ≈ h² · dd2
                err_vec = h**2 * dd
            else:
                # LTE(BDF2) = 2/9 · h³ · y''' ≈ (4/3) · h³ · dd3
                err_vec = (4.0 / 3.0) * h**3 * dd
            err = self._wrms(err_vec, w)

            if err > 1.0:
                stats.error_test_failures += 1
                h *= max(0.1, 0.9 * err ** (-1.0 / (order + 1)))
                if h < 1e-14 * max(abs(t), abs(t_end)):
                    raise IntegrationError(f"step size underflow at t={t:.3e}")
                continue

            # accept
            stats.steps += 1
            self._jac_age += 1
            first_accept = y_prev is None
            y_prev, h_prev = y, h
            t, y = t_new, y_new
            past.append((t, y.copy()))
            if len(past) > 4:
                past.pop(0)
            if first_accept:
                # f0 only feeds the BDF1 predictor; BDF2 extrapolates
                f0 = self.rhs(t, y)
                stats.rhs_evals += 1
            if record_history:
                t_hist.append(t)
                y_hist.append(y.copy())
            h *= min(5.0, max(0.2, 0.9 * err ** (-1.0 / (order + 1)) if err > 0 else 5.0))

        return BdfResult(t=t, y=y, stats=stats,
                         t_history=t_hist if record_history else [],
                         y_history=y_hist if record_history else [])
