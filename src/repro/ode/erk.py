"""Explicit Runge–Kutta integrators for non-stiff chemistry (§3.8).

PeleC's explicit path: classic RK4 with fixed steps, and an adaptive
RK45 (Cash–Karp) for error-controlled integration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

RhsFn = Callable[[float, np.ndarray], np.ndarray]


@dataclass
class ErkResult:
    t: float
    y: np.ndarray
    steps: int
    rhs_evals: int
    rejected: int = 0


def rk4(rhs: RhsFn, y0: np.ndarray, t0: float, t_end: float, nsteps: int) -> ErkResult:
    """Classic fixed-step RK4."""
    if nsteps < 1:
        raise ValueError("nsteps must be positive")
    if t_end <= t0:
        raise ValueError("t_end must exceed t0")
    y = np.asarray(y0, dtype=float).copy()
    h = (t_end - t0) / nsteps
    t = t0
    evals = 0
    for _ in range(nsteps):
        k1 = rhs(t, y)
        k2 = rhs(t + 0.5 * h, y + 0.5 * h * k1)
        k3 = rhs(t + 0.5 * h, y + 0.5 * h * k2)
        k4 = rhs(t + h, y + h * k3)
        y = y + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        t += h
        evals += 4
    return ErkResult(t=t, y=y, steps=nsteps, rhs_evals=evals)


# Cash-Karp tableau
_CK_A = (
    (),
    (1 / 5,),
    (3 / 40, 9 / 40),
    (3 / 10, -9 / 10, 6 / 5),
    (-11 / 54, 5 / 2, -70 / 27, 35 / 27),
    (1631 / 55296, 175 / 512, 575 / 13824, 44275 / 110592, 253 / 4096),
)
_CK_C = (0.0, 1 / 5, 3 / 10, 3 / 5, 1.0, 7 / 8)
_CK_B5 = (37 / 378, 0.0, 250 / 621, 125 / 594, 0.0, 512 / 1771)
_CK_B4 = (2825 / 27648, 0.0, 18575 / 48384, 13525 / 55296, 277 / 14336, 1 / 4)


def rk45(rhs: RhsFn, y0: np.ndarray, t0: float, t_end: float, *,
         rtol: float = 1e-6, atol: float = 1e-9,
         max_steps: int = 100_000) -> ErkResult:
    """Adaptive Cash–Karp RK45."""
    if t_end <= t0:
        raise ValueError("t_end must exceed t0")
    y = np.asarray(y0, dtype=float).copy()
    t = t0
    h = (t_end - t0) / 100.0
    steps = evals = rejected = 0
    while t < t_end:
        if steps + rejected >= max_steps:
            raise RuntimeError(f"rk45 exceeded {max_steps} attempts at t={t:.3e}")
        h = min(h, t_end - t)
        k = [rhs(t, y)]
        evals += 1
        for i in range(1, 6):
            yi = y + h * sum(a * ki for a, ki in zip(_CK_A[i], k))
            k.append(rhs(t + _CK_C[i] * h, yi))
            evals += 1
        y5 = y + h * sum(b * ki for b, ki in zip(_CK_B5, k))
        y4 = y + h * sum(b * ki for b, ki in zip(_CK_B4, k))
        scale = atol + rtol * np.maximum(np.abs(y), np.abs(y5))
        err = float(np.sqrt(np.mean(((y5 - y4) / scale) ** 2)))
        if err <= 1.0:
            t += h
            y = y5
            steps += 1
            h *= min(5.0, max(0.2, 0.9 * err ** -0.2 if err > 0 else 5.0))
        else:
            rejected += 1
            h *= max(0.1, 0.9 * err ** -0.25)
    return ErkResult(t=t, y=y, steps=steps, rhs_evals=evals, rejected=rejected)
