"""Matrix-free GMRES (the PeleC CVODE linear solver, §3.8).

Restarted GMRES(m) with modified Gram–Schmidt Arnoldi.  The operator is a
callable, so Jacobian-vector products can be supplied matrix-free — "a
matrix-free GMRES approach is used within the CVODE non-linear solve,
minimizing the memory requirements."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

Operator = Callable[[np.ndarray], np.ndarray]


@dataclass
class GmresResult:
    """Solution and convergence record."""

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: list[float]


def gmres(
    op: Operator | np.ndarray,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    restart: int = 30,
    maxiter: int = 1000,
    precond: Operator | None = None,
) -> GmresResult:
    """Solve ``op(x) = b`` with restarted GMRES.

    Parameters mirror SUNDIALS SPGMR: relative tolerance on the
    preconditioned residual, Krylov dimension ``restart``, iteration cap
    ``maxiter`` (total matvecs).  ``precond`` applies a left
    preconditioner M⁻¹.
    """
    if isinstance(op, np.ndarray):
        mat = op
        op = lambda v: mat @ v  # noqa: E731
    b = np.asarray(b, dtype=float)
    n = b.size
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=float)
    apply_m = precond if precond is not None else (lambda v: v)

    bnorm = np.linalg.norm(apply_m(b))
    if bnorm == 0.0:
        return GmresResult(x=np.zeros(n), converged=True, iterations=0,
                           residual_norm=0.0, residual_history=[0.0])

    history: list[float] = []
    total_iters = 0

    while total_iters < maxiter:
        r = apply_m(b - op(x))
        beta = np.linalg.norm(r)
        history.append(beta / bnorm)
        if beta / bnorm <= tol:
            return GmresResult(x=x, converged=True, iterations=total_iters,
                               residual_norm=beta / bnorm, residual_history=history)

        m = min(restart, maxiter - total_iters)
        Q = np.zeros((n, m + 1))
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        Q[:, 0] = r / beta
        g[0] = beta

        k_used = 0
        for k in range(m):
            total_iters += 1
            w = apply_m(op(Q[:, k]))
            # modified Gram-Schmidt
            for j in range(k + 1):
                H[j, k] = Q[:, j] @ w
                w -= H[j, k] * Q[:, j]
            H[k + 1, k] = np.linalg.norm(w)
            if H[k + 1, k] > 1e-14:
                Q[:, k + 1] = w / H[k + 1, k]
            # apply stored Givens rotations to the new column
            for j in range(k):
                t = cs[j] * H[j, k] + sn[j] * H[j + 1, k]
                H[j + 1, k] = -sn[j] * H[j, k] + cs[j] * H[j + 1, k]
                H[j, k] = t
            # new rotation to annihilate H[k+1, k]
            denom = np.hypot(H[k, k], H[k + 1, k])
            if denom == 0.0:
                cs[k], sn[k] = 1.0, 0.0
            else:
                cs[k], sn[k] = H[k, k] / denom, H[k + 1, k] / denom
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_used = k + 1
            history.append(abs(g[k + 1]) / bnorm)
            if abs(g[k + 1]) / bnorm <= tol:
                break

        # solve the small triangular system and update x
        y = np.linalg.solve(H[:k_used, :k_used], g[:k_used]) if k_used else np.zeros(0)
        x = x + Q[:, :k_used] @ y
        if history[-1] <= tol:
            return GmresResult(x=x, converged=True, iterations=total_iters,
                               residual_norm=history[-1], residual_history=history)

    r = apply_m(b - op(x))
    rn = np.linalg.norm(r) / bnorm
    return GmresResult(x=x, converged=rn <= tol, iterations=total_iters,
                       residual_norm=rn, residual_history=history)


def gmres_flops(n: int, iterations: int, *, matvec_flops: float | None = None,
                restart: int = 30) -> float:
    """FLOP estimate: iterations × (matvec + orthogonalization ~4·n·k)."""
    mv = matvec_flops if matvec_flops is not None else 2.0 * n * n
    avg_k = min(restart, max(iterations, 1)) / 2.0
    return iterations * (mv + 4.0 * n * avg_k)
