"""ExaSky/HACC substrate: P3M gravity, cosmology driver, gravity kernels."""

from repro.particles.cosmology import (
    FLOPS_PER_INTERACTION,
    INTERACTIONS_PER_PARTICLE,
    NBodySystem,
    hacc_gravity_kernels,
    zeldovich_ics,
)
from repro.particles.pm import (
    PMGrid,
    cic_deposit,
    cic_gather,
    direct_forces,
    long_range_forces,
    p3m_forces,
    short_range_forces,
    short_range_pair_force,
)

__all__ = [
    "uniform_lattice",
    "sph_pressure_forces",
    "sph_density",
    "cubic_spline_kernel",
    "cubic_spline_gradient_mag",
    "EquationOfState",
    "FLOPS_PER_INTERACTION",
    "INTERACTIONS_PER_PARTICLE",
    "NBodySystem",
    "PMGrid",
    "cic_deposit",
    "cic_gather",
    "direct_forces",
    "hacc_gravity_kernels",
    "long_range_forces",
    "p3m_forces",
    "short_range_forces",
    "short_range_pair_force",
    "zeldovich_ics",
]
from repro.particles.sph import (
    EquationOfState,
    cubic_spline_gradient_mag,
    cubic_spline_kernel,
    sph_density,
    sph_pressure_forces,
    uniform_lattice,
)
