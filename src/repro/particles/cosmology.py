"""Cosmology driver: Zel'dovich-like initial conditions, leapfrog stepping,
and the HACC gravity-kernel catalogue used by the performance model.

The six short-range gravity kernel variants of §3.4 (the paper notes one
of the six regressed on MI100 because its branchy inner loop was tuned for
32-wide warps) are represented as kernel descriptors with measured-shape
divergence parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import Precision
from repro.particles.pm import PMGrid, p3m_forces


def zeldovich_ics(n_per_side: int, box_size: float, *, amplitude: float = 0.1,
                  seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Grid-displaced initial conditions (a Zel'dovich approximation).

    Particles start on a lattice, displaced by a smooth random field;
    velocities follow the displacement (growing mode).
    """
    if n_per_side < 2:
        raise ValueError("need at least 2 particles per side")
    rng = np.random.default_rng(seed)
    h = box_size / n_per_side
    lattice = np.stack(
        np.meshgrid(*(np.arange(n_per_side),) * 3, indexing="ij"), axis=-1
    ).reshape(-1, 3) * h
    # smooth displacement: a few low-k Fourier modes
    disp = np.zeros_like(lattice)
    for _ in range(4):
        k = rng.integers(1, 3, size=3) * 2 * np.pi / box_size
        phase = rng.uniform(0, 2 * np.pi)
        amp = rng.normal(scale=amplitude * h, size=3)
        disp += amp * np.sin(lattice @ k + phase)[:, None]
    x = (lattice + disp) % box_size
    v = disp * 0.5  # growing-mode proportionality
    return x, v


@dataclass
class NBodySystem:
    """A small periodic N-body system stepped with leapfrog (KDK)."""

    x: np.ndarray
    v: np.ndarray
    masses: np.ndarray
    grid: PMGrid
    G: float = 1.0

    def step(self, dt: float) -> None:
        a0 = p3m_forces(self.x, self.masses, self.grid, G=self.G) / self.masses[:, None]
        self.v += 0.5 * dt * a0
        self.x = (self.x + dt * self.v) % self.grid.box_size
        a1 = p3m_forces(self.x, self.masses, self.grid, G=self.G) / self.masses[:, None]
        self.v += 0.5 * dt * a1

    def momentum(self) -> np.ndarray:
        return (self.masses[:, None] * self.v).sum(axis=0)


# ---------------------------------------------------------------------------
# The HACC gravity-kernel catalogue (performance layer)
# ---------------------------------------------------------------------------

#: Interactions per particle per step in the short-range kernel.
INTERACTIONS_PER_PARTICLE = 512
#: FLOPs per particle-particle interaction (HACC quotes ~10 fused ops).
FLOPS_PER_INTERACTION = 22.0


def hacc_gravity_kernels(particles_per_rank: int) -> list[KernelSpec]:
    """The six short-range kernel variants of §3.4.

    Five are polynomial-expanded, branch-free evaluations (lane fraction
    ≈ 0.95).  The sixth — the tree-walk filtering variant — is branchy
    and was tuned assuming 32-wide warps, so it is marked
    wavefront-sensitive: the kernel that "showed worse performance when
    using the AMD nodes".
    """
    flops = particles_per_rank * INTERACTIONS_PER_PARTICLE * FLOPS_PER_INTERACTION
    bytes_rw = particles_per_rank * 64.0  # positions+velocities, cached tiles
    base = dict(
        flops=flops / 6.0,
        bytes_read=bytes_rw,
        bytes_written=bytes_rw / 4,
        threads=max(particles_per_rank, 64),
        precision=Precision.FP32,  # HACC's short-range force is FP32
        registers_per_thread=84,
        workgroup_size=256,
    )
    kernels = [
        KernelSpec(name=f"sr_poly_{i}", active_lane_fraction=0.95, **base)
        for i in range(5)
    ]
    kernels.append(
        KernelSpec(
            name="sr_filtered_walk",
            active_lane_fraction=0.55,
            divergence_wavefront_sensitive=True,
            **base,
        )
    )
    return kernels
