"""Particle-mesh gravity with Ewald-style long/short-range splitting.

HACC's structure (§3.4): a long-range force solved spectrally on a mesh
(the code's only external dependency is an FFT library) plus a short-range
direct kernel — the six performance-critical gravity kernels of the paper
are variants of the short-range evaluation.

Splitting: 1/r = erfc(r/2rₛ)/r + erf(r/2rₛ)/r.  The erf part is smooth and
band-limited, solved on the mesh by multiplying the Poisson Green's
function by exp(−k²rₛ²); the erfc part decays fast and is summed directly
within a cutoff (≈5rₛ).  Verified: combined force ≈ Newtonian pair force.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfc

from repro.backend import ArrayBackend, resolve_backend


@dataclass(frozen=True)
class PMGrid:
    """Periodic cubic mesh for the long-range solve."""

    n: int
    box_size: float

    @property
    def cell(self) -> float:
        return self.box_size / self.n


def cic_deposit(x: np.ndarray, masses: np.ndarray, grid: PMGrid) -> np.ndarray:
    """Cloud-in-cell mass deposit onto the mesh (periodic)."""
    n, h = grid.n, grid.cell
    rho = np.zeros((n, n, n))
    u = (x / h) % n
    i0 = np.floor(u).astype(int)
    f = u - i0
    for dx in (0, 1):
        wx = np.where(dx == 0, 1 - f[:, 0], f[:, 0])
        ix = (i0[:, 0] + dx) % n
        for dy in (0, 1):
            wy = np.where(dy == 0, 1 - f[:, 1], f[:, 1])
            iy = (i0[:, 1] + dy) % n
            for dz in (0, 1):
                wz = np.where(dz == 0, 1 - f[:, 2], f[:, 2])
                iz = (i0[:, 2] + dz) % n
                np.add.at(rho, (ix, iy, iz), masses * wx * wy * wz)
    return rho / h**3


def cic_gather(field: np.ndarray, x: np.ndarray, grid: PMGrid) -> np.ndarray:
    """CIC interpolation of a mesh field to particle positions."""
    n, h = grid.n, grid.cell
    u = (x / h) % n
    i0 = np.floor(u).astype(int)
    f = u - i0
    out = np.zeros(len(x))
    for dx in (0, 1):
        wx = np.where(dx == 0, 1 - f[:, 0], f[:, 0])
        ix = (i0[:, 0] + dx) % n
        for dy in (0, 1):
            wy = np.where(dy == 0, 1 - f[:, 1], f[:, 1])
            iy = (i0[:, 1] + dy) % n
            for dz in (0, 1):
                wz = np.where(dz == 0, 1 - f[:, 2], f[:, 2])
                iz = (i0[:, 2] + dz) % n
                out += field[ix, iy, iz] * wx * wy * wz
    return out


def long_range_forces(x: np.ndarray, masses: np.ndarray, grid: PMGrid, *,
                      G: float = 1.0, r_split: float | None = None) -> np.ndarray:
    """Mesh (long-range) force on every particle.

    Solves ∇²φ = 4πGρ with the Gaussian-filtered Green's function
    −4πG exp(−k²rₛ²)/k², takes the spectral gradient, and CIC-gathers.
    """
    n = grid.n
    rs = r_split if r_split is not None else 1.5 * grid.cell
    rho = cic_deposit(x, masses, grid)
    rho_k = np.fft.fftn(rho)
    k1 = 2 * np.pi * np.fft.fftfreq(n, d=grid.cell)
    kx, ky, kz = np.meshgrid(k1, k1, k1, indexing="ij")
    k2 = kx**2 + ky**2 + kz**2
    k2[0, 0, 0] = 1.0
    phi_k = -4 * np.pi * G * rho_k * np.exp(-k2 * rs**2) / k2
    phi_k[0, 0, 0] = 0.0  # remove the mean (Jeans swindle)
    forces = np.empty_like(x)
    for d, kd in enumerate((kx, ky, kz)):
        acc_k = -1j * kd * phi_k  # a = -∇φ
        acc = np.real(np.fft.ifftn(acc_k))
        forces[:, d] = masses * cic_gather(acc, x, grid)
    return forces


def short_range_pair_force(r, rs: float, *, G: float = 1.0):
    """Magnitude of the erfc-filtered short-range force for unit masses.

    Accepts a scalar or an array of separations (the vectorized pair
    kernel evaluates all surviving pairs in one call).
    """
    if np.any(np.asarray(r) <= 0):
        raise ValueError("r must be positive")
    return G * (
        erfc(r / (2 * rs)) / r**2
        + np.exp(-(r**2) / (4 * rs**2)) / (rs * np.sqrt(np.pi) * r)
    )


def short_range_forces(x: np.ndarray, masses: np.ndarray, box_size: float, *,
                       rs: float, cutoff: float | None = None,
                       G: float = 1.0, vectorized: bool = True,
                       backend: "str | ArrayBackend | None" = None
                       ) -> np.ndarray:
    """Direct short-range sum within the cutoff (minimum image).

    The default path dispatches to the array backend's fused pairwise
    kernel: every i<j pair at once on memoized triangular indices (one
    erfc sweep over the surviving separations, scatter-added back) — the
    HACC short-range kernel recast as array sweeps.
    ``vectorized=False`` is the original per-pair Python loop, kept as
    the ablation the benchmark measures against.
    """
    cutoff = cutoff if cutoff is not None else 5.0 * rs
    n = len(x)
    if not vectorized:
        forces = np.zeros_like(x)
        for i in range(n):
            for j in range(i + 1, n):
                d = x[j] - x[i]
                d -= box_size * np.round(d / box_size)
                r = float(np.linalg.norm(d))
                if r >= cutoff or r == 0.0:
                    continue
                fmag = masses[i] * masses[j] * short_range_pair_force(r, rs, G=G)
                fvec = fmag * d / r
                forces[i] += fvec
                forces[j] -= fvec
        return forces
    return resolve_backend(backend).pairwise_forces(
        x, masses, G=G, rs=rs, cutoff=cutoff, box_size=box_size)


def p3m_forces(x: np.ndarray, masses: np.ndarray, grid: PMGrid, *,
               G: float = 1.0, r_split: float | None = None,
               vectorized: bool = True,
               backend: "str | ArrayBackend | None" = None) -> np.ndarray:
    """Total gravity: mesh long-range + direct short-range."""
    rs = r_split if r_split is not None else 1.5 * grid.cell
    return (
        long_range_forces(x, masses, grid, G=G, r_split=rs)
        + short_range_forces(x, masses, grid.box_size, rs=rs, G=G,
                             vectorized=vectorized, backend=backend)
    )


def direct_forces(x: np.ndarray, masses: np.ndarray, *, G: float = 1.0,
                  vectorized: bool = True,
                  backend: "str | ArrayBackend | None" = None) -> np.ndarray:
    """Open-boundary direct sum (reference for isolated configurations).

    Same backend-dispatched triangular broadcasting as
    :func:`short_range_forces` (no splitting filter, no cutoff);
    ``vectorized=False`` keeps the naive pair loop for ablation.
    """
    n = len(x)
    if not vectorized:
        forces = np.zeros_like(x)
        for i in range(n):
            for j in range(i + 1, n):
                d = x[j] - x[i]
                r = float(np.linalg.norm(d))
                if r == 0.0:
                    continue
                fvec = G * masses[i] * masses[j] * d / r**3
                forces[i] += fvec
                forces[j] -= fvec
        return forces
    return resolve_backend(backend).pairwise_forces(x, masses, G=G)
