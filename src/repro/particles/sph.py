"""SPH hydrodynamics: HACC's hydro capability (§3.4's simulation classes
(2) and (3) are "hydrodynamic simulations").

HACC's CRK-SPH solver adds smoothed-particle hydrodynamics on top of the
gravity core.  We implement the standard cubic-spline SPH with density
summation, equation of state, and the symmetric pressure-gradient force —
real particle physics, testable: uniform lattices recover the analytic
density, forces are antisymmetric (momentum conserving), and pressure
gradients point from high to low density.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def cubic_spline_kernel(r: np.ndarray, h: float) -> np.ndarray:
    """The M4 cubic spline W(r, h) in 3-D (normalization 8/(π h³))."""
    if h <= 0:
        raise ValueError("smoothing length must be positive")
    q = np.asarray(r, dtype=float) / h
    sigma = 8.0 / (np.pi * h**3)
    w = np.zeros_like(q)
    inner = q <= 0.5
    mid = (q > 0.5) & (q <= 1.0)
    w[inner] = 1.0 - 6.0 * q[inner] ** 2 + 6.0 * q[inner] ** 3
    w[mid] = 2.0 * (1.0 - q[mid]) ** 3
    return sigma * w


def cubic_spline_gradient_mag(r: np.ndarray, h: float) -> np.ndarray:
    """|dW/dr| of the cubic spline (positive magnitude)."""
    q = np.asarray(r, dtype=float) / h
    sigma = 8.0 / (np.pi * h**3)
    dw = np.zeros_like(q)
    inner = q <= 0.5
    mid = (q > 0.5) & (q <= 1.0)
    dw[inner] = (-12.0 * q[inner] + 18.0 * q[inner] ** 2) / h
    dw[mid] = -6.0 * (1.0 - q[mid]) ** 2 / h
    return sigma * np.abs(dw)


def sph_density(x: np.ndarray, masses: np.ndarray, h: float, *,
                box_size: float | None = None) -> np.ndarray:
    """Density summation ρᵢ = Σⱼ mⱼ W(|xᵢ−xⱼ|, h) (self term included)."""
    n = len(x)
    rho = np.zeros(n)
    for i in range(n):
        d = x - x[i]
        if box_size is not None:
            d -= box_size * np.round(d / box_size)
        r = np.linalg.norm(d, axis=1)
        rho[i] = float(np.sum(masses * cubic_spline_kernel(r, h)))
    return rho


@dataclass(frozen=True)
class EquationOfState:
    """Polytropic EOS  P = K ρ^γ  (γ=5/3 for ideal monatomic gas)."""

    K: float = 1.0
    gamma: float = 5.0 / 3.0

    def pressure(self, rho: np.ndarray) -> np.ndarray:
        return self.K * np.asarray(rho) ** self.gamma

    def sound_speed(self, rho: np.ndarray) -> np.ndarray:
        return np.sqrt(self.gamma * self.pressure(rho) / np.asarray(rho))


def sph_pressure_forces(x: np.ndarray, masses: np.ndarray, h: float,
                        eos: EquationOfState = EquationOfState(), *,
                        box_size: float | None = None) -> np.ndarray:
    """Symmetric SPH pressure force
    Fᵢ = −mᵢ Σⱼ mⱼ (Pᵢ/ρᵢ² + Pⱼ/ρⱼ²) ∇W(rᵢⱼ).

    The (i,j)-symmetric form conserves momentum exactly, which the tests
    assert.
    """
    n = len(x)
    rho = sph_density(x, masses, h, box_size=box_size)
    p = eos.pressure(rho)
    forces = np.zeros_like(x)
    for i in range(n):
        for j in range(i + 1, n):
            d = x[j] - x[i]
            if box_size is not None:
                d -= box_size * np.round(d / box_size)
            r = float(np.linalg.norm(d))
            if r == 0.0 or r > h:
                continue
            grad_mag = float(cubic_spline_gradient_mag(np.array([r]), h)[0])
            coef = masses[i] * masses[j] * (
                p[i] / rho[i] ** 2 + p[j] / rho[j] ** 2
            ) * grad_mag
            unit = d / r
            # pressure pushes particles apart: force on i along -d
            forces[i] -= coef * unit
            forces[j] += coef * unit
    return forces


def uniform_lattice(n_per_side: int, spacing: float) -> tuple[np.ndarray, float]:
    """A periodic cubic particle lattice; returns (positions, box_size)."""
    if n_per_side < 2:
        raise ValueError("need at least 2 per side")
    grid = np.stack(
        np.meshgrid(*(np.arange(n_per_side),) * 3, indexing="ij"), axis=-1
    ).reshape(-1, 3).astype(float)
    return grid * spacing, n_per_side * spacing
