"""Programming-model layers: CUDA, HIP, hipify, OpenMP offload, Kokkos, YAKL."""

from repro.progmodel.abstraction import DeviceLayer, make_device_layer
from repro.progmodel.api import GpuApiError, GpuRuntime, MemHandle
from repro.progmodel.cuda import CudaRuntime
from repro.progmodel.hip import (
    UNSUPPORTED_CUDA_FEATURES,
    HipRuntime,
    HipUnsupportedFeature,
)
from repro.progmodel.hipify import Diagnostic, HipifyResult, hipify, hipify_strict
from repro.progmodel.macro_layer import MacroLayer, MissingApiParity
from repro.progmodel.openmp import (
    OPENMP_KERNEL_DERATE,
    MapKind,
    MotionLedger,
    OpenMPDevice,
    OpenMPTargetError,
    TargetDataRegion,
)

__all__ = [
    "split_unit",
    "build",
    "Toolchain",
    "Model",
    "EARLY_ROCM",
    "CompilationUnit",
    "CRUSHER_ROCM",
    "BuildResult",
    "BuildError",
    "OpenACCError",
    "OpenACCDevice",
    "AccDataRegion",
    "OPENACC_KERNEL_DERATE",
    "CudaRuntime",
    "DeviceLayer",
    "Diagnostic",
    "GpuApiError",
    "GpuRuntime",
    "HipRuntime",
    "HipUnsupportedFeature",
    "HipifyResult",
    "MacroLayer",
    "MapKind",
    "MemHandle",
    "MissingApiParity",
    "MotionLedger",
    "OPENMP_KERNEL_DERATE",
    "OpenMPDevice",
    "OpenMPTargetError",
    "TargetDataRegion",
    "UNSUPPORTED_CUDA_FEATURES",
    "hipify",
    "hipify_strict",
    "make_device_layer",
]
from repro.progmodel.openacc import OPENACC_KERNEL_DERATE, AccDataRegion, OpenACCDevice, OpenACCError
from repro.progmodel.buildsys import (
    CRUSHER_ROCM,
    EARLY_ROCM,
    BuildError,
    BuildResult,
    CompilationUnit,
    Model,
    Toolchain,
    build,
    split_unit,
)
