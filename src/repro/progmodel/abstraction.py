"""COAST-style thin device-abstraction layer (§3.9).

"The code relies on a thin layer of abstraction that defines functions like
``set_device()`` and ``device_stream_create()``, and delegates execution to
``cudaSetDevice()``/``cudaStreamCreate()`` or ``hipSetDevice()``/
``hipStreamCreate()`` depending on the compile-time configuration."

:func:`make_device_layer` is exactly that: given a compile-time backend
name it returns a namespace of generic functions bound to the right
runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.gpu.stream import Event, Stream
from repro.hardware.gpu import MI250X_GCD, V100, GPUSpec
from repro.progmodel.api import MemHandle
from repro.progmodel.cuda import CudaRuntime
from repro.progmodel.hip import HipRuntime


@dataclass(frozen=True)
class DeviceLayer:
    """The thin abstraction: generic names bound at 'compile time'."""

    backend: str
    runtime: CudaRuntime | HipRuntime
    set_device: Callable[[int], None]
    device_malloc: Callable[..., MemHandle]
    device_free: Callable[[MemHandle], None]
    device_stream_create: Callable[[], Stream]
    device_stream_synchronize: Callable[[Stream], None]
    device_event_create: Callable[[], Event]
    device_launch: Callable[..., object]
    device_synchronize: Callable[[], None]

    @property
    def elapsed(self) -> float:
        return self.runtime.elapsed


def make_device_layer(backend: str, specs: list[GPUSpec] | GPUSpec | None = None,
                      *, count: int | None = None) -> DeviceLayer:
    """Bind the generic layer to a backend ("cuda" or "hip")."""
    if backend == "cuda":
        rt: CudaRuntime | HipRuntime = CudaRuntime(specs if specs is not None else V100, count=count)
        return DeviceLayer(
            backend="cuda",
            runtime=rt,
            set_device=rt.cudaSetDevice,
            device_malloc=rt.cudaMalloc,
            device_free=rt.cudaFree,
            device_stream_create=rt.cudaStreamCreate,
            device_stream_synchronize=rt.cudaStreamSynchronize,
            device_event_create=rt.cudaEventCreate,
            device_launch=rt.cudaLaunchKernel,
            device_synchronize=rt.cudaDeviceSynchronize,
        )
    if backend == "hip":
        rt = HipRuntime(specs if specs is not None else MI250X_GCD, count=count)
        return DeviceLayer(
            backend="hip",
            runtime=rt,
            set_device=rt.hipSetDevice,
            device_malloc=rt.hipMalloc,
            device_free=rt.hipFree,
            device_stream_create=rt.hipStreamCreate,
            device_stream_synchronize=rt.hipStreamSynchronize,
            device_event_create=rt.hipEventCreate,
            device_launch=rt.hipLaunchKernel,
            device_synchronize=rt.hipDeviceSynchronize,
        )
    raise ValueError(f"unknown backend {backend!r}; expected 'cuda' or 'hip'")
