"""Shared GPU runtime API that both the CUDA and HIP facades delegate to.

In reality HIP is a thin portability layer: on NVIDIA targets it is a
header-only shim over the CUDA runtime, and on AMD targets it is the native
ROCm entry point.  We model that structure directly — a single
:class:`GpuRuntime` engine, with :class:`repro.progmodel.cuda.CudaRuntime`
and :class:`repro.progmodel.hip.HipRuntime` exposing vendor-spelled entry
points plus a per-call wrapper overhead.  Figure 1's "HIP ≈ 99.8 % of CUDA"
then follows from the wrapper overhead being small compared with kernel
runtimes, exactly the paper's explanation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.gpu.device import Device
from repro.gpu.kernel import KernelSpec
from repro.gpu.memory import Allocation
from repro.gpu.stream import Event, Stream
from repro.hardware.gpu import GPUSpec


class GpuApiError(RuntimeError):
    """Invalid use of the runtime API (bad handle, wrong device, ...)."""


@dataclass(frozen=True)
class MemHandle:
    """Opaque device-pointer handle returned by ``malloc``."""

    device_id: int
    allocation: Allocation
    nbytes: int


class GpuRuntime:
    """A process-wide view of one node's GPUs, with a current-device cursor.

    ``api_overhead`` is added to host time on every API call; vendor
    facades set it (0 for native CUDA, a small epsilon for HIP's wrapper).
    """

    api_overhead: float = 0.0

    def __init__(self, specs: list[GPUSpec] | GPUSpec, *, count: int | None = None) -> None:
        if isinstance(specs, GPUSpec):
            specs = [specs] * (count or 1)
        if not specs:
            raise GpuApiError("a runtime needs at least one device")
        self.devices = [Device(s, device_id=i) for i, s in enumerate(specs)]
        self._current = 0
        self.api_calls = 0
        self._handles: set[int] = set()
        self._handle_ids = itertools.count()

    # -- bookkeeping ---------------------------------------------------------

    def _tick(self) -> None:
        self.api_calls += 1
        if self.api_overhead:
            self.current_device.clock.host_busy(self.api_overhead)

    @property
    def current_device(self) -> Device:
        return self.devices[self._current]

    # -- device management -----------------------------------------------------

    def set_device(self, device_id: int) -> None:
        if not 0 <= device_id < len(self.devices):
            raise GpuApiError(f"no device {device_id} (have {len(self.devices)})")
        self._current = device_id
        self._tick()

    def get_device(self) -> int:
        self._tick()
        return self._current

    def get_device_count(self) -> int:
        self._tick()
        return len(self.devices)

    # -- memory ------------------------------------------------------------------

    def malloc(self, nbytes: int, *, tag: str = "") -> MemHandle:
        self._tick()
        alloc = self.current_device.malloc(nbytes, tag=tag)
        return MemHandle(device_id=self._current, allocation=alloc, nbytes=nbytes)

    def free(self, handle: MemHandle) -> None:
        self._tick()
        self.devices[handle.device_id].free(handle.allocation)

    def memcpy_h2d(self, handle: MemHandle, nbytes: int | None = None, *,
                   stream: Stream | None = None, sync: bool = True) -> float:
        self._tick()
        n = handle.nbytes if nbytes is None else nbytes
        if n > handle.nbytes:
            raise GpuApiError(f"copy of {n} bytes into a {handle.nbytes}-byte buffer")
        return self.devices[handle.device_id].memcpy_h2d(n, stream=stream, sync=sync)

    def memcpy_d2h(self, handle: MemHandle, nbytes: int | None = None, *,
                   stream: Stream | None = None, sync: bool = True) -> float:
        self._tick()
        n = handle.nbytes if nbytes is None else nbytes
        if n > handle.nbytes:
            raise GpuApiError(f"copy of {n} bytes out of a {handle.nbytes}-byte buffer")
        return self.devices[handle.device_id].memcpy_d2h(n, stream=stream, sync=sync)

    # -- execution ---------------------------------------------------------------

    def launch_kernel(self, kernel: KernelSpec, *, stream: Stream | None = None):
        self._tick()
        return self.current_device.launch(kernel, stream=stream)

    def launch_kernel_sync(self, kernel: KernelSpec, *, stream: Stream | None = None):
        self._tick()
        return self.current_device.launch_sync(kernel, stream=stream)

    # -- streams & events ------------------------------------------------------

    def stream_create(self) -> Stream:
        self._tick()
        return self.current_device.create_stream()

    def stream_synchronize(self, stream: Stream) -> None:
        self._tick()
        self.current_device.clock.synchronize_stream(stream)

    def event_create(self) -> Event:
        self._tick()
        return self.current_device.create_event()

    def event_record(self, event: Event, stream: Stream | None = None) -> None:
        self._tick()
        s = stream or self.current_device.default_stream
        s.record_event(event)

    def event_synchronize(self, event: Event) -> None:
        self._tick()
        self.current_device.clock.synchronize_event(event)

    def event_elapsed_time(self, start: Event, end: Event) -> float:
        """Elapsed device time between two recorded events, in seconds."""
        self._tick()
        if not (start.recorded and end.recorded):
            raise GpuApiError("both events must be recorded")
        assert start.timestamp is not None and end.timestamp is not None
        return end.timestamp - start.timestamp

    def device_synchronize(self) -> None:
        self._tick()
        self.current_device.synchronize()

    # -- results --------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Host wall time on the current device's clock."""
        return self.current_device.elapsed

    def total_elapsed(self) -> float:
        """Max host wall time across all devices."""
        return max(d.elapsed for d in self.devices)
