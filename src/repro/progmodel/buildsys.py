"""Build-system compatibility modelling: the HIP+OpenMP story of §3.4.

"Running HACC on the early access systems Poplar and Tulip identified a
challenge in using both HIP and OpenMP together ... early compiler
offerings didn't offer full support for both HIP and OpenMP in the same
compilation unit.  Developing general guidelines for building with both
HIP and OpenMP on COE machines was a codesign effort across the code
team, hardware vendor, and system integrator."

:class:`Toolchain` models compiler generations; :class:`CompilationUnit`
declares the models a translation unit uses; :func:`build` either
succeeds, fails with the early-compiler diagnostic, or succeeds under the
codesign guideline (split units + link-time combination).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Model(enum.Enum):
    HIP = "hip"
    OPENMP_OFFLOAD = "openmp-offload"
    OPENMP_HOST = "openmp-host"
    SEQUENTIAL = "sequential"


@dataclass(frozen=True)
class Toolchain:
    """One compiler generation on the early-access ladder."""

    name: str
    #: model combinations supported within ONE compilation unit
    mixed_hip_openmp_units: bool

    def supports_unit(self, unit: "CompilationUnit") -> bool:
        models = unit.models
        if Model.HIP in models and Model.OPENMP_OFFLOAD in models:
            return self.mixed_hip_openmp_units
        return True


#: The §3.4 progression: early ROCm toolchains could not mix; later could.
EARLY_ROCM = Toolchain(name="rocm-3.x (Poplar/Tulip era)",
                       mixed_hip_openmp_units=False)
CRUSHER_ROCM = Toolchain(name="rocm-5.x (Crusher/Frontier era)",
                         mixed_hip_openmp_units=True)


@dataclass(frozen=True)
class CompilationUnit:
    """A translation unit and the programming models it uses."""

    name: str
    models: frozenset[Model]

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError(f"unit {self.name!r} declares no models")


class BuildError(RuntimeError):
    """Compilation failed; carries the COE guideline in its message."""


@dataclass
class BuildResult:
    units: tuple[CompilationUnit, ...]
    toolchain: Toolchain
    split_applied: bool = False

    @property
    def ok(self) -> bool:
        return True


def split_unit(unit: CompilationUnit) -> list[CompilationUnit]:
    """The codesign guideline: separate HIP and OpenMP into distinct
    translation units combined at link time."""
    if not {Model.HIP, Model.OPENMP_OFFLOAD} <= unit.models:
        return [unit]
    rest = frozenset(unit.models - {Model.HIP, Model.OPENMP_OFFLOAD})
    return [
        CompilationUnit(name=f"{unit.name}_hip",
                        models=frozenset({Model.HIP}) | rest),
        CompilationUnit(name=f"{unit.name}_omp",
                        models=frozenset({Model.OPENMP_OFFLOAD}) | rest),
    ]


def build(units: list[CompilationUnit], toolchain: Toolchain, *,
          apply_guideline: bool = False) -> BuildResult:
    """Attempt to build *units* with *toolchain*.

    With ``apply_guideline`` the §3.4 codesign workaround splits offending
    units; without it, early toolchains fail with the historical
    diagnostic.
    """
    if not units:
        raise ValueError("nothing to build")
    final_units: list[CompilationUnit] = []
    split = False
    for u in units:
        if toolchain.supports_unit(u):
            final_units.append(u)
        elif apply_guideline:
            final_units.extend(split_unit(u))
            split = True
        else:
            raise BuildError(
                f"{toolchain.name}: cannot compile {u.name!r} — HIP and "
                "OpenMP offload in one compilation unit is unsupported; "
                "COE guideline: split into separate units and combine at "
                "link time"
            )
    return BuildResult(units=tuple(final_units), toolchain=toolchain,
                       split_applied=split)
