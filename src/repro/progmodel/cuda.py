"""CUDA-spelled runtime facade.

Exposes the subset of the CUDA runtime API the paper's applications use,
delegating to :class:`repro.progmodel.api.GpuRuntime`.  Method names follow
the C API so that application "source" written against this facade can be
mechanically translated by :mod:`repro.progmodel.hipify`.
"""

from __future__ import annotations

from repro.gpu.kernel import KernelSpec
from repro.gpu.stream import Event, Stream
from repro.hardware.gpu import V100, GPUSpec, GPUVendor
from repro.progmodel.api import GpuApiError, GpuRuntime, MemHandle


class CudaRuntime(GpuRuntime):
    """The native CUDA runtime on NVIDIA devices: zero wrapper overhead."""

    api_overhead = 0.0

    def __init__(self, specs: list[GPUSpec] | GPUSpec = V100, *, count: int | None = None) -> None:
        super().__init__(specs, count=count)
        for d in self.devices:
            if d.spec.vendor is not GPUVendor.NVIDIA:
                raise GpuApiError(
                    f"CUDA runtime cannot drive {d.spec.name}; use HIP for AMD devices"
                )

    # Device management -------------------------------------------------------
    def cudaSetDevice(self, device_id: int) -> None:  # noqa: N802 (C API names)
        self.set_device(device_id)

    def cudaGetDevice(self) -> int:  # noqa: N802
        return self.get_device()

    def cudaGetDeviceCount(self) -> int:  # noqa: N802
        return self.get_device_count()

    # Memory --------------------------------------------------------------------
    def cudaMalloc(self, nbytes: int, *, tag: str = "") -> MemHandle:  # noqa: N802
        return self.malloc(nbytes, tag=tag)

    def cudaFree(self, handle: MemHandle) -> None:  # noqa: N802
        self.free(handle)

    def cudaMemcpyHostToDevice(self, handle: MemHandle, nbytes: int | None = None) -> float:  # noqa: N802
        return self.memcpy_h2d(handle, nbytes)

    def cudaMemcpyDeviceToHost(self, handle: MemHandle, nbytes: int | None = None) -> float:  # noqa: N802
        return self.memcpy_d2h(handle, nbytes)

    def cudaMemcpyAsync(self, handle: MemHandle, nbytes: int | None = None, *,
                        direction: str = "h2d", stream: Stream | None = None) -> float:  # noqa: N802
        if direction == "h2d":
            return self.memcpy_h2d(handle, nbytes, stream=stream, sync=False)
        if direction == "d2h":
            return self.memcpy_d2h(handle, nbytes, stream=stream, sync=False)
        raise GpuApiError(f"unknown memcpy direction {direction!r}")

    # Execution ------------------------------------------------------------------
    def cudaLaunchKernel(self, kernel: KernelSpec, *, stream: Stream | None = None):  # noqa: N802
        return self.launch_kernel(kernel, stream=stream)

    # Streams & events -----------------------------------------------------------
    def cudaStreamCreate(self) -> Stream:  # noqa: N802
        return self.stream_create()

    def cudaStreamSynchronize(self, stream: Stream) -> None:  # noqa: N802
        self.stream_synchronize(stream)

    def cudaEventCreate(self) -> Event:  # noqa: N802
        return self.event_create()

    def cudaEventRecord(self, event: Event, stream: Stream | None = None) -> None:  # noqa: N802
        self.event_record(event, stream)

    def cudaEventSynchronize(self, event: Event) -> None:  # noqa: N802
        self.event_synchronize(event)

    def cudaEventElapsedTime(self, start: Event, end: Event) -> float:  # noqa: N802
        """Milliseconds, matching the CUDA API convention."""
        return 1e3 * self.event_elapsed_time(start, end)

    def cudaDeviceSynchronize(self) -> None:  # noqa: N802
        self.device_synchronize()
