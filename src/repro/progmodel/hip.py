"""HIP-spelled runtime facade.

On AMD devices this is the native entry point; on NVIDIA devices HIP is a
header-only shim over CUDA, so the wrapper overhead is essentially zero and
compiled programs *are* CUDA programs — the structural reason Figure 1
shows HIP within a fraction of a percent of CUDA.

§2.1 also warns that not every (latest) CUDA feature exists in HIP.  The
facade enforces an explicit unsupported-feature list so programs relying on
them fail loudly with the same guidance the COE gave users.
"""

from __future__ import annotations

from repro.gpu.kernel import KernelSpec
from repro.gpu.stream import Event, Stream
from repro.hardware.gpu import MI250X_GCD, GPUSpec, GPUVendor
from repro.progmodel.api import GpuApiError, GpuRuntime, MemHandle


class HipUnsupportedFeature(GpuApiError):
    """A CUDA feature HIP does not replicate (see §2.1)."""


#: CUDA features without a HIP equivalent at the ROCm versions the COE
#: supported, with the guidance message users received.
UNSUPPORTED_CUDA_FEATURES: dict[str, str] = {
    "cudaGraphInstantiate": "CUDA graphs: restructure around streams/events",
    "cudaGraphLaunch": "CUDA graphs: restructure around streams/events",
    "cudaLaunchCooperativeKernel": "grid-wide sync: split the kernel at the sync point",
    "cuTensorMapEncodeTiled": "TMA is Hopper-specific hardware",
    "cudaMemAdvise_ReadMostly": "fine-grained UVM hints: use explicit prefetch",
}


class HipRuntime(GpuRuntime):
    """HIP runtime driving AMD (native) or NVIDIA (header shim) devices."""

    #: Per-call wrapper cost when HIP sits on top of CUDA.  Header-only
    #: inlining makes this tens of nanoseconds; on AMD it is the native
    #: path and also ~0, but early ROCm launch latency is carried in the
    #: GPUSpec itself.
    api_overhead = 5e-8

    def __init__(self, specs: list[GPUSpec] | GPUSpec = MI250X_GCD, *, count: int | None = None) -> None:
        super().__init__(specs, count=count)
        self.backend = (
            "rocm" if self.devices[0].spec.vendor is GPUVendor.AMD else "cuda-shim"
        )

    def require_feature(self, feature: str) -> None:
        """Raise :class:`HipUnsupportedFeature` for unreplicated CUDA features."""
        if feature in UNSUPPORTED_CUDA_FEATURES:
            raise HipUnsupportedFeature(
                f"{feature} is not provided by HIP: {UNSUPPORTED_CUDA_FEATURES[feature]}"
            )

    # Device management -------------------------------------------------------
    def hipSetDevice(self, device_id: int) -> None:  # noqa: N802 (C API names)
        self.set_device(device_id)

    def hipGetDevice(self) -> int:  # noqa: N802
        return self.get_device()

    def hipGetDeviceCount(self) -> int:  # noqa: N802
        return self.get_device_count()

    # Memory --------------------------------------------------------------------
    def hipMalloc(self, nbytes: int, *, tag: str = "") -> MemHandle:  # noqa: N802
        return self.malloc(nbytes, tag=tag)

    def hipFree(self, handle: MemHandle) -> None:  # noqa: N802
        self.free(handle)

    def hipMemcpyHostToDevice(self, handle: MemHandle, nbytes: int | None = None) -> float:  # noqa: N802
        return self.memcpy_h2d(handle, nbytes)

    def hipMemcpyDeviceToHost(self, handle: MemHandle, nbytes: int | None = None) -> float:  # noqa: N802
        return self.memcpy_d2h(handle, nbytes)

    def hipMemcpyAsync(self, handle: MemHandle, nbytes: int | None = None, *,
                       direction: str = "h2d", stream: Stream | None = None) -> float:  # noqa: N802
        if direction == "h2d":
            return self.memcpy_h2d(handle, nbytes, stream=stream, sync=False)
        if direction == "d2h":
            return self.memcpy_d2h(handle, nbytes, stream=stream, sync=False)
        raise GpuApiError(f"unknown memcpy direction {direction!r}")

    # Execution ------------------------------------------------------------------
    def hipLaunchKernel(self, kernel: KernelSpec, *, stream: Stream | None = None):  # noqa: N802
        return self.launch_kernel(kernel, stream=stream)

    # Streams & events -----------------------------------------------------------
    def hipStreamCreate(self) -> Stream:  # noqa: N802
        return self.stream_create()

    def hipStreamSynchronize(self, stream: Stream) -> None:  # noqa: N802
        self.stream_synchronize(stream)

    def hipEventCreate(self) -> Event:  # noqa: N802
        return self.event_create()

    def hipEventRecord(self, event: Event, stream: Stream | None = None) -> None:  # noqa: N802
        self.event_record(event, stream)

    def hipEventSynchronize(self, event: Event) -> None:  # noqa: N802
        self.event_synchronize(event)

    def hipEventElapsedTime(self, start: Event, end: Event) -> float:  # noqa: N802
        """Milliseconds, matching the HIP API convention."""
        return 1e3 * self.event_elapsed_time(start, end)

    def hipDeviceSynchronize(self) -> None:  # noqa: N802
        self.device_synchronize()
