"""``hipify``: a source-to-source CUDA→HIP translator.

This is a working re-implementation of the tool's behaviour as used by the
OLCF evaluation in §2.1: it converts the bulk of CUDA API spellings
mechanically, maps the vendor math libraries to their ROCm counterparts,
and flags *outdated* CUDA constructs it cannot convert — the paper notes
old syntax was "the primary exception" requiring hand porting.

The translator works on text, so it converts both the Python-level
benchmark sources in :mod:`repro.benchsuite.shoc` and arbitrary CUDA-ish
snippets used in tests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: Exact-name replacements applied before the generic ``cuda[A-Z]`` rule.
#: Covers deprecated spellings (converted, but reported) and library names.
SPECIAL_RULES: dict[str, str] = {
    # deprecated "thread" API: converted to the device-level modern form
    "cudaThreadSynchronize": "hipDeviceSynchronize",
    "cudaThreadExit": "hipDeviceReset",
    # driver-API types
    "CUdeviceptr": "hipDeviceptr_t",
    "CUcontext": "hipCtx_t",
    "CUstream": "hipStream_t",
    "CUevent": "hipEvent_t",
    # libraries
    "cublasHandle_t": "hipblasHandle_t",
    "cublasCreate": "hipblasCreate",
    "cublasDestroy": "hipblasDestroy",
    "cublasDgemm": "hipblasDgemm",
    "cublasSgemm": "hipblasSgemm",
    "cublasZgemm": "hipblasZgemm",
    "cufftHandle": "hipfftHandle",
    "cufftPlan1d": "hipfftPlan1d",
    "cufftPlan3d": "hipfftPlan3d",
    "cufftExecZ2Z": "hipfftExecZ2Z",
    "cufftExecD2Z": "hipfftExecD2Z",
    "cufftDestroy": "hipfftDestroy",
    "curandGenerator_t": "hiprandGenerator_t",
    "curandCreateGenerator": "hiprandCreateGenerator",
    "cusparseHandle_t": "hipsparseHandle_t",
    "cusolverDnHandle_t": "hipsolverHandle_t",
    "cub::": "hipcub::",
    "nvToolsExt": "roctx",
    # headers
    "cuda_runtime.h": "hip/hip_runtime.h",
    "cublas_v2.h": "hipblas.h",
    "cufft.h": "hipfft.h",
}

#: Outdated / unconvertible constructs: pattern -> diagnostic message.
#: These correspond to the "outdated CUDA syntax" §2.1 says required manual
#: intervention.
OUTDATED_PATTERNS: dict[str, str] = {
    r"\btexture\s*<": "texture references were removed in CUDA 12; rewrite with texture objects",
    r"\bcudaBindTexture\b": "texture references were removed in CUDA 12; rewrite with texture objects",
    r"\b__shfl\s*\(": "pre-Kepler __shfl without _sync suffix; use __shfl_sync",
    r"\bcudaMemcpyToSymbol\s*\(\s*\"": "string-named symbols are pre-CUDA-5 syntax",
    r"\bcutil\w*\b": "cutil helpers were never part of the toolkit; inline the code",
    r"\bcudaGraph\w*\b": "CUDA graphs have no HIP equivalent at supported ROCm versions",
}

_GENERIC_RUNTIME = re.compile(r"\bcuda([A-Z]\w*)")
_KERNEL_LAUNCH = re.compile(r"(\w+)\s*<<<\s*([^,>]+)\s*,\s*([^,>]+)\s*(?:,\s*([^,>]+)\s*)?(?:,\s*([^>]+)\s*)?>>>\s*\(")


@dataclass
class Diagnostic:
    """One hipify warning tied to a source line."""

    line: int
    pattern: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"line {self.line}: {self.message}"


@dataclass
class HipifyResult:
    """Outcome of translating one source file."""

    source: str
    translated: str
    substitutions: int
    converted_identifiers: dict[str, str] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no manual intervention is required."""
        return not self.diagnostics

    @property
    def automatic_fraction(self) -> float:
        """Fraction of CUDA references converted automatically."""
        total = self.substitutions + len(self.diagnostics)
        return 1.0 if total == 0 else self.substitutions / total


def _convert_kernel_launch(text: str) -> tuple[str, int]:
    """Rewrite ``kernel<<<grid, block, shmem, stream>>>(args`` as
    ``hipLaunchKernelGGL(kernel, grid, block, shmem, stream, args``."""
    count = 0

    def repl(m: re.Match[str]) -> str:
        nonlocal count
        count += 1
        name, grid, block, shmem, stream = m.groups()
        shmem = (shmem or "0").strip()
        stream = (stream or "0").strip()
        return f"hipLaunchKernelGGL({name}, {grid.strip()}, {block.strip()}, {shmem}, {stream}, "

    return _KERNEL_LAUNCH.sub(repl, text), count


def hipify(source: str) -> HipifyResult:
    """Translate CUDA *source* text to HIP.

    Returns a :class:`HipifyResult` carrying the translated text, the
    conversion ledger, and diagnostics for constructs needing hand-porting
    (which are left untouched in the output, as the real tool does).
    """
    diagnostics: list[Diagnostic] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        for pattern, message in OUTDATED_PATTERNS.items():
            if re.search(pattern, line):
                diagnostics.append(Diagnostic(line=lineno, pattern=pattern, message=message))

    converted: dict[str, str] = {}
    text = source
    subs = 0

    # Kernel-launch chevrons first (they contain no API names).
    text, n = _convert_kernel_launch(text)
    if n:
        subs += n
        converted["<<< >>>"] = "hipLaunchKernelGGL"

    # Exact special rules, longest first so prefixes do not shadow.
    for old in sorted(SPECIAL_RULES, key=len, reverse=True):
        new = SPECIAL_RULES[old]
        pattern = re.escape(old)
        if not old.endswith("::") and not old.endswith(".h"):
            pattern = r"\b" + pattern + r"\b"
        text, n = re.subn(pattern, new, text)
        if n:
            subs += n
            converted[old] = new

    # Generic rule: cudaXxx -> hipXxx.  cudaGraph* stays untouched — it was
    # flagged as unconvertible above.
    def generic(m: re.Match[str]) -> str:
        nonlocal subs
        name = m.group(0)
        if name.startswith("cudaGraph"):
            return name
        subs += 1
        new = "hip" + m.group(1)
        converted[name] = new
        return new

    text = _GENERIC_RUNTIME.sub(generic, text)

    return HipifyResult(
        source=source,
        translated=text,
        substitutions=subs,
        converted_identifiers=converted,
        diagnostics=diagnostics,
    )


def hipify_strict(source: str) -> str:
    """Translate and raise if any construct requires manual porting."""
    result = hipify(source)
    if not result.clean:
        msgs = "; ".join(str(d) for d in result.diagnostics)
        raise ValueError(f"hipify requires manual intervention: {msgs}")
    return result.translated
