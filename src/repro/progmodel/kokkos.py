"""A miniature Kokkos: execution/memory spaces, Views, parallel dispatch.

The subset used by the paper's applications (E3SM, LAMMPS, Pele-by-analogy):

* memory spaces (``HostSpace`` / ``DeviceSpace``) holding real numpy data;
* ``View`` — a named, space-tagged multidimensional array;
* ``deep_copy`` between spaces, charged as real H2D/D2H transfer time;
* ``parallel_for`` / ``parallel_reduce`` executing a genuine Python functor
  over an index range (so results are bit-real) while charging device time
  from an optional :class:`~repro.gpu.kernel.KernelSpec` cost descriptor;
* the LargeBAR-style trick from §3.10.1: ``HostPinnedSpace`` Views can be
  run on *either* host or device backends with the same allocation,
  enabling the fine-grained CPU-vs-GPU validation that cracked the
  register-spill bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.gpu.device import Device
from repro.gpu.kernel import KernelSpec
from repro.gpu.transfer import d2h_time, h2d_time
from repro.hardware.gpu import GPUSpec


class KokkosError(RuntimeError):
    pass


@dataclass(frozen=True)
class MemorySpace:
    """A Kokkos memory space tag."""

    name: str
    on_device: bool
    host_accessible: bool


HostSpace = MemorySpace(name="HostSpace", on_device=False, host_accessible=True)
DeviceSpace = MemorySpace(name="DeviceSpace", on_device=True, host_accessible=False)
#: Device memory directly readable from the host over LargeBAR (§3.10.1);
#: device-resident but host-accessible at a latency penalty.
HostPinnedSpace = MemorySpace(name="HostPinnedSpace", on_device=True, host_accessible=True)


class View:
    """A named array in a memory space; data is always real numpy."""

    def __init__(self, name: str, shape: tuple[int, ...] | int,
                 space: MemorySpace = HostSpace, dtype: Any = np.float64) -> None:
        if isinstance(shape, int):
            shape = (shape,)
        self.name = name
        self.space = space
        self.data = np.zeros(shape, dtype=dtype)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __getitem__(self, idx):
        return self.data[idx]

    def __setitem__(self, idx, value) -> None:
        self.data[idx] = value

    def mirror_view(self, space: MemorySpace) -> "View":
        """An uninitialized View of the same shape in another space."""
        return View(f"{self.name}::mirror", self.data.shape, space, self.data.dtype)


class ExecutionSpace:
    """Base execution space: runs functors, charges simulated time."""

    name = "Serial"
    concurrency = 1

    def __init__(self) -> None:
        self.fence_count = 0

    def accessible(self, space: MemorySpace) -> bool:
        return space.host_accessible

    def charge(self, kernel: KernelSpec | None, n: int) -> None:  # pragma: no cover
        """Account the cost of one dispatch; serial host time is implicit."""

    def fence(self) -> None:
        self.fence_count += 1


class Serial(ExecutionSpace):
    """Host serial backend."""


class DeviceExec(ExecutionSpace):
    """GPU backend over a simulated device (CUDA or HIP flavoured)."""

    name = "Device"

    def __init__(self, spec: GPUSpec) -> None:
        super().__init__()
        self.device = Device(spec)
        self.concurrency = spec.compute_units * spec.wavefront_size

    def accessible(self, space: MemorySpace) -> bool:
        return space.on_device

    def charge(self, kernel: KernelSpec | None, n: int) -> None:
        if kernel is None:
            # Generic estimate: one fused multiply-add and 16 bytes per item.
            kernel = KernelSpec(name="anonymous", flops=2.0 * n, bytes_read=16.0 * n, threads=max(n, 1))
        self.device.launch(kernel)

    def fence(self) -> None:
        super().fence()
        self.device.synchronize()

    @property
    def elapsed(self) -> float:
        return self.device.elapsed


class Cuda(DeviceExec):
    name = "Cuda"


class HIP(DeviceExec):
    """The HIP backend whose bring-up §3.10.1 describes."""

    name = "HIP"


def _check_views(exec_space: ExecutionSpace, views: tuple[View, ...]) -> None:
    for v in views:
        if not exec_space.accessible(v.space):
            raise KokkosError(
                f"View {v.name!r} in {v.space.name} is not accessible from "
                f"{exec_space.name}; deep_copy it first"
            )


def parallel_for(exec_space: ExecutionSpace, n: int,
                 functor: Callable[[int], None], *,
                 views: tuple[View, ...] = (),
                 cost: KernelSpec | None = None) -> None:
    """``Kokkos::parallel_for``: run *functor* for i in [0, n)."""
    if n < 0:
        raise KokkosError("range must be non-negative")
    _check_views(exec_space, views)
    for i in range(n):
        functor(i)
    exec_space.charge(cost, n)


def parallel_reduce(exec_space: ExecutionSpace, n: int,
                    functor: Callable[[int], float], *,
                    views: tuple[View, ...] = (),
                    cost: KernelSpec | None = None,
                    init: float = 0.0) -> float:
    """``Kokkos::parallel_reduce`` with a sum reduction."""
    if n < 0:
        raise KokkosError("range must be non-negative")
    _check_views(exec_space, views)
    acc = init
    for i in range(n):
        acc += functor(i)
    exec_space.charge(cost, n)
    return acc


def deep_copy(dst: View, src: View, *, device_spec: GPUSpec | None = None) -> float:
    """Copy data between Views, returning the simulated transfer time."""
    if dst.data.shape != src.data.shape:
        raise KokkosError(f"shape mismatch {dst.data.shape} vs {src.data.shape}")
    np.copyto(dst.data, src.data)
    if dst.space.on_device == src.space.on_device:
        return 0.0
    if device_spec is None:
        return 0.0
    if dst.space.on_device:
        return h2d_time(src.nbytes, device_spec).time
    return d2h_time(src.nbytes, device_spec).time
