"""Cholla-style single-header macro compatibility layer (§2.1).

Instead of converting a codebase to HIP once, some teams keep the source in
CUDA spelling and use one header of macros that maps every ``cuda*`` call
to ``hip*`` when building for AMD.  The code "may remain in CUDA and evolve
using either CUDA or HIP, as long as the functionality exists in both
APIs."

:class:`MacroLayer` reproduces that: it exposes generic ``gpu*`` names *and*
accepts either vendor spelling, dispatching to whichever runtime was chosen
at "build time".  Functionality that exists in only one API raises
:class:`MissingApiParity` — the constraint the paper states.
"""

from __future__ import annotations

from typing import Any

from repro.hardware.gpu import GPUSpec, GPUVendor
from repro.progmodel.cuda import CudaRuntime
from repro.progmodel.hip import HipRuntime


class MissingApiParity(RuntimeError):
    """A call used through the macro layer has no counterpart in one API."""


#: Generic names the macro header defines, mapped to each vendor spelling.
_GENERIC_TO_VENDOR: dict[str, tuple[str, str]] = {
    "gpuMalloc": ("cudaMalloc", "hipMalloc"),
    "gpuFree": ("cudaFree", "hipFree"),
    "gpuMemcpyHostToDevice": ("cudaMemcpyHostToDevice", "hipMemcpyHostToDevice"),
    "gpuMemcpyDeviceToHost": ("cudaMemcpyDeviceToHost", "hipMemcpyDeviceToHost"),
    "gpuLaunchKernel": ("cudaLaunchKernel", "hipLaunchKernel"),
    "gpuStreamCreate": ("cudaStreamCreate", "hipStreamCreate"),
    "gpuStreamSynchronize": ("cudaStreamSynchronize", "hipStreamSynchronize"),
    "gpuEventCreate": ("cudaEventCreate", "hipEventCreate"),
    "gpuEventRecord": ("cudaEventRecord", "hipEventRecord"),
    "gpuEventSynchronize": ("cudaEventSynchronize", "hipEventSynchronize"),
    "gpuEventElapsedTime": ("cudaEventElapsedTime", "hipEventElapsedTime"),
    "gpuDeviceSynchronize": ("cudaDeviceSynchronize", "hipDeviceSynchronize"),
    "gpuSetDevice": ("cudaSetDevice", "hipSetDevice"),
    "gpuGetDeviceCount": ("cudaGetDeviceCount", "hipGetDeviceCount"),
}


class MacroLayer:
    """Build-time selected GPU backend behind one set of macro names."""

    def __init__(self, specs: list[GPUSpec] | GPUSpec, *, count: int | None = None) -> None:
        first = specs[0] if isinstance(specs, list) else specs
        if first.vendor is GPUVendor.NVIDIA:
            self.backend_name = "cuda"
            self.runtime: CudaRuntime | HipRuntime = CudaRuntime(specs, count=count)
        else:
            self.backend_name = "hip"
            self.runtime = HipRuntime(specs, count=count)

    def _resolve(self, name: str) -> Any:
        if name in _GENERIC_TO_VENDOR:
            cuda_name, hip_name = _GENERIC_TO_VENDOR[name]
            target = cuda_name if self.backend_name == "cuda" else hip_name
        elif name.startswith("cuda") and self.backend_name == "hip":
            target = "hip" + name[4:]
        elif name.startswith("hip") and self.backend_name == "cuda":
            target = "cuda" + name[3:]
        else:
            target = name
        fn = getattr(self.runtime, target, None)
        if fn is None:
            raise MissingApiParity(
                f"{name} has no {self.backend_name.upper()} counterpart ({target}); "
                "the macro-layer strategy requires functionality in both APIs"
            )
        return fn

    def __getattr__(self, name: str) -> Any:
        if name.startswith(("gpu", "cuda", "hip")):
            return self._resolve(name)
        raise AttributeError(name)

    @property
    def elapsed(self) -> float:
        return self.runtime.elapsed
