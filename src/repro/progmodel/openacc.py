"""OpenACC directives layer (the GAMESS/NuCCOR/PeleC-prototype path).

Several teams' first GPU ports used OpenACC before converging on their
final model (§3.1, §3.7, §3.8: "a prototype of PeleC was written in
OpenACC ... found to be equivalent to a similar prototype written using
the AMReX C++ performance portability library").  The semantics mirror
OpenMP target offload with OpenACC spellings: structured ``data`` regions
with copyin/copyout/create clauses, ``update`` directives, and
``parallel loop`` kernels at a (slightly different) directive derate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import Device
from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import GPUSpec
from repro.progmodel.openmp import MotionLedger

#: Fraction of native (HIP/CUDA) kernel throughput OpenACC achieves — on
#: par with OpenMP offload; the §3.8 prototypes measured rough parity
#: between OpenACC and the native-C++ path for simple loops.
OPENACC_KERNEL_DERATE = 0.82


class OpenACCError(RuntimeError):
    pass


@dataclass
class _PresentArray:
    name: str
    nbytes: int
    copyout: bool


class OpenACCDevice:
    """``#pragma acc`` semantics over one simulated GPU."""

    def __init__(self, spec: GPUSpec) -> None:
        self.device = Device(spec)
        self.ledger = MotionLedger()
        self._present: dict[str, _PresentArray] = {}

    # -- data regions ------------------------------------------------------

    def data(self, *, copyin: dict[str, int] | None = None,
             copyout: dict[str, int] | None = None,
             copy: dict[str, int] | None = None,
             create: dict[str, int] | None = None) -> "AccDataRegion":
        """``#pragma acc data copyin(...) copyout(...) copy(...) create(...)``."""
        return AccDataRegion(self, copyin or {}, copyout or {}, copy or {},
                             create or {})

    def _enter(self, name: str, nbytes: int, *, to_device: bool,
               copyout: bool) -> None:
        if name in self._present:
            raise OpenACCError(f"{name!r} is already present on the device")
        if to_device:
            t = self.device.memcpy_h2d(nbytes)
            self.ledger.h2d_bytes += nbytes
            self.ledger.h2d_transfers += 1
            self.ledger.transfer_time += t
        self._present[name] = _PresentArray(name=name, nbytes=nbytes,
                                            copyout=copyout)

    def _exit(self, name: str) -> None:
        arr = self._present.pop(name, None)
        if arr is None:
            raise OpenACCError(f"{name!r} is not present on the device")
        if arr.copyout:
            t = self.device.memcpy_d2h(arr.nbytes)
            self.ledger.d2h_bytes += arr.nbytes
            self.ledger.d2h_transfers += 1
            self.ledger.transfer_time += t

    # -- update ------------------------------------------------------------

    def update_device(self, name: str) -> None:
        """``#pragma acc update device(name)``."""
        arr = self._require(name)
        t = self.device.memcpy_h2d(arr.nbytes)
        self.ledger.h2d_bytes += arr.nbytes
        self.ledger.h2d_transfers += 1
        self.ledger.transfer_time += t

    def update_self(self, name: str) -> None:
        """``#pragma acc update self(name)`` (host)."""
        arr = self._require(name)
        t = self.device.memcpy_d2h(arr.nbytes)
        self.ledger.d2h_bytes += arr.nbytes
        self.ledger.d2h_transfers += 1
        self.ledger.transfer_time += t

    def _require(self, name: str) -> _PresentArray:
        arr = self._present.get(name)
        if arr is None:
            raise OpenACCError(f"{name!r} is not in any data region")
        return arr

    # -- kernels -------------------------------------------------------------

    def parallel_loop(self, kernel: KernelSpec, *, present: tuple[str, ...] = (),
                      async_: bool = False) -> None:
        """``#pragma acc parallel loop present(...) [async]``."""
        for name in present:
            self._require(name)
        derated = KernelSpec(
            name=kernel.name,
            flops=kernel.flops / OPENACC_KERNEL_DERATE,
            bytes_read=kernel.bytes_read,
            bytes_written=kernel.bytes_written,
            threads=kernel.threads,
            precision=kernel.precision,
            registers_per_thread=kernel.registers_per_thread,
            workgroup_size=kernel.workgroup_size,
            active_lane_fraction=kernel.active_lane_fraction,
        )
        if async_:
            self.device.launch(derated)
        else:
            self.device.launch_sync(derated)

    def wait(self) -> None:
        """``#pragma acc wait``."""
        self.device.synchronize()

    @property
    def elapsed(self) -> float:
        return self.device.elapsed


class AccDataRegion:
    """Structured data region: transfers on entry/exit per clause."""

    def __init__(self, acc: OpenACCDevice, copyin: dict[str, int],
                 copyout: dict[str, int], copy: dict[str, int],
                 create: dict[str, int]) -> None:
        self._acc = acc
        self._clauses = [
            (copyin, True, False),
            (copyout, False, True),
            (copy, True, True),
            (create, False, False),
        ]

    def __enter__(self) -> "AccDataRegion":
        for arrays, to_device, copyout in self._clauses:
            for name, nbytes in arrays.items():
                self._acc._enter(name, nbytes, to_device=to_device,
                                 copyout=copyout)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for arrays, _, _ in self._clauses:
            for name in arrays:
                self._acc._exit(name)
