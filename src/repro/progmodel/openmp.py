"""OpenMP target-offload semantics with a data-motion ledger (§2.2).

The paper's OpenMP guidance is about *counting transfers*: put a large
structured ``TARGET DATA`` region around performance-critical code so
mapped arrays persist on the device, synchronize selectively with
``TARGET UPDATE TO/FROM`` (optionally ``NOWAIT``), use
``OMP_TARGET_ALLOC`` for device-only arrays, ``USE_DEVICE_PTR`` for
GPU-aware MPI, and unstructured ``ENTER/EXIT DATA`` when a structured
region does not fit.  All of that is modelled here with exact byte
accounting; the benchmarks then show naive per-loop mapping versus the
recommended persistent region.

OpenMP-offloaded kernels also carry a throughput derate relative to HIP
(``OPENMP_KERNEL_DERATE``) — "in general, OpenMP codes did not achieve
performance parity to codes ported with HIP."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gpu.device import Device
from repro.gpu.kernel import KernelSpec
from repro.gpu.stream import Stream
from repro.hardware.gpu import GPUSpec

#: Fraction of HIP kernel throughput OpenMP target offload achieves.
OPENMP_KERNEL_DERATE = 0.8


class MapKind(enum.Enum):
    TO = "to"
    FROM = "from"
    TOFROM = "tofrom"
    ALLOC = "alloc"


@dataclass
class MappedArray:
    """One array mapped into a device data environment."""

    name: str
    nbytes: int
    kind: MapKind
    device_resident: bool = True


@dataclass
class MotionLedger:
    """Byte-exact record of host-device traffic caused by OpenMP directives."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_transfers: int = 0
    d2h_transfers: int = 0
    transfer_time: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes


class OpenMPTargetError(RuntimeError):
    """Invalid directive use (e.g. update outside any data region)."""


class OpenMPDevice:
    """Target-offload view of one simulated GPU.

    Structured regions are context managers; unstructured enter/exit data
    and ``omp_target_alloc`` manage a persistent environment.  Kernels run
    via :meth:`target_parallel_loop` at the OpenMP derate.
    """

    def __init__(self, spec: GPUSpec) -> None:
        self.device = Device(spec)
        self.ledger = MotionLedger()
        self._present: dict[str, MappedArray] = {}
        self._region_stack: list[list[str]] = []

    # -- data movement primitives -------------------------------------------

    def _move_h2d(self, nbytes: int, *, stream: Stream | None = None, nowait: bool = False) -> None:
        t = self.device.memcpy_h2d(nbytes, stream=stream, sync=not nowait)
        self.ledger.h2d_bytes += nbytes
        self.ledger.h2d_transfers += 1
        self.ledger.transfer_time += t

    def _move_d2h(self, nbytes: int, *, stream: Stream | None = None, nowait: bool = False) -> None:
        t = self.device.memcpy_d2h(nbytes, stream=stream, sync=not nowait)
        self.ledger.d2h_bytes += nbytes
        self.ledger.d2h_transfers += 1
        self.ledger.transfer_time += t

    # -- structured TARGET DATA region ---------------------------------------

    def target_data(self, **maps: tuple[int, MapKind]) -> "TargetDataRegion":
        """``#pragma omp target data map(...)`` as a context manager.

        ``maps`` is ``name=(nbytes, MapKind)``.
        """
        return TargetDataRegion(self, maps)

    # -- unstructured ENTER/EXIT DATA ------------------------------------------

    def target_enter_data(self, name: str, nbytes: int, kind: MapKind = MapKind.TO) -> None:
        if name in self._present:
            raise OpenMPTargetError(f"{name!r} is already present on the device")
        if kind in (MapKind.TO, MapKind.TOFROM):
            self._move_h2d(nbytes)
        self._present[name] = MappedArray(name=name, nbytes=nbytes, kind=kind)

    def target_exit_data(self, name: str, kind: MapKind = MapKind.FROM) -> None:
        arr = self._present.pop(name, None)
        if arr is None:
            raise OpenMPTargetError(f"{name!r} is not present on the device")
        if kind in (MapKind.FROM, MapKind.TOFROM):
            self._move_d2h(arr.nbytes)

    def omp_target_alloc(self, name: str, nbytes: int) -> None:
        """Persistent device-only allocation; never transfers."""
        self.target_enter_data(name, nbytes, MapKind.ALLOC)

    # -- TARGET UPDATE -------------------------------------------------------------

    def target_update_to(self, name: str, *, nowait: bool = False,
                         stream: Stream | None = None) -> None:
        arr = self._require_present(name, "target update to")
        self._move_h2d(arr.nbytes, stream=stream, nowait=nowait)

    def target_update_from(self, name: str, *, nowait: bool = False,
                           stream: Stream | None = None) -> None:
        arr = self._require_present(name, "target update from")
        self._move_d2h(arr.nbytes, stream=stream, nowait=nowait)

    def _require_present(self, name: str, directive: str) -> MappedArray:
        arr = self._present.get(name)
        if arr is None:
            raise OpenMPTargetError(f"{directive}({name!r}): array not in a data environment")
        return arr

    # -- USE_DEVICE_PTR --------------------------------------------------------------

    def use_device_ptr(self, name: str) -> str:
        """Return an opaque device-pointer token for GPU-aware MPI calls."""
        self._require_present(name, "use_device_ptr")
        return f"devptr:{name}"

    # -- kernels ------------------------------------------------------------------------

    def target_parallel_loop(self, kernel: KernelSpec, *, uses: tuple[str, ...] = (),
                             nowait: bool = False, stream: Stream | None = None) -> None:
        """``target teams distribute parallel for`` over a mapped data set.

        Arrays named in ``uses`` must be present; arrays *not* present are
        implicitly mapped ``tofrom`` around the kernel — the anti-pattern
        the paper warns about — which we charge as real transfers.
        """
        for name in uses:
            if name not in self._present:
                raise OpenMPTargetError(
                    f"kernel {kernel.name!r} uses {name!r} outside any data region; "
                    "wrap it with target_data or target_enter_data"
                )
        derated = KernelSpec(
            name=kernel.name,
            flops=kernel.flops / OPENMP_KERNEL_DERATE,
            bytes_read=kernel.bytes_read,
            bytes_written=kernel.bytes_written,
            threads=kernel.threads,
            precision=kernel.precision,
            uses_matrix_engine=kernel.uses_matrix_engine,
            registers_per_thread=kernel.registers_per_thread,
            lds_per_workgroup=kernel.lds_per_workgroup,
            workgroup_size=kernel.workgroup_size,
            active_lane_fraction=kernel.active_lane_fraction,
            launch_count=kernel.launch_count,
        )
        if nowait:
            self.device.launch(derated, stream=stream)
        else:
            self.device.launch_sync(derated, stream=stream)

    def naive_offload_loop(self, kernel: KernelSpec, arrays: dict[str, int]) -> None:
        """A loop offloaded with per-invocation implicit tofrom mapping.

        This is the baseline the §2.2 guidance improves on: every call
        moves every array down and back.
        """
        for nbytes in arrays.values():
            self._move_h2d(nbytes)
        self.device.launch_sync(kernel)
        for nbytes in arrays.values():
            self._move_d2h(nbytes)

    # -- results ------------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        return self.device.elapsed

    def synchronize(self) -> None:
        """``#pragma omp taskwait`` for outstanding nowait work."""
        self.device.synchronize()


class TargetDataRegion:
    """Structured ``target data`` region: maps on entry, unmaps on exit."""

    def __init__(self, omp: OpenMPDevice, maps: dict[str, tuple[int, MapKind]]) -> None:
        self._omp = omp
        self._maps = maps

    def __enter__(self) -> "TargetDataRegion":
        for name, (nbytes, kind) in self._maps.items():
            self._omp.target_enter_data(name, nbytes, kind if kind != MapKind.FROM else MapKind.ALLOC)
            if kind == MapKind.FROM:
                # 'from' maps allocate on entry and copy back on exit
                self._omp._present[name].kind = MapKind.FROM
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for name, (_, kind) in self._maps.items():
            exit_kind = kind if kind in (MapKind.FROM, MapKind.TOFROM) else MapKind.ALLOC
            self._omp.target_exit_data(name, exit_kind)
