"""A miniature YAKL (Yet Another Kernel Launcher), §3.5.

The two YAKL features E3SM-MMF depends on:

* a **transparent pool allocator** for all device-resident allocations so
  frequent allocate/deallocate patterns are non-blocking and very cheap —
  modelled with the real :class:`repro.gpu.memory.PoolAllocator`;
* an **interoperation layer** with Kokkos: an intermediate representation
  of multi-dimensional arrays that lets Kokkos code and YAKL code exchange
  data without either library owning the other's build.

YAKL arrays support Fortran-style (1-based, column-major) or C-style
indexing, since E3SM's Fortran heritage made that a real requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.gpu.memory import DeviceAllocator, PoolAllocator
from repro.hardware.gpu import GPUSpec
from repro.progmodel import kokkos as _kokkos


class YaklError(RuntimeError):
    pass


@dataclass(frozen=True)
class ArrayIR:
    """The intermediate representation exchanged with Kokkos (§3.5).

    Carries everything needed to reconstruct the array in either library:
    a data buffer, shape, element dtype, and the memory side it lives on.
    """

    label: str
    data: np.ndarray
    on_device: bool

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape


class YaklContext:
    """Library state: the device pool allocator. Call :func:`init` to make one."""

    def __init__(self, spec: GPUSpec, *, pool_block: int = 1 << 28) -> None:
        self.spec = spec
        self.backing = DeviceAllocator(int(spec.mem_capacity))
        self.pool = PoolAllocator(self.backing, initial_block=pool_block)
        self.live_arrays = 0

    @property
    def pool_time(self) -> float:
        """Simulated seconds spent in allocation calls (pool path)."""
        return self.pool.simulated_time

    @property
    def native_time(self) -> float:
        """Simulated seconds that native allocations would have cost."""
        return (self.pool.alloc_calls + self.pool.free_calls) * self.backing.alloc_latency


_context: YaklContext | None = None


def init(spec: GPUSpec, *, pool_block: int = 1 << 28) -> YaklContext:
    """``yakl::init()`` — create the pool. Returns the context."""
    global _context
    if _context is not None:
        raise YaklError("yakl is already initialized; call finalize() first")
    _context = YaklContext(spec, pool_block=pool_block)
    return _context


def finalize() -> None:
    """``yakl::finalize()`` — verify no leaks and drop the pool."""
    global _context
    if _context is None:
        raise YaklError("yakl is not initialized")
    if _context.live_arrays:
        raise YaklError(f"finalize with {_context.live_arrays} live arrays")
    _context = None


def is_initialized() -> bool:
    return _context is not None


def _require_context() -> YaklContext:
    if _context is None:
        raise YaklError("yakl.init() must be called before allocating arrays")
    return _context


class Array:
    """A YAKL device array: pool-allocated, Fortran- or C-style indexed."""

    def __init__(self, label: str, *dims: int, fortran_style: bool = False,
                 dtype: Any = np.float64) -> None:
        if not dims or any(d <= 0 for d in dims):
            raise YaklError(f"array {label!r} needs positive dimensions, got {dims}")
        ctx = _require_context()
        self.label = label
        self.fortran_style = fortran_style
        order = "F" if fortran_style else "C"
        self.data = np.zeros(dims, dtype=dtype, order=order)
        self._handle = ctx.pool.malloc(self.data.nbytes, tag=label)
        self._ctx = ctx
        self._freed = False
        ctx.live_arrays += 1

    def _map_index(self, idx: tuple[int, ...] | int) -> tuple[int, ...]:
        if not isinstance(idx, tuple):
            idx = (idx,)
        if not self.fortran_style:
            return idx
        mapped = []
        for i, (k, n) in enumerate(zip(idx, self.data.shape)):
            if not 1 <= k <= n:
                raise IndexError(
                    f"{self.label}: Fortran index {k} out of bounds [1, {n}] in dim {i}"
                )
            mapped.append(k - 1)
        return tuple(mapped)

    def __getitem__(self, idx):
        return self.data[self._map_index(idx)]

    def __setitem__(self, idx, value) -> None:
        self.data[self._map_index(idx)] = value

    def deallocate(self) -> None:
        if self._freed:
            raise YaklError(f"double free of array {self.label!r}")
        self._ctx.pool.free(self._handle)
        self._ctx.live_arrays -= 1
        self._freed = True

    # -- Kokkos interop ------------------------------------------------------

    def to_ir(self) -> ArrayIR:
        """Export as the intermediate representation Kokkos code consumes."""
        return ArrayIR(label=self.label, data=self.data, on_device=True)

    @classmethod
    def from_ir(cls, ir: ArrayIR, *, fortran_style: bool = False) -> "Array":
        """Wrap an IR produced by Kokkos (shares the data buffer)."""
        arr = cls(ir.label, *ir.shape, fortran_style=fortran_style, dtype=ir.data.dtype)
        arr.data = np.asfortranarray(ir.data) if fortran_style else ir.data
        return arr


def view_from_ir(ir: ArrayIR) -> _kokkos.View:
    """Build a Kokkos View over a YAKL array's IR (zero-copy)."""
    space = _kokkos.DeviceSpace if ir.on_device else _kokkos.HostSpace
    view = _kokkos.View(ir.label, ir.data.shape, space, ir.data.dtype)
    view.data = ir.data
    return view


def ir_from_view(view: _kokkos.View) -> ArrayIR:
    """Export a Kokkos View as YAKL-consumable IR (zero-copy)."""
    return ArrayIR(label=view.name, data=view.data, on_device=view.space.on_device)
