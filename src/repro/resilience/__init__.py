"""Resilience subsystem: checkpoint/restart, fault injection, Young/Daly.

The operational half of exascale readiness (CRK-HACC's SC-W 2023 account,
the §2 early-access experience): multi-month campaigns only produce
numbers because they survive node losses.  This package provides the
snapshot protocol + deterministic codec, a seeded fault injector wired
through the simulated MPI and GPU substrates, a resilient campaign
runner with checkpoint-interval accounting and pluggable recovery
policies (restart / ULFM shrink-continue / spare-swap), Huang–Abraham
ABFT checksums against silent data corruption, elastic domain
redistribution onto survivors, and the Young/Daly optimal interval
computed from the machine models.
"""

from repro.resilience.abft import (
    ROUNDOFF_SAFETY,
    AbftReport,
    ChecksummedGemm,
    SdcDetected,
    checksummed_matmul,
    flip_bit,
    gemm_with_checksums,
    lu_checksum,
    permute_checksum,
    require_finite,
    verify_gemm,
    verify_lu,
    verify_solve,
)
from repro.resilience.daly import (
    NODE_MTBF_SECONDS,
    daly_expected_runtime,
    machine_checkpoint_cost,
    optimal_interval_for_machine,
    predicted_overhead,
    scaled_fault_injector,
    system_mtbf,
    young_daly_interval,
)
from repro.resilience.elastic import (
    DomainSpec,
    ShrinkPlan,
    domain_of,
    plan_shrink,
    redistribute,
    shrink_and_redistribute,
)
from repro.resilience.faults import (
    FATAL_KINDS,
    DeviceOomFault,
    FaultEvent,
    FaultInjector,
    FaultKind,
    RankFailureFault,
    SimulatedFault,
)
from repro.resilience.runner import (
    CheckpointCostModel,
    RecoveryPolicy,
    ResilienceError,
    ResilienceStats,
    ResilientRunner,
    RestartPolicy,
    ShrinkContinuePolicy,
    SpareNodeSource,
    SpareSwapPolicy,
    SteppedApp,
    make_policy,
)
from repro.resilience.snapshot import (
    Checkpointable,
    Snapshot,
    SnapshotError,
    decode_snapshot,
    encode_snapshot,
    require_kind,
    snapshot_checksum,
    snapshot_equal,
)

__all__ = [
    "FATAL_KINDS",
    "NODE_MTBF_SECONDS",
    "ROUNDOFF_SAFETY",
    "AbftReport",
    "Checkpointable",
    "CheckpointCostModel",
    "ChecksummedGemm",
    "DeviceOomFault",
    "DomainSpec",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "RankFailureFault",
    "RecoveryPolicy",
    "ResilienceError",
    "ResilienceStats",
    "ResilientRunner",
    "RestartPolicy",
    "SdcDetected",
    "ShrinkContinuePolicy",
    "ShrinkPlan",
    "SimulatedFault",
    "Snapshot",
    "SnapshotError",
    "SpareNodeSource",
    "SpareSwapPolicy",
    "SteppedApp",
    "checksummed_matmul",
    "daly_expected_runtime",
    "decode_snapshot",
    "domain_of",
    "encode_snapshot",
    "flip_bit",
    "gemm_with_checksums",
    "lu_checksum",
    "machine_checkpoint_cost",
    "make_policy",
    "optimal_interval_for_machine",
    "permute_checksum",
    "plan_shrink",
    "predicted_overhead",
    "redistribute",
    "require_finite",
    "require_kind",
    "scaled_fault_injector",
    "shrink_and_redistribute",
    "snapshot_checksum",
    "snapshot_equal",
    "system_mtbf",
    "verify_gemm",
    "verify_lu",
    "verify_solve",
    "young_daly_interval",
]
