"""Resilience subsystem: checkpoint/restart, fault injection, Young/Daly.

The operational half of exascale readiness (CRK-HACC's SC-W 2023 account,
the §2 early-access experience): multi-month campaigns only produce
numbers because they survive node losses.  This package provides the
snapshot protocol + deterministic codec, a seeded fault injector wired
through the simulated MPI and GPU substrates, a resilient campaign
runner with checkpoint-interval accounting, and the Young/Daly optimal
interval computed from the machine models.
"""

from repro.resilience.daly import (
    NODE_MTBF_SECONDS,
    daly_expected_runtime,
    machine_checkpoint_cost,
    optimal_interval_for_machine,
    predicted_overhead,
    system_mtbf,
    young_daly_interval,
)
from repro.resilience.faults import (
    FATAL_KINDS,
    DeviceOomFault,
    FaultEvent,
    FaultInjector,
    FaultKind,
    RankFailureFault,
    SimulatedFault,
)
from repro.resilience.runner import (
    CheckpointCostModel,
    ResilienceError,
    ResilienceStats,
    ResilientRunner,
    SteppedApp,
)
from repro.resilience.snapshot import (
    Checkpointable,
    Snapshot,
    SnapshotError,
    decode_snapshot,
    encode_snapshot,
    require_kind,
    snapshot_checksum,
    snapshot_equal,
)

__all__ = [
    "FATAL_KINDS",
    "NODE_MTBF_SECONDS",
    "Checkpointable",
    "CheckpointCostModel",
    "DeviceOomFault",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "RankFailureFault",
    "ResilienceError",
    "ResilienceStats",
    "ResilientRunner",
    "SimulatedFault",
    "Snapshot",
    "SnapshotError",
    "SteppedApp",
    "daly_expected_runtime",
    "decode_snapshot",
    "encode_snapshot",
    "machine_checkpoint_cost",
    "optimal_interval_for_machine",
    "predicted_overhead",
    "require_kind",
    "snapshot_checksum",
    "snapshot_equal",
    "system_mtbf",
    "young_daly_interval",
]
