"""Huang–Abraham ABFT: checksum-augmented kernels that catch silent errors.

Fail-stop crashes are the *easy* half of the exascale fault model: the
§2 campaigns also lose nodes to silent data corruption — a bit flips in
a register or an HBM row and the job keeps running, now computing with a
wrong number.  Checkpoint/restart is blind to that: it will happily
checkpoint the corruption.  Algorithm-based fault tolerance (Huang &
Abraham 1984) instead carries *checksum invariants through the math*:

* **GEMM** — augment ``C = A @ B`` to ``[A; 1ᵀA] @ [B, B·1]``.  The
  extended product carries every row and column sum of ``C``; a single
  corrupted element breaks exactly one row relation and one column
  relation, which both *locates* ``(i, j)`` and recovers the true value
  (the checksum discrepancy IS the error).  Overhead: one extra row and
  column on an n×p product — O(1/n).
* **LU** — the row-sum checksum ``c = A·e`` survives elimination:
  ``P·A·e = L·(U·e)`` for the factors of a row-pivoted LU.  Verifying
  that identity costs two O(n²) triangular sweeps against an O(n³)
  factorization, and any corruption of the packed factors (or a wrong
  pivot) breaks it.
* **Residual plausibility** — for solves and implicit integrators, the
  defining equation itself is the checksum: ``‖A·x − b‖`` bounded by a
  roundoff envelope, state values finite and physically plausible.

Every check uses an explicit *roundoff threshold* computed from the
operands (entry-magnitude envelopes times machine epsilon times the
accumulation length), so detection is exact above the threshold and
false-positive-free on clean inputs — the property
``tests/test_abft.py`` measures rather than assumes.  Integer kernels
(the CoMet count-GEMMs) get zero-tolerance checksums: *every* single
flip is detected and corrected.

This module is pure numpy with no intra-repo imports, so the hot kernel
modules (:mod:`repro.linalg.batched`, :mod:`repro.similarity.gemmtally`,
:mod:`repro.ode.batched`) can adopt it without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Safety factor on the accumulated-roundoff envelope.  Large enough that
#: clean inputs never trip the check (hypothesis-tested), small enough
#: that any corruption visible above accumulated roundoff is caught.
ROUNDOFF_SAFETY = 64.0

_EPS = float(np.finfo(np.float64).eps)


class SdcDetected(RuntimeError):
    """A checksum invariant failed: the data has been silently corrupted.

    ``location`` (when known) identifies the corrupted entry;
    ``magnitude`` is the checksum discrepancy that exposed it.
    """

    def __init__(self, message: str, *, location: tuple | None = None,
                 magnitude: float | None = None) -> None:
        super().__init__(message)
        self.location = location
        self.magnitude = magnitude


@dataclass
class AbftReport:
    """Outcome of one checksum verification pass."""

    checked: int = 0      # checksum relations tested
    detected: int = 0     # relations that failed
    corrected: int = 0    # corrupted entries repaired in place
    locations: tuple = ()  # located corrupt entries, ((i, j), ...)

    @property
    def clean(self) -> bool:
        return self.detected == 0


def require_finite(name: str, *arrays: np.ndarray) -> None:
    """Raise :class:`SdcDetected` if any array holds a non-finite value.

    The cheapest plausibility guard: an exponent-field bit flip almost
    always lands in inf/NaN territory or astronomically far from the
    trajectory, and every IEEE operation propagates it.
    """
    for arr in arrays:
        if not np.all(np.isfinite(arr)):
            bad = np.argwhere(~np.isfinite(np.asarray(arr)))
            raise SdcDetected(
                f"non-finite value in {name} at index {tuple(bad[0])}",
                location=tuple(int(v) for v in bad[0]),
            )


# ---------------------------------------------------------------------------
# GEMM: full row/column checksum augmentation
# ---------------------------------------------------------------------------


@dataclass
class ChecksummedGemm:
    """A product carrying its Huang–Abraham checksum rows and columns.

    ``row_checksum[i]`` is the independently-computed Σ_j C[i, j] (from
    the augmented operand ``B·1``), ``col_checksum[j]`` the Σ_i C[i, j]
    (from ``1ᵀA``); the tolerances are the roundoff envelopes below which
    a discrepancy is indistinguishable from floating-point noise.
    """

    C: np.ndarray
    row_checksum: np.ndarray
    col_checksum: np.ndarray
    row_tol: np.ndarray
    col_tol: np.ndarray

    @property
    def exact(self) -> bool:
        """Integer tallies verify exactly: any discrepancy is corruption."""
        return np.issubdtype(self.C.dtype, np.integer)


def gemm_roundoff_tolerance(A: np.ndarray, B: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Per-row / per-column detection thresholds for ``A @ B`` checksums.

    ``row_tol[i] = safety · (m+p) · eps · Σ_jk |A[i,k]||B[k,j]|`` — the
    magnitude envelope of row i's full accumulation, O(nm + mp) to build
    (two matvecs against the operand magnitude sums, never an extra GEMM).
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    m, p = B.shape
    growth = ROUNDOFF_SAFETY * (m + p) * _EPS
    row_env = np.abs(A) @ np.abs(B).sum(axis=1)       # (n,)
    col_env = np.abs(A).sum(axis=0) @ np.abs(B)       # (p,)
    return growth * row_env, growth * col_env


def gemm_with_checksums(A: np.ndarray, B: np.ndarray) -> ChecksummedGemm:
    """Compute ``A @ B`` through the augmented ``(n+1)×(p+1)`` product.

    One GEMM over ``[A; 1ᵀA] @ [B, B·1]`` yields the product *and* both
    checksum families in a single pass — the augmentation the real ABFT
    GEMMs fuse into the kernel, at O(1/n) extra flops.
    """
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"incompatible GEMM operands {A.shape} x {B.shape}")
    Ac = np.vstack([A, A.sum(axis=0, keepdims=True)])
    Br = np.hstack([B, B.sum(axis=1, keepdims=True)])
    full = Ac @ Br
    C = np.ascontiguousarray(full[:-1, :-1])
    if np.issubdtype(C.dtype, np.integer):
        n, p = C.shape
        row_tol = np.zeros(n)
        col_tol = np.zeros(p)
    else:
        row_tol, col_tol = gemm_roundoff_tolerance(A, B)
    return ChecksummedGemm(C=C, row_checksum=full[:-1, -1].copy(),
                           col_checksum=full[-1, :-1].copy(),
                           row_tol=row_tol, col_tol=col_tol)


def verify_gemm(g: ChecksummedGemm, *, correct: bool = True,
                raise_on_detect: bool = True) -> AbftReport:
    """Test both checksum families; locate, and if possible repair, errors.

    A single corrupted product entry breaks exactly one row and one
    column relation with matching discrepancies — located and subtracted
    back out (``correct=True``).  A corruption that breaks only one
    family (a damaged checksum entry itself) is detected but not
    correctable; with ``raise_on_detect`` that raises
    :class:`SdcDetected`, otherwise the report carries the verdict.
    """
    C = g.C
    n, p = C.shape
    # corrupted data may hold inf/NaN — the verifier must stay silent
    # about the IEEE noise and loud about the verdict
    with np.errstate(all="ignore"):
        row_diff = g.row_checksum - C.sum(axis=1)
        col_diff = g.col_checksum - C.sum(axis=0)
    # NaN/inf discrepancies (exponent-field flips) are corruption too:
    # a NaN never exceeds a tolerance by comparison, so test explicitly
    bad_rows = np.flatnonzero(~np.isfinite(row_diff)
                              | (np.abs(row_diff) > g.row_tol))
    bad_cols = np.flatnonzero(~np.isfinite(col_diff)
                              | (np.abs(col_diff) > g.col_tol))
    report = AbftReport(checked=n + p,
                        detected=int(bad_rows.size + bad_cols.size))
    if report.clean:
        return report

    if correct and bad_rows.size == 1 and bad_cols.size == 1:
        i, j = int(bad_rows[0]), int(bad_cols[0])
        dr, dc = row_diff[i], col_diff[j]
        tol = max(g.row_tol[i], g.col_tol[j], 0.0)
        # the two families agree up to the cancellation noise of summing
        # past the (possibly huge) corrupted entry: O(eps)·|discrepancy|
        with np.errstate(all="ignore"):
            match = (np.isfinite(dr) and np.isfinite(dc)
                     and abs(dr - dc) <= max(tol,
                                             ROUNDOFF_SAFETY * _EPS * abs(dr)))
        if match:
            C[i, j] += dr.astype(C.dtype) if g.exact else dr
            report.corrected = 1
            report.locations = ((i, j),)
            return report

    locations = tuple((int(i), -1) for i in bad_rows[:4]) + tuple(
        (-1, int(j)) for j in bad_cols[:4])
    report.locations = locations
    if raise_on_detect:
        diffs = np.concatenate([row_diff[bad_rows], col_diff[bad_cols]])
        worst = float(np.abs(np.nan_to_num(diffs, nan=np.inf)).max())
        raise SdcDetected(
            f"GEMM checksum mismatch in {bad_rows.size} row(s) and "
            f"{bad_cols.size} column(s)",
            location=locations[0] if locations else None, magnitude=worst,
        )
    return report


def checksummed_matmul(A: np.ndarray, B: np.ndarray, *,
                       correct: bool = True) -> np.ndarray:
    """``A @ B`` with end-to-end checksum verification (convenience)."""
    g = gemm_with_checksums(A, B)
    verify_gemm(g, correct=correct)
    return g.C


# ---------------------------------------------------------------------------
# LU: the row-sum checksum survives elimination
# ---------------------------------------------------------------------------


def lu_checksum(mats: np.ndarray) -> np.ndarray:
    """Row-sum checksum ``A·e`` of a stack of matrices, taken *before*
    factorization.  Shape (batch, n)."""
    mats = np.asarray(mats, dtype=float)
    if mats.ndim != 3 or mats.shape[1] != mats.shape[2]:
        raise ValueError(f"expected (batch, n, n) matrices, got {mats.shape}")
    return mats.sum(axis=-1)


def permute_checksum(checksum: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Apply the factorization's row-swap sequence to the checksum: the
    ``P·(A·e)`` side of the invariant."""
    c = np.array(checksum, dtype=float, copy=True)
    b, n = c.shape
    rows = np.arange(b)
    for k in range(n):
        p = piv[:, k]
        tmp = c[rows, k].copy()
        c[rows, k] = c[rows, p]
        c[rows, p] = tmp
    return c


def lu_checksum_residual(lu: np.ndarray, piv: np.ndarray,
                         checksum: np.ndarray
                         ) -> tuple[np.ndarray, np.ndarray]:
    """``|L·(U·e) − P·(A·e)|`` per batch entry, with its roundoff envelope.

    Two O(n²) triangular sweeps per matrix; any corruption of the packed
    factors or the pivot vector breaks the identity somewhere at O(1)
    extra memory.  Returns ``(residual, tolerance)``, both (batch, n).
    """
    lu = np.asarray(lu, dtype=float)
    b, n, _ = lu.shape
    with np.errstate(all="ignore"):  # corrupt factors may hold inf/NaN
        upper = np.triu(lu)
        lower = np.tril(lu, -1)
        u_e = upper.sum(axis=-1)                          # U·e
        recon = u_e + np.einsum("bkj,bj->bk", lower, u_e)  # L·(U·e), unit diag
        target = permute_checksum(checksum, piv)
        # magnitude envelope of the same two sweeps, for the threshold
        ub = np.abs(upper).sum(axis=-1)
        env = ub + np.einsum("bkj,bj->bk", np.abs(lower), ub)
        tol = ROUNDOFF_SAFETY * 2 * n * _EPS * np.maximum(
            env, np.abs(target)) + 1e-300
        return np.abs(recon - target), tol


def verify_lu(lu: np.ndarray, piv: np.ndarray, checksum: np.ndarray, *,
              raise_on_detect: bool = True) -> AbftReport:
    """Verify the Huang–Abraham LU invariant for a batched factorization."""
    resid, tol = lu_checksum_residual(lu, piv, checksum)
    bad = np.argwhere(~np.isfinite(resid) | (resid > tol))
    report = AbftReport(checked=resid.size, detected=int(bad.shape[0]),
                        locations=tuple(map(tuple, bad[:4].tolist())))
    if report.detected and raise_on_detect:
        i = tuple(int(v) for v in bad[0])
        raise SdcDetected(
            f"LU checksum invariant broken in {bad.shape[0]} row(s) "
            f"(first: cell {i[0]}, row {i[1]})",
            location=i, magnitude=float(resid[tuple(bad[0])]),
        )
    return report


# ---------------------------------------------------------------------------
# Solves and implicit steps: the equation is the checksum
# ---------------------------------------------------------------------------


def solve_residual_envelope(mats: np.ndarray, x: np.ndarray,
                            rhs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``|A·x − b|`` per equation with its backward-stable envelope.

    For a solve that was computed correctly the residual is bounded by
    ``O(n·eps)·(|A|·|x| + |b|)``; a corrupted solution entry drags the
    residual of its whole column out of that envelope.
    """
    mats = np.asarray(mats, dtype=float)
    x = np.asarray(x, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    n = mats.shape[-1]
    squeeze = x.ndim == 2
    if squeeze:  # vector rhs: lift to one-column matrices
        x = x[..., None]
        rhs = rhs[..., None]
    with np.errstate(all="ignore"):  # corrupt solutions may hold inf/NaN
        resid = np.abs(np.einsum("bij,bjm->bim", mats, x) - rhs)
        env = np.einsum("bij,bjm->bim", np.abs(mats), np.abs(x)) + np.abs(rhs)
        tol = ROUNDOFF_SAFETY * n * _EPS * env + 1e-300
    if squeeze:
        resid, tol = resid[..., 0], tol[..., 0]
    return resid, tol


def verify_solve(mats: np.ndarray, x: np.ndarray, rhs: np.ndarray, *,
                 growth: float = 1.0,
                 raise_on_detect: bool = True) -> AbftReport:
    """Residual-plausibility guard for batched solves.

    ``growth`` loosens the envelope for ill-conditioned systems (pivot
    growth); the default covers the diagonally-dominant Newton matrices
    the chemistry path factors.
    """
    resid, tol = solve_residual_envelope(mats, x, rhs)
    bad = np.argwhere(~np.isfinite(resid) | (resid > growth * tol))
    report = AbftReport(checked=resid.size, detected=int(bad.shape[0]),
                        locations=tuple(map(tuple, bad[:4].tolist())))
    if report.detected and raise_on_detect:
        i = tuple(int(v) for v in bad[0])
        raise SdcDetected(
            f"solve residual outside roundoff envelope in "
            f"{bad.shape[0]} equation(s) (first: cell {i[0]})",
            location=i, magnitude=float(resid[tuple(bad[0])]),
        )
    return report


def flip_bit(arr: np.ndarray, element: int, bit: int) -> float:
    """Flip one bit of one float64 element in place; returns the old value.

    The injection primitive the SDC fault kind fires through: a live
    array is corrupted exactly the way a failing HBM row corrupts it —
    in the bit pattern, not by adding noise.
    """
    if arr.dtype != np.float64:
        raise TypeError(f"bit flips target float64 arrays, got {arr.dtype}")
    if not 0 <= bit < 64:
        raise ValueError(f"bit {bit} out of range")
    flat = arr.reshape(-1)
    if not np.shares_memory(flat, arr):
        raise TypeError("bit flips need a contiguous live array, not a copy")
    element %= flat.size
    old = float(flat[element])
    view = flat.view(np.uint64)
    view[element] ^= np.uint64(1) << np.uint64(bit)
    return old
