"""Young/Daly optimal checkpoint intervals, tied to the machine models.

Young (1974): with checkpoint cost δ and machine MTBF M, the optimal
compute time between checkpoints is ``W* = sqrt(2 δ M)``.  Daly (2006)
refined the estimate and gave the expected-runtime model; both are
first-order in δ/M.  This module computes

* the optimal interval from a checkpoint size and the same α-β machine
  parameters :mod:`repro.mpisim.costmodel` uses for every other transfer
  (checkpoints ride the node's NIC to the parallel filesystem);
* the system MTBF of an N-node machine from a per-node MTBF (failures
  compose: ``M_sys = M_node / N`` — the reason 4 096-node campaigns
  checkpoint hourly while a workstation never bothers);
* the predicted overhead-vs-interval curve the
  :class:`~repro.resilience.runner.ResilientRunner` measures, so tests
  can check the measured minimum lands where the theory says.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.hardware.machine import MachineSpec
from repro.mpisim.costmodel import link_parameters, ranks_per_nic
from repro.resilience.faults import FaultInjector, FaultKind
from repro.resilience.runner import CheckpointCostModel

#: Node-level MTBF assumed for paper-era leadership machines, seconds.
#: Frontier acceptance targeted O(10 h) full-system MTBF at 9 408 nodes,
#: which backs out to a few years per node.
NODE_MTBF_SECONDS = 8.0e7


def young_daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """``W* = sqrt(2 δ M)`` — compute seconds between checkpoints."""
    if checkpoint_cost <= 0:
        raise ValueError("checkpoint cost must be positive")
    if mtbf <= 0:
        raise ValueError("MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def system_mtbf(machine: MachineSpec, *,
                node_mtbf: float = NODE_MTBF_SECONDS) -> float:
    """Independent node failures compose: ``M_sys = M_node / nodes``."""
    if node_mtbf <= 0:
        raise ValueError("node MTBF must be positive")
    return node_mtbf / machine.nodes


def machine_checkpoint_cost(machine: MachineSpec, nbytes_per_node: int, *,
                            restart_cost: float = 60.0) -> CheckpointCostModel:
    """A :class:`CheckpointCostModel` from the machine's own fabric.

    Per-node checkpoint traffic leaves through the node's NICs with every
    rank writing at once — the same ``ranks_per_nic`` sharing model the
    application's halo exchanges pay.  Reads come back at full fabric
    rate (restart is one node pulling, not all nodes pushing).
    """
    fabric = machine.node.interconnect
    if fabric is None:
        raise ValueError(f"{machine.name} has no interconnect spec")
    ranks = max(machine.node.gpus_per_node, 1)
    shared = link_parameters(
        fabric,
        ranks_sharing_nic=ranks_per_nic(ranks, fabric),
        device_buffers=machine.node.has_gpus,
    )
    solo = link_parameters(fabric)
    return CheckpointCostModel(
        write_bandwidth=1.0 / shared.beta,
        read_bandwidth=1.0 / solo.beta,
        latency=shared.alpha,
        restart_cost=restart_cost,
    )


def predicted_overhead(interval: float, checkpoint_cost: float, mtbf: float, *,
                       restart_cost: float = 0.0) -> float:
    """First-order expected overhead fraction at compute interval W.

    ``δ/(W+δ) + (failure rate) × (expected rework + restart)``: the
    checkpoint tax plus, once per MTBF, half an interval of lost work,
    the checkpoint writes that period already paid, and the restart.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    period = interval + checkpoint_cost
    rework = 0.5 * period + restart_cost
    return checkpoint_cost / period + rework / mtbf


def daly_expected_runtime(solve_time: float, interval: float,
                          checkpoint_cost: float, mtbf: float, *,
                          restart_cost: float = 0.0) -> float:
    """Daly's (2006) exponential-failure expected wall clock.

    ``T = M e^{R/M} (e^{(W+δ)/M} − 1) T_s / W`` — exact for Poisson
    failures with rework resuming from the last checkpoint.
    """
    if solve_time <= 0 or interval <= 0:
        raise ValueError("solve time and interval must be positive")
    m = mtbf
    return (
        m
        * math.exp(restart_cost / m)
        * (math.exp((interval + checkpoint_cost) / m) - 1.0)
        * solve_time
        / interval
    )


def scaled_fault_injector(rng: np.random.Generator, machine: MachineSpec, *,
                          machine_ranks: int | None = None,
                          node_mtbf: float = NODE_MTBF_SECONDS,
                          time_compression: float = 1.0,
                          kinds: Iterable[FaultKind] = (
                              FaultKind.RANK_FAILURE,),
                          ) -> FaultInjector:
    """A :class:`FaultInjector` sized to the whole modelled machine.

    Targets draw uniformly over every machine rank (``machine_ranks``,
    defaulting to ``nodes x gpus_per_node`` — 72,592 on Frontier), not
    just the exemplars a ScaledComm executes, and each enabled kind's
    MTBF is the *system* MTBF from :func:`system_mtbf` — node failures
    compose, so doubling the node count halves the time between events.

    ``time_compression`` divides the MTBF for compressed-timescale
    campaigns (a seconds-long simulated campaign standing in for a
    weeks-long one); it scales every node count identically, so the
    1/N shape of the resilience-overhead curve survives compression.
    """
    if time_compression <= 0:
        raise ValueError("time_compression must be positive")
    if machine_ranks is None:
        machine_ranks = machine.nodes * max(machine.node.gpus_per_node, 1)
    m_sys = system_mtbf(machine, node_mtbf=node_mtbf) / time_compression
    return FaultInjector(
        rng=rng,
        mtbf={FaultKind(kind): m_sys for kind in kinds},
        max_target=int(machine_ranks),
    )


def optimal_interval_for_machine(machine: MachineSpec, nbytes_per_node: int, *,
                                 node_mtbf: float = NODE_MTBF_SECONDS) -> float:
    """End-to-end: Young/Daly interval for a checkpoint of
    *nbytes_per_node* on *machine*, with δ from the fabric cost model and
    M from the node count."""
    cost = machine_checkpoint_cost(machine, nbytes_per_node)
    delta = cost.write_time(nbytes_per_node)
    return young_daly_interval(delta, system_mtbf(machine, node_mtbf=node_mtbf))
