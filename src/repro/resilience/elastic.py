"""ULFM-style elastic recovery: survivors absorb the dead ranks' domain.

Checkpoint/restart treats a node failure as the end of the job step: tear
everything down, wait for the scheduler, relaunch at full width.  The
fault-tolerance track of the exascale readiness work argues for the
cheaper alternative the ULFM MPI extensions enable — ``MPIX_Comm_shrink``
the communicator to the survivors, ``MPIX_Comm_agree`` on the failure
set, *redistribute the domain*, and keep going at reduced width.  No
scheduler round-trip, no node-replacement wait; the price is a
redistribution all-to-all and a throughput haircut of
``old_nranks / new_nranks`` for the rest of the campaign (or until the
next allocation grows back).

This module is the redistribution arithmetic and its cost accounting:

* :class:`DomainSpec` — what an application exposes for elastic
  recovery: how many distributable items it owns (particles, cells,
  boxes) and their per-item payload.  Apps advertise it through a
  duck-typed ``elastic_domain()`` method (:func:`domain_of`), so this
  module never imports application code — no import cycles.
* :func:`plan_shrink` — diff the balanced block partition
  (:func:`~repro.mpisim.decomposition.block_owners`) over the old and
  new rank counts: items stranded on dead ranks are *reloaded* from the
  last checkpoint (their in-memory copy died with the node), items whose
  balanced owner merely changed *migrate* survivor-to-survivor.
* :func:`redistribute` — charge the survivor-to-survivor migration
  through the shrunk communicator's ``alltoallv``, so the cost follows
  the same Hockney model as every other message in the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mpisim.comm import SimComm
from repro.mpisim.decomposition import DecompositionError, block_owners


@dataclass(frozen=True)
class DomainSpec:
    """An application's distributable state, as the recovery layer sees it.

    ``nitems`` is the global count of the finest-grained migratable unit
    (HACC particles, Pele cells, AMR boxes); ``bytes_per_item`` its
    payload, ghost/halo data included.
    """

    nitems: int
    bytes_per_item: float
    label: str = "items"

    def __post_init__(self) -> None:
        if self.nitems < 0:
            raise ValueError("nitems must be non-negative")
        if self.bytes_per_item < 0:
            raise ValueError("bytes_per_item must be non-negative")


def domain_of(app: object) -> DomainSpec | None:
    """The app's :class:`DomainSpec` via its ``elastic_domain()`` hook.

    Returns ``None`` for apps that don't participate in elastic recovery
    (they can still be shrink-recovered; redistribution is just free).
    """
    hook = getattr(app, "elastic_domain", None)
    if not callable(hook):
        return None
    spec = hook()
    if spec is None:
        return None
    if not isinstance(spec, DomainSpec):
        raise TypeError(
            f"elastic_domain() must return a DomainSpec or None, "
            f"got {type(spec).__name__}"
        )
    return spec


@dataclass(frozen=True)
class ShrinkPlan:
    """The data motion implied by re-balancing onto the survivors.

    ``send_items[i, j]`` counts items survivor *i* (new numbering) ships
    to survivor *j*; ``reloaded_items`` died with their owners and come
    back from the checkpoint instead (that read is priced by the
    runner's recovery path, not here).
    """

    nitems: int
    old_nranks: int
    new_nranks: int
    migrated_items: int
    reloaded_items: int
    bytes_per_item: float
    send_items: np.ndarray  # (pair_ranks, pair_ranks) int64
    #: side of ``send_items``.  Equals ``new_nranks`` for a dense plan;
    #: a *weighted-group* plan (built with ``pair_of``) folds the
    #: machine-pair traffic onto ``R`` exemplar pairs, each cell holding
    #: the worst per-pair count it stands for — the bound ScaledComm's
    #: conservative ``alltoallv`` prices exactly.  ``migrated_items`` /
    #: ``reloaded_items`` stay machine-exact either way.
    pair_ranks: int = 0

    def __post_init__(self) -> None:
        if self.pair_ranks == 0:
            object.__setattr__(self, "pair_ranks",
                               int(self.send_items.shape[0]))

    @property
    def migrated_bytes(self) -> float:
        return self.migrated_items * self.bytes_per_item

    @property
    def reloaded_bytes(self) -> float:
        return self.reloaded_items * self.bytes_per_item


def plan_shrink(nitems: int, survivors: Sequence[int], old_nranks: int,
                bytes_per_item: float = 8.0, *,
                pair_of: Sequence[int] | np.ndarray | None = None
                ) -> ShrinkPlan:
    """Diff the balanced partitions before and after a shrink.

    ``survivors`` are old-numbering ranks, in order; they become new
    ranks ``0..len(survivors)-1`` (dense renumbering preserving order —
    exactly what :meth:`~repro.mpisim.comm.SimComm.shrink` does).

    ``pair_of`` (length ``len(survivors)``) maps each *new* rank to the
    exemplar slot that stands for it on a representative-rank
    communicator (:meth:`~repro.mpisim.scaled.ScaledComm.proxy_live_indices`
    of the shrunk comm).  When given, the dense
    ``new_nranks x new_nranks`` send matrix — 42 GB at 72,592 survivors
    — is never materialized: machine pairs fold onto exemplar pairs,
    each cell keeping the **max** per-pair item count it covers, which
    is exactly the worst-pair bound the scaled ``alltoallv`` prices.
    """
    surv = np.asarray(sorted(int(r) for r in survivors), dtype=np.int64)
    if surv.size == 0:
        raise DecompositionError("cannot redistribute onto zero survivors")
    if surv.size != np.unique(surv).size:
        raise DecompositionError("duplicate survivor ranks")
    if surv[0] < 0 or surv[-1] >= old_nranks:
        raise DecompositionError(
            f"survivors {surv.tolist()} out of range for {old_nranks} ranks"
        )
    new_n = int(surv.size)
    old_owner = block_owners(nitems, old_nranks)
    new_owner = block_owners(nitems, new_n)
    remap = np.full(old_nranks, -1, dtype=np.int64)
    remap[surv] = np.arange(new_n, dtype=np.int64)
    holder = remap[old_owner]  # -1: the item's in-memory copy is gone
    dead = holder < 0
    moving = ~dead & (holder != new_owner)
    if pair_of is not None:
        pairs = np.asarray(pair_of, dtype=np.int64)
        if pairs.shape != (new_n,):
            raise DecompositionError(
                f"pair_of must map all {new_n} survivors, "
                f"got shape {pairs.shape}")
        nlive = int(pairs.max()) + 1 if pairs.size else 0
        send = np.zeros((nlive, nlive), dtype=np.int64)
        if moving.any():
            # count items per machine pair, then keep each exemplar
            # cell's worst machine pair (O(nitems), never O(new_n^2))
            codes = holder[moving] * new_n + new_owner[moving]
            upairs, counts = np.unique(codes, return_counts=True)
            np.maximum.at(send, (pairs[upairs // new_n],
                                 pairs[upairs % new_n]), counts)
    else:
        send = np.zeros((new_n, new_n), dtype=np.int64)
        if moving.any():
            np.add.at(send, (holder[moving], new_owner[moving]), 1)
    return ShrinkPlan(
        nitems=int(nitems), old_nranks=int(old_nranks), new_nranks=new_n,
        migrated_items=int(moving.sum()), reloaded_items=int(dead.sum()),
        bytes_per_item=float(bytes_per_item), send_items=send,
    )


def redistribute(comm: SimComm, plan: ShrinkPlan) -> float:
    """Charge the plan's survivor-to-survivor motion on the shrunk comm.

    Runs a real ``alltoallv`` with the plan's byte matrix so the time
    lands on the communicator clocks (Hockney per-pair costs, slowest
    rank defines the step).  Returns the simulated seconds it took.
    """
    if comm.machine_ranks != plan.new_nranks:
        raise DecompositionError(
            f"plan targets {plan.new_nranks} ranks, comm models "
            f"{comm.machine_ranks}"
        )
    if comm.nranks != plan.pair_ranks:
        raise DecompositionError(
            f"plan's send matrix covers {plan.pair_ranks} executed ranks, "
            f"comm executes {comm.nranks} — build the plan with the "
            f"shrunk comm's proxy_live_indices()"
        )
    t0 = comm.elapsed
    n = comm.nranks
    payload = [[None] * n for _ in range(n)]
    nbytes = (plan.send_items * plan.bytes_per_item).tolist()
    comm.alltoallv(payload, nbytes)
    return comm.elapsed - t0


def shrink_and_redistribute(app: object, comm: SimComm
                            ) -> tuple[SimComm, ShrinkPlan | None, float]:
    """The full elastic-recovery collective sequence, in one call.

    ``agree`` on the failure set, ``shrink`` to the survivors, re-balance
    the app's domain onto them.  Returns
    ``(shrunk_comm, plan_or_None, redistribution_seconds)``; the caller
    swaps the shrunk communicator in and keeps stepping.
    """
    new_comm = comm.shrink()
    spec = domain_of(app)
    if spec is None or spec.nitems == 0:
        return new_comm, None, 0.0
    survivors = (getattr(new_comm, "parent_machine_ranks", None)
                 or new_comm.parent_ranks
                 or tuple(range(new_comm.machine_ranks)))
    pair_of = None
    if new_comm.machine_ranks != new_comm.nranks:
        # representative-rank survivor comm: fold the machine-pair
        # traffic onto the exemplar pairs the comm actually executes
        pair_of = new_comm.proxy_live_indices()
    plan = plan_shrink(spec.nitems, survivors, comm.machine_ranks,
                       spec.bytes_per_item, pair_of=pair_of)
    dt = redistribute(new_comm, plan)
    return new_comm, plan, dt
