"""Seeded fault injection: the failure processes exascale campaigns live with.

Frontier-scale reality (and the §2 early-access experience): at 4 096+
nodes the system MTBF is measured in hours, GPUs disappear mid-job,
and links flap.  :class:`FaultInjector` draws those events from
independent exponential inter-arrival distributions (one configurable
MTBF per fault kind) using an *explicit* seeded generator — the schedule
is a pure function of the seed, so a campaign rerun at a different
checkpoint interval sees the exact same failure process (what the
Young/Daly validation needs).

Faults *fire through the real substrates* rather than being abstract
flags: a rank failure marks the rank dead in :class:`~repro.mpisim.comm.SimComm`
(so the next collective raises :class:`~repro.mpisim.comm.RankFailedError`),
and a device OOM reserves the remaining heap of a
:class:`~repro.gpu.device.Device` so the allocator's own
:class:`~repro.gpu.memory.OutOfDeviceMemory` fires.  ``clear`` undoes the
damage — the "replacement node" the scheduler hands back after a restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.gpu.device import Device
from repro.gpu.memory import Allocation, OutOfDeviceMemory
from repro.mpisim.comm import RankFailedError, SimComm
from repro.resilience.abft import flip_bit


class FaultKind(str, Enum):
    RANK_FAILURE = "rank_failure"
    DEVICE_OOM = "device_oom"
    LINK_DEGRADATION = "link_degradation"
    SDC = "sdc"


#: Kinds that kill the job step (vs. merely slowing it down).  SDC is the
#: insidious non-member: the job keeps running on corrupted data, and only
#: the ABFT checksums (:mod:`repro.resilience.abft`) can turn it fatal.
FATAL_KINDS = frozenset({FaultKind.RANK_FAILURE, FaultKind.DEVICE_OOM})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: absolute simulated time + kind + target."""

    time: float
    kind: FaultKind
    target: int
    #: link_degradation only: throughput divisor and how long it lasts.
    slowdown: float = 1.0
    duration: float = 0.0
    #: sdc only: which bit of the targeted float64 element flips.
    bit: int = -1

    @property
    def fatal(self) -> bool:
        return self.kind in FATAL_KINDS


class SimulatedFault(RuntimeError):
    """A fault fired by the injector; carries the originating event."""

    def __init__(self, event: FaultEvent, message: str) -> None:
        super().__init__(message)
        self.event = event


class RankFailureFault(SimulatedFault):
    pass


class DeviceOomFault(SimulatedFault):
    pass


@dataclass
class FaultInjector:
    """Draws fault events from per-kind exponential MTBF distributions.

    ``mtbf`` maps kind -> mean seconds between events of that kind
    (``float('inf')`` or omission disables a kind).  ``rng`` must be an
    explicitly seeded generator — determinism is load-bearing here, both
    for reproducible campaigns and for comparing checkpoint intervals
    against an identical failure process.

    ``max_target`` bounds the uniform target draw.  For machine-scale
    campaigns set it to ``comm.machine_ranks`` (72,592 on the modelled
    Frontier) so failures land anywhere on the machine, not just on the
    executed exemplars — :func:`repro.resilience.daly.scaled_fault_injector`
    builds exactly that, with the MTBF scaled by true node count.
    """

    rng: np.random.Generator
    mtbf: dict[FaultKind, float] = field(default_factory=dict)
    max_target: int = 4096
    degradation_slowdown: float = 2.0
    degradation_duration_fraction: float = 0.1  # of that kind's MTBF

    def __post_init__(self) -> None:
        if not isinstance(self.rng, np.random.Generator):
            raise TypeError("FaultInjector requires an explicit np.random.Generator")
        self.mtbf = {FaultKind(k): float(v) for k, v in self.mtbf.items()}
        for kind, m in self.mtbf.items():
            if m <= 0:
                raise ValueError(f"MTBF for {kind.value} must be positive")
        self.events_fired: list[FaultEvent] = []
        self.events_drawn: int = 0
        self.events_requeued: int = 0
        self.sdc_injected: list[tuple[FaultEvent, float]] = []
        self._requeued: list[FaultEvent] = []
        self._oom_reservations: list[tuple[Device, list[Allocation]]] = []
        # draw each kind's first arrival in a fixed (enum) order so the
        # schedule depends only on the seed and the mtbf dict contents
        self._next: dict[FaultKind, FaultEvent] = {}
        for kind in FaultKind:
            if np.isfinite(self.mtbf.get(kind, np.inf)):
                self._draw_next(kind, 0.0)

    def _draw_next(self, kind: FaultKind, after: float) -> None:
        gap = float(self.rng.exponential(self.mtbf[kind]))
        target = int(self.rng.integers(self.max_target))
        if kind is FaultKind.LINK_DEGRADATION:
            event = FaultEvent(
                time=after + gap, kind=kind, target=target,
                slowdown=self.degradation_slowdown,
                duration=self.degradation_duration_fraction * self.mtbf[kind],
            )
        elif kind is FaultKind.SDC:
            # the extra bit draw happens only on SDC's own stream slots, so
            # configs without SDC see the exact schedule they always did
            event = FaultEvent(time=after + gap, kind=kind, target=target,
                               bit=int(self.rng.integers(64)))
        else:
            event = FaultEvent(time=after + gap, kind=kind, target=target)
        self._next[kind] = event

    # -- schedule ----------------------------------------------------------

    def peek(self) -> FaultEvent | None:
        """The earliest pending event (requeued or fresh), without
        consuming it."""
        candidates = self._requeued + list(self._next.values())
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.time)

    def pop(self) -> FaultEvent:
        """Consume the earliest pending event.

        Requeued events come back *without* a redraw — they were drawn
        (and counted) exactly once on their first pop.  Fresh events
        redraw their kind's next arrival.  Every popped event must
        subsequently be :meth:`fire`\\ d or :meth:`requeue`\\ d; the
        identity ``events_drawn == len(events_fired) + pending requeued``
        is what :meth:`assert_conserved` checks, so an event silently
        dropped by a caller is an accounting error, not a quiet no-op.
        """
        event = self.peek()
        if event is None:
            raise RuntimeError("no fault kinds enabled")
        for i, e in enumerate(self._requeued):
            if e == event:  # already counted drawn on its first pop
                del self._requeued[i]
                return event
        self.events_drawn += 1
        self._draw_next(event.kind, event.time)
        return event

    def requeue(self, event: FaultEvent) -> None:
        """Put a popped-but-unfired event back on the schedule.

        The escape hatch that makes dropping events impossible: a caller
        that pops an event it cannot handle this step (e.g. a non-fatal
        event landing past a rollback point) must requeue it rather than
        forget it.
        """
        self.events_requeued += 1
        self._requeued.append(event)

    @property
    def events_pending_requeued(self) -> int:
        return len(self._requeued)

    def assert_conserved(self) -> None:
        """Every drawn event must be fired or still requeued.

        Valid whenever all fires go through :meth:`pop` (the runner's
        discipline); hand-constructed events fired directly break the
        identity by design.
        """
        accounted = len(self.events_fired) + len(self._requeued)
        if self.events_drawn != accounted:
            raise AssertionError(
                f"fault-event conservation violated: drawn "
                f"{self.events_drawn}, fired {len(self.events_fired)} + "
                f"requeued-pending {len(self._requeued)} = {accounted}"
            )

    # -- firing through the substrates -------------------------------------

    def fire(self, event: FaultEvent, *, comm: SimComm | None = None,
             device: Device | None = None,
             arrays: list[np.ndarray] | None = None) -> None:
        """Make *event* happen.  Fatal kinds raise a :class:`SimulatedFault`
        after routing the damage through the provided substrates.

        ``arrays`` are the *live* state arrays an SDC event may strike:
        the event's target deterministically selects one array and one
        element, and :func:`~repro.resilience.abft.flip_bit` corrupts it
        in place — silently, which is the whole point.  The injection is
        recorded in ``sdc_injected`` (ground truth), so detection
        coverage is *measured* against what was actually flipped rather
        than assumed.
        """
        self.events_fired.append(event)
        if event.kind is FaultKind.SDC:
            live = [a for a in (arrays or [])
                    if a.dtype == np.float64 and a.size
                    and a.flags["C_CONTIGUOUS"]]
            if live:
                arr = live[event.target % len(live)]
                old = flip_bit(arr, event.target, event.bit)
                self.sdc_injected.append((event, old))
            return
        if event.kind is FaultKind.RANK_FAILURE:
            if comm is not None:
                # modulo the *machine* rank count: on a ScaledComm the
                # target lands anywhere on the modelled machine (72,592
                # ranks), not just the R exemplars; on a SimComm
                # machine_ranks == nranks and nothing changes
                rank = event.target % comm.machine_ranks
                comm.fail_rank(rank)
                try:
                    comm.barrier()  # ULFM-style detection at the next collective
                except RankFailedError as exc:
                    raise RankFailureFault(
                        event, f"rank {rank} failed at t={event.time:.1f}s"
                    ) from exc
                raise AssertionError("dead rank must fail the barrier")
            raise RankFailureFault(
                event, f"rank {event.target} failed at t={event.time:.1f}s"
            )
        if event.kind is FaultKind.DEVICE_OOM:
            if device is not None:
                hog = device.reserve_remaining_memory(tag="fault-injected")
                self._oom_reservations.append((device, hog))
                try:
                    device.malloc(1, tag="oom-canary")
                except OutOfDeviceMemory as exc:
                    raise DeviceOomFault(
                        event,
                        f"device {device.device_id} out of memory at "
                        f"t={event.time:.1f}s",
                    ) from exc
                raise AssertionError("exhausted device must refuse the canary")
            raise DeviceOomFault(
                event, f"device {event.target} out of memory at t={event.time:.1f}s"
            )
        # link degradation is not fatal: the caller slows affected steps
        # down, and a provided communicator degrades its fabric for the
        # window so collectives priced meanwhile see the real bandwidth
        if event.kind is FaultKind.LINK_DEGRADATION and comm is not None:
            comm.degrade_link(event.slowdown, event.duration)

    def clear(self, *, comm: SimComm | None = None,
              device: Device | None = None) -> None:
        """Undo fired damage: revive failed ranks, release OOM pressure."""
        if comm is not None:
            # failed_ranks speaks machine numbering on every communicator
            # (a ScaledComm reports dead modelled ranks too, which the
            # live-index `failed` mask cannot)
            for rank in comm.failed_ranks():
                comm.restore_rank(rank)
        for dev, allocs in self._oom_reservations:
            if device is not None and dev is not device:
                continue
            for alloc in allocs:
                dev.free(alloc)
        self._oom_reservations = [
            (dev, allocs) for dev, allocs in self._oom_reservations
            if device is not None and dev is not device
        ]
