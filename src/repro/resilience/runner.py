"""Resilient campaign driver: periodic checkpoints, failure recovery, accounting.

:class:`ResilientRunner` wraps any :class:`SteppedApp` (a
:class:`~repro.resilience.snapshot.Checkpointable` whose ``step()``
advances the computation and returns its simulated cost in seconds) and
drives a long campaign the way production jobs on Frontier actually run:

* checkpoint every ``checkpoint_interval`` committed steps, paying the
  serialization size through a :class:`CheckpointCostModel` (write
  latency + bytes/bandwidth — the burst-buffer term of the Young/Daly δ);
* when the :class:`~repro.resilience.faults.FaultInjector` fires a fatal
  event mid-step, roll the work since the last checkpoint into
  ``lost_work_time``, recover through the configured
  :class:`RecoveryPolicy` — full ``restart`` (scheduler relaunch at full
  width), ULFM-style ``shrink-continue`` (drop to the survivors,
  redistribute the domain via :mod:`repro.resilience.elastic`, keep
  going at degraded throughput), or ``spare-swap`` (activate a node from
  a warm spare pool, falling back to shrink when the pool runs dry) —
  then restore from the last *valid* snapshot (checksum-verified, with
  fallback to the previous one) and replay;
* fire non-fatal events through the injector too — a link degradation
  slows overlapping steps, an SDC event flips a bit in the app's live
  arrays (``sdc_targets()`` hook) and is caught *only* if the app's
  checksum guards (``validate_state()`` hook, or an ABFT check inside
  ``step()``) notice: detection coverage is measured, never assumed;
* bound the retries: ``max_retries`` consecutive failures without
  reaching a new checkpoint raise :class:`ResilienceError`;
* account everything into a :class:`ResilienceStats` whose
  ``overhead_fraction`` / ``inflation`` are the measured curve the
  Young/Daly model in :mod:`repro.resilience.daly` predicts, and whose
  event counters must satisfy the conservation identity — every drawn
  fault event is fired or requeued, none silently dropped.

Because snapshots are bit-exact and apps are deterministic, a
fault-injected campaign finishes in *exactly* the same final state as a
failure-free run — under *any* recovery policy, which is the acceptance
test for this subsystem (shrink-continue included: redistribution moves
ownership and time, never values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.gpu.device import Device
from repro.mpisim.comm import CommError, SimComm
from repro.resilience.abft import SdcDetected
from repro.resilience.elastic import shrink_and_redistribute
from repro.resilience.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    SimulatedFault,
)
from repro.resilience.snapshot import (
    Snapshot,
    decode_snapshot,
    encode_snapshot,
    require_kind,
    snapshot_checksum,
)

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.observability.tracer import Tracer


class ResilienceError(RuntimeError):
    """Unrecoverable campaign: retries exhausted or no valid checkpoint."""


@runtime_checkable
class SteppedApp(Protocol):
    """A checkpointable application advanced step by step."""

    snapshot_kind: str
    snapshot_version: int

    def step(self) -> float:
        """Advance one step; returns the step's simulated cost in seconds."""
        ...

    def snapshot(self) -> Snapshot: ...

    def restore(self, snap: Snapshot) -> None: ...


@dataclass(frozen=True)
class CheckpointCostModel:
    """Simulated cost of moving checkpoints to and from stable storage.

    Defaults are Frontier-node-ish: a few GB/s per node to the burst
    buffer, milliseconds of open/close latency, and a scheduler restart
    penalty of about a minute.
    """

    write_bandwidth: float = 4e9  # bytes/s
    read_bandwidth: float = 8e9  # bytes/s
    latency: float = 2e-3  # per open/close, s
    restart_cost: float = 60.0  # job relaunch + node replacement, s

    def __post_init__(self) -> None:
        if min(self.write_bandwidth, self.read_bandwidth) <= 0:
            raise ValueError("checkpoint bandwidths must be positive")
        if self.latency < 0 or self.restart_cost < 0:
            raise ValueError("latency and restart cost must be non-negative")

    def write_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.write_bandwidth

    def read_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.read_bandwidth


@dataclass
class ResilienceStats:
    """Where the campaign's simulated wall-clock went."""

    steps_completed: int = 0
    steps_replayed: int = 0
    checkpoints_written: int = 0
    checkpoint_bytes: int = 0
    recoveries: int = 0
    failures_by_kind: dict[str, int] = field(default_factory=dict)
    degradations_seen: int = 0

    # silent-data-corruption ground truth vs. what the guards caught
    sdc_injected: int = 0
    sdc_detected: int = 0

    # elastic-recovery bookkeeping
    shrinks: int = 0
    spares_used: int = 0
    ranks_initial: int = 0
    ranks_final: int = 0
    migrated_bytes: float = 0.0

    # fault-event conservation (mirrors the injector's counters)
    events_drawn: int = 0
    events_fired: int = 0
    events_requeued_pending: int = 0

    useful_time: float = 0.0  # committed step work in the final trajectory
    lost_work_time: float = 0.0  # rolled-back (replayed or partial) work
    checkpoint_time: float = 0.0  # snapshot writes
    recovery_time: float = 0.0  # restart + backoff + checkpoint reads
    degraded_time: float = 0.0  # extra step time under degraded links
    degraded_throughput_time: float = 0.0  # running below full width
    wall_clock: float = 0.0  # simulated campaign end time

    @property
    def overhead_time(self) -> float:
        return self.wall_clock - self.useful_time

    def assert_event_conservation(self) -> None:
        """Every drawn fault event must be fired or still requeued.

        The accounting contract of satellite-grade fault injection: a
        popped event a caller neither fired nor requeued is a *silently
        dropped failure* — the campaign looked healthier than its own
        failure process.  Raises :class:`AssertionError` on violation.
        """
        if self.events_drawn != self.events_fired + self.events_requeued_pending:
            raise AssertionError(
                f"fault-event conservation violated: drawn "
                f"{self.events_drawn} != fired {self.events_fired} + "
                f"requeued-pending {self.events_requeued_pending}"
            )

    @property
    def overhead_fraction(self) -> float:
        """Fraction of the campaign that was not useful forward progress."""
        return self.overhead_time / self.wall_clock if self.wall_clock > 0 else 0.0

    @property
    def inflation(self) -> float:
        """Wall-clock inflation vs. a free-checkpoint, failure-free run."""
        return self.wall_clock / self.useful_time if self.useful_time > 0 else 1.0

    def describe(self) -> str:
        fail = ", ".join(f"{k}x{v}" for k, v in sorted(self.failures_by_kind.items()))
        elastic = ""
        if self.shrinks or self.spares_used:
            elastic = (
                f", {self.shrinks} shrinks / {self.spares_used} spares "
                f"({self.ranks_initial}->{self.ranks_final} ranks)"
            )
        sdc = ""
        if self.sdc_injected:
            sdc = f", SDC {self.sdc_detected}/{self.sdc_injected} detected"
        return (
            f"{self.steps_completed} steps (+{self.steps_replayed} replayed), "
            f"{self.checkpoints_written} checkpoints "
            f"({self.checkpoint_bytes / 1e6:.2f} MB), "
            f"{self.recoveries} recoveries [{fail or 'no failures'}]{elastic}{sdc}; "
            f"wall {self.wall_clock:.1f}s = useful {self.useful_time:.1f}s "
            f"+ ckpt {self.checkpoint_time:.1f}s + lost {self.lost_work_time:.1f}s "
            f"+ recovery {self.recovery_time:.1f}s + degraded "
            f"{self.degraded_time:.1f}s + narrow {self.degraded_throughput_time:.1f}s "
            f"(overhead {self.overhead_fraction:.1%})"
        )


# ---------------------------------------------------------------------------
# Recovery policies: what "come back from a fatal fault" costs
# ---------------------------------------------------------------------------


class RecoveryPolicy:
    """How a campaign comes back from a fatal fault.

    ``recover`` runs the policy's mechanics (relaunch / shrink /
    spare activation) against the runner's substrates and returns the
    simulated seconds they took — checkpoint read and backoff are priced
    by the runner on top.  Policies may replace ``runner.comm`` (shrink)
    and must leave the communicator in a steppable state.
    """

    name = "restart"

    def recover(self, runner: "ResilientRunner", event: FaultEvent | None,
                stats: ResilienceStats) -> float:
        raise NotImplementedError


class RestartPolicy(RecoveryPolicy):
    """Classic checkpoint/restart: tear down, get replacement nodes,
    relaunch at full width.  The scheduler round-trip is the dominant
    cost; the failure leaves no lasting mark on throughput."""

    name = "restart"

    def recover(self, runner: "ResilientRunner", event: FaultEvent | None,
                stats: ResilienceStats) -> float:
        if runner.injector is not None:
            runner.injector.clear(comm=runner.comm, device=runner.device)
        return runner.cost_model.restart_cost


class ShrinkContinuePolicy(RecoveryPolicy):
    """ULFM shrink-and-continue: agree on the dead, shrink to the
    survivors, redistribute the domain, keep stepping — no scheduler
    round-trip, but every later step runs ``old/new`` slower (accounted
    as ``degraded_throughput_time``)."""

    name = "shrink-continue"

    def recover(self, runner: "ResilientRunner", event: FaultEvent | None,
                stats: ResilienceStats) -> float:
        comm = runner.comm
        if comm is None:
            # nothing to shrink; degenerate to a restart
            return RestartPolicy().recover(runner, event, stats)
        if runner.injector is not None and runner.device is not None:
            # the OOM'd device leaves the job with its node
            runner.injector.clear(device=runner.device)
        if (event is not None and event.kind is FaultKind.DEVICE_OOM
                and not comm.failed_ranks()):
            # machine numbering throughout: on a ScaledComm the OOM'd
            # node can be any modelled rank, on a SimComm it's identical
            # to the old index arithmetic
            comm.fail_rank(event.target % comm.machine_ranks)
        if not comm.alive_ranks():
            raise ResilienceError("no surviving ranks to shrink onto")
        try:
            new_comm, plan, _ = shrink_and_redistribute(runner.app, comm)
        except CommError as exc:
            raise ResilienceError(f"elastic shrink failed: {exc}") from exc
        redist_time = max(new_comm.elapsed - comm.elapsed, 0.0)
        runner.comm = new_comm
        stats.shrinks += 1
        stats.ranks_final = new_comm.machine_ranks
        if plan is not None:
            stats.migrated_bytes += plan.migrated_bytes
        if stats.ranks_initial > 0:
            runner.throughput_factor = (stats.ranks_initial
                                        / new_comm.machine_ranks)
        return redist_time


@runtime_checkable
class SpareNodeSource(Protocol):
    """Anything spare nodes can be drawn from — a private per-job pool or
    a machine-wide pool shared with a scheduler (:mod:`repro.service`).

    ``try_acquire`` returns whether a spare was granted; the caller keeps
    it until the campaign ends (releasing is the owner's business, not the
    recovery policy's)."""

    def try_acquire(self, purpose: str) -> bool: ...


class SpareSwapPolicy(RecoveryPolicy):
    """Warm spare pool: a failed node's work moves to an idle spare at
    activation cost (no scheduler, no shrink) until the pool runs dry —
    then degrade to shrink-and-continue.

    By default the pool is private (``spares`` nodes reserved for this
    campaign alone).  Passing ``pool`` instead draws from a shared
    :class:`SpareNodeSource` — the machine-wide spare pool a campaign
    service's scheduler also borrows from, so recovery and scheduling
    contend for the same nodes and the contention is resolved by whoever
    asks first in deterministic event order.
    """

    name = "spare-swap"

    def __init__(self, spares: int = 2, activation_cost: float = 15.0,
                 pool: SpareNodeSource | None = None) -> None:
        if spares < 0:
            raise ValueError("spare pool size must be non-negative")
        if activation_cost < 0:
            raise ValueError("activation cost must be non-negative")
        self.spares = spares
        self.spares_left = spares
        self.activation_cost = activation_cost
        self.pool = pool
        #: spares this policy actually took (from either source); a
        #: shared pool's owner releases exactly this many at job end
        self.acquired = 0
        self._fallback = ShrinkContinuePolicy()

    def _take_spare(self) -> bool:
        if self.pool is not None:
            if not self.pool.try_acquire("recovery"):
                return False
        elif self.spares_left > 0:
            self.spares_left -= 1
        else:
            return False
        self.acquired += 1
        return True

    def recover(self, runner: "ResilientRunner", event: FaultEvent | None,
                stats: ResilienceStats) -> float:
        if self._take_spare():
            stats.spares_used += 1
            if runner.injector is not None:
                # the spare assumes the dead rank's identity
                runner.injector.clear(comm=runner.comm, device=runner.device)
            return self.activation_cost
        return self._fallback.recover(runner, event, stats)


_POLICY_NAMES = {
    "restart": RestartPolicy,
    "shrink": ShrinkContinuePolicy,
    "shrink-continue": ShrinkContinuePolicy,
    "spare": SpareSwapPolicy,
    "spare-swap": SpareSwapPolicy,
}


def make_policy(name: str, **kwargs) -> RecoveryPolicy:
    """Resolve a policy by CLI-friendly name.

    Keyword arguments pass straight to the policy constructor —
    ``make_policy("spare_swap", pool=shared_pool)`` or
    ``make_policy("spare", spares=4, activation_cost=0.005)`` — so
    callers never special-case policy construction.  Underscores in
    *name* normalize to dashes.
    """
    try:
        cls = _POLICY_NAMES[name.replace("_", "-")]
    except KeyError:
        raise ValueError(
            f"unknown recovery policy {name!r}; "
            f"choose from {sorted(set(_POLICY_NAMES))}"
        ) from None
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValueError(
            f"bad arguments for recovery policy {name!r}: {exc}") from None


@dataclass
class _StoredCheckpoint:
    step: int
    blob: bytes
    checksum: str


class ResilientRunner:
    """Drive a :class:`SteppedApp` campaign through failures to completion."""

    def __init__(
        self,
        app: SteppedApp,
        *,
        checkpoint_interval: int,
        injector: FaultInjector | None = None,
        cost_model: CheckpointCostModel | None = None,
        comm: SimComm | None = None,
        device: Device | None = None,
        max_retries: int = 8,
        backoff_base: float = 1.0,
        keep_snapshots: int = 2,
        policy: RecoveryPolicy | str = "restart",
        tracer: "Tracer | None" = None,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1 step")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if keep_snapshots < 1:
            raise ValueError("keep_snapshots must be >= 1")
        self.app = app
        self.checkpoint_interval = checkpoint_interval
        self.injector = injector
        self.cost_model = cost_model or CheckpointCostModel()
        self.comm = comm
        self.device = device
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.keep_snapshots = keep_snapshots
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        #: observation-only span/metric sink on the campaign's simulated
        #: clock; ``None`` keeps every instrumented site one pointer test
        self.tracer = tracer
        #: step-time multiplier while running below the initial width
        self.throughput_factor = 1.0
        self._checkpoints: list[_StoredCheckpoint] = []

    # -- checkpoint store ----------------------------------------------------

    def _write_checkpoint(self, step: int, stats: ResilienceStats,
                          t_sim: float = 0.0) -> float:
        blob = encode_snapshot(self.app.snapshot())
        self._checkpoints.append(
            _StoredCheckpoint(step=step, blob=blob,
                              checksum=snapshot_checksum(blob))
        )
        del self._checkpoints[:-self.keep_snapshots]
        stats.checkpoints_written += 1
        stats.checkpoint_bytes += len(blob)
        cost = self.cost_model.write_time(len(blob))
        tr = self.tracer
        if tr is not None:
            tr.record("resilience.checkpoint", t_sim, cost, cat="resilience",
                      pid="resilience", tid="runner", step=int(step),
                      nbytes=len(blob))
            tr.metrics.counter("resilience.checkpoints").inc()
            tr.metrics.counter("resilience.checkpoint_bytes").inc(
                float(len(blob)))
        return cost

    def _restore_latest_valid(self, stats: ResilienceStats) -> tuple[int, float]:
        """Restore the newest checksum-valid checkpoint; returns
        ``(step_restored_to, simulated_read_time)``."""
        read_time = 0.0
        while self._checkpoints:
            ckpt = self._checkpoints[-1]
            read_time += self.cost_model.read_time(len(ckpt.blob))
            if snapshot_checksum(ckpt.blob) == ckpt.checksum:
                snap = decode_snapshot(ckpt.blob)
                require_kind(snap, self.app)
                self.app.restore(snap)
                return ckpt.step, read_time
            self._checkpoints.pop()  # torn write: fall back one generation
        raise ResilienceError("no valid checkpoint to restore from")

    # -- the campaign loop ----------------------------------------------------

    def run(self, nsteps: int) -> ResilienceStats:
        if nsteps < 1:
            raise ValueError("campaign needs at least one step")
        stats = ResilienceStats()
        if self.comm is not None:
            stats.ranks_initial = stats.ranks_final = self.comm.machine_ranks
        tr = self.tracer
        run_idx = None
        if tr is not None:
            run_idx = tr.begin("resilience.run", ts=0.0, cat="resilience",
                               pid="resilience", tid="runner",
                               nsteps=int(nsteps), policy=self.policy.name)
        try:
            return self._run_loop(nsteps, stats, tr)
        finally:
            if run_idx is not None:
                tr.end(run_idx, ts=stats.wall_clock)

    def _run_loop(self, nsteps: int, stats: ResilienceStats,
                  tr: "Tracer | None") -> ResilienceStats:
        t_sim = 0.0
        pending_useful = 0.0  # committed-step work not yet checkpointed
        consecutive_failures = 0
        degradations: list[FaultEvent] = []

        # checkpoint 0: the initial state is always restorable
        t_sim += self._write_checkpoint(0, stats)
        stats.checkpoint_time += t_sim

        step = 0
        first_pass_through = 0  # highest step index ever committed
        while step < nsteps:
            try:
                dt = self.app.step()
            except SdcDetected:
                # an earlier undetected flip tripped an in-step ABFT
                # guard: the state is corrupt, roll back to a checkpoint
                stats.sdc_detected += 1
                stats.lost_work_time += pending_useful
                self._trace_fault("sdc", t_sim, pending_useful)
                pending_useful = 0.0
                stats.failures_by_kind["sdc"] = (
                    stats.failures_by_kind.get("sdc", 0) + 1
                )
                consecutive_failures += 1
                self._check_retries(consecutive_failures)
                recovery, step = self._recover(stats, consecutive_failures,
                                               use_policy=False, t_sim=t_sim)
                t_sim += recovery
                continue
            event = self._pending_event(t_sim + dt)
            if event is not None and event.fatal:
                # the step dies mid-flight: everything since the last
                # checkpoint (committed-but-unsaved steps + the partial
                # step) is lost work
                partial = min(max(event.time - t_sim, 0.0), dt)
                stats.lost_work_time += pending_useful + partial
                self._trace_fault(event.kind.value, event.time,
                                  pending_useful + partial)
                pending_useful = 0.0
                t_sim = max(t_sim + partial, event.time)
                stats.failures_by_kind[event.kind.value] = (
                    stats.failures_by_kind.get(event.kind.value, 0) + 1
                )
                try:
                    self.injector.fire(event, comm=self.comm, device=self.device)
                except SimulatedFault:
                    pass  # detected; recover below
                consecutive_failures += 1
                self._check_retries(consecutive_failures)
                recovery, step = self._recover(stats, consecutive_failures,
                                               event=event, t_sim=t_sim)
                t_sim += recovery
                continue

            if event is not None and event.kind is FaultKind.SDC:
                # the flip lands in live state *after* the step's math —
                # silently; only the app's own guards can notice
                self.injector.fire(event, arrays=self._sdc_arrays())
                stats.sdc_injected = len(self.injector.sdc_injected)
                if self._sdc_detected():
                    stats.sdc_detected += 1
                    stats.lost_work_time += pending_useful + dt
                    self._trace_fault("sdc", event.time, pending_useful + dt)
                    pending_useful = 0.0
                    t_sim = max(t_sim + dt, event.time)
                    stats.failures_by_kind["sdc"] = (
                        stats.failures_by_kind.get("sdc", 0) + 1
                    )
                    consecutive_failures += 1
                    self._check_retries(consecutive_failures)
                    recovery, step = self._recover(stats, consecutive_failures,
                                                   use_policy=False)
                    t_sim += recovery
                    continue
                # undetected: the corruption rides on — and will be
                # checkpointed, which is exactly the danger being measured

            # the step survived; account link degradation slowdowns and
            # the throughput haircut of running below initial width
            extra = self._degradation_penalty(t_sim, dt, event, degradations, stats)
            narrow = dt * (self.throughput_factor - 1.0)
            t_sim += dt + extra + narrow
            pending_useful += dt
            step += 1
            if step <= first_pass_through:
                stats.steps_replayed += 1
            else:
                first_pass_through = step
            stats.degraded_time += extra
            stats.degraded_throughput_time += narrow

            if step % self.checkpoint_interval == 0 or step == nsteps:
                ckpt_time = self._write_checkpoint(step, stats, t_sim)
                t_sim += ckpt_time
                stats.checkpoint_time += ckpt_time
                stats.useful_time += pending_useful
                pending_useful = 0.0
                consecutive_failures = 0

        stats.useful_time += pending_useful
        stats.steps_completed = nsteps
        stats.wall_clock = t_sim
        if self.comm is not None:
            # campaign time is visible on the simulated communicator too
            self.comm.advance_all(max(t_sim - self.comm.elapsed, 0.0))
            stats.ranks_final = self.comm.machine_ranks
        if self.injector is not None:
            stats.sdc_injected = len(self.injector.sdc_injected)
            stats.events_drawn = self.injector.events_drawn
            stats.events_fired = len(self.injector.events_fired)
            stats.events_requeued_pending = self.injector.events_pending_requeued
            stats.assert_event_conservation()
        if tr is not None:
            m = tr.metrics
            m.gauge("resilience.useful_time").set(stats.useful_time)
            m.gauge("resilience.wall_clock").set(stats.wall_clock)
            m.gauge("resilience.overhead_fraction").set(stats.overhead_fraction)
            m.counter("resilience.steps_replayed").inc(stats.steps_replayed)
        return stats

    # -- helpers --------------------------------------------------------------

    def _pending_event(self, horizon: float) -> FaultEvent | None:
        """Pop the next injector event if it fires before *horizon*."""
        if self.injector is None:
            return None
        event = self.injector.peek()
        if event is None or event.time >= horizon:
            return None
        return self.injector.pop()

    def _degradation_penalty(self, t_sim: float, dt: float,
                             event: FaultEvent | None,
                             degradations: list[FaultEvent],
                             stats: ResilienceStats) -> float:
        if event is not None and event.kind is FaultKind.LINK_DEGRADATION:
            # non-fatal, but still *fired*: conservation accounting means
            # no popped event ever disappears into a local variable.  The
            # communicator gets the degradation window too, so collectives
            # priced while it is active see the degraded fabric instead of
            # a stale cached link.
            self.injector.fire(event, comm=self.comm)
            degradations.append(event)
            stats.degradations_seen += 1
        active = [e for e in degradations if e.time + e.duration > t_sim]
        degradations[:] = active
        extra = 0.0
        for e in active:
            overlap = min(t_sim + dt, e.time + e.duration) - max(t_sim, e.time)
            if overlap > 0:
                extra += overlap * (e.slowdown - 1.0)
        return extra

    def _check_retries(self, consecutive_failures: int) -> None:
        if consecutive_failures > self.max_retries:
            raise ResilienceError(
                f"{consecutive_failures} consecutive failures without "
                f"reaching a checkpoint (max_retries={self.max_retries})"
            )

    def _sdc_arrays(self) -> list:
        """The app's live corruptible arrays (``sdc_targets()`` hook)."""
        hook = getattr(self.app, "sdc_targets", None)
        return list(hook()) if callable(hook) else []

    def _sdc_detected(self) -> bool:
        """Run the app's checksum audit (``validate_state()`` hook)."""
        validate = getattr(self.app, "validate_state", None)
        if not callable(validate):
            return False
        try:
            validate()
        except SdcDetected:
            return True
        return False

    def _trace_fault(self, kind: str, t: float, lost_work: float) -> None:
        """Mark a fired fault on the timeline and bump its counters."""
        tr = self.tracer
        if tr is None:
            return
        tr.instant(f"fault.{kind}", ts=t, cat="resilience",
                   pid="resilience", tid="runner",
                   lost_work=float(lost_work))
        m = tr.metrics
        m.counter(f"resilience.faults[{kind}]").inc()
        m.counter("resilience.lost_work_seconds").inc(float(lost_work))

    def _recover(self, stats: ResilienceStats, consecutive_failures: int, *,
                 event: FaultEvent | None = None,
                 use_policy: bool = True,
                 t_sim: float = 0.0) -> tuple[float, int]:
        """Pay policy recovery + backoff + restore; returns
        ``(seconds, step)``.  SDC rollbacks set ``use_policy=False`` —
        the nodes are healthy, only the data is poisoned, so recovery is
        a pure checkpoint rewind."""
        backoff = self.backoff_base * (2.0 ** (consecutive_failures - 1) - 1.0)
        policy_time = (self.policy.recover(self, event, stats)
                       if use_policy else 0.0)
        restored_step, read_time = self._restore_latest_valid(stats)
        total = policy_time + backoff + read_time
        stats.recovery_time += total
        stats.recoveries += 1
        tr = self.tracer
        if tr is not None:
            idx = tr.begin("resilience.recovery", ts=t_sim, cat="resilience",
                           pid="resilience", tid="runner",
                           policy=self.policy.name if use_policy else "rewind",
                           restored_step=int(restored_step))
            tr.record("resilience.restore", t_sim + policy_time + backoff,
                      read_time, cat="resilience", pid="resilience",
                      tid="runner", restored_step=int(restored_step))
            tr.end(idx, ts=t_sim + total)
            tr.metrics.counter("resilience.recoveries").inc()
        return total, restored_step
