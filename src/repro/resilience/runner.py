"""Resilient campaign driver: periodic checkpoints, failure recovery, accounting.

:class:`ResilientRunner` wraps any :class:`SteppedApp` (a
:class:`~repro.resilience.snapshot.Checkpointable` whose ``step()``
advances the computation and returns its simulated cost in seconds) and
drives a long campaign the way production jobs on Frontier actually run:

* checkpoint every ``checkpoint_interval`` committed steps, paying the
  serialization size through a :class:`CheckpointCostModel` (write
  latency + bytes/bandwidth — the burst-buffer term of the Young/Daly δ);
* when the :class:`~repro.resilience.faults.FaultInjector` fires a fatal
  event mid-step, roll the work since the last checkpoint into
  ``lost_work_time``, pay restart + checkpoint read + exponential
  backoff, restore from the last *valid* snapshot (checksum-verified,
  with fallback to the previous one), and replay;
* bound the retries: ``max_retries`` consecutive failures without
  reaching a new checkpoint raise :class:`ResilienceError`;
* account everything into a :class:`ResilienceStats` whose
  ``overhead_fraction`` / ``inflation`` are the measured curve the
  Young/Daly model in :mod:`repro.resilience.daly` predicts.

Because snapshots are bit-exact and apps are deterministic, a
fault-injected campaign finishes in *exactly* the same final state as a
failure-free run — the acceptance test for this subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.gpu.device import Device
from repro.mpisim.comm import SimComm
from repro.resilience.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    SimulatedFault,
)
from repro.resilience.snapshot import (
    Snapshot,
    decode_snapshot,
    encode_snapshot,
    require_kind,
    snapshot_checksum,
)


class ResilienceError(RuntimeError):
    """Unrecoverable campaign: retries exhausted or no valid checkpoint."""


@runtime_checkable
class SteppedApp(Protocol):
    """A checkpointable application advanced step by step."""

    snapshot_kind: str
    snapshot_version: int

    def step(self) -> float:
        """Advance one step; returns the step's simulated cost in seconds."""
        ...

    def snapshot(self) -> Snapshot: ...

    def restore(self, snap: Snapshot) -> None: ...


@dataclass(frozen=True)
class CheckpointCostModel:
    """Simulated cost of moving checkpoints to and from stable storage.

    Defaults are Frontier-node-ish: a few GB/s per node to the burst
    buffer, milliseconds of open/close latency, and a scheduler restart
    penalty of about a minute.
    """

    write_bandwidth: float = 4e9  # bytes/s
    read_bandwidth: float = 8e9  # bytes/s
    latency: float = 2e-3  # per open/close, s
    restart_cost: float = 60.0  # job relaunch + node replacement, s

    def __post_init__(self) -> None:
        if min(self.write_bandwidth, self.read_bandwidth) <= 0:
            raise ValueError("checkpoint bandwidths must be positive")
        if self.latency < 0 or self.restart_cost < 0:
            raise ValueError("latency and restart cost must be non-negative")

    def write_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.write_bandwidth

    def read_time(self, nbytes: int) -> float:
        return self.latency + nbytes / self.read_bandwidth


@dataclass
class ResilienceStats:
    """Where the campaign's simulated wall-clock went."""

    steps_completed: int = 0
    steps_replayed: int = 0
    checkpoints_written: int = 0
    checkpoint_bytes: int = 0
    recoveries: int = 0
    failures_by_kind: dict[str, int] = field(default_factory=dict)
    degradations_seen: int = 0

    useful_time: float = 0.0  # committed step work in the final trajectory
    lost_work_time: float = 0.0  # rolled-back (replayed or partial) work
    checkpoint_time: float = 0.0  # snapshot writes
    recovery_time: float = 0.0  # restart + backoff + checkpoint reads
    degraded_time: float = 0.0  # extra step time under degraded links
    wall_clock: float = 0.0  # simulated campaign end time

    @property
    def overhead_time(self) -> float:
        return self.wall_clock - self.useful_time

    @property
    def overhead_fraction(self) -> float:
        """Fraction of the campaign that was not useful forward progress."""
        return self.overhead_time / self.wall_clock if self.wall_clock > 0 else 0.0

    @property
    def inflation(self) -> float:
        """Wall-clock inflation vs. a free-checkpoint, failure-free run."""
        return self.wall_clock / self.useful_time if self.useful_time > 0 else 1.0

    def describe(self) -> str:
        fail = ", ".join(f"{k}x{v}" for k, v in sorted(self.failures_by_kind.items()))
        return (
            f"{self.steps_completed} steps (+{self.steps_replayed} replayed), "
            f"{self.checkpoints_written} checkpoints "
            f"({self.checkpoint_bytes / 1e6:.2f} MB), "
            f"{self.recoveries} recoveries [{fail or 'no failures'}]; "
            f"wall {self.wall_clock:.1f}s = useful {self.useful_time:.1f}s "
            f"+ ckpt {self.checkpoint_time:.1f}s + lost {self.lost_work_time:.1f}s "
            f"+ recovery {self.recovery_time:.1f}s + degraded "
            f"{self.degraded_time:.1f}s (overhead {self.overhead_fraction:.1%})"
        )


@dataclass
class _StoredCheckpoint:
    step: int
    blob: bytes
    checksum: str


class ResilientRunner:
    """Drive a :class:`SteppedApp` campaign through failures to completion."""

    def __init__(
        self,
        app: SteppedApp,
        *,
        checkpoint_interval: int,
        injector: FaultInjector | None = None,
        cost_model: CheckpointCostModel | None = None,
        comm: SimComm | None = None,
        device: Device | None = None,
        max_retries: int = 8,
        backoff_base: float = 1.0,
        keep_snapshots: int = 2,
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1 step")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if keep_snapshots < 1:
            raise ValueError("keep_snapshots must be >= 1")
        self.app = app
        self.checkpoint_interval = checkpoint_interval
        self.injector = injector
        self.cost_model = cost_model or CheckpointCostModel()
        self.comm = comm
        self.device = device
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.keep_snapshots = keep_snapshots
        self._checkpoints: list[_StoredCheckpoint] = []

    # -- checkpoint store ----------------------------------------------------

    def _write_checkpoint(self, step: int, stats: ResilienceStats) -> float:
        blob = encode_snapshot(self.app.snapshot())
        self._checkpoints.append(
            _StoredCheckpoint(step=step, blob=blob,
                              checksum=snapshot_checksum(blob))
        )
        del self._checkpoints[:-self.keep_snapshots]
        stats.checkpoints_written += 1
        stats.checkpoint_bytes += len(blob)
        return self.cost_model.write_time(len(blob))

    def _restore_latest_valid(self, stats: ResilienceStats) -> tuple[int, float]:
        """Restore the newest checksum-valid checkpoint; returns
        ``(step_restored_to, simulated_read_time)``."""
        read_time = 0.0
        while self._checkpoints:
            ckpt = self._checkpoints[-1]
            read_time += self.cost_model.read_time(len(ckpt.blob))
            if snapshot_checksum(ckpt.blob) == ckpt.checksum:
                snap = decode_snapshot(ckpt.blob)
                require_kind(snap, self.app)
                self.app.restore(snap)
                return ckpt.step, read_time
            self._checkpoints.pop()  # torn write: fall back one generation
        raise ResilienceError("no valid checkpoint to restore from")

    # -- the campaign loop ----------------------------------------------------

    def run(self, nsteps: int) -> ResilienceStats:
        if nsteps < 1:
            raise ValueError("campaign needs at least one step")
        stats = ResilienceStats()
        t_sim = 0.0
        pending_useful = 0.0  # committed-step work not yet checkpointed
        consecutive_failures = 0
        degradations: list[FaultEvent] = []

        # checkpoint 0: the initial state is always restorable
        t_sim += self._write_checkpoint(0, stats)
        stats.checkpoint_time += t_sim

        step = 0
        first_pass_through = 0  # highest step index ever committed
        while step < nsteps:
            dt = self.app.step()
            event = self._pending_event(t_sim + dt)
            if event is not None and event.fatal:
                # the step dies mid-flight: everything since the last
                # checkpoint (committed-but-unsaved steps + the partial
                # step) is lost work
                partial = min(max(event.time - t_sim, 0.0), dt)
                stats.lost_work_time += pending_useful + partial
                pending_useful = 0.0
                t_sim = max(t_sim + partial, event.time)
                stats.failures_by_kind[event.kind.value] = (
                    stats.failures_by_kind.get(event.kind.value, 0) + 1
                )
                try:
                    self.injector.fire(event, comm=self.comm, device=self.device)
                except SimulatedFault:
                    pass  # detected; recover below
                consecutive_failures += 1
                if consecutive_failures > self.max_retries:
                    raise ResilienceError(
                        f"{consecutive_failures} consecutive failures without "
                        f"reaching a checkpoint (max_retries={self.max_retries})"
                    )
                recovery, step = self._recover(stats, consecutive_failures)
                t_sim += recovery
                continue

            # the step survived; account link degradation slowdowns
            extra = self._degradation_penalty(t_sim, dt, event, degradations, stats)
            t_sim += dt + extra
            pending_useful += dt
            step += 1
            if step <= first_pass_through:
                stats.steps_replayed += 1
            else:
                first_pass_through = step
            stats.degraded_time += extra

            if step % self.checkpoint_interval == 0 or step == nsteps:
                ckpt_time = self._write_checkpoint(step, stats)
                t_sim += ckpt_time
                stats.checkpoint_time += ckpt_time
                stats.useful_time += pending_useful
                pending_useful = 0.0
                consecutive_failures = 0

        stats.useful_time += pending_useful
        stats.steps_completed = nsteps
        stats.wall_clock = t_sim
        if self.comm is not None:
            # campaign time is visible on the simulated communicator too
            self.comm.advance_all(max(t_sim - self.comm.elapsed, 0.0))
        return stats

    # -- helpers --------------------------------------------------------------

    def _pending_event(self, horizon: float) -> FaultEvent | None:
        """Pop the next injector event if it fires before *horizon*."""
        if self.injector is None:
            return None
        event = self.injector.peek()
        if event is None or event.time >= horizon:
            return None
        return self.injector.pop()

    def _degradation_penalty(self, t_sim: float, dt: float,
                             event: FaultEvent | None,
                             degradations: list[FaultEvent],
                             stats: ResilienceStats) -> float:
        if event is not None and event.kind is FaultKind.LINK_DEGRADATION:
            degradations.append(event)
            stats.degradations_seen += 1
        active = [e for e in degradations if e.time + e.duration > t_sim]
        degradations[:] = active
        extra = 0.0
        for e in active:
            overlap = min(t_sim + dt, e.time + e.duration) - max(t_sim, e.time)
            if overlap > 0:
                extra += overlap * (e.slowdown - 1.0)
        return extra

    def _recover(self, stats: ResilienceStats,
                 consecutive_failures: int) -> tuple[float, int]:
        """Pay restart + backoff + restore; returns ``(seconds, step)``."""
        backoff = self.backoff_base * (2.0 ** (consecutive_failures - 1) - 1.0)
        if self.injector is not None:
            self.injector.clear(comm=self.comm, device=self.device)
        restored_step, read_time = self._restore_latest_valid(stats)
        total = self.cost_model.restart_cost + backoff + read_time
        stats.recovery_time += total
        stats.recoveries += 1
        return total, restored_step
