"""Versioned, deterministic snapshot serialization for checkpoint/restart.

The paper's campaigns (GESTS at 4 096 nodes, Pele at 4 096, CoMet at
9 074) run for days to months; at those node counts the machine MTBF is
hours, so every measurement in the paper sits on top of a
checkpoint/restart loop.  This module is the wire format that loop needs:

* a :class:`Checkpointable` protocol — any stateful solver exposes
  ``snapshot()``/``restore()`` plus a ``snapshot_kind`` tag and a
  ``snapshot_version`` so old checkpoints fail loudly instead of
  restoring garbage;
* a :class:`Snapshot` value — a flat-or-nested payload of numpy arrays
  and plain scalars;
* a *deterministic* binary codec (:func:`encode_snapshot` /
  :func:`decode_snapshot`): sorted keys, fixed-width little-endian
  encodings, C-contiguous array bytes.  Identical state produces
  identical bytes, which is what makes "restart is bit-identical to the
  failure-free run" a testable property rather than a hope;
* a SHA-256 :func:`snapshot_checksum` so a torn or corrupted checkpoint
  is detected at restore time (the runner falls back to the previous
  valid snapshot).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

_MAGIC = b"RSNP\x01"

# value type tags
_T_DICT = b"D"
_T_LIST = b"L"
_T_TUPLE = b"T"
_T_ARRAY = b"A"
_T_INT = b"I"
_T_FLOAT = b"F"
_T_BOOL = b"B"
_T_STR = b"S"
_T_BYTES = b"Y"
_T_NONE = b"N"


class SnapshotError(RuntimeError):
    """Malformed, mismatched, or corrupted snapshot data."""


@dataclass(frozen=True)
class Snapshot:
    """One checkpoint of one :class:`Checkpointable` object.

    ``payload`` maps string keys to numpy arrays, scalars, strings,
    bytes, ``None``, or (possibly nested) lists/tuples/dicts thereof.
    """

    kind: str
    version: int
    payload: dict[str, Any]


@runtime_checkable
class Checkpointable(Protocol):
    """Anything the resilience subsystem can checkpoint and restore."""

    snapshot_kind: str
    snapshot_version: int

    def snapshot(self) -> Snapshot: ...

    def restore(self, snap: Snapshot) -> None: ...


def require_kind(snap: Snapshot, obj: Checkpointable) -> None:
    """Refuse to restore a snapshot of the wrong kind or version."""
    if snap.kind != obj.snapshot_kind:
        raise SnapshotError(
            f"snapshot kind {snap.kind!r} cannot restore a {obj.snapshot_kind!r}"
        )
    if snap.version != obj.snapshot_version:
        raise SnapshotError(
            f"snapshot version {snap.version} != supported "
            f"{obj.snapshot_version} for kind {snap.kind!r}"
        )


# -- encoding ----------------------------------------------------------------


def _pack_str(out: list[bytes], s: str) -> None:
    raw = s.encode("utf-8")
    out.append(struct.pack("<I", len(raw)))
    out.append(raw)


def _encode_value(out: list[bytes], value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif isinstance(value, np.ndarray):
        out.append(_T_ARRAY)
        arr = np.ascontiguousarray(value)
        _pack_str(out, arr.dtype.str)
        out.append(struct.pack("<B", arr.ndim))
        out.append(struct.pack(f"<{arr.ndim}Q", *arr.shape) if arr.ndim else b"")
        raw = arr.tobytes()
        out.append(struct.pack("<Q", len(raw)))
        out.append(raw)
    elif isinstance(value, (bool, np.bool_)):
        out.append(_T_BOOL)
        out.append(struct.pack("<B", int(value)))
    elif isinstance(value, (int, np.integer)):
        out.append(_T_INT)
        out.append(struct.pack("<q", int(value)))
    elif isinstance(value, (float, np.floating)):
        out.append(_T_FLOAT)
        out.append(struct.pack("<d", float(value)))
    elif isinstance(value, str):
        out.append(_T_STR)
        _pack_str(out, value)
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        out.append(struct.pack("<Q", len(value)))
        out.append(value)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        keys = sorted(value)
        if len(keys) != len(value):  # pragma: no cover - dict keys are unique
            raise SnapshotError("duplicate payload keys")
        out.append(struct.pack("<I", len(keys)))
        for k in keys:
            if not isinstance(k, str):
                raise SnapshotError(f"payload keys must be str, got {type(k).__name__}")
            _pack_str(out, k)
            _encode_value(out, value[k])
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST if isinstance(value, list) else _T_TUPLE)
        out.append(struct.pack("<I", len(value)))
        for v in value:
            _encode_value(out, v)
    else:
        raise SnapshotError(
            f"unsupported snapshot value type {type(value).__name__}"
        )


def encode_snapshot(snap: Snapshot) -> bytes:
    """Serialize deterministically: same state -> same bytes."""
    out: list[bytes] = [_MAGIC]
    _pack_str(out, snap.kind)
    out.append(struct.pack("<I", snap.version))
    _encode_value(out, snap.payload)
    return b"".join(out)


# -- decoding ----------------------------------------------------------------


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise SnapshotError("truncated snapshot")
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def unpack(self, fmt: str) -> tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def read_str(self) -> str:
        (n,) = self.unpack("<I")
        return self.take(n).decode("utf-8")


def _decode_value(r: _Reader) -> Any:
    tag = r.take(1)
    if tag == _T_NONE:
        return None
    if tag == _T_ARRAY:
        dtype = np.dtype(r.read_str())
        (ndim,) = r.unpack("<B")
        shape = r.unpack(f"<{ndim}Q") if ndim else ()
        (nbytes,) = r.unpack("<Q")
        arr = np.frombuffer(r.take(nbytes), dtype=dtype).reshape(shape)
        return arr.copy()  # writable, owned
    if tag == _T_BOOL:
        return bool(r.unpack("<B")[0])
    if tag == _T_INT:
        return int(r.unpack("<q")[0])
    if tag == _T_FLOAT:
        return float(r.unpack("<d")[0])
    if tag == _T_STR:
        return r.read_str()
    if tag == _T_BYTES:
        (n,) = r.unpack("<Q")
        return r.take(n)
    if tag in (_T_LIST, _T_TUPLE):
        (n,) = r.unpack("<I")
        items = [_decode_value(r) for _ in range(n)]
        return items if tag == _T_LIST else tuple(items)
    if tag == _T_DICT:
        (n,) = r.unpack("<I")
        out: dict[str, Any] = {}
        for _ in range(n):
            key = r.read_str()
            out[key] = _decode_value(r)
        return out
    raise SnapshotError(f"unknown value tag {tag!r}")


def decode_snapshot(data: bytes) -> Snapshot:
    r = _Reader(data)
    if r.take(len(_MAGIC)) != _MAGIC:
        raise SnapshotError("not a snapshot (bad magic)")
    kind = r.read_str()
    (version,) = r.unpack("<I")
    payload = _decode_value(r)
    if not isinstance(payload, dict):
        raise SnapshotError("snapshot payload must be a dict")
    if r.pos != len(data):
        raise SnapshotError(f"{len(data) - r.pos} trailing bytes after snapshot")
    return Snapshot(kind=kind, version=version, payload=payload)


def snapshot_checksum(data: bytes) -> str:
    """SHA-256 of the encoded snapshot (torn-write detection)."""
    return hashlib.sha256(data).hexdigest()


def snapshot_equal(a: Snapshot, b: Snapshot) -> bool:
    """Bit-identical comparison via the canonical encoding."""
    return encode_snapshot(a) == encode_snapshot(b)
