"""LSMS substrate: LIZ construction, structure constants, KKR assembly, tau solves."""

from repro.scattering.kkr import (
    LIZ,
    assemble_kkr_matrix,
    build_liz,
    make_t_matrices,
    structure_constant_block,
    tau_central_block,
)

__all__ = [
    "scf_iterate",
    "density_moment",
    "ScfResult",
    "ScfHistory",
    "LIZ",
    "assemble_kkr_matrix",
    "build_liz",
    "make_t_matrices",
    "structure_constant_block",
    "tau_central_block",
]
from repro.scattering.scf import ScfHistory, ScfResult, density_moment, scf_iterate
